package repro_test

// One Go benchmark per experiment (E1–E10 in DESIGN.md, plus the E11
// sharded-ingestion, E12 multi-producer, E13 batch-ingestion and E14
// delta-gossip experiments). Each benchmark runs
// the corresponding experiment end to end and reports its wall-clock time;
// the printed tables themselves are produced by cmd/sketchbench (or by the
// experiment functions directly). Run with:
//
//	go test -bench=. -benchmem
//
// The benchmarks use the Quick configuration so that a full -bench=. sweep
// stays in the tens of seconds; pass -tags or run cmd/sketchbench for the
// full-scale tables recorded in EXPERIMENTS.md.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/sketch"
	"repro/internal/xrand"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := bench.Config{Seed: 1, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := exp.Run(cfg)
		if len(tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

func BenchmarkE1HeavyHitters(b *testing.B)         { runExperiment(b, "e1") }
func BenchmarkE2Throughput(b *testing.B)           { runExperiment(b, "e2") }
func BenchmarkE3PhaseTransition(b *testing.B)      { runExperiment(b, "e3") }
func BenchmarkE4RecoveryTime(b *testing.B)         { runExperiment(b, "e4") }
func BenchmarkE5JL(b *testing.B)                   { runExperiment(b, "e5") }
func BenchmarkE6SketchSolve(b *testing.B)          { runExperiment(b, "e6") }
func BenchmarkE7SFFT(b *testing.B)                 { runExperiment(b, "e7") }
func BenchmarkE8Leakage(b *testing.B)              { runExperiment(b, "e8") }
func BenchmarkE9Hadamard(b *testing.B)             { runExperiment(b, "e9") }
func BenchmarkE10IBLT(b *testing.B)                { runExperiment(b, "e10") }
func BenchmarkE11ShardedIngest(b *testing.B)       { runExperiment(b, "e11") }
func BenchmarkE12MultiProducerIngest(b *testing.B) { runExperiment(b, "e12") }
func BenchmarkE13BatchIngest(b *testing.B)         { runExperiment(b, "e13") }
func BenchmarkE14DeltaGossip(b *testing.B)         { runExperiment(b, "e14") }
func BenchmarkE17StreamIngest(b *testing.B)        { runExperiment(b, "e17") }
func BenchmarkE18BatchRead(b *testing.B)           { runExperiment(b, "e18") }

// BenchmarkE18BatchEstimate is the steady-state contract behind E18 in
// isolation: a warmed EstimateScratch answers a 4096-key column through the
// batched kernels with zero heap allocations per call (-benchmem must report
// 0 allocs/op).
func BenchmarkE18BatchEstimate(b *testing.B) {
	r := xrand.New(1)
	tracker := sketch.NewHeavyHitterTracker(xrand.New(2), 4096, 4, 64)
	items := make([]uint64, 1<<16)
	deltas := make([]float64, len(items))
	for i := range items {
		items[i] = r.Uint64n(1 << 16)
		deltas[i] = 1
	}
	tracker.UpdateBatch(items, deltas)

	keys := make([]uint64, 4096)
	for i := range keys {
		keys[i] = r.Uint64n(1 << 17)
	}
	dst := make([]float64, len(keys))
	var sc sketch.EstimateScratch
	tracker.EstimateBatchWith(keys, dst, &sc) // warm the scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tracker.EstimateBatchWith(keys, dst, &sc)
	}
	b.SetBytes(int64(len(keys) * 8))
}
