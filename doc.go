// Package repro is a Go reproduction of the systems surveyed in
// "Sketching via Hashing: from Heavy Hitters to Compressive Sensing to
// Sparse Fourier Transform" (Piotr Indyk, PODS 2013).
//
// The library lives in internal/ packages, organized around the survey's
// sections:
//
//	internal/core     the unifying "sketch = sparse linear map" view
//	internal/hashing  multiply-shift, polynomial and tabulation hash families
//	                  with scalar and batched (HashBatch/SignBatch) kernels
//	internal/sketch   Count-Min, Count-Sketch, Misra-Gries, SpaceSaving,
//	                  Bloom filters, IBLT, dyadic heavy hitters & quantiles,
//	                  with flat counter layouts and batch-first UpdateBatch
//	                  hot paths, plus versioned binary serialization for the
//	                  linear sketches (hash seeds ride along, so a
//	                  deserialized sketch hashes identically and merges
//	                  exactly)
//	internal/engine   concurrent sharded ingestion: N workers with private
//	                  sketch replicas built from identical hash seeds, any
//	                  number of lock-free producer handles feeding them
//	                  columnar batches, and an exact linear merge on
//	                  Snapshot/Close
//	internal/server   the HTTP ingestion/snapshot daemon behind cmd/sketchd:
//	                  concurrently ingested batched updates, live queries,
//	                  snapshot export, exact cross-process merge, and gossip
//	                  delta-replication between peers (compressed snapshot
//	                  differences shipped on a timer, watermark-idempotent),
//	                  plus a thin Go client
//	internal/cs       compressed sensing: sparse-matrix decoders and dense
//	                  baselines (OMP, IHT, ISTA)
//	internal/jl       Johnson-Lindenstrauss embeddings, feature hashing,
//	                  SRHT, sketch-and-solve regression and low-rank
//	internal/sfft     sparse Fourier transform and sparse Hadamard transform
//	internal/fourier  FFT / FWHT / window-filter substrate
//	internal/bench    the E1-E14 experiment harness (see
//	                  internal/bench/DESIGN.md for each experiment's claim,
//	                  workload and metrics)
//
// Runnable entry points are in cmd/ (sketchd, sketchbench, hhtop, sfftdemo)
// and examples/ (quickstart, netflow, imaging, features, spectrum,
// aggregate). The benchmarks in bench_test.go regenerate every experiment
// table.
package repro
