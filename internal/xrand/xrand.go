// Package xrand provides deterministic, seedable pseudo-random number
// generation and the sampling distributions used throughout the repository
// (Gaussian, Bernoulli, Rademacher, Zipf, random permutations).
//
// Every randomized component in the library takes an explicit *xrand.Rand (or
// a seed) so that experiments are exactly reproducible run-to-run. The core
// generator is splitmix64 used to seed xoshiro256**, which is fast, has a
// 256-bit state and passes the usual statistical test batteries; it is more
// than adequate for the Monte-Carlo style experiments in this repository.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator (xoshiro256**).
// It is NOT safe for concurrent use; create one per goroutine.
type Rand struct {
	s [4]uint64

	// cached second Gaussian from Box-Muller
	hasGauss bool
	gauss    float64
}

// splitmix64 advances the given state and returns the next value. It is used
// only to expand a single seed into the 256-bit xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Two generators created
// with the same seed produce identical streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state from a single 64-bit seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro requires a not-all-zero state; splitmix64 of any seed cannot
	// produce four zeros, but be defensive.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	r.hasGauss = false
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method (unbiased).
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform value in (0, 1); it never returns exactly 0,
// which makes it safe to pass to math.Log.
func (r *Rand) Float64Open() float64 {
	for {
		v := r.Float64()
		if v > 0 {
			return v
		}
	}
}

// NormFloat64 returns a standard normal (mean 0, variance 1) variate using
// the Box-Muller transform. Consecutive calls use both generated values.
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	u1 := r.Float64Open()
	u2 := r.Float64()
	radius := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	r.gauss = radius * math.Sin(theta)
	r.hasGauss = true
	return radius * math.Cos(theta)
}

// Rademacher returns +1 or -1 with equal probability.
func (r *Rand) Rademacher() float64 {
	if r.Uint64()&1 == 0 {
		return 1
	}
	return -1
}

// Bernoulli returns true with probability p.
func (r *Rand) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed variate with rate 1.
func (r *Rand) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}

// Perm returns a uniformly random permutation of [0, n) (Fisher-Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function (Fisher-Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := int(r.Uint64n(uint64(i + 1)))
		swap(i, j)
	}
}

// Sample returns k distinct integers drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *Rand) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("xrand: Sample with k out of range")
	}
	if k*4 >= n {
		// Dense case: partial Fisher-Yates over the full range.
		p := r.Perm(n)
		return p[:k]
	}
	// Sparse case: rejection with a set.
	seen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for len(out) < k {
		v := r.Intn(n)
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// Zipf generates integers in [0, n) following a Zipf(s) distribution, i.e.
// P(i) proportional to 1/(i+1)^s. It precomputes the CDF so sampling is a
// binary search; construction is O(n).
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf returns a Zipf sampler over the domain [0, n) with exponent s > 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with n <= 0")
	}
	if s <= 0 {
		panic("xrand: NewZipf with s <= 0")
	}
	cdf := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cdf[i] = total
	}
	for i := range cdf {
		cdf[i] /= total
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next returns the next Zipf-distributed value in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// N returns the domain size of the sampler.
func (z *Zipf) N() int { return len(z.cdf) }
