package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("generators with same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestReseed(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Seed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("reseeded stream diverged at %d: got %d want %d", i, got, first[i])
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n = 10
	const samples = 100000
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[r.Uint64n(n)]++
	}
	expected := float64(samples) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("bucket %d count %d deviates too much from expected %.0f", i, c, expected)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64OpenNeverZero(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		if r.Float64Open() == 0 {
			t.Fatal("Float64Open returned 0")
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("gaussian mean %.4f too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("gaussian variance %.4f too far from 1", variance)
	}
}

func TestRademacher(t *testing.T) {
	r := New(13)
	pos, neg := 0, 0
	for i := 0; i < 10000; i++ {
		switch r.Rademacher() {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatal("Rademacher returned value other than +-1")
		}
	}
	if pos < 4500 || neg < 4500 {
		t.Errorf("Rademacher imbalanced: +1=%d -1=%d", pos, neg)
	}
}

func TestBernoulli(t *testing.T) {
	r := New(17)
	const p = 0.3
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-p) > 0.01 {
		t.Errorf("Bernoulli(%.1f) empirical rate %.4f", p, got)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(19)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatal("ExpFloat64 returned negative value")
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean %.4f too far from 1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(29)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 3}, {10, 10}, {1000, 5}, {1000, 900}} {
		s := r.Sample(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("Sample(%d,%d) returned %d items", tc.n, tc.k, len(s))
		}
		seen := make(map[int]bool)
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("Sample(%d,%d) = %v has out-of-range or duplicate values", tc.n, tc.k, s)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestZipfSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 1000, 1.1)
	const n = 200000
	counts := make([]int, 1000)
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf.Next() = %d out of range", v)
		}
		counts[v]++
	}
	// Item 0 must dominate and counts must be (roughly) non-increasing in rank.
	if counts[0] < counts[10] {
		t.Errorf("Zipf not skewed: count[0]=%d < count[10]=%d", counts[0], counts[10])
	}
	if counts[0] < n/20 {
		t.Errorf("Zipf head too light: count[0]=%d", counts[0])
	}
}

func TestZipfN(t *testing.T) {
	z := NewZipf(New(1), 42, 1.0)
	if z.N() != 42 {
		t.Fatalf("Zipf.N() = %d, want 42", z.N())
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1}, {10, 0}, {-1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZipf(%d,%v) did not panic", tc.n, tc.s)
				}
			}()
			NewZipf(New(1), tc.n, tc.s)
		}()
	}
}

// Property: Uint64n(n) is always < n for any n > 0.
func TestUint64nPropertyBounded(t *testing.T) {
	r := New(101)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Perm(n) always contains every element exactly once.
func TestPermProperty(t *testing.T) {
	r := New(103)
	f := func(raw uint8) bool {
		n := int(raw % 64)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.NormFloat64()
	}
	_ = sink
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 1<<16, 1.1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink = z.Next()
	}
	_ = sink
}
