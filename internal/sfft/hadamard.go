package sfft

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/fourier"
	"repro/internal/xrand"
)

// HadamardCoefficient is a recovered Walsh-Hadamard (Boolean-cube Fourier)
// coefficient: the character index S (a bitmask over the m input bits) and
// the coefficient value.
type HadamardCoefficient struct {
	S     uint64
	Value float64
}

// KMConfig controls the Kushilevitz-Mansour search.
type KMConfig struct {
	// OuterSamples is the number of z samples per weight estimate (default 64).
	OuterSamples int
	// InnerSamples is the number of y samples per z (default 16).
	InnerSamples int
	// LeafSamples is the number of samples for the final coefficient
	// estimates (default 2048).
	LeafSamples int
	// MaxCandidates aborts the search if the candidate set explodes (default
	// 4096), which indicates the threshold is too low for the sample budget.
	MaxCandidates int
}

func (c KMConfig) outer() int {
	if c.OuterSamples <= 0 {
		return 64
	}
	return c.OuterSamples
}
func (c KMConfig) inner() int {
	if c.InnerSamples <= 0 {
		return 16
	}
	return c.InnerSamples
}
func (c KMConfig) leaf() int {
	if c.LeafSamples <= 0 {
		return 2048
	}
	return c.LeafSamples
}
func (c KMConfig) maxCand() int {
	if c.MaxCandidates <= 0 {
		return 4096
	}
	return c.MaxCandidates
}

// parity returns (-1)^{popcount(x)} as a float.
func parity(x uint64) float64 {
	if bits.OnesCount64(x)%2 == 0 {
		return 1
	}
	return -1
}

// KMSparseHadamard finds (with high probability) every Walsh-Hadamard
// coefficient of f with magnitude at least threshold, by the
// Kushilevitz-Mansour prefix search [KM91] (cf. Goldreich-Levin [GL89]): the
// coefficient index space {0,1}^m is explored as a binary tree of prefixes,
// and the total squared coefficient weight under each prefix is estimated by
// random sampling of f. Only prefixes whose estimated weight reaches
// threshold^2/2 are expanded, so the work scales with the number of large
// coefficients rather than with 2^m.
//
// The input f has length 2^m and uses the convention
// fhat(s) = 2^{-m} Σ_x f(x)·(-1)^{s·x}.
func KMSparseHadamard(f []float64, threshold float64, cfg KMConfig, r *xrand.Rand) ([]HadamardCoefficient, error) {
	n := len(f)
	if !fourier.IsPowerOfTwo(n) {
		return nil, fmt.Errorf("sfft: KMSparseHadamard requires a power-of-two length, got %d", n)
	}
	if threshold <= 0 {
		return nil, fmt.Errorf("sfft: KMSparseHadamard requires a positive threshold")
	}
	m := bits.TrailingZeros(uint(n))
	if m == 0 {
		// Single-point function: its only coefficient is f[0].
		if math.Abs(f[0]) >= threshold {
			return []HadamardCoefficient{{S: 0, Value: f[0]}}, nil
		}
		return nil, nil
	}

	// Candidate prefixes over the low-order l bits of s.
	type prefix struct {
		bitsVal uint64
		length  int
	}
	candidates := []prefix{{0, 0}}
	for l := 1; l <= m; l++ {
		var next []prefix
		for _, p := range candidates {
			for _, bit := range []uint64{0, 1} {
				cand := prefix{bitsVal: p.bitsVal | bit<<uint(l-1), length: l}
				w := estimatePrefixWeight(f, m, cand.bitsVal, l, cfg, r)
				if w >= threshold*threshold/2 {
					next = append(next, cand)
				}
			}
		}
		if len(next) > cfg.maxCand() {
			return nil, fmt.Errorf("sfft: KM search exceeded %d candidates at depth %d; raise the threshold or the sample budget", cfg.maxCand(), l)
		}
		candidates = next
		if len(candidates) == 0 {
			return nil, nil
		}
	}

	// Final estimation of each surviving full-length index.
	var out []HadamardCoefficient
	leaf := cfg.leaf()
	for _, p := range candidates {
		var sum float64
		for i := 0; i < leaf; i++ {
			x := uint64(r.Intn(n))
			sum += f[x] * parity(p.bitsVal&x)
		}
		est := sum / float64(leaf)
		if math.Abs(est) >= threshold/2 {
			out = append(out, HadamardCoefficient{S: p.bitsVal, Value: est})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		mi, mj := math.Abs(out[i].Value), math.Abs(out[j].Value)
		if mi != mj {
			return mi > mj
		}
		return out[i].S < out[j].S
	})
	return out, nil
}

// estimatePrefixWeight estimates Σ_{s: s agrees with the prefix on its low l
// bits} fhat(s)^2 by sampling: for the split x = (y, z) with y the low l bits,
// the weight equals E_z[ g(z)^2 ] with g(z) = E_y[ f(y,z)·(-1)^{prefix·y} ].
func estimatePrefixWeight(f []float64, m int, prefixBits uint64, l int, cfg KMConfig, r *xrand.Rand) float64 {
	n := len(f)
	yCount := 1 << uint(l)
	zCount := n >> uint(l)
	outer := cfg.outer()
	inner := cfg.inner()
	if inner > yCount {
		inner = yCount
	}
	var acc float64
	for o := 0; o < outer; o++ {
		z := uint64(r.Intn(zCount))
		// Two independent inner estimates multiplied together give an
		// unbiased estimate of g(z)^2 (avoids the positive bias of squaring
		// a single noisy estimate).
		g1 := innerEstimate(f, prefixBits, l, z, inner, yCount, r)
		g2 := innerEstimate(f, prefixBits, l, z, inner, yCount, r)
		acc += g1 * g2
	}
	est := acc / float64(outer)
	if est < 0 {
		est = 0
	}
	return est
}

// innerEstimate estimates g(z) = E_y[f(y,z)·(-1)^{prefix·y}] by sampling
// inner values of y (or exactly if inner == yCount).
func innerEstimate(f []float64, prefixBits uint64, l int, z uint64, inner, yCount int, r *xrand.Rand) float64 {
	var sum float64
	if inner >= yCount {
		for y := 0; y < yCount; y++ {
			x := z<<uint(l) | uint64(y)
			sum += f[x] * parity(prefixBits&uint64(y))
		}
		return sum / float64(yCount)
	}
	for i := 0; i < inner; i++ {
		y := uint64(r.Intn(yCount))
		x := z<<uint(l) | y
		sum += f[x] * parity(prefixBits&y)
	}
	return sum / float64(inner)
}

// DenseHadamardTopK is the baseline: compute the full FWHT and return the k
// largest-magnitude coefficients (with the 2^{-m} normalization matching
// KMSparseHadamard).
func DenseHadamardTopK(f []float64, k int) []HadamardCoefficient {
	n := len(f)
	spec := fourier.FWHT(f)
	inv := 1 / float64(n)
	type sm struct {
		s uint64
		v float64
	}
	all := make([]sm, n)
	for s := 0; s < n; s++ {
		all[s] = sm{s: uint64(s), v: spec[s] * inv}
	}
	sort.Slice(all, func(i, j int) bool {
		mi, mj := math.Abs(all[i].v), math.Abs(all[j].v)
		if mi != mj {
			return mi > mj
		}
		return all[i].s < all[j].s
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]HadamardCoefficient, k)
	for i := 0; i < k; i++ {
		out[i] = HadamardCoefficient{S: all[i].s, Value: all[i].v}
	}
	return out
}
