package sfft

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/fourier"
	"repro/internal/xrand"
)

// Failure-injection tests for the sparse FFT: spectra whose support is
// clustered (adjacent frequencies) defeat any binning whose collisions are
// not randomized, because neighbouring coefficients start in the same chunk.

func TestExactRecoversClusteredFrequencies(t *testing.T) {
	r := xrand.New(1)
	n := 4096
	// Ten coefficients packed into consecutive frequencies around 1000.
	spec := make([]complex128, n)
	var truth []Coefficient
	for i := 0; i < 10; i++ {
		f := 1000 + i
		v := cmplx.Rect(1+r.Float64(), 2*math.Pi*r.Float64())
		spec[f] = v
		truth = append(truth, Coefficient{Freq: f, Value: v})
	}
	x := fourier.InverseFFT(spec)
	got, err := Exact(x, 10, Config{Rounds: 12}, r)
	if err != nil {
		t.Fatal(err)
	}
	SortCoefficients(truth)
	if e := coefficientError(truth, got, n); e > 1e-6 {
		t.Fatalf("clustered spectrum recovery error %v", e)
	}
}

func TestExactRecoversPeriodicSupport(t *testing.T) {
	// Frequencies spaced exactly n/B apart all alias to the same residue
	// class mod B; the chunk binning plus random dilation must still separate
	// them.
	r := xrand.New(2)
	n := 4096
	k := 8
	spacing := n / 32 // default B for k=8 is 32
	spec := make([]complex128, n)
	var truth []Coefficient
	for i := 0; i < k; i++ {
		f := (i*spacing + 5) % n
		v := cmplx.Rect(2, 2*math.Pi*r.Float64())
		spec[f] = v
		truth = append(truth, Coefficient{Freq: f, Value: v})
	}
	x := fourier.InverseFFT(spec)
	got, err := Exact(x, k, Config{Rounds: 12}, r)
	if err != nil {
		t.Fatal(err)
	}
	SortCoefficients(truth)
	if e := coefficientError(truth, got, n); e > 1e-6 {
		t.Fatalf("periodic-support recovery error %v", e)
	}
}

func TestRobustDoesNotHallucinateOnPureNoise(t *testing.T) {
	// A signal that is pure noise has no significant coefficients; the robust
	// algorithm must not report large ones.
	r := xrand.New(3)
	n := 2048
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	got, err := Robust(x, 5, Config{}, r)
	if err != nil {
		t.Fatal(err)
	}
	// The true spectrum has typical coefficient magnitude sqrt(2n); anything
	// reported should not exceed a few times that.
	limit := 5 * math.Sqrt(2*float64(n))
	for _, c := range got {
		if cmplx.Abs(c.Value) > limit {
			t.Fatalf("robust sFFT hallucinated a coefficient of magnitude %v on pure noise", cmplx.Abs(c.Value))
		}
	}
}

func TestExactSingleToneAtEveryOctave(t *testing.T) {
	// Frequencies at powers of two (including 0 and n/2) exercise the phase
	// estimation edge cases.
	r := xrand.New(4)
	n := 1024
	for _, f := range []int{0, 1, 2, 4, 256, 512, 1023} {
		spec := make([]complex128, n)
		spec[f] = 3 + 4i
		x := fourier.InverseFFT(spec)
		got, err := Exact(x, 1, Config{}, r)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0].Freq != f {
			t.Fatalf("tone at %d recovered as %v", f, got)
		}
		if cmplx.Abs(got[0].Value-(3+4i)) > 1e-6 {
			t.Fatalf("tone at %d value %v", f, got[0].Value)
		}
	}
}
