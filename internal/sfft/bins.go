package sfft

import (
	"fmt"
	"math/cmplx"

	"repro/internal/fourier"
)

// FilteredBins hashes the spectrum of x into B buckets using a time-domain
// window filter, following the binning step of [HIKP12b]: the signal is
// multiplied by the window, the windowed signal is aliased down to B samples,
// and a B-point FFT produces one value per bucket. Bucket b captures the
// spectrum content near frequency b·(n/B), weighted by the filter's frequency
// response — which is exactly where the choice of filter matters: a boxcar
// window leaks energy from a coefficient into many buckets, a flat-window
// filter confines it to its own bucket.
//
// The returned slice has length B. The filter must have been designed for
// signal length n = len(x), and B must divide n.
func FilteredBins(x []complex128, filter *fourier.Filter, B int) ([]complex128, error) {
	n := len(x)
	if filter.N != n {
		return nil, fmt.Errorf("sfft: filter designed for n=%d, signal has length %d", filter.N, n)
	}
	if B < 1 || n%B != 0 {
		return nil, fmt.Errorf("sfft: B=%d must divide the signal length %d", B, n)
	}
	// Window the signal (only the filter's support is touched) and alias the
	// result down to B samples.
	aliased := make([]complex128, B)
	for i, g := range filter.Time {
		aliased[i%B] += g * x[i%n]
	}
	return fourier.FFT(aliased), nil
}

// BucketEstimate estimates the spectrum coefficient X[f] from filtered bins,
// assuming f is the dominant coefficient of its bucket. The binning computes
// bins[b] = (1/n) Σ_f X[f]·Ĝ[b·(n/B) − f], so the estimate divides the bucket
// value by the filter's frequency response at the coefficient's offset from
// the bucket centre (and undoes the 1/n factor).
func BucketEstimate(bins []complex128, filter *fourier.Filter, f int) complex128 {
	n := filter.N
	B := len(bins)
	width := n / B
	b := (f + width/2) / width % B // bucket whose centre is nearest to f
	centre := b * width
	offset := ((centre-f)%n + n) % n
	resp := filter.Freq[offset]
	if cmplx.Abs(resp) < 1e-12 {
		return 0
	}
	return bins[b] * complex(float64(n), 0) / resp
}

// LeakageExperimentResult reports how well per-bucket estimation works for a
// given filter on a spectrum with well-separated tones (at most one per
// bucket): the mean relative estimation error over the tones.
func LeakageExperimentResult(x []complex128, coeffs []Coefficient, filter *fourier.Filter, B int) (float64, error) {
	bins, err := FilteredBins(x, filter, B)
	if err != nil {
		return 0, err
	}
	var totalErr float64
	for _, c := range coeffs {
		est := BucketEstimate(bins, filter, c.Freq)
		denom := cmplx.Abs(c.Value)
		if denom == 0 {
			continue
		}
		totalErr += cmplx.Abs(est-c.Value) / denom
	}
	if len(coeffs) == 0 {
		return 0, nil
	}
	return totalErr / float64(len(coeffs)), nil
}
