// Package sfft implements sparse Fourier transforms: algorithms that recover
// the k largest Fourier coefficients of a length-n signal in time that scales
// with k rather than n, by hashing the spectrum into buckets (Section 4 of
// the survey).
//
// The frequency-domain hashing follows the "simple and practical" algorithm
// of [HIKP12b]: the time axis is dilated by a random odd factor σ, which
// permutes the spectrum (coefficient f moves to σf mod n); the dilated
// signal is multiplied by a window filter whose frequency response is flat
// across a chunk of n/B frequencies and nearly zero outside it; the windowed
// signal is aliased down to B samples and a B-point FFT yields one value per
// bucket. Each bucket therefore captures the coefficients that the random
// permutation placed in its chunk — a hash into B buckets computed with
// O(B log(1/δ)) samples and O(B log B) time. Coefficient locations are
// recovered from the phase difference between buckets computed at adjacent
// time shifts, and recovered coefficients are peeled before the next round,
// exactly like iterative decoding of a sparse-matrix sketch.
//
//   - Exact recovers exactly-k-sparse spectra (no noise).
//   - Robust tolerates additive noise by estimating locations and values
//     with medians over several time shifts.
//   - FilteredBins / LeakageExperimentResult expose the leakage behaviour of
//     boxcar versus flat-window filters (the survey's "leaky buckets").
//   - KMSparseHadamard recovers sparse Walsh–Hadamard (Boolean-cube Fourier)
//     spectra in the style of Kushilevitz–Mansour / Goldreich–Levin.
package sfft

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
	"sync"

	"repro/internal/fourier"
	"repro/internal/xrand"
)

// Coefficient is a recovered spectrum entry: X[Freq] ≈ Value.
type Coefficient struct {
	Freq  int
	Value complex128
}

// SortCoefficients orders coefficients by decreasing magnitude (ties by
// frequency) so reports are deterministic.
func SortCoefficients(cs []Coefficient) {
	sort.Slice(cs, func(i, j int) bool {
		mi, mj := cmplx.Abs(cs[i].Value), cmplx.Abs(cs[j].Value)
		if mi != mj {
			return mi > mj
		}
		return cs[i].Freq < cs[j].Freq
	})
}

// ToDense expands a coefficient list into a length-n spectrum vector.
func ToDense(cs []Coefficient, n int) []complex128 {
	out := make([]complex128, n)
	for _, c := range cs {
		out[(c.Freq%n+n)%n] += c.Value
	}
	return out
}

// Config controls the sparse FFT algorithms.
type Config struct {
	// BucketFactor sets the number of buckets B = NextPowerOfTwo(BucketFactor*k).
	// Default 4.
	BucketFactor int
	// Rounds is the number of peeling rounds with fresh random permutations.
	// Default 8.
	Rounds int
	// Tolerance is the collision / consistency threshold relative to the
	// dominant bucket magnitude. Default 1e-5 for Exact, 0.2 for Robust.
	Tolerance float64
	// FilterDelta is the leakage parameter of the flat-window filter
	// (default 1e-9 for Exact, 1e-6 for Robust).
	FilterDelta float64
	// UseBoxcar replaces the flat-window filter with a boxcar window — the
	// "leaky buckets" ablation. Recovery quality degrades markedly.
	UseBoxcar bool
}

func (c Config) bucketFactor() int {
	if c.BucketFactor <= 0 {
		return 4
	}
	return c.BucketFactor
}

func (c Config) rounds() int {
	if c.Rounds <= 0 {
		return 8
	}
	return c.Rounds
}

func (c Config) filterDelta(def float64) float64 {
	if c.FilterDelta <= 0 || c.FilterDelta >= 1 {
		return def
	}
	return c.FilterDelta
}

// filterCache memoizes binning filters. Designing a filter requires one
// length-n FFT, which would otherwise dominate the (sublinear) per-call cost
// of the sparse transforms; the filter depends only on (n, B, delta, shape)
// and is reused across rounds, calls and benchmark iterations — the same
// preprocessing/runtime split the sFFT papers use.
var filterCache = struct {
	sync.Mutex
	m map[filterKey]*fourier.Filter
}{m: make(map[filterKey]*fourier.Filter)}

type filterKey struct {
	n, b   int
	delta  float64
	boxcar bool
}

// buildFilter constructs (or reuses) the binning filter requested by the
// configuration.
func (c Config) buildFilter(n, B int, defaultDelta float64) *fourier.Filter {
	key := filterKey{n: n, b: B, delta: c.filterDelta(defaultDelta), boxcar: c.UseBoxcar}
	filterCache.Lock()
	defer filterCache.Unlock()
	if f, ok := filterCache.m[key]; ok {
		return f
	}
	var f *fourier.Filter
	if c.UseBoxcar {
		f = fourier.NewBoxcarFilter(n, n/B)
	} else {
		f = fourier.NewFlatWindowFilter(n, B, key.delta)
	}
	filterCache.m[key] = f
	return f
}

// modInverse returns the inverse of a modulo n for odd a and power-of-two n,
// via Newton (Hensel) lifting: each iteration doubles the number of correct
// low-order bits.
func modInverse(a, n int) int {
	a = ((a % n) + n) % n
	x := 1
	for bit := 1; bit < n; bit <<= 1 {
		x = x * (2 - a*x%n) % n
		x = ((x % n) + n) % n
	}
	return x
}

// omega returns e^{2*pi*i*num/den}.
func omega(num, den float64) complex128 {
	s, c := math.Sincos(2 * math.Pi * num / den)
	return complex(c, s)
}

// bucketize computes the B bucket values of the dilated-and-shifted signal by
// plain aliasing (no window): it samples x at positions σ·(j·(n/B) + s) mod n
// and returns the B-point FFT of those samples. Bucket b equals
// (B/n)·Σ_{f' ≡ b (mod B)} X'[f']·ω^{f's}. It is retained as the simplest
// illustration of frequency-domain hashing and for tests; the recovery
// algorithms use filteredBucketize, whose chunk-based bucket assignment is
// actually randomized by the dilation.
func bucketize(x []complex128, sigma, shift, B int) []complex128 {
	n := len(x)
	L := n / B
	samples := make([]complex128, B)
	for j := 0; j < B; j++ {
		t := (sigma * (j*L + shift)) % n
		if t < 0 {
			t += n
		}
		samples[j] = x[t]
	}
	return fourier.FFT(samples)
}

// filteredBucketize hashes the spectrum of the dilated signal
// x'(t) = x(σ·(t+shift)) into B buckets using the window filter: bucket b
// equals (1/n)·Σ_{f'} X'[f']·ω^{f'·shift}·Ĝ[b·(n/B) − f']. Only the filter's
// support (|g| samples of x) is read.
func filteredBucketize(x []complex128, filter *fourier.Filter, B, sigma, shift int) []complex128 {
	n := len(x)
	aliased := make([]complex128, B)
	for i, g := range filter.Time {
		t := (sigma * (i + shift)) % n
		if t < 0 {
			t += n
		}
		aliased[i%B] += g * x[t]
	}
	return fourier.FFT(aliased)
}

// nearestBucket returns the bucket whose centre frequency is closest to f.
func nearestBucket(f, n, B int) int {
	width := n / B
	return ((f + width/2) / width) % B
}

// subtractFromBins removes the contribution of already-recovered
// coefficients from the buckets of every shift. Only buckets within the
// filter's significant radius of a coefficient are touched: for flat-window
// filters the response outside a couple of neighbouring buckets is below the
// leakage parameter, so skipping those buckets changes the residual by a
// negligible amount while reducing the peeling cost from O(k·B) to O(k) per
// shift. For leaky filters (boxcar) the radius covers every bucket.
func subtractFromBins(bins [][]complex128, shifts []int, recovered map[int]complex128, filter *fourier.Filter, sigma, n, B int) {
	if len(recovered) == 0 {
		return
	}
	width := n / B
	invN := complex(1/float64(n), 0)
	radius := significantBucketRadius(filter, B)
	for f, v := range recovered {
		fp := (sigma * f) % n
		centre := nearestBucket(fp, n, B)
		lo, hi := -radius, radius
		if 2*radius+1 >= B {
			// The window wraps all the way around: visit each bucket once.
			lo, hi = 0, B-1
			centre = 0
		}
		for db := lo; db <= hi; db++ {
			b := ((centre+db)%B + B) % B
			offset := ((b*width-fp)%n + n) % n
			resp := filter.Freq[offset]
			if cmplx.Abs(resp) < 1e-14 {
				continue
			}
			base := v * resp * invN
			for si, s := range shifts {
				bins[si][b] -= base * omega(float64(fp)*float64(s), float64(n))
			}
		}
	}
}

// significantBucketRadius returns the largest bucket distance at which the
// filter's frequency response is still non-negligible. The result is
// memoized per filter because it requires a full scan of the response.
func significantBucketRadius(filter *fourier.Filter, B int) int {
	radiusCache.Lock()
	defer radiusCache.Unlock()
	key := radiusKey{filter: filter, b: B}
	if r, ok := radiusCache.m[key]; ok {
		return r
	}
	n := filter.N
	width := n / B
	const negligible = 1e-9
	radius := 1
	for o, v := range filter.Freq {
		if cmplx.Abs(v) < negligible {
			continue
		}
		// Circular distance of offset o from 0, in buckets.
		d := o
		if d > n/2 {
			d = n - d
		}
		if db := (d + width/2) / width; db > radius {
			radius = db
		}
	}
	if radius > B/2 {
		radius = B / 2
	}
	radiusCache.m[key] = radius
	return radius
}

type radiusKey struct {
	filter *fourier.Filter
	b      int
}

var radiusCache = struct {
	sync.Mutex
	m map[radiusKey]int
}{m: make(map[radiusKey]int)}

// recoveredToCoefficients converts the accumulator map into a sorted,
// truncated coefficient list.
func recoveredToCoefficients(recovered map[int]complex128, k int) []Coefficient {
	out := make([]Coefficient, 0, len(recovered))
	for f, v := range recovered {
		out = append(out, Coefficient{Freq: f, Value: v})
	}
	SortCoefficients(out)
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Exact recovers an exactly k-sparse spectrum of x (length must be a power
// of two). It returns the recovered coefficients; if the signal has more
// than k significant coefficients the result is a best-effort subset.
func Exact(x []complex128, k int, cfg Config, r *xrand.Rand) ([]Coefficient, error) {
	n := len(x)
	if !fourier.IsPowerOfTwo(n) {
		return nil, fmt.Errorf("sfft: signal length %d must be a power of two", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("sfft: k must be >= 1, got %d", k)
	}
	if k > n {
		k = n
	}
	tol := cfg.Tolerance
	if tol <= 0 {
		tol = 1e-5
	}
	B := fourier.NextPowerOfTwo(cfg.bucketFactor() * k)
	if B > n {
		B = n
	}
	filter := cfg.buildFilter(n, B, 1e-9)
	width := n / B
	shifts := []int{0, 1, 2}
	recovered := make(map[int]complex128)
	for round := 0; round < cfg.rounds(); round++ {
		sigma := randomOddDilation(r, n)
		sigmaInv := modInverse(sigma, n)
		bins := make([][]complex128, len(shifts))
		for si, s := range shifts {
			bins[si] = filteredBucketize(x, filter, B, sigma, s)
		}
		subtractFromBins(bins, shifts, recovered, filter, sigma, n, B)

		// The largest bucket magnitude this round sets the relative scale for
		// the empty-bucket and collision thresholds.
		var maxMag float64
		for b := 0; b < B; b++ {
			if m := cmplx.Abs(bins[0][b]); m > maxMag {
				maxMag = m
			}
		}
		if maxMag == 0 {
			break
		}
		for b := 0; b < B; b++ {
			u0, u1, u2 := bins[0][b], bins[1][b], bins[2][b]
			mag := cmplx.Abs(u0)
			if mag <= tol*maxMag {
				continue // (nearly) empty bucket
			}
			// Single-coefficient hypothesis: u1/u0 = ω^{f'}, u2/u0 = ω^{2f'}.
			fp := phaseToFreq(u1/u0, n)
			// Only the bucket nearest to fp may claim the coefficient; this
			// prevents a coefficient being recovered twice via leakage.
			if nearestBucket(fp, n, B) != b {
				continue
			}
			// Collision checks: the second shift must be consistent and the
			// rotation must preserve magnitude.
			if cmplx.Abs(u0*omega(2*float64(fp), float64(n))-u2) > tol*maxMag {
				continue
			}
			if math.Abs(cmplx.Abs(u1)-mag) > tol*maxMag {
				continue
			}
			// Undo the filter response to estimate the coefficient value.
			offset := ((b*width-fp)%n + n) % n
			resp := filter.Freq[offset]
			if cmplx.Abs(resp) < 0.3 {
				continue // transition region; recover it in another round
			}
			value := u0 * complex(float64(n), 0) / resp
			f := (sigmaInv * fp) % n
			recovered[f] += value
			if cmplx.Abs(recovered[f]) < tol*maxMag*float64(n) {
				delete(recovered, f)
			}
		}
	}
	return recoveredToCoefficients(recovered, k), nil
}

// Robust recovers the k dominant coefficients of a noisy signal whose
// spectrum is approximately k-sparse.
//
// Locations are estimated with a multi-scale phase ladder: buckets are
// computed at time shifts n/2, n/4, ..., 2, 1 in addition to shift 0, and
// the phase of bin(shift Δ)/bin(shift 0) ≈ 2π·f·Δ/n (mod 2π) determines the
// frequency one bit at a time, from the least significant bit (Δ = n/2) to
// the most significant (Δ = 1). Each bit decision only needs the phase to be
// accurate to within ±π/2, so the location survives noise that would make a
// single-step phase estimate useless. Values are the median of the
// rotation-corrected bucket values over all shifts, and buckets whose
// per-shift values disagree (collisions) are skipped for the round.
func Robust(x []complex128, k int, cfg Config, r *xrand.Rand) ([]Coefficient, error) {
	n := len(x)
	if !fourier.IsPowerOfTwo(n) {
		return nil, fmt.Errorf("sfft: signal length %d must be a power of two", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("sfft: k must be >= 1, got %d", k)
	}
	if k > n {
		k = n
	}
	tol := cfg.Tolerance
	if tol <= 0 {
		tol = 0.2
	}
	B := fourier.NextPowerOfTwo(cfg.bucketFactor() * k)
	if B > n {
		B = n
	}
	filter := cfg.buildFilter(n, B, 1e-6)
	width := n / B

	// Shift schedule: 0, then the power-of-two ladder n/2, n/4, ..., 1.
	// ladderIdx[j] is the index within `shifts` of the shift n/2^(j+1).
	shifts := []int{0}
	var ladderIdx []int
	for delta := n / 2; delta >= 1; delta /= 2 {
		ladderIdx = append(ladderIdx, len(shifts))
		shifts = append(shifts, delta)
	}

	recovered := make(map[int]complex128)
	for round := 0; round < cfg.rounds(); round++ {
		sigma := randomOddDilation(r, n)
		sigmaInv := modInverse(sigma, n)
		bins := make([][]complex128, len(shifts))
		for si, s := range shifts {
			bins[si] = filteredBucketize(x, filter, B, sigma, s)
		}
		subtractFromBins(bins, shifts, recovered, filter, sigma, n, B)

		// Per-round scales: the largest bucket sets the refinement threshold,
		// the median bucket magnitude estimates the noise floor. Requiring a
		// bucket to clear a multiple of the noise floor keeps rounds whose
		// residual is pure noise from contributing spurious coefficients,
		// while still allowing small genuine corrections (in low-noise rounds
		// the median is essentially zero).
		mags := make([]float64, B)
		var maxMag float64
		for b := 0; b < B; b++ {
			mags[b] = cmplx.Abs(bins[0][b])
			if mags[b] > maxMag {
				maxMag = mags[b]
			}
		}
		if maxMag == 0 {
			break
		}
		noiseFloor := medianFloat(mags)
		threshold := tol * maxMag
		accept := threshold
		if 3*noiseFloor > accept {
			accept = 3 * noiseFloor
		}

		for b := 0; b < B; b++ {
			u0 := bins[0][b]
			if cmplx.Abs(u0) <= accept {
				continue
			}
			fp, ok := locateByPhaseLadder(bins, ladderIdx, shifts, b, n, u0)
			if !ok {
				continue
			}
			if nearestBucket(fp, n, B) != b {
				continue
			}
			offset := ((b*width-fp)%n + n) % n
			resp := filter.Freq[offset]
			if cmplx.Abs(resp) < 0.5 {
				continue
			}
			// Median (coordinate-wise) of the rotation-corrected bucket values.
			reParts := make([]float64, 0, len(shifts))
			imParts := make([]float64, 0, len(shifts))
			for si, s := range shifts {
				corrected := bins[si][b] * cmplx.Conj(omega(float64(fp)*float64(s), float64(n)))
				reParts = append(reParts, real(corrected))
				imParts = append(imParts, imag(corrected))
			}
			med := complex(medianFloat(reParts), medianFloat(imParts))
			if cmplx.Abs(med) <= threshold {
				continue
			}
			// Collision / bad-location guard: the corrected values must agree.
			var dev []float64
			for i := range reParts {
				dev = append(dev, cmplx.Abs(complex(reParts[i], imParts[i])-med))
			}
			if medianFloat(dev) > 0.25*cmplx.Abs(med)+threshold {
				continue
			}
			value := med * complex(float64(n), 0) / resp
			f := (sigmaInv * fp) % n
			recovered[f] += value
		}
	}
	return recoveredToCoefficients(recovered, k), nil
}

// locateByPhaseLadder determines the dilated frequency of the (assumed
// single) dominant coefficient of bucket b, one bit at a time: the shift
// separation n/2^(j+1) exposes bit j of the frequency through the phase of
// bin(shift)/bin(0). It returns ok=false when any required bin is zero.
func locateByPhaseLadder(bins [][]complex128, ladderIdx, shifts []int, b, n int, u0 complex128) (int, bool) {
	if cmplx.Abs(u0) == 0 {
		return 0, false
	}
	fp := 0
	for j, si := range ladderIdx {
		delta := shifts[si]
		u := bins[si][b]
		if cmplx.Abs(u) == 0 {
			return 0, false
		}
		// Measured phase ≈ 2π·f·Δ/n (mod 2π). With Δ = n/2^(j+1) and the
		// low j bits of f already fixed in fp, the two candidates for bit j
		// predict phases that differ by π; pick the closer one.
		measured := cmplx.Phase(u / u0)
		bitStride := 1 << uint(j)
		cand0 := float64(fp) * 2 * math.Pi * float64(delta) / float64(n)
		cand1 := float64(fp+bitStride) * 2 * math.Pi * float64(delta) / float64(n)
		if angularDistance(measured, cand1) < angularDistance(measured, cand0) {
			fp += bitStride
		}
	}
	return fp % n, true
}

// angularDistance returns the absolute circular distance between two angles.
func angularDistance(a, b float64) float64 {
	d := math.Mod(a-b, 2*math.Pi)
	if d < 0 {
		d += 2 * math.Pi
	}
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// randomOddDilation returns a uniformly random odd dilation factor in [1, n).
func randomOddDilation(r *xrand.Rand, n int) int {
	if n <= 2 {
		return 1
	}
	return 2*r.Intn(n/2) + 1
}

// phaseToFreq converts a unit-magnitude ratio ω^{f} into the integer
// frequency f in [0, n).
func phaseToFreq(ratio complex128, n int) int {
	phase := cmplx.Phase(ratio) // in (-pi, pi]
	f := int(math.Round(phase / (2 * math.Pi) * float64(n)))
	return ((f % n) + n) % n
}

func medianFloat(v []float64) float64 {
	tmp := append([]float64(nil), v...)
	sort.Float64s(tmp)
	m := len(tmp)
	if m == 0 {
		return 0
	}
	if m%2 == 1 {
		return tmp[m/2]
	}
	return (tmp[m/2-1] + tmp[m/2]) / 2
}

// FFTTopK is the dense baseline: compute the full FFT and keep the k
// largest coefficients. It costs O(n log n) regardless of k.
func FFTTopK(x []complex128, k int) []Coefficient {
	spec := fourier.FFT(x)
	type fm struct {
		f int
		m float64
	}
	idx := make([]fm, len(spec))
	for f, v := range spec {
		idx[f] = fm{f: f, m: cmplx.Abs(v)}
	}
	sort.Slice(idx, func(i, j int) bool {
		if idx[i].m != idx[j].m {
			return idx[i].m > idx[j].m
		}
		return idx[i].f < idx[j].f
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]Coefficient, k)
	for i := 0; i < k; i++ {
		out[i] = Coefficient{Freq: idx[i].f, Value: spec[idx[i].f]}
	}
	SortCoefficients(out)
	return out
}
