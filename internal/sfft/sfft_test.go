package sfft

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/fourier"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// makeSparseSpectrumSignal builds a time-domain signal whose spectrum has
// exactly k non-zero coefficients at distinct random frequencies with unit-ish
// magnitudes, and returns the signal together with the true coefficients.
func makeSparseSpectrumSignal(r *xrand.Rand, n, k int) ([]complex128, []Coefficient) {
	freqs := r.Sample(n, k)
	coeffs := make([]Coefficient, k)
	spec := make([]complex128, n)
	for i, f := range freqs {
		phase := 2 * math.Pi * r.Float64()
		mag := 1 + r.Float64()
		v := cmplx.Rect(mag, phase)
		coeffs[i] = Coefficient{Freq: f, Value: v}
		spec[f] = v
	}
	x := fourier.InverseFFT(spec)
	SortCoefficients(coeffs)
	return x, coeffs
}

// coefficientError returns the relative l2 error between a recovered
// coefficient list and the ground truth, measured on dense spectra.
func coefficientError(truth, got []Coefficient, n int) float64 {
	return vec.CRelativeError(ToDense(truth, n), ToDense(got, n))
}

func TestModInverse(t *testing.T) {
	for _, n := range []int{2, 4, 8, 1024, 1 << 16} {
		for _, a := range []int{1, 3, 5, 7, 17, n - 1} {
			if a >= n {
				continue
			}
			inv := modInverse(a, n)
			if a*inv%n != 1 {
				t.Fatalf("modInverse(%d, %d) = %d is not an inverse", a, n, inv)
			}
		}
	}
}

func TestPhaseToFreq(t *testing.T) {
	n := 256
	for _, f := range []int{0, 1, 5, 127, 128, 200, 255} {
		ratio := omega(float64(f), float64(n))
		if got := phaseToFreq(ratio, n); got != f {
			t.Errorf("phaseToFreq for f=%d returned %d", f, got)
		}
	}
}

func TestBucketizeAliasing(t *testing.T) {
	// With sigma=1 and a single tone at frequency f, bucket f mod B must hold
	// (B/n) * X[f] and the others must be ~0.
	n, B := 256, 16
	f0 := 37
	spec := make([]complex128, n)
	spec[f0] = 3 + 4i
	x := fourier.InverseFFT(spec)
	buckets := bucketize(x, 1, 0, B)
	for b := 0; b < B; b++ {
		want := complex(0, 0)
		if b == f0%B {
			want = (3 + 4i) * complex(float64(B)/float64(n), 0)
		}
		if cmplx.Abs(buckets[b]-want) > 1e-9 {
			t.Fatalf("bucket %d = %v, want %v", b, buckets[b], want)
		}
	}
	// Shifted bucketization multiplies by omega^{f*s}.
	buckets1 := bucketize(x, 1, 1, B)
	want := (3 + 4i) * complex(float64(B)/float64(n), 0) * omega(float64(f0), float64(n))
	if cmplx.Abs(buckets1[f0%B]-want) > 1e-9 {
		t.Fatalf("shifted bucket = %v, want %v", buckets1[f0%B], want)
	}
}

func TestExactRecoversSparseSpectrum(t *testing.T) {
	r := xrand.New(1)
	for _, tc := range []struct{ n, k int }{{256, 1}, {1024, 5}, {4096, 20}, {16384, 50}} {
		x, truth := makeSparseSpectrumSignal(r, tc.n, tc.k)
		got, err := Exact(x, tc.k, Config{}, r)
		if err != nil {
			t.Fatal(err)
		}
		if e := coefficientError(truth, got, tc.n); e > 1e-6 {
			t.Errorf("n=%d k=%d: recovery error %v", tc.n, tc.k, e)
		}
	}
}

func TestExactMatchesFFTTopK(t *testing.T) {
	r := xrand.New(2)
	n, k := 2048, 10
	x, _ := makeSparseSpectrumSignal(r, n, k)
	exact, err := Exact(x, k, Config{}, r)
	if err != nil {
		t.Fatal(err)
	}
	baseline := FFTTopK(x, k)
	if e := coefficientError(baseline, exact, n); e > 1e-6 {
		t.Fatalf("Exact and FFTTopK disagree by %v", e)
	}
}

func TestExactErrors(t *testing.T) {
	r := xrand.New(3)
	if _, err := Exact(make([]complex128, 100), 4, Config{}, r); err == nil {
		t.Error("non-power-of-two length should fail")
	}
	if _, err := Exact(make([]complex128, 128), 0, Config{}, r); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := Robust(make([]complex128, 100), 4, Config{}, r); err == nil {
		t.Error("robust: non-power-of-two length should fail")
	}
	if _, err := Robust(make([]complex128, 128), 0, Config{}, r); err == nil {
		t.Error("robust: k=0 should fail")
	}
}

func TestExactZeroSignal(t *testing.T) {
	r := xrand.New(4)
	got, err := Exact(make([]complex128, 512), 5, Config{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("zero signal should recover no coefficients, got %v", got)
	}
}

func TestExactKLargerThanSparsity(t *testing.T) {
	// Asking for more coefficients than exist should still return only the
	// true ones.
	r := xrand.New(5)
	n := 1024
	x, truth := makeSparseSpectrumSignal(r, n, 3)
	got, err := Exact(x, 10, Config{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if e := coefficientError(truth, got, n); e > 1e-6 {
		t.Fatalf("recovery error %v", e)
	}
}

func TestRobustRecoversUnderNoise(t *testing.T) {
	r := xrand.New(6)
	n, k := 4096, 8
	x, truth := makeSparseSpectrumSignal(r, n, k)
	// Add time-domain white noise well below the tone energy.
	noisy := make([]complex128, n)
	noiseStd := 0.01 / math.Sqrt(float64(n))
	for i := range x {
		noisy[i] = x[i] + complex(noiseStd*r.NormFloat64(), noiseStd*r.NormFloat64())
	}
	got, err := Robust(noisy, k, Config{Rounds: 10}, r)
	if err != nil {
		t.Fatal(err)
	}
	// All true frequencies must be located.
	gotFreqs := map[int]bool{}
	for _, c := range got {
		gotFreqs[c.Freq] = true
	}
	for _, c := range truth {
		if !gotFreqs[c.Freq] {
			t.Fatalf("robust sFFT missed frequency %d (recovered %v)", c.Freq, got)
		}
	}
	if e := coefficientError(truth, got, n); e > 0.15 {
		t.Errorf("robust recovery error %v", e)
	}
}

func TestRobustOnNoiselessSignal(t *testing.T) {
	r := xrand.New(7)
	n, k := 2048, 6
	x, truth := makeSparseSpectrumSignal(r, n, k)
	got, err := Robust(x, k, Config{}, r)
	if err != nil {
		t.Fatal(err)
	}
	if e := coefficientError(truth, got, n); e > 1e-3 {
		t.Errorf("robust on clean signal error %v", e)
	}
}

func TestFFTTopK(t *testing.T) {
	n := 256
	spec := make([]complex128, n)
	spec[3] = 10
	spec[100] = 5i
	spec[200] = 1
	x := fourier.InverseFFT(spec)
	top := FFTTopK(x, 2)
	if len(top) != 2 {
		t.Fatalf("FFTTopK returned %d coefficients", len(top))
	}
	if top[0].Freq != 3 || top[1].Freq != 100 {
		t.Fatalf("FFTTopK = %v", top)
	}
	if k := len(FFTTopK(x, 1000)); k != n {
		t.Fatalf("FFTTopK with huge k returned %d", k)
	}
}

func TestToDenseAndSort(t *testing.T) {
	cs := []Coefficient{{Freq: 1, Value: 1}, {Freq: 3, Value: 5}, {Freq: 1, Value: 2}}
	dense := ToDense(cs, 4)
	if dense[1] != 3 || dense[3] != 5 {
		t.Fatalf("ToDense = %v", dense)
	}
	SortCoefficients(cs)
	if cs[0].Freq != 3 {
		t.Fatalf("SortCoefficients = %v", cs)
	}
}

func TestFilteredBinsLeakage(t *testing.T) {
	// Plant one tone per bucket (well separated) and compare per-bucket
	// estimation error between the boxcar filter and the flat-window filter.
	r := xrand.New(8)
	n, B := 4096, 16
	width := n / B
	coeffs := make([]Coefficient, 0, B/2)
	spec := make([]complex128, n)
	for b := 0; b < B; b += 2 {
		f := b*width + r.Intn(width/4) - width/8 // near the bucket centre
		f = ((f % n) + n) % n
		v := cmplx.Rect(1+r.Float64(), 2*math.Pi*r.Float64())
		spec[f] += v
		coeffs = append(coeffs, Coefficient{Freq: f, Value: spec[f]})
	}
	x := fourier.InverseFFT(spec)

	boxcar := fourier.NewBoxcarFilter(n, width)
	flat := fourier.NewFlatWindowFilter(n, B, 1e-8)

	boxErr, err := LeakageExperimentResult(x, coeffs, boxcar, B)
	if err != nil {
		t.Fatal(err)
	}
	flatErr, err := LeakageExperimentResult(x, coeffs, flat, B)
	if err != nil {
		t.Fatal(err)
	}
	if flatErr >= boxErr {
		t.Fatalf("flat-window estimation error %v not better than boxcar %v", flatErr, boxErr)
	}
	if flatErr > 0.05 {
		t.Errorf("flat-window estimation error %v unexpectedly high", flatErr)
	}
}

func TestFilteredBinsErrors(t *testing.T) {
	filter := fourier.NewBoxcarFilter(64, 8)
	if _, err := FilteredBins(make([]complex128, 128), filter, 8); err == nil {
		t.Error("mismatched filter length should fail")
	}
	if _, err := FilteredBins(make([]complex128, 64), filter, 7); err == nil {
		t.Error("B not dividing n should fail")
	}
}

func TestKMSparseHadamardRecoversPlantedCoefficients(t *testing.T) {
	r := xrand.New(9)
	m := 10
	n := 1 << m
	// Plant 4 large coefficients.
	planted := map[uint64]float64{
		0x005: 1.0,
		0x123: -1.0,
		0x380: 0.9,
		0x0ff: -1.1,
	}
	f := make([]float64, n)
	for x := 0; x < n; x++ {
		for s, v := range planted {
			f[x] += v * parity(s&uint64(x))
		}
	}
	cfg := KMConfig{OuterSamples: 512, InnerSamples: 64, LeafSamples: 8192}
	got, err := KMSparseHadamard(f, 0.5, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]float64{}
	for _, c := range got {
		found[c.S] = c.Value
	}
	for s, v := range planted {
		est, ok := found[s]
		if !ok {
			t.Fatalf("KM missed planted coefficient %#x (got %v)", s, got)
		}
		if math.Abs(est-v) > 0.15 {
			t.Errorf("KM coefficient %#x = %v, want %v", s, est, v)
		}
	}
}

func TestKMSparseHadamardAgreesWithDenseBaseline(t *testing.T) {
	r := xrand.New(10)
	m := 8
	n := 1 << m
	planted := map[uint64]float64{0x11: 2.0, 0x80: -1.5}
	f := make([]float64, n)
	for x := 0; x < n; x++ {
		for s, v := range planted {
			f[x] += v * parity(s&uint64(x))
		}
	}
	dense := DenseHadamardTopK(f, 2)
	km, err := KMSparseHadamard(f, 1.0, KMConfig{OuterSamples: 512, InnerSamples: 64, LeafSamples: 8192}, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(dense) != 2 || len(km) != 2 {
		t.Fatalf("expected 2 coefficients from both: dense %v km %v", dense, km)
	}
	for i := range dense {
		if dense[i].S != km[i].S {
			t.Fatalf("dense and KM disagree on support: %v vs %v", dense, km)
		}
		if math.Abs(dense[i].Value-km[i].Value) > 0.1 {
			t.Errorf("coefficient %#x: dense %v km %v", dense[i].S, dense[i].Value, km[i].Value)
		}
	}
}

func TestKMSparseHadamardErrors(t *testing.T) {
	r := xrand.New(11)
	if _, err := KMSparseHadamard(make([]float64, 100), 0.5, KMConfig{}, r); err == nil {
		t.Error("non-power-of-two length should fail")
	}
	if _, err := KMSparseHadamard(make([]float64, 64), 0, KMConfig{}, r); err == nil {
		t.Error("zero threshold should fail")
	}
	// Length-1 function.
	got, err := KMSparseHadamard([]float64{3}, 1, KMConfig{}, r)
	if err != nil || len(got) != 1 || got[0].Value != 3 {
		t.Errorf("length-1 KM = %v, %v", got, err)
	}
}

func TestDenseHadamardTopK(t *testing.T) {
	// f = 4 * chi_5 over {0,1}^3: FWHT coefficient 5 should dominate.
	n := 8
	f := make([]float64, n)
	for x := 0; x < n; x++ {
		f[x] = 4 * parity(5&uint64(x))
	}
	top := DenseHadamardTopK(f, 1)
	if len(top) != 1 || top[0].S != 5 || math.Abs(top[0].Value-4) > 1e-12 {
		t.Fatalf("DenseHadamardTopK = %v", top)
	}
}

func BenchmarkExactSFFT(b *testing.B) {
	r := xrand.New(1)
	x, _ := makeSparseSpectrumSignal(r, 1<<16, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exact(x, 32, Config{}, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFullFFTBaseline(b *testing.B) {
	r := xrand.New(1)
	x, _ := makeSparseSpectrumSignal(r, 1<<16, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFTTopK(x, 32)
	}
}
