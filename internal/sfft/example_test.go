package sfft_test

import (
	"fmt"

	"repro/internal/fourier"
	"repro/internal/sfft"
	"repro/internal/xrand"
)

// ExampleExact recovers a 3-sparse spectrum without computing a full FFT.
func ExampleExact() {
	r := xrand.New(1)
	const n = 1024

	// A spectrum with three tones.
	spec := make([]complex128, n)
	spec[17] = 2
	spec[300] = 1i
	spec[900] = -1.5
	signal := fourier.InverseFFT(spec)

	coeffs, err := sfft.Exact(signal, 3, sfft.Config{}, r)
	if err != nil {
		panic(err)
	}
	for _, c := range coeffs {
		fmt.Printf("freq %d magnitude %.1f\n", c.Freq, magnitude(c.Value))
	}
	// Output:
	// freq 17 magnitude 2.0
	// freq 900 magnitude 1.5
	// freq 300 magnitude 1.0
}

func magnitude(v complex128) float64 {
	re, im := real(v), imag(v)
	if re < 0 {
		re = -re
	}
	if im < 0 {
		im = -im
	}
	if re > im {
		return re
	}
	return im
}
