package linalg

import (
	"math"
	"testing"

	"repro/internal/mat"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func denseFrom(rows, cols int, data []float64) *mat.Dense {
	a := mat.NewDense(rows, cols)
	copy(a.Data, data)
	return a
}

func TestCholeskyKnownFactor(t *testing.T) {
	// A = [[4,2],[2,3]] has L = [[2,0],[1,sqrt(2)]].
	a := denseFrom(2, 2, []float64{4, 2, 2, 3})
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.At(0, 0)-2) > 1e-12 || math.Abs(l.At(1, 0)-1) > 1e-12 ||
		math.Abs(l.At(1, 1)-math.Sqrt2) > 1e-12 || l.At(0, 1) != 0 {
		t.Fatalf("Cholesky factor wrong: %v", l.Data)
	}
}

func TestCholeskyErrors(t *testing.T) {
	if _, err := Cholesky(mat.NewDense(2, 3)); err == nil {
		t.Error("non-square matrix should fail")
	}
	// Singular matrix.
	a := denseFrom(2, 2, []float64{1, 1, 1, 1})
	if _, err := Cholesky(a); err == nil {
		t.Error("singular matrix should fail")
	}
}

func TestSolveCholesky(t *testing.T) {
	a := denseFrom(2, 2, []float64{4, 2, 2, 3})
	x, err := SolveCholesky(a, []float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	// 4x+2y=10, 2x+3y=9 -> x=1.5, y=2.
	if math.Abs(x[0]-1.5) > 1e-10 || math.Abs(x[1]-2) > 1e-10 {
		t.Fatalf("SolveCholesky = %v", x)
	}
	if _, err := SolveCholesky(a, []float64{1}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestLeastSquaresExactSystem(t *testing.T) {
	// Overdetermined but consistent system: A x* = b exactly.
	r := xrand.New(1)
	a := mat.NewGaussian(r, 30, 5)
	xTrue := []float64{1, -2, 3, 0.5, -1}
	b := a.MulVec(xTrue)
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if vec.Norm2(vec.Sub(x, xTrue)) > 1e-6 {
		t.Fatalf("LeastSquares = %v, want %v", x, xTrue)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// For the LS solution, A^T (b - A x) must be (nearly) zero.
	r := xrand.New(2)
	a := mat.NewGaussian(r, 40, 6)
	b := make([]float64, 40)
	for i := range b {
		b[i] = r.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	resid := vec.Sub(b, a.MulVec(x))
	if g := vec.Norm2(a.TMulVec(resid)); g > 1e-6 {
		t.Fatalf("normal-equation residual %v not near zero", g)
	}
}

func TestLeastSquaresDimensionError(t *testing.T) {
	if _, err := LeastSquares(mat.NewDense(3, 2), []float64{1, 2}); err == nil {
		t.Error("dimension mismatch should fail")
	}
}

func TestCGNormalMatchesDirectSolve(t *testing.T) {
	r := xrand.New(3)
	a := mat.NewGaussian(r, 50, 10)
	xTrue := make([]float64, 10)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	b := a.MulVec(xTrue)
	x, iters := CGNormal(a, b, 200, 1e-12)
	if iters == 0 {
		t.Fatal("CG did no iterations")
	}
	if vec.Norm2(vec.Sub(x, xTrue)) > 1e-6 {
		t.Fatalf("CGNormal error %v", vec.Norm2(vec.Sub(x, xTrue)))
	}
}

func TestCGNormalWorksWithSparseOperator(t *testing.T) {
	r := xrand.New(4)
	a := mat.NewSparseSign(r, 60, 20, 4)
	xTrue := make([]float64, 20)
	for i := range xTrue {
		xTrue[i] = r.NormFloat64()
	}
	b := a.MulVec(xTrue)
	x, _ := CGNormal(a, b, 500, 1e-12)
	if vec.Norm2(vec.Sub(x, xTrue)) > 1e-5 {
		t.Fatalf("CGNormal sparse error %v", vec.Norm2(vec.Sub(x, xTrue)))
	}
}

func TestCGNormalZeroRHS(t *testing.T) {
	r := xrand.New(5)
	a := mat.NewGaussian(r, 10, 4)
	x, iters := CGNormal(a, make([]float64, 10), 100, 1e-10)
	if iters != 0 || vec.Norm2(x) != 0 {
		t.Fatalf("zero rhs should give zero solution immediately, got iters=%d", iters)
	}
}

func TestCGNormalPanicsOnDimension(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CGNormal(mat.NewDense(3, 2), []float64{1, 2}, 10, 1e-6)
}

func TestLeastSquaresOnSupport(t *testing.T) {
	r := xrand.New(6)
	a := mat.NewGaussian(r, 40, 100)
	x := make([]float64, 100)
	x[7] = 3
	x[42] = -2
	b := a.MulVec(x)
	got, err := LeastSquaresOnSupport(a, b, []int{7, 42})
	if err != nil {
		t.Fatal(err)
	}
	if vec.Norm2(vec.Sub(got, x)) > 1e-6 {
		t.Fatalf("support-restricted LS error %v", vec.Norm2(vec.Sub(got, x)))
	}
	// Empty support returns all zeros.
	zero, err := LeastSquaresOnSupport(a, b, nil)
	if err != nil || vec.Norm2(zero) != 0 {
		t.Fatal("empty support should return zero vector")
	}
	// Bad support index.
	if _, err := LeastSquaresOnSupport(a, b, []int{1000}); err == nil {
		t.Error("out-of-range support should fail")
	}
	if _, err := LeastSquaresOnSupport(a, []float64{1}, []int{0}); err == nil {
		t.Error("bad b length should fail")
	}
}

func TestPowerIterationFindsDominantDirection(t *testing.T) {
	// Diagonal operator with one dominant direction.
	a := mat.NewDense(5, 5)
	diag := []float64{10, 1, 0.5, 0.2, 0.1}
	for i, d := range diag {
		a.Set(i, i, d)
	}
	r := xrand.New(7)
	v, sigma := PowerIteration(a, 100, r)
	if math.Abs(math.Abs(v[0])-1) > 1e-6 {
		t.Fatalf("power iteration did not converge to e1: %v", v)
	}
	if math.Abs(sigma-10) > 1e-6 {
		t.Fatalf("sigma = %v, want 10", sigma)
	}
}

func TestTopSingularVectorsOrthonormal(t *testing.T) {
	r := xrand.New(8)
	a := mat.NewGaussian(r, 30, 12)
	v := TopSingularVectors(a, 4, 30, r)
	rows, cols := v.Dims()
	if rows != 12 || cols != 4 {
		t.Fatalf("Dims = %d,%d", rows, cols)
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			dot := vec.Dot(v.Col(i), v.Col(j))
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("columns %d,%d not orthonormal: dot=%v", i, j, dot)
			}
		}
	}
}

func TestTopSingularVectorsCapturesEnergy(t *testing.T) {
	// Build a matrix with an exactly rank-2 structure plus small noise; the
	// top-2 singular subspace should capture almost all the energy.
	r := xrand.New(9)
	n := 20
	u1 := make([]float64, n)
	u2 := make([]float64, n)
	for i := 0; i < n; i++ {
		u1[i] = r.NormFloat64()
		u2[i] = r.NormFloat64()
	}
	a := mat.NewDense(50, n)
	for i := 0; i < 50; i++ {
		c1 := r.NormFloat64() * 10
		c2 := r.NormFloat64() * 5
		for j := 0; j < n; j++ {
			a.Set(i, j, c1*u1[j]+c2*u2[j]+0.01*r.NormFloat64())
		}
	}
	v := TopSingularVectors(a, 2, 50, r)
	// Project every row of A onto the subspace and compare energy.
	var total, captured float64
	for i := 0; i < 50; i++ {
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			row[j] = a.At(i, j)
		}
		total += vec.Dot(row, row)
		for c := 0; c < 2; c++ {
			p := vec.Dot(row, v.Col(c))
			captured += p * p
		}
	}
	if captured/total < 0.99 {
		t.Fatalf("top-2 subspace captured only %.3f of the energy", captured/total)
	}
}

func TestGram(t *testing.T) {
	a := denseFrom(3, 2, []float64{1, 0, 0, 1, 1, 1})
	g := Gram(a)
	want := []float64{2, 1, 1, 2}
	for i, v := range want {
		if math.Abs(g.Data[i]-v) > 1e-12 {
			t.Fatalf("Gram = %v, want %v", g.Data, want)
		}
	}
}
