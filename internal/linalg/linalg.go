// Package linalg provides the small dense numerical linear algebra kernels
// needed by the compressed-sensing and sketch-and-solve packages: least
// squares via conjugate gradients on the normal equations, Cholesky-based
// solves for small systems, Gram matrices, and power iteration for dominant
// subspaces.
//
// Nothing here is meant to compete with LAPACK; the matrices involved are
// either small (restricted to a sparse support of size k) or tall-and-skinny
// sketched systems, and the stdlib-only implementations below are adequate
// and deterministic.
package linalg

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// ErrSingular is returned when a solve encounters a (numerically) singular
// system.
var ErrSingular = errors.New("linalg: singular or indefinite system")

// Gram returns A^T A for a dense matrix A (size cols x cols).
func Gram(a *mat.Dense) *mat.Dense {
	return a.Transpose().MulMat(a)
}

// Cholesky computes the lower-triangular Cholesky factor L of a symmetric
// positive-definite matrix (a is not modified). It returns ErrSingular if a
// pivot drops below a tiny threshold.
func Cholesky(a *mat.Dense) (*mat.Dense, error) {
	n, m := a.Dims()
	if n != m {
		return nil, fmt.Errorf("linalg: Cholesky requires a square matrix, got %dx%d", n, m)
	}
	l := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 1e-12 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves A x = b for symmetric positive-definite A using the
// Cholesky factorization.
func SolveCholesky(a *mat.Dense, b []float64) ([]float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n, _ := a.Dims()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: SolveCholesky dimension mismatch")
	}
	// Forward substitution L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back substitution L^T x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x, nil
}

// LeastSquares solves min_x ||A x - b||_2 for a dense A (rows >= cols) via
// the normal equations with a small ridge term for numerical stability.
func LeastSquares(a *mat.Dense, b []float64) ([]float64, error) {
	rows, cols := a.Dims()
	if len(b) != rows {
		return nil, fmt.Errorf("linalg: LeastSquares needs len(b)=%d, got %d", rows, len(b))
	}
	g := Gram(a)
	// Ridge regularization scaled to the trace keeps near-singular Gram
	// matrices solvable without noticeably biasing well-posed systems.
	trace := 0.0
	for i := 0; i < cols; i++ {
		trace += g.At(i, i)
	}
	ridge := 1e-12 * (trace + 1)
	for i := 0; i < cols; i++ {
		g.Set(i, i, g.At(i, i)+ridge)
	}
	rhs := a.TMulVec(b)
	return SolveCholesky(g, rhs)
}

// CGNormal solves min_x ||A x - b||_2 for any operator A by running
// conjugate gradients on the normal equations A^T A x = A^T b (CGNR). It
// stops when the residual of the normal equations drops below tol or after
// maxIter iterations, and returns the iterate together with the number of
// iterations performed.
func CGNormal(a mat.Operator, b []float64, maxIter int, tol float64) ([]float64, int) {
	m, n := a.Dims()
	if len(b) != m {
		panic(fmt.Sprintf("linalg: CGNormal needs len(b)=%d, got %d", m, len(b)))
	}
	if maxIter <= 0 {
		maxIter = 2 * n
	}
	x := make([]float64, n)
	// r = A^T b - A^T A x = A^T b initially (x = 0).
	r := a.TMulVec(b)
	p := vec.Clone(r)
	rsOld := vec.Dot(r, r)
	if math.Sqrt(rsOld) < tol {
		return x, 0
	}
	iter := 0
	for ; iter < maxIter; iter++ {
		ap := a.TMulVec(a.MulVec(p))
		denom := vec.Dot(p, ap)
		if denom <= 0 {
			break
		}
		alpha := rsOld / denom
		vec.AXPY(alpha, p, x)
		vec.AXPY(-alpha, ap, r)
		rsNew := vec.Dot(r, r)
		if math.Sqrt(rsNew) < tol {
			iter++
			break
		}
		beta := rsNew / rsOld
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rsOld = rsNew
	}
	return x, iter
}

// LeastSquaresOnSupport solves the restricted least-squares problem
// min_z ||A_S z - b||_2 where A_S is A restricted to the columns in support,
// and scatters the solution back into a length-n vector. This is the
// workhorse of OMP and of the debiasing step in sparse recovery.
func LeastSquaresOnSupport(a mat.Operator, b []float64, support []int) ([]float64, error) {
	m, n := a.Dims()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: LeastSquaresOnSupport needs len(b)=%d, got %d", m, len(b))
	}
	k := len(support)
	if k == 0 {
		return make([]float64, n), nil
	}
	// Materialize A_S column by column via unit-vector products.
	sub := mat.NewDense(m, k)
	e := make([]float64, n)
	for c, j := range support {
		if j < 0 || j >= n {
			return nil, fmt.Errorf("linalg: support index %d out of range", j)
		}
		e[j] = 1
		col := a.MulVec(e)
		e[j] = 0
		for i := 0; i < m; i++ {
			sub.Set(i, c, col[i])
		}
	}
	z, err := LeastSquares(sub, b)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for c, j := range support {
		out[j] = z[c]
	}
	return out, nil
}

// PowerIteration returns an approximation of the top singular vector pair of
// the operator A (unit-norm right singular vector v, singular value sigma).
// It runs the given number of iterations of v <- normalize(A^T A v).
func PowerIteration(a mat.Operator, iters int, r *xrand.Rand) (v []float64, sigma float64) {
	_, n := a.Dims()
	v = make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	normalize(v)
	for it := 0; it < iters; it++ {
		w := a.TMulVec(a.MulVec(v))
		nw := vec.Norm2(w)
		if nw == 0 {
			return v, 0
		}
		vec.ScaleInPlace(1/nw, w)
		v = w
	}
	return v, vec.Norm2(a.MulVec(v))
}

// TopSingularVectors returns approximations of the top-k right singular
// vectors of A via orthogonal (block power) iteration. The returned vectors
// are the columns of an n×k orthonormal matrix.
func TopSingularVectors(a mat.Operator, k, iters int, r *xrand.Rand) *mat.Dense {
	_, n := a.Dims()
	if k > n {
		k = n
	}
	// Start from a random n×k block.
	block := mat.NewDense(n, k)
	for i := range block.Data {
		block.Data[i] = r.NormFloat64()
	}
	orthonormalize(block)
	for it := 0; it < iters; it++ {
		// block <- A^T A block, then re-orthonormalize.
		next := mat.NewDense(n, k)
		for c := 0; c < k; c++ {
			col := block.Col(c)
			w := a.TMulVec(a.MulVec(col))
			for i := 0; i < n; i++ {
				next.Set(i, c, w[i])
			}
		}
		orthonormalize(next)
		block = next
	}
	return block
}

// normalize scales x to unit l2 norm (no-op for the zero vector).
func normalize(x []float64) {
	n := vec.Norm2(x)
	if n > 0 {
		vec.ScaleInPlace(1/n, x)
	}
}

// orthonormalize applies modified Gram-Schmidt to the columns of a in place.
func orthonormalize(a *mat.Dense) {
	rows, cols := a.Dims()
	for c := 0; c < cols; c++ {
		col := a.Col(c)
		for prev := 0; prev < c; prev++ {
			p := a.Col(prev)
			proj := vec.Dot(col, p)
			vec.AXPY(-proj, p, col)
		}
		normalize(col)
		for i := 0; i < rows; i++ {
			a.Set(i, c, col[i])
		}
	}
}
