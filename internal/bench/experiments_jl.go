package bench

import (
	"fmt"
	"time"

	"repro/internal/jl"
	"repro/internal/linalg"
	"repro/internal/mat"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// RunE5JL compares dense Gaussian, sparse, and SRHT embeddings: distortion
// versus target dimension, and embedding time as a function of the input
// sparsity (the survey's claim that sparse embeddings run in time
// proportional to nnz(x)).
func RunE5JL(cfg Config) []Table {
	n := 1 << 14
	trials := 30
	if cfg.Quick {
		n = 1 << 10
		trials = 10
	}
	r := xrand.New(cfg.Seed)

	distortion := Table{
		Title:   fmt.Sprintf("E5a: mean norm distortion vs target dimension m (n=%d, %d random vectors)", n, trials),
		Columns: []string{"m", "dense-gaussian", "sparse-jl(s=1)", "sparse-jl(s=4)", "srht"},
	}
	for _, m := range []int{64, 128, 256, 512} {
		embeds := []jl.Embedding{
			jl.NewDenseJL(xrand.New(cfg.Seed+1), m, n),
			jl.NewSparseJL(xrand.New(cfg.Seed+2), m, n, 1),
			jl.NewSparseJL(xrand.New(cfg.Seed+3), m, n, 4),
			jl.NewSRHT(xrand.New(cfg.Seed+4), m, n),
		}
		row := []string{fmtInt(m)}
		for _, e := range embeds {
			var sum float64
			for i := 0; i < trials; i++ {
				x := make([]float64, n)
				for j := range x {
					x[j] = r.NormFloat64()
				}
				sum += jl.Distortion(e, x)
			}
			row = append(row, fmtFloat(sum/float64(trials)))
		}
		distortion.AddRow(row...)
	}

	timing := Table{
		Title:   fmt.Sprintf("E5b: embedding time vs input sparsity (n=%d, m=256)", n),
		Columns: []string{"nnz(x)", "dense-gaussian", "sparse-jl(s=1)", "sparse-jl(s=4)", "srht"},
	}
	m := 256
	dense := jl.NewDenseJL(xrand.New(cfg.Seed+1), m, n)
	s1 := jl.NewSparseJL(xrand.New(cfg.Seed+2), m, n, 1)
	s4 := jl.NewSparseJL(xrand.New(cfg.Seed+3), m, n, 4)
	srht := jl.NewSRHT(xrand.New(cfg.Seed+4), m, n)
	reps := 20
	if cfg.Quick {
		reps = 3
	}
	var sparsities []int
	for _, nnz := range []int{16, 256, 4096, n} {
		if nnz <= n && (len(sparsities) == 0 || sparsities[len(sparsities)-1] != nnz) {
			sparsities = append(sparsities, nnz)
		}
	}
	for _, nnz := range sparsities {
		x := make([]float64, n)
		for _, idx := range r.Sample(n, nnz) {
			x[idx] = r.NormFloat64()
		}
		row := []string{fmtInt(nnz)}
		for _, e := range []jl.Embedding{dense, s1, s4, srht} {
			d := timeIt(func() {
				for i := 0; i < reps; i++ {
					e.Apply(x)
				}
			})
			row = append(row, fmtDuration(d/time.Duration(reps)))
		}
		timing.AddRow(row...)
	}
	return []Table{distortion, timing}
}

// RunE6SketchSolve compares sketch-and-solve least squares and low-rank
// approximation against the exact solves: residual quality and wall time.
func RunE6SketchSolve(cfg Config) []Table {
	cols := 30
	sizes := []int{2000, 8000, 32000}
	if cfg.Quick {
		cols = 10
		sizes = []int{500, 1500}
	}
	ls := Table{
		Title:   fmt.Sprintf("E6a: overconstrained least squares, %d columns: residual ratio and time", cols),
		Columns: []string{"rows", "sketch rows", "resid(sketch)/resid(exact)", "t(exact)", "t(sketch)"},
	}
	for _, rows := range sizes {
		r := xrand.New(cfg.Seed)
		a := mat.NewGaussian(r, rows, cols)
		xTrue := make([]float64, cols)
		for i := range xTrue {
			xTrue[i] = r.NormFloat64()
		}
		b := a.MulVec(xTrue)
		for i := range b {
			b[i] += 0.05 * r.NormFloat64()
		}
		sketchRows := 20 * cols
		var exact, sketched []float64
		var err error
		tExact := timeIt(func() { exact, err = linalg.LeastSquares(a, b) })
		if err != nil {
			continue
		}
		tSketch := timeIt(func() { sketched, err = jl.SketchedLeastSquares(r, a, b, sketchRows) })
		if err != nil {
			continue
		}
		re := vec.Norm2(vec.Sub(b, a.MulVec(exact)))
		rs := vec.Norm2(vec.Sub(b, a.MulVec(sketched)))
		ratio := 1.0
		if re > 0 {
			ratio = rs / re
		}
		ls.AddRow(fmtInt(rows), fmtInt(sketchRows), fmtFloat(ratio), fmtDuration(tExact), fmtDuration(tSketch))
	}

	lr := Table{
		Title:   "E6b: rank-5 approximation error (Frobenius, relative) sketched vs power iteration on the full matrix",
		Columns: []string{"rows", "cols", "rel err (sketched)", "rel err (full power)", "t(sketched)", "t(full)"},
	}
	lrSizes := []struct{ rows, cols int }{{1000, 60}, {4000, 80}}
	if cfg.Quick {
		lrSizes = []struct{ rows, cols int }{{300, 30}}
	}
	for _, sz := range lrSizes {
		r := xrand.New(cfg.Seed + 5)
		rank := 5
		basis := mat.NewGaussian(r, rank, sz.cols)
		a := mat.NewDense(sz.rows, sz.cols)
		for i := 0; i < sz.rows; i++ {
			for c := 0; c < rank; c++ {
				coef := r.NormFloat64()
				for j := 0; j < sz.cols; j++ {
					a.Set(i, j, a.At(i, j)+coef*basis.At(c, j))
				}
			}
			for j := 0; j < sz.cols; j++ {
				a.Set(i, j, a.At(i, j)+0.01*r.NormFloat64())
			}
		}
		total := vec.Norm2(a.Data)
		var qSketch, qFull *mat.Dense
		var err error
		tSketch := timeIt(func() { qSketch, err = jl.SketchedLowRank(r, a, rank, 10) })
		if err != nil {
			continue
		}
		tFull := timeIt(func() { qFull = linalg.TopSingularVectors(a, rank, 40, r) })
		lr.AddRow(fmtInt(sz.rows), fmtInt(sz.cols),
			fmtFloat(jl.LowRankError(a, qSketch)/total),
			fmtFloat(jl.LowRankError(a, qFull)/total),
			fmtDuration(tSketch), fmtDuration(tFull))
	}
	return []Table{ls, lr}
}
