package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cs"
	"repro/internal/mat"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// RunE3PhaseTransition sweeps the number of measurements m for a fixed
// (n, k) and reports the exact-recovery success rate of sparse-matrix
// decoders against dense-matrix baselines: the survey's claim that hashing
// matrices need O(k log n) measurements, close to the dense-matrix optimum.
func RunE3PhaseTransition(cfg Config) []Table {
	n, k := 4096, 10
	trials := 20
	if cfg.Quick {
		n, k = 512, 5
		trials = 4
	}
	table := Table{
		Title:   fmt.Sprintf("E3: exact recovery success rate vs measurements (n=%d, k=%d, %d trials; sparse matrices use 5 rows per column)", n, k, trials),
		Columns: []string{"m", "m/(k log2 n)", "smp", "iht-sparse", "omp-gaussian", "iht-gaussian"},
	}
	logn := 0
	for v := n; v > 1; v >>= 1 {
		logn++
	}
	for _, factor := range []float64{1, 2, 3, 4, 6, 8} {
		m := int(factor * float64(k*logn))
		if m >= n {
			continue
		}
		var okSMP, okIHTSparse, okOMP, okIHTDense int
		for trial := 0; trial < trials; trial++ {
			r := xrand.New(cfg.Seed + uint64(trial)*101)
			x := cs.RandomSparseSignal(r, n, k, 5)

			// Sparse hashing matrix: split m into d row blocks. An odd number
			// of blocks keeps the median estimator well defined, which the
			// iterative sketch decoders rely on.
			d := 5
			width := m / d
			if width < 1 {
				width = 1
			}
			h := core.NewHashMatrix(r, n, width, d, core.WithSigns())
			y := h.MulVec(x)
			if xh, err := (cs.SMP{Iters: 50}).Recover(h, y, k); err == nil && cs.RecoverySuccessful(x, xh, 1e-3) {
				okSMP++
			}
			if xh, err := (cs.IHT{Iters: 100}).Recover(h, y, k); err == nil && cs.RecoverySuccessful(x, xh, 1e-3) {
				okIHTSparse++
			}

			// Dense Gaussian baseline with the same number of measurements.
			g := mat.NewGaussian(r, d*width, n)
			yg := g.MulVec(x)
			if xh, err := (cs.OMP{}).Recover(g, yg, k); err == nil && cs.RecoverySuccessful(x, xh, 1e-3) {
				okOMP++
			}
			if xh, err := (cs.IHT{Iters: 100}).Recover(g, yg, k); err == nil && cs.RecoverySuccessful(x, xh, 1e-3) {
				okIHTDense++
			}
		}
		t := float64(trials)
		table.AddRow(fmtInt(m), fmtFloat(float64(m)/float64(k*logn)),
			fmtFloat(float64(okSMP)/t), fmtFloat(float64(okIHTSparse)/t),
			fmtFloat(float64(okOMP)/t), fmtFloat(float64(okIHTDense)/t))
	}
	return []Table{table}
}

// RunE4RecoveryTime fixes k and sweeps n, comparing wall-clock recovery time
// of sparse-matrix decoding against dense-matrix OMP and ISTA — the survey's
// O(n log n) versus O(nm) contrast.
func RunE4RecoveryTime(cfg Config) []Table {
	k := 10
	sizes := []int{1 << 12, 1 << 13, 1 << 14, 1 << 15}
	if cfg.Quick {
		sizes = []int{1 << 9, 1 << 10}
		k = 5
	}
	table := Table{
		Title:   fmt.Sprintf("E4: recovery wall-clock time vs n (k=%d, m = 6·k·log2(n), sparse matrices use 5 rows per column)", k),
		Columns: []string{"n", "m", "smp", "iht-sparse", "omp-gaussian", "ista-gaussian"},
	}
	// buildInstance creates one problem instance of size n with both the
	// sparse hashing operator and the dense Gaussian operator.
	buildInstance := func(n int, seed uint64) (x []float64, h *core.HashMatrix, y []float64, g *mat.Dense, yg []float64, m int) {
		logn := 0
		for v := n; v > 1; v >>= 1 {
			logn++
		}
		d := 5
		width := 6 * k * logn / d
		m = d * width
		r := xrand.New(seed)
		x = cs.RandomSparseSignal(r, n, k, 5)
		h = core.NewHashMatrix(r, n, width, d, core.WithSigns())
		y = h.MulVec(x)
		g = mat.NewGaussian(r, m, n)
		yg = g.MulVec(x)
		return
	}
	for _, n := range sizes {
		_, h, y, g, yg, m := buildInstance(n, cfg.Seed)
		tSMP := timeIt(func() { _, _ = (cs.SMP{Iters: 50}).Recover(h, y, k) })
		tIHT := timeIt(func() { _, _ = (cs.IHT{Iters: 100}).Recover(h, y, k) })
		tOMP := timeIt(func() { _, _ = (cs.OMP{}).Recover(g, yg, k) })
		tISTA := timeIt(func() { _, _ = (cs.ISTA{Iters: 300}).Recover(g, yg, k) })
		table.AddRow(fmtInt(n), fmtInt(m), fmtDuration(tSMP), fmtDuration(tIHT), fmtDuration(tOMP), fmtDuration(tISTA))
	}

	// Accuracy context for the timing table: relative errors at the largest n.
	n := sizes[len(sizes)-1]
	x, h, y, g, yg, _ := buildInstance(n, cfg.Seed+7)
	acc := Table{
		Title:   fmt.Sprintf("E4b: relative recovery error at n=%d (same instances as the last timing row)", n),
		Columns: []string{"method", "relative l2 error"},
	}
	if xh, err := (cs.SMP{Iters: 50}).Recover(h, y, k); err == nil {
		acc.AddRow("smp", fmtFloat(vec.RelativeError(x, xh)))
	}
	if xh, err := (cs.IHT{Iters: 100}).Recover(h, y, k); err == nil {
		acc.AddRow("iht-sparse", fmtFloat(vec.RelativeError(x, xh)))
	}
	if xh, err := (cs.OMP{}).Recover(g, yg, k); err == nil {
		acc.AddRow("omp-gaussian", fmtFloat(vec.RelativeError(x, xh)))
	}
	if xh, err := (cs.ISTA{Iters: 300}).Recover(g, yg, k); err == nil {
		acc.AddRow("ista-gaussian", fmtFloat(vec.RelativeError(x, xh)))
	}
	return []Table{table, acc}
}
