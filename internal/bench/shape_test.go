package bench

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// Shape tests: beyond "the experiment runs", check that the qualitative
// relationships the survey claims actually hold in the generated tables.
// They run at Quick scale, so thresholds are conservative.

// parseCell converts a table cell produced by fmtFloat/fmtDuration into a
// float64 (durations are reported in milliseconds).
func parseCell(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimSuffix(cell, "ms")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cannot parse cell %q: %v", cell, err)
	}
	return v
}

// TestE5SparseEmbeddingFasterOnSparseInput: at the smallest input sparsity,
// the sparse JL embedding must be much faster than the dense one.
func TestE5SparseEmbeddingFasterOnSparseInput(t *testing.T) {
	tables := RunE5JL(Config{Seed: 11, Quick: true})
	if len(tables) < 2 {
		t.Fatal("E5 should produce two tables")
	}
	timing := tables[1]
	first := timing.Rows[0] // smallest nnz
	dense := parseCell(t, first[1])
	sparse := parseCell(t, first[2])
	if sparse > dense/2 {
		t.Errorf("sparse JL (%.4fms) not substantially faster than dense (%.4fms) on a sparse input", sparse, dense)
	}
}

// TestE5DistortionComparable: sparse JL distortion should be within a factor
// of two of dense JL at the largest target dimension.
func TestE5DistortionComparable(t *testing.T) {
	tables := RunE5JL(Config{Seed: 13, Quick: true})
	dist := tables[0]
	last := dist.Rows[len(dist.Rows)-1]
	dense := parseCell(t, last[1])
	sparse := parseCell(t, last[2])
	if sparse > 2*dense+0.02 {
		t.Errorf("sparse JL distortion %.4f much worse than dense %.4f", sparse, dense)
	}
}

// TestE8FlatWindowBeatsBoxcar: the flat-window filter's estimation error must
// be below the boxcar's, and the end-to-end boxcar recovery must be worse.
func TestE8FlatWindowBeatsBoxcar(t *testing.T) {
	tables := RunE8Leakage(Config{Seed: 17, Quick: true})
	filters := tables[0]
	var boxErr, flatErr float64
	for _, row := range filters.Rows {
		if row[0] == "boxcar" {
			boxErr = parseCell(t, row[3])
		}
		if strings.HasPrefix(row[0], "flat delta=1e-9") {
			flatErr = parseCell(t, row[3])
		}
	}
	if flatErr >= boxErr {
		t.Errorf("flat-window estimation error %.4f not better than boxcar %.4f", flatErr, boxErr)
	}
	endToEnd := tables[1]
	for _, row := range endToEnd.Rows {
		flat := parseCell(t, row[1])
		box := parseCell(t, row[2])
		if flat > box {
			t.Errorf("k=%s: flat-window end-to-end error %.4f worse than boxcar %.4f", row[0], flat, box)
		}
	}
}

// TestE6SketchedRegressionNearOptimal: the sketched residual must stay within
// 15% of the exact residual in the quick configuration.
func TestE6SketchedRegressionNearOptimal(t *testing.T) {
	tables := RunE6SketchSolve(Config{Seed: 19, Quick: true})
	ls := tables[0]
	for _, row := range ls.Rows {
		ratio := parseCell(t, row[2])
		if ratio > 1.15 {
			t.Errorf("rows=%s: sketched/exact residual ratio %.4f exceeds 1.15", row[0], ratio)
		}
	}
}

// TestE11ShardedIngestExact: every engine configuration must report exactly
// zero estimate deviation from the single-threaded sketch — linearity makes
// the merge exact, independent of shard count or scheduling. (The speedup
// column is hardware-dependent and deliberately not asserted here.)
func TestE11ShardedIngestExact(t *testing.T) {
	tbl := RunE11ShardedIngest(Config{Seed: 29, Quick: true})[0]
	engineRows := 0
	for _, row := range tbl.Rows {
		if row[3] == "-" {
			continue // single-thread baseline row
		}
		engineRows++
		if v := parseCell(t, row[3]); v != 0 {
			t.Errorf("%s: max estimate deviation %v, want exactly 0", row[0], v)
		}
	}
	if engineRows < 3 {
		t.Fatalf("expected at least 3 engine rows, got %d", engineRows)
	}
}

// TestE12MultiProducerExact: every producer count, through both the mutex
// baseline and the lock-free handles, must report exactly zero estimate
// deviation from the single-threaded sketch — the acceptance invariant for
// the multi-producer pipeline. (Speedup is hardware-dependent and not
// asserted.)
func TestE12MultiProducerExact(t *testing.T) {
	tbl := RunE12MultiProducerIngest(Config{Seed: 31, Quick: true})[0]
	if len(tbl.Rows) < 4 {
		t.Fatalf("expected at least 4 producer rows, got %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if v := parseCell(t, row[4]); v != 0 {
			t.Errorf("%s producers: max estimate deviation %v, want exactly 0", row[0], v)
		}
	}
}

// TestE13BatchIngestExact: every batched configuration — sketch-level
// UpdateBatch at any chunk size, and the engine's columnar path — must
// report exactly zero estimate deviation from the per-item reference. This
// is the bit-identical-batch contract; speedup is hardware-dependent and
// not asserted.
func TestE13BatchIngestExact(t *testing.T) {
	tables := RunE13BatchIngest(Config{Seed: 37, Quick: true})
	if len(tables) != 2 {
		t.Fatalf("E13 should produce two tables, got %d", len(tables))
	}
	for _, tbl := range tables {
		batchRows := 0
		for _, row := range tbl.Rows {
			if row[3] == "-" {
				continue // scalar baseline row
			}
			batchRows++
			if v := parseCell(t, row[3]); v != 0 {
				t.Errorf("%s: %s: max estimate deviation %v, want exactly 0", tbl.Title, row[0], v)
			}
		}
		if batchRows < 2 {
			t.Fatalf("%s: expected at least 2 batch rows, got %d", tbl.Title, batchRows)
		}
	}
}

// TestE14DeltaGossipExactAndSmaller: both shipping strategies must converge
// every node onto the single-threaded reference exactly (deviation 0), and
// delta shipping must move well under half the bytes full-snapshot shipping
// does at the same convergence cadence — the whole point of gossiping
// differences.
func TestE14DeltaGossipExactAndSmaller(t *testing.T) {
	tbl := RunE14DeltaGossip(Config{Seed: 41, Quick: true})[0]
	if len(tbl.Rows) != 2 {
		t.Fatalf("E14 should produce 2 strategy rows, got %d", len(tbl.Rows))
	}
	bytesFor := map[string]float64{}
	for _, row := range tbl.Rows {
		if v := parseCell(t, row[4]); v != 0 {
			t.Errorf("%s: max estimate deviation %v, want exactly 0", row[0], v)
		}
		bytesFor[row[0]] = parseCell(t, row[2])
	}
	full, delta := bytesFor["full-snapshot"], bytesFor["delta-gossip"]
	if full == 0 || delta == 0 {
		t.Fatalf("missing strategy rows: %v", bytesFor)
	}
	if delta >= full/2 {
		t.Errorf("delta gossip shipped %.0f bytes, full snapshots %.0f: expected > 2x saving", delta, full)
	}
}

// TestE2MultiplyShiftFastest: the multiply-shift hash family should give the
// highest update throughput among the Count-Min variants.
func TestE2MultiplyShiftFastest(t *testing.T) {
	tbl := RunE2Throughput(Config{Seed: 23, Quick: true})[0]
	var mulshift, poly4 float64
	for _, row := range tbl.Rows {
		rate := parseCell(t, row[2])
		switch row[0] {
		case "count-min/mulshift":
			mulshift = rate
		case "count-min/poly4":
			poly4 = rate
		}
	}
	if mulshift <= poly4 {
		t.Errorf("multiply-shift throughput %.2fM not above poly4 %.2fM", mulshift, poly4)
	}
}

// TestE15RecoveryExactOnSparse: on the planted k-sparse stream, every
// recovery algorithm and the heap must reproduce the support with deviation
// exactly 0 and negligible estimate error — the served /v1/recover invariant
// at bench scale.
func TestE15RecoveryExactOnSparse(t *testing.T) {
	tables := RunE15Recovery(Config{Seed: 47, Quick: true})
	if len(tables) != 2 {
		t.Fatalf("E15 should produce 2 tables, got %d", len(tables))
	}
	exact := tables[0]
	if len(exact.Rows) < 5 {
		t.Fatalf("E15 exact table should have the heap plus 4 recovery rows, got %d", len(exact.Rows))
	}
	for _, row := range exact.Rows {
		if v := parseCell(t, row[1]); v != 0 {
			t.Errorf("%s: support deviation %v, want exactly 0", row[0], v)
		}
		if v := parseCell(t, row[2]); v > 1e-3 {
			t.Errorf("%s: max estimate error %v on a k-sparse stream", row[0], v)
		}
	}
	noisy := tables[1]
	for _, row := range noisy.Rows {
		if v := parseCell(t, row[1]); v < 0.5 {
			t.Errorf("%s: top-k recall %v under Zipf, want at least 0.5", row[0], v)
		}
	}
}

// TestE16PartitionMemoryAndExactness: partition mode must hold exactly one
// sketch's worth of counters at every worker count while replica mode holds
// workers-many, and both modes' estimates must match the single-threaded
// reference with deviation exactly 0 — the "same bits, less memory" claim.
func TestE16PartitionMemoryAndExactness(t *testing.T) {
	tbl := RunE16PartitionMode(Config{Seed: 53, Quick: true})[0]
	if len(tbl.Rows) != 6 {
		t.Fatalf("E16 should produce 6 rows (3 worker counts x 2 modes), got %d", len(tbl.Rows))
	}
	const size = 4096 * 4
	for _, row := range tbl.Rows {
		words := int(parseCell(t, row[1]))
		var workers int
		var mode string
		if _, err := fmt.Sscanf(row[0], "%s %dw", &mode, &workers); err != nil {
			t.Fatalf("unparseable config cell %q: %v", row[0], err)
		}
		switch mode {
		case "replica":
			if words != workers*size {
				t.Errorf("%s: %d counter words, want %d", row[0], words, workers*size)
			}
		case "partition":
			if words != size {
				t.Errorf("%s: %d counter words, want %d (exactly one sketch)", row[0], words, size)
			}
		default:
			t.Fatalf("unknown mode in row %q", row[0])
		}
		if v := parseCell(t, row[len(row)-1]); v != 0 {
			t.Errorf("%s: deviation %v from single-threaded reference, want exactly 0", row[0], v)
		}
	}
}

// TestE17StreamIngestShape: both ingest paths at both batch shapes must land
// bit-identical counters — the deviation column is exactly 0 for every row.
// Throughput ordering is asserted in CI on the full-scale run, not here:
// quick-mode rates on a loaded test machine are noise.
func TestE17StreamIngestShape(t *testing.T) {
	tbl := RunE17StreamIngest(Config{Seed: 61, Quick: true})[0]
	if len(tbl.Rows) != 4 {
		t.Fatalf("E17 should produce 4 rows (2 paths x 2 batch shapes), got %d", len(tbl.Rows))
	}
	want := [][2]string{{"post", "256"}, {"stream", "256"}, {"post", "4096"}, {"stream", "4096"}}
	for i, row := range tbl.Rows {
		if row[0] != want[i][0] || row[1] != want[i][1] {
			t.Errorf("row %d is %s/%s, want %s/%s", i, row[0], row[1], want[i][0], want[i][1])
		}
		if v := parseCell(t, row[len(row)-1]); v != 0 {
			t.Errorf("%s batch=%s: deviation %v from single-threaded reference, want exactly 0", row[0], row[1], v)
		}
	}
}
