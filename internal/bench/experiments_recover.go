package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/cs"
	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// RunE15Recovery pits full sparse recovery (the read side served by
// /v1/recover) against the tracker's candidate heap (served by /v1/topk),
// answering from the *same* Count-Min backing — equal sketch bytes by
// construction, since both reads view one sketch.
//
// Table 1 is the exactness regime: a planted k-sparse stream, where every
// recovery algorithm and the heap must reproduce the planted support with
// deviation exactly 0 (the support-deviation column is the CI invariant).
// Table 2 is the realistic regime: a Zipf stream with a heavy tail, reporting
// top-k recall against the exact counter, l2 error over the true top-k, and
// per-read latency — recovery buys global decoding at a latency cost, the
// heap answers instantly but only about items it happened to track.
func RunE15Recovery(cfg Config) []Table {
	universe := 1 << 14
	length := 1_000_000
	if cfg.Quick {
		universe = 1 << 12
		length = 100_000
	}
	const width, depth, k = 2048, 4, 16

	algos := []struct {
		name string
		rec  cs.Recoverer
	}{
		{"recover/sketch", cs.SketchDecode{}},
		{"recover/smp", cs.SMP{Iters: 50}},
		{"recover/omp", cs.OMP{MaxIter: 50}},
		{"recover/iht", cs.IHT{Iters: 50}},
	}

	// --- Table 1: planted k-sparse stream, exact recovery required. ---
	r := xrand.New(cfg.Seed)
	planted := make(map[uint64]float64, k)
	for _, j := range r.Sample(universe, k) {
		planted[uint64(j)] = float64(1000 + r.Intn(9000))
	}
	tracker := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed+1), width, depth, k)
	for item, count := range planted {
		tracker.Update(item, count)
	}
	m, err := engine.NewTrackerMeasurement(tracker, universe)
	if err != nil {
		panic(fmt.Sprintf("bench: E15 measurement: %v", err))
	}

	exact := Table{
		Title: fmt.Sprintf("E15: k-sparse exactness, %d planted items, universe %d, Count-Min %dx%d (shared backing = equal sketch bytes)",
			k, universe, width, depth),
		Columns: []string{"method", "support dev", "max |est err|", "latency"},
	}
	// The heap baseline: /v1/topk's answer.
	start := time.Now()
	top := tracker.TopK()
	heapLatency := time.Since(start)
	exact.AddRow("topk/heap", fmtFloat(supportDeviation(planted, itemsOf(top), k)),
		fmtFloat(maxEstErr(planted, countsOf(top))), heapLatency.Round(time.Microsecond).String())
	for _, a := range algos {
		start := time.Now()
		xhat, err := a.rec.Recover(m, m.Measurements(), k)
		latency := time.Since(start)
		if err != nil {
			panic(fmt.Sprintf("bench: E15 %s: %v", a.name, err))
		}
		items, ests := supportOf(xhat, k)
		exact.AddRow(a.name, fmtFloat(supportDeviation(planted, items, k)),
			fmtFloat(maxEstErr(planted, ests)), latency.Round(time.Microsecond).String())
	}

	// --- Table 2: Zipf stream with a tail, recall/error/latency tradeoff. ---
	s := stream.Zipf(xrand.New(cfg.Seed+2), uint64(universe), length, 1.3)
	truth := map[uint64]float64{}
	zTracker := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed+3), width, depth, k)
	for _, u := range s.Updates {
		truth[u.Item] += float64(u.Delta)
		zTracker.Update(u.Item, float64(u.Delta))
	}
	trueTop := topOfMap(truth, k)
	zm, err := engine.NewTrackerMeasurement(zTracker, universe)
	if err != nil {
		panic(fmt.Sprintf("bench: E15 zipf measurement: %v", err))
	}

	noisy := Table{
		Title: fmt.Sprintf("E15: Zipf(1.3) stream, %d updates, top-%d recall vs exact counts (same backing)",
			length, k),
		Columns: []string{"method", "recall", "l2 err on true top-k", "latency"},
	}
	start = time.Now()
	ztop := zTracker.TopK()
	heapLatency = time.Since(start)
	noisy.AddRow("topk/heap", fmtFloat(recall(trueTop, itemsOf(ztop))),
		fmtFloat(l2OnSupport(truth, trueTop, countsOf(ztop))), heapLatency.Round(time.Microsecond).String())
	for _, a := range algos {
		start := time.Now()
		xhat, err := a.rec.Recover(zm, zm.Measurements(), k)
		latency := time.Since(start)
		if err != nil {
			panic(fmt.Sprintf("bench: E15 zipf %s: %v", a.name, err))
		}
		items, ests := supportOf(xhat, k)
		noisy.AddRow(a.name, fmtFloat(recall(trueTop, items)),
			fmtFloat(l2OnSupport(truth, trueTop, ests)), latency.Round(time.Microsecond).String())
	}
	return []Table{exact, noisy}
}

// supportOf extracts the top-k nonzero entries of a recovered vector as an
// item set and an item->estimate map.
func supportOf(xhat []float64, k int) (map[uint64]bool, map[uint64]float64) {
	type entry struct {
		item uint64
		est  float64
	}
	var entries []entry
	for j, v := range xhat {
		if v != 0 {
			entries = append(entries, entry{uint64(j), v})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		return math.Abs(entries[i].est) > math.Abs(entries[j].est)
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	items := make(map[uint64]bool, len(entries))
	ests := make(map[uint64]float64, len(entries))
	for _, e := range entries {
		items[e.item] = true
		ests[e.item] = e.est
	}
	return items, ests
}

func itemsOf(top []stream.ItemCount) map[uint64]bool {
	out := make(map[uint64]bool, len(top))
	for _, ic := range top {
		out[ic.Item] = true
	}
	return out
}

func countsOf(top []stream.ItemCount) map[uint64]float64 {
	out := make(map[uint64]float64, len(top))
	for _, ic := range top {
		out[ic.Item] = float64(ic.Count)
	}
	return out
}

// supportDeviation counts missed planted items plus spurious reported items,
// normalized by k: exactly 0 iff the reported support is the planted support.
func supportDeviation(planted map[uint64]float64, got map[uint64]bool, k int) float64 {
	dev := 0
	for item := range planted {
		if !got[item] {
			dev++
		}
	}
	for item := range got {
		if _, ok := planted[item]; !ok {
			dev++
		}
	}
	return float64(dev) / float64(k)
}

// maxEstErr returns the worst absolute estimate error over the planted items
// (a missing estimate counts as the full planted value).
func maxEstErr(planted map[uint64]float64, ests map[uint64]float64) float64 {
	var worst float64
	for item, want := range planted {
		if d := absFloat(want - ests[item]); d > worst {
			worst = d
		}
	}
	return worst
}

// topOfMap returns the k heaviest items of an exact count map.
func topOfMap(truth map[uint64]float64, k int) []uint64 {
	type entry struct {
		item  uint64
		count float64
	}
	entries := make([]entry, 0, len(truth))
	for item, count := range truth {
		entries = append(entries, entry{item, count})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].count != entries[j].count {
			return entries[i].count > entries[j].count
		}
		return entries[i].item < entries[j].item
	})
	if len(entries) > k {
		entries = entries[:k]
	}
	out := make([]uint64, len(entries))
	for i, e := range entries {
		out[i] = e.item
	}
	return out
}

// recall is the fraction of the true top-k present in the reported set.
func recall(trueTop []uint64, got map[uint64]bool) float64 {
	hit := 0
	for _, item := range trueTop {
		if got[item] {
			hit++
		}
	}
	return float64(hit) / float64(len(trueTop))
}

// l2OnSupport is the l2 distance between estimates and exact counts over the
// true top-k items.
func l2OnSupport(truth map[uint64]float64, trueTop []uint64, ests map[uint64]float64) float64 {
	var sum float64
	for _, item := range trueTop {
		d := truth[item] - ests[item]
		sum += d * d
	}
	return math.Sqrt(sum)
}
