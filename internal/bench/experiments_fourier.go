package bench

import (
	"fmt"
	"math"
	"math/cmplx"

	"repro/internal/fourier"
	"repro/internal/sfft"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// sparseSpectrumSignal builds a signal with exactly k random unit-magnitude
// spectrum coefficients plus optional time-domain Gaussian noise.
func sparseSpectrumSignal(r *xrand.Rand, n, k int, noiseStd float64) ([]complex128, []sfft.Coefficient) {
	spec := make([]complex128, n)
	coeffs := make([]sfft.Coefficient, 0, k)
	for _, f := range r.Sample(n, k) {
		v := cmplx.Rect(1+r.Float64(), 2*math.Pi*r.Float64())
		spec[f] = v
		coeffs = append(coeffs, sfft.Coefficient{Freq: f, Value: v})
	}
	x := fourier.InverseFFT(spec)
	if noiseStd > 0 {
		for i := range x {
			x[i] += complex(noiseStd*r.NormFloat64(), noiseStd*r.NormFloat64())
		}
	}
	sfft.SortCoefficients(coeffs)
	return x, coeffs
}

func spectrumError(truth, got []sfft.Coefficient, n int) float64 {
	return vec.CRelativeError(sfft.ToDense(truth, n), sfft.ToDense(got, n))
}

// RunE7SFFT compares the sparse FFT against the full FFT: running time as a
// function of k at fixed n, and as a function of n at fixed k, reporting the
// recovery error of the sparse algorithm. The crossover point where the full
// FFT becomes faster locates the survey's "improves over FFT for k = o(n)".
func RunE7SFFT(cfg Config) []Table {
	n := 1 << 18
	ks := []int{10, 50, 200, 1000, 4000}
	if cfg.Quick {
		n = 1 << 12
		ks = []int{5, 20, 80}
	}
	r := xrand.New(cfg.Seed)

	timeVsK := Table{
		Title:   fmt.Sprintf("E7a: time vs sparsity k at n=%d", n),
		Columns: []string{"k", "sfft (exact)", "full FFT + top-k", "sfft error", "sfft/fft time ratio"},
	}
	for _, k := range ks {
		x, truth := sparseSpectrumSignal(r, n, k, 0)
		// Warm-up run: constructs (and caches) the binning filter, which is a
		// one-time preprocessing cost in the sFFT literature, so the timed
		// run below measures recovery only.
		if _, err := sfft.Exact(x, k, sfft.Config{}, r); err != nil {
			continue
		}
		var got []sfft.Coefficient
		var err error
		tSparse := timeIt(func() { got, err = sfft.Exact(x, k, sfft.Config{}, r) })
		if err != nil {
			continue
		}
		tFull := timeIt(func() { sfft.FFTTopK(x, k) })
		timeVsK.AddRow(fmtInt(k), fmtDuration(tSparse), fmtDuration(tFull),
			fmtFloat(spectrumError(truth, got, n)),
			fmtFloat(tSparse.Seconds()/tFull.Seconds()))
	}

	sizes := []int{1 << 14, 1 << 16, 1 << 18, 1 << 20}
	k := 50
	if cfg.Quick {
		sizes = []int{1 << 10, 1 << 12}
		k = 10
	}
	timeVsN := Table{
		Title:   fmt.Sprintf("E7b: time vs signal length n at k=%d", k),
		Columns: []string{"n", "sfft (exact)", "full FFT + top-k", "sfft error"},
	}
	for _, size := range sizes {
		x, truth := sparseSpectrumSignal(r, size, k, 0)
		// Warm-up run (filter construction is preprocessing; see E7a).
		if _, err := sfft.Exact(x, k, sfft.Config{}, r); err != nil {
			continue
		}
		var got []sfft.Coefficient
		var err error
		tSparse := timeIt(func() { got, err = sfft.Exact(x, k, sfft.Config{}, r) })
		if err != nil {
			continue
		}
		tFull := timeIt(func() { sfft.FFTTopK(x, k) })
		timeVsN.AddRow(fmtInt(size), fmtDuration(tSparse), fmtDuration(tFull), fmtFloat(spectrumError(truth, got, size)))
	}
	return []Table{timeVsK, timeVsN}
}

// RunE8Leakage quantifies the "leaky buckets" discussion: per-coefficient
// estimation error when the spectrum is hashed into buckets through a boxcar
// window versus a flat window, and the end-to-end effect of the filter choice
// on sparse FFT recovery.
func RunE8Leakage(cfg Config) []Table {
	n := 1 << 14
	B := 64
	if cfg.Quick {
		n = 1 << 11
		B = 16
	}
	r := xrand.New(cfg.Seed)

	filters := Table{
		Title:   fmt.Sprintf("E8a: filter leakage and per-bucket estimation error (n=%d, B=%d buckets, one tone per occupied bucket)", n, B),
		Columns: []string{"filter", "support (taps)", "out-of-band energy", "mean estimation error"},
	}
	width := n / B
	spec := make([]complex128, n)
	var coeffs []sfft.Coefficient
	for b := 0; b < B; b += 2 {
		f := b*width + r.Intn(width/4) - width/8
		f = ((f % n) + n) % n
		v := cmplx.Rect(1+r.Float64(), 2*math.Pi*r.Float64())
		spec[f] += v
		coeffs = append(coeffs, sfft.Coefficient{Freq: f, Value: spec[f]})
	}
	x := fourier.InverseFFT(spec)
	for _, tc := range []struct {
		name   string
		filter *fourier.Filter
	}{
		{"boxcar", fourier.NewBoxcarFilter(n, width)},
		{"flat delta=1e-4", fourier.NewFlatWindowFilter(n, B, 1e-4)},
		{"flat delta=1e-6", fourier.NewFlatWindowFilter(n, B, 1e-6)},
		{"flat delta=1e-9", fourier.NewFlatWindowFilter(n, B, 1e-9)},
	} {
		est, err := sfft.LeakageExperimentResult(x, coeffs, tc.filter, B)
		if err != nil {
			continue
		}
		filters.AddRow(tc.name, fmtInt(tc.filter.SupportLen()), fmtFloat(tc.filter.Leakage(width)), fmtFloat(est))
	}

	endToEnd := Table{
		Title:   "E8b: end-to-end sparse FFT recovery error, boxcar vs flat-window binning",
		Columns: []string{"k", "error (flat window)", "error (boxcar)"},
	}
	ks := []int{10, 40}
	if cfg.Quick {
		ks = []int{5}
	}
	for _, k := range ks {
		x, truth := sparseSpectrumSignal(r, n, k, 0)
		flat, err1 := sfft.Exact(x, k, sfft.Config{}, r)
		box, err2 := sfft.Exact(x, k, sfft.Config{UseBoxcar: true}, r)
		if err1 != nil || err2 != nil {
			continue
		}
		endToEnd.AddRow(fmtInt(k), fmtFloat(spectrumError(truth, flat, n)), fmtFloat(spectrumError(truth, box, n)))
	}
	return []Table{filters, endToEnd}
}

// RunE9Hadamard compares the Kushilevitz-Mansour sparse Walsh-Hadamard
// recovery against the full fast transform: samples touched, time and
// accuracy for k planted coefficients.
func RunE9Hadamard(cfg Config) []Table {
	m := 20
	trials := 3
	if cfg.Quick {
		m = 10
		trials = 1
	}
	n := 1 << uint(m)
	table := Table{
		Title:   fmt.Sprintf("E9: sparse Hadamard recovery, n=2^%d (%d trials per row)", m, trials),
		Columns: []string{"k", "km time", "full FWHT time", "km recall", "km coeff err"},
	}
	cfgKM := sfft.KMConfig{OuterSamples: 256, InnerSamples: 32, LeafSamples: 4096}
	for _, k := range []int{2, 4, 8} {
		var kmTime, fwhtTime float64
		var recallSum, errSum float64
		for trial := 0; trial < trials; trial++ {
			r := xrand.New(cfg.Seed + uint64(trial)*13)
			// Plant k coefficients of magnitude about 1.
			planted := map[uint64]float64{}
			for _, s := range r.Sample(n, k) {
				planted[uint64(s)] = (0.8 + 0.4*r.Float64()) * r.Rademacher()
			}
			f := make([]float64, n)
			for s, v := range planted {
				for x := 0; x < n; x++ {
					if popcountParity(s & uint64(x)) {
						f[x] -= v
					} else {
						f[x] += v
					}
				}
			}
			var got []sfft.HadamardCoefficient
			var err error
			kmTime += timeIt(func() { got, err = sfft.KMSparseHadamard(f, 0.5, cfgKM, r) }).Seconds()
			if err != nil {
				continue
			}
			fwhtTime += timeIt(func() { sfft.DenseHadamardTopK(f, k) }).Seconds()
			found := 0
			var errAcc float64
			for _, c := range got {
				if v, ok := planted[c.S]; ok {
					found++
					errAcc += math.Abs(c.Value-v) / math.Abs(v)
				}
			}
			recallSum += float64(found) / float64(k)
			if found > 0 {
				errSum += errAcc / float64(found)
			}
		}
		t := float64(trials)
		table.AddRow(fmtInt(k),
			fmt.Sprintf("%.3fms", kmTime/t*1000), fmt.Sprintf("%.3fms", fwhtTime/t*1000),
			fmtFloat(recallSum/t), fmtFloat(errSum/t))
	}
	return []Table{table}
}

func popcountParity(x uint64) bool {
	c := 0
	for x != 0 {
		c++
		x &= x - 1
	}
	return c%2 == 1
}
