package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// RunE16PartitionMode compares the engine's two sharding regimes head to
// head on the three axes the choice trades between: resident counter memory
// (replica mode holds one full sketch per worker, partition mode exactly one
// across all workers), snapshot latency (a W-way merge of full replicas vs a
// slice copy and concatenation), and ingest throughput (local scatter-add on
// a private replica vs hash-once-per-row routing to column owners). The
// exactness column reports the largest estimate deviation from the
// single-threaded reference sketch and must always read exactly 0: both
// regimes add the same deltas to the same logical counters, so the modes are
// interchangeable bit for bit and the regime choice is purely an operational
// one (see docs/CLUSTER.md for the decision table).
func RunE16PartitionMode(cfg Config) []Table {
	universe := uint64(1 << 20)
	length := 2_000_000
	if cfg.Quick {
		universe = 1 << 16
		length = 100_000
	}
	const width, depth = 4096, 4
	const batchSize = 4096
	const snapshots = 5

	r := xrand.New(cfg.Seed)
	s := stream.Zipf(r, universe, length, 1.1)
	items := make([]uint64, len(s.Updates))
	deltas := make([]float64, len(s.Updates))
	for i, u := range s.Updates {
		items[i] = u.Item
		deltas[i] = float64(u.Delta)
	}

	proto := sketch.NewCountMin(xrand.New(cfg.Seed+1), width, depth)
	single := proto.Clone()
	single.UpdateBatch(items, deltas)
	maxErr := func(merged *sketch.CountMin) float64 {
		var worst float64
		for item := uint64(0); item < universe; item += 101 {
			if d := absFloat(single.Estimate(item) - merged.Estimate(item)); d > worst {
				worst = d
			}
		}
		return worst
	}

	table := Table{
		Title: fmt.Sprintf("E16: replica vs partition sharding, %d Zipf updates, Count-Min %dx%d, batch=%d, GOMAXPROCS=%d",
			length, width, depth, batchSize, runtime.GOMAXPROCS(0)),
		Columns: []string{"config", "counter words", "items/sec (M)", "snapshot ms", "max |err| vs single"},
	}
	rate := func(d float64) string { return fmt.Sprintf("%.2f", float64(length)/d/1e6) }

	for _, workers := range []int{2, 4, 8} {
		for _, mode := range []struct {
			name      string
			partition bool
		}{{"replica", false}, {"partition", true}} {
			eng := engine.NewCountMin(engine.Config{Workers: workers, BatchSize: batchSize, Partition: mode.partition}, proto)
			words := eng.CounterWords()
			ingestSecs := timeIt(func() {
				for start := 0; start < len(items); start += batchSize {
					end := min(start+batchSize, len(items))
					eng.UpdateColumns(items[start:end], deltas[start:end])
				}
				eng.Flush()
			}).Seconds()
			var snapTotal time.Duration
			for i := 0; i < snapshots; i++ {
				snapTotal += timeIt(func() {
					if _, err := eng.Snapshot(); err != nil {
						panic(fmt.Sprintf("bench: E16 snapshot: %v", err))
					}
				})
			}
			merged, err := eng.Close()
			if err != nil {
				panic(fmt.Sprintf("bench: E16 engine close: %v", err))
			}
			table.AddRow(
				fmt.Sprintf("%s %dw", mode.name, workers),
				fmtInt(words),
				rate(ingestSecs),
				fmtDuration(snapTotal/snapshots),
				fmtFloat(maxErr(merged)),
			)
		}
	}
	return []Table{table}
}
