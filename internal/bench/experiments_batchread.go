package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// RunE18BatchRead measures the read side of the batch-first contract: a
// column of point queries is a matrix-vector product over the same hash rows
// ingest uses, so answering it through the batched estimation kernels
// (EstimateBatchWith over reusable scratch) must beat a per-key Estimate
// loop while returning bit-identical estimates — and the served batch
// endpoint (one POST /v1/query carrying the whole key column, answered from
// the pinned read epoch) must beat one GET round-trip per key by a far wider
// margin. The exactness column is the largest deviation from the per-key
// reference and must always read exactly 0.0000; the allocs/op column counts
// heap allocations per in-process kernel call and must stay at 0 in steady
// state (the scratch is warmed before the clock starts, exactly like a
// server lane's).
func RunE18BatchRead(cfg Config) []Table {
	universe := uint64(1 << 20)
	length := 2_000_000
	totalKeys := 1 << 21
	servedKeys := 1 << 18
	servedScalarKeys := 1 << 11
	if cfg.Quick {
		universe = 1 << 16
		length = 100_000
		totalKeys = 1 << 17
		servedKeys = 1 << 14
		servedScalarKeys = 1 << 8
	}
	const width, depth, k = 4096, 4, 64
	const keyCol = 4096

	r := xrand.New(cfg.Seed)
	s := stream.Zipf(r, universe, length, 1.1)
	items := make([]uint64, len(s.Updates))
	deltas := make([]float64, len(s.Updates))
	for i, u := range s.Updates {
		items[i] = u.Item
		deltas[i] = float64(u.Delta)
	}
	tracker := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed+1), width, depth, k)
	tracker.UpdateBatch(items, deltas)

	// One key column reused by every row: half keys the stream has seen, half
	// drawn over the whole universe (collisions and empty buckets both hit).
	kr := xrand.New(cfg.Seed + 2)
	keys := make([]uint64, keyCol)
	for i := range keys {
		if i%2 == 0 {
			keys[i] = items[int(kr.Uint64n(uint64(len(items))))]
		} else {
			keys[i] = kr.Uint64n(universe)
		}
	}
	ref := make([]float64, keyCol)
	for i, key := range keys {
		ref[i] = tracker.Estimate(key)
	}
	maxErrCol := func(got []float64) float64 {
		var worst float64
		for i := range got {
			if d := absFloat(got[i] - ref[i]); d > worst {
				worst = d
			}
		}
		return worst
	}
	rate := func(queried int, secs float64) string {
		return fmt.Sprintf("%.2f", float64(queried)/secs/1e6)
	}

	table := Table{
		Title: fmt.Sprintf("E18: batched vs per-key reads, tracker %dx%d over %d Zipf updates, key column %d, GOMAXPROCS=%d",
			width, depth, length, keyCol, runtime.GOMAXPROCS(0)),
		Columns: []string{"path", "batch", "keys/sec (M)", "allocs/op", "max |err| vs scalar"},
	}

	// In-process scalar reference: one Estimate call per key.
	reps := totalKeys / keyCol
	dst := make([]float64, keyCol)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	secs := timeIt(func() {
		for rep := 0; rep < reps; rep++ {
			for i, key := range keys {
				dst[i] = tracker.Estimate(key)
			}
		}
	}).Seconds()
	runtime.ReadMemStats(&ms1)
	table.AddRow("scalar", "1", rate(totalKeys, secs),
		fmt.Sprintf("%d", int64(ms1.Mallocs-ms0.Mallocs)/int64(reps*keyCol)), fmtFloat(0))

	// In-process batched kernels at every swept batch size, one warmed
	// scratch per row (the shape a server read lane holds).
	for _, batch := range []int{64, 1024, 4096} {
		var sc sketch.EstimateScratch
		dstB := make([]float64, keyCol)
		estimateOnce := func() {
			for start := 0; start < keyCol; start += batch {
				end := min(start+batch, keyCol)
				tracker.EstimateBatchWith(keys[start:end], dstB[start:end], &sc)
			}
		}
		estimateOnce() // warm the scratch: steady state is what lanes run in
		exact := maxErrCol(dstB)
		callsPerRep := (keyCol + batch - 1) / batch
		runtime.ReadMemStats(&ms0)
		secs := timeIt(func() {
			for rep := 0; rep < reps; rep++ {
				estimateOnce()
			}
		}).Seconds()
		runtime.ReadMemStats(&ms1)
		table.AddRow("batch", fmtInt(batch), rate(totalKeys, secs),
			fmt.Sprintf("%d", int64(ms1.Mallocs-ms0.Mallocs)/int64(reps*callsPerRep)), fmtFloat(exact))
	}

	// Served rows: a fresh daemon over loopback holding the identical
	// counters answers the same key column per-key (one GET round-trip per
	// key) and batched (one POST carrying the whole column, binary in and
	// out through the reusable client querier).
	srv, err := server.New(server.Config{Width: width, Depth: depth, K: k, Seed: cfg.Seed + 1})
	if err != nil {
		panic(fmt.Sprintf("bench: E18 server: %v", err))
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("bench: E18 listen: %v", err))
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	client := server.NewClient("http://"+ln.Addr().String(), &http.Client{Timeout: time.Minute})
	ctx := context.Background()
	for start := 0; start < len(items); start += keyCol {
		end := min(start+keyCol, len(items))
		if err := client.UpdateColumns(ctx, items[start:end], deltas[start:end]); err != nil {
			panic(fmt.Sprintf("bench: E18 ingest: %v", err))
		}
	}

	var worstScalar float64
	secs = timeIt(func() {
		for i := 0; i < servedScalarKeys; i++ {
			got, err := client.Query(ctx, keys[i%keyCol])
			if err != nil {
				panic(fmt.Sprintf("bench: E18 served scalar query: %v", err))
			}
			if d := absFloat(got[0] - ref[i%keyCol]); d > worstScalar {
				worstScalar = d
			}
		}
	}).Seconds()
	table.AddRow("served-scalar", "1", rate(servedScalarKeys, secs), "-", fmtFloat(worstScalar))

	bq := client.BatchQuerier()
	var worstBatch float64
	secs = timeIt(func() {
		for done := 0; done < servedKeys; done += keyCol {
			ests, _, err := bq.Query(ctx, keys)
			if err != nil {
				panic(fmt.Sprintf("bench: E18 served batch query: %v", err))
			}
			if d := maxErrCol(ests); d > worstBatch {
				worstBatch = d
			}
		}
	}).Seconds()
	table.AddRow("served", fmtInt(keyCol), rate(servedKeys, secs), "-", fmtFloat(worstBatch))

	hs.Close()
	if err := srv.Close(); err != nil {
		panic(fmt.Sprintf("bench: E18 server close: %v", err))
	}
	return []Table{table}
}
