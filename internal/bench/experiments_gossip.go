package bench

import (
	"fmt"

	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// RunE14DeltaGossip measures the bytes a gossiping sketch mesh must move to
// stay converged, comparing delta shipping — each node sends the
// (mostly-zero, zero-run-length-compressed KindDelta envelope of the)
// difference between its current local sketch and the last state each peer
// acknowledged — against full-snapshot shipping at the same convergence
// cadence. Three nodes ingest disjoint interleaved slices of one Zipf
// stream in rounds; after every round every node ships to both peers, so
// under either strategy every node tracks the global sketch round for
// round. The exactness column reports, per strategy, the maximum estimate
// deviation of any node's converged sketch from the single-threaded
// reference after the final round — linearity says it must always read 0.
// The shipped deltas really cross the codec: every frame is Marshal ->
// EncodeDelta -> DecodeDelta -> Unmarshal -> Merge, exactly the path
// sketchd's /v1/delta payload takes.
func RunE14DeltaGossip(cfg Config) []Table {
	universe := uint64(1 << 20)
	length := 2_000_000
	rounds := 20
	if cfg.Quick {
		universe = 1 << 16
		length = 100_000
		rounds = 8
	}
	const width, depth = 4096, 4
	const nodes = 3

	r := xrand.New(cfg.Seed)
	s := stream.Zipf(r, universe, length, 1.1)
	proto := sketch.NewCountMin(xrand.New(cfg.Seed+1), width, depth)

	// Single-threaded reference over the whole stream: the exactness oracle.
	single := proto.Clone()
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	// Node i owns every nodes-th update; each round ingests 1/rounds of it.
	owned := make([][]stream.Update, nodes)
	for i, u := range s.Updates {
		owned[i%nodes] = append(owned[i%nodes], u)
	}

	maxErr := func(merged []*sketch.CountMin) float64 {
		var worst float64
		for _, m := range merged {
			for item := uint64(0); item < universe; item += 101 {
				if d := absFloat(single.Estimate(item) - m.Estimate(item)); d > worst {
					worst = d
				}
			}
		}
		return worst
	}

	// runMesh plays the rounds under one strategy and returns the frame
	// count, total bytes on the wire, and the final exactness figure.
	runMesh := func(deltas bool) (frames int, bytes int64, worst float64) {
		own := make([]*sketch.CountMin, nodes)     // locally ingested only
		merged := make([]*sketch.CountMin, nodes)  // own + everything received
		shipped := make([]*sketch.CountMin, nodes) // local state as of the last ship
		for i := range own {
			own[i] = proto.Clone()
			merged[i] = proto.Clone()
			shipped[i] = proto.Clone()
		}
		for round := 0; round < rounds; round++ {
			// Ingest this round's slice into each node (own and merged see
			// identical updates — merged is own plus received mass).
			for i := 0; i < nodes; i++ {
				lo := round * len(owned[i]) / rounds
				hi := (round + 1) * len(owned[i]) / rounds
				for _, u := range owned[i][lo:hi] {
					own[i].Update(u.Item, float64(u.Delta))
					merged[i].Update(u.Item, float64(u.Delta))
				}
			}
			// Ship: every node to both peers. Delta strategy sends the
			// compressed difference since the last ship; the baseline sends
			// the full dense snapshot (the receiver subtracts the previous
			// copy it holds, so both strategies converge identically).
			for i := 0; i < nodes; i++ {
				var wire []byte
				dense, err := own[i].MarshalBinary()
				if err != nil {
					panic(fmt.Sprintf("bench: E14 marshal: %v", err))
				}
				if deltas {
					diff := own[i].Copy()
					if err := diff.Sub(shipped[i]); err != nil {
						panic(fmt.Sprintf("bench: E14 sub: %v", err))
					}
					diffDense, err := diff.MarshalBinary()
					if err != nil {
						panic(fmt.Sprintf("bench: E14 marshal delta: %v", err))
					}
					wire = sketch.EncodeDelta(diffDense)
				} else {
					wire = dense
				}
				for j := 0; j < nodes; j++ {
					if j == i {
						continue
					}
					frames++
					bytes += int64(len(wire))
					var inc sketch.CountMin
					if deltas {
						inner, err := sketch.DecodeDelta(wire)
						if err != nil {
							panic(fmt.Sprintf("bench: E14 decode envelope: %v", err))
						}
						if err := inc.UnmarshalBinary(inner); err != nil {
							panic(fmt.Sprintf("bench: E14 unmarshal delta: %v", err))
						}
					} else {
						if err := inc.UnmarshalBinary(wire); err != nil {
							panic(fmt.Sprintf("bench: E14 unmarshal snapshot: %v", err))
						}
						// Receiver-side delta: drop the copy received last
						// round, keep the new one — same convergence, full
						// bytes on the wire every round.
						if err := inc.Sub(shipped[i]); err != nil {
							panic(fmt.Sprintf("bench: E14 receiver sub: %v", err))
						}
					}
					if err := merged[j].Merge(&inc); err != nil {
						panic(fmt.Sprintf("bench: E14 merge: %v", err))
					}
				}
				shipped[i] = own[i].Copy()
			}
		}
		return frames, bytes, maxErr(merged)
	}

	table := Table{
		Title: fmt.Sprintf("E14: gossip delta shipping vs full snapshots, %d Zipf updates, %d nodes x %d rounds, Count-Min %dx%d",
			length, nodes, rounds, width, depth),
		Columns: []string{"strategy", "frames", "bytes shipped", "bytes/frame", "max |err| vs single"},
	}
	for _, strat := range []struct {
		name   string
		deltas bool
	}{
		{"full-snapshot", false},
		{"delta-gossip", true},
	} {
		frames, bytes, worst := runMesh(strat.deltas)
		table.AddRow(
			strat.name,
			fmtInt(frames),
			fmtInt(int(bytes)),
			fmtInt(int(bytes)/frames),
			fmtFloat(worst),
		)
	}
	return []Table{table}
}
