package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// RunE17StreamIngest compares the two ways updates reach a live daemon at
// equal batch shape: one POST /v1/update request per batch (connection
// reuse, but a full HTTP request/response cycle and a lane pick every time)
// versus the persistent-connection stream path (one held-open TCP
// connection, SKB1 batches as SKS1 frames, one producer lane pinned for the
// connection's lifetime, acks piggybacked). Both paths push the identical
// Zipf stream into a fresh daemon over loopback; the exactness column is the
// largest estimate deviation from the single-threaded reference and must
// always read exactly 0 — framing, acking and reconnect bookkeeping change
// how updates travel, never what the counters sum to. The stream path's
// clock includes the final ack drain, so its rate never flatters unapplied
// frames.
func RunE17StreamIngest(cfg Config) []Table {
	universe := uint64(1 << 20)
	length := 2_000_000
	if cfg.Quick {
		universe = 1 << 16
		length = 100_000
	}
	const width, depth, k = 4096, 4, 64

	r := xrand.New(cfg.Seed)
	s := stream.Zipf(r, universe, length, 1.1)
	items := make([]uint64, len(s.Updates))
	deltas := make([]float64, len(s.Updates))
	for i, u := range s.Updates {
		items[i] = u.Item
		deltas[i] = float64(u.Delta)
	}

	single := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed+1), width, depth, k)
	single.UpdateBatch(items, deltas)
	maxErr := func(snapBytes []byte) float64 {
		merged := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed+1), width, depth, k)
		if err := merged.UnmarshalBinary(snapBytes); err != nil {
			panic(fmt.Sprintf("bench: E17 snapshot decode: %v", err))
		}
		var worst float64
		for item := uint64(0); item < universe; item += 101 {
			if d := absFloat(single.Estimate(item) - merged.Estimate(item)); d > worst {
				worst = d
			}
		}
		return worst
	}

	table := Table{
		Title: fmt.Sprintf("E17: streamed vs per-POST ingest over loopback, %d Zipf updates, tracker %dx%d k=%d, GOMAXPROCS=%d",
			length, width, depth, k, runtime.GOMAXPROCS(0)),
		Columns: []string{"path", "batch", "items/sec (M)", "max |err| vs single"},
	}
	rate := func(d float64) string { return fmt.Sprintf("%.2f", float64(length)/d/1e6) }
	ctx := context.Background()

	for _, batch := range []int{256, 4096} {
		// Fresh daemon per row: both paths start from zero counters and an
		// idle engine, so the comparison is purely about the transport.
		run := func(path string, ingest func(client *server.Client, streamAddr string) float64) {
			srv, err := server.New(server.Config{Width: width, Depth: depth, K: k, Seed: cfg.Seed + 1})
			if err != nil {
				panic(fmt.Sprintf("bench: E17 server: %v", err))
			}
			httpLn, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic(fmt.Sprintf("bench: E17 listen: %v", err))
			}
			hs := &http.Server{Handler: srv.Handler()}
			go hs.Serve(httpLn)
			streamLn, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				panic(fmt.Sprintf("bench: E17 listen: %v", err))
			}
			go srv.ServeStream(streamLn)

			client := server.NewClient("http://"+httpLn.Addr().String(), &http.Client{Timeout: time.Minute})
			secs := ingest(client, streamLn.Addr().String())
			snap, err := client.Snapshot(ctx)
			if err != nil {
				panic(fmt.Sprintf("bench: E17 snapshot: %v", err))
			}
			table.AddRow(path, fmtInt(batch), rate(secs), fmtFloat(maxErr(snap)))

			hs.Close()
			if err := srv.Close(); err != nil {
				panic(fmt.Sprintf("bench: E17 server close: %v", err))
			}
		}

		run("post", func(client *server.Client, _ string) float64 {
			return timeIt(func() {
				for start := 0; start < len(items); start += batch {
					end := min(start+batch, len(items))
					if err := client.UpdateColumns(ctx, items[start:end], deltas[start:end]); err != nil {
						panic(fmt.Sprintf("bench: E17 post ingest: %v", err))
					}
				}
			}).Seconds()
		})

		run("stream", func(_ *server.Client, streamAddr string) float64 {
			su, err := server.DialStream(streamAddr, server.StreamConfig{BatchSize: batch})
			if err != nil {
				panic(fmt.Sprintf("bench: E17 dial stream: %v", err))
			}
			return timeIt(func() {
				for start := 0; start < len(items); start += batch {
					end := min(start+batch, len(items))
					if err := su.UpdateColumns(items[start:end], deltas[start:end]); err != nil {
						panic(fmt.Sprintf("bench: E17 stream ingest: %v", err))
					}
				}
				// Close syncs: the clock stops only after every frame is
				// acked as applied.
				if err := su.Close(); err != nil {
					panic(fmt.Sprintf("bench: E17 stream close: %v", err))
				}
			}).Seconds()
		})
	}
	return []Table{table}
}
