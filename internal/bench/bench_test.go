package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tbl := Table{Title: "demo", Columns: []string{"a", "longer"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333333", "4")
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "longer") || !strings.Contains(out, "333333") {
		t.Fatalf("table output malformed:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	if len(reg) != 18 {
		t.Fatalf("expected 18 experiments, got %d", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if e.ID == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := Lookup("E3"); !ok {
		t.Error("Lookup should be case-insensitive")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown id should fail")
	}
	if len(IDs()) != 18 {
		t.Error("IDs() should list 18 experiments")
	}
}

// TestAllExperimentsQuick smoke-runs every experiment at reduced scale and
// sanity-checks that each produces at least one non-empty table.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Seed: 42, Quick: true}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables := e.Run(cfg)
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tbl := range tables {
				if len(tbl.Columns) == 0 || len(tbl.Rows) == 0 {
					t.Fatalf("%s produced an empty table %q", e.ID, tbl.Title)
				}
				for _, row := range tbl.Rows {
					if len(row) != len(tbl.Columns) {
						t.Fatalf("%s: row width %d != column count %d in %q", e.ID, len(row), len(tbl.Columns), tbl.Title)
					}
				}
				var buf bytes.Buffer
				tbl.Fprint(&buf)
				if buf.Len() == 0 {
					t.Fatalf("%s: empty rendering", e.ID)
				}
			}
		})
	}
}

// TestE1RecallAtLargeWidth checks the substantive claim behind E1: with
// enough counters, the Count-Min tracker finds essentially all heavy hitters.
func TestE1RecallAtLargeWidth(t *testing.T) {
	tables := RunE1HeavyHitters(Config{Seed: 7, Quick: true})
	tbl := tables[0]
	// The last count-min row (largest width) must have recall close to 1.
	var best float64
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[0], "count-min w=8192") {
			var recall float64
			if _, err := parseFloat(row[2], &recall); err == nil && recall > best {
				best = recall
			}
		}
	}
	if best < 0.95 {
		t.Errorf("count-min recall at the largest width is %.3f, expected > 0.95", best)
	}
}

// TestE10ThresholdShape checks the qualitative IBLT claim: decode succeeds at
// low load and fails at load >= 1.2 for k=4.
func TestE10ThresholdShape(t *testing.T) {
	tbl := RunE10IBLT(Config{Seed: 3, Quick: true})[0]
	var low, high float64
	for _, row := range tbl.Rows {
		var load, k4 float64
		if _, err := parseFloat(row[0], &load); err != nil {
			t.Fatal(err)
		}
		if _, err := parseFloat(row[2], &k4); err != nil {
			t.Fatal(err)
		}
		if load <= 0.31 {
			low = k4
		}
		if load >= 1.19 {
			high = k4
		}
	}
	if low < 0.9 {
		t.Errorf("IBLT decode at load 0.3 succeeded only %.2f of the time", low)
	}
	if high > 0.2 {
		t.Errorf("IBLT decode at load 1.2 succeeded %.2f of the time; expected near 0", high)
	}
}

func parseFloat(s string, out *float64) (int, error) {
	return fmt.Sscan(s, out)
}
