package bench

import (
	"fmt"

	"repro/internal/hashing"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// RunE1HeavyHitters sweeps the space given to each summary and reports how
// well it recovers the true heavy hitters of a Zipf stream (recall,
// precision, mean relative count error), alongside the exact-counter cost.
// It also includes the conservative-update and Count-Sketch ablations.
func RunE1HeavyHitters(cfg Config) []Table {
	universe := uint64(1 << 20)
	length := 2_000_000
	if cfg.Quick {
		universe = 1 << 14
		length = 50_000
	}
	const alpha = 1.1
	const phi = 0.001

	r := xrand.New(cfg.Seed)
	s := stream.Zipf(r, universe, length, alpha)
	exact := stream.NewExactCounter()
	for _, u := range s.Updates {
		exact.Update(u.Item, u.Delta)
	}
	truth := exact.HeavyHitters(phi)
	trueSet := map[uint64]int64{}
	for _, ic := range truth {
		trueSet[ic.Item] = ic.Count
	}

	table := Table{
		Title:   fmt.Sprintf("E1: heavy hitters on Zipf(%.1f), N=%d items, universe=%d, phi=%.3f (true heavy hitters: %d; exact counter uses %d entries)", alpha, length, universe, phi, len(truth), exact.DistinctItems()),
		Columns: []string{"method", "counters", "recall", "precision", "mean rel err"},
	}

	type reported struct {
		items map[uint64]int64
		space int
	}
	evaluate := func(name string, rep reported) {
		var hit, relErrCount int
		var relErrSum float64
		for item, trueCount := range trueSet {
			est, ok := rep.items[item]
			if !ok {
				continue
			}
			hit++
			relErrSum += absFloat(float64(est)-float64(trueCount)) / float64(trueCount)
			relErrCount++
		}
		recall := float64(hit) / float64(len(trueSet))
		precision := 1.0
		if len(rep.items) > 0 {
			truePos := 0
			for item := range rep.items {
				if _, ok := trueSet[item]; ok {
					truePos++
				}
			}
			precision = float64(truePos) / float64(len(rep.items))
		}
		meanRel := 0.0
		if relErrCount > 0 {
			meanRel = relErrSum / float64(relErrCount)
		}
		table.AddRow(name, fmtInt(rep.space), fmtFloat(recall), fmtFloat(precision), fmtFloat(meanRel))
	}

	toMap := func(items []stream.ItemCount) map[uint64]int64 {
		out := make(map[uint64]int64, len(items))
		for _, ic := range items {
			out[ic.Item] = ic.Count
		}
		return out
	}

	for _, width := range []int{512, 2048, 8192} {
		depth := 4
		// Count-Min + tracker.
		tr := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed+1), width, depth, 4*len(truth)+16)
		for _, u := range s.Updates {
			tr.Update(u.Item, float64(u.Delta))
		}
		evaluate(fmt.Sprintf("count-min w=%d", width), reported{items: toMap(tr.HeavyHitters(phi)), space: width * depth})

		// Count-Sketch point estimates over the tracker candidates.
		cs := sketch.NewCountSketch(xrand.New(cfg.Seed+2), width, 5)
		for _, u := range s.Updates {
			cs.Update(u.Item, float64(u.Delta))
		}
		csItems := map[uint64]int64{}
		for _, ic := range tr.TopK() {
			if est := cs.Estimate(ic.Item); est >= phi*float64(exact.Total()) {
				csItems[ic.Item] = int64(est + 0.5)
			}
		}
		evaluate(fmt.Sprintf("count-sketch w=%d", width), reported{items: csItems, space: width * 5})

		// Conservative-update ablation.
		cons := sketch.NewCountMin(xrand.New(cfg.Seed+3), width, depth, sketch.WithConservativeUpdate())
		for _, u := range s.Updates {
			cons.Update(u.Item, float64(u.Delta))
		}
		consItems := map[uint64]int64{}
		for _, ic := range tr.TopK() {
			if est := cons.Estimate(ic.Item); est >= phi*float64(exact.Total()) {
				consItems[ic.Item] = int64(est + 0.5)
			}
		}
		evaluate(fmt.Sprintf("count-min-cons w=%d", width), reported{items: consItems, space: width * depth})

		// Deterministic baselines with comparable space.
		k := width * depth / 2 // two words per counter entry
		mg := sketch.NewMisraGries(k)
		ss := sketch.NewSpaceSaving(k)
		for _, u := range s.Updates {
			mg.Update(u.Item, u.Delta)
			ss.Update(u.Item, u.Delta)
		}
		evaluate(fmt.Sprintf("misra-gries k=%d", k), reported{items: toMap(mg.HeavyHitters(phi)), space: 2 * k})
		evaluate(fmt.Sprintf("space-saving k=%d", k), reported{items: toMap(ss.HeavyHitters(phi)), space: 2 * k})
	}
	return []Table{table}
}

// RunE2Throughput measures single-threaded update and point-query throughput
// of each sketch, including the hash-family ablation for Count-Min.
func RunE2Throughput(cfg Config) []Table {
	updates := 2_000_000
	if cfg.Quick {
		updates = 100_000
	}
	universe := uint64(1 << 20)
	r := xrand.New(cfg.Seed)
	s := stream.Zipf(r, universe, updates, 1.1)

	table := Table{
		Title:   fmt.Sprintf("E2: update/query throughput, %d updates over universe %d", updates, universe),
		Columns: []string{"method", "counters", "updates/sec (M)", "queries/sec (M)"},
	}

	type updater interface {
		Update(item uint64, delta float64)
	}
	type estimator interface {
		Estimate(item uint64) float64
	}

	run := func(name string, space int, u updater, e estimator) {
		updTime := timeIt(func() {
			for _, up := range s.Updates {
				u.Update(up.Item, float64(up.Delta))
			}
		})
		queries := len(s.Updates) / 2
		qryTime := timeIt(func() {
			for i := 0; i < queries; i++ {
				e.Estimate(s.Updates[i].Item)
			}
		})
		table.AddRow(name, fmtInt(space),
			fmt.Sprintf("%.2f", float64(len(s.Updates))/updTime.Seconds()/1e6),
			fmt.Sprintf("%.2f", float64(queries)/qryTime.Seconds()/1e6))
	}

	const width, depth = 4096, 4
	families := []struct {
		name   string
		family hashing.Family
	}{
		{"count-min/poly2", hashing.FamilyPoly2},
		{"count-min/poly4", hashing.FamilyPoly4},
		{"count-min/mulshift", hashing.FamilyMultiplyShift},
		{"count-min/tabulation", hashing.FamilyTabulation},
	}
	for _, f := range families {
		cm := sketch.NewCountMin(xrand.New(cfg.Seed+1), width, depth, sketch.WithCountMinHashFamily(f.family))
		run(f.name, width*depth, cm, cm)
	}
	cs := sketch.NewCountSketch(xrand.New(cfg.Seed+2), width, depth+1)
	run("count-sketch/poly2", width*(depth+1), cs, cs)

	return []Table{table}
}

// RunE10IBLT sweeps the load factor of an invertible Bloom lookup table and
// reports the full-decode success rate for different hash counts.
func RunE10IBLT(cfg Config) []Table {
	cells := 1024
	trials := 40
	if cfg.Quick {
		cells = 256
		trials = 10
	}
	table := Table{
		Title:   fmt.Sprintf("E10: IBLT decode success rate, %d cells, %d trials per point", cells, trials),
		Columns: []string{"load (keys/cells)", "k=3 success", "k=4 success", "k=5 success"},
	}
	for _, load := range []float64{0.3, 0.5, 0.7, 0.8, 0.9, 1.0, 1.2} {
		keys := int(load * float64(cells))
		row := []string{fmtFloat(load)}
		for _, k := range []int{3, 4, 5} {
			success := 0
			for trial := 0; trial < trials; trial++ {
				r := xrand.New(cfg.Seed + uint64(trial)*31 + uint64(k))
				t := sketch.NewIBLT(r, cells, k)
				for i := 0; i < keys; i++ {
					t.Insert(uint64(i)*2654435761 + uint64(trial))
				}
				if decoded, err := t.ListEntries(); err == nil && len(decoded) == keys {
					success++
				}
			}
			row = append(row, fmtFloat(float64(success)/float64(trials)))
		}
		table.AddRow(row...)
	}
	return []Table{table}
}

func absFloat(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
