package bench

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// RunE11ShardedIngest measures ingestion throughput of the sharded engine
// against the single-threaded sketch on a Zipf stream, sweeping the shard
// count, and verifies that the merged result is exactly equal to the
// single-threaded one (the linearity law). Speedup is relative to the
// 1-shard engine, so the engine's own batching overhead is also visible in
// the single-thread row. On a 1-core machine the shards time-slice and the
// speedup stays near 1; the claim needs GOMAXPROCS >= shards to show.
func RunE11ShardedIngest(cfg Config) []Table {
	universe := uint64(1 << 20)
	length := 2_000_000
	if cfg.Quick {
		universe = 1 << 16
		length = 100_000
	}
	const width, depth = 4096, 4
	const batchSize = 4096

	r := xrand.New(cfg.Seed)
	s := stream.Zipf(r, universe, length, 1.1)
	updates := make([]engine.Update, len(s.Updates))
	for i, u := range s.Updates {
		updates[i] = engine.Update{Item: u.Item, Delta: float64(u.Delta)}
	}

	proto := sketch.NewCountMin(xrand.New(cfg.Seed+1), width, depth)

	// Single-threaded reference: both the exactness oracle and the baseline.
	single := proto.Clone()
	singleTime := timeIt(func() {
		for _, u := range updates {
			single.Update(u.Item, u.Delta)
		}
	})

	table := Table{
		Title: fmt.Sprintf("E11: sharded ingestion throughput, %d Zipf updates, Count-Min %dx%d, batch=%d, GOMAXPROCS=%d",
			length, width, depth, batchSize, runtime.GOMAXPROCS(0)),
		Columns: []string{"config", "items/sec (M)", "speedup vs 1 shard", "max |err| vs single"},
	}

	rate := func(d float64) string { return fmt.Sprintf("%.2f", float64(length)/d/1e6) }

	// maxErr samples the universe and reports the largest estimate deviation
	// from the single-threaded sketch; linearity says it must be exactly 0.
	maxErr := func(merged *sketch.CountMin) float64 {
		var worst float64
		for item := uint64(0); item < universe; item += 101 {
			if d := absFloat(single.Estimate(item) - merged.Estimate(item)); d > worst {
				worst = d
			}
		}
		return worst
	}

	table.AddRow("single-thread", rate(singleTime.Seconds()), "-", "-")

	var oneShard float64
	for _, workers := range []int{1, 2, 4, 8} {
		eng := engine.NewCountMin(engine.Config{Workers: workers, BatchSize: batchSize}, proto)
		var merged *sketch.CountMin
		var err error
		elapsed := timeIt(func() {
			eng.UpdateBatch(updates)
			merged, err = eng.Close()
		})
		if err != nil {
			panic(fmt.Sprintf("bench: E11 engine close: %v", err))
		}
		secs := elapsed.Seconds()
		if workers == 1 {
			oneShard = secs
		}
		table.AddRow(
			fmt.Sprintf("engine %d shards", workers),
			rate(secs),
			fmt.Sprintf("%.2fx", oneShard/secs),
			fmtFloat(maxErr(merged)),
		)
	}
	return []Table{table}
}

// RunE13BatchIngest measures the batch-first hot path against per-item
// ingestion at every layer it touches: the sketch itself (UpdateBatch over
// the flat counter array driven by the devirtualized hash kernels, vs one
// interface-dispatched Update per item), and the engine (columnar producer
// batches flowing whole into the replicas' UpdateBatch). Count-Min and
// Count-Sketch are both swept — the latter exercises the sign kernels too —
// and every configuration's exactness column reports the largest estimate
// deviation from the per-item reference, which linearity plus the
// bit-identical-batch contract says must always be exactly 0.
func RunE13BatchIngest(cfg Config) []Table {
	universe := uint64(1 << 20)
	length := 2_000_000
	if cfg.Quick {
		universe = 1 << 16
		length = 100_000
	}
	const width, depth = 4096, 4

	r := xrand.New(cfg.Seed)
	s := stream.Zipf(r, universe, length, 1.1)
	items := make([]uint64, len(s.Updates))
	deltas := make([]float64, len(s.Updates))
	for i, u := range s.Updates {
		items[i] = u.Item
		deltas[i] = float64(u.Delta)
	}
	rate := func(d float64) string { return fmt.Sprintf("%.2f", float64(length)/d/1e6) }

	// Count-Min table ------------------------------------------------------
	cmProto := sketch.NewCountMin(xrand.New(cfg.Seed+1), width, depth)
	cmRef := cmProto.Clone()
	scalarSecs := timeIt(func() {
		for i := range items {
			cmRef.Update(items[i], deltas[i])
		}
	}).Seconds()
	cmErr := func(got *sketch.CountMin) float64 {
		var worst float64
		for item := uint64(0); item < universe; item += 101 {
			if d := absFloat(cmRef.Estimate(item) - got.Estimate(item)); d > worst {
				worst = d
			}
		}
		return worst
	}

	cmTable := Table{
		Title: fmt.Sprintf("E13a: batch vs scalar ingestion, %d Zipf updates, Count-Min %dx%d, GOMAXPROCS=%d",
			length, width, depth, runtime.GOMAXPROCS(0)),
		Columns: []string{"config", "items/sec (M)", "speedup vs scalar", "max |err| vs scalar"},
	}
	cmTable.AddRow("scalar Update", rate(scalarSecs), "1.00x", "-")
	for _, batchLen := range []int{64, 1024, 4096} {
		cm := cmProto.Clone()
		secs := timeIt(func() {
			for start := 0; start < len(items); start += batchLen {
				end := min(start+batchLen, len(items))
				cm.UpdateBatch(items[start:end], deltas[start:end])
			}
		}).Seconds()
		cmTable.AddRow(
			fmt.Sprintf("UpdateBatch n=%d", batchLen),
			rate(secs),
			fmt.Sprintf("%.2fx", scalarSecs/secs),
			fmtFloat(cmErr(cm)),
		)
	}
	{
		eng := engine.NewCountMin(engine.Config{Workers: 2, BatchSize: 4096}, cmProto)
		var merged *sketch.CountMin
		var err error
		secs := timeIt(func() {
			const chunk = 4096
			for start := 0; start < len(items); start += chunk {
				end := min(start+chunk, len(items))
				eng.UpdateColumns(items[start:end], deltas[start:end])
			}
			merged, err = eng.Close()
		}).Seconds()
		if err != nil {
			panic(fmt.Sprintf("bench: E13 engine close: %v", err))
		}
		cmTable.AddRow("engine columns (2 shards)", rate(secs), fmt.Sprintf("%.2fx", scalarSecs/secs), fmtFloat(cmErr(merged)))
	}

	// Count-Sketch table (buckets and signs both go through kernels) -------
	csProto := sketch.NewCountSketch(xrand.New(cfg.Seed+2), width, depth)
	csRef := csProto.Clone()
	csScalarSecs := timeIt(func() {
		for i := range items {
			csRef.Update(items[i], deltas[i])
		}
	}).Seconds()
	csErr := func(got *sketch.CountSketch) float64 {
		var worst float64
		for item := uint64(0); item < universe; item += 101 {
			if d := absFloat(csRef.Estimate(item) - got.Estimate(item)); d > worst {
				worst = d
			}
		}
		return worst
	}

	csTable := Table{
		Title: fmt.Sprintf("E13b: batch vs scalar ingestion, %d Zipf updates, Count-Sketch %dx%d (bucket + sign kernels)",
			length, width, depth),
		Columns: []string{"config", "items/sec (M)", "speedup vs scalar", "max |err| vs scalar"},
	}
	csTable.AddRow("scalar Update", rate(csScalarSecs), "1.00x", "-")
	for _, batchLen := range []int{1024, 4096} {
		cs := csProto.Clone()
		secs := timeIt(func() {
			for start := 0; start < len(items); start += batchLen {
				end := min(start+batchLen, len(items))
				cs.UpdateBatch(items[start:end], deltas[start:end])
			}
		}).Seconds()
		csTable.AddRow(
			fmt.Sprintf("UpdateBatch n=%d", batchLen),
			rate(secs),
			fmt.Sprintf("%.2fx", csScalarSecs/secs),
			fmtFloat(csErr(cs)),
		)
	}

	return []Table{cmTable, csTable}
}

// RunE12MultiProducerIngest measures concurrent ingestion throughput of the
// producer-handle pipeline against the PR-2 mutex discipline it replaced,
// sweeping the producer count, and verifies that both merged results equal
// the single-threaded sketch exactly. The baseline reproduces the old
// internal/server hot path: P goroutines sharing one engine handle, every
// request-sized chunk serialized behind one global mutex. The treatment
// gives each goroutine its own lock-free producer handle. Both ingest
// identical disjoint slices of one stream, so the exactness column — which
// must always read 0 — shows that arbitrary producer interleavings merge
// counter-for-counter (linearity). On a 1-core machine the speedup stays
// near 1; the lock win needs GOMAXPROCS >= producers to show.
func RunE12MultiProducerIngest(cfg Config) []Table {
	universe := uint64(1 << 20)
	length := 2_000_000
	if cfg.Quick {
		universe = 1 << 16
		length = 100_000
	}
	const width, depth = 4096, 4
	const batchSize = 4096
	const workers = 4
	// requestChunk models one HTTP update batch: the unit the baseline locks
	// around and the unit the handles ingest per call.
	const requestChunk = 1024

	r := xrand.New(cfg.Seed)
	s := stream.Zipf(r, universe, length, 1.1)
	updates := make([]engine.Update, len(s.Updates))
	for i, u := range s.Updates {
		updates[i] = engine.Update{Item: u.Item, Delta: float64(u.Delta)}
	}

	proto := sketch.NewCountMin(xrand.New(cfg.Seed+1), width, depth)

	// Single-threaded reference: the exactness oracle.
	single := proto.Clone()
	for _, u := range updates {
		single.Update(u.Item, u.Delta)
	}
	maxErr := func(merged *sketch.CountMin) float64 {
		var worst float64
		for item := uint64(0); item < universe; item += 101 {
			if d := absFloat(single.Estimate(item) - merged.Estimate(item)); d > worst {
				worst = d
			}
		}
		return worst
	}

	table := Table{
		Title: fmt.Sprintf("E12: multi-producer ingestion, %d Zipf updates, Count-Min %dx%d, %d workers, chunk=%d, GOMAXPROCS=%d",
			length, width, depth, workers, requestChunk, runtime.GOMAXPROCS(0)),
		Columns: []string{"producers", "mutex items/sec (M)", "handles items/sec (M)", "speedup vs mutex", "max |err| vs single"},
	}
	rate := func(d float64) string { return fmt.Sprintf("%.2f", float64(length)/d/1e6) }

	for _, producers := range []int{1, 2, 4, 8} {
		// Disjoint interleaved slices, one per producer goroutine; together
		// they cover the stream exactly once.
		slices := make([][]engine.Update, producers)
		for i := range slices {
			slices[i] = make([]engine.Update, 0, length/producers+1)
		}
		for i, u := range updates {
			slices[i%producers] = append(slices[i%producers], u)
		}

		// Baseline: every chunk serialized behind one global mutex around the
		// engine's shared handle — the pre-refactor server contract.
		engMutex := engine.NewCountMin(engine.Config{Workers: workers, BatchSize: batchSize}, proto)
		var mergedMutex *sketch.CountMin
		var errMutex error
		var mu sync.Mutex
		mutexSecs := timeIt(func() {
			var wg sync.WaitGroup
			for _, own := range slices {
				wg.Add(1)
				go func(own []engine.Update) {
					defer wg.Done()
					for start := 0; start < len(own); start += requestChunk {
						end := min(start+requestChunk, len(own))
						mu.Lock()
						engMutex.UpdateBatch(own[start:end])
						mu.Unlock()
					}
				}(own)
			}
			wg.Wait()
			mergedMutex, errMutex = engMutex.Close()
		}).Seconds()
		if errMutex != nil {
			panic(fmt.Sprintf("bench: E12 mutex engine close: %v", errMutex))
		}

		// Treatment: one private producer handle per goroutine, no shared
		// locks anywhere on the path.
		engHandles := engine.NewCountMin(engine.Config{Workers: workers, BatchSize: batchSize}, proto)
		var mergedHandles *sketch.CountMin
		var errHandles error
		handleSecs := timeIt(func() {
			var wg sync.WaitGroup
			for _, own := range slices {
				wg.Add(1)
				go func(own []engine.Update) {
					defer wg.Done()
					p := engHandles.Producer()
					defer p.Close()
					for start := 0; start < len(own); start += requestChunk {
						end := min(start+requestChunk, len(own))
						p.UpdateBatch(own[start:end])
					}
				}(own)
			}
			wg.Wait()
			mergedHandles, errHandles = engHandles.Close()
		}).Seconds()
		if errHandles != nil {
			panic(fmt.Sprintf("bench: E12 handle engine close: %v", errHandles))
		}

		worst := maxErr(mergedMutex)
		if e := maxErr(mergedHandles); e > worst {
			worst = e
		}
		table.AddRow(
			fmt.Sprintf("%d", producers),
			rate(mutexSecs),
			rate(handleSecs),
			fmt.Sprintf("%.2fx", mutexSecs/handleSecs),
			fmtFloat(worst),
		)
	}
	return []Table{table}
}
