package bench

import (
	"fmt"
	"runtime"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// RunE11ShardedIngest measures ingestion throughput of the sharded engine
// against the single-threaded sketch on a Zipf stream, sweeping the shard
// count, and verifies that the merged result is exactly equal to the
// single-threaded one (the linearity law). Speedup is relative to the
// 1-shard engine, so the engine's own batching overhead is also visible in
// the single-thread row. On a 1-core machine the shards time-slice and the
// speedup stays near 1; the claim needs GOMAXPROCS >= shards to show.
func RunE11ShardedIngest(cfg Config) []Table {
	universe := uint64(1 << 20)
	length := 2_000_000
	if cfg.Quick {
		universe = 1 << 16
		length = 100_000
	}
	const width, depth = 4096, 4
	const batchSize = 4096

	r := xrand.New(cfg.Seed)
	s := stream.Zipf(r, universe, length, 1.1)
	updates := make([]engine.Update, len(s.Updates))
	for i, u := range s.Updates {
		updates[i] = engine.Update{Item: u.Item, Delta: float64(u.Delta)}
	}

	proto := sketch.NewCountMin(xrand.New(cfg.Seed+1), width, depth)

	// Single-threaded reference: both the exactness oracle and the baseline.
	single := proto.Clone()
	singleTime := timeIt(func() {
		for _, u := range updates {
			single.Update(u.Item, u.Delta)
		}
	})

	table := Table{
		Title: fmt.Sprintf("E11: sharded ingestion throughput, %d Zipf updates, Count-Min %dx%d, batch=%d, GOMAXPROCS=%d",
			length, width, depth, batchSize, runtime.GOMAXPROCS(0)),
		Columns: []string{"config", "items/sec (M)", "speedup vs 1 shard", "max |err| vs single"},
	}

	rate := func(d float64) string { return fmt.Sprintf("%.2f", float64(length)/d/1e6) }

	// maxErr samples the universe and reports the largest estimate deviation
	// from the single-threaded sketch; linearity says it must be exactly 0.
	maxErr := func(merged *sketch.CountMin) float64 {
		var worst float64
		for item := uint64(0); item < universe; item += 101 {
			if d := absFloat(single.Estimate(item) - merged.Estimate(item)); d > worst {
				worst = d
			}
		}
		return worst
	}

	table.AddRow("single-thread", rate(singleTime.Seconds()), "-", "-")

	var oneShard float64
	for _, workers := range []int{1, 2, 4, 8} {
		eng := engine.NewCountMin(engine.Config{Workers: workers, BatchSize: batchSize}, proto)
		var merged *sketch.CountMin
		var err error
		elapsed := timeIt(func() {
			eng.UpdateBatch(updates)
			merged, err = eng.Close()
		})
		if err != nil {
			panic(fmt.Sprintf("bench: E11 engine close: %v", err))
		}
		secs := elapsed.Seconds()
		if workers == 1 {
			oneShard = secs
		}
		table.AddRow(
			fmt.Sprintf("engine %d shards", workers),
			rate(secs),
			fmt.Sprintf("%.2fx", oneShard/secs),
			fmtFloat(maxErr(merged)),
		)
	}
	return []Table{table}
}
