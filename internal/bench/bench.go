// Package bench is the experiment harness: it regenerates, as printed
// tables, every quantitative claim of the survey (experiments E1–E10 in
// DESIGN.md, plus the systems experiments E11, sharded ingestion, E12,
// multi-producer ingestion, E13, batch-first ingestion through the flat
// counter layout and hash kernels, E14, gossip delta shipping against
// full-snapshot shipping, E15, sparse recovery against the top-k heap
// over the same Count-Min backing, and E16, replica vs key-partitioned
// sharding on memory, snapshot latency and throughput). Each experiment
// builds its synthetic
// workload, sweeps the relevant parameter, runs the hashing-based method and
// its baselines, and reports the metrics the claim is about
// (recall/precision, measurement counts, running times, distortions,
// leakage).
//
// The same experiment functions back three entry points: the Go benchmarks
// in bench_test.go, the cmd/sketchbench command-line tool, and the
// integration tests that smoke-run every experiment at reduced scale.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config controls the scale of the experiments.
type Config struct {
	// Seed drives all randomness; identical seeds reproduce identical tables.
	Seed uint64
	// Quick shrinks problem sizes so every experiment finishes in well under
	// a second (used by tests); the full-scale runs are the default.
	Quick bool
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	var header strings.Builder
	for i, c := range t.Columns {
		header.WriteString(pad(c, widths[i]))
		header.WriteString("  ")
	}
	fmt.Fprintln(w, strings.TrimRight(header.String(), " "))
	fmt.Fprintln(w, strings.Repeat("-", len(strings.TrimRight(header.String(), " "))))
	for _, row := range t.Rows {
		var line strings.Builder
		for i, cell := range row {
			width := len(cell)
			if i < len(widths) {
				width = widths[i]
			}
			line.WriteString(pad(cell, width))
			line.WriteString("  ")
		}
		fmt.Fprintln(w, strings.TrimRight(line.String(), " "))
	}
	fmt.Fprintln(w)
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

// Experiment couples an identifier and the survey claim it reproduces with
// the function that generates its tables.
type Experiment struct {
	ID    string
	Claim string
	Run   func(cfg Config) []Table
}

// Registry returns every experiment in order E1..E18.
func Registry() []Experiment {
	return []Experiment{
		{ID: "e1", Claim: "§1: frequent elements map to heavy buckets; sketches recover them in one pass with limited storage", Run: RunE1HeavyHitters},
		{ID: "e2", Claim: "§1: constant-time per-item processing; hash family choice is secondary", Run: RunE2Throughput},
		{ID: "e3", Claim: "§2: sparse hashing matrices recover k-sparse signals from O(k log n) measurements, close to dense-matrix optimal", Run: RunE3PhaseTransition},
		{ID: "e4", Claim: "§2: sparse-matrix recovery runs in near-linear time vs O(nm) for dense matrices", Run: RunE4RecoveryTime},
		{ID: "e5", Claim: "§3: sparse JL embeddings match dense distortion while running in time proportional to input sparsity", Run: RunE5JL},
		{ID: "e6", Claim: "§3: sketch-and-solve gives near-optimal regression and low-rank approximation almost linearly", Run: RunE6SketchSolve},
		{ID: "e7", Claim: "§4: sparse FFT beats the full FFT whenever k = o(n), and is sublinear for small k", Run: RunE7SFFT},
		{ID: "e8", Claim: "§4: boxcar buckets are leaky; flat-window filters make leakage negligible", Run: RunE8Leakage},
		{ID: "e9", Claim: "§4: sparse recovery over the Boolean cube (Kushilevitz–Mansour) needs far fewer samples than the full transform", Run: RunE9Hadamard},
		{ID: "e10", Claim: "§2 [GM11]: IBLTs list the whole sketched set exactly below a load threshold", Run: RunE10IBLT},
		{ID: "e11", Claim: "§1: sketches are linear maps, so sharded ingestion merges exactly and throughput scales with cores", Run: RunE11ShardedIngest},
		{ID: "e12", Claim: "§1: linearity tolerates any update interleaving, so lock-free multi-producer ingestion beats a global mutex and still merges exactly", Run: RunE12MultiProducerIngest},
		{ID: "e13", Claim: "§1: a sketch update is a sparse matrix-vector product, so batch-first ingestion through flat counters and vectorizable hash kernels beats per-item dispatch bit-for-bit exactly", Run: RunE13BatchIngest},
		{ID: "e14", Claim: "§1: snapshot differences are themselves valid sketches, so gossiping peers converge exactly while shipping far fewer bytes than full snapshots", Run: RunE14DeltaGossip},
		{ID: "e15", Claim: "§2: the sketch is a linear measurement of the stream, so full sparse recovery reads the same counters the top-k heap does — exact on k-sparse input, global at a latency cost on tails", Run: RunE15Recovery},
		{ID: "e16", Claim: "§1: any split of the stream sums to the same sketch, so workers can own column slices of ONE copy instead of full clones — 1x memory instead of workers-x, bit-identical reads", Run: RunE16PartitionMode},
		{ID: "e17", Claim: "§1: updates commute, so a held-open stream that pins one producer lane per connection ingests at least as fast as per-POST batches of the same shape — and both land bit-identical counters", Run: RunE17StreamIngest},
		{ID: "e18", Claim: "§1: a column of point queries is a matrix-vector product over the same hash rows ingest uses, so batched estimation kernels and one columnar round-trip answer bit-identically to per-key reads at strictly higher throughput", Run: RunE18BatchRead},
	}
}

// Lookup returns the experiment with the given id (case-insensitive).
func Lookup(id string) (Experiment, bool) {
	id = strings.ToLower(strings.TrimSpace(id))
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns the sorted experiment identifiers.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

// timeIt measures the wall-clock time of f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// fmtDuration renders a duration with microsecond resolution.
func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.3fms", float64(d.Microseconds())/1000)
}

// fmtFloat renders a float with 4 significant decimals.
func fmtFloat(v float64) string { return fmt.Sprintf("%.4f", v) }

// fmtInt renders an integer.
func fmtInt(v int) string { return fmt.Sprintf("%d", v) }
