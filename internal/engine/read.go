package engine

import (
	"fmt"

	"repro/internal/sketch"
)

// Epoch-pinned read cache -----------------------------------------------------
//
// Snapshot cuts a barrier per call: every read used to stall the workers and
// pay a full merge, even when nothing had been written since the last one.
// The read cache inverts that. The engine keeps an atomic pointer to its most
// recent snapshot stamped with the write generation it observed (readEpoch);
// a reader whose load of the pointer matches the current generation shares
// that snapshot lock-free — no barrier, no merge, no mutex — and any dispatch
// invalidates the epoch simply by bumping the generation. Only the first
// reader after a write pays the barrier; everyone else rides the pinned
// epoch. The snapshot inside an epoch is immutable by contract: it is never
// handed to callers for writing (Snapshot still returns caller-owned copies)
// and readers query it only through read-only estimators.

// readEpoch is one published read generation: an immutable snapshot and the
// write generation it observed. Shared by any number of readers.
type readEpoch[S any] struct {
	gen  uint64
	snap S
}

// Generation returns the engine's current write generation: the number of
// dispatched batches plus absorbed replicas. A read epoch stamped with this
// value reflects every flushed write.
func (e *Engine[S]) Generation() uint64 { return e.writeGen.Load() }

// EpochHits returns how many reads were answered from a pinned epoch without
// taking the barrier.
func (e *Engine[S]) EpochHits() int64 { return e.epochHits.Load() }

// EpochMisses returns how many reads had to cut a fresh snapshot because the
// pinned epoch was stale (or absent).
func (e *Engine[S]) EpochMisses() int64 { return e.epochMisses.Load() }

// ReadSnapshot returns the current read epoch's snapshot and its write
// generation. When the pinned epoch is current the call is lock-free and the
// returned snapshot is shared — callers must treat it as immutable, reading
// it only through Estimate/EstimateBatchWith-style queries (which are safe
// concurrently on an immutable sketch). On a stale epoch the calling reader
// cuts a fresh snapshot under the engine mutex — exactly what Snapshot does,
// including the flush of the engine's own handle — publishes it, and every
// reader behind it shares the result.
//
// The returned generation makes reads exact in the presence of racing
// ingest: a snapshot at generation g holds precisely the first g dispatched
// batches (plus absorbed replicas), nothing more, nothing less.
func (e *Engine[S]) ReadSnapshot() (S, uint64, error) {
	var zero S
	if e.readClosed.Load() {
		return zero, 0, ErrClosed
	}
	if ep := e.epoch.Load(); ep != nil && ep.gen == e.writeGen.Load() {
		e.epochHits.Add(1)
		return ep.snap, ep.gen, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return zero, 0, ErrClosed
	}
	// Another reader may have refreshed the epoch while we waited for the
	// lock; their snapshot is as current as ours would be.
	if ep := e.epoch.Load(); ep != nil && ep.gen == e.writeGen.Load() {
		e.epochHits.Add(1)
		return ep.snap, ep.gen, nil
	}
	e.epochMisses.Add(1)
	snap, err := e.snapshotLocked()
	if err != nil {
		return zero, 0, err
	}
	// cutGen was captured under the dispatch write lock at the barrier cut,
	// so it counts exactly the batches the snapshot contains. Publishes are
	// serialized by e.mu and gens are monotonic, so a plain store suffices.
	ep := &readEpoch[S]{gen: e.cutGen, snap: snap}
	e.epoch.Store(ep)
	return ep.snap, ep.gen, nil
}

// EstimateBatch answers a whole column of point queries from the pinned read
// epoch, writing the estimate of keys[i] to dst[i] and returning the write
// generation the answers reflect. The batched kernels run over a pooled
// scratch, so steady-state reads neither allocate nor contend: any number of
// goroutines may call EstimateBatch concurrently. Replica types without a
// batch estimator fall back to scalar Estimate over the same epoch; types
// with neither contract return an error.
func (e *Engine[S]) EstimateBatch(keys []uint64, dst []float64) (uint64, error) {
	if len(keys) != len(dst) {
		panic(fmt.Sprintf("engine: EstimateBatch length mismatch (%d keys, %d dst)", len(keys), len(dst)))
	}
	snap, gen, err := e.ReadSnapshot()
	if err != nil {
		return 0, err
	}
	switch est := any(snap).(type) {
	case sketch.BatchEstimator:
		sc, _ := e.estScratch.Get().(*sketch.EstimateScratch)
		if sc == nil {
			sc = new(sketch.EstimateScratch)
		}
		est.EstimateBatchWith(keys, dst, sc)
		e.estScratch.Put(sc)
	case interface{ Estimate(uint64) float64 }:
		for i, key := range keys {
			dst[i] = est.Estimate(key)
		}
	default:
		return 0, fmt.Errorf("engine: %T has no estimator", snap)
	}
	return gen, nil
}
