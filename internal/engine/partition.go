package engine

import (
	"fmt"
	"sync"

	"repro/internal/sketch"
)

// Partition mode --------------------------------------------------------------
//
// Replica mode spends workers x sketch-size memory and a full merge per
// snapshot. Partition mode (Config.Partition) keeps ONE copy of the logical
// sketch and splits it by columns: shard j owns columns [j*W/N, (j+1)*W/N) of
// every row — contiguous per row thanks to the flat row-major layout — so the
// shards' slices tile the sketch exactly and a snapshot is a concatenation,
// not a merge.
//
// Routing happens in the producers: dispatch hashes the batch once per row
// through the family's batch kernels (sketch.ColumnSketch.ScatterColumns) and
// sends each shard only the (local index, delta) increments that land in its
// columns. Hashing a key names, for each row, the shard owning that row's
// bucket; the shard worker is a pure scatter-add loop over its own slice with
// no hashing and no replica. Because counter addition commutes, the
// assembled snapshot is counter-for-counter — and, whenever counter sums are
// exact in float64, bit-for-bit — identical to replica mode and to the
// single-threaded sketch, which is what the cross-mode equivalence tests pin.
//
// One subtlety is barrier atomicity: a replica-mode batch lands on a single
// shard, so every snapshot cut falls on a batch boundary for free. A
// partitioned batch fans out to several shards, so dispatch and barrier
// serialize on an RWMutex — producers hold the read side around their sends,
// a barrier holds the write side while enqueueing its tokens — keeping every
// batch's parts entirely on one side of every cut.
//
// Heavy-hitter trackers add a candidate lane: every key also travels to the
// shard owning its row-0 bucket, which scores it from its own row-0 counter
// (the same never-underestimating bound the tracker's heap uses) into a
// bounded CandidateSet. Snapshot assembly unions the shard candidate sets and
// re-scores them against the assembled counters — the same reduction replica
// merges apply. Candidate selection is heuristic in every mode; the counters
// and every counter-derived read are what stay bit-identical.

// colBatch is the partition-mode unit of work: parallel shard-local flat
// counter indices and deltas, the batch's delta mass (attributed to shard 0),
// and the tracker candidate lane.
type colBatch struct {
	idx      []uint32
	deltas   []float64
	mass     float64
	candKeys []uint64
	candIdx  []uint32
}

// colShard is one worker goroutine and its column slice: the counters of
// global columns [lo, hi) of every row, row-major.
type colShard struct {
	ch     chan op
	lo, hi int
	counts []float64
	mass   float64
	cands  *sketch.CandidateSet // nil unless the family tracks candidates
	done   chan struct{}
}

// candidateSketch is the optional extra contract of families that carry a
// candidate set beside their counters (the heavy-hitter tracker): expose the
// tracked keys, absorb keys re-scored against the current counters, and name
// the capacity. Estimate scores absorbed replicas' candidates.
type candidateSketch interface {
	CandidateItems() []uint64
	AbsorbCandidates(items []uint64)
	CandidateCap() int
	Estimate(item uint64) float64
}

// partition is the partition-mode state of an Engine (nil in replica mode).
type partition[S any] struct {
	shape  sketch.ColumnShape
	shards []*colShard

	// scatter routes a batch through the prototype's shared hash functions;
	// it reads only those and the producer-owned ColumnScatter scratch, so
	// producers route concurrently.
	scatter func(items []uint64, deltas []float64, sc *sketch.ColumnScatter)

	// dispatchMu makes a producer's multi-shard dispatch atomic with respect
	// to barriers (see the package comment above).
	dispatchMu sync.RWMutex

	free chan colBatch // recycled scatter buffers, shared by all producers

	candCap int // > 0 when the family tracks candidates

	// extraCands holds candidate keys learned from absorbed replicas (e.g.
	// gossip peers' trackers), scored by the source's own estimate; snapshot
	// assembly merges them with the shard candidates and re-scores. Guarded
	// by the engine mu: only the barrier paths touch it.
	extraCands *sketch.CandidateSet
}

// newPartitioned builds a partition-mode engine over clones of proto. The
// family must implement sketch.ColumnSketch; refusing here beats silently
// serving a mode the family cannot honor.
func newPartitioned[S LinearSketch[S]](cfg Config, proto S) *Engine[S] {
	cf, ok := any(proto).(sketch.ColumnSketch)
	if !ok {
		panic(fmt.Sprintf("engine: %T has no column-slice view and cannot be partitioned; use replica mode", proto))
	}
	shape := cf.ColumnShape()
	e := &Engine[S]{
		cfg:        cfg,
		newReplica: func() S { return proto.Clone() },
		apply:      func(s S, items []uint64, deltas []float64) { s.UpdateBatch(items, deltas) },
		merge:      func(dst, src S) error { return dst.Merge(src) },
	}
	pt := &partition[S]{
		shape:   shape,
		scatter: cf.ScatterColumns,
		free:    make(chan colBatch, cfg.Workers*(cfg.QueueDepth+1)),
		shards:  make([]*colShard, cfg.Workers),
	}
	if cs, ok := any(proto).(candidateSketch); ok {
		pt.candCap = cs.CandidateCap()
		pt.extraCands = sketch.NewCandidateSet(pt.candCap)
	}
	for j := range pt.shards {
		lo, hi := shape.Range(j, cfg.Workers)
		sh := &colShard{
			ch:     make(chan op, cfg.QueueDepth),
			lo:     lo,
			hi:     hi,
			counts: make([]float64, shape.Rows*(hi-lo)),
			done:   make(chan struct{}),
		}
		if pt.candCap > 0 {
			sh.cands = sketch.NewCandidateSet(pt.candCap)
		}
		pt.shards[j] = sh
	}
	e.part = pt
	for _, sh := range pt.shards {
		go e.runCol(sh)
	}
	e.def = e.Producer()
	return e
}

// runCol is the partition-mode worker loop: scatter-add each batch's
// increments into the shard's own slice, fold in the mass share, score the
// candidate lane, honor barriers. No hashing, no replica, no reads outside
// the slice.
func (e *Engine[S]) runCol(sh *colShard) {
	defer close(sh.done)
	for o := range sh.ch {
		if o.ready != nil {
			o.ready <- struct{}{}
			<-o.resume
			continue
		}
		b := o.cb
		for i, id := range b.idx {
			sh.counts[id] += b.deltas[i]
		}
		sh.mass += b.mass
		if sh.cands != nil {
			for i, key := range b.candKeys {
				// Row 0's local flat index is its column offset, so the
				// candidate's score — its row-0 counter after this batch — is
				// one read from the shard's own slice.
				sh.cands.Offer(key, sh.counts[b.candIdx[i]])
			}
		}
		select {
		case e.part.free <- colBatch{idx: b.idx[:0], deltas: b.deltas[:0], candKeys: b.candKeys[:0], candIdx: b.candIdx[:0]}:
		default:
		}
	}
}

// partDispatch routes the producer's buffered batch to the column shards:
// scatter through the family's batch kernels, then send each shard its part
// under the dispatch lock so no barrier can split the batch.
func (p *Producer[S]) partDispatch() {
	pt, sc := p.e.part, p.sc
	pt.scatter(p.cur.items, p.cur.deltas, sc)
	p.cur.items, p.cur.deltas = p.cur.items[:0], p.cur.deltas[:0]
	pt.dispatchMu.RLock()
	for j, sh := range pt.shards {
		if len(sc.Idx[j]) == 0 && len(sc.CandKeys[j]) == 0 && (j != 0 || sc.Mass == 0) {
			continue
		}
		cb := colBatch{idx: sc.Idx[j], deltas: sc.Delta[j], candKeys: sc.CandKeys[j], candIdx: sc.CandIdx[j]}
		if j == 0 {
			cb.mass = sc.Mass
		}
		sh.ch <- op{cb: cb}
		// The shard now owns those buffers; install recycled (or fresh) ones.
		select {
		case nb := <-pt.free:
			sc.Idx[j], sc.Delta[j] = nb.idx[:0], nb.deltas[:0]
			sc.CandKeys[j], sc.CandIdx[j] = nb.candKeys[:0], nb.candIdx[:0]
		default:
			sc.Idx[j], sc.Delta[j] = nil, nil
			sc.CandKeys[j], sc.CandIdx[j] = nil, nil
		}
	}
	// Bump the write generation inside the dispatch lock, pairing with the
	// barrier's cutGen capture under the write side (see engine.dispatchMu):
	// the cut counts exactly the batches on its side.
	p.e.writeGen.Add(1)
	pt.dispatchMu.RUnlock()
	sc.Mass = 0
}

// partSnapshot copies every shard's slice (and candidate keys) under the
// barrier, then assembles the full replica outside it, so producers stall
// only for the memcpy. Caller holds e.mu and has flushed the engine handle.
func (e *Engine[S]) partSnapshot() (S, error) {
	var zero S
	pt := e.part
	slices := make([][]float64, len(pt.shards))
	var mass float64
	var candKeys []uint64
	err := e.barrier(func() error {
		for j, sh := range pt.shards {
			slices[j] = append([]float64(nil), sh.counts...)
			mass += sh.mass
			if sh.cands != nil {
				candKeys = sh.cands.AppendItems(candKeys)
			}
		}
		if pt.extraCands != nil {
			candKeys = pt.extraCands.AppendItems(candKeys)
		}
		return nil
	})
	if err != nil {
		return zero, err
	}
	return e.assemble(slices, mass, candKeys)
}

// assemble builds a full replica from per-shard column slices: concatenate
// the counters, set the mass, and re-score any candidate keys against the
// assembled sketch.
func (e *Engine[S]) assemble(slices [][]float64, mass float64, candKeys []uint64) (S, error) {
	var zero S
	out := e.newReplica()
	cf, ok := any(out).(sketch.ColumnSketch)
	if !ok {
		return zero, fmt.Errorf("engine: %T lost its column-slice view", out)
	}
	if err := cf.ConcatColumns(slices, mass); err != nil {
		return zero, fmt.Errorf("engine: assembling partitioned snapshot: %w", err)
	}
	if len(candKeys) > 0 {
		if cs, ok := any(out).(candidateSketch); ok {
			cs.AbsorbCandidates(candKeys)
		}
	}
	return out, nil
}

// partAbsorb folds a full replica into the column shards: slice src's
// counters with the same ranges the shards own and add them in place under
// the barrier; src's mass lands on shard 0 (so the shard masses keep summing
// to the stream's), and src's candidate keys are retained scored by src's
// own estimates. Caller holds e.mu and has flushed the engine handle.
func (e *Engine[S]) partAbsorb(src S) error {
	pt := e.part
	cf, ok := any(src).(sketch.ColumnSketch)
	if !ok {
		return fmt.Errorf("engine: %T cannot be absorbed into a partitioned engine", src)
	}
	if got := cf.ColumnShape(); got != pt.shape {
		return fmt.Errorf("engine: cannot absorb replica of shape %dx%d into partitioned engine of shape %dx%d",
			got.Rows, got.Width, pt.shape.Rows, pt.shape.Width)
	}
	var scratch []float64
	err := e.barrier(func() error {
		for j, sh := range pt.shards {
			if len(sh.counts) == 0 {
				continue
			}
			scratch = cf.AppendColumnSlice(scratch[:0], j, len(pt.shards))
			for i, v := range scratch {
				sh.counts[i] += v
			}
		}
		pt.shards[0].mass += cf.ColumnMass()
		// Like the replica-mode Absorb: the readable state changed, so bump
		// the write generation inside the barrier to invalidate pinned read
		// epochs atomically with the absorb itself.
		e.writeGen.Add(1)
		return nil
	})
	if err != nil {
		return err
	}
	if pt.extraCands != nil {
		if cs, ok := any(src).(candidateSketch); ok {
			for _, key := range cs.CandidateItems() {
				pt.extraCands.Offer(key, cs.Estimate(key))
			}
		}
	}
	return nil
}

// partAbsorbSub is partAbsorb with the sign flipped: slice src's counters
// with the shard-owned ranges and subtract them in place under the barrier;
// src's mass comes off shard 0. Candidate keys offered by an earlier absorb
// of the same replica are NOT retracted — candidate sets are heuristic
// (scores are re-estimated against the live counters at query time), so a
// stale candidate costs a lookup, never correctness. Caller holds e.mu and
// has flushed the engine handle.
func (e *Engine[S]) partAbsorbSub(src S) error {
	pt := e.part
	cf, ok := any(src).(sketch.ColumnSketch)
	if !ok {
		return fmt.Errorf("engine: %T cannot be subtracted from a partitioned engine", src)
	}
	if got := cf.ColumnShape(); got != pt.shape {
		return fmt.Errorf("engine: cannot subtract replica of shape %dx%d from partitioned engine of shape %dx%d",
			got.Rows, got.Width, pt.shape.Rows, pt.shape.Width)
	}
	var scratch []float64
	return e.barrier(func() error {
		for j, sh := range pt.shards {
			if len(sh.counts) == 0 {
				continue
			}
			scratch = cf.AppendColumnSlice(scratch[:0], j, len(pt.shards))
			for i, v := range scratch {
				sh.counts[i] -= v
			}
		}
		pt.shards[0].mass -= cf.ColumnMass()
		e.writeGen.Add(1)
		return nil
	})
}

// partClose drains and stops the column workers (the producers are already
// retired) and assembles the final replica. Caller has marked the engine
// closed.
func (e *Engine[S]) partClose() (S, error) {
	pt := e.part
	for _, sh := range pt.shards {
		close(sh.ch)
	}
	for _, sh := range pt.shards {
		<-sh.done
	}
	slices := make([][]float64, len(pt.shards))
	var mass float64
	var candKeys []uint64
	for j, sh := range pt.shards {
		slices[j] = sh.counts
		mass += sh.mass
		if sh.cands != nil {
			candKeys = sh.cands.AppendItems(candKeys)
		}
	}
	if pt.extraCands != nil {
		candKeys = pt.extraCands.AppendItems(candKeys)
	}
	return e.assemble(slices, mass, candKeys)
}
