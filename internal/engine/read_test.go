package engine

import (
	"math"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sketch"
	"repro/internal/xrand"
)

// The tests in this file pin the epoch-pinned read cache: a read at
// generation g sees exactly the first g dispatched batches (coherence under
// racing ingest, run under -race), quiescent reads share one epoch without
// barriers, and EstimateBatch answers match the epoch's snapshot bit for bit.

// readTestBatches builds n deterministic batches of size batchSize each.
func readTestBatches(seed uint64, n, batchSize int) (items [][]uint64, deltas [][]float64) {
	r := xrand.New(seed)
	items = make([][]uint64, n)
	deltas = make([][]float64, n)
	for b := range items {
		items[b] = make([]uint64, batchSize)
		deltas[b] = make([]float64, batchSize)
		for i := range items[b] {
			items[b][i] = r.Uint64n(1 << 12)
			deltas[b][i] = float64(r.Uint64n(8) + 1)
		}
	}
	return items, deltas
}

// referenceAt replays the first gen batches single-threaded.
func referenceAt(proto *sketch.CountMin, items [][]uint64, deltas [][]float64, gen uint64) *sketch.CountMin {
	ref := proto.Clone()
	for b := uint64(0); b < gen; b++ {
		ref.UpdateBatch(items[b], deltas[b])
	}
	return ref
}

// TestReadSnapshotCoherenceUnderRacingIngest runs readers against a producer
// mid-stream in both sharding modes: every read's (snapshot, gen) pair must
// satisfy snapshot == single-threaded replay of the first gen batches,
// counter for counter, bit for bit.
func TestReadSnapshotCoherenceUnderRacingIngest(t *testing.T) {
	for _, mode := range []struct {
		name      string
		partition bool
	}{{"replica", false}, {"partition", true}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			const (
				batchSize = 64
				nBatches  = 150
				readers   = 4
			)
			proto := sketch.NewCountMin(xrand.New(61), 256, 4)
			eng := NewCountMin(Config{Workers: 3, BatchSize: batchSize, Partition: mode.partition}, proto)
			items, deltas := readTestBatches(62, nBatches, batchSize)

			var done atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < readers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					checked := 0
					for !done.Load() || checked == 0 {
						snap, gen, err := eng.ReadSnapshot()
						if err != nil {
							t.Errorf("ReadSnapshot: %v", err)
							return
						}
						if gen > nBatches {
							t.Errorf("gen %d beyond the %d dispatched batches", gen, nBatches)
							return
						}
						ref := referenceAt(proto, items, deltas, gen)
						want, got := ref.CounterData(), snap.CounterData()
						for i := range want {
							if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
								t.Errorf("gen %d: counter %d: got %v, reference %v", gen, i, got[i], want[i])
								return
							}
						}
						if ref.TotalMass() != snap.TotalMass() {
							t.Errorf("gen %d: total mass: got %v, reference %v", gen, snap.TotalMass(), ref.TotalMass())
							return
						}
						checked++
					}
				}()
			}

			p := eng.Producer()
			for b := range items {
				// Each UpdateColumns call fills the handle's buffer exactly, so
				// dispatch b+1 carries precisely batches[0..b] — generation g
				// means "the first g batches" by construction.
				p.UpdateColumns(items[b], deltas[b])
			}
			p.Close()
			done.Store(true)
			wg.Wait()

			// After the producer closed, a fresh read must see everything.
			snap, gen, err := eng.ReadSnapshot()
			if err != nil {
				t.Fatalf("final ReadSnapshot: %v", err)
			}
			if gen != nBatches {
				t.Fatalf("final gen %d, want %d", gen, nBatches)
			}
			ref := referenceAt(proto, items, deltas, nBatches)
			if ref.TotalMass() != snap.TotalMass() {
				t.Fatalf("final mass %v, want %v", snap.TotalMass(), ref.TotalMass())
			}
			if _, err := eng.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, _, err := eng.ReadSnapshot(); err != ErrClosed {
				t.Fatalf("ReadSnapshot after Close: err %v, want ErrClosed", err)
			}
		})
	}
}

// TestReadSnapshotPinsEpoch: quiescent reads share one snapshot (same
// pointer, no extra misses); a write invalidates exactly once.
func TestReadSnapshotPinsEpoch(t *testing.T) {
	eng := NewCountMin(Config{Workers: 2, BatchSize: 4}, sketch.NewCountMin(xrand.New(63), 128, 3))
	defer eng.Close()

	eng.UpdateColumns([]uint64{1, 2, 3, 4}, []float64{1, 1, 1, 1})
	eng.Flush()

	s1, g1, err := eng.ReadSnapshot()
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	s2, g2, err := eng.ReadSnapshot()
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if s1 != s2 || g1 != g2 {
		t.Fatalf("quiescent reads got distinct epochs: %p gen %d vs %p gen %d", s1, g1, s2, g2)
	}
	if hits, misses := eng.EpochHits(), eng.EpochMisses(); hits != 1 || misses != 1 {
		t.Fatalf("hits %d misses %d, want 1 and 1", hits, misses)
	}

	eng.UpdateColumns([]uint64{5, 6, 7, 8}, []float64{1, 1, 1, 1})
	eng.Flush()
	s3, g3, err := eng.ReadSnapshot()
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if s3 == s1 || g3 <= g1 {
		t.Fatalf("write did not invalidate the epoch: %p gen %d after %p gen %d", s3, g3, s1, g1)
	}
	if misses := eng.EpochMisses(); misses != 2 {
		t.Fatalf("misses %d after one invalidation, want 2", misses)
	}
}

// TestEngineEstimateBatchMatchesEpoch: the pooled-scratch batch path answers
// exactly what the pinned snapshot answers, for concurrent readers, and the
// absorb path invalidates the epoch.
func TestEngineEstimateBatchMatchesEpoch(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(65), 256, 4)
	eng := NewCountMin(Config{Workers: 2, BatchSize: 64}, proto)
	defer eng.Close()

	r := xrand.New(66)
	items := make([]uint64, 640)
	deltas := make([]float64, 640)
	for i := range items {
		items[i] = r.Uint64n(1 << 10)
		deltas[i] = float64(r.Uint64n(10))
	}
	eng.UpdateColumns(items, deltas)
	eng.Flush()

	snap, gen, err := eng.ReadSnapshot()
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			keys := make([]uint64, 200)
			dst := make([]float64, len(keys))
			kr := xrand.New(uint64(100 + w))
			for round := 0; round < 20; round++ {
				for i := range keys {
					keys[i] = kr.Uint64n(1 << 11)
				}
				g, err := eng.EstimateBatch(keys, dst)
				if err != nil {
					t.Errorf("EstimateBatch: %v", err)
					return
				}
				if g != gen {
					t.Errorf("EstimateBatch gen %d, want %d (no writes in flight)", g, gen)
					return
				}
				for i, key := range keys {
					if want := snap.Estimate(key); math.Float64bits(dst[i]) != math.Float64bits(want) {
						t.Errorf("key %d: got %v, epoch snapshot %v", key, dst[i], want)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Absorbing a replica must invalidate the pinned epoch.
	other := proto.Clone()
	other.Update(7, 3)
	if err := eng.Absorb(other); err != nil {
		t.Fatalf("Absorb: %v", err)
	}
	dst := make([]float64, 1)
	g, err := eng.EstimateBatch([]uint64{7}, dst)
	if err != nil {
		t.Fatalf("EstimateBatch after Absorb: %v", err)
	}
	if g != gen+1 {
		t.Fatalf("gen after Absorb: %d, want %d", g, gen+1)
	}
	want := snap.Estimate(7) + 3
	if dst[0] != want {
		t.Fatalf("estimate after Absorb: %v, want %v", dst[0], want)
	}
}

// TestEngineEstimateBatchLengthMismatchPanics mirrors the sketch contract.
func TestEngineEstimateBatchLengthMismatchPanics(t *testing.T) {
	eng := NewCountMin(Config{Workers: 1}, sketch.NewCountMin(xrand.New(67), 64, 2))
	defer eng.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	eng.EstimateBatch(make([]uint64, 3), make([]float64, 2))
}
