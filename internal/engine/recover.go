package engine

import (
	"fmt"

	"repro/internal/sketch"
)

// Measurement views a sketch snapshot as the linear measurement it is: the
// flat counter array is exactly y = A·x for the sparse hashing matrix A the
// sketch's hash functions define over a universe [0, n). It satisfies the
// cs.HashOperator interface structurally (Dims/MulVec/TMulVec plus the
// bucket/sign structure), so any internal/cs recoverer — sketch decoding,
// SMP, OMP, IHT, ISTA — can run directly over live server counters.
//
// The adapter never copies the counters: Measurements returns the sketch's
// own flat backing store, and MulVec/TMulVec/Entry recompute rows from the
// sketch's hash functions on demand. A Measurement is therefore only valid
// as a consistent y-vector while the underlying snapshot is not being
// updated, which is what the engine's barrier snapshots guarantee.
type Measurement struct {
	n      int
	width  int
	depth  int
	signed bool
	cm     *sketch.CountMin
	cs     *sketch.CountSketch
}

// NewCountMinMeasurement wraps a Count-Min snapshot as a measurement over
// the universe [0, n). Conservative-update sketches are rejected: their
// counters are not a linear function of the stream, so y ≠ A·x and recovery
// guarantees do not apply.
func NewCountMinMeasurement(cm *sketch.CountMin, n int) (*Measurement, error) {
	if n <= 0 {
		return nil, fmt.Errorf("engine: measurement universe must be positive, got %d", n)
	}
	if cm.Conservative() {
		return nil, fmt.Errorf("engine: conservative-update CountMin is not linear; recovery requires y = A·x")
	}
	return &Measurement{n: n, width: cm.Width(), depth: cm.Depth(), cm: cm}, nil
}

// NewCountSketchMeasurement wraps a Count-Sketch snapshot as a signed
// measurement over the universe [0, n).
func NewCountSketchMeasurement(cs *sketch.CountSketch, n int) (*Measurement, error) {
	if n <= 0 {
		return nil, fmt.Errorf("engine: measurement universe must be positive, got %d", n)
	}
	return &Measurement{n: n, width: cs.Width(), depth: cs.Depth(), signed: true, cs: cs}, nil
}

// NewTrackerMeasurement wraps the Count-Min backing a heavy-hitter tracker
// snapshot as a measurement over the universe [0, n).
func NewTrackerMeasurement(t *sketch.HeavyHitterTracker, n int) (*Measurement, error) {
	return NewCountMinMeasurement(t.Backing(), n)
}

// Dims reports the measurement dimensions: width·depth rows, n columns.
func (m *Measurement) Dims() (rows, cols int) { return m.width * m.depth, m.n }

// RowsPerColumn reports the number of hash rows (non-zeros per column).
func (m *Measurement) RowsPerColumn() int { return m.depth }

// Signed reports whether the measurement carries ±1 signs (Count-Sketch).
func (m *Measurement) Signed() bool { return m.signed }

// Universe reports the declared signal dimension n.
func (m *Measurement) Universe() int { return m.n }

// Entry returns the measurement row and ±1 coefficient of column j in hash
// block b. Rows are laid out block-major to match the sketches' flat
// row-major counter arrays: block b occupies rows [b·width, (b+1)·width).
func (m *Measurement) Entry(block int, j uint64) (row int, val float64) {
	if m.signed {
		return block*m.width + m.cs.RowBucket(block, j), m.cs.RowSign(block, j)
	}
	return block*m.width + m.cm.RowBucket(block, j), 1
}

// Measurements returns the snapshot's flat counter array — the y vector —
// without copying. The slice is the sketch's live backing store: it indexes
// identically to the rows produced by Entry and MulVec, and callers must not
// modify it.
func (m *Measurement) Measurements() []float64 {
	if m.signed {
		return m.cs.CounterData()
	}
	return m.cm.CounterData()
}

// MulVec applies the hashing matrix: each coordinate j of x lands in one
// bucket per hash block, signed for Count-Sketch measurements.
func (m *Measurement) MulVec(x []float64) []float64 {
	if len(x) != m.n {
		panic(fmt.Sprintf("engine: Measurement.MulVec input has length %d, universe is %d", len(x), m.n))
	}
	y := make([]float64, m.width*m.depth)
	for j, v := range x {
		if v == 0 {
			continue
		}
		for b := 0; b < m.depth; b++ {
			row, val := m.Entry(b, uint64(j))
			y[row] += val * v
		}
	}
	return y
}

// TMulVec applies the transpose: coordinate j collects the (signed) contents
// of its bucket in every hash block.
func (m *Measurement) TMulVec(y []float64) []float64 {
	if len(y) != m.width*m.depth {
		panic(fmt.Sprintf("engine: Measurement.TMulVec input has length %d, operator has %d rows", len(y), m.width*m.depth))
	}
	out := make([]float64, m.n)
	for j := 0; j < m.n; j++ {
		var s float64
		for b := 0; b < m.depth; b++ {
			row, val := m.Entry(b, uint64(j))
			s += val * y[row]
		}
		out[j] = s
	}
	return out
}
