package engine

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sketch"
	"repro/internal/xrand"
)

// Cross-mode equivalence -------------------------------------------------------
//
// Partition mode's whole contract is "same bits, less memory": for the same
// stream and seed, every counter-derived read must match replica mode and the
// single-threaded sketch exactly. These tests pin that with randomized
// configurations — family, shape, worker count, batch size, update schedule
// (including negative deltas) and mid-stream Snapshot/DeltaSnapshot cuts.
// Deltas are halves, so float64 counter sums are exact and "equal" means
// bit-for-bit, not within-epsilon.

// schedule is one randomized trial: a stream plus the positions (in updates
// applied) at which each mode must cut a Snapshot and a DeltaSnapshot.
type schedule struct {
	items  []uint64
	deltas []float64
	cuts   []int // strictly increasing, each < len(items)
}

func randomSchedule(r *xrand.Rand, universe uint64, n, cuts int) schedule {
	s := schedule{
		items:  make([]uint64, n),
		deltas: make([]float64, n),
	}
	for i := range s.items {
		s.items[i] = r.Uint64n(universe)
		// Halves in [-4, 4]: exactly representable, exactly summable, and
		// negative often enough to exercise the turnstile path.
		s.deltas[i] = float64(int(r.Uint64n(17))-8) / 2
	}
	pos := map[int]bool{}
	for len(pos) < cuts {
		pos[1+r.Intn(n-1)] = true
	}
	for p := range pos {
		s.cuts = append(s.cuts, p)
	}
	for i := range s.cuts { // insertion sort; cuts is tiny
		for j := i; j > 0 && s.cuts[j] < s.cuts[j-1]; j-- {
			s.cuts[j], s.cuts[j-1] = s.cuts[j-1], s.cuts[j]
		}
	}
	return s
}

// modeRun is everything one mode produced from a schedule: the encoded
// snapshot and delta at every cut, and the final Close replica.
type modeRun[S any] struct {
	snaps  [][]byte
	deltas [][]byte
	final  S
}

// runEngine drives one engine through the schedule, cutting
// Snapshot+DeltaSnapshot at exactly each cut position (baseline = previous
// cut's snapshot, initially the empty prototype). The stream is fed in
// segments ending at the cuts so every mode snapshots after the same number
// of applied updates; within a segment the engine batches by its own
// BatchSize.
func runEngine[S LinearSketch[S]](t *testing.T, eng *Engine[S], proto S, s schedule) modeRun[S] {
	t.Helper()
	var run modeRun[S]
	baseline := proto.Clone()
	prev := 0
	for _, cut := range append(append([]int(nil), s.cuts...), len(s.items)) {
		eng.UpdateColumns(s.items[prev:cut], s.deltas[prev:cut])
		prev = cut
		if cut == len(s.items) {
			break
		}
		snap, delta, err := eng.DeltaSnapshot(baseline)
		if err != nil {
			t.Fatalf("delta snapshot at %d: %v", cut, err)
		}
		sb, err := snap.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal snapshot: %v", err)
		}
		db, err := delta.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal delta: %v", err)
		}
		run.snaps = append(run.snaps, sb)
		run.deltas = append(run.deltas, db)
		baseline = snap
	}
	final, err := eng.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	run.final = final
	return run
}

// runReference replays the schedule single-threaded on a bare sketch,
// producing the same cut artifacts. copy and sub work around the lack of
// method constraints for Copy in LinearSketch.
func runReference[S LinearSketch[S]](t *testing.T, proto S, s schedule, cp func(S) S) modeRun[S] {
	t.Helper()
	var run modeRun[S]
	ref := proto.Clone()
	baseline := proto.Clone()
	next := 0
	for i := range s.items {
		ref.Update(s.items[i], s.deltas[i])
		for next < len(s.cuts) && i+1 >= s.cuts[next] {
			snap := cp(ref)
			delta := cp(ref)
			if err := delta.Sub(baseline); err != nil {
				t.Fatalf("reference sub: %v", err)
			}
			sb, err := snap.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal reference snapshot: %v", err)
			}
			db, err := delta.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal reference delta: %v", err)
			}
			run.snaps = append(run.snaps, sb)
			run.deltas = append(run.deltas, db)
			baseline = snap
			next++
		}
	}
	run.final = ref
	return run
}

// checkRuns compares the three modes' artifacts. Snapshot and delta bytes
// must agree byte-for-byte at every cut (the encodings serialize counters,
// mass and seeds — byte equality IS bit-identity); the finals are compared by
// the caller's family-specific check (tracker bytes include the heuristic
// candidate set, so its runner compares counter-derived reads instead).
func checkRuns[S any](t *testing.T, label string, ref, rep, part modeRun[S], finalEqual func(a, b S) error) {
	t.Helper()
	for i := range ref.snaps {
		if !bytes.Equal(ref.snaps[i], rep.snaps[i]) {
			t.Fatalf("%s: replica snapshot %d differs from single-threaded reference", label, i)
		}
		if !bytes.Equal(ref.snaps[i], part.snaps[i]) {
			t.Fatalf("%s: partitioned snapshot %d differs from single-threaded reference", label, i)
		}
		if !bytes.Equal(ref.deltas[i], rep.deltas[i]) {
			t.Fatalf("%s: replica delta %d differs from single-threaded reference", label, i)
		}
		if !bytes.Equal(ref.deltas[i], part.deltas[i]) {
			t.Fatalf("%s: partitioned delta %d differs from single-threaded reference", label, i)
		}
	}
	if err := finalEqual(ref.final, rep.final); err != nil {
		t.Fatalf("%s: replica final: %v", label, err)
	}
	if err := finalEqual(ref.final, part.final); err != nil {
		t.Fatalf("%s: partitioned final: %v", label, err)
	}
}

// bytesEqualFinal compares finals by their binary encoding.
func bytesEqualFinal[S LinearSketch[S]](a, b S) error {
	ab, err := a.MarshalBinary()
	if err != nil {
		return err
	}
	bb, err := b.MarshalBinary()
	if err != nil {
		return err
	}
	if !bytes.Equal(ab, bb) {
		return fmt.Errorf("encoded finals differ")
	}
	return nil
}

// TestCrossModeEquivalence is the property test: randomized configurations,
// each run through partition mode, replica mode and a single-threaded
// reference, asserting all artifacts identical. CI runs it twice under -race.
func TestCrossModeEquivalence(t *testing.T) {
	r := xrand.New(0xE9)
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		width := 8 + int(r.Uint64n(150))
		depth := 1 + int(r.Uint64n(5))
		workers := 1 + int(r.Uint64n(8))
		batch := 1 + int(r.Uint64n(300))
		n := 2_000 + int(r.Uint64n(8_000))
		universe := uint64(1) << (8 + r.Uint64n(12))
		sched := randomSchedule(r, universe, n, 3)
		family := int(r.Uint64n(4))
		seed := r.Uint64()

		repCfg := Config{Workers: workers, BatchSize: batch}
		partCfg := Config{Workers: workers, BatchSize: batch, Partition: true}
		label := fmt.Sprintf("trial=%d family=%d w=%d d=%d workers=%d batch=%d n=%d", trial, family, width, depth, workers, batch, n)

		switch family {
		case 0:
			proto := sketch.NewCountMin(xrand.New(seed), width, depth)
			ref := runReference(t, proto, sched, func(s *sketch.CountMin) *sketch.CountMin { return s.Copy() })
			rep := runEngine(t, NewCountMin(repCfg, proto), proto, sched)
			part := runEngine(t, NewCountMin(partCfg, proto), proto, sched)
			checkRuns(t, label, ref, rep, part, bytesEqualFinal)
		case 1:
			proto := sketch.NewCountSketch(xrand.New(seed), width, depth)
			ref := runReference(t, proto, sched, func(s *sketch.CountSketch) *sketch.CountSketch { return s.Copy() })
			rep := runEngine(t, NewCountSketch(repCfg, proto), proto, sched)
			part := runEngine(t, NewCountSketch(partCfg, proto), proto, sched)
			checkRuns(t, label, ref, rep, part, bytesEqualFinal)
		case 2:
			logU := 6 + int(r.Uint64n(6))
			sched := randomSchedule(r, uint64(1)<<logU, n, 3)
			proto := sketch.NewDyadic(xrand.New(seed), logU, width, depth)
			ref := runReference(t, proto, sched, func(s *sketch.Dyadic) *sketch.Dyadic { return s.Copy() })
			rep := runEngine(t, NewDyadic(repCfg, proto), proto, sched)
			part := runEngine(t, NewDyadic(partCfg, proto), proto, sched)
			checkRuns(t, label, ref, rep, part, bytesEqualFinal)
		case 3:
			k := 4 + int(r.Uint64n(12))
			proto := sketch.NewHeavyHitterTracker(xrand.New(seed), width, depth, k)
			ref := runTrackerReference(t, proto, sched)
			rep := runTrackerEngine(t, NewTracker(repCfg, proto), proto, sched)
			part := runTrackerEngine(t, NewTracker(partCfg, proto), proto, sched)
			checkTrackerRuns(t, label, universe, ref, rep, part)
		}
	}
}

// Tracker runs compare counter-derived reads, not bytes: the tracker
// encoding includes its candidate set, which is heuristic in every mode
// (replica merges union and re-score too). What must be bit-identical is the
// backing Count-Min — counters, mass, estimates.
type trackerRun struct {
	snaps  []*sketch.HeavyHitterTracker
	deltas []*sketch.HeavyHitterTracker
	final  *sketch.HeavyHitterTracker
}

func runTrackerEngine(t *testing.T, eng *Engine[*sketch.HeavyHitterTracker], proto *sketch.HeavyHitterTracker, s schedule) trackerRun {
	t.Helper()
	var run trackerRun
	baseline := proto.Clone()
	prev := 0
	for _, cut := range append(append([]int(nil), s.cuts...), len(s.items)) {
		eng.UpdateColumns(s.items[prev:cut], s.deltas[prev:cut])
		prev = cut
		if cut == len(s.items) {
			break
		}
		snap, delta, err := eng.DeltaSnapshot(baseline)
		if err != nil {
			t.Fatalf("tracker delta snapshot: %v", err)
		}
		run.snaps = append(run.snaps, snap)
		run.deltas = append(run.deltas, delta)
		baseline = snap
	}
	final, err := eng.Close()
	if err != nil {
		t.Fatalf("tracker close: %v", err)
	}
	run.final = final
	return run
}

func runTrackerReference(t *testing.T, proto *sketch.HeavyHitterTracker, s schedule) trackerRun {
	t.Helper()
	var run trackerRun
	ref := proto.Clone()
	baseline := proto.Clone()
	next := 0
	for i := range s.items {
		ref.Update(s.items[i], s.deltas[i])
		for next < len(s.cuts) && i+1 >= s.cuts[next] {
			snap := ref.Copy()
			delta := ref.Copy()
			if err := delta.Sub(baseline); err != nil {
				t.Fatalf("tracker reference sub: %v", err)
			}
			run.snaps = append(run.snaps, snap)
			run.deltas = append(run.deltas, delta)
			baseline = snap
			next++
		}
	}
	run.final = ref
	return run
}

func trackersCounterEqual(a, b *sketch.HeavyHitterTracker, universe uint64) error {
	if !countersEqual(a.Backing().Counters(), b.Backing().Counters()) {
		return fmt.Errorf("backing counters differ")
	}
	if a.TotalMass() != b.TotalMass() {
		return fmt.Errorf("total mass %v != %v", a.TotalMass(), b.TotalMass())
	}
	for item := uint64(0); item < universe; item += 13 {
		if x, y := a.Estimate(item), b.Estimate(item); x != y {
			return fmt.Errorf("estimate(%d) %v != %v", item, x, y)
		}
	}
	return nil
}

func checkTrackerRuns(t *testing.T, label string, universe uint64, ref, rep, part trackerRun) {
	t.Helper()
	for i := range ref.snaps {
		for name, run := range map[string]trackerRun{"replica": rep, "partitioned": part} {
			if err := trackersCounterEqual(ref.snaps[i], run.snaps[i], universe); err != nil {
				t.Fatalf("%s: %s snapshot %d: %v", label, name, i, err)
			}
			if err := trackersCounterEqual(ref.deltas[i], run.deltas[i], universe); err != nil {
				t.Fatalf("%s: %s delta %d: %v", label, name, i, err)
			}
		}
	}
	if err := trackersCounterEqual(ref.final, rep.final, universe); err != nil {
		t.Fatalf("%s: replica final: %v", label, err)
	}
	if err := trackersCounterEqual(ref.final, part.final, universe); err != nil {
		t.Fatalf("%s: partitioned final: %v", label, err)
	}
}

// TestPartitionConcurrentProducersExact: the multi-producer law holds in
// partition mode — P goroutines ingesting disjoint interleaved slices of one
// stream through private handles must close to the exact single-threaded
// sketch. Under -race this is the data-race oracle for the partition
// dispatch path (scatter, dispatch lock, buffer recycling).
func TestPartitionConcurrentProducersExact(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(31), 512, 4)
	single := proto.Clone()
	s := newZipf(32, 1<<14, 120_000)
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	for _, producers := range []int{1, 2, 4, 8} {
		eng := NewCountMin(Config{Workers: 4, BatchSize: 503, Partition: true}, proto)
		var wg sync.WaitGroup
		for pid := 0; pid < producers; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				p := eng.Producer()
				defer p.Close()
				for i := pid; i < len(s.Updates); i += producers {
					u := s.Updates[i]
					p.Update(u.Item, float64(u.Delta))
				}
			}(pid)
		}
		wg.Wait()
		merged, err := eng.Close()
		if err != nil {
			t.Fatalf("producers=%d: close: %v", producers, err)
		}
		if !countersEqual(single.Counters(), merged.Counters()) {
			t.Fatalf("producers=%d: partitioned counters differ from single-threaded sketch", producers)
		}
		if single.TotalMass() != merged.TotalMass() {
			t.Fatalf("producers=%d: total mass %v != %v", producers, merged.TotalMass(), single.TotalMass())
		}
	}
}

// TestPartitionSnapshotDuringConcurrentIngest: barriers may overlap
// partitioned ingestion. Each mid-stream snapshot must be internally
// consistent — its total mass equal to the sum of whole batches (the
// dispatch lock keeps multi-shard batches atomic under the cut), and its
// counters a prefix-sum of the stream. The final close must be exact.
func TestPartitionSnapshotDuringConcurrentIngest(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(41), 256, 4)
	const batch = 64
	eng := NewCountMin(Config{Workers: 4, BatchSize: batch, Partition: true}, proto)
	s := newZipf(42, 1<<12, 80_000)

	single := proto.Clone()
	var totalMass float64
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
		totalMass += float64(u.Delta)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := eng.Producer()
		defer p.Close()
		for _, u := range s.Updates {
			p.Update(u.Item, float64(u.Delta))
		}
	}()

	for i := 0; i < 20; i++ {
		snap, err := eng.Snapshot()
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		// Every delta in this stream is a positive integer, so a consistent
		// cut has integer mass that is a multiple of nothing in particular —
		// but it must never exceed the full stream's and never be negative.
		if m := snap.TotalMass(); m < 0 || m > totalMass {
			t.Fatalf("snapshot %d: mass %v out of range [0, %v]", i, m, totalMass)
		}
	}
	wg.Wait()

	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), merged.Counters()) {
		t.Fatal("final partitioned counters differ from single-threaded sketch")
	}
	if merged.TotalMass() != totalMass {
		t.Fatalf("final mass %v != %v", merged.TotalMass(), totalMass)
	}
}
