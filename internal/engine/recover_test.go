package engine

import (
	"math"
	"testing"

	"repro/internal/cs"
	"repro/internal/sketch"
	"repro/internal/xrand"
)

// The adapter must satisfy the recoverers' structural interface at compile
// time, not just by luck at the call site.
var _ cs.HashOperator = (*Measurement)(nil)

// TestMeasurementIsZeroCopy asserts that Measurements aliases the sketch's
// live backing store rather than copying it.
func TestMeasurementIsZeroCopy(t *testing.T) {
	cm := sketch.NewCountMin(xrand.New(7), 64, 4)
	m, err := NewCountMinMeasurement(cm, 1024)
	if err != nil {
		t.Fatal(err)
	}
	y := m.Measurements()
	if &y[0] != &cm.CounterData()[0] {
		t.Fatal("Measurements copied the counter array; it must alias the backing store")
	}
	cm.Update(42, 3)
	if sum(m.Measurements()) == 0 {
		t.Fatal("live updates are not visible through the measurement view")
	}
}

// TestMeasurementMatchesSketchState is the linearity invariant behind the
// whole recovery API: the counters a sketch accumulates over a stream equal
// A·x computed by the adapter for the stream's frequency vector x, exactly.
func TestMeasurementMatchesSketchState(t *testing.T) {
	const n = 2048
	x := make([]float64, n)
	x[3] = 10
	x[700] = -4.5
	x[2047] = 2

	check := func(name string, mulVec func() ([]float64, []float64)) {
		y, state := mulVec()
		if len(y) != len(state) {
			t.Fatalf("%s: MulVec length %d, counter array length %d", name, len(y), len(state))
		}
		for i := range y {
			if math.Abs(y[i]-state[i]) > 1e-12 {
				t.Fatalf("%s: row %d: MulVec %v != counters %v", name, i, y[i], state[i])
			}
		}
	}

	check("countmin", func() ([]float64, []float64) {
		cm := sketch.NewCountMin(xrand.New(11), 128, 5)
		for j, v := range x {
			if v != 0 {
				cm.Update(uint64(j), v)
			}
		}
		m, err := NewCountMinMeasurement(cm, n)
		if err != nil {
			t.Fatal(err)
		}
		return m.MulVec(x), m.Measurements()
	})
	check("countsketch", func() ([]float64, []float64) {
		csk := sketch.NewCountSketch(xrand.New(11), 128, 5)
		for j, v := range x {
			if v != 0 {
				csk.Update(uint64(j), v)
			}
		}
		m, err := NewCountSketchMeasurement(csk, n)
		if err != nil {
			t.Fatal(err)
		}
		return m.MulVec(x), m.Measurements()
	})
}

// TestMeasurementTransposeAdjoint checks <Ax, y> == <x, A^T y> on fixed
// vectors, validating TMulVec against MulVec.
func TestMeasurementTransposeAdjoint(t *testing.T) {
	const n = 512
	cm := sketch.NewCountMin(xrand.New(3), 64, 4)
	m, err := NewCountMinMeasurement(cm, n)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	for j := range x {
		x[j] = float64((j*37)%11) - 5
	}
	rows, _ := m.Dims()
	y := make([]float64, rows)
	for i := range y {
		y[i] = float64((i*13)%7) - 3
	}
	lhs := dot(m.MulVec(x), y)
	rhs := dot(x, m.TMulVec(y))
	if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint identity violated: <Ax,y>=%v, <x,A^T y>=%v", lhs, rhs)
	}
}

// TestMeasurementRecoversPlantedSupport runs a full cs recoverer over a
// tracker snapshot: ingest a k-sparse stream, recover it from the live
// counters through the adapter, and require the exact planted support.
func TestMeasurementRecoversPlantedSupport(t *testing.T) {
	const (
		n = 4096
		k = 8
	)
	tracker := sketch.NewHeavyHitterTracker(xrand.New(21), 2048, 5, 32)
	want := map[uint64]float64{5: 900, 77: 800, 1023: 700, 2048: 600, 3000: 500, 3500: 400, 4000: 300, 4095: 200}
	for item, count := range want {
		tracker.Update(item, count)
	}
	m, err := NewTrackerMeasurement(tracker, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []cs.Recoverer{cs.SketchDecode{}, cs.SMP{Iters: 20}, cs.IHT{Iters: 50}} {
		xhat, err := r.Recover(m, m.Measurements(), k)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		got := 0
		for j, v := range xhat {
			if v == 0 {
				continue
			}
			got++
			wantV, ok := want[uint64(j)]
			if !ok {
				t.Fatalf("%s: recovered spurious coordinate %d = %v", r.Name(), j, v)
			}
			if math.Abs(v-wantV) > 1e-9 {
				t.Fatalf("%s: coordinate %d = %v, want %v", r.Name(), j, v, wantV)
			}
		}
		if got != k {
			t.Fatalf("%s: recovered %d coordinates, want %d", r.Name(), got, k)
		}
	}
}

// TestMeasurementRejectsNonLinearSketches: conservative-update counters are
// not y = A·x, so the constructor must refuse them.
func TestMeasurementRejectsNonLinearSketches(t *testing.T) {
	cm := sketch.NewCountMin(xrand.New(1), 64, 4, sketch.WithConservativeUpdate())
	if _, err := NewCountMinMeasurement(cm, 100); err == nil {
		t.Fatal("expected conservative-update CountMin to be rejected")
	}
	if _, err := NewCountMinMeasurement(sketch.NewCountMin(xrand.New(1), 64, 4), 0); err == nil {
		t.Fatal("expected non-positive universe to be rejected")
	}
}

func sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
