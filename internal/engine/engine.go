package engine

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/sketch"
)

// Update is a single stream record: an item identifier and a signed count
// delta. It mirrors stream.Update but carries a float64 delta, matching the
// sketch Update signatures.
type Update struct {
	Item  uint64
	Delta float64
}

// Config controls the shape of an Engine.
type Config struct {
	// Workers is the number of shard goroutines. Zero means GOMAXPROCS.
	Workers int
	// BatchSize is the number of updates buffered before a batch is handed to
	// a worker. Zero means 1024. Larger batches amortize channel overhead;
	// smaller ones reduce snapshot latency.
	BatchSize int
	// QueueDepth is the per-shard channel buffer measured in batches. Zero
	// means 4. It bounds how far the producer can run ahead of the workers.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1024
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4
	}
	return c
}

// ErrClosed is returned by operations on an engine after Close.
var ErrClosed = errors.New("engine: closed")

// ErrNoCodec is returned by SnapshotEncoded and MergeEncoded on engines
// built with New directly: only the convenience constructors know how to
// serialize their concrete replica type. Register one with WithCodec.
var ErrNoCodec = errors.New("engine: replica type has no binary codec registered")

// op is a shard channel message: either a batch of updates or a snapshot
// barrier token (ready/resume non-nil).
type op struct {
	batch  []Update
	ready  chan<- struct{} // worker sends when all earlier batches are applied
	resume <-chan struct{} // worker blocks here until the merge has read its replica
}

// shard is one worker goroutine and its private sketch replica.
type shard[S any] struct {
	ch      chan op
	replica S
	done    chan struct{}
}

// Engine fans a stream of updates across worker goroutines, each owning a
// private sketch replica built from identical hash seeds, and merges the
// replicas exactly on Snapshot or Close.
//
// The producer side (Update, UpdateBatch, Flush, Snapshot, Close) must be
// called from a single goroutine; the shards run concurrently underneath.
type Engine[S any] struct {
	cfg    Config
	shards []*shard[S]

	newReplica func() S
	apply      func(S, []Update)
	merge      func(dst, src S) error

	// encode/decode translate a replica to and from the versioned binary
	// sketch encoding; nil unless registered via WithCodec.
	encode func(S) ([]byte, error)
	decode func([]byte) (S, error)

	cur    []Update      // batch being filled by the producer
	next   int           // round-robin cursor over shards
	free   chan []Update // recycled batch slices
	closed bool
}

// New creates an engine over an arbitrary replica type. newReplica must
// return an empty replica sharing hash functions with every other replica it
// returns (for the sketch types, a closure over prototype.Clone()); apply
// folds a batch of updates into a replica; merge adds src into dst.
func New[S any](cfg Config, newReplica func() S, apply func(S, []Update), merge func(dst, src S) error) *Engine[S] {
	cfg = cfg.withDefaults()
	e := &Engine[S]{
		cfg:        cfg,
		shards:     make([]*shard[S], cfg.Workers),
		newReplica: newReplica,
		apply:      apply,
		merge:      merge,
		cur:        make([]Update, 0, cfg.BatchSize),
		free:       make(chan []Update, cfg.Workers*cfg.QueueDepth+1),
	}
	for i := range e.shards {
		sh := &shard[S]{
			ch:      make(chan op, cfg.QueueDepth),
			replica: newReplica(),
			done:    make(chan struct{}),
		}
		e.shards[i] = sh
		go e.run(sh)
	}
	return e
}

// run is the worker loop: apply batches in arrival order, honor barriers.
func (e *Engine[S]) run(sh *shard[S]) {
	defer close(sh.done)
	for o := range sh.ch {
		if o.ready != nil {
			o.ready <- struct{}{}
			<-o.resume
			continue
		}
		e.apply(sh.replica, o.batch)
		// Recycle the slice if the free list has room; drop it otherwise.
		select {
		case e.free <- o.batch[:0]:
		default:
		}
	}
}

// Update appends one record to the current batch, dispatching the batch to a
// shard when it reaches BatchSize.
func (e *Engine[S]) Update(item uint64, delta float64) {
	if e.closed {
		panic("engine: Update after Close")
	}
	e.cur = append(e.cur, Update{Item: item, Delta: delta})
	if len(e.cur) >= e.cfg.BatchSize {
		e.dispatch()
	}
}

// UpdateBatch appends a slice of records (the slice is copied into internal
// batches; the caller keeps ownership).
func (e *Engine[S]) UpdateBatch(updates []Update) {
	for _, u := range updates {
		e.Update(u.Item, u.Delta)
	}
}

// dispatch hands the current batch to the next shard round-robin and starts
// a fresh batch from the free list.
func (e *Engine[S]) dispatch() {
	if len(e.cur) == 0 {
		return
	}
	e.shards[e.next].ch <- op{batch: e.cur}
	e.next = (e.next + 1) % len(e.shards)
	select {
	case b := <-e.free:
		e.cur = b
	default:
		e.cur = make([]Update, 0, e.cfg.BatchSize)
	}
}

// Flush dispatches any partially filled batch so it becomes visible to the
// next Snapshot.
func (e *Engine[S]) Flush() {
	if e.closed {
		return
	}
	e.dispatch()
}

// Workers returns the number of shards.
func (e *Engine[S]) Workers() int { return len(e.shards) }

// barrier enqueues a sync token on every shard, waits until all workers have
// drained their queues, runs fn, then releases the workers.
func (e *Engine[S]) barrier(fn func() error) error {
	ready := make(chan struct{}, len(e.shards))
	resume := make(chan struct{})
	for _, sh := range e.shards {
		sh.ch <- op{ready: ready, resume: resume}
	}
	for range e.shards {
		<-ready
	}
	err := fn()
	close(resume)
	return err
}

// Snapshot flushes pending updates and returns a fresh replica holding the
// exact merge of every shard — the sketch a single-threaded run over the
// whole stream so far would have produced. Ingestion resumes afterwards.
func (e *Engine[S]) Snapshot() (S, error) {
	var zero S
	if e.closed {
		return zero, ErrClosed
	}
	e.Flush()
	out := e.newReplica()
	err := e.barrier(func() error {
		for i, sh := range e.shards {
			if mergeErr := e.merge(out, sh.replica); mergeErr != nil {
				return fmt.Errorf("engine: merging shard %d: %w", i, mergeErr)
			}
		}
		return nil
	})
	if err != nil {
		return zero, err
	}
	return out, nil
}

// WithCodec registers encode/decode functions translating the replica type
// to and from its binary sketch encoding, enabling SnapshotEncoded and
// MergeEncoded. The convenience constructors register codecs automatically;
// callers of the generic New can supply their own. Returns the engine for
// chaining.
func (e *Engine[S]) WithCodec(encode func(S) ([]byte, error), decode func([]byte) (S, error)) *Engine[S] {
	e.encode = encode
	e.decode = decode
	return e
}

// Absorb folds an externally built replica — a peer process's deserialized
// snapshot, a recovered on-disk shard — into the engine without stopping
// ingestion. Linearity makes this exact: absorbing src is indistinguishable
// from having ingested src's stream through the engine itself. src must
// share hash functions with the engine's replicas; the merge function is
// responsible for rejecting incompatible sketches. Like the other
// producer-side methods, Absorb must be called from the producer goroutine.
func (e *Engine[S]) Absorb(src S) error {
	if e.closed {
		return ErrClosed
	}
	e.Flush()
	return e.barrier(func() error {
		if err := e.merge(e.shards[0].replica, src); err != nil {
			return fmt.Errorf("engine: absorbing replica: %w", err)
		}
		return nil
	})
}

// MergeEncoded decodes a serialized replica (for example the bytes of a
// peer's snapshot) and folds it in via Absorb. It requires a codec
// (ErrNoCodec otherwise) and returns the decoder's error verbatim on
// malformed or incompatible input, leaving the engine state untouched.
func (e *Engine[S]) MergeEncoded(data []byte) error {
	if e.decode == nil {
		return ErrNoCodec
	}
	src, err := e.decode(data)
	if err != nil {
		return err
	}
	return e.Absorb(src)
}

// SnapshotEncoded returns the exact merged snapshot (see Snapshot) in the
// replica type's versioned binary encoding, ready to ship to a peer or to
// disk. It requires a codec (ErrNoCodec otherwise).
func (e *Engine[S]) SnapshotEncoded() ([]byte, error) {
	if e.encode == nil {
		return nil, ErrNoCodec
	}
	snap, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	return e.encode(snap)
}

// Close flushes pending updates, stops the workers and returns the final
// exact merge. The engine cannot be used afterwards.
func (e *Engine[S]) Close() (S, error) {
	var zero S
	if e.closed {
		return zero, ErrClosed
	}
	e.dispatch()
	e.closed = true
	for _, sh := range e.shards {
		close(sh.ch)
	}
	for _, sh := range e.shards {
		<-sh.done
	}
	out := e.newReplica()
	for i, sh := range e.shards {
		if err := e.merge(out, sh.replica); err != nil {
			return zero, fmt.Errorf("engine: merging shard %d: %w", i, err)
		}
	}
	return out, nil
}

// Convenience constructors for the concrete sketch types ---------------------

// NewCountMin builds an engine whose shards are clones of proto (sharing its
// hash functions). proto itself is never written to. proto must not use
// conservative update: conservative sketches are not linear, so sharding
// them cannot be exact and their Merge always fails — better to refuse here
// than after the whole stream has been ingested.
func NewCountMin(cfg Config, proto *sketch.CountMin) *Engine[*sketch.CountMin] {
	if proto.Conservative() {
		panic("engine: conservative-update CountMin is not linear and cannot be sharded")
	}
	return New(cfg,
		func() *sketch.CountMin { return proto.Clone() },
		func(cm *sketch.CountMin, batch []Update) {
			for _, u := range batch {
				cm.Update(u.Item, u.Delta)
			}
		},
		func(dst, src *sketch.CountMin) error { return dst.Merge(src) },
	).WithCodec(
		func(cm *sketch.CountMin) ([]byte, error) { return cm.MarshalBinary() },
		func(data []byte) (*sketch.CountMin, error) {
			var cm sketch.CountMin
			if err := cm.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			if err := proto.CompatibleWith(&cm); err != nil {
				return nil, err
			}
			return &cm, nil
		},
	)
}

// NewCountSketch builds an engine whose shards are clones of proto (sharing
// its hash and sign functions). proto itself is never written to.
func NewCountSketch(cfg Config, proto *sketch.CountSketch) *Engine[*sketch.CountSketch] {
	return New(cfg,
		func() *sketch.CountSketch { return proto.Clone() },
		func(cs *sketch.CountSketch, batch []Update) {
			for _, u := range batch {
				cs.Update(u.Item, u.Delta)
			}
		},
		func(dst, src *sketch.CountSketch) error { return dst.Merge(src) },
	).WithCodec(
		func(cs *sketch.CountSketch) ([]byte, error) { return cs.MarshalBinary() },
		func(data []byte) (*sketch.CountSketch, error) {
			var cs sketch.CountSketch
			if err := cs.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			if err := proto.CompatibleWith(&cs); err != nil {
				return nil, err
			}
			return &cs, nil
		},
	)
}

// NewTracker builds an engine whose shards are clones of a heavy-hitter
// tracker prototype. The Count-Min counters merge exactly; the candidate
// sets merge as a union re-scored against the merged counters.
func NewTracker(cfg Config, proto *sketch.HeavyHitterTracker) *Engine[*sketch.HeavyHitterTracker] {
	return New(cfg,
		func() *sketch.HeavyHitterTracker { return proto.Clone() },
		func(t *sketch.HeavyHitterTracker, batch []Update) {
			for _, u := range batch {
				t.Update(u.Item, u.Delta)
			}
		},
		func(dst, src *sketch.HeavyHitterTracker) error { return dst.Merge(src) },
	).WithCodec(
		func(t *sketch.HeavyHitterTracker) ([]byte, error) { return t.MarshalBinary() },
		func(data []byte) (*sketch.HeavyHitterTracker, error) {
			// A peer may ship either a full tracker snapshot or a bare
			// Count-Min (counters without candidate metadata); both merge
			// exactly at the counter level.
			kind, err := sketch.PeekKind(data)
			if err != nil {
				return nil, err
			}
			switch kind {
			case sketch.KindTracker:
				var t sketch.HeavyHitterTracker
				if err := t.UnmarshalBinary(data); err != nil {
					return nil, err
				}
				if err := proto.CompatibleWith(&t); err != nil {
					return nil, err
				}
				return &t, nil
			case sketch.KindCountMin:
				var cm sketch.CountMin
				if err := cm.UnmarshalBinary(data); err != nil {
					return nil, err
				}
				t := proto.Clone()
				if err := t.AbsorbCountMin(&cm); err != nil {
					return nil, err
				}
				return t, nil
			default:
				return nil, fmt.Errorf("engine: cannot merge a %v encoding into a heavy-hitter tracker", kind)
			}
		},
	)
}
