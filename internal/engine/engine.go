package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/sketch"
)

// Update is a single stream record: an item identifier and a signed count
// delta. It mirrors stream.Update but carries a float64 delta, matching the
// sketch Update signatures.
type Update struct {
	Item  uint64
	Delta float64
}

// Config controls the shape of an Engine.
type Config struct {
	// Workers is the number of shard goroutines. Zero means GOMAXPROCS.
	Workers int
	// BatchSize is the number of updates a producer handle buffers before a
	// batch is handed to a worker. Zero means 1024. Larger batches amortize
	// channel overhead; smaller ones reduce snapshot latency.
	BatchSize int
	// QueueDepth is the per-shard channel buffer measured in batches. Zero
	// means 4. It bounds how far the producers can run ahead of the workers.
	QueueDepth int
	// Partition selects key-partitioned sharding: the workers own column
	// slices of ONE logical sketch (memory ~1x) instead of full replicas
	// (memory ~workers x), and snapshots concatenate instead of merge; see
	// partition.go. Reads are bit-identical between the modes for the same
	// stream and seed. Only the column-partitionable families support it
	// (CountMin without conservative update, CountSketch, Dyadic, the
	// heavy-hitter tracker); the generic New refuses it.
	Partition bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1024
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4
	}
	return c
}

// ErrClosed is returned by operations on an engine after Close.
var ErrClosed = errors.New("engine: closed")

// ErrNoCodec is returned by SnapshotEncoded and MergeEncoded on engines
// built with New directly: only the convenience constructors know how to
// serialize their concrete replica type. Register one with WithCodec.
var ErrNoCodec = errors.New("engine: replica type has no binary codec registered")

// ErrNoDelta is returned by DeltaSnapshot on engines built with New
// directly and no subtraction registered via WithDelta. The convenience
// constructors register the replica type's Sub automatically.
var ErrNoDelta = errors.New("engine: replica type has no subtraction registered")

// batch is a pair of parallel key/delta columns — the unit of work handed to
// a shard. Columns, not records: the worker passes them straight to the
// replica's UpdateBatch, which drives the vectorizable hash kernels, so an
// update crosses the engine without ever being boxed into a per-item struct.
type batch struct {
	items  []uint64
	deltas []float64
}

// op is a shard channel message: a batch of updates (replica mode), a
// scatter batch (partition mode), or a snapshot barrier token (ready/resume
// non-nil).
type op struct {
	b      batch
	cb     colBatch
	ready  chan<- struct{} // worker sends when all earlier batches are applied
	resume <-chan struct{} // worker blocks here until the merge has read its replica
}

// shard is one worker goroutine and its private sketch replica.
type shard[S any] struct {
	ch      chan op
	replica S
	done    chan struct{}
}

// Engine fans a stream of updates across worker goroutines, each owning a
// private sketch replica built from identical hash seeds, and merges the
// replicas exactly on Snapshot or Close.
//
// Ingestion is multi-producer: any number of goroutines may feed the engine
// concurrently, each through its own handle from Producer (the handle owns a
// private batch buffer, so the hot path shares no locks). Snapshot, Absorb
// and the encoded variants are safe to call while producers are ingesting;
// they cut a consistent barrier across the shard queues. The engine-level
// Update/UpdateBatch/UpdateColumns/Flush methods are a convenience for single-goroutine
// callers — they ride the engine's own producer handle and must not be used
// concurrently (with each other or with Snapshot/Close); concurrent
// ingesters take handles instead.
type Engine[S any] struct {
	cfg    Config
	shards []*shard[S]

	newReplica func() S
	apply      func(S, []uint64, []float64)
	merge      func(dst, src S) error
	sub        func(dst, src S) error // nil unless registered via WithDelta

	// encode/decode translate a replica to and from the versioned binary
	// sketch encoding; nil unless registered via WithCodec.
	encode func(S) ([]byte, error)
	decode func([]byte) (S, error)

	free chan batch // recycled column pairs, shared by all producers

	// mu serializes the engine's structural transitions — producer
	// registration, barriers (Snapshot/Absorb) and the Close handshake. The
	// ingestion hot path never touches it: producers talk straight to the
	// shard channels.
	mu        sync.Mutex
	closed    bool
	producers sync.WaitGroup
	stagger   atomic.Int64 // spreads new producers' first shard across the ring

	// dispatchMu makes a replica-mode dispatch (shard send + write-generation
	// bump) atomic with respect to barriers, exactly as partition.dispatchMu
	// does for multi-shard dispatches: producers hold the read side around
	// send+bump, a barrier holds the write side while enqueueing its tokens
	// and capturing cutGen, so the generation counts exactly the batches on
	// the snapshot's side of every cut. Producers only ever share it read-read
	// on the hot path.
	dispatchMu sync.RWMutex
	// writeGen counts dispatched batches (and absorbed replicas): it is the
	// engine's write generation. A published read epoch whose gen equals
	// writeGen is current; any later dispatch invalidates it by bumping.
	writeGen atomic.Uint64
	// cutGen is writeGen captured at the last barrier cut — the generation of
	// the state a snapshot taken at that barrier observes. Guarded by e.mu
	// (only barrier writes it, only barrier callers read it).
	cutGen uint64

	// Epoch-pinned read cache (see read.go): readers at the current gen share
	// one immutable snapshot lock-free and never take the barrier.
	epoch       atomic.Pointer[readEpoch[S]]
	epochHits   atomic.Int64
	epochMisses atomic.Int64
	readClosed  atomic.Bool // fences the lock-free read path after Close
	estScratch  sync.Pool   // *sketch.EstimateScratch, shared by EstimateBatch readers

	// part holds the key-partitioned mode's state (column shards, routing,
	// dispatch lock); nil in replica mode. See partition.go.
	part *partition[S]

	def *Producer[S] // backs the engine-level convenience ingestion methods
}

// New creates an engine over an arbitrary replica type. newReplica must
// return an empty replica sharing hash functions with every other replica it
// returns (for the sketch types, a closure over prototype.Clone()); apply
// folds a batch of updates — parallel key/delta columns — into a replica;
// merge adds src into dst.
func New[S any](cfg Config, newReplica func() S, apply func(S, []uint64, []float64), merge func(dst, src S) error) *Engine[S] {
	cfg = cfg.withDefaults()
	if cfg.Partition {
		panic("engine: partition mode needs a column-partitionable family; build with NewLinear or a family constructor")
	}
	e := &Engine[S]{
		cfg:        cfg,
		shards:     make([]*shard[S], cfg.Workers),
		newReplica: newReplica,
		apply:      apply,
		merge:      merge,
		free:       make(chan batch, cfg.Workers*cfg.QueueDepth+1),
	}
	for i := range e.shards {
		sh := &shard[S]{
			ch:      make(chan op, cfg.QueueDepth),
			replica: newReplica(),
			done:    make(chan struct{}),
		}
		e.shards[i] = sh
		go e.run(sh)
	}
	e.def = e.Producer()
	return e
}

// run is the worker loop: apply batches in arrival order, honor barriers.
func (e *Engine[S]) run(sh *shard[S]) {
	defer close(sh.done)
	for o := range sh.ch {
		if o.ready != nil {
			o.ready <- struct{}{}
			<-o.resume
			continue
		}
		e.apply(sh.replica, o.b.items, o.b.deltas)
		// Recycle the columns if the free list has room; drop them otherwise.
		select {
		case e.free <- batch{items: o.b.items[:0], deltas: o.b.deltas[:0]}:
		default:
		}
	}
}

// Producer ------------------------------------------------------------------

// Producer is an ingestion handle for one goroutine. It owns a private batch
// buffer and a private round-robin cursor over the shard queues, so N
// producers ingest concurrently without sharing any mutable state: the only
// synchronization on the hot path is the (per-batch, amortized) shard channel
// send. Linearity makes this exact — whichever producer an update arrives
// through and whichever shard its batch lands on, the barrier merge equals
// the single-threaded sketch counter for counter.
//
// A handle is not itself goroutine-safe: each concurrent ingester takes its
// own via Engine.Producer. Every handle must be Closed (flushing its buffer)
// before Engine.Close can complete.
//
// The handle buffers key/delta columns, not records: Update appends to both
// columns, UpdateColumns bulk-copies caller columns, and a full buffer is
// handed to a shard whole, where it flows unchanged into the replica's
// batched update path.
type Producer[S any] struct {
	e      *Engine[S]
	cur    batch
	next   int
	closed bool
	// sc is the handle's private column router in partition mode (nil in
	// replica mode): hash scratch plus per-shard scatter columns, so routing
	// shares no mutable state between producers.
	sc *sketch.ColumnScatter
}

// Producer registers a new ingestion handle. It panics after Engine.Close —
// handing out handles whose flushes have nowhere to land is a programming
// error, like Update after Close.
func (e *Engine[S]) Producer() *Producer[S] {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		panic("engine: Producer after Close")
	}
	e.producers.Add(1)
	p := &Producer[S]{
		e: e,
		cur: batch{
			items:  make([]uint64, 0, e.cfg.BatchSize),
			deltas: make([]float64, 0, e.cfg.BatchSize),
		},
	}
	if e.part != nil {
		p.sc = sketch.NewColumnScatter(e.part.shape, len(e.part.shards))
	} else {
		p.next = int(e.stagger.Add(1)-1) % len(e.shards)
	}
	return p
}

// Update appends one record to the handle's columns, dispatching the batch
// to a shard when it reaches BatchSize.
func (p *Producer[S]) Update(item uint64, delta float64) {
	if p.closed {
		panic("engine: producer Update after Close")
	}
	p.cur.items = append(p.cur.items, item)
	p.cur.deltas = append(p.cur.deltas, delta)
	if len(p.cur.items) >= p.e.cfg.BatchSize {
		p.dispatch()
	}
}

// UpdateColumns appends parallel key/delta columns — the engine's native
// batch shape, and what the server's wire decoder produces. The columns are
// bulk-copied into the handle's buffer (the caller keeps ownership and may
// reuse them immediately), dispatching to a shard each time the buffer
// fills, so a large caller batch moves through memcpy-speed copies instead
// of a per-item loop.
func (p *Producer[S]) UpdateColumns(items []uint64, deltas []float64) {
	if p.closed {
		panic("engine: producer UpdateColumns after Close")
	}
	if len(items) != len(deltas) {
		panic(fmt.Sprintf("engine: UpdateColumns length mismatch (%d items, %d deltas)", len(items), len(deltas)))
	}
	for len(items) > 0 {
		n := p.e.cfg.BatchSize - len(p.cur.items)
		if n > len(items) {
			n = len(items)
		}
		p.cur.items = append(p.cur.items, items[:n]...)
		p.cur.deltas = append(p.cur.deltas, deltas[:n]...)
		items, deltas = items[n:], deltas[n:]
		if len(p.cur.items) >= p.e.cfg.BatchSize {
			p.dispatch()
		}
	}
}

// UpdateBatch appends a slice of records (the slice is copied into internal
// column batches; the caller keeps ownership). Callers that already hold
// columns should prefer UpdateColumns, which skips the per-record unpacking.
func (p *Producer[S]) UpdateBatch(updates []Update) {
	if p.closed {
		panic("engine: producer UpdateBatch after Close")
	}
	for len(updates) > 0 {
		n := p.e.cfg.BatchSize - len(p.cur.items)
		if n > len(updates) {
			n = len(updates)
		}
		for _, u := range updates[:n] {
			p.cur.items = append(p.cur.items, u.Item)
			p.cur.deltas = append(p.cur.deltas, u.Delta)
		}
		updates = updates[n:]
		if len(p.cur.items) >= p.e.cfg.BatchSize {
			p.dispatch()
		}
	}
}

// dispatch hands the current batch to the handle's next shard round-robin
// and starts a fresh column pair from the shared free list. In partition
// mode it routes the batch by column ownership instead (see partDispatch).
func (p *Producer[S]) dispatch() {
	if len(p.cur.items) == 0 {
		return
	}
	if p.e.part != nil {
		p.partDispatch()
		return
	}
	e := p.e
	// Send and generation bump are one atomic unit with respect to barriers
	// (read side here, write side in barrier), so a cut can never count a
	// batch it excludes or exclude one it counts. Workers drain the channels
	// without touching dispatchMu, so holding the read side across a blocking
	// send cannot deadlock a waiting barrier.
	e.dispatchMu.RLock()
	e.shards[p.next].ch <- op{b: p.cur}
	e.writeGen.Add(1)
	e.dispatchMu.RUnlock()
	p.next = (p.next + 1) % len(e.shards)
	select {
	case b := <-e.free:
		p.cur = b
	default:
		p.cur = batch{
			items:  make([]uint64, 0, e.cfg.BatchSize),
			deltas: make([]float64, 0, e.cfg.BatchSize),
		}
	}
}

// Flush dispatches any partially filled batch so it becomes visible to the
// next Snapshot. On a closed handle it is a no-op.
func (p *Producer[S]) Flush() {
	if p.closed {
		return
	}
	p.dispatch()
}

// Close flushes the handle's buffer and retires it. Closing twice is a
// no-op. Engine.Close blocks until every handle has been Closed, which is
// what guarantees the final merge sees every produced update.
func (p *Producer[S]) Close() {
	if p.closed {
		return
	}
	p.dispatch()
	p.closed = true
	p.e.producers.Done()
}

// Engine-level convenience ingestion ----------------------------------------

// Update appends one record through the engine's own producer handle. It is
// a convenience for single-goroutine callers; concurrent ingesters use
// Producer handles.
func (e *Engine[S]) Update(item uint64, delta float64) {
	if e.def.closed {
		panic("engine: Update after Close")
	}
	e.def.Update(item, delta)
}

// UpdateBatch appends a slice of records through the engine's own producer
// handle (see Update for the concurrency contract).
func (e *Engine[S]) UpdateBatch(updates []Update) {
	e.def.UpdateBatch(updates)
}

// UpdateColumns appends parallel key/delta columns through the engine's own
// producer handle (see Update for the concurrency contract).
func (e *Engine[S]) UpdateColumns(items []uint64, deltas []float64) {
	e.def.UpdateColumns(items, deltas)
}

// Flush dispatches the engine handle's partially filled batch so it becomes
// visible to the next Snapshot. Producer handles flush themselves.
func (e *Engine[S]) Flush() {
	e.def.Flush()
}

// Workers returns the number of shards.
func (e *Engine[S]) Workers() int {
	if e.part != nil {
		return len(e.part.shards)
	}
	return len(e.shards)
}

// Mode reports the sharding mode: "replica" (each worker owns a full clone)
// or "partition" (each worker owns a column slice of one logical sketch).
func (e *Engine[S]) Mode() string {
	if e.part != nil {
		return "partition"
	}
	return "replica"
}

// CounterWords returns the number of resident sketch counters across all
// shards — workers x sketch size in replica mode, exactly the sketch size in
// partition mode (the memory claim E16 measures). Engines over types without
// a known size report 0.
func (e *Engine[S]) CounterWords() int {
	if e.part != nil {
		n := 0
		for _, sh := range e.part.shards {
			n += len(sh.counts)
		}
		return n
	}
	per := 0
	switch s := any(e.shards[0].replica).(type) {
	case interface{ Size() int }:
		per = s.Size()
	case interface{ SizeCounters() int }:
		per = s.SizeCounters()
	case interface{ SpaceCounters() int }:
		per = s.SpaceCounters()
	}
	return per * len(e.shards)
}

// barrier enqueues a sync token on every shard, waits until all workers have
// drained their queues, runs fn, then releases the workers. Callers hold
// e.mu, which serializes concurrent barriers; producers keep enqueueing
// batches while a barrier is in flight (they land after the token, so the
// cut stays consistent). In partition mode the tokens are enqueued under the
// dispatch write lock, so a multi-shard dispatch can never straddle the cut.
func (e *Engine[S]) barrier(fn func() error) error {
	n := e.Workers()
	ready := make(chan struct{}, n)
	resume := make(chan struct{})
	if e.part != nil {
		e.part.dispatchMu.Lock()
		for _, sh := range e.part.shards {
			sh.ch <- op{ready: ready, resume: resume}
		}
		e.cutGen = e.writeGen.Load()
		e.part.dispatchMu.Unlock()
	} else {
		e.dispatchMu.Lock()
		for _, sh := range e.shards {
			sh.ch <- op{ready: ready, resume: resume}
		}
		e.cutGen = e.writeGen.Load()
		e.dispatchMu.Unlock()
	}
	for i := 0; i < n; i++ {
		<-ready
	}
	err := fn()
	close(resume)
	return err
}

// Snapshot returns a fresh replica holding the exact merge of every shard —
// the sketch a single-threaded run over every update flushed so far would
// have produced. It is safe to call while producers are ingesting: updates
// a producer has flushed before the call are included, updates still
// buffered in handles are not. Ingestion resumes afterwards.
func (e *Engine[S]) Snapshot() (S, error) {
	var zero S
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return zero, ErrClosed
	}
	return e.snapshotLocked()
}

// snapshotLocked cuts a barrier and merges (or concatenates) the shards into
// a fresh replica. Caller holds e.mu and has checked closed. After it
// returns, e.cutGen is the snapshot's write generation.
func (e *Engine[S]) snapshotLocked() (S, error) {
	var zero S
	e.def.Flush()
	if e.part != nil {
		return e.partSnapshot()
	}
	out := e.newReplica()
	err := e.barrier(func() error {
		for i, sh := range e.shards {
			if mergeErr := e.merge(out, sh.replica); mergeErr != nil {
				return fmt.Errorf("engine: merging shard %d: %w", i, mergeErr)
			}
		}
		return nil
	})
	if err != nil {
		return zero, err
	}
	return out, nil
}

// WithCodec registers encode/decode functions translating the replica type
// to and from its binary sketch encoding, enabling SnapshotEncoded and
// MergeEncoded. The convenience constructors register codecs automatically;
// callers of the generic New can supply their own. Returns the engine for
// chaining.
func (e *Engine[S]) WithCodec(encode func(S) ([]byte, error), decode func([]byte) (S, error)) *Engine[S] {
	e.encode = encode
	e.decode = decode
	return e
}

// WithDelta registers a subtraction function (dst -= src, counter-wise),
// enabling DeltaSnapshot. The convenience constructors register the replica
// type's Sub automatically. Returns the engine for chaining.
func (e *Engine[S]) WithDelta(sub func(dst, src S) error) *Engine[S] {
	e.sub = sub
	return e
}

// DeltaSnapshot returns the current exact snapshot (see Snapshot) together
// with its counter-wise difference from baseline: by linearity the delta is
// itself a valid sketch — of exactly the updates the engine has absorbed
// since baseline was cut — so it can be shipped to a peer that already
// holds baseline and folded in with an ordinary merge. baseline must be a
// replica sharing the engine's hash functions (an earlier DeltaSnapshot's
// snap, or an empty clone for "everything so far"); it is read, never
// written.
//
// The barrier stalls producers only for the merge of the shard replicas,
// exactly as Snapshot does; the subtraction runs after the workers have
// resumed, so retaining a baseline costs the hot path nothing. Callers that
// gossip on a timer keep the returned snap as the next tick's baseline —
// the delta then telescopes: baseline + delta equals snap counter for
// counter (bit for bit whenever counter sums are exact in float64, e.g.
// integer-valued streams).
func (e *Engine[S]) DeltaSnapshot(baseline S) (snap, delta S, err error) {
	var zero S
	if e.sub == nil {
		return zero, zero, ErrNoDelta
	}
	snap, err = e.Snapshot()
	if err != nil {
		return zero, zero, err
	}
	delta = e.newReplica()
	if err = e.merge(delta, snap); err != nil {
		return zero, zero, fmt.Errorf("engine: copying snapshot for delta: %w", err)
	}
	if err = e.sub(delta, baseline); err != nil {
		return zero, zero, fmt.Errorf("engine: subtracting delta baseline: %w", err)
	}
	return snap, delta, nil
}

// DecodeReplica decodes a serialized replica with the engine's registered
// codec — the same decoder MergeEncoded trusts as the gatekeeper for
// incompatible sketches — without folding it in. Transports use it when
// they need the decoded replica itself (to account for it separately, then
// Absorb it). It requires a codec (ErrNoCodec otherwise).
func (e *Engine[S]) DecodeReplica(data []byte) (S, error) {
	var zero S
	if e.decode == nil {
		return zero, ErrNoCodec
	}
	return e.decode(data)
}

// Absorb folds an externally built replica — a peer process's deserialized
// snapshot, a recovered on-disk shard — into the engine without stopping
// ingestion. Linearity makes this exact: absorbing src is indistinguishable
// from having ingested src's stream through the engine itself. src must
// share hash functions with the engine's replicas; the merge function is
// responsible for rejecting incompatible sketches. Like Snapshot, Absorb is
// safe to call while producers are ingesting.
func (e *Engine[S]) Absorb(src S) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.def.Flush()
	if e.part != nil {
		return e.partAbsorb(src)
	}
	return e.barrier(func() error {
		if err := e.merge(e.shards[0].replica, src); err != nil {
			return fmt.Errorf("engine: absorbing replica: %w", err)
		}
		// An absorb changes the readable state like a dispatch does: bump the
		// write generation (inside the barrier, so no reader can publish an
		// epoch that includes the absorbed mass under the old gen or vice
		// versa) to invalidate any pinned read epoch.
		e.writeGen.Add(1)
		return nil
	})
}

// AbsorbSub is Absorb with the sign flipped: it subtracts an externally
// built replica from the engine without stopping ingestion. Linearity makes
// the subtraction exact too — replication transports use it to retract mass
// they previously absorbed from a peer before re-absorbing that peer's
// authoritative full state, so a resynchronization never double-counts.
// It requires a subtraction registered via WithDelta (ErrNoDelta otherwise).
func (e *Engine[S]) AbsorbSub(src S) error {
	if e.sub == nil {
		return ErrNoDelta
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return ErrClosed
	}
	e.def.Flush()
	if e.part != nil {
		return e.partAbsorbSub(src)
	}
	return e.barrier(func() error {
		if err := e.sub(e.shards[0].replica, src); err != nil {
			return fmt.Errorf("engine: subtracting replica: %w", err)
		}
		// Same epoch discipline as Absorb: the readable state changed, so
		// bump the write generation inside the barrier.
		e.writeGen.Add(1)
		return nil
	})
}

// MergeEncoded decodes a serialized replica (for example the bytes of a
// peer's snapshot) and folds it in via Absorb. It requires a codec
// (ErrNoCodec otherwise) and returns the decoder's error verbatim on
// malformed or incompatible input, leaving the engine state untouched.
func (e *Engine[S]) MergeEncoded(data []byte) error {
	if e.decode == nil {
		return ErrNoCodec
	}
	src, err := e.decode(data)
	if err != nil {
		return err
	}
	return e.Absorb(src)
}

// SnapshotEncoded returns the exact merged snapshot (see Snapshot) in the
// replica type's versioned binary encoding, ready to ship to a peer or to
// disk. It requires a codec (ErrNoCodec otherwise).
func (e *Engine[S]) SnapshotEncoded() ([]byte, error) {
	if e.encode == nil {
		return nil, ErrNoCodec
	}
	snap, err := e.Snapshot()
	if err != nil {
		return nil, err
	}
	return e.encode(snap)
}

// Close flushes the engine's own handle, waits for every Producer handle to
// be Closed, stops the workers and returns the final exact merge. The engine
// cannot be used afterwards. Close blocks until all handles are Closed —
// their final flushes must land before the shard queues are torn down, which
// is what makes the returned sketch equal the single-threaded run over the
// producers' combined stream.
func (e *Engine[S]) Close() (S, error) {
	var zero S
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return zero, ErrClosed
	}
	e.closed = true
	e.readClosed.Store(true)
	e.mu.Unlock()

	e.def.Close()
	e.producers.Wait()
	if e.part != nil {
		return e.partClose()
	}
	for _, sh := range e.shards {
		close(sh.ch)
	}
	for _, sh := range e.shards {
		<-sh.done
	}
	out := e.newReplica()
	for i, sh := range e.shards {
		if err := e.merge(out, sh.replica); err != nil {
			return zero, fmt.Errorf("engine: merging shard %d: %w", i, err)
		}
	}
	return out, nil
}

// Sketch-family constructors -------------------------------------------------

// LinearSketch is the contract a sketch type must satisfy to ride the
// engine: batch-updatable (parallel key/delta columns — the shard workers
// hand whole batches to UpdateBatch, which is where the vectorizable hash
// kernels live), clonable (empty replica, same hash functions), mergeable
// and subtractable (exact counter addition and its inverse, which is what
// DeltaSnapshot ships between gossiping peers) and serializable (the
// versioned binary encoding).
// Every linear family in internal/sketch — CountMin, CountSketch, the
// heavy-hitter tracker, the dyadic hierarchy — satisfies it; NewLinear turns
// any of them, or a caller's own type, into an engine.
type LinearSketch[S any] interface {
	Update(item uint64, delta float64)
	UpdateBatch(items []uint64, deltas []float64)
	Clone() S
	Merge(src S) error
	Sub(src S) error
	MarshalBinary() ([]byte, error)
}

// NewLinear builds an engine whose shards are clones of proto (sharing its
// hash functions; proto itself is never written to), with the replica's own
// MarshalBinary as the snapshot encoder. decode reverses it: it must
// deserialize a replica and reject sketches incompatible with proto — the
// engine trusts it as the gatekeeper for MergeEncoded.
//
// With cfg.Partition set, the workers own column slices of one logical
// sketch instead of full clones; proto must then implement
// sketch.ColumnSketch (every linear family in internal/sketch does, except
// conservative-update CountMin), and every read stays bit-identical to
// replica mode for the same stream and seed.
func NewLinear[S LinearSketch[S]](cfg Config, proto S, decode func([]byte) (S, error)) *Engine[S] {
	cfg = cfg.withDefaults()
	var e *Engine[S]
	if cfg.Partition {
		e = newPartitioned(cfg, proto)
	} else {
		e = New(cfg,
			func() S { return proto.Clone() },
			func(s S, items []uint64, deltas []float64) { s.UpdateBatch(items, deltas) },
			func(dst, src S) error { return dst.Merge(src) },
		)
	}
	return e.WithCodec(
		func(s S) ([]byte, error) { return s.MarshalBinary() },
		decode,
	).WithDelta(
		func(dst, src S) error { return dst.Sub(src) },
	)
}

// NewCountMin builds an engine over Count-Min replicas. proto must not use
// conservative update: conservative sketches are not linear, so sharding
// them cannot be exact and their Merge always fails — better to refuse here
// than after the whole stream has been ingested.
func NewCountMin(cfg Config, proto *sketch.CountMin) *Engine[*sketch.CountMin] {
	if proto.Conservative() {
		panic("engine: conservative-update CountMin is not linear and cannot be sharded")
	}
	return NewLinear(cfg, proto, func(data []byte) (*sketch.CountMin, error) {
		var cm sketch.CountMin
		if err := cm.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		if err := proto.CompatibleWith(&cm); err != nil {
			return nil, err
		}
		return &cm, nil
	})
}

// NewCountSketch builds an engine over Count-Sketch replicas (sharing
// proto's hash and sign functions).
func NewCountSketch(cfg Config, proto *sketch.CountSketch) *Engine[*sketch.CountSketch] {
	return NewLinear(cfg, proto, func(data []byte) (*sketch.CountSketch, error) {
		var cs sketch.CountSketch
		if err := cs.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		if err := proto.CompatibleWith(&cs); err != nil {
			return nil, err
		}
		return &cs, nil
	})
}

// NewDyadic builds an engine over dyadic-hierarchy replicas: each level is a
// Count-Min, so the clone/merge law applies level-wise and the merged
// hierarchy answers range sums, quantiles and heavy-hitter descents exactly
// as a single-threaded run would.
func NewDyadic(cfg Config, proto *sketch.Dyadic) *Engine[*sketch.Dyadic] {
	return NewLinear(cfg, proto, func(data []byte) (*sketch.Dyadic, error) {
		var d sketch.Dyadic
		if err := d.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		if err := proto.CompatibleWith(&d); err != nil {
			return nil, err
		}
		return &d, nil
	})
}

// NewTracker builds an engine over heavy-hitter tracker replicas. The
// Count-Min counters merge exactly; the candidate sets merge as a union
// re-scored against the merged counters.
func NewTracker(cfg Config, proto *sketch.HeavyHitterTracker) *Engine[*sketch.HeavyHitterTracker] {
	return NewLinear(cfg, proto, func(data []byte) (*sketch.HeavyHitterTracker, error) {
		// A peer may ship either a full tracker snapshot or a bare
		// Count-Min (counters without candidate metadata); both merge
		// exactly at the counter level.
		kind, err := sketch.PeekKind(data)
		if err != nil {
			return nil, err
		}
		switch kind {
		case sketch.KindTracker:
			var t sketch.HeavyHitterTracker
			if err := t.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			if err := proto.CompatibleWith(&t); err != nil {
				return nil, err
			}
			return &t, nil
		case sketch.KindCountMin:
			var cm sketch.CountMin
			if err := cm.UnmarshalBinary(data); err != nil {
				return nil, err
			}
			t := proto.Clone()
			if err := t.AbsorbCountMin(&cm); err != nil {
				return nil, err
			}
			return t, nil
		default:
			return nil, fmt.Errorf("engine: cannot merge a %v encoding into a heavy-hitter tracker", kind)
		}
	})
}
