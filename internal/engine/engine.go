package engine

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/sketch"
)

// Update is a single stream record: an item identifier and a signed count
// delta. It mirrors stream.Update but carries a float64 delta, matching the
// sketch Update signatures.
type Update struct {
	Item  uint64
	Delta float64
}

// Config controls the shape of an Engine.
type Config struct {
	// Workers is the number of shard goroutines. Zero means GOMAXPROCS.
	Workers int
	// BatchSize is the number of updates buffered before a batch is handed to
	// a worker. Zero means 1024. Larger batches amortize channel overhead;
	// smaller ones reduce snapshot latency.
	BatchSize int
	// QueueDepth is the per-shard channel buffer measured in batches. Zero
	// means 4. It bounds how far the producer can run ahead of the workers.
	QueueDepth int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1024
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4
	}
	return c
}

// ErrClosed is returned by operations on an engine after Close.
var ErrClosed = errors.New("engine: closed")

// op is a shard channel message: either a batch of updates or a snapshot
// barrier token (ready/resume non-nil).
type op struct {
	batch  []Update
	ready  chan<- struct{} // worker sends when all earlier batches are applied
	resume <-chan struct{} // worker blocks here until the merge has read its replica
}

// shard is one worker goroutine and its private sketch replica.
type shard[S any] struct {
	ch      chan op
	replica S
	done    chan struct{}
}

// Engine fans a stream of updates across worker goroutines, each owning a
// private sketch replica built from identical hash seeds, and merges the
// replicas exactly on Snapshot or Close.
//
// The producer side (Update, UpdateBatch, Flush, Snapshot, Close) must be
// called from a single goroutine; the shards run concurrently underneath.
type Engine[S any] struct {
	cfg    Config
	shards []*shard[S]

	newReplica func() S
	apply      func(S, []Update)
	merge      func(dst, src S) error

	cur    []Update      // batch being filled by the producer
	next   int           // round-robin cursor over shards
	free   chan []Update // recycled batch slices
	closed bool
}

// New creates an engine over an arbitrary replica type. newReplica must
// return an empty replica sharing hash functions with every other replica it
// returns (for the sketch types, a closure over prototype.Clone()); apply
// folds a batch of updates into a replica; merge adds src into dst.
func New[S any](cfg Config, newReplica func() S, apply func(S, []Update), merge func(dst, src S) error) *Engine[S] {
	cfg = cfg.withDefaults()
	e := &Engine[S]{
		cfg:        cfg,
		shards:     make([]*shard[S], cfg.Workers),
		newReplica: newReplica,
		apply:      apply,
		merge:      merge,
		cur:        make([]Update, 0, cfg.BatchSize),
		free:       make(chan []Update, cfg.Workers*cfg.QueueDepth+1),
	}
	for i := range e.shards {
		sh := &shard[S]{
			ch:      make(chan op, cfg.QueueDepth),
			replica: newReplica(),
			done:    make(chan struct{}),
		}
		e.shards[i] = sh
		go e.run(sh)
	}
	return e
}

// run is the worker loop: apply batches in arrival order, honor barriers.
func (e *Engine[S]) run(sh *shard[S]) {
	defer close(sh.done)
	for o := range sh.ch {
		if o.ready != nil {
			o.ready <- struct{}{}
			<-o.resume
			continue
		}
		e.apply(sh.replica, o.batch)
		// Recycle the slice if the free list has room; drop it otherwise.
		select {
		case e.free <- o.batch[:0]:
		default:
		}
	}
}

// Update appends one record to the current batch, dispatching the batch to a
// shard when it reaches BatchSize.
func (e *Engine[S]) Update(item uint64, delta float64) {
	if e.closed {
		panic("engine: Update after Close")
	}
	e.cur = append(e.cur, Update{Item: item, Delta: delta})
	if len(e.cur) >= e.cfg.BatchSize {
		e.dispatch()
	}
}

// UpdateBatch appends a slice of records (the slice is copied into internal
// batches; the caller keeps ownership).
func (e *Engine[S]) UpdateBatch(updates []Update) {
	for _, u := range updates {
		e.Update(u.Item, u.Delta)
	}
}

// dispatch hands the current batch to the next shard round-robin and starts
// a fresh batch from the free list.
func (e *Engine[S]) dispatch() {
	if len(e.cur) == 0 {
		return
	}
	e.shards[e.next].ch <- op{batch: e.cur}
	e.next = (e.next + 1) % len(e.shards)
	select {
	case b := <-e.free:
		e.cur = b
	default:
		e.cur = make([]Update, 0, e.cfg.BatchSize)
	}
}

// Flush dispatches any partially filled batch so it becomes visible to the
// next Snapshot.
func (e *Engine[S]) Flush() {
	if e.closed {
		return
	}
	e.dispatch()
}

// Workers returns the number of shards.
func (e *Engine[S]) Workers() int { return len(e.shards) }

// barrier enqueues a sync token on every shard, waits until all workers have
// drained their queues, runs fn, then releases the workers.
func (e *Engine[S]) barrier(fn func() error) error {
	ready := make(chan struct{}, len(e.shards))
	resume := make(chan struct{})
	for _, sh := range e.shards {
		sh.ch <- op{ready: ready, resume: resume}
	}
	for range e.shards {
		<-ready
	}
	err := fn()
	close(resume)
	return err
}

// Snapshot flushes pending updates and returns a fresh replica holding the
// exact merge of every shard — the sketch a single-threaded run over the
// whole stream so far would have produced. Ingestion resumes afterwards.
func (e *Engine[S]) Snapshot() (S, error) {
	var zero S
	if e.closed {
		return zero, ErrClosed
	}
	e.Flush()
	out := e.newReplica()
	err := e.barrier(func() error {
		for i, sh := range e.shards {
			if mergeErr := e.merge(out, sh.replica); mergeErr != nil {
				return fmt.Errorf("engine: merging shard %d: %w", i, mergeErr)
			}
		}
		return nil
	})
	if err != nil {
		return zero, err
	}
	return out, nil
}

// Close flushes pending updates, stops the workers and returns the final
// exact merge. The engine cannot be used afterwards.
func (e *Engine[S]) Close() (S, error) {
	var zero S
	if e.closed {
		return zero, ErrClosed
	}
	e.dispatch()
	e.closed = true
	for _, sh := range e.shards {
		close(sh.ch)
	}
	for _, sh := range e.shards {
		<-sh.done
	}
	out := e.newReplica()
	for i, sh := range e.shards {
		if err := e.merge(out, sh.replica); err != nil {
			return zero, fmt.Errorf("engine: merging shard %d: %w", i, err)
		}
	}
	return out, nil
}

// Convenience constructors for the concrete sketch types ---------------------

// NewCountMin builds an engine whose shards are clones of proto (sharing its
// hash functions). proto itself is never written to. proto must not use
// conservative update: conservative sketches are not linear, so sharding
// them cannot be exact and their Merge always fails — better to refuse here
// than after the whole stream has been ingested.
func NewCountMin(cfg Config, proto *sketch.CountMin) *Engine[*sketch.CountMin] {
	if proto.Conservative() {
		panic("engine: conservative-update CountMin is not linear and cannot be sharded")
	}
	return New(cfg,
		func() *sketch.CountMin { return proto.Clone() },
		func(cm *sketch.CountMin, batch []Update) {
			for _, u := range batch {
				cm.Update(u.Item, u.Delta)
			}
		},
		func(dst, src *sketch.CountMin) error { return dst.Merge(src) },
	)
}

// NewCountSketch builds an engine whose shards are clones of proto (sharing
// its hash and sign functions). proto itself is never written to.
func NewCountSketch(cfg Config, proto *sketch.CountSketch) *Engine[*sketch.CountSketch] {
	return New(cfg,
		func() *sketch.CountSketch { return proto.Clone() },
		func(cs *sketch.CountSketch, batch []Update) {
			for _, u := range batch {
				cs.Update(u.Item, u.Delta)
			}
		},
		func(dst, src *sketch.CountSketch) error { return dst.Merge(src) },
	)
}

// NewTracker builds an engine whose shards are clones of a heavy-hitter
// tracker prototype. The Count-Min counters merge exactly; the candidate
// sets merge as a union re-scored against the merged counters.
func NewTracker(cfg Config, proto *sketch.HeavyHitterTracker) *Engine[*sketch.HeavyHitterTracker] {
	return New(cfg,
		func() *sketch.HeavyHitterTracker { return proto.Clone() },
		func(t *sketch.HeavyHitterTracker, batch []Update) {
			for _, u := range batch {
				t.Update(u.Item, u.Delta)
			}
		},
		func(dst, src *sketch.HeavyHitterTracker) error { return dst.Merge(src) },
	)
}
