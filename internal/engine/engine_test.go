package engine

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// newZipf builds a deterministic test stream.
func newZipf(seed uint64, universe uint64, length int) *stream.Stream {
	return stream.Zipf(xrand.New(seed), universe, length, 1.1)
}

// countersEqual compares two counter matrices for exact equality.
func countersEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestCountMinShardingIsExact: the merged result of a 4-worker engine must
// equal — counter for counter — the single-threaded sketch fed the same
// stream. This is the linearity law the whole engine rests on.
func TestCountMinShardingIsExact(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(1), 512, 4)
	single := proto.Clone()
	s := newZipf(2, 1<<14, 100_000)
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	for _, workers := range []int{1, 3, 4, 8} {
		eng := NewCountMin(Config{Workers: workers, BatchSize: 997}, proto)
		for _, u := range s.Updates {
			eng.Update(u.Item, float64(u.Delta))
		}
		merged, err := eng.Close()
		if err != nil {
			t.Fatalf("workers=%d: close: %v", workers, err)
		}
		if !countersEqual(single.Counters(), merged.Counters()) {
			t.Fatalf("workers=%d: merged counters differ from single-threaded sketch", workers)
		}
		if single.TotalMass() != merged.TotalMass() {
			t.Fatalf("workers=%d: total mass %v != %v", workers, merged.TotalMass(), single.TotalMass())
		}
		for item := uint64(0); item < 1<<14; item += 17 {
			if a, b := single.Estimate(item), merged.Estimate(item); a != b {
				t.Fatalf("workers=%d: estimate(%d) %v != %v", workers, item, a, b)
			}
		}
	}
}

// TestCountSketchShardingIsExact: the same law for Count-Sketch, whose
// median estimator must be evaluated over an identical counter matrix.
func TestCountSketchShardingIsExact(t *testing.T) {
	proto := sketch.NewCountSketch(xrand.New(3), 512, 5)
	single := proto.Clone()
	s := newZipf(4, 1<<14, 100_000)
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	eng := NewCountSketch(Config{Workers: 4}, proto)
	for _, u := range s.Updates {
		eng.Update(u.Item, float64(u.Delta))
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), merged.Counters()) {
		t.Fatal("merged counters differ from single-threaded sketch")
	}
	for item := uint64(0); item < 1<<14; item += 17 {
		if a, b := single.Estimate(item), merged.Estimate(item); a != b {
			t.Fatalf("estimate(%d) %v != %v", item, a, b)
		}
	}
}

// TestSnapshotMidStream: a snapshot taken mid-stream must equal a
// single-threaded sketch fed exactly the prefix seen so far, and ingestion
// must continue cleanly afterwards.
func TestSnapshotMidStream(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(5), 256, 4)
	single := proto.Clone()
	s := newZipf(6, 1<<12, 50_000)

	eng := NewCountMin(Config{Workers: 4, BatchSize: 64}, proto)
	half := len(s.Updates) / 2
	for _, u := range s.Updates[:half] {
		single.Update(u.Item, float64(u.Delta))
		eng.Update(u.Item, float64(u.Delta))
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), snap.Counters()) {
		t.Fatal("mid-stream snapshot differs from single-threaded prefix sketch")
	}

	for _, u := range s.Updates[half:] {
		single.Update(u.Item, float64(u.Delta))
		eng.Update(u.Item, float64(u.Delta))
	}
	final, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), final.Counters()) {
		t.Fatal("final merge differs from single-threaded sketch")
	}
	// The snapshot must be a frozen copy, untouched by later ingestion.
	if snap.TotalMass() != float64(half) {
		t.Fatalf("snapshot total mass %v changed after later updates (want %d)", snap.TotalMass(), half)
	}
}

// TestTrackerShardingFindsHeavyHitters: the sharded tracker must report
// every planted heavy hitter with the exact merged Count-Min estimates.
func TestTrackerShardingFindsHeavyHitters(t *testing.T) {
	s, planted := stream.PlantedHeavyHitters(xrand.New(7), 1<<14, 60_000, 10, 0.5)
	proto := sketch.NewHeavyHitterTracker(xrand.New(8), 2048, 4, 64)
	single := proto.Clone()
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	eng := NewTracker(Config{Workers: 4}, proto)
	for _, u := range s.Updates {
		eng.Update(u.Item, float64(u.Delta))
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}

	reported := map[uint64]bool{}
	for _, ic := range merged.HeavyHitters(0.01) {
		reported[ic.Item] = true
	}
	for _, item := range planted {
		if !reported[item] {
			t.Errorf("planted heavy hitter %d missing from sharded tracker report", item)
		}
		if a, b := single.Estimate(item), merged.Estimate(item); a != b {
			t.Errorf("estimate(%d): single %v != sharded %v", item, a, b)
		}
	}
}

// TestUpdateBatchAndFlush: batch ingestion and explicit flush paths.
func TestUpdateBatchAndFlush(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(9), 128, 3)
	single := proto.Clone()
	eng := NewCountMin(Config{Workers: 2, BatchSize: 1000}, proto)

	batch := make([]Update, 0, 123)
	for i := uint64(0); i < 123; i++ {
		batch = append(batch, Update{Item: i % 40, Delta: 2})
		single.Update(i%40, 2)
	}
	eng.UpdateBatch(batch)
	eng.Flush() // partial batch (123 < 1000) must become visible
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), snap.Counters()) {
		t.Fatal("flush did not make the partial batch visible to Snapshot")
	}
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConservativeProtoRejected: conservative update is not linear, so the
// engine must refuse the prototype up front rather than ingest a whole
// stream and fail at merge time.
func TestConservativeProtoRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCountMin accepted a conservative-update prototype")
		}
	}()
	NewCountMin(Config{Workers: 2}, sketch.NewCountMin(xrand.New(1), 64, 2, sketch.WithConservativeUpdate()))
}

// TestClosedEngineErrors: operations after Close must fail cleanly.
func TestClosedEngineErrors(t *testing.T) {
	eng := NewCountMin(Config{Workers: 2}, sketch.NewCountMin(xrand.New(10), 64, 2))
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Close(); err != ErrClosed {
		t.Fatalf("second Close: got %v, want ErrClosed", err)
	}
	if _, err := eng.Snapshot(); err != ErrClosed {
		t.Fatalf("Snapshot after Close: got %v, want ErrClosed", err)
	}
}
