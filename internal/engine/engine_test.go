package engine

import (
	"sync"
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// newZipf builds a deterministic test stream.
func newZipf(seed uint64, universe uint64, length int) *stream.Stream {
	return stream.Zipf(xrand.New(seed), universe, length, 1.1)
}

// countersEqual compares two counter matrices for exact equality.
func countersEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestCountMinShardingIsExact: the merged result of a 4-worker engine must
// equal — counter for counter — the single-threaded sketch fed the same
// stream. This is the linearity law the whole engine rests on.
func TestCountMinShardingIsExact(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(1), 512, 4)
	single := proto.Clone()
	s := newZipf(2, 1<<14, 100_000)
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	for _, workers := range []int{1, 3, 4, 8} {
		eng := NewCountMin(Config{Workers: workers, BatchSize: 997}, proto)
		for _, u := range s.Updates {
			eng.Update(u.Item, float64(u.Delta))
		}
		merged, err := eng.Close()
		if err != nil {
			t.Fatalf("workers=%d: close: %v", workers, err)
		}
		if !countersEqual(single.Counters(), merged.Counters()) {
			t.Fatalf("workers=%d: merged counters differ from single-threaded sketch", workers)
		}
		if single.TotalMass() != merged.TotalMass() {
			t.Fatalf("workers=%d: total mass %v != %v", workers, merged.TotalMass(), single.TotalMass())
		}
		for item := uint64(0); item < 1<<14; item += 17 {
			if a, b := single.Estimate(item), merged.Estimate(item); a != b {
				t.Fatalf("workers=%d: estimate(%d) %v != %v", workers, item, a, b)
			}
		}
	}
}

// TestCountSketchShardingIsExact: the same law for Count-Sketch, whose
// median estimator must be evaluated over an identical counter matrix.
func TestCountSketchShardingIsExact(t *testing.T) {
	proto := sketch.NewCountSketch(xrand.New(3), 512, 5)
	single := proto.Clone()
	s := newZipf(4, 1<<14, 100_000)
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	eng := NewCountSketch(Config{Workers: 4}, proto)
	for _, u := range s.Updates {
		eng.Update(u.Item, float64(u.Delta))
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), merged.Counters()) {
		t.Fatal("merged counters differ from single-threaded sketch")
	}
	for item := uint64(0); item < 1<<14; item += 17 {
		if a, b := single.Estimate(item), merged.Estimate(item); a != b {
			t.Fatalf("estimate(%d) %v != %v", item, a, b)
		}
	}
}

// TestConcurrentProducersExact: the multi-producer law. P goroutines ingest
// disjoint slices of one stream through private handles — no shared locks —
// and the merged Close must still equal the single-threaded sketch counter
// for counter. Run under -race this is also the data-race oracle for the
// whole producer path.
func TestConcurrentProducersExact(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(21), 512, 4)
	single := proto.Clone()
	s := newZipf(22, 1<<14, 120_000)
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	for _, producers := range []int{1, 2, 4, 8} {
		eng := NewCountMin(Config{Workers: 4, BatchSize: 503}, proto)
		var wg sync.WaitGroup
		for pid := 0; pid < producers; pid++ {
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				p := eng.Producer()
				defer p.Close()
				for i := pid; i < len(s.Updates); i += producers {
					u := s.Updates[i]
					p.Update(u.Item, float64(u.Delta))
				}
			}(pid)
		}
		wg.Wait()
		merged, err := eng.Close()
		if err != nil {
			t.Fatalf("producers=%d: close: %v", producers, err)
		}
		if !countersEqual(single.Counters(), merged.Counters()) {
			t.Fatalf("producers=%d: merged counters differ from single-threaded sketch", producers)
		}
		if single.TotalMass() != merged.TotalMass() {
			t.Fatalf("producers=%d: total mass %v != %v", producers, merged.TotalMass(), single.TotalMass())
		}
	}
}

// TestSnapshotDuringConcurrentIngest: barriers and producers may overlap.
// Snapshots taken while producers are mid-stream must be internally
// consistent (every included update counted exactly once), and the final
// Close must still be exact. The mass check works because every update has
// delta 1: any batch double-counted or dropped by a racy barrier would show
// up as a wrong total.
func TestSnapshotDuringConcurrentIngest(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(23), 256, 4)
	single := proto.Clone()
	const producers, perProducer = 4, 30_000
	eng := NewCountMin(Config{Workers: 3, BatchSize: 128}, proto)

	var wg sync.WaitGroup
	for pid := 0; pid < producers; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			p := eng.Producer()
			defer p.Close()
			for i := 0; i < perProducer; i++ {
				p.Update(uint64(pid*perProducer+i)%4096, 1)
			}
		}(pid)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			snap, err := eng.Snapshot()
			if err != nil {
				t.Errorf("mid-stream snapshot: %v", err)
				return
			}
			if mass := snap.TotalMass(); mass < 0 || mass > producers*perProducer {
				t.Errorf("mid-stream snapshot mass %v out of range [0, %d]", mass, producers*perProducer)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	for i := 0; i < producers*perProducer; i++ {
		single.Update(uint64(i)%4096, 1)
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), merged.Counters()) {
		t.Fatal("concurrent snapshots perturbed the final merge")
	}
}

// TestDeltaSnapshotTelescopes: DeltaSnapshot against a retained baseline
// must yield deltas that (a) summarize exactly the updates between the two
// cuts and (b) telescope — baseline plus delta equals the new snapshot
// counter for counter. This is the gossip replicator's contract.
func TestDeltaSnapshotTelescopes(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(41), 512, 4)
	eng := NewCountMin(Config{Workers: 3, BatchSize: 64}, proto)
	s := newZipf(43, 1<<14, 30_000)

	baseline := proto.Clone() // empty: the first delta is "everything so far"
	reference := proto.Clone()
	cut := len(s.Updates) / 3

	ingest := func(updates []stream.Update) {
		for _, u := range updates {
			eng.Update(u.Item, float64(u.Delta))
			reference.Update(u.Item, float64(u.Delta))
		}
		eng.Flush()
	}

	ingest(s.Updates[:cut])
	snap1, delta1, err := eng.DeltaSnapshot(baseline)
	if err != nil {
		t.Fatal(err)
	}
	// First delta from an empty baseline is the full state.
	if !countersEqual(delta1.Counters(), snap1.Counters()) {
		t.Fatal("first delta from an empty baseline differs from the snapshot")
	}

	ingest(s.Updates[cut:])
	snap2, delta2, err := eng.DeltaSnapshot(snap1)
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(snap2.Counters(), reference.Counters()) {
		t.Fatal("second snapshot differs from the single-threaded reference")
	}
	// The tail-only sketch must equal the second delta exactly.
	tail := proto.Clone()
	for _, u := range s.Updates[cut:] {
		tail.Update(u.Item, float64(u.Delta))
	}
	if !countersEqual(delta2.Counters(), tail.Counters()) {
		t.Fatal("delta between cuts differs from the tail-only sketch")
	}
	// Telescoping: a peer that folded delta1 then delta2 holds snap2.
	peer := proto.Clone()
	if err := peer.Merge(delta1); err != nil {
		t.Fatal(err)
	}
	if err := peer.Merge(delta2); err != nil {
		t.Fatal(err)
	}
	if !countersEqual(peer.Counters(), snap2.Counters()) {
		t.Fatal("baseline + deltas do not reconstruct the snapshot")
	}
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaSnapshotRequiresRegistration: engines built with the generic New
// and no WithDelta must refuse DeltaSnapshot with ErrNoDelta.
func TestDeltaSnapshotRequiresRegistration(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(47), 64, 2)
	eng := New(Config{Workers: 1},
		func() *sketch.CountMin { return proto.Clone() },
		func(s *sketch.CountMin, items []uint64, deltas []float64) { s.UpdateBatch(items, deltas) },
		func(dst, src *sketch.CountMin) error { return dst.Merge(src) },
	)
	defer eng.Close()
	if _, _, err := eng.DeltaSnapshot(proto.Clone()); err != ErrNoDelta {
		t.Fatalf("DeltaSnapshot without WithDelta: got %v, want ErrNoDelta", err)
	}
}

// TestDyadicEngineIsExact: the NewDyadic constructor — levels are CountMins,
// so the clone/merge law applies level-wise and the sharded hierarchy
// answers quantile and range queries exactly like the single-threaded one.
func TestDyadicEngineIsExact(t *testing.T) {
	proto := sketch.NewDyadic(xrand.New(25), 12, 256, 4)
	single := proto.Clone()
	s := newZipf(26, 1<<12, 60_000)
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	eng := NewDyadic(Config{Workers: 4, BatchSize: 251}, proto)
	var wg sync.WaitGroup
	const producers = 4
	for pid := 0; pid < producers; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			p := eng.Producer()
			defer p.Close()
			for i := pid; i < len(s.Updates); i += producers {
				u := s.Updates[i]
				p.Update(u.Item, float64(u.Delta))
			}
		}(pid)
	}
	wg.Wait()
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	for item := uint64(0); item < 1<<12; item += 11 {
		if a, b := single.Estimate(item), merged.Estimate(item); a != b {
			t.Fatalf("estimate(%d): single %v != sharded %v", item, a, b)
		}
	}
	for _, phi := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		if a, b := single.Quantile(phi), merged.Quantile(phi); a != b {
			t.Fatalf("Quantile(%v): single %v != sharded %v", phi, a, b)
		}
	}
	if a, b := single.RangeSum(100, 2000), merged.RangeSum(100, 2000); a != b {
		t.Fatalf("RangeSum: single %v != sharded %v", a, b)
	}
}

// TestDyadicEngineWireMerge: the Dyadic codec registered by NewDyadic —
// SnapshotEncoded bytes from one engine fold into another via MergeEncoded,
// and incompatible hierarchies are refused.
func TestDyadicEngineWireMerge(t *testing.T) {
	proto := sketch.NewDyadic(xrand.New(27), 10, 128, 3)
	single := proto.Clone()
	s := newZipf(28, 1<<10, 20_000)
	half := len(s.Updates) / 2

	engA := NewDyadic(Config{Workers: 2}, proto)
	engB := NewDyadic(Config{Workers: 3}, proto)
	for i, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
		if i < half {
			engA.Update(u.Item, float64(u.Delta))
		} else {
			engB.Update(u.Item, float64(u.Delta))
		}
	}
	wire, err := engB.SnapshotEncoded()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engB.Close(); err != nil {
		t.Fatal(err)
	}
	if err := engA.MergeEncoded(wire); err != nil {
		t.Fatal(err)
	}
	merged, err := engA.Close()
	if err != nil {
		t.Fatal(err)
	}
	for item := uint64(0); item < 1<<10; item += 7 {
		if a, b := single.Estimate(item), merged.Estimate(item); a != b {
			t.Fatalf("estimate(%d): single %v != merged-over-wire %v", item, a, b)
		}
	}

	// Foreign seeds and mismatched universes must be refused.
	engC := NewDyadic(Config{Workers: 2}, proto)
	foreign, err := sketch.NewDyadic(xrand.New(99), 10, 128, 3).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := engC.MergeEncoded(foreign); err == nil {
		t.Error("foreign hash seeds: expected error")
	}
	wrongU, err := sketch.NewDyadic(xrand.New(27), 11, 128, 3).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := engC.MergeEncoded(wrongU); err == nil {
		t.Error("mismatched universe: expected error")
	}
	if _, err := engC.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestProducerLifecycle: double Close is a no-op, Flush after Close is a
// no-op, Update after Close panics, and Producer() after Engine.Close
// panics.
func TestProducerLifecycle(t *testing.T) {
	eng := NewCountMin(Config{Workers: 2}, sketch.NewCountMin(xrand.New(29), 64, 2))
	p := eng.Producer()
	p.Update(1, 1)
	p.Close()
	p.Close() // idempotent
	p.Flush() // no-op on a closed handle
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Update on a closed producer did not panic")
			}
		}()
		p.Update(2, 1)
	}()
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if merged.Estimate(1) != 1 {
		t.Fatalf("estimate(1) = %v after handle flush, want 1", merged.Estimate(1))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Producer() after Engine.Close did not panic")
			}
		}()
		eng.Producer()
	}()
}

// TestSnapshotMidStream: a snapshot taken mid-stream must equal a
// single-threaded sketch fed exactly the prefix seen so far, and ingestion
// must continue cleanly afterwards.
func TestSnapshotMidStream(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(5), 256, 4)
	single := proto.Clone()
	s := newZipf(6, 1<<12, 50_000)

	eng := NewCountMin(Config{Workers: 4, BatchSize: 64}, proto)
	half := len(s.Updates) / 2
	for _, u := range s.Updates[:half] {
		single.Update(u.Item, float64(u.Delta))
		eng.Update(u.Item, float64(u.Delta))
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), snap.Counters()) {
		t.Fatal("mid-stream snapshot differs from single-threaded prefix sketch")
	}

	for _, u := range s.Updates[half:] {
		single.Update(u.Item, float64(u.Delta))
		eng.Update(u.Item, float64(u.Delta))
	}
	final, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), final.Counters()) {
		t.Fatal("final merge differs from single-threaded sketch")
	}
	// The snapshot must be a frozen copy, untouched by later ingestion.
	if snap.TotalMass() != float64(half) {
		t.Fatalf("snapshot total mass %v changed after later updates (want %d)", snap.TotalMass(), half)
	}
}

// TestTrackerShardingFindsHeavyHitters: the sharded tracker must report
// every planted heavy hitter with the exact merged Count-Min estimates.
func TestTrackerShardingFindsHeavyHitters(t *testing.T) {
	s, planted := stream.PlantedHeavyHitters(xrand.New(7), 1<<14, 60_000, 10, 0.5)
	proto := sketch.NewHeavyHitterTracker(xrand.New(8), 2048, 4, 64)
	single := proto.Clone()
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	eng := NewTracker(Config{Workers: 4}, proto)
	for _, u := range s.Updates {
		eng.Update(u.Item, float64(u.Delta))
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}

	reported := map[uint64]bool{}
	for _, ic := range merged.HeavyHitters(0.01) {
		reported[ic.Item] = true
	}
	for _, item := range planted {
		if !reported[item] {
			t.Errorf("planted heavy hitter %d missing from sharded tracker report", item)
		}
		if a, b := single.Estimate(item), merged.Estimate(item); a != b {
			t.Errorf("estimate(%d): single %v != sharded %v", item, a, b)
		}
	}
}

// TestUpdateBatchAndFlush: batch ingestion and explicit flush paths.
func TestUpdateBatchAndFlush(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(9), 128, 3)
	single := proto.Clone()
	eng := NewCountMin(Config{Workers: 2, BatchSize: 1000}, proto)

	batch := make([]Update, 0, 123)
	for i := uint64(0); i < 123; i++ {
		batch = append(batch, Update{Item: i % 40, Delta: 2})
		single.Update(i%40, 2)
	}
	eng.UpdateBatch(batch)
	eng.Flush() // partial batch (123 < 1000) must become visible
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), snap.Counters()) {
		t.Fatal("flush did not make the partial batch visible to Snapshot")
	}
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateColumnsExact: the columnar ingestion path — caller columns bulk-
// copied into producer buffers, dispatched whole, applied via the replicas'
// UpdateBatch — must merge to exactly the single-threaded sketch, for column
// slices of every awkward size (smaller than, equal to and spanning the
// producer batch size).
func TestUpdateColumnsExact(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(31), 256, 4)
	single := proto.Clone()
	s := newZipf(33, 1<<12, 30_000)
	items := make([]uint64, len(s.Updates))
	deltas := make([]float64, len(s.Updates))
	for i, u := range s.Updates {
		items[i], deltas[i] = u.Item, float64(u.Delta)
	}
	single.UpdateBatch(items, deltas)

	eng := NewCountMin(Config{Workers: 3, BatchSize: 100}, proto)
	sizes := []int{1, 99, 100, 101, 1000, 7}
	at := 0
	for i := 0; at < len(items); i++ {
		n := sizes[i%len(sizes)]
		if at+n > len(items) {
			n = len(items) - at
		}
		eng.UpdateColumns(items[at:at+n], deltas[at:at+n])
		at += n
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), merged.Counters()) {
		t.Fatal("columnar engine ingestion differs from single-threaded sketch")
	}
	if single.TotalMass() != merged.TotalMass() {
		t.Fatalf("total mass: single %v, engine %v", single.TotalMass(), merged.TotalMass())
	}
}

// TestUpdateColumnsLengthMismatchPanics pins the contract violation to a
// panic rather than silently zipping unequal columns.
func TestUpdateColumnsLengthMismatchPanics(t *testing.T) {
	eng := NewCountMin(Config{Workers: 1}, sketch.NewCountMin(xrand.New(35), 64, 2))
	defer eng.Close()
	defer func() {
		if recover() == nil {
			t.Error("UpdateColumns length mismatch did not panic")
		}
	}()
	eng.UpdateColumns(make([]uint64, 3), make([]float64, 2))
}

// TestAbsorbIsExact: folding an externally built replica into a running
// engine must be indistinguishable from having ingested its stream directly.
func TestAbsorbIsExact(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(11), 256, 4)
	single := proto.Clone()
	s := newZipf(12, 1<<12, 40_000)
	half := len(s.Updates) / 2

	external := proto.Clone()
	eng := NewCountMin(Config{Workers: 3, BatchSize: 100}, proto)
	for i, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
		if i < half {
			eng.Update(u.Item, float64(u.Delta))
		} else {
			external.Update(u.Item, float64(u.Delta))
		}
	}
	if err := eng.Absorb(external); err != nil {
		t.Fatal(err)
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), merged.Counters()) {
		t.Fatal("absorbed engine differs from single-threaded sketch")
	}
}

// TestMergeEncodedAndSnapshotEncoded: the wire-format path through the
// engine — SnapshotEncoded bytes from one engine fold into another via
// MergeEncoded, reproducing the single-threaded sketch exactly.
func TestMergeEncodedAndSnapshotEncoded(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(13), 256, 4)
	single := proto.Clone()
	s := newZipf(14, 1<<12, 30_000)
	half := len(s.Updates) / 2

	engA := NewCountMin(Config{Workers: 2}, proto)
	engB := NewCountMin(Config{Workers: 3}, proto)
	for i, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
		if i < half {
			engA.Update(u.Item, float64(u.Delta))
		} else {
			engB.Update(u.Item, float64(u.Delta))
		}
	}
	wire, err := engB.SnapshotEncoded()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engB.Close(); err != nil {
		t.Fatal(err)
	}
	if err := engA.MergeEncoded(wire); err != nil {
		t.Fatal(err)
	}
	merged, err := engA.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), merged.Counters()) {
		t.Fatal("merge-over-the-wire engine differs from single-threaded sketch")
	}
}

// TestMergeEncodedRejectsIncompatible: wrong dimensions and foreign seeds
// must be refused with an error, leaving the engine usable.
func TestMergeEncodedRejectsIncompatible(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(15), 256, 4)
	eng := NewCountMin(Config{Workers: 2}, proto)

	wrongDims, err := sketch.NewCountMin(xrand.New(15), 64, 2).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.MergeEncoded(wrongDims); err == nil {
		t.Error("mismatched dimensions: expected error")
	}
	wrongSeed, err := sketch.NewCountMin(xrand.New(16), 256, 4).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.MergeEncoded(wrongSeed); err == nil {
		t.Error("foreign hash seed: expected error")
	}
	if err := eng.MergeEncoded([]byte("junk")); err == nil {
		t.Error("junk bytes: expected error")
	}
	// Still alive.
	eng.Update(1, 1)
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// The CountSketch codec enforces the same compatibility contract.
	csProto := sketch.NewCountSketch(xrand.New(15), 256, 5)
	csEng := NewCountSketch(Config{Workers: 2}, csProto)
	foreign, err := sketch.NewCountSketch(xrand.New(99), 256, 5).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := csEng.MergeEncoded(foreign); err == nil {
		t.Error("CountSketch foreign hash seed: expected error")
	}
	if _, err := csEng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNoCodec: engines built with the generic New have no codec and must say
// so rather than guess.
func TestNoCodec(t *testing.T) {
	eng := New(Config{Workers: 1},
		func() map[uint64]float64 { return map[uint64]float64{} },
		func(m map[uint64]float64, items []uint64, deltas []float64) {
			for i, item := range items {
				m[item] += deltas[i]
			}
		},
		func(dst, src map[uint64]float64) error {
			for k, v := range src {
				dst[k] += v
			}
			return nil
		},
	)
	if _, err := eng.SnapshotEncoded(); err != ErrNoCodec {
		t.Fatalf("SnapshotEncoded: got %v, want ErrNoCodec", err)
	}
	if err := eng.MergeEncoded([]byte{1}); err != ErrNoCodec {
		t.Fatalf("MergeEncoded: got %v, want ErrNoCodec", err)
	}
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTrackerMergeEncodedAcceptsBareCountMin: a tracker engine must fold in
// both full tracker snapshots and bare Count-Min counters.
func TestTrackerMergeEncodedAcceptsBareCountMin(t *testing.T) {
	proto := sketch.NewHeavyHitterTracker(xrand.New(17), 512, 4, 16)
	eng := NewTracker(Config{Workers: 2}, proto)
	eng.Update(5, 3)

	peer := sketch.NewHeavyHitterTracker(xrand.New(17), 512, 4, 16)
	peer.Update(5, 4)
	peer.Update(9, 2)

	// Full tracker snapshot.
	trackerBytes, err := peer.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.MergeEncoded(trackerBytes); err != nil {
		t.Fatal(err)
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Estimate(5); got != 7 {
		t.Fatalf("estimate(5) = %v after tracker merge, want 7", got)
	}

	// Bare Count-Min from the tracker engine's own snapshot? A CountMin
	// sharing the seed: absorb doubles item 9's count.
	cm := sketch.NewCountMin(xrand.New(17), 512, 4)
	cm.Update(9, 1)
	if err := eng.MergeEncoded(mustMarshal(t, cm)); err != nil {
		t.Fatal(err)
	}
	snap, err = eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Estimate(9); got != 3 {
		t.Fatalf("estimate(9) = %v after bare CountMin merge, want 3", got)
	}
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

func mustMarshal(t *testing.T, cm *sketch.CountMin) []byte {
	t.Helper()
	data, err := cm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestConservativeProtoRejected: conservative update is not linear, so the
// engine must refuse the prototype up front rather than ingest a whole
// stream and fail at merge time.
func TestConservativeProtoRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCountMin accepted a conservative-update prototype")
		}
	}()
	NewCountMin(Config{Workers: 2}, sketch.NewCountMin(xrand.New(1), 64, 2, sketch.WithConservativeUpdate()))
}

// TestClosedEngineErrors: operations after Close must fail cleanly.
func TestClosedEngineErrors(t *testing.T) {
	eng := NewCountMin(Config{Workers: 2}, sketch.NewCountMin(xrand.New(10), 64, 2))
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Close(); err != ErrClosed {
		t.Fatalf("second Close: got %v, want ErrClosed", err)
	}
	if _, err := eng.Snapshot(); err != ErrClosed {
		t.Fatalf("Snapshot after Close: got %v, want ErrClosed", err)
	}
}

// TestAbsorbSubIsExact: AbsorbSub is Absorb's linear inverse — absorbing an
// external sketch and then subtracting it back leaves the engine's counters
// exactly where the engine's own stream put them.
func TestAbsorbSubIsExact(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(61), 256, 4)
	s := newZipf(62, 1<<12, 40_000)
	half := len(s.Updates) / 2

	own := proto.Clone()
	external := proto.Clone()
	eng := NewCountMin(Config{Workers: 3, BatchSize: 100}, proto)
	for i, u := range s.Updates {
		if i < half {
			own.Update(u.Item, float64(u.Delta))
			eng.Update(u.Item, float64(u.Delta))
		} else {
			external.Update(u.Item, float64(u.Delta))
		}
	}
	if err := eng.Absorb(external); err != nil {
		t.Fatal(err)
	}
	if err := eng.AbsorbSub(external); err != nil {
		t.Fatal(err)
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(own.Counters(), merged.Counters()) {
		t.Fatal("absorb+absorbSub round trip changed the counters")
	}
}

// TestAbsorbSubRequiresDelta: engines without a registered subtraction must
// refuse AbsorbSub with ErrNoDelta before touching a counter.
func TestAbsorbSubRequiresDelta(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(63), 64, 2)
	eng := New(Config{Workers: 1},
		func() *sketch.CountMin { return proto.Clone() },
		func(s *sketch.CountMin, items []uint64, deltas []float64) { s.UpdateBatch(items, deltas) },
		func(dst, src *sketch.CountMin) error { return dst.Merge(src) },
	)
	defer eng.Close()
	if err := eng.AbsorbSub(proto.Clone()); err != ErrNoDelta {
		t.Fatalf("AbsorbSub without WithDelta: got %v, want ErrNoDelta", err)
	}
}
