package engine

import (
	"testing"

	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// newZipf builds a deterministic test stream.
func newZipf(seed uint64, universe uint64, length int) *stream.Stream {
	return stream.Zipf(xrand.New(seed), universe, length, 1.1)
}

// countersEqual compares two counter matrices for exact equality.
func countersEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestCountMinShardingIsExact: the merged result of a 4-worker engine must
// equal — counter for counter — the single-threaded sketch fed the same
// stream. This is the linearity law the whole engine rests on.
func TestCountMinShardingIsExact(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(1), 512, 4)
	single := proto.Clone()
	s := newZipf(2, 1<<14, 100_000)
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	for _, workers := range []int{1, 3, 4, 8} {
		eng := NewCountMin(Config{Workers: workers, BatchSize: 997}, proto)
		for _, u := range s.Updates {
			eng.Update(u.Item, float64(u.Delta))
		}
		merged, err := eng.Close()
		if err != nil {
			t.Fatalf("workers=%d: close: %v", workers, err)
		}
		if !countersEqual(single.Counters(), merged.Counters()) {
			t.Fatalf("workers=%d: merged counters differ from single-threaded sketch", workers)
		}
		if single.TotalMass() != merged.TotalMass() {
			t.Fatalf("workers=%d: total mass %v != %v", workers, merged.TotalMass(), single.TotalMass())
		}
		for item := uint64(0); item < 1<<14; item += 17 {
			if a, b := single.Estimate(item), merged.Estimate(item); a != b {
				t.Fatalf("workers=%d: estimate(%d) %v != %v", workers, item, a, b)
			}
		}
	}
}

// TestCountSketchShardingIsExact: the same law for Count-Sketch, whose
// median estimator must be evaluated over an identical counter matrix.
func TestCountSketchShardingIsExact(t *testing.T) {
	proto := sketch.NewCountSketch(xrand.New(3), 512, 5)
	single := proto.Clone()
	s := newZipf(4, 1<<14, 100_000)
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	eng := NewCountSketch(Config{Workers: 4}, proto)
	for _, u := range s.Updates {
		eng.Update(u.Item, float64(u.Delta))
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), merged.Counters()) {
		t.Fatal("merged counters differ from single-threaded sketch")
	}
	for item := uint64(0); item < 1<<14; item += 17 {
		if a, b := single.Estimate(item), merged.Estimate(item); a != b {
			t.Fatalf("estimate(%d) %v != %v", item, a, b)
		}
	}
}

// TestSnapshotMidStream: a snapshot taken mid-stream must equal a
// single-threaded sketch fed exactly the prefix seen so far, and ingestion
// must continue cleanly afterwards.
func TestSnapshotMidStream(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(5), 256, 4)
	single := proto.Clone()
	s := newZipf(6, 1<<12, 50_000)

	eng := NewCountMin(Config{Workers: 4, BatchSize: 64}, proto)
	half := len(s.Updates) / 2
	for _, u := range s.Updates[:half] {
		single.Update(u.Item, float64(u.Delta))
		eng.Update(u.Item, float64(u.Delta))
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), snap.Counters()) {
		t.Fatal("mid-stream snapshot differs from single-threaded prefix sketch")
	}

	for _, u := range s.Updates[half:] {
		single.Update(u.Item, float64(u.Delta))
		eng.Update(u.Item, float64(u.Delta))
	}
	final, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), final.Counters()) {
		t.Fatal("final merge differs from single-threaded sketch")
	}
	// The snapshot must be a frozen copy, untouched by later ingestion.
	if snap.TotalMass() != float64(half) {
		t.Fatalf("snapshot total mass %v changed after later updates (want %d)", snap.TotalMass(), half)
	}
}

// TestTrackerShardingFindsHeavyHitters: the sharded tracker must report
// every planted heavy hitter with the exact merged Count-Min estimates.
func TestTrackerShardingFindsHeavyHitters(t *testing.T) {
	s, planted := stream.PlantedHeavyHitters(xrand.New(7), 1<<14, 60_000, 10, 0.5)
	proto := sketch.NewHeavyHitterTracker(xrand.New(8), 2048, 4, 64)
	single := proto.Clone()
	for _, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
	}

	eng := NewTracker(Config{Workers: 4}, proto)
	for _, u := range s.Updates {
		eng.Update(u.Item, float64(u.Delta))
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}

	reported := map[uint64]bool{}
	for _, ic := range merged.HeavyHitters(0.01) {
		reported[ic.Item] = true
	}
	for _, item := range planted {
		if !reported[item] {
			t.Errorf("planted heavy hitter %d missing from sharded tracker report", item)
		}
		if a, b := single.Estimate(item), merged.Estimate(item); a != b {
			t.Errorf("estimate(%d): single %v != sharded %v", item, a, b)
		}
	}
}

// TestUpdateBatchAndFlush: batch ingestion and explicit flush paths.
func TestUpdateBatchAndFlush(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(9), 128, 3)
	single := proto.Clone()
	eng := NewCountMin(Config{Workers: 2, BatchSize: 1000}, proto)

	batch := make([]Update, 0, 123)
	for i := uint64(0); i < 123; i++ {
		batch = append(batch, Update{Item: i % 40, Delta: 2})
		single.Update(i%40, 2)
	}
	eng.UpdateBatch(batch)
	eng.Flush() // partial batch (123 < 1000) must become visible
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), snap.Counters()) {
		t.Fatal("flush did not make the partial batch visible to Snapshot")
	}
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAbsorbIsExact: folding an externally built replica into a running
// engine must be indistinguishable from having ingested its stream directly.
func TestAbsorbIsExact(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(11), 256, 4)
	single := proto.Clone()
	s := newZipf(12, 1<<12, 40_000)
	half := len(s.Updates) / 2

	external := proto.Clone()
	eng := NewCountMin(Config{Workers: 3, BatchSize: 100}, proto)
	for i, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
		if i < half {
			eng.Update(u.Item, float64(u.Delta))
		} else {
			external.Update(u.Item, float64(u.Delta))
		}
	}
	if err := eng.Absorb(external); err != nil {
		t.Fatal(err)
	}
	merged, err := eng.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), merged.Counters()) {
		t.Fatal("absorbed engine differs from single-threaded sketch")
	}
}

// TestMergeEncodedAndSnapshotEncoded: the wire-format path through the
// engine — SnapshotEncoded bytes from one engine fold into another via
// MergeEncoded, reproducing the single-threaded sketch exactly.
func TestMergeEncodedAndSnapshotEncoded(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(13), 256, 4)
	single := proto.Clone()
	s := newZipf(14, 1<<12, 30_000)
	half := len(s.Updates) / 2

	engA := NewCountMin(Config{Workers: 2}, proto)
	engB := NewCountMin(Config{Workers: 3}, proto)
	for i, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
		if i < half {
			engA.Update(u.Item, float64(u.Delta))
		} else {
			engB.Update(u.Item, float64(u.Delta))
		}
	}
	wire, err := engB.SnapshotEncoded()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engB.Close(); err != nil {
		t.Fatal(err)
	}
	if err := engA.MergeEncoded(wire); err != nil {
		t.Fatal(err)
	}
	merged, err := engA.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !countersEqual(single.Counters(), merged.Counters()) {
		t.Fatal("merge-over-the-wire engine differs from single-threaded sketch")
	}
}

// TestMergeEncodedRejectsIncompatible: wrong dimensions and foreign seeds
// must be refused with an error, leaving the engine usable.
func TestMergeEncodedRejectsIncompatible(t *testing.T) {
	proto := sketch.NewCountMin(xrand.New(15), 256, 4)
	eng := NewCountMin(Config{Workers: 2}, proto)

	wrongDims, err := sketch.NewCountMin(xrand.New(15), 64, 2).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.MergeEncoded(wrongDims); err == nil {
		t.Error("mismatched dimensions: expected error")
	}
	wrongSeed, err := sketch.NewCountMin(xrand.New(16), 256, 4).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.MergeEncoded(wrongSeed); err == nil {
		t.Error("foreign hash seed: expected error")
	}
	if err := eng.MergeEncoded([]byte("junk")); err == nil {
		t.Error("junk bytes: expected error")
	}
	// Still alive.
	eng.Update(1, 1)
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// The CountSketch codec enforces the same compatibility contract.
	csProto := sketch.NewCountSketch(xrand.New(15), 256, 5)
	csEng := NewCountSketch(Config{Workers: 2}, csProto)
	foreign, err := sketch.NewCountSketch(xrand.New(99), 256, 5).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := csEng.MergeEncoded(foreign); err == nil {
		t.Error("CountSketch foreign hash seed: expected error")
	}
	if _, err := csEng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNoCodec: engines built with the generic New have no codec and must say
// so rather than guess.
func TestNoCodec(t *testing.T) {
	eng := New(Config{Workers: 1},
		func() map[uint64]float64 { return map[uint64]float64{} },
		func(m map[uint64]float64, batch []Update) {
			for _, u := range batch {
				m[u.Item] += u.Delta
			}
		},
		func(dst, src map[uint64]float64) error {
			for k, v := range src {
				dst[k] += v
			}
			return nil
		},
	)
	if _, err := eng.SnapshotEncoded(); err != ErrNoCodec {
		t.Fatalf("SnapshotEncoded: got %v, want ErrNoCodec", err)
	}
	if err := eng.MergeEncoded([]byte{1}); err != ErrNoCodec {
		t.Fatalf("MergeEncoded: got %v, want ErrNoCodec", err)
	}
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTrackerMergeEncodedAcceptsBareCountMin: a tracker engine must fold in
// both full tracker snapshots and bare Count-Min counters.
func TestTrackerMergeEncodedAcceptsBareCountMin(t *testing.T) {
	proto := sketch.NewHeavyHitterTracker(xrand.New(17), 512, 4, 16)
	eng := NewTracker(Config{Workers: 2}, proto)
	eng.Update(5, 3)

	peer := sketch.NewHeavyHitterTracker(xrand.New(17), 512, 4, 16)
	peer.Update(5, 4)
	peer.Update(9, 2)

	// Full tracker snapshot.
	trackerBytes, err := peer.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.MergeEncoded(trackerBytes); err != nil {
		t.Fatal(err)
	}
	snap, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Estimate(5); got != 7 {
		t.Fatalf("estimate(5) = %v after tracker merge, want 7", got)
	}

	// Bare Count-Min from the tracker engine's own snapshot? A CountMin
	// sharing the seed: absorb doubles item 9's count.
	cm := sketch.NewCountMin(xrand.New(17), 512, 4)
	cm.Update(9, 1)
	if err := eng.MergeEncoded(mustMarshal(t, cm)); err != nil {
		t.Fatal(err)
	}
	snap, err = eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.Estimate(9); got != 3 {
		t.Fatalf("estimate(9) = %v after bare CountMin merge, want 3", got)
	}
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

func mustMarshal(t *testing.T, cm *sketch.CountMin) []byte {
	t.Helper()
	data, err := cm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestConservativeProtoRejected: conservative update is not linear, so the
// engine must refuse the prototype up front rather than ingest a whole
// stream and fail at merge time.
func TestConservativeProtoRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCountMin accepted a conservative-update prototype")
		}
	}()
	NewCountMin(Config{Workers: 2}, sketch.NewCountMin(xrand.New(1), 64, 2, sketch.WithConservativeUpdate()))
}

// TestClosedEngineErrors: operations after Close must fail cleanly.
func TestClosedEngineErrors(t *testing.T) {
	eng := NewCountMin(Config{Workers: 2}, sketch.NewCountMin(xrand.New(10), 64, 2))
	if _, err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Close(); err != ErrClosed {
		t.Fatalf("second Close: got %v, want ErrClosed", err)
	}
	if _, err := eng.Snapshot(); err != ErrClosed {
		t.Fatalf("Snapshot after Close: got %v, want ErrClosed", err)
	}
}
