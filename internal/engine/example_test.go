package engine_test

import (
	"fmt"
	"sync"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/xrand"
)

// ExampleEngine_Producer shows the multi-producer workflow: four goroutines
// ingest concurrently through private handles — no shared locks — and Close
// still folds everything into the exact single-threaded sketch.
func ExampleEngine_Producer() {
	proto := sketch.NewCountMin(xrand.New(1), 1024, 4)
	reference := proto.Clone()
	for i := 0; i < 40_000; i++ {
		reference.Update(uint64(i%257), 1)
	}

	eng := engine.NewCountMin(engine.Config{Workers: 4}, proto)
	var wg sync.WaitGroup
	for pid := 0; pid < 4; pid++ {
		wg.Add(1)
		go func(pid int) {
			defer wg.Done()
			p := eng.Producer() // private batch buffer: no coordination with other producers
			defer p.Close()     // flushes; Engine.Close waits for it
			for i := pid; i < 40_000; i += 4 {
				p.Update(uint64(i%257), 1)
			}
		}(pid)
	}
	wg.Wait()
	merged, err := eng.Close()
	if err != nil {
		panic(err)
	}

	exact := true
	for item := uint64(0); item < 300; item++ {
		if merged.Estimate(item) != reference.Estimate(item) {
			exact = false
		}
	}
	fmt.Printf("total mass: %v\n", merged.TotalMass())
	fmt.Printf("every estimate equals the single-threaded run: %v\n", exact)
	// Output:
	// total mass: 40000
	// every estimate equals the single-threaded run: true
}

// ExampleNewCountMin shows the sharded-ingestion workflow: updates fan out
// across worker goroutines, each feeding a private clone of the prototype,
// and Close folds the clones back into the exact single-threaded sketch.
func ExampleNewCountMin() {
	proto := sketch.NewCountMin(xrand.New(1), 1024, 4)
	reference := proto.Clone()

	eng := engine.NewCountMin(engine.Config{Workers: 4}, proto)
	for i := 0; i < 10_000; i++ {
		item := uint64(i % 257)
		eng.Update(item, 1)
		reference.Update(item, 1)
	}
	merged, err := eng.Close()
	if err != nil {
		panic(err)
	}

	// Linearity makes the merge exact, not approximate: the sharded result
	// is the very sketch a single goroutine would have built.
	exact := true
	for item := uint64(0); item < 300; item++ {
		if merged.Estimate(item) != reference.Estimate(item) {
			exact = false
		}
	}
	fmt.Printf("total mass: %v\n", merged.TotalMass())
	fmt.Printf("every estimate equals the single-threaded run: %v\n", exact)
	// Output:
	// total mass: 10000
	// every estimate equals the single-threaded run: true
}
