// Package engine scales sketch ingestion across CPU cores by sharding.
//
// The correctness argument is the survey's central observation: a sketch is a
// sparse *linear* map of the frequency vector, so for any split of a stream
// into sub-streams x = x_1 + x_2 + ... + x_N,
//
//	sketch(x) = sketch(x_1) + sketch(x_2) + ... + sketch(x_N)
//
// provided every term is computed with the same hash functions. The engine
// exploits this by giving each of N worker goroutines a private replica of a
// prototype sketch (created with Clone, so all replicas share the prototype's
// hash seeds), fanning incoming (item, delta) updates across the workers in
// batches, and folding the replicas back together with Merge when a snapshot
// is requested. The merged result is *exactly* — not approximately — the
// sketch a single-threaded run over the whole stream would have produced,
// because counter addition is associative and commutative; in particular the
// per-row median estimator of Count-Sketch and the row-minimum estimator of
// Count-Min are evaluated on identical counter matrices.
//
// Design notes:
//
//   - Updates are routed round-robin at batch granularity, not hashed by
//     item. Linearity makes any assignment of updates to shards correct, and
//     round-robin gives perfect load balance with zero per-item routing cost.
//   - Batching amortizes channel synchronization: the producer fills a slice
//     of updates (BatchSize, default 1024) and hands the whole slice to a
//     worker, so channel overhead is paid once per batch rather than once
//     per item. Drained batch slices are recycled through a free list.
//   - Snapshot uses a barrier protocol: a sync token is enqueued on every
//     shard's (FIFO) channel; each worker acknowledges it after applying all
//     earlier batches and then blocks until the merge has read its replica.
//     This yields a consistent cut without locking the hot path.
//   - Replicas never share mutable state, so the engine is race-free by
//     construction (verified under `go test -race`).
//
// The same replicas could equally live in different processes: the sketch
// types' MarshalBinary/UnmarshalBinary (see internal/sketch) serialize the
// hash seeds alongside the counters, so a deserialized shard merges exactly
// like a local one.
package engine
