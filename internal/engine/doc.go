// Package engine scales sketch ingestion across CPU cores by sharding, with
// a multi-producer ingestion pipeline on the front and a barrier-consistent
// snapshot on the back. It offers two sharding modes over the same API and
// the same bit-identical reads.
//
// The correctness argument is the survey's central observation: a sketch is a
// sparse *linear* map of the frequency vector, so for any split of a stream
// into sub-streams x = x_1 + x_2 + ... + x_N,
//
//	sketch(x) = sketch(x_1) + sketch(x_2) + ... + sketch(x_N)
//
// provided every term is computed with the same hash functions. In the
// default *replica* mode the engine exploits this twice. On the consumer
// side, each of N worker goroutines owns a private replica of a prototype
// sketch (created with Clone, so all replicas share the prototype's hash
// seeds); batches fan across the workers and the replicas fold back together
// with Merge when a snapshot is requested. On the producer side, any number
// of goroutines ingest concurrently, each through its own handle from
// Engine.Producer: a handle owns a private batch buffer and a private
// round-robin cursor, so the hot path shares no locks — the only
// synchronization is the per-batch shard channel send, amortized over
// BatchSize updates. Linearity makes both splits exact: whichever producer
// an update arrives through and whichever shard its batch lands on, the
// merged result is *exactly* — not approximately — the sketch a
// single-threaded run over the whole stream would have produced, because
// counter addition is associative and commutative; in particular the
// per-row median estimator of Count-Sketch and the row-minimum estimator of
// Count-Min are evaluated on identical counter matrices.
//
// Replica mode buys merge-free ingestion with workers x sketch-size memory.
// *Partition* mode (Config.Partition, families implementing
// sketch.ColumnSketch via NewLinear or the family constructors) spends the
// memory differently: the workers jointly own ONE copy of the logical
// sketch, shard j holding columns [j*W/N, (j+1)*W/N) of every row. Producers
// route each batch through the family's shared hash kernels and send every
// shard only the increments landing in its columns; a snapshot concatenates
// the slices instead of merging replicas. Because the very same counters get
// the very same additions, every read — estimates, quantiles, snapshot
// bytes, deltas — is bit-identical between the two modes for the same
// stream and seed (pinned by the cross-mode equivalence tests). See
// partition.go for the routing, barrier-atomicity and candidate-lane
// details, and docs/CLUSTER.md for when to pick which mode.
//
// Design notes (replica mode; partition mode differs as noted):
//
//   - Updates are routed round-robin at batch granularity, not hashed by
//     item. Linearity makes any assignment of updates to shards correct, and
//     round-robin gives perfect load balance with zero per-item routing cost.
//     Each producer handle keeps its own cursor (staggered at creation), so
//     producers spread across the shard ring without coordinating. In
//     partition mode routing is by column ownership instead — forced, since
//     each shard can apply only the increments whose counters it holds.
//   - Batching amortizes channel synchronization: a producer fills a pair of
//     key/delta columns (BatchSize, default 1024) and hands the pair to a
//     worker whole, so channel overhead is paid once per batch rather than
//     once per item, and the worker passes the columns straight to the
//     replica's UpdateBatch — the batched sketch path over the flat counter
//     layout and the hash kernels of internal/hashing. Drained columns are
//     recycled through a shared free list. Callers that already hold columns
//     (the server's wire decoder, benchmark harnesses) use UpdateColumns and
//     skip the per-record unpacking entirely.
//   - Snapshot uses a barrier protocol: a sync token is enqueued on every
//     shard's (FIFO) channel; each worker acknowledges it after applying all
//     earlier batches and then blocks until the merge has read its replica
//     (partition mode: until its column slice has been copied). Producers
//     keep ingesting while a barrier is in flight — their batches land after
//     the token, so the cut stays consistent without fencing the hot path.
//     Partition-mode batches span shards, so dispatch and barrier addition
//     serialize on an RWMutex to keep each batch on one side of the cut.
//   - Close blocks until every producer handle has been Closed, so the final
//     merge provably contains every produced update (the E11/E12 exactness
//     invariant, verified under `go test -race`).
//   - Replicas never share mutable state and handles never share buffers, so
//     the engine is race-free by construction.
//
// The same replicas could equally live in different processes: the sketch
// types' MarshalBinary/UnmarshalBinary (see internal/sketch) serialize the
// hash seeds alongside the counters, so a deserialized shard merges exactly
// like a local one. Any type satisfying LinearSketch — the four built-in
// families via NewCountMin/NewCountSketch/NewTracker/NewDyadic, or a
// caller's own — gets all of this through NewLinear.
//
// Linearity also runs in reverse: DeltaSnapshot subtracts a retained
// baseline from the current barrier snapshot, yielding a sketch of exactly
// the updates absorbed since the baseline was cut. That difference is what
// gossiping sketchd peers ship instead of full state (internal/server's
// replicator): mostly-zero counters compress well, and the receiving peer
// folds the delta in with the ordinary exact merge. The subtraction happens
// after the barrier releases the workers, so keeping deltas flowing costs
// the ingestion hot path nothing.
package engine
