package chaostest

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

// sketchdBinary builds cmd/sketchd once per test process (the go build
// cache makes repeat calls cheap) and returns the binary path. Tests that
// cannot build — no go tool on PATH — are skipped, not failed.
func sketchdBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "sketchd-chaos-")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "sketchd")
		cmd := exec.Command("go", "build", "-o", buildBin, "repro/cmd/sketchd")
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("go build sketchd: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Skipf("cannot build sketchd binary: %v", buildErr)
	}
	return buildBin
}

// repoRoot walks up from the working directory to the go.mod so `go build`
// resolves the module no matter which package directory the test runs from.
func repoRoot() string {
	dir, err := os.Getwd()
	if err != nil {
		return "."
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

// Node is one sketchd process under harness control. Its listen address is
// reserved before the first start and survives kill/restart cycles, so peer
// lists built from it stay valid across the node's whole chaotic life.
type Node struct {
	t       *testing.T
	Name    string
	Addr    string // host:port, stable across restarts
	DataDir string // -snapshot-dir, survives Kill, cleared by Wipe
	logPath string

	cmd     *exec.Cmd
	logFile *os.File
}

// NewNode reserves a loopback port and a data directory for a daemon named
// name. The process itself is not started until Start.
func NewNode(t *testing.T, name string) *Node {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	n := &Node{
		t:       t,
		Name:    name,
		Addr:    addr,
		DataDir: filepath.Join(t.TempDir(), name),
		logPath: filepath.Join(t.TempDir(), name+".log"),
	}
	if err := os.MkdirAll(n.DataDir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		n.Kill()
		if t.Failed() {
			if log, err := os.ReadFile(n.logPath); err == nil && len(log) > 0 {
				t.Logf("--- %s log ---\n%s", n.Name, log)
			}
		}
	})
	return n
}

// URL is the node's http:// base URL.
func (n *Node) URL() string { return "http://" + n.Addr }

// Client returns an API client aimed at the node.
func (n *Node) Client() *server.Client { return server.NewClient(n.URL(), nil) }

// Start launches the daemon on the node's reserved address with its data
// directory plus any extra flags (peer lists, bootstrap sources, gossip
// cadence). Each restart may pass a different flag set — exactly how an
// operator replaces a node.
func (n *Node) Start(extra ...string) {
	n.t.Helper()
	if n.cmd != nil {
		n.t.Fatalf("%s: Start while already running", n.Name)
	}
	args := append([]string{
		"-addr", n.Addr,
		"-node-id", n.Name,
		"-snapshot-dir", n.DataDir,
	}, extra...)
	cmd := exec.Command(sketchdBinary(n.t), args...)
	log, err := os.OpenFile(n.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		n.t.Fatal(err)
	}
	fmt.Fprintf(log, "--- start %v ---\n", args)
	cmd.Stdout = log
	cmd.Stderr = log
	if err := cmd.Start(); err != nil {
		log.Close()
		n.t.Fatalf("%s: %v", n.Name, err)
	}
	n.cmd = cmd
	n.logFile = log
}

// Kill SIGKILLs the process — no shutdown snapshot, no final gossip push,
// sockets cut mid-whatever. No-op if the node is not running.
func (n *Node) Kill() {
	if n.cmd == nil {
		return
	}
	n.cmd.Process.Kill()
	n.reap(30 * time.Second)
}

// Stop sends SIGTERM and waits for the daemon's graceful shutdown (final
// delta push, shutdown snapshot).
func (n *Node) Stop() {
	n.t.Helper()
	if n.cmd == nil {
		return
	}
	n.cmd.Process.Signal(syscall.SIGTERM)
	if !n.reap(15 * time.Second) {
		n.t.Fatalf("%s: did not exit after SIGTERM", n.Name)
	}
}

// reap waits for the process to exit (with a hard-kill escalation at the
// deadline), then releases the node for the next Start. Reports whether the
// process exited on its own within the deadline.
func (n *Node) reap(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		n.cmd.Wait()
		close(done)
	}()
	graceful := true
	select {
	case <-done:
	case <-time.After(timeout):
		graceful = false
		n.cmd.Process.Kill()
		<-done
	}
	n.logFile.Close()
	n.cmd = nil
	n.logFile = nil
	return graceful
}

// Wipe empties the node's data directory — the disk-died half of a node
// replacement. The node must not be running.
func (n *Node) Wipe() {
	n.t.Helper()
	if n.cmd != nil {
		n.t.Fatalf("%s: Wipe while running", n.Name)
	}
	if err := os.RemoveAll(n.DataDir); err != nil {
		n.t.Fatal(err)
	}
	if err := os.MkdirAll(n.DataDir, 0o755); err != nil {
		n.t.Fatal(err)
	}
}

// WaitHealthy polls /v1/healthz until it answers 200 — the process is up
// and its listener attached (bootstrap may still be pending).
func (n *Node) WaitHealthy() {
	n.t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err := http.Get(n.URL() + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, res.Body)
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			n.t.Fatalf("%s: never became healthy (%v)", n.Name, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// WaitServing polls /v1/stats until the node is past any bootstrap
// ("done", "degraded", or never bootstrapping at all) and returns the
// stats it saw. Fails the test if the node degrades and allowDegraded is
// false.
func (n *Node) WaitServing(allowDegraded bool) server.Stats {
	n.t.Helper()
	client := n.Client()
	ctx := context.Background()
	deadline := time.Now().Add(60 * time.Second)
	for {
		stats, err := client.Stats(ctx)
		if err == nil && stats.Bootstrap != "pending" {
			if stats.Bootstrap == "degraded" && !allowDegraded {
				n.t.Fatalf("%s: bootstrap degraded", n.Name)
			}
			return stats
		}
		if time.Now().After(deadline) {
			n.t.Fatalf("%s: still not serving (stats err %v)", n.Name, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// WaitMass polls the node until its total mass equals want exactly.
// Overshoot fails immediately: replicated mass is linear, so any excess is
// a double-counted delta, and waiting longer would only hide it.
func (n *Node) WaitMass(want float64) {
	n.t.Helper()
	client := n.Client()
	ctx := context.Background()
	deadline := time.Now().Add(60 * time.Second)
	for {
		stats, err := client.Stats(ctx)
		if err == nil {
			if stats.TotalMass == want {
				return
			}
			if stats.TotalMass > want {
				n.t.Fatalf("%s: mass %v overshot %v — a delta was double-counted", n.Name, stats.TotalMass, want)
			}
		}
		if time.Now().After(deadline) {
			n.t.Fatalf("%s: mass never reached %v (err %v)", n.Name, want, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// QueryRaw fetches the /v1/query response for items and returns the raw
// bytes of its "estimates" field — unparsed, so converged nodes can be
// compared for byte-identical answers (the exactness bar: same JSON, not
// just close numbers). The surrounding envelope is stripped because it
// carries the node-local write generation, which legitimately differs.
func (n *Node) QueryRaw(items []uint64) []byte {
	n.t.Helper()
	url := n.URL() + "/v1/query?"
	for i, item := range items {
		if i > 0 {
			url += "&"
		}
		url += fmt.Sprintf("item=%d", item)
	}
	res, err := http.Get(url)
	if err != nil {
		n.t.Fatalf("%s: %v", n.Name, err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		n.t.Fatal(err)
	}
	if res.StatusCode != http.StatusOK {
		n.t.Fatalf("%s: query HTTP %d: %s", n.Name, res.StatusCode, body)
	}
	var envelope struct {
		Estimates json.RawMessage `json:"estimates"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		n.t.Fatalf("%s: query body: %v", n.Name, err)
	}
	return envelope.Estimates
}
