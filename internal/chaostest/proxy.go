// Package chaostest is a fault-injection harness for the sketchd daemon: a
// scriptable TCP proxy that can partition, delay, throttle, half-close and
// kill connections mid-frame, plus a process harness that builds the real
// sketchd binary, launches meshes of it, SIGKILLs nodes at scheduled points
// and asserts the healed mesh answers queries byte-identically to a
// reference daemon that saw the whole stream. The package holds no product
// code — it exists so replication, bootstrap and backoff claims are proven
// against real processes and real sockets, not just in-process handlers.
package chaostest

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Proxy is a TCP relay with scriptable faults, sitting between a sketchd
// client (a replicator, a bootstrap fetch, a test HTTP client) and a target
// daemon. All switches may be flipped while connections are live.
type Proxy struct {
	t      *testing.T
	ln     net.Listener
	target string

	reject    atomic.Bool  // refuse new connections (partition)
	stall     atomic.Bool  // accept and forward nothing (blackhole with the socket held open)
	delay     atomic.Int64 // ns added before each relayed chunk
	throttle  atomic.Int64 // max bytes/sec per direction (0 = unlimited)
	killAfter atomic.Int64 // kill each connection after relaying this many bytes (0 = never)

	mu     sync.Mutex
	conns  map[int64]*proxyConn
	nextID int64
	closed bool
}

type proxyConn struct {
	client net.Conn
	server net.Conn
	moved  atomic.Int64 // bytes relayed across both directions
}

// NewProxy starts a relay on a fresh loopback port forwarding to target
// (host:port). It is torn down by t.Cleanup.
func NewProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &Proxy{t: t, ln: ln, target: target, conns: make(map[int64]*proxyConn)}
	go p.acceptLoop()
	t.Cleanup(p.Close)
	return p
}

// Addr is the host:port clients should dial instead of the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL is the http:// base URL of Addr.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// Reject toggles partition mode: new connections are accepted and
// immediately closed, so dials fail fast. Live connections are untouched.
func (p *Proxy) Reject(on bool) { p.reject.Store(on) }

// Stall toggles blackhole mode: established connections stay open but no
// bytes move in either direction until the stall lifts. A request caught
// mid-flight simply hangs — the shape of a peer that froze rather than died.
func (p *Proxy) Stall(on bool) { p.stall.Store(on) }

// SetDelay adds d of latency before every relayed chunk in each direction.
func (p *Proxy) SetDelay(d time.Duration) { p.delay.Store(int64(d)) }

// SetThrottle caps each direction of each connection to bps bytes/sec
// (0 = unlimited).
func (p *Proxy) SetThrottle(bps int64) { p.throttle.Store(bps) }

// KillAfterBytes arranges for every connection (current and future) to be
// destroyed once it has relayed n total bytes — a transfer or delta frame
// dies mid-body, after the receiver has seen a believable prefix. 0 turns
// the fault off.
func (p *Proxy) KillAfterBytes(n int64) { p.killAfter.Store(n) }

// KillActive destroys every live connection right now, mid-whatever they
// were doing, and reports how many it cut.
func (p *Proxy) KillActive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := len(p.conns)
	for id, pc := range p.conns {
		pc.client.Close()
		pc.server.Close()
		delete(p.conns, id)
	}
	return n
}

// HalfCloseActive shuts down the write side of every live client→server
// direction (the daemon sees EOF on the request stream while its response
// path stays open) — the classic half-open socket a crashed NAT leaves
// behind.
func (p *Proxy) HalfCloseActive() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pc := range p.conns {
		if tc, ok := pc.server.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}
}

// Close stops the listener and destroys all connections.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.ln.Close()
	p.KillActive()
}

func (p *Proxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		if p.reject.Load() {
			client.Close()
			continue
		}
		server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		pc := &proxyConn{client: client, server: server}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			server.Close()
			return
		}
		p.nextID++
		id := p.nextID
		p.conns[id] = pc
		p.mu.Unlock()
		go p.pump(id, pc, client, server)
		go p.pump(id, pc, server, client)
	}
}

// pump relays src→dst in small chunks so mid-frame faults land at
// believable offsets, applying the live delay/throttle/stall/kill settings
// per chunk.
func (p *Proxy) pump(id int64, pc *proxyConn, src, dst net.Conn) {
	buf := make([]byte, 512)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			for p.stall.Load() {
				time.Sleep(2 * time.Millisecond)
			}
			if d := p.delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
			if bps := p.throttle.Load(); bps > 0 {
				time.Sleep(time.Duration(int64(n) * int64(time.Second) / bps))
			}
			moved := pc.moved.Add(int64(n))
			if cut := p.killAfter.Load(); cut > 0 && moved >= cut {
				p.drop(id, pc)
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				p.drop(id, pc)
				return
			}
		}
		if err != nil {
			if err == io.EOF {
				// Propagate the half-close and let the other pump finish.
				if tc, ok := dst.(*net.TCPConn); ok {
					tc.CloseWrite()
				}
				return
			}
			p.drop(id, pc)
			return
		}
	}
}

func (p *Proxy) drop(id int64, pc *proxyConn) {
	p.mu.Lock()
	delete(p.conns, id)
	p.mu.Unlock()
	pc.client.Close()
	pc.server.Close()
}
