//go:build race

package chaostest

// raceEnabled reports whether this test binary was built with -race. The
// soak test spawns real sketchd processes (which the race runtime cannot
// see into anyway) and runs for tens of seconds; under -race it skips so
// the doubled CI race pass spends its time on the in-process tests the
// detector can actually instrument.
const raceEnabled = true
