//go:build !race

package chaostest

const raceEnabled = false
