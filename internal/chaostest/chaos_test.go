package chaostest

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// waitPeerBackoff polls node a's stats until its single peer's backoff
// window satisfies ok, returning the stats that did.
func waitPeerBackoff(t *testing.T, a *Node, ok func(ms int64) bool) server.Stats {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(30 * time.Second)
	for {
		stats, err := a.Client().Stats(ctx)
		if err == nil && len(stats.Peers) == 1 && ok(stats.Peers[0].BackoffMs) {
			return stats
		}
		if time.Now().After(deadline) {
			t.Fatalf("peer backoff never satisfied predicate (stats %+v, err %v)", stats.Peers, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestReplicatorBackoffUnderPartition proves satellite 4 against real
// processes and real sockets: partition a peer link with the chaos proxy
// and the replicator's retry window doubles up to -gossip-backoff-max
// (visible as peer_backoff_ms in /v1/stats) instead of hammering the dead
// link every tick; heal the partition and the backlog ships, the window
// resets to zero, and both daemons answer queries byte-identically.
func TestReplicatorBackoffUnderPartition(t *testing.T) {
	sketchdBinary(t)
	ctx := context.Background()

	b := NewNode(t, "b")
	b.Start("-width", "1024", "-depth", "4", "-k", "32", "-seed", "5")
	proxy := NewProxy(t, b.Addr)
	proxy.Reject(true)
	a := NewNode(t, "a")
	a.Start("-width", "1024", "-depth", "4", "-k", "32", "-seed", "5",
		"-peers", proxy.URL(), "-gossip-every", "25ms", "-gossip-backoff-max", "400ms")
	a.WaitHealthy()
	b.WaitHealthy()

	if err := a.Client().Update(ctx, []engine.Update{{Item: 1, Delta: 1000}}); err != nil {
		t.Fatal(err)
	}

	// The window must grow across failures: catch it small, then at the cap.
	stats := waitPeerBackoff(t, a, func(ms int64) bool { return ms > 0 })
	first := stats.Peers[0].BackoffMs
	stats = waitPeerBackoff(t, a, func(ms int64) bool { return ms >= 400 })
	if first >= 400 {
		t.Logf("first observed window already at the cap (%dms) — growth raced the poll", first)
	}
	if stats.Peers[0].BackoffMs > 400 {
		t.Fatalf("backoff window %dms exceeds the 400ms cap", stats.Peers[0].BackoffMs)
	}
	if stats.Peers[0].LastError == "" {
		t.Fatal("partitioned peer shows no last_error")
	}

	// Heal: the pending frame ships, exactly once, and the window resets.
	proxy.Reject(false)
	b.WaitMass(1000)
	waitPeerBackoff(t, a, func(ms int64) bool { return ms == 0 })

	items := []uint64{1, 2, 3}
	if got, want := a.QueryRaw(items), b.QueryRaw(items); !bytes.Equal(got, want) {
		t.Fatalf("healed peers disagree:\n a: %s\n b: %s", got, want)
	}
}

// TestGossipHealsAfterMidFrameKills cuts the replication link mid-frame —
// every connection dies after 300 relayed bytes, so delta frames are
// repeatedly severed partway through the request body (and sometimes after
// the receiver applied but before the ack got back, the ambiguous case the
// watermark protocol exists for). Once the fault lifts the mesh must
// converge to exactly the ingested mass: nothing lost from the severed
// frames, nothing doubled by the retries of ambiguous ones.
func TestGossipHealsAfterMidFrameKills(t *testing.T) {
	sketchdBinary(t)
	ctx := context.Background()

	b := NewNode(t, "b")
	b.Start("-width", "1024", "-depth", "4", "-k", "32", "-seed", "9")
	proxy := NewProxy(t, b.Addr)
	proxy.KillAfterBytes(300)
	a := NewNode(t, "a")
	a.Start("-width", "1024", "-depth", "4", "-k", "32", "-seed", "9",
		"-peers", proxy.URL(), "-gossip-every", "20ms", "-gossip-backoff-max", "150ms")
	a.WaitHealthy()
	b.WaitHealthy()

	if err := a.Client().Update(ctx, []engine.Update{{Item: 7, Delta: 500}, {Item: 8, Delta: 250}}); err != nil {
		t.Fatal(err)
	}
	// Let several frames die mid-body before healing.
	waitPeerBackoff(t, a, func(ms int64) bool { return ms > 0 })
	proxy.KillAfterBytes(0)
	b.WaitMass(750)

	// Second round: sever live connections at random moments while the next
	// backlog drains.
	if err := a.Client().Update(ctx, []engine.Update{{Item: 9, Delta: 300}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		time.Sleep(15 * time.Millisecond)
		proxy.KillActive()
	}
	b.WaitMass(1050)

	items := []uint64{7, 8, 9}
	if got, want := a.QueryRaw(items), b.QueryRaw(items); !bytes.Equal(got, want) {
		t.Fatalf("healed peers disagree:\n a: %s\n b: %s", got, want)
	}
}
