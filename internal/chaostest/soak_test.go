package chaostest

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/engine"
)

// TestSoakKillRestartBootstrapMesh is the end-to-end node-replacement soak:
// a three-daemon gossip mesh ingests a deterministic stream that is
// mirrored into a standalone reference daemon, and each node is SIGKILLed
// once, wiped, and restarted with -bootstrap-from while the stream keeps
// flowing through the survivors. One replacement is additionally killed
// *during* its own bootstrap (mid state transfer, reads still gated) and
// replaced again. At the end every node must hold exactly the reference
// mass and answer a dense /v1/query byte-identically to the reference —
// the linearity bar: a mesh that lost and replaced every member is
// indistinguishable from one process that saw the whole stream.
func TestSoakKillRestartBootstrapMesh(t *testing.T) {
	if raceEnabled {
		t.Skip("soak spawns subprocesses the race detector cannot instrument; skipped under -race")
	}
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	sketchdBinary(t)
	ctx := context.Background()

	common := []string{"-width", "2048", "-depth", "4", "-k", "48", "-seed", "7"}
	ref := NewNode(t, "ref")
	ref.Start(common...)

	nodes := []*Node{NewNode(t, "n0"), NewNode(t, "n1"), NewNode(t, "n2")}
	peersOf := func(i int) string {
		var urls []string
		for j, n := range nodes {
			if j != i {
				urls = append(urls, n.URL())
			}
		}
		return strings.Join(urls, ",")
	}
	meshArgs := func(i int) []string {
		return append(append([]string{}, common...),
			"-peers", peersOf(i),
			"-gossip-every", "40ms",
			"-gossip-backoff-max", "300ms",
			"-bootstrap-retry", "200ms")
	}
	for i, n := range nodes {
		n.Start(meshArgs(i)...)
	}
	ref.WaitHealthy()
	for _, n := range nodes {
		n.WaitHealthy()
	}

	// Deterministic stream: every chunk ingested by some mesh node is also
	// ingested by the reference, synchronously, so the expected totals are
	// exact at every point no matter which nodes are alive.
	var lcg uint64 = 0x9E3779B97F4A7C15
	var expected float64
	feed := func(n *Node, chunks int) {
		t.Helper()
		for c := 0; c < chunks; c++ {
			updates := make([]engine.Update, 400)
			for j := range updates {
				lcg = lcg*6364136223846793005 + 1442695040888963407
				updates[j] = engine.Update{Item: (lcg >> 33) % 2048, Delta: 1}
			}
			if err := n.Client().Update(ctx, updates); err != nil {
				t.Fatalf("feed %s: %v", n.Name, err)
			}
			if err := ref.Client().Update(ctx, updates); err != nil {
				t.Fatalf("feed ref: %v", err)
			}
			expected += 400
		}
	}
	// quiesce waits until gossip has drained: every live mesh node holds
	// exactly the reference mass. Called before a kill so the victim's
	// in-flight contribution is zero (an update severed inside a dying
	// process is unobservable; the protocol's ambiguity handling is
	// exercised on the gossip links instead, where it is observable).
	quiesce := func() {
		t.Helper()
		for _, n := range nodes {
			n.WaitMass(expected)
		}
	}

	// Warm-up: all three lanes ingest and gossip.
	for _, n := range nodes {
		feed(n, 5)
	}

	for i, victim := range nodes {
		quiesce()
		victim.Kill()
		victim.Wipe()
		s1, s2 := nodes[(i+1)%3], nodes[(i+2)%3]
		// The stream does not stop because a node died.
		feed(s1, 3)
		feed(s2, 3)

		if i == len(nodes)-1 {
			// This replacement is itself killed mid-bootstrap: point it at a
			// stalled transfer, verify it gates reads while pending, then
			// SIGKILL it with the transfer still hanging. A half-finished
			// bootstrap must leave nothing behind — the next restart pulls a
			// fresh transfer and converges exactly.
			stall := NewProxy(t, s1.Addr)
			stall.Stall(true)
			victim.Start(append(meshArgs(i), "-bootstrap-from", stall.URL())...)
			victim.WaitHealthy()
			res, err := http.Get(victim.URL() + "/v1/query?item=1")
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, res.Body)
			res.Body.Close()
			if res.StatusCode != http.StatusServiceUnavailable {
				t.Fatalf("query during bootstrap: HTTP %d, want 503", res.StatusCode)
			}
			stats, err := victim.Client().Stats(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Bootstrap != "pending" {
				t.Fatalf("bootstrap = %q while the transfer is stalled, want pending", stats.Bootstrap)
			}
			feed(s1, 2)
			victim.Kill()
			stall.Close()
		}

		victim.Start(append(meshArgs(i), "-bootstrap-from", peersOf(i))...)
		victim.WaitHealthy()
		stats := victim.WaitServing(false)
		if stats.Bootstrap != "done" {
			t.Fatalf("%s: bootstrap = %q after replacement, want done", victim.Name, stats.Bootstrap)
		}
		if stats.BootstrapSource == "" {
			t.Fatalf("%s: no bootstrap_source recorded", victim.Name)
		}
		// The replaced node rejoins the ingest rotation immediately.
		feed(s2, 2)
		feed(victim, 3)
	}

	quiesce()
	refStats, err := ref.Client().Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if refStats.TotalMass != expected {
		t.Fatalf("reference mass %v, want %v — the harness itself dropped a chunk", refStats.TotalMass, expected)
	}

	// The exactness bar: dense estimates byte-identical to the reference.
	items := make([]uint64, 64)
	for i := range items {
		items[i] = uint64(i * 31 % 2048)
	}
	want := ref.QueryRaw(items)
	for _, n := range nodes {
		if got := n.QueryRaw(items); !bytes.Equal(got, want) {
			t.Fatalf("%s: dense query diverged from the reference\n got: %s\nwant: %s", n.Name, got, want)
		}
	}
}
