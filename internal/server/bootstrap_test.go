package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// TestBootstrapResponseCodec: SKP1 round-trips exactly, re-encoding a decoded
// payload is a fixed point (canonical sorted sections), and every forged or
// truncated header is refused before any large allocation.
func TestBootstrapResponseCodec(t *testing.T) {
	payload := BootstrapPayload{
		NodeID:     "node-a",
		LocalGen:   42,
		Watermarks: map[string]uint64{"node-a": 42, "node-b": 7, "node-c": 0},
		Snapshot:   []byte("snapshot-bytes-stand-in"),
		Senders: map[string][]byte{
			"node-a": []byte("tracker-a"),
			"node-b": []byte("tracker-b"),
		},
	}
	enc, err := AppendBootstrapResponse(nil, payload)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeBootstrapResponse(enc, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NodeID != payload.NodeID || dec.LocalGen != payload.LocalGen {
		t.Fatalf("identity round trip: got %q gen %d", dec.NodeID, dec.LocalGen)
	}
	if len(dec.Watermarks) != 3 || dec.Watermarks["node-b"] != 7 {
		t.Fatalf("watermark round trip: %v", dec.Watermarks)
	}
	if !bytes.Equal(dec.Snapshot, payload.Snapshot) {
		t.Fatal("snapshot bytes changed in round trip")
	}
	if len(dec.Senders) != 2 || !bytes.Equal(dec.Senders["node-b"], []byte("tracker-b")) {
		t.Fatalf("sender sections round trip: %v", dec.Senders)
	}
	reenc, err := AppendBootstrapResponse(nil, *dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, reenc) {
		t.Fatal("re-encoding a decoded payload is not a fixed point")
	}

	corrupt := func(mutate func([]byte) []byte) []byte {
		c := mutate(append([]byte(nil), enc...))
		return c
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"truncated header", enc[:6]},
		{"truncated body", enc[:len(enc)-9]},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"bad version", corrupt(func(b []byte) []byte { b[4] = 99; return b })},
		{"bad flags", corrupt(func(b []byte) []byte { b[5] = 1; return b })},
		{"flipped payload byte", corrupt(func(b []byte) []byte { b[len(b)-10] ^= 0x40; return b })},
		{"flipped crc", corrupt(func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })},
	}
	for _, tc := range cases {
		if _, err := DecodeBootstrapResponse(tc.data, 0); err == nil {
			t.Errorf("%s: decode accepted corrupt input", tc.name)
		}
	}
	// A section cap below the snapshot size must refuse the declared length.
	if _, err := DecodeBootstrapResponse(enc, 4); err == nil {
		t.Error("section cap was not enforced")
	}
}

// waitForServing polls a node's stats until its bootstrap completes ("done")
// or fails the test on degradation or timeout.
func waitForServing(t *testing.T, client *Client) Stats {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(30 * time.Second)
	for {
		stats, err := client.Stats(ctx)
		if err == nil {
			switch stats.Bootstrap {
			case "done":
				return stats
			case "degraded":
				t.Fatal("bootstrap degraded instead of completing")
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("bootstrap did not complete (last stats error: %v)", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBootstrapDuringLiveGossip: a blank node joins a two-node mesh that is
// ingesting and gossiping continuously, pulls its state transfer from one
// peer, then ingests its own share of the stream — and the whole mesh still
// converges to exactly the reference sketch: no lost mass, no doubled mass
// (waitForMass fails on overshoot), even though the joiner's watermarks were
// installed by the transfer rather than earned frame by frame.
func TestBootstrapDuringLiveGossip(t *testing.T) {
	cfg := Config{
		Width: 1024, Depth: 4, K: 48, Seed: 19,
		Engine:           engine.Config{Workers: 2, BatchSize: 101},
		Producers:        2,
		GossipEvery:      10 * time.Millisecond,
		GossipBackoffMax: 40 * time.Millisecond,
	}
	ctx := context.Background()

	listeners := make([]net.Listener, 3)
	urls := make([]string, 3)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	start := func(i int, mutate func(*Config)) *Client {
		nodeCfg := cfg
		nodeCfg.NodeID = fmt.Sprintf("node-%d", i)
		for j, u := range urls {
			if j != i {
				nodeCfg.Peers = append(nodeCfg.Peers, u)
			}
		}
		if mutate != nil {
			mutate(&nodeCfg)
		}
		srv, err := New(nodeCfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(listeners[i])
		t.Cleanup(func() { hs.Close(); srv.Close() })
		return NewClient(urls[i], nil)
	}

	clients := make([]*Client, 3)
	clients[0] = start(0, nil)
	clients[1] = start(1, nil)

	reference := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	s := stream.Zipf(xrand.New(211), 1<<15, 36_000, 1.1)
	for _, u := range s.Updates {
		reference.Update(u.Item, float64(u.Delta))
	}
	slices := make([][]engine.Update, 3)
	for i, u := range s.Updates {
		slices[i%3] = append(slices[i%3], engine.Update{Item: u.Item, Delta: float64(u.Delta)})
	}
	feed := func(i, from, to int) {
		t.Helper()
		own := slices[i]
		for start := from; start < to && start < len(own); start += 600 {
			end := min(start+600, len(own))
			if err := clients[i].Update(ctx, own[start:end]); err != nil {
				t.Fatal(err)
			}
		}
	}

	// First half on A and B only — live gossip traffic for the joiner to
	// bootstrap into the middle of.
	half := len(slices[0]) / 2
	feed(0, 0, half)
	feed(1, 0, half)

	// The joiner pulls its transfer from node 0 while both peers keep
	// pushing deltas (to it too — its listener was failing until now, so the
	// peers arrive with pending frames and backoff state).
	clients[2] = start(2, func(c *Config) { c.BootstrapFrom = []string{urls[0]} })
	joined := waitForServing(t, clients[2])
	if joined.BootstrapSource != urls[0] {
		t.Fatalf("bootstrap source = %q, want %q", joined.BootstrapSource, urls[0])
	}

	// Second half everywhere, plus the joiner's own full slice.
	feed(0, half, len(slices[0]))
	feed(1, half, len(slices[1]))
	feed(2, 0, len(slices[2]))

	for i, client := range clients {
		waitForMass(t, &gossipNode{client: client, url: urls[i]}, reference.TotalMass())
	}
	items := make([]uint64, 0, 16)
	for _, hh := range reference.TopK() {
		items = append(items, hh.Item)
		if len(items) == 16 {
			break
		}
	}
	want, err := clients[0].Query(ctx, items...)
	if err != nil {
		t.Fatal(err)
	}
	for i, client := range clients {
		got, err := client.Query(ctx, items...)
		if err != nil {
			t.Fatal(err)
		}
		for j := range items {
			if got[j] != reference.Estimate(items[j]) || got[j] != want[j] {
				t.Fatalf("node %d item %d: estimate %v, reference %v, node0 %v",
					i, items[j], got[j], reference.Estimate(items[j]), want[j])
			}
		}
	}
}

// TestBootstrapSourceDiesMidTransfer: sources that serve a truncated (CRC-
// failing) transfer or cut the connection outright must not poison the
// joiner — it retries down the source list, absorbs nothing until a decode
// succeeds end to end, and lands with exactly the healthy source's state.
func TestBootstrapSourceDiesMidTransfer(t *testing.T) {
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 23}
	ctx := context.Background()

	source, sourceClient := testDaemon(t, cfg)
	if err := sourceClient.Update(ctx, []engine.Update{{Item: 1, Delta: 100}, {Item: 2, Delta: 50}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sourceClient.PushDelta(ctx, DeltaFrame{
		Sender: "origin", FromGen: 0, ToGen: 5,
		Payload: func() []byte {
			sk := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
			sk.Update(3, 7)
			return deltaPayloadFor(t, sk)
		}(),
	}); err != nil {
		t.Fatal(err)
	}
	_ = source

	// A source that answers 200 with a transfer whose tail is cut off: the
	// CRC check must reject it.
	truncating := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		full, err := AppendBootstrapResponse(nil, BootstrapPayload{
			NodeID: "liar", LocalGen: 9, Snapshot: []byte("partial"),
		})
		if err != nil {
			t.Error(err)
		}
		w.Header().Set("Content-Type", contentTypeBootstrap)
		w.Write(full[:len(full)-3])
	}))
	t.Cleanup(truncating.Close)
	// A source whose connection dies mid-transfer.
	dying := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err != nil {
			t.Error(err)
			return
		}
		conn.Close()
	}))
	t.Cleanup(dying.Close)

	joinCfg := cfg
	joinCfg.NodeID = "joiner"
	joinCfg.BootstrapFrom = []string{truncating.URL, dying.URL, sourceClient.base}
	joinCfg.BootstrapRetryWait = 10 * time.Millisecond
	joiner, joinerClient := testDaemon(t, joinCfg)
	_ = joiner

	stats := waitForServing(t, joinerClient)
	if stats.BootstrapSource != sourceClient.base {
		t.Fatalf("bootstrap source = %q, want the healthy daemon %q", stats.BootstrapSource, sourceClient.base)
	}
	if stats.BootstrapFailures < 2 {
		t.Fatalf("bootstrap_failures = %d, want >= 2 (both broken sources tried)", stats.BootstrapFailures)
	}
	srcStats, err := sourceClient.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMass != srcStats.TotalMass {
		t.Fatalf("joiner mass %v != source mass %v", stats.TotalMass, srcStats.TotalMass)
	}
	got, err := joinerClient.Query(ctx, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 100 || got[1] != 50 || got[2] != 7 {
		t.Fatalf("joiner estimates %v, want [100 50 7]", got)
	}
	if stats.Watermarks["origin"] != 5 {
		t.Fatalf("joiner watermark for origin = %d, want 5 (installed from transfer)", stats.Watermarks["origin"])
	}
}

// TestBootstrapGatesAPIAndDegrades: while the transfer is pending every
// /v1/* endpoint except healthz and stats answers 503 bootstrap_pending; a
// node whose every source stays broken eventually degrades to serving empty
// state rather than staying down forever.
func TestBootstrapGatesAPIAndDegrades(t *testing.T) {
	release := make(chan struct{})
	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		http.Error(w, "no transfer for you", http.StatusInternalServerError)
	}))
	t.Cleanup(func() { close(release); stuck.Close() })

	cfg := Config{
		Width: 512, Depth: 4, K: 16, Seed: 31,
		NodeID:             "gated",
		BootstrapFrom:      []string{stuck.URL},
		BootstrapAttempts:  2,
		BootstrapRetryWait: 10 * time.Millisecond,
	}
	srv, client := testDaemon(t, cfg)
	_ = srv
	ctx := context.Background()

	// Gated while pending: reads and writes 503, liveness and stats open.
	res, err := http.Get(client.base + "/v1/query?item=1")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while bootstrapping: HTTP %d, want 503", res.StatusCode)
	}
	if err := client.Update(ctx, []engine.Update{{Item: 1, Delta: 1}}); err == nil {
		t.Fatal("update accepted while bootstrapping")
	} else {
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable || apiErr.Detail != "bootstrap_pending" {
			t.Fatalf("update while bootstrapping: %v, want 503 with detail bootstrap_pending", err)
		}
	}
	res, err = http.Get(client.base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz while bootstrapping: HTTP %d, want 200", res.StatusCode)
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bootstrap != "pending" {
		t.Fatalf("stats.bootstrap = %q while pending", stats.Bootstrap)
	}

	// Let both rounds fail; the node must open up empty rather than hang.
	release <- struct{}{}
	release <- struct{}{}
	deadline := time.Now().Add(30 * time.Second)
	for {
		stats, err = client.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Bootstrap == "degraded" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("node never degraded (bootstrap=%q, failures=%d)", stats.Bootstrap, stats.BootstrapFailures)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if stats.BootstrapFailures != 2 {
		t.Fatalf("bootstrap_failures = %d, want 2", stats.BootstrapFailures)
	}
	if err := client.Update(ctx, []engine.Update{{Item: 1, Delta: 3}}); err != nil {
		t.Fatalf("update after degradation: %v", err)
	}
	got, err := client.Query(ctx, 1)
	if err != nil {
		t.Fatalf("query after degradation: %v", err)
	}
	if got[0] != 3 {
		t.Fatalf("estimate after degradation = %v, want 3 (empty start plus the update)", got[0])
	}
}

// TestReplaceFrameHealsDivergence: the replace-frame protocol end to end on
// one receiver — a tracked sender whose window diverged gets the replace
// offer in the 409, the replace frame swaps its contribution in exactly
// (no loss, no double count), retrying it is a no-op, and a receiver whose
// trackers are unusable (recovered without the sidecar) refuses it.
func TestReplaceFrameHealsDivergence(t *testing.T) {
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 37}
	_, client := testDaemon(t, cfg)
	ctx := context.Background()

	mkSketch := func(pairs ...float64) *sketch.HeavyHitterTracker {
		sk := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
		for i := 0; i+1 < len(pairs); i += 2 {
			sk.Update(uint64(pairs[i]), pairs[i+1])
		}
		return sk
	}

	resp, err := client.PushDelta(ctx, DeltaFrame{
		Sender: "x", FromGen: 0, ToGen: 5, Payload: deltaPayloadFor(t, mkSketch(1, 100)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Applied || !resp.CanReplace {
		t.Fatalf("first frame: %+v, want applied with can_replace", resp)
	}

	// A frame whose window does not start at the mark: refused with the
	// replace offer, counters untouched.
	_, err = client.PushDelta(ctx, DeltaFrame{
		Sender: "x", FromGen: 7, ToGen: 9, Payload: deltaPayloadFor(t, mkSketch(2, 50)),
	})
	if !isWatermarkConflict(err) {
		t.Fatalf("diverged frame: %v, want 409", err)
	}
	if !conflictAllowsReplace(err) {
		t.Fatalf("diverged frame 409 lacks the replace offer: %v", err)
	}

	// The replace frame carries the sender's entire local sketch; the
	// receiver nets out what it already holds.
	full := mkSketch(1, 100, 2, 50)
	resp, err = client.PushDelta(ctx, DeltaFrame{
		Sender: "x", ToGen: 9, Replace: true, Payload: deltaPayloadFor(t, full),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Applied || resp.Watermark != 9 {
		t.Fatalf("replace frame: %+v, want applied at watermark 9", resp)
	}
	got, err := client.Query(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 100 || got[1] != 50 {
		t.Fatalf("after replace: estimates %v, want [100 50]", got)
	}

	// Retrying the replace (its ack could have been lost) must not double.
	resp, err = client.PushDelta(ctx, DeltaFrame{
		Sender: "x", ToGen: 9, Replace: true, Payload: deltaPayloadFor(t, full),
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Applied {
		t.Fatal("replace retry was re-applied")
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMass != 150 {
		t.Fatalf("total mass after replace retry = %v, want 150", stats.TotalMass)
	}
	if stats.DeltasReplaced != 1 {
		t.Fatalf("deltas_replaced = %d, want 1", stats.DeltasReplaced)
	}

	// A receiver that recovered without the sender sidecar cannot attribute
	// its counters per sender: replace must be refused, without the offer.
	dir := t.TempDir()
	recCfg := cfg
	recCfg.SnapshotDir = dir
	srv1, err := New(recCfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1.Handler())
	c1 := NewClient(hs1.URL, hs1.Client())
	if _, err := c1.PushDelta(ctx, DeltaFrame{
		Sender: "y", FromGen: 0, ToGen: 4, Payload: deltaPayloadFor(t, mkSketch(5, 9)),
	}); err != nil {
		t.Fatal(err)
	}
	hs1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, SendersFileName)); err != nil {
		t.Fatal(err)
	}
	srv2, err := New(recCfg)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() { hs2.Close(); srv2.Close() })
	c2 := NewClient(hs2.URL, hs2.Client())

	_, err = c2.PushDelta(ctx, DeltaFrame{
		Sender: "y", FromGen: 7, ToGen: 9, Payload: deltaPayloadFor(t, mkSketch(6, 1)),
	})
	if !isWatermarkConflict(err) {
		t.Fatalf("diverged frame on untracked receiver: %v, want 409", err)
	}
	if conflictAllowsReplace(err) {
		t.Fatal("untracked receiver offered a replace it cannot apply")
	}
	_, err = c2.PushDelta(ctx, DeltaFrame{
		Sender: "y", ToGen: 9, Replace: true, Payload: deltaPayloadFor(t, mkSketch(5, 9, 6, 1)),
	})
	if !isWatermarkConflict(err) {
		t.Fatalf("replace on untracked receiver: %v, want 409 refusal", err)
	}
}

// TestResetRefusedOnHearsayMark: a bootstrapped node's watermarks are
// installed, not earned — a reset-to-0 from such a sender is refused with
// the replace offer (the sender may never have restarted at all; it just
// never acked this virgin link), and the subsequent replace lands the
// sender's full state without doubling what the transfer already carried.
func TestResetRefusedOnHearsayMark(t *testing.T) {
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 41}
	ctx := context.Background()

	mkSketch := func(pairs ...float64) *sketch.HeavyHitterTracker {
		sk := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
		for i := 0; i+1 < len(pairs); i += 2 {
			sk.Update(uint64(pairs[i]), pairs[i+1])
		}
		return sk
	}

	// The source holds 80 mass received from sender "b" at watermark 6.
	_, sourceClient := testDaemon(t, cfg)
	if _, err := sourceClient.PushDelta(ctx, DeltaFrame{
		Sender: "b", FromGen: 0, ToGen: 6, Payload: deltaPayloadFor(t, mkSketch(1, 80)),
	}); err != nil {
		t.Fatal(err)
	}

	joinCfg := cfg
	joinCfg.NodeID = "joiner"
	joinCfg.BootstrapFrom = []string{sourceClient.base}
	_, joinerClient := testDaemon(t, joinCfg)
	stats := waitForServing(t, joinerClient)
	if stats.Watermarks["b"] != 6 {
		t.Fatalf("joiner watermark for b = %d, want 6", stats.Watermarks["b"])
	}

	// "b" (which never restarted — the joiner just outran this virgin link
	// by bootstrapping) probes with a reset-to-0. Accepting would let b
	// re-ship the 80 the transfer already delivered.
	_, err := joinerClient.PushDelta(ctx, DeltaFrame{Sender: "b", Reset: true})
	if !isWatermarkConflict(err) {
		t.Fatalf("reset-to-0 on hearsay mark: %v, want 409", err)
	}
	if !conflictAllowsReplace(err) {
		t.Fatalf("hearsay reset refusal lacks the replace offer: %v", err)
	}

	// The replace carries b's full local state (the 80 plus 20 new): the
	// joiner nets out the transfer's copy.
	resp, err := joinerClient.PushDelta(ctx, DeltaFrame{
		Sender: "b", ToGen: 8, Replace: true, Payload: deltaPayloadFor(t, mkSketch(1, 80, 2, 20)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Applied || resp.Watermark != 8 {
		t.Fatalf("replace after refusal: %+v", resp)
	}
	got, err := joinerClient.Query(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 80 || got[1] != 20 {
		t.Fatalf("joiner estimates %v, want [80 20]", got)
	}

	// The mark is earned now: a genuine restart's reset-to-0 is accepted.
	resp, err = joinerClient.PushDelta(ctx, DeltaFrame{Sender: "b", Reset: true})
	if err != nil {
		t.Fatalf("reset-to-0 after the mark was earned: %v", err)
	}
	if resp.Applied || resp.Watermark != 0 {
		t.Fatalf("earned reset: %+v, want no-op ack at watermark 0", resp)
	}
}

// TestReplaceFromWipedSenderKeepsHistory: a sender that was wiped and
// restarted arrives at a bootstrapped receiver with a generation counter
// *behind* the hearsay mark the transfer installed for it. Its replace
// frame must not subtract the previous incarnation's tracked mass — that is
// settled history, kept exactly as an accepted reset-to-0 would keep it —
// while the new incarnation's state is absorbed in full and anchors the
// link at the sender's true (lower) generation.
func TestReplaceFromWipedSenderKeepsHistory(t *testing.T) {
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 53}
	ctx := context.Background()

	mkSketch := func(pairs ...float64) *sketch.HeavyHitterTracker {
		sk := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
		for i := 0; i+1 < len(pairs); i += 2 {
			sk.Update(uint64(pairs[i]), pairs[i+1])
		}
		return sk
	}

	// The source holds 80 mass from sender "b" at watermark 6; the joiner's
	// transfer installs that as a hearsay mark plus b's tracker.
	_, sourceClient := testDaemon(t, cfg)
	if _, err := sourceClient.PushDelta(ctx, DeltaFrame{
		Sender: "b", FromGen: 0, ToGen: 6, Payload: deltaPayloadFor(t, mkSketch(1, 80)),
	}); err != nil {
		t.Fatal(err)
	}
	joinCfg := cfg
	joinCfg.NodeID = "joiner"
	joinCfg.BootstrapFrom = []string{sourceClient.base}
	_, joinerClient := testDaemon(t, joinCfg)
	waitForServing(t, joinerClient)

	// "b" was wiped and restarted: its reset-to-0 is refused (hearsay), and
	// its replace carries only the new incarnation's 20 mass at generation 2.
	_, err := joinerClient.PushDelta(ctx, DeltaFrame{Sender: "b", Reset: true})
	if !conflictAllowsReplace(err) {
		t.Fatalf("reset-to-0 on hearsay mark: %v, want 409 with the replace offer", err)
	}
	resp, err := joinerClient.PushDelta(ctx, DeltaFrame{
		Sender: "b", ToGen: 2, Replace: true, Payload: deltaPayloadFor(t, mkSketch(2, 20)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Applied || resp.Watermark != 2 {
		t.Fatalf("replace from wiped sender: %+v, want applied at the sender's true watermark 2", resp)
	}
	got, err := joinerClient.Query(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 80 || got[1] != 20 {
		t.Fatalf("estimates %v, want [80 20] (old incarnation kept, new absorbed)", got)
	}

	// The link is anchored at the new incarnation now: its next window
	// chains off generation 2, and another replace nets against the new
	// tracker only (the 80 stays settled).
	if _, err := joinerClient.PushDelta(ctx, DeltaFrame{
		Sender: "b", FromGen: 2, ToGen: 3, Payload: deltaPayloadFor(t, mkSketch(3, 5)),
	}); err != nil {
		t.Fatalf("chained frame after wiped-sender replace: %v", err)
	}
	resp, err = joinerClient.PushDelta(ctx, DeltaFrame{
		Sender: "b", ToGen: 7, Replace: true, Payload: deltaPayloadFor(t, mkSketch(2, 20, 3, 5, 4, 9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Applied {
		t.Fatalf("second replace: %+v", resp)
	}
	got, err = joinerClient.Query(ctx, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 80 || got[1] != 20 || got[2] != 5 || got[3] != 9 {
		t.Fatalf("estimates %v, want [80 20 5 9]", got)
	}
}

// TestBootstrapPartialCrashResync: a crash between the snapshot rename and
// the watermark rename leaves counters newer than the persisted marks. On
// restart the node must not silently skip the gap — the sender's next frame
// 409s, and because the sender sidecar was cut with the surviving snapshot,
// the refusal carries the replace offer and one replace frame heals the
// window exactly.
func TestBootstrapPartialCrashResync(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 43, SnapshotDir: dir}
	ctx := context.Background()

	mkSketch := func(pairs ...float64) *sketch.HeavyHitterTracker {
		sk := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
		for i := 0; i+1 < len(pairs); i += 2 {
			sk.Update(uint64(pairs[i]), pairs[i+1])
		}
		return sk
	}
	restart := func() (*Server, *Client, func()) {
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		return srv, NewClient(hs.URL, hs.Client()), func() { hs.Close(); srv.Close() }
	}

	// Generation 1: mark 5, 100 mass; persisted cleanly on Close.
	srv1, c1, stop1 := restart()
	_ = srv1
	if _, err := c1.PushDelta(ctx, DeltaFrame{
		Sender: "origin", FromGen: 0, ToGen: 5, Payload: deltaPayloadFor(t, mkSketch(1, 100)),
	}); err != nil {
		t.Fatal(err)
	}
	stop1()
	staleMarks, err := os.ReadFile(filepath.Join(dir, WatermarkFileName))
	if err != nil {
		t.Fatal(err)
	}

	// Generation 2: mark 9, 150 mass; then simulate the crash window by
	// putting the generation-1 watermark file back next to the newer
	// snapshot and sidecar.
	srv2, c2, stop2 := restart()
	_ = srv2
	if _, err := c2.PushDelta(ctx, DeltaFrame{
		Sender: "origin", FromGen: 5, ToGen: 9, Payload: deltaPayloadFor(t, mkSketch(2, 50)),
	}); err != nil {
		t.Fatal(err)
	}
	stop2()
	if err := os.WriteFile(filepath.Join(dir, WatermarkFileName), staleMarks, 0o644); err != nil {
		t.Fatal(err)
	}

	// Generation 3 recovers 150 mass against a mark of 5. The sender's next
	// in-sequence frame (from its point of view) must 409, not silently
	// skip (5,9] again or double-apply it.
	srv3, c3, stop3 := restart()
	_ = srv3
	defer stop3()
	stats, err := c3.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMass != 150 {
		t.Fatalf("recovered mass %v, want 150", stats.TotalMass)
	}
	if stats.Watermarks["origin"] != 5 {
		t.Fatalf("recovered watermark %d, want the stale 5", stats.Watermarks["origin"])
	}
	_, err = c3.PushDelta(ctx, DeltaFrame{
		Sender: "origin", FromGen: 9, ToGen: 12, Payload: deltaPayloadFor(t, mkSketch(3, 7)),
	})
	if !isWatermarkConflict(err) {
		t.Fatalf("post-crash frame: %v, want 409", err)
	}
	if !conflictAllowsReplace(err) {
		t.Fatalf("post-crash 409 lacks the replace offer: %v", err)
	}
	resp, err := c3.PushDelta(ctx, DeltaFrame{
		Sender: "origin", ToGen: 12, Replace: true,
		Payload: deltaPayloadFor(t, mkSketch(1, 100, 2, 50, 3, 7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Applied || resp.Watermark != 12 {
		t.Fatalf("healing replace: %+v", resp)
	}
	got, err := c3.Query(ctx, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 100 || got[1] != 50 || got[2] != 7 {
		t.Fatalf("healed estimates %v, want [100 50 7]", got)
	}
	stats, err = c3.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMass != 157 {
		t.Fatalf("healed mass %v, want 157 (no loss, no double count)", stats.TotalMass)
	}
}

// TestBootstrapSkipsStaleSnapshot: a snapshot whose watermark sidecar is
// missing is "stale" when bootstrap sources are configured — the node
// prefers a fresh transfer over rejoining with counters that would force
// every sender through a lossy resync.
func TestBootstrapSkipsStaleSnapshot(t *testing.T) {
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 47}
	ctx := context.Background()

	_, sourceClient := testDaemon(t, cfg)
	if err := sourceClient.Update(ctx, []engine.Update{{Item: 1, Delta: 100}}); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	nodeCfg := cfg
	nodeCfg.SnapshotDir = dir
	srv1, c1, err := func() (*Server, *Client, error) {
		srv, err := New(nodeCfg)
		if err != nil {
			return nil, nil, err
		}
		hs := httptest.NewServer(srv.Handler())
		t.Cleanup(hs.Close)
		return srv, NewClient(hs.URL, hs.Client()), nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Update(ctx, []engine.Update{{Item: 9, Delta: 999}}); err != nil {
		t.Fatal(err)
	}
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	// Doctor the crash: the snapshot survived, the watermark file did not.
	if err := os.Remove(filepath.Join(dir, WatermarkFileName)); err != nil {
		t.Fatal(err)
	}

	nodeCfg.NodeID = "rejoiner"
	nodeCfg.BootstrapFrom = []string{sourceClient.base}
	srv2, err := New(nodeCfg)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() { hs2.Close(); srv2.Close() })
	c2 := NewClient(hs2.URL, hs2.Client())

	stats := waitForServing(t, c2)
	if stats.TotalMass != 100 {
		t.Fatalf("rejoined mass %v, want the source's 100 (stale snapshot must not be absorbed)", stats.TotalMass)
	}
	got, err := c2.Query(ctx, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatalf("stale snapshot's mass leaked through: estimate %v", got[0])
	}
}
