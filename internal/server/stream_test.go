package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// streamDaemon is testDaemon plus a raw TCP stream listener: the server, an
// HTTP client for it, and the stream listener's address.
func streamDaemon(t *testing.T, cfg Config) (*Server, *Client, string) {
	t.Helper()
	srv, client := testDaemon(t, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeStream(ln)
	return srv, client, ln.Addr().String()
}

func TestStreamFrameRoundTrip(t *testing.T) {
	frames := []StreamFrame{
		{Type: streamFrameHello, Payload: []byte("session-a")},
		{Type: streamFrameAck, Payload: binary.BigEndian.AppendUint64(binary.BigEndian.AppendUint64(nil, 7), 42)},
		{Type: streamFrameError, Payload: []byte("boom")},
		{Type: streamFrameData, AckReq: true, Payload: append(binary.BigEndian.AppendUint64(nil, 1), AppendBatchColumns(nil, []uint64{3, 5}, []float64{1, -2})...)},
		{Type: streamFrameData, Payload: append(binary.BigEndian.AppendUint64(nil, 2), AppendBatchColumns(nil, nil, nil)...)},
	}
	var wire []byte
	for _, f := range frames {
		wire = AppendStreamFrame(wire, f)
	}

	// Byte-slice decoding walks the concatenation frame by frame.
	rest := wire
	for i, want := range frames {
		got, n, err := DecodeStreamFrame(rest, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.AckReq != want.AckReq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d round-trip mismatch: got %+v want %+v", i, got, want)
		}
		// Re-encoding is a fixed point of the wire bytes.
		if re := AppendStreamFrame(nil, got); !bytes.Equal(re, rest[:n]) {
			t.Fatalf("frame %d re-encode differs from wire bytes", i)
		}
		rest = rest[n:]
	}
	if len(rest) != 0 {
		t.Fatalf("%d bytes left over", len(rest))
	}

	// The io.Reader path decodes the same stream.
	fr := newFrameReader(bytes.NewReader(wire), 0)
	for i, want := range frames {
		got, err := fr.next()
		if err != nil {
			t.Fatalf("reader frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.AckReq != want.AckReq || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("reader frame %d mismatch", i)
		}
	}
	if _, err := fr.next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF at end of stream, got %v", err)
	}

	// appendDataFrame (the allocation-free encoder) produces exactly what
	// the generic encoder would.
	generic := AppendStreamFrame(nil, frames[3])
	direct := appendDataFrame(nil, 1, true, []uint64{3, 5}, []float64{1, -2})
	if !bytes.Equal(generic, direct) {
		t.Fatal("appendDataFrame differs from AppendStreamFrame for the same data frame")
	}

	// Corruption is caught: a flipped payload byte fails the CRC, a flipped
	// unknown flag bit is rejected, truncation is reported.
	bad := append([]byte(nil), generic...)
	bad[streamHeaderLen] ^= 0xff
	if _, _, err := DecodeStreamFrame(bad, 0); err == nil {
		t.Fatal("corrupted payload decoded without error")
	}
	bad = append([]byte(nil), generic...)
	bad[5] |= 0x80
	if _, _, err := DecodeStreamFrame(bad, 0); err == nil {
		t.Fatal("unknown flag bit decoded without error")
	}
	if _, _, err := DecodeStreamFrame(generic[:len(generic)-1], 0); err == nil {
		t.Fatal("truncated frame decoded without error")
	}
}

func TestStreamFrameLengthCap(t *testing.T) {
	// Decode level: a forged header demanding far more than the cap is
	// refused with the typed error before any allocation.
	hdr := append([]byte(nil), streamMagic[:]...)
	hdr = append(hdr, streamFrameVersion, streamFrameData)
	hdr = binary.BigEndian.AppendUint32(hdr, 1<<31)
	if _, _, err := DecodeStreamFrame(hdr, 1<<20); !errors.Is(err, ErrStreamFrameTooLarge) {
		t.Fatalf("want ErrStreamFrameTooLarge from DecodeStreamFrame, got %v", err)
	}
	fr := newFrameReader(bytes.NewReader(hdr), 1<<20)
	if _, err := fr.next(); !errors.Is(err, ErrStreamFrameTooLarge) {
		t.Fatalf("want ErrStreamFrameTooLarge from frameReader, got %v", err)
	}

	// Live: a connection sending the forged header gets an error frame
	// naming the cap and a clean close — the server never tries to read or
	// allocate the claimed payload.
	srv, _, addr := streamDaemon(t, Config{Width: 256, Depth: 3, K: 16, Seed: 5, MaxFrameBytes: 1 << 16})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rd := newFrameReader(bufio.NewReader(conn), 0)
	mustWrite(t, conn, AppendStreamFrame(nil, StreamFrame{Type: streamFrameHello, Payload: []byte("cap-test")}))
	if f := mustRead(t, rd); f.Type != streamFrameAck {
		t.Fatalf("want hello ack, got frame type %d", f.Type)
	}
	mustWrite(t, conn, hdr)
	f := mustRead(t, rd)
	if f.Type != streamFrameError {
		t.Fatalf("want error frame, got type %d", f.Type)
	}
	if !bytes.Contains(f.Payload, []byte("cap")) {
		t.Fatalf("error frame does not name the cap: %s", f.Payload)
	}
	if _, err := rd.next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want clean close after the error frame, got %v", err)
	}
	_ = srv
}

func mustWrite(t *testing.T, w io.Writer, data []byte) {
	t.Helper()
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
}

func mustRead(t *testing.T, fr *frameReader) StreamFrame {
	t.Helper()
	f, err := fr.next()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestStreamEqualsPostEqualsReference is the tentpole invariant: updates
// pushed over concurrent stream connections (raw TCP and chunked HTTP) and
// concurrent per-POST lanes, with snapshots racing mid-flight, converge to
// counters identical to the single-threaded reference. Run under -race in CI.
func TestStreamEqualsPostEqualsReference(t *testing.T) {
	cfg := Config{Width: 1024, Depth: 4, K: 48, Seed: 13, Producers: 3,
		Engine: engine.Config{Workers: 3, BatchSize: 101}}
	srv, client, addr := streamDaemon(t, cfg)
	ctx := context.Background()

	const universe = 1 << 16
	s := stream.Zipf(xrand.New(77), universe, 60_000, 1.1)
	reference := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	for _, u := range s.Updates {
		reference.Update(u.Item, float64(u.Delta))
	}

	// Four pushers, disjoint strided quarters: raw TCP stream, HTTP stream,
	// and two POST lanes.
	const pushers = 4
	errs := make([]error, pushers)
	var wg sync.WaitGroup
	push := func(idx int, fn func(items []uint64, deltas []float64) error, closeFn func() error) {
		defer wg.Done()
		var items []uint64
		var deltas []float64
		for i := idx; i < len(s.Updates); i += pushers {
			items = append(items, s.Updates[i].Item)
			deltas = append(deltas, float64(s.Updates[i].Delta))
			if len(items) >= 700 {
				if err := fn(items, deltas); err != nil {
					errs[idx] = err
					return
				}
				items, deltas = items[:0], deltas[:0]
			}
		}
		if len(items) > 0 {
			if err := fn(items, deltas); err != nil {
				errs[idx] = err
				return
			}
		}
		if closeFn != nil {
			errs[idx] = closeFn()
		}
	}

	suTCP, err := DialStream(addr, StreamConfig{Window: 8, AckEvery: 3, BatchSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	suHTTP, err := DialStream(client.base, StreamConfig{Window: 4, AckEvery: 2, BatchSize: 450})
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(pushers)
	go push(0, suTCP.UpdateColumns, suTCP.Close)
	go push(1, suHTTP.UpdateColumns, suHTTP.Close)
	for lane := 2; lane < pushers; lane++ {
		go push(lane, func(items []uint64, deltas []float64) error {
			return client.UpdateColumns(ctx, items, deltas)
		}, nil)
	}

	// Snapshots race the ingestion: the barrier must stay consistent while
	// stream lanes and POST lanes interleave.
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for i := 0; i < 10; i++ {
			if _, err := client.Snapshot(ctx); err != nil {
				t.Errorf("mid-flight snapshot: %v", err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-snapDone
	for idx, err := range errs {
		if err != nil {
			t.Fatalf("pusher %d: %v", idx, err)
		}
	}

	snap, err := srv.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for item := uint64(0); item < universe; item += 37 {
		if got, want := snap.Estimate(item), reference.Estimate(item); got != want {
			t.Fatalf("item %d: stream+post estimate %v, reference %v", item, got, want)
		}
	}
	if got, want := snap.TotalMass(), reference.TotalMass(); got != want {
		t.Fatalf("total mass %v, reference %v", got, want)
	}
}

// TestStreamKillMidFrameResume drives the protocol with raw frames: a
// connection dies halfway through a frame, the producer reconnects, learns
// the applied watermark from the hello ack, replays its unacked tail with
// deliberate duplicates — and every frame lands exactly once.
func TestStreamKillMidFrameResume(t *testing.T) {
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 3}
	srv, _, addr := streamDaemon(t, cfg)

	frame := func(seq uint64, ackReq bool, item uint64) []byte {
		return appendDataFrame(nil, seq, ackReq, []uint64{item}, []float64{1})
	}
	readAck := func(t *testing.T, fr *frameReader) uint64 {
		t.Helper()
		f := mustRead(t, fr)
		if f.Type != streamFrameAck {
			t.Fatalf("want ack frame, got type %d (%s)", f.Type, f.Payload)
		}
		return binary.BigEndian.Uint64(f.Payload[:8])
	}

	conn1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fr1 := newFrameReader(bufio.NewReader(conn1), 0)
	mustWrite(t, conn1, AppendStreamFrame(nil, StreamFrame{Type: streamFrameHello, Payload: []byte("kill-test")}))
	if w := readAck(t, fr1); w != 0 {
		t.Fatalf("fresh session watermark = %d, want 0", w)
	}
	mustWrite(t, conn1, frame(1, false, 100))
	mustWrite(t, conn1, frame(2, true, 101))
	if w := readAck(t, fr1); w != 2 {
		t.Fatalf("ack watermark = %d, want 2", w)
	}
	// Kill the connection halfway through frame 3: the server must treat the
	// truncated frame as if it was never sent.
	half := frame(3, true, 102)
	mustWrite(t, conn1, half[:len(half)/2])
	conn1.Close()

	// Reconnect: the hello ack reports watermark 2 (acked frames survived),
	// a replay of frame 2 is absorbed without double-counting, and the tail
	// proceeds from 3.
	var fr2 *frameReader
	var conn2 net.Conn
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn2, err = net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		fr2 = newFrameReader(bufio.NewReader(conn2), 0)
		mustWrite(t, conn2, AppendStreamFrame(nil, StreamFrame{Type: streamFrameHello, Payload: []byte("kill-test")}))
		f := mustRead(t, fr2)
		if f.Type == streamFrameAck {
			if w := binary.BigEndian.Uint64(f.Payload[:8]); w != 2 {
				t.Fatalf("post-kill watermark = %d, want 2", w)
			}
			break
		}
		// The server may not have reaped conn1 yet ("session busy"): retry.
		conn2.Close()
		if time.Now().After(deadline) {
			t.Fatalf("session still busy after conn1 died: %s", f.Payload)
		}
		time.Sleep(10 * time.Millisecond)
	}
	defer conn2.Close()
	mustWrite(t, conn2, frame(2, true, 101)) // deliberate duplicate
	if w := readAck(t, fr2); w != 2 {
		t.Fatalf("duplicate ack watermark = %d, want 2", w)
	}
	mustWrite(t, conn2, frame(3, false, 102))
	mustWrite(t, conn2, frame(4, true, 103))
	if w := readAck(t, fr2); w != 4 {
		t.Fatalf("final watermark = %d, want 4", w)
	}

	snap, err := srv.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, item := range []uint64{100, 101, 102, 103} {
		if got := snap.Estimate(item); got != 1 {
			t.Fatalf("item %d counted %v times, want exactly 1", item, got)
		}
	}
}

// killableProxy forwards TCP bytes to a backend and can kill every live hop
// on demand — the harness for exercising StreamUpdater's reconnect path.
type killableProxy struct {
	ln      net.Listener
	backend string
	mu      sync.Mutex
	conns   []net.Conn
}

func newKillableProxy(t *testing.T, backend string) *killableProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &killableProxy{ln: ln, backend: backend}
	go p.serve()
	t.Cleanup(func() { ln.Close(); p.kill() })
	return p
}

func (p *killableProxy) addr() string { return p.ln.Addr().String() }

func (p *killableProxy) serve() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.Dial("tcp", p.backend)
		if err != nil {
			client.Close()
			continue
		}
		p.mu.Lock()
		p.conns = append(p.conns, client, server)
		p.mu.Unlock()
		go func() { io.Copy(server, client); server.Close() }()
		go func() { io.Copy(client, server); client.Close() }()
	}
}

func (p *killableProxy) kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, c := range p.conns {
		c.Close()
	}
	p.conns = nil
}

// TestStreamUpdaterReconnect kills the transport under a live StreamUpdater
// twice mid-stream; the updater must reconnect, replay its unacked tail, and
// still land every update exactly once.
func TestStreamUpdaterReconnect(t *testing.T) {
	cfg := Config{Width: 1024, Depth: 4, K: 32, Seed: 21}
	srv, _, addr := streamDaemon(t, cfg)
	proxy := newKillableProxy(t, addr)

	su, err := DialStream(proxy.addr(), StreamConfig{Window: 8, AckEvery: 2, BatchSize: 50, RetryWait: 20 * time.Millisecond, MaxAttempts: 20})
	if err != nil {
		t.Fatal(err)
	}

	const universe = 1 << 12
	s := stream.Zipf(xrand.New(31), universe, 6_000, 1.2)
	reference := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	for _, u := range s.Updates {
		reference.Update(u.Item, float64(u.Delta))
	}
	for i, u := range s.Updates {
		if err := su.Update(u.Item, float64(u.Delta)); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if i == len(s.Updates)/3 || i == 2*len(s.Updates)/3 {
			proxy.kill()
		}
	}
	if err := su.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := srv.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for item := uint64(0); item < universe; item += 7 {
		if got, want := snap.Estimate(item), reference.Estimate(item); got != want {
			t.Fatalf("item %d: estimate %v after reconnects, reference %v", item, got, want)
		}
	}
	if got, want := snap.TotalMass(), reference.TotalMass(); got != want {
		t.Fatalf("total mass %v, reference %v", got, want)
	}
}

// TestStreamHTTPFallback pushes through chunked POST /v1/stream only and
// checks exactness plus the stream counters in /v1/stats.
func TestStreamHTTPFallback(t *testing.T) {
	cfg := Config{Width: 512, Depth: 4, K: 32, Seed: 9}
	srv, client := testDaemon(t, cfg)

	su, err := DialStream(client.base, StreamConfig{Session: "http-fallback", BatchSize: 100, AckEvery: 2, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	reference := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	for i := uint64(0); i < 2_000; i++ {
		item, delta := i%257, float64(i%5+1)
		reference.Update(item, delta)
		if err := su.Update(item, delta); err != nil {
			t.Fatal(err)
		}
	}
	if err := su.Sync(); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.StreamsActive != 1 || stats.StreamSessions != 1 || stats.StreamFrames == 0 {
		t.Fatalf("stats = active %d, sessions %d, frames %d; want 1 active, 1 session, >0 frames",
			stats.StreamsActive, stats.StreamSessions, stats.StreamFrames)
	}
	if err := su.Close(); err != nil {
		t.Fatal(err)
	}

	snap, err := srv.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for item := uint64(0); item < 257; item++ {
		if got, want := snap.Estimate(item), reference.Estimate(item); got != want {
			t.Fatalf("item %d: estimate %v over HTTP stream, reference %v", item, got, want)
		}
	}
}

// TestStreamServerCloseDrains proves the ack contract across a graceful
// shutdown: every frame the server acknowledged is in the final snapshot and
// survives a restart, even though the stream connection was still open when
// Close began.
func TestStreamServerCloseDrains(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Width: 256, Depth: 3, K: 16, Seed: 17, SnapshotDir: dir}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ServeStream(ln)

	su, err := DialStream(ln.Addr().String(), StreamConfig{Session: "drain-test", BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1_000; i++ {
		if err := su.Update(i%61, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := su.Sync(); err != nil {
		t.Fatal(err)
	}

	// Close with the connection still open: the drain must abort it, close
	// its pinned producer, and only then cut the final snapshot.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	su.teardown() // the server is gone; just drop the transport

	restarted, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	snap, err := restarted.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := uint64(0); i < 61; i++ {
		total += snap.Estimate(i)
	}
	if total < 1_000 {
		t.Fatalf("recovered mass over pushed items = %v, want >= 1000 (acked frames were lost)", total)
	}
}

// TestStreamSessionBusy: a session can have only one live connection.
func TestStreamSessionBusy(t *testing.T) {
	_, _, addr := streamDaemon(t, Config{Width: 256, Depth: 3, K: 16, Seed: 2})
	su, err := DialStream(addr, StreamConfig{Session: "busy"})
	if err != nil {
		t.Fatal(err)
	}
	defer su.Close()
	_, err = DialStream(addr, StreamConfig{Session: "busy", MaxAttempts: 2, RetryWait: 10 * time.Millisecond})
	if err == nil {
		t.Fatal("second connection on a busy session succeeded")
	}
	var remote *StreamRemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("want a StreamRemoteError, got %v", err)
	}
}

// TestStreamEndpointRejectsWrongContentType: the HTTP fallback refuses
// non-stream bodies up front.
func TestStreamEndpointRejectsWrongContentType(t *testing.T) {
	srv, err := New(Config{Width: 256, Depth: 3, K: 16, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	resp, err := hs.Client().Post(hs.URL+"/v1/stream", contentTypeJSON, bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 415 {
		t.Fatalf("status = %d, want 415", resp.StatusCode)
	}
}

// BenchmarkE17StreamSteadyState measures the steady-state cost of one data
// frame through the whole pipeline — client encode, TCP, server frame read,
// decode into the pinned lane's columns, engine dispatch — and reports
// allocations: the acceptance bar is zero allocs/op once buffers have
// reached their steady-state sizes. The workload keeps to 64 distinct items
// (the tracker's candidate capacity), so the sketch side updates candidates
// in place.
func BenchmarkE17StreamSteadyState(b *testing.B) {
	srv, err := New(Config{Width: 4096, Depth: 4, K: 64, Seed: 1, Engine: engine.Config{Workers: 2}})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.ServeStream(ln)
	su, err := DialStream(ln.Addr().String(), StreamConfig{Window: 16, AckEvery: 8})
	if err != nil {
		b.Fatal(err)
	}

	const frameUpdates = 512
	items := make([]uint64, frameUpdates)
	deltas := make([]float64, frameUpdates)
	for i := range items {
		items[i] = uint64(i % 64)
		deltas[i] = 1
	}
	// Warm-up: grow every reused buffer to steady-state size, populate the
	// engine free lists and the tracker's candidate set.
	for i := 0; i < 256; i++ {
		if err := su.UpdateColumns(items, deltas); err != nil {
			b.Fatal(err)
		}
	}
	if err := su.Sync(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.SetBytes(frameUpdates * batchRecordLen)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := su.UpdateColumns(items, deltas); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := su.Close(); err != nil {
		b.Fatal(err)
	}
}
