package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// The tests in this file pin the batch-first read path: POST /v1/query in
// both body formats answers bit-identically to the per-key GET form and the
// in-process reference, the epoch cache pins quiescent reads and is
// invalidated by every acknowledged write, /v1/topk re-ranks per epoch, and
// the stats counters account for all of it.

// ingestReference pushes a Zipf stream into the daemon and returns the
// single-threaded reference tracker plus a mixed seen/unseen key column.
func ingestReference(t *testing.T, client *Client, cfg Config, n int) (*sketch.HeavyHitterTracker, []uint64) {
	t.Helper()
	reference := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	s := stream.Zipf(xrand.New(77), 1<<14, n, 1.1)
	for _, u := range s.Updates {
		reference.Update(u.Item, float64(u.Delta))
	}
	if err := client.Update(context.Background(), toEngineUpdates(s.Updates)); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(78)
	keys := make([]uint64, 700)
	for i := range keys {
		if i%3 == 0 {
			keys[i] = r.Uint64() // almost surely unseen
		} else {
			keys[i] = s.Updates[int(r.Uint64n(uint64(len(s.Updates))))].Item
		}
	}
	return reference, keys
}

// TestBatchQueryMatchesScalar: both batch body formats answer every key
// bit-identically to the reference sketch and to the per-key GET form, at
// one shared generation.
func TestBatchQueryMatchesScalar(t *testing.T) {
	cfg := Config{Width: 512, Depth: 4, K: 32, Seed: 21, Engine: engine.Config{Workers: 2, BatchSize: 64}}
	_, client := testDaemon(t, cfg)
	ctx := context.Background()
	reference, keys := ingestReference(t, client, cfg, 30_000)

	// JSON body.
	body, err := json.Marshal(QueryBatchRequest{Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	data, err := client.do(ctx, http.MethodPost, "/v1/query", contentTypeJSON, body)
	if err != nil {
		t.Fatal(err)
	}
	var jsonResp QueryBatchResponse
	if err := json.Unmarshal(data, &jsonResp); err != nil {
		t.Fatal(err)
	}
	if len(jsonResp.Estimates) != len(keys) {
		t.Fatalf("JSON batch returned %d estimates for %d keys", len(jsonResp.Estimates), len(keys))
	}

	// Binary body + binary answer through the reusable querier.
	bq := client.BatchQuerier()
	binEsts, gen, err := bq.Query(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if gen != jsonResp.Gen {
		t.Fatalf("binary batch answered at gen %d, JSON at %d (no writes in flight)", gen, jsonResp.Gen)
	}

	// Per-key GET form over the same keys, chunked to keep URLs reasonable.
	scalar := make([]float64, 0, len(keys))
	for start := 0; start < len(keys); start += 256 {
		end := min(start+256, len(keys))
		part, err := client.Query(ctx, keys[start:end]...)
		if err != nil {
			t.Fatal(err)
		}
		scalar = append(scalar, part...)
	}

	for i, key := range keys {
		want := reference.Estimate(key)
		for _, got := range []struct {
			path string
			est  float64
		}{{"json", jsonResp.Estimates[i]}, {"binary", binEsts[i]}, {"scalar", scalar[i]}} {
			if math.Float64bits(got.est) != math.Float64bits(want) {
				t.Fatalf("%s estimate(%d) = %v, reference = %v", got.path, key, got.est, want)
			}
		}
	}
}

// TestBatchQuerierReuse: the retained buffers answer correctly across calls
// of different lengths, and the wire formats round-trip.
func TestBatchQuerierReuse(t *testing.T) {
	cfg := Config{Width: 256, Depth: 3, K: 16, Seed: 5}
	_, client := testDaemon(t, cfg)
	ctx := context.Background()
	reference, keys := ingestReference(t, client, cfg, 10_000)

	bq := client.BatchQuerier()
	for _, n := range []int{1, 7, 512, 64, 700} {
		ests, _, err := bq.Query(ctx, keys[:n])
		if err != nil {
			t.Fatalf("batch of %d: %v", n, err)
		}
		for i, key := range keys[:n] {
			if want := reference.Estimate(key); math.Float64bits(ests[i]) != math.Float64bits(want) {
				t.Fatalf("batch of %d: estimate(%d) = %v, reference = %v", n, key, ests[i], want)
			}
		}
	}
}

// TestKeyColumnRoundTrip pins the SKQ1/SKE1 encodings byte for byte.
func TestKeyColumnRoundTrip(t *testing.T) {
	keys := []uint64{0, 1, ^uint64(0), 1 << 40}
	enc := AppendKeyColumns(nil, keys)
	dec, err := DecodeKeyColumns(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if re := AppendKeyColumns(nil, dec); !bytes.Equal(re, enc) {
		t.Fatal("key column does not round-trip byte-identically")
	}

	ests := []float64{0, -1.5, math.Inf(1), 1e-300}
	encE := AppendEstimateColumns(nil, -7, ests)
	decE, gen, err := DecodeEstimateColumns(encE, nil)
	if err != nil {
		t.Fatal(err)
	}
	if gen != -7 {
		t.Fatalf("estimate column gen = %d, want -7", gen)
	}
	if re := AppendEstimateColumns(nil, gen, decE); !bytes.Equal(re, encE) {
		t.Fatal("estimate column does not round-trip byte-identically")
	}

	for _, bad := range [][]byte{
		nil,
		[]byte("SKQ1"),
		[]byte("SKB1\x00\x00\x00\x00"),
		[]byte("SKQ1\x00\x00\x00\x02somebytes"),
		[]byte("SKQ1\xff\xff\xff\xff"),
	} {
		if _, err := DecodeKeyColumns(bad, nil); err == nil {
			t.Fatalf("DecodeKeyColumns accepted malformed input %q", bad)
		}
	}
}

// TestBatchQueryErrors pins the failure envelope of the batch form.
func TestBatchQueryErrors(t *testing.T) {
	_, client := testDaemon(t, Config{Width: 64, Depth: 2, K: 8, Seed: 3})
	ctx := context.Background()

	requireStatus := func(wantStatus int, contentType string, body []byte) {
		t.Helper()
		_, err := client.do(ctx, http.MethodPost, "/v1/query", contentType, body)
		var apiErr *APIError
		if !errors.As(err, &apiErr) || apiErr.Status != wantStatus {
			t.Fatalf("POST /v1/query with %q body: err %v, want HTTP %d", contentType, err, wantStatus)
		}
	}
	requireStatus(http.StatusBadRequest, contentTypeJSON, []byte(`{"keys":[]}`))
	requireStatus(http.StatusBadRequest, contentTypeJSON, []byte(`{not json`))
	requireStatus(http.StatusBadRequest, contentTypeKeys, []byte("SKQ1\x00\x00\x00\x09short"))
	requireStatus(http.StatusUnsupportedMediaType, "application/x-unknown", []byte("x"))

	// Wrong method still lands in the JSON 405 envelope naming both verbs.
	_, err := client.do(ctx, http.MethodPut, "/v1/query", "", nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /v1/query: err %v, want HTTP 405", err)
	}
}

// TestReadEpochPinsAndInvalidates: quiescent reads share one epoch (hits
// accumulate, misses do not), every acknowledged write invalidates it, and
// the stats counters report hits, misses and mean batch size.
func TestReadEpochPinsAndInvalidates(t *testing.T) {
	srv, client := testDaemon(t, Config{Width: 256, Depth: 3, K: 16, Seed: 9})
	ctx := context.Background()

	if err := client.UpdateColumns(ctx, []uint64{1, 2, 3}, []float64{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	// First read rebuilds the epoch; the next ones ride it.
	if _, err := client.QueryBatch(ctx, []uint64{1, 2}); err != nil {
		t.Fatal(err)
	}
	misses := srv.epochMisses.Load()
	if misses != 1 {
		t.Fatalf("epoch misses after first read: %d, want 1", misses)
	}
	for i := 0; i < 3; i++ {
		if _, err := client.QueryBatch(ctx, []uint64{1, 2, 3, 4}); err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.epochMisses.Load(); got != misses {
		t.Fatalf("quiescent reads rebuilt the epoch: misses %d -> %d", misses, got)
	}
	if hits := srv.epochHits.Load(); hits < 3 {
		t.Fatalf("epoch hits = %d, want >= 3", hits)
	}

	// An acknowledged write moves the generation and the epoch follows.
	before, err := client.QueryBatch(ctx, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.UpdateColumns(ctx, []uint64{1}, []float64{5}); err != nil {
		t.Fatal(err)
	}
	after, err := client.QueryBatch(ctx, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	if after[0] != before[0]+5 {
		t.Fatalf("estimate after write = %v, want %v", after[0], before[0]+5)
	}
	if got := srv.epochMisses.Load(); got != misses+1 {
		t.Fatalf("write invalidated the epoch %d times, want exactly once", got-misses)
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EpochHits != srv.epochHits.Load() || stats.EpochMisses != srv.epochMisses.Load() {
		t.Fatalf("stats epoch counters (%d, %d) disagree with the server (%d, %d)",
			stats.EpochHits, stats.EpochMisses, srv.epochHits.Load(), srv.epochMisses.Load())
	}
	// 6 batch queries carried 2+4+4+4+1+1 = 16 keys.
	if stats.BatchQueries != 6 {
		t.Fatalf("batch queries = %d, want 6", stats.BatchQueries)
	}
	if want := 16.0 / 6.0; math.Abs(stats.MeanBatchKeys-want) > 1e-12 {
		t.Fatalf("mean batch keys = %v, want %v", stats.MeanBatchKeys, want)
	}
}

// TestTopKRescoredPerEpoch: /v1/topk answers from the cached per-epoch
// ranking, a write re-ranks, and ?phi= keeps matching the un-rounded
// HeavyHitters contract exactly.
func TestTopKRescoredPerEpoch(t *testing.T) {
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 13}
	_, client := testDaemon(t, cfg)
	ctx := context.Background()

	reference := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	items := []uint64{10, 20, 30}
	deltas := []float64{100, 50, 25}
	reference.UpdateBatch(items, deltas)
	if err := client.UpdateColumns(ctx, items, deltas); err != nil {
		t.Fatal(err)
	}

	ranked, err := client.TopK(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 || ranked[0].Item != 10 || ranked[1].Item != 20 {
		t.Fatalf("topk(2) = %v, want items 10 then 20", ranked)
	}

	// A write that reorders the candidates must reorder the next answer.
	reference.Update(30, 200)
	if err := client.UpdateColumns(ctx, []uint64{30}, []float64{200}); err != nil {
		t.Fatal(err)
	}
	ranked, err = client.TopK(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 || ranked[0].Item != 30 {
		t.Fatalf("topk after re-ranking write = %v, want item 30 first", ranked)
	}
	for _, ic := range ranked {
		if want := int64(reference.Estimate(ic.Item) + 0.5); ic.Count != want {
			t.Fatalf("topk count for %d = %d, reference %d", ic.Item, ic.Count, want)
		}
	}

	// The phi path thresholds un-rounded estimates against total mass.
	hits, err := client.HeavyHitters(ctx, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := reference.HeavyHitters(0.5)
	if len(hits) != len(want) {
		t.Fatalf("heavy hitters = %v, reference %v", hits, want)
	}
	for i := range hits {
		if hits[i] != want[i] {
			t.Fatalf("heavy hitter %d = %v, reference %v", i, hits[i], want[i])
		}
	}
}

// TestConcurrentBatchQueryDuringIngest races batch readers against posting
// writers (run under -race): every response must be internally consistent,
// and after the writers quiesce the batch answers must equal the reference
// bit for bit.
func TestConcurrentBatchQueryDuringIngest(t *testing.T) {
	cfg := Config{Width: 512, Depth: 4, K: 32, Seed: 17, Engine: engine.Config{Workers: 3, BatchSize: 32}, Producers: 4}
	_, client := testDaemon(t, cfg)
	ctx := context.Background()

	const writers, batches, batchLen = 3, 40, 64
	reference := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	all := make([][]uint64, writers*batches)
	allDeltas := make([][]float64, writers*batches)
	r := xrand.New(18)
	for b := range all {
		all[b] = make([]uint64, batchLen)
		allDeltas[b] = make([]float64, batchLen)
		for i := range all[b] {
			all[b][i] = r.Uint64n(1 << 12)
			allDeltas[b][i] = float64(r.Uint64n(9) + 1)
		}
		reference.UpdateBatch(all[b], allDeltas[b])
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				if err := client.UpdateColumns(ctx, all[w*batches+b], allDeltas[w*batches+b]); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	var readersDone sync.WaitGroup
	stopReaders := make(chan struct{})
	for g := 0; g < 3; g++ {
		readersDone.Add(1)
		go func(g int) {
			defer readersDone.Done()
			bq := client.BatchQuerier()
			kr := xrand.New(uint64(900 + g))
			keys := make([]uint64, 128)
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				for i := range keys {
					keys[i] = kr.Uint64n(1 << 13)
				}
				ests, _, err := bq.Query(ctx, keys)
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				for _, est := range ests {
					if est < 0 || math.IsNaN(est) {
						t.Errorf("reader %d: impossible estimate %v", g, est)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stopReaders)
	readersDone.Wait()
	if t.Failed() {
		return
	}

	keys := make([]uint64, 0, 1<<10)
	for key := uint64(0); key < 1<<13; key += 7 {
		keys = append(keys, key)
	}
	ests, _, err := client.BatchQuerier().Query(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range keys {
		if want := reference.Estimate(key); math.Float64bits(ests[i]) != math.Float64bits(want) {
			t.Fatalf("estimate(%d) after quiesce = %v, reference = %v", key, ests[i], want)
		}
	}
}

// TestBatchQueryAfterClose: the lock-free fast path is fenced once the
// engine is retired.
func TestBatchQueryAfterClose(t *testing.T) {
	srv, err := New(Config{Width: 64, Depth: 2, K: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.readEpochSnap(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.readEpochSnap(); err != ErrServerClosed {
		t.Fatalf("readEpochSnap after Close: err %v, want ErrServerClosed", err)
	}
}
