package server

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/engine"
)

// Wire formats of the HTTP API.
//
// Updates travel in one of two bodies, selected by Content-Type:
//
//   - application/json: an UpdateRequest object,
//     {"updates":[{"item":7,"delta":2}, ...]}
//   - application/x-sketch-batch: the length-prefixed binary batch below,
//     which the Client uses and which costs 16 bytes per update instead of
//     ~25 bytes of JSON plus parsing.
//
// Binary batch layout (integers big-endian, floats as IEEE-754 bits):
//
//	magic [4]byte "SKB1"
//	count uint32
//	count x (item uint64, delta float64)
//
// Snapshots travel as application/x-sketch-snapshot: the raw versioned
// encoding produced by the sketch types' MarshalBinary (see
// internal/sketch/encoding.go), untouched by the transport.

// Content types of the HTTP API.
const (
	contentTypeJSON      = "application/json"
	contentTypeBatch     = "application/x-sketch-batch"
	contentTypeSnapshot  = "application/x-sketch-snapshot"
	contentTypeDelta     = "application/x-sketch-delta"
	contentTypeStream    = "application/x-sketch-stream"
	contentTypeBootstrap = "application/x-sketch-bootstrap"
)

// batchMagic guards the binary update-batch format.
var batchMagic = [4]byte{'S', 'K', 'B', '1'}

// batchHeaderLen is the fixed prefix: magic plus the count word.
const batchHeaderLen = 8

// batchRecordLen is the size of one (item, delta) record.
const batchRecordLen = 16

// UpdateRequest is the JSON body of POST /v1/update.
type UpdateRequest struct {
	Updates []UpdateJSON `json:"updates"`
}

// UpdateJSON is one (item, delta) record in JSON form.
type UpdateJSON struct {
	Item  uint64  `json:"item"`
	Delta float64 `json:"delta"`
}

// UpdateResponse acknowledges an accepted batch.
type UpdateResponse struct {
	Accepted int `json:"accepted"`
}

// Estimate is one point-query answer.
type Estimate struct {
	Item     uint64  `json:"item"`
	Estimate float64 `json:"estimate"`
}

// QueryResponse is the JSON body of GET /v1/query.
type QueryResponse struct {
	Estimates []Estimate `json:"estimates"`
	// Gen is the write generation of the barrier snapshot that answered the
	// read; every read response carries it, so callers can correlate answers
	// across endpoints.
	Gen int64 `json:"gen"`
}

// TopKItem is one ranked heavy-hitter candidate.
type TopKItem struct {
	Item  uint64 `json:"item"`
	Count int64  `json:"count"`
}

// TopKResponse is the JSON body of GET /v1/topk.
type TopKResponse struct {
	Items []TopKItem `json:"items"`
	Gen   int64      `json:"gen"`
}

// MergeResponse acknowledges a folded-in snapshot.
type MergeResponse struct {
	TotalMass float64 `json:"total_mass"`
}

// DeltaResponse acknowledges a delta frame. Applied is false for retries of
// already-applied frames (the idempotent path) and for reset frames;
// Watermark is the receiver's per-sender generation watermark after the
// frame was handled, i.e. the ToGen of the newest applied frame. CanReplace
// advertises that the receiver tracks the sender's cumulative shipped mass
// and can therefore accept a lossless replace frame (see DeltaFrame) the
// next time the generation windows diverge.
type DeltaResponse struct {
	Applied    bool   `json:"applied"`
	Watermark  uint64 `json:"watermark"`
	CanReplace bool   `json:"can_replace,omitempty"`
}

// PeerStat is the replication status of one configured gossip peer, as
// reported by GET /v1/stats: which local write generation the peer has
// acknowledged, how far it lags the current one, and the shipping counters.
type PeerStat struct {
	URL          string `json:"url"`
	AckedGen     int64  `json:"acked_gen"`
	LagGens      int64  `json:"lag_gens"`
	FramesAcked  int64  `json:"frames_acked"`
	BytesShipped int64  `json:"bytes_shipped"`
	Pending      bool   `json:"pending"`
	LastError    string `json:"last_error,omitempty"`
	// BackoffMs is the length of the capped exponential backoff window the
	// replicator is currently applying to this peer (0 when the peer is
	// healthy): after a transport failure the next attempt waits one gossip
	// period, then two, doubling up to the cap, so an unreachable peer costs
	// one connection attempt per window instead of one per tick.
	BackoffMs int64 `json:"peer_backoff_ms,omitempty"`
}

// Stats is the JSON body of GET /v1/stats.
type Stats struct {
	Gen       int64 `json:"gen"`
	Width     int   `json:"width"`
	Depth     int   `json:"depth"`
	K         int   `json:"k"`
	Workers   int   `json:"workers"`
	Producers int   `json:"producers"`
	// Mode is the engine sharding mode: "replica" (each worker holds a full
	// sketch clone) or "partition" (workers share one column-partitioned
	// copy); CounterWords is the resident counter footprint that choice
	// implies, summed across shards.
	Mode         string  `json:"mode"`
	CounterWords int     `json:"counter_words"`
	Updates      int64   `json:"updates"`
	Batches      int64   `json:"batches"`
	Merges       int64   `json:"merges"`
	Snapshots    int64   `json:"snapshots"`
	TotalMass    float64 `json:"total_mass"`

	// Delta-replication counters: frames this daemon has applied, absorbed
	// idempotently (retries of already-applied frames) and rejected at
	// /v1/delta, the per-sender generation watermarks, and the shipping
	// status of every configured peer.
	DeltasApplied   int64             `json:"deltas_applied"`
	DeltasDuplicate int64             `json:"deltas_duplicate"`
	DeltasRejected  int64             `json:"deltas_rejected"`
	DeltasReplaced  int64             `json:"deltas_replaced,omitempty"`
	Watermarks      map[string]uint64 `json:"watermarks,omitempty"`
	Peers           []PeerStat        `json:"peers,omitempty"`

	// Peer-bootstrap status: empty when the daemon started from local state,
	// otherwise "pending" (state transfer in progress, reads and writes answer
	// 503), "done" (transfer absorbed from BootstrapSource) or "degraded"
	// (every configured source failed BootstrapAttempts rounds; the daemon
	// serves empty state rather than staying down). BootstrapFailures counts
	// failed fetch attempts across sources and rounds.
	Bootstrap         string `json:"bootstrap,omitempty"`
	BootstrapSource   string `json:"bootstrap_source,omitempty"`
	BootstrapFailures int64  `json:"bootstrap_failures,omitempty"`

	// Streaming-ingest counters: connections currently attached (raw TCP and
	// chunked HTTP), named stream sessions known (each holds an exactly-once
	// resume watermark), and data frames applied over streams since start.
	StreamsActive  int64 `json:"streams_active"`
	StreamSessions int   `json:"stream_sessions"`
	StreamFrames   int64 `json:"stream_frames"`

	// Read-path counters: reads answered lock-free from the pinned snapshot
	// epoch vs. reads that had to rebuild it, batch /v1/query requests
	// served, and the mean keys per batch (0 when no batch query ran yet).
	EpochHits     int64   `json:"epoch_hits"`
	EpochMisses   int64   `json:"epoch_misses"`
	BatchQueries  int64   `json:"batch_queries"`
	MeanBatchKeys float64 `json:"mean_batch_keys"`
}

// ErrorDetail is the unified error payload carried by every non-2xx answer
// on every /v1/* route: a stable machine-readable code (derived from the
// HTTP status), a human-readable message, and an optional detail string with
// remediation hints (e.g. the list of enabled recovery algorithms).
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
}

// errorResponse is the JSON body of every non-2xx answer:
// {"error": {"code": ..., "message": ..., "detail": ...}}.
// Clients that send Accept: text/plain get the legacy plain-text body
// instead, so curl transcripts from before the envelope still read sensibly.
type errorResponse struct {
	Error ErrorDetail `json:"error"`
}

// Sparse recovery wire types --------------------------------------------------

// RecoverRequest is the optional JSON body of POST /v1/recover; every field
// can also be supplied as a query parameter (?algo=&k=&universe=&iters=),
// and query parameters win over body fields.
type RecoverRequest struct {
	// Algo selects the recoverer: sketch, omp, iht, ista or smp.
	Algo string `json:"algo,omitempty"`
	// K is the output sparsity (how many coordinates to recover).
	K int `json:"k,omitempty"`
	// Universe is the signal dimension n the measurement is inverted over;
	// recovered items are coordinates in [0, Universe).
	Universe int `json:"universe,omitempty"`
	// Iters overrides the iteration budget of the iterative recoverers.
	Iters int `json:"iters,omitempty"`
}

// RecoverEntry is one recovered coordinate with its Count-Min error bound:
// with probability at least Confidence (see RecoverResponse), the true count
// lies in [Estimate - ErrorBound, Estimate] for unsigned sketches.
type RecoverEntry struct {
	Item     uint64  `json:"item"`
	Estimate float64 `json:"estimate"`
}

// RecoverResponse is the JSON body of GET/POST /v1/recover: the approximate
// top-k vector recovered from the live counters, sorted by decreasing
// magnitude.
type RecoverResponse struct {
	Algo     string         `json:"algo"`
	K        int            `json:"k"`
	Universe int            `json:"universe"`
	Entries  []RecoverEntry `json:"entries"`
	// ErrorBound is the classic Count-Min per-coordinate additive error
	// (e/width)·‖x‖₁: each estimate overestimates its true count by at most
	// this much with probability at least Confidence.
	ErrorBound float64 `json:"error_bound"`
	// Confidence is 1 - exp(-depth), the per-coordinate probability that
	// ErrorBound holds.
	Confidence float64 `json:"confidence"`
	Gen        int64   `json:"gen"`
}

// SetQueryRequest is the JSON body of POST /v1/setquery: a candidate support
// S and the estimator to calibrate over it (?estimator= also accepted).
type SetQueryRequest struct {
	// Support is the candidate item set S (no duplicates).
	Support []uint64 `json:"support"`
	// Estimator selects the calibration: "isolate" (default) answers each
	// item from the hash rows where no other member of S collides with it,
	// "min" is the plain per-item Count-Min estimate.
	Estimator string `json:"estimator,omitempty"`
}

// SetQueryEstimate is one calibrated estimate over the requested support.
type SetQueryEstimate struct {
	Item     uint64  `json:"item"`
	Estimate float64 `json:"estimate"`
	// IsolatedRows is the number of hash rows in which no other support
	// member shares this item's bucket — the rows the isolate estimator
	// answered from. Zero means the estimate fell back to the plain minimum.
	IsolatedRows int `json:"isolated_rows"`
}

// SetQueryResponse is the JSON body of POST /v1/setquery, in support order.
type SetQueryResponse struct {
	Estimator  string             `json:"estimator"`
	Estimates  []SetQueryEstimate `json:"estimates"`
	ErrorBound float64            `json:"error_bound"`
	Confidence float64            `json:"confidence"`
	Gen        int64              `json:"gen"`
}

// SpectrumRequest is the JSON body of POST /v1/spectrum: a sampled signal
// whose sparse Fourier support the server extracts with internal/sfft.
type SpectrumRequest struct {
	// Signal is the real part of the samples; its length must be a power of
	// two.
	Signal []float64 `json:"signal"`
	// SignalImag optionally carries the imaginary parts (same length).
	SignalImag []float64 `json:"signal_imag,omitempty"`
	// K is the number of dominant frequencies to recover.
	K int `json:"k"`
	// Algo selects the transform: "exact" (noiseless peeling, default) or
	// "robust" (noise-tolerant phase-ladder location). ?algo= also accepted.
	Algo string `json:"algo,omitempty"`
	// Seed drives the random permutations; 0 means the server's seed.
	Seed uint64 `json:"seed,omitempty"`
	// Rounds and BucketFactor tune the transform (see sfft.Config); zero
	// keeps the library defaults.
	Rounds       int `json:"rounds,omitempty"`
	BucketFactor int `json:"bucket_factor,omitempty"`
}

// SpectrumCoefficient is one recovered frequency.
type SpectrumCoefficient struct {
	Freq      int     `json:"freq"`
	Re        float64 `json:"re"`
	Im        float64 `json:"im"`
	Magnitude float64 `json:"magnitude"`
}

// SpectrumResponse is the JSON body of POST /v1/spectrum, sorted by
// decreasing magnitude.
type SpectrumResponse struct {
	N            int                   `json:"n"`
	K            int                   `json:"k"`
	Algo         string                `json:"algo"`
	Coefficients []SpectrumCoefficient `json:"coefficients"`
	Gen          int64                 `json:"gen"`
}

// AppendBatch appends the binary encoding of updates to buf and returns the
// extended slice.
func AppendBatch(buf []byte, updates []engine.Update) []byte {
	buf = append(buf, batchMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(updates)))
	for _, u := range updates {
		buf = binary.BigEndian.AppendUint64(buf, u.Item)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(u.Delta))
	}
	return buf
}

// AppendBatchColumns appends the binary encoding of parallel key/delta
// columns to buf and returns the extended slice. It produces exactly the
// bytes AppendBatch would for the equivalent record slice — the wire format
// is unchanged; only the in-memory shape differs. The columns must have
// equal length (panics otherwise — silently dropping surplus deltas would
// put a valid-looking but lossy batch on the wire).
func AppendBatchColumns(buf []byte, items []uint64, deltas []float64) []byte {
	if len(items) != len(deltas) {
		panic(fmt.Sprintf("server: AppendBatchColumns length mismatch (%d items, %d deltas)", len(items), len(deltas)))
	}
	buf = append(buf, batchMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(items)))
	for i, item := range items {
		buf = binary.BigEndian.AppendUint64(buf, item)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(deltas[i]))
	}
	return buf
}

// DecodeBatchColumns parses a binary update batch straight into key/delta
// columns, appending to the caller's (typically reused) buffers and
// returning the extended slices — the zero-copy-shape path the server's
// ingest lanes use, one bounds-checked scan with no per-item structs. The
// count word is validated against the actual body length before any
// allocation, so a corrupt header cannot demand unbounded memory.
func DecodeBatchColumns(data []byte, items []uint64, deltas []float64) ([]uint64, []float64, error) {
	if len(data) < batchHeaderLen {
		return items, deltas, fmt.Errorf("server: truncated batch (need %d header bytes, have %d)", batchHeaderLen, len(data))
	}
	if [4]byte(data[:4]) != batchMagic {
		return items, deltas, fmt.Errorf("server: bad batch magic %q", data[:4])
	}
	n := binary.BigEndian.Uint32(data[4:8])
	payload := data[batchHeaderLen:]
	if uint64(len(payload)) != uint64(n)*batchRecordLen {
		return items, deltas, fmt.Errorf("server: batch payload is %d bytes, header claims %d records (%d bytes)",
			len(payload), n, uint64(n)*batchRecordLen)
	}
	for i := 0; i < int(n); i++ {
		rec := payload[i*batchRecordLen : i*batchRecordLen+batchRecordLen]
		items = append(items, binary.BigEndian.Uint64(rec[:8]))
		deltas = append(deltas, math.Float64frombits(binary.BigEndian.Uint64(rec[8:16])))
	}
	return items, deltas, nil
}

// Delta replication frames ---------------------------------------------------
//
// Gossiping daemons ship snapshot differences in framed envelopes posted to
// POST /v1/delta as application/x-sketch-delta:
//
//	magic      [4]byte "SKD1"
//	version    uint8   deltaFrameVersion
//	flags      uint8   bit 0: reset frame (re-align the watermark, no payload)
//	                   bit 1: replace frame (payload is the sender's whole
//	                   local state; see deltaFlagReplace)
//	senderLen  uint16  length of the sender id (must be >= 1)
//	sender     senderLen bytes: the sending node's -node-id
//	fromGen    uint64  sender-local generation of the last acked frame
//	toGen      uint64  sender-local generation this frame advances to
//	payloadLen uint32
//	payload    payloadLen bytes: a sketch KindDelta envelope wrapping the
//	           encoded difference sketch (must be empty on reset frames)
//
// A frame covers the sender-local generation window (fromGen, toGen]. The
// receiver keeps one watermark per sender — the toGen of the newest frame it
// has applied — and that watermark is the whole idempotency story:
//
//   - toGen <= watermark: a retry of an already-applied frame; acknowledged
//     without touching a counter, so redelivery never double-counts.
//   - fromGen == watermark: the next frame in sequence; applied, watermark
//     advances to toGen.
//   - anything else: the two sides disagree about history (one of them
//     restarted) — rejected with 409 so the sender can re-align instead of
//     silently double-counting: with a lossless replace frame when the
//     receiver advertised CanReplace, with a reset frame otherwise.

// deltaMagic guards the delta frame format.
var deltaMagic = [4]byte{'S', 'K', 'D', '1'}

// deltaFrameVersion is bumped whenever the frame layout changes.
const deltaFrameVersion = 1

// deltaFlagReset marks a watermark re-alignment frame (empty payload).
const deltaFlagReset = 1

// deltaFlagReplace marks a full-state replacement frame: the payload is the
// sender's entire local sketch (not a window delta). A receiver that tracks
// the sender's cumulative shipped mass (see DeltaResponse.CanReplace)
// subtracts that tracker and absorbs the payload in one barrier — by
// linearity exactly the mass the diverged watermark window would have
// carried — then adopts ToGen as the new watermark. FromGen must be zero.
// Replace frames are only sent to receivers that advertised the capability,
// so an older daemon never sees the flag.
const deltaFlagReplace = 2

// deltaFrameHeaderLen is the fixed prefix: magic, version, flags, senderLen.
const deltaFrameHeaderLen = 8

// DeltaFrame is one gossip shipment: the sender's identity, the sender-local
// generation window (FromGen, ToGen] the payload covers, and the payload
// itself — a sketch.EncodeDelta envelope of the difference sketch. Reset
// frames (Reset true, empty payload, FromGen == ToGen) re-align the
// receiver's watermark after a restart on either side.
type DeltaFrame struct {
	Sender  string
	FromGen uint64
	ToGen   uint64
	Reset   bool
	Replace bool
	Payload []byte
}

// AppendDeltaFrame appends the binary encoding of a delta frame to buf and
// returns the extended slice.
func AppendDeltaFrame(buf []byte, f DeltaFrame) []byte {
	buf = append(buf, deltaMagic[:]...)
	buf = append(buf, deltaFrameVersion)
	var flags byte
	if f.Reset {
		flags |= deltaFlagReset
	}
	if f.Replace {
		flags |= deltaFlagReplace
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(f.Sender)))
	buf = append(buf, f.Sender...)
	buf = binary.BigEndian.AppendUint64(buf, f.FromGen)
	buf = binary.BigEndian.AppendUint64(buf, f.ToGen)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Payload)))
	buf = append(buf, f.Payload...)
	return buf
}

// DecodeDeltaFrame parses a delta frame, validating the structural
// invariants (exact length, named sender, monotone generation window, reset
// frames empty and non-reset frames non-empty) so the handler can trust the
// shape before it looks at the watermark.
func DecodeDeltaFrame(data []byte) (DeltaFrame, error) {
	var f DeltaFrame
	if len(data) < deltaFrameHeaderLen {
		return f, fmt.Errorf("server: truncated delta frame (need %d header bytes, have %d)", deltaFrameHeaderLen, len(data))
	}
	if [4]byte(data[:4]) != deltaMagic {
		return f, fmt.Errorf("server: bad delta frame magic %q", data[:4])
	}
	if v := data[4]; v != deltaFrameVersion {
		return f, fmt.Errorf("server: unsupported delta frame version %d (want %d)", v, deltaFrameVersion)
	}
	f.Reset = data[5]&deltaFlagReset != 0
	f.Replace = data[5]&deltaFlagReplace != 0
	senderLen := int(binary.BigEndian.Uint16(data[6:8]))
	rest := data[deltaFrameHeaderLen:]
	if senderLen < 1 {
		return f, fmt.Errorf("server: delta frame has an empty sender id")
	}
	if len(rest) < senderLen+8+8+4 {
		return f, fmt.Errorf("server: truncated delta frame (need %d more bytes after the header, have %d)", senderLen+20, len(rest))
	}
	f.Sender = string(rest[:senderLen])
	rest = rest[senderLen:]
	f.FromGen = binary.BigEndian.Uint64(rest[:8])
	f.ToGen = binary.BigEndian.Uint64(rest[8:16])
	payloadLen := binary.BigEndian.Uint32(rest[16:20])
	payload := rest[20:]
	if uint64(len(payload)) != uint64(payloadLen) {
		return f, fmt.Errorf("server: delta frame payload is %d bytes, header claims %d", len(payload), payloadLen)
	}
	if f.ToGen < f.FromGen {
		return f, fmt.Errorf("server: delta frame generations run backwards (from %d to %d)", f.FromGen, f.ToGen)
	}
	if f.Reset && f.Replace {
		return f, fmt.Errorf("server: delta frame claims to be both a reset and a replace")
	}
	if f.Reset && payloadLen != 0 {
		return f, fmt.Errorf("server: reset delta frame carries a %d-byte payload (must be empty)", payloadLen)
	}
	if !f.Reset && payloadLen == 0 {
		return f, fmt.Errorf("server: delta frame has no payload")
	}
	if f.Replace && f.FromGen != 0 {
		return f, fmt.Errorf("server: replace delta frame declares fromGen %d (must be 0: the payload is the sender's whole local state)", f.FromGen)
	}
	f.Payload = payload
	return f, nil
}

// DecodeBatch parses a binary update batch into a record slice. Transports
// that can consume columns should prefer DecodeBatchColumns; this wrapper
// remains for callers that want the record shape (tests, tooling).
func DecodeBatch(data []byte) ([]engine.Update, error) {
	items, deltas, err := DecodeBatchColumns(data, nil, nil)
	if err != nil {
		return nil, err
	}
	updates := make([]engine.Update, len(items))
	for i := range updates {
		updates[i] = engine.Update{Item: items[i], Delta: deltas[i]}
	}
	return updates, nil
}
