package server

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/engine"
)

// Wire formats of the HTTP API.
//
// Updates travel in one of two bodies, selected by Content-Type:
//
//   - application/json: an UpdateRequest object,
//     {"updates":[{"item":7,"delta":2}, ...]}
//   - application/x-sketch-batch: the length-prefixed binary batch below,
//     which the Client uses and which costs 16 bytes per update instead of
//     ~25 bytes of JSON plus parsing.
//
// Binary batch layout (integers big-endian, floats as IEEE-754 bits):
//
//	magic [4]byte "SKB1"
//	count uint32
//	count x (item uint64, delta float64)
//
// Snapshots travel as application/x-sketch-snapshot: the raw versioned
// encoding produced by the sketch types' MarshalBinary (see
// internal/sketch/encoding.go), untouched by the transport.

// Content types of the HTTP API.
const (
	contentTypeJSON     = "application/json"
	contentTypeBatch    = "application/x-sketch-batch"
	contentTypeSnapshot = "application/x-sketch-snapshot"
)

// batchMagic guards the binary update-batch format.
var batchMagic = [4]byte{'S', 'K', 'B', '1'}

// batchHeaderLen is the fixed prefix: magic plus the count word.
const batchHeaderLen = 8

// batchRecordLen is the size of one (item, delta) record.
const batchRecordLen = 16

// UpdateRequest is the JSON body of POST /v1/update.
type UpdateRequest struct {
	Updates []UpdateJSON `json:"updates"`
}

// UpdateJSON is one (item, delta) record in JSON form.
type UpdateJSON struct {
	Item  uint64  `json:"item"`
	Delta float64 `json:"delta"`
}

// UpdateResponse acknowledges an accepted batch.
type UpdateResponse struct {
	Accepted int `json:"accepted"`
}

// Estimate is one point-query answer.
type Estimate struct {
	Item     uint64  `json:"item"`
	Estimate float64 `json:"estimate"`
}

// QueryResponse is the JSON body of GET /v1/query.
type QueryResponse struct {
	Estimates []Estimate `json:"estimates"`
}

// TopKItem is one ranked heavy-hitter candidate.
type TopKItem struct {
	Item  uint64 `json:"item"`
	Count int64  `json:"count"`
}

// TopKResponse is the JSON body of GET /v1/topk.
type TopKResponse struct {
	Items []TopKItem `json:"items"`
}

// MergeResponse acknowledges a folded-in snapshot.
type MergeResponse struct {
	TotalMass float64 `json:"total_mass"`
}

// Stats is the JSON body of GET /v1/stats.
type Stats struct {
	Width     int     `json:"width"`
	Depth     int     `json:"depth"`
	K         int     `json:"k"`
	Workers   int     `json:"workers"`
	Producers int     `json:"producers"`
	Updates   int64   `json:"updates"`
	Batches   int64   `json:"batches"`
	Merges    int64   `json:"merges"`
	Snapshots int64   `json:"snapshots"`
	TotalMass float64 `json:"total_mass"`
}

// errorResponse is the JSON body of every non-2xx answer.
type errorResponse struct {
	Error string `json:"error"`
}

// AppendBatch appends the binary encoding of updates to buf and returns the
// extended slice.
func AppendBatch(buf []byte, updates []engine.Update) []byte {
	buf = append(buf, batchMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(updates)))
	for _, u := range updates {
		buf = binary.BigEndian.AppendUint64(buf, u.Item)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(u.Delta))
	}
	return buf
}

// AppendBatchColumns appends the binary encoding of parallel key/delta
// columns to buf and returns the extended slice. It produces exactly the
// bytes AppendBatch would for the equivalent record slice — the wire format
// is unchanged; only the in-memory shape differs. The columns must have
// equal length (panics otherwise — silently dropping surplus deltas would
// put a valid-looking but lossy batch on the wire).
func AppendBatchColumns(buf []byte, items []uint64, deltas []float64) []byte {
	if len(items) != len(deltas) {
		panic(fmt.Sprintf("server: AppendBatchColumns length mismatch (%d items, %d deltas)", len(items), len(deltas)))
	}
	buf = append(buf, batchMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(items)))
	for i, item := range items {
		buf = binary.BigEndian.AppendUint64(buf, item)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(deltas[i]))
	}
	return buf
}

// DecodeBatchColumns parses a binary update batch straight into key/delta
// columns, appending to the caller's (typically reused) buffers and
// returning the extended slices — the zero-copy-shape path the server's
// ingest lanes use, one bounds-checked scan with no per-item structs. The
// count word is validated against the actual body length before any
// allocation, so a corrupt header cannot demand unbounded memory.
func DecodeBatchColumns(data []byte, items []uint64, deltas []float64) ([]uint64, []float64, error) {
	if len(data) < batchHeaderLen {
		return items, deltas, fmt.Errorf("server: truncated batch (need %d header bytes, have %d)", batchHeaderLen, len(data))
	}
	if [4]byte(data[:4]) != batchMagic {
		return items, deltas, fmt.Errorf("server: bad batch magic %q", data[:4])
	}
	n := binary.BigEndian.Uint32(data[4:8])
	payload := data[batchHeaderLen:]
	if uint64(len(payload)) != uint64(n)*batchRecordLen {
		return items, deltas, fmt.Errorf("server: batch payload is %d bytes, header claims %d records (%d bytes)",
			len(payload), n, uint64(n)*batchRecordLen)
	}
	for i := 0; i < int(n); i++ {
		rec := payload[i*batchRecordLen : i*batchRecordLen+batchRecordLen]
		items = append(items, binary.BigEndian.Uint64(rec[:8]))
		deltas = append(deltas, math.Float64frombits(binary.BigEndian.Uint64(rec[8:16])))
	}
	return items, deltas, nil
}

// DecodeBatch parses a binary update batch into a record slice. Transports
// that can consume columns should prefer DecodeBatchColumns; this wrapper
// remains for callers that want the record shape (tests, tooling).
func DecodeBatch(data []byte) ([]engine.Update, error) {
	items, deltas, err := DecodeBatchColumns(data, nil, nil)
	if err != nil {
		return nil, err
	}
	updates := make([]engine.Update, len(items))
	for i := range updates {
		updates[i] = engine.Update{Item: items[i], Delta: deltas[i]}
	}
	return updates, nil
}
