package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/engine"
	"repro/internal/stream"
)

// Client is a thin HTTP client for a sketchd Server. Updates are shipped in
// the compact binary batch format; everything else is JSON except Snapshot,
// which returns the raw versioned sketch encoding.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient creates a client for the daemon at base, e.g.
// "http://127.0.0.1:7600". A nil hc means http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// APIError is a non-2xx answer from the daemon: the HTTP status plus the
// server's error envelope (stable code, message, optional remediation
// detail). Callers that must react to specific statuses — the gossip
// replicator treats 409 (watermark conflict) differently from a transport
// failure — unwrap it with errors.As.
type APIError struct {
	Status  int
	Method  string
	Path    string
	Code    string
	Message string
	Detail  string
}

// Error renders the failure with the server's message when it sent one.
func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("server: %s %s: %s (HTTP %d)", e.Method, e.Path, e.Message, e.Status)
	}
	return fmt.Sprintf("server: %s %s: HTTP %d", e.Method, e.Path, e.Status)
}

// do issues a request and decodes the error envelope on non-2xx statuses
// (returned as *APIError).
func (c *Client) do(ctx context.Context, method, path string, contentType string, body []byte) ([]byte, error) {
	return c.doAccept(ctx, method, path, contentType, "", body)
}

// doAccept is do with an explicit Accept header, for the endpoints that
// negotiate a binary response body.
func (c *Client) doAccept(ctx context.Context, method, path, contentType, accept string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode, Method: method, Path: path}
		// The error field is the nested {"code","message","detail"} envelope;
		// daemons predating it sent a flat string, still decoded for
		// compatibility with mixed-version fleets.
		var e struct {
			Error json.RawMessage `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && len(e.Error) > 0 {
			var d ErrorDetail
			var flat string
			switch {
			case json.Unmarshal(e.Error, &d) == nil && d.Message != "":
				apiErr.Code, apiErr.Message, apiErr.Detail = d.Code, d.Message, d.Detail
			case json.Unmarshal(e.Error, &flat) == nil:
				apiErr.Message = flat
			}
		}
		return nil, apiErr
	}
	return data, nil
}

// Update ships a batch of updates (binary format).
func (c *Client) Update(ctx context.Context, updates []engine.Update) error {
	body := AppendBatch(make([]byte, 0, batchHeaderLen+batchRecordLen*len(updates)), updates)
	_, err := c.do(ctx, http.MethodPost, "/v1/update", contentTypeBatch, body)
	return err
}

// UpdateColumns ships parallel key/delta columns (binary format, same wire
// bytes as Update) — the natural call for producers that already hold
// columns, matching the server's column-decoding ingest path end to end.
func (c *Client) UpdateColumns(ctx context.Context, items []uint64, deltas []float64) error {
	if len(items) != len(deltas) {
		return fmt.Errorf("server: UpdateColumns length mismatch (%d items, %d deltas)", len(items), len(deltas))
	}
	body := AppendBatchColumns(make([]byte, 0, batchHeaderLen+batchRecordLen*len(items)), items, deltas)
	_, err := c.do(ctx, http.MethodPost, "/v1/update", contentTypeBatch, body)
	return err
}

// Query returns the estimates for the given items, in the same order.
func (c *Client) Query(ctx context.Context, items ...uint64) ([]float64, error) {
	if len(items) == 0 {
		return nil, nil
	}
	q := url.Values{}
	for _, item := range items {
		q.Add("item", strconv.FormatUint(item, 10))
	}
	data, err := c.do(ctx, http.MethodGet, "/v1/query?"+q.Encode(), "", nil)
	if err != nil {
		return nil, err
	}
	var resp QueryResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("server: decoding query response: %w", err)
	}
	if len(resp.Estimates) != len(items) {
		return nil, fmt.Errorf("server: query returned %d estimates for %d items", len(resp.Estimates), len(items))
	}
	out := make([]float64, len(items))
	for i, e := range resp.Estimates {
		out[i] = e.Estimate
	}
	return out, nil
}

// QueryBatch posts a whole column of point queries in one POST /v1/query
// round-trip (binary key column out, binary estimate column back) and
// returns the estimates in key order. For repeated batches, BatchQuerier
// reuses its encode/decode buffers across calls.
func (c *Client) QueryBatch(ctx context.Context, keys []uint64) ([]float64, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	ests, _, err := (&BatchQuerier{c: c}).Query(ctx, keys)
	return ests, err
}

// BatchQuerier issues batch point queries over a retained pair of buffers —
// the read-side sibling of StreamUpdater's reuse: the SKQ1 request column is
// encoded into, and the SKE1 response column decoded into, the same slices
// on every call, so a steady query loop allocates only what net/http itself
// does. Not safe for concurrent use; create one per goroutine.
type BatchQuerier struct {
	c    *Client
	buf  []byte    // reusable SKQ1 request encoding
	ests []float64 // reusable decoded estimate column
}

// BatchQuerier returns a reusable batch querier against this client's daemon.
func (c *Client) BatchQuerier() *BatchQuerier { return &BatchQuerier{c: c} }

// Query ships keys as one binary column and returns the estimates in key
// order plus the write generation the daemon answered at. The returned slice
// aliases the querier's retained buffer and is valid until the next call.
func (q *BatchQuerier) Query(ctx context.Context, keys []uint64) ([]float64, int64, error) {
	if len(keys) == 0 {
		return nil, 0, nil
	}
	q.buf = AppendKeyColumns(q.buf[:0], keys)
	data, err := q.c.doAccept(ctx, http.MethodPost, "/v1/query", contentTypeKeys, contentTypeEstimates, q.buf)
	if err != nil {
		return nil, 0, err
	}
	var gen int64
	q.ests, gen, err = DecodeEstimateColumns(data, q.ests[:0])
	if err != nil {
		return nil, 0, fmt.Errorf("server: decoding batch query response: %w", err)
	}
	if len(q.ests) != len(keys) {
		return nil, 0, fmt.Errorf("server: batch query returned %d estimates for %d keys", len(q.ests), len(keys))
	}
	return q.ests, gen, nil
}

// TopK returns up to k ranked heavy-hitter candidates (all of them if k <= 0).
func (c *Client) TopK(ctx context.Context, k int) ([]stream.ItemCount, error) {
	path := "/v1/topk"
	if k > 0 {
		path += "?k=" + strconv.Itoa(k)
	}
	return c.ranked(ctx, path)
}

// HeavyHitters returns the candidates whose estimate reaches phi times the
// total stream mass.
func (c *Client) HeavyHitters(ctx context.Context, phi float64) ([]stream.ItemCount, error) {
	return c.ranked(ctx, "/v1/topk?phi="+strconv.FormatFloat(phi, 'g', -1, 64))
}

func (c *Client) ranked(ctx context.Context, path string) ([]stream.ItemCount, error) {
	data, err := c.do(ctx, http.MethodGet, path, "", nil)
	if err != nil {
		return nil, err
	}
	var resp TopKResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("server: decoding topk response: %w", err)
	}
	out := make([]stream.ItemCount, len(resp.Items))
	for i, it := range resp.Items {
		out[i] = stream.ItemCount{Item: it.Item, Count: it.Count}
	}
	return out, nil
}

// Recover asks the daemon to run sparse recovery over its live counters.
// Zero-valued request fields select the daemon's configured defaults.
func (c *Client) Recover(ctx context.Context, req RecoverRequest) (RecoverResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return RecoverResponse{}, err
	}
	data, err := c.do(ctx, http.MethodPost, "/v1/recover", contentTypeJSON, body)
	if err != nil {
		return RecoverResponse{}, err
	}
	var resp RecoverResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return RecoverResponse{}, fmt.Errorf("server: decoding recover response: %w", err)
	}
	return resp, nil
}

// SetQuery returns calibrated estimates over the candidate support S (the
// set-query problem). An empty estimator selects the daemon's default
// (isolate).
func (c *Client) SetQuery(ctx context.Context, support []uint64, estimator string) (SetQueryResponse, error) {
	body, err := json.Marshal(SetQueryRequest{Support: support, Estimator: estimator})
	if err != nil {
		return SetQueryResponse{}, err
	}
	data, err := c.do(ctx, http.MethodPost, "/v1/setquery", contentTypeJSON, body)
	if err != nil {
		return SetQueryResponse{}, err
	}
	var resp SetQueryResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return SetQueryResponse{}, fmt.Errorf("server: decoding setquery response: %w", err)
	}
	return resp, nil
}

// Spectrum posts a sampled signal and returns its sparse Fourier support.
func (c *Client) Spectrum(ctx context.Context, req SpectrumRequest) (SpectrumResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return SpectrumResponse{}, err
	}
	data, err := c.do(ctx, http.MethodPost, "/v1/spectrum", contentTypeJSON, body)
	if err != nil {
		return SpectrumResponse{}, err
	}
	var resp SpectrumResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return SpectrumResponse{}, fmt.Errorf("server: decoding spectrum response: %w", err)
	}
	return resp, nil
}

// Snapshot fetches the daemon's exact merged state as versioned binary
// encoding bytes, suitable for Merge on a peer or for UnmarshalBinary.
func (c *Client) Snapshot(ctx context.Context) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/v1/snapshot", "", nil)
}

// Merge posts snapshot bytes (from Snapshot on a peer) to be folded into the
// daemon's state via the exact linear merge.
func (c *Client) Merge(ctx context.Context, snapshot []byte) error {
	_, err := c.do(ctx, http.MethodPost, "/v1/merge", contentTypeSnapshot, snapshot)
	return err
}

// Bootstrap fetches the daemon's barrier-consistent bootstrap payload — its
// full snapshot, per-sender gossip watermarks and received-mass trackers —
// for a cold-starting node to absorb before it opens for traffic. nodeID
// identifies the requester (logged on the serving side).
func (c *Client) Bootstrap(ctx context.Context, nodeID string) (*BootstrapPayload, error) {
	path := "/v1/bootstrap"
	if nodeID != "" {
		path += "?node=" + url.QueryEscape(nodeID)
	}
	data, err := c.doAccept(ctx, http.MethodGet, path, "", contentTypeBootstrap, nil)
	if err != nil {
		return nil, err
	}
	p, err := DecodeBootstrapResponse(data, 0)
	if err != nil {
		return nil, fmt.Errorf("server: decoding bootstrap response: %w", err)
	}
	return p, nil
}

// PushDelta ships a replication delta frame to the daemon's /v1/delta
// endpoint and returns its watermark acknowledgment. The server applies the
// frame at most once (see DeltaFrame for the watermark protocol), so
// retrying a frame whose response was lost is always safe. A watermark
// conflict comes back as an *APIError with Status 409.
func (c *Client) PushDelta(ctx context.Context, frame DeltaFrame) (DeltaResponse, error) {
	return c.pushDeltaRaw(ctx, AppendDeltaFrame(nil, frame))
}

// pushDeltaRaw posts pre-encoded delta frame bytes — the replicator retries
// un-acked frames verbatim, so it keeps the encoding around.
func (c *Client) pushDeltaRaw(ctx context.Context, frame []byte) (DeltaResponse, error) {
	data, err := c.do(ctx, http.MethodPost, "/v1/delta", contentTypeDelta, frame)
	if err != nil {
		return DeltaResponse{}, err
	}
	var resp DeltaResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		return DeltaResponse{}, fmt.Errorf("server: decoding delta response: %w", err)
	}
	return resp, nil
}

// Stats fetches the daemon's counters and sketch shape.
func (c *Client) Stats(ctx context.Context) (Stats, error) {
	data, err := c.do(ctx, http.MethodGet, "/v1/stats", "", nil)
	if err != nil {
		return Stats{}, err
	}
	var stats Stats
	if err := json.Unmarshal(data, &stats); err != nil {
		return Stats{}, fmt.Errorf("server: decoding stats: %w", err)
	}
	return stats, nil
}
