package server

import (
	"bytes"
	"testing"
)

// FuzzDecodeBatchColumns attacks the "SKB1" ingest frame parser — the
// hottest untrusted-input surface in the daemon (every POST /v1/batch body
// lands here). Arbitrary bytes must decode-or-error without panicking and
// without header-driven allocation; accepted input must re-encode through
// AppendBatchColumns byte-identically (the format has no non-canonical
// freedom — counts, items and delta bits are all verbatim).
func FuzzDecodeBatchColumns(f *testing.F) {
	f.Add(AppendBatchColumns(nil, nil, nil))
	f.Add(AppendBatchColumns(nil, []uint64{1, 2, 3}, []float64{1, -0.5, 3.25}))
	f.Add(AppendBatchColumns(nil,
		[]uint64{0, ^uint64(0), 1 << 33},
		[]float64{0, -1e300, 0.1}))
	f.Add([]byte("SKB1\x00\x00\x00\x01junkjunkjunkjunk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		items, deltas, err := DecodeBatchColumns(data, nil, nil)
		if err != nil {
			return
		}
		if len(items) != len(deltas) {
			t.Fatalf("decoded %d items but %d deltas", len(items), len(deltas))
		}
		re := AppendBatchColumns(nil, items, deltas)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted batch does not re-encode byte-identically (%d vs %d bytes)", len(re), len(data))
		}
	})
}
