package server

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeBatchColumns attacks the "SKB1" ingest frame parser — the
// hottest untrusted-input surface in the daemon (every POST /v1/batch body
// lands here). Arbitrary bytes must decode-or-error without panicking and
// without header-driven allocation; accepted input must re-encode through
// AppendBatchColumns byte-identically (the format has no non-canonical
// freedom — counts, items and delta bits are all verbatim).
func FuzzDecodeBatchColumns(f *testing.F) {
	f.Add(AppendBatchColumns(nil, nil, nil))
	f.Add(AppendBatchColumns(nil, []uint64{1, 2, 3}, []float64{1, -0.5, 3.25}))
	f.Add(AppendBatchColumns(nil,
		[]uint64{0, ^uint64(0), 1 << 33},
		[]float64{0, -1e300, 0.1}))
	f.Add([]byte("SKB1\x00\x00\x00\x01junkjunkjunkjunk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		items, deltas, err := DecodeBatchColumns(data, nil, nil)
		if err != nil {
			return
		}
		if len(items) != len(deltas) {
			t.Fatalf("decoded %d items but %d deltas", len(items), len(deltas))
		}
		re := AppendBatchColumns(nil, items, deltas)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted batch does not re-encode byte-identically (%d vs %d bytes)", len(re), len(data))
		}
	})
}

// FuzzDecodeKeyColumns attacks the "SKQ1" batch-read key column parser — the
// untrusted-input surface of POST /v1/query. Arbitrary bytes must
// decode-or-error without panicking and without header-driven allocation;
// accepted input must re-encode through AppendKeyColumns byte-identically
// (the format is canonical: count and key bits are verbatim).
func FuzzDecodeKeyColumns(f *testing.F) {
	f.Add(AppendKeyColumns(nil, nil))
	f.Add(AppendKeyColumns(nil, []uint64{1, 2, 3}))
	f.Add(AppendKeyColumns(nil, []uint64{0, ^uint64(0), 1 << 33}))
	f.Add([]byte("SKQ1\x00\x00\x00\x01junkjunk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		keys, err := DecodeKeyColumns(data, nil)
		if err != nil {
			return
		}
		re := AppendKeyColumns(nil, keys)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted key column does not re-encode byte-identically (%d vs %d bytes)", len(re), len(data))
		}
	})
}

// FuzzDecodeBootstrapResponse attacks the "SKP1" state-transfer parser — the
// untrusted surface of a cold-starting node, which feeds whatever a
// configured bootstrap source returns straight into this decoder. Arbitrary
// bytes must decode-or-error without panicking, declared section lengths
// must be validated against the remaining input (and the caller's section
// cap) before any allocation, and any accepted transfer must re-encode
// through AppendBootstrapResponse byte-identically: the encoding is
// canonical (sections in fixed order, sender ids sorted), so decode∘encode
// is a fixed point on everything the decoder accepts.
func FuzzDecodeBootstrapResponse(f *testing.F) {
	golden, err := AppendBootstrapResponse(nil, BootstrapPayload{
		NodeID:     "node-a",
		LocalGen:   42,
		Watermarks: map[string]uint64{"node-a": 42, "node-b": 7},
		Snapshot:   []byte("snapshot-bytes-stand-in"),
		Senders: map[string][]byte{
			"node-a": []byte("tracker-a"),
			"node-b": []byte("tracker-b"),
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(golden)
	empty, err := AppendBootstrapResponse(nil, BootstrapPayload{NodeID: "x"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte("SKP1\x01\x00\x00\x05junkjunkjunkjunk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := DecodeBootstrapResponse(data, 1<<20)
		if err != nil {
			return
		}
		re, err := AppendBootstrapResponse(nil, *payload)
		if err != nil {
			t.Fatalf("accepted transfer does not re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted transfer does not re-encode byte-identically (%d vs %d bytes)", len(re), len(data))
		}
	})
}

// FuzzDecodeStreamFrame attacks the "SKS1" streaming-ingest frame parser —
// the untrusted surface of the raw TCP listener and POST /v1/stream.
// Arbitrary bytes must decode-or-error without panicking, the declared-length
// cap must hold before any allocation, and any accepted frame must re-encode
// through AppendStreamFrame to exactly the bytes consumed (the encoding is
// canonical: unknown versions, flag bits and types are all rejected).
func FuzzDecodeStreamFrame(f *testing.F) {
	f.Add(AppendStreamFrame(nil, StreamFrame{Type: streamFrameHello, Payload: []byte("session")}))
	f.Add(AppendStreamFrame(nil, StreamFrame{Type: streamFrameAck,
		Payload: binary.BigEndian.AppendUint64(binary.BigEndian.AppendUint64(nil, 9), 17)}))
	f.Add(AppendStreamFrame(nil, StreamFrame{Type: streamFrameError, Payload: []byte("bad frame")}))
	f.Add(appendDataFrame(nil, 1, true, []uint64{7, 1 << 40}, []float64{2.5, -1}))
	f.Add(appendDataFrame(nil, 2, false, nil, nil))
	f.Add([]byte("SKS1\x01\x00\xff\xff\xff\xffjunk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		frame, n, err := DecodeStreamFrame(data, 1<<20)
		if err != nil {
			return
		}
		if n < streamHeaderLen+streamTrailerLen || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		re := AppendStreamFrame(nil, frame)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("accepted frame does not re-encode byte-identically (%d vs %d bytes)", len(re), n)
		}
	})
}
