package server

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"math/cmplx"
	"net/http"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/fourier"
	"repro/internal/sketch"
	"repro/internal/xrand"
)

// plantedStream is a k-sparse frequency vector for recovery tests: item ->
// true count, all within a small universe.
var planted = map[uint64]float64{
	5: 9000, 77: 8000, 1023: 7000, 1500: 6000,
	2048: 5000, 3000: 4000, 3500: 3000, 4095: 2000,
}

func ingestPlanted(t *testing.T, client *Client, items map[uint64]float64) {
	t.Helper()
	var updates []engine.Update
	for item, count := range items {
		updates = append(updates, engine.Update{Item: item, Delta: count})
	}
	if err := client.Update(context.Background(), updates); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverExactOnSparseStream is the recovery acceptance invariant: a
// k-sparse ingest is reproduced exactly — planted support, planted counts,
// deviation 0 — by every recovery algorithm, from live counters over HTTP.
func TestRecoverExactOnSparseStream(t *testing.T) {
	cfg := Config{Width: 2048, Depth: 5, K: 32, Seed: 7, RecoverUniverse: 4096}
	_, client := testDaemon(t, cfg)
	ingestPlanted(t, client, planted)

	for _, algo := range []string{"sketch", "smp", "omp", "iht", "ista"} {
		resp, err := client.Recover(context.Background(), RecoverRequest{Algo: algo, K: len(planted)})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if resp.Algo != algo || resp.Universe != 4096 {
			t.Fatalf("%s: response echoes algo=%q universe=%d", algo, resp.Algo, resp.Universe)
		}
		if len(resp.Entries) != len(planted) {
			t.Fatalf("%s: recovered %d entries, want %d: %+v", algo, len(resp.Entries), len(planted), resp.Entries)
		}
		for _, e := range resp.Entries {
			want, ok := planted[e.Item]
			if !ok {
				t.Fatalf("%s: spurious item %d in %+v", algo, e.Item, resp.Entries)
			}
			// ISTA's l1 penalty shrinks estimates; the support must still be
			// exact, the values within its soft-threshold bias.
			tol := 1e-6
			if algo == "ista" {
				tol = 0.2 * want
			}
			if math.Abs(e.Estimate-want) > tol {
				t.Fatalf("%s: item %d estimate %v, want %v (tol %v)", algo, e.Item, e.Estimate, want, tol)
			}
		}
		if resp.ErrorBound <= 0 || resp.Confidence <= 0 || resp.Confidence >= 1 {
			t.Fatalf("%s: implausible bound/confidence: %+v", algo, resp)
		}
	}
}

// TestRecoverTwoDaemonExactness is the distributed version: two daemons
// ingest disjoint halves of the planted stream, one merges the other's
// snapshot, and /v1/recover (omp, iht, smp) over the merged counters matches
// the single-threaded reference recovery exactly.
func TestRecoverTwoDaemonExactness(t *testing.T) {
	cfg := Config{Width: 2048, Depth: 5, K: 32, Seed: 7, RecoverUniverse: 4096}
	_, clientA := testDaemon(t, cfg)
	_, clientB := testDaemon(t, cfg)
	ctx := context.Background()

	// Reference: one tracker sees the whole stream.
	reference := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	i := 0
	for item, count := range planted {
		reference.Update(item, count)
		half := clientA
		if i%2 == 1 {
			half = clientB
		}
		if err := half.Update(ctx, []engine.Update{{Item: item, Delta: count}}); err != nil {
			t.Fatal(err)
		}
		i++
	}
	snap, err := clientB.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := clientA.Merge(ctx, snap); err != nil {
		t.Fatal(err)
	}

	m, err := engine.NewTrackerMeasurement(reference, 4096)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{"omp", "iht", "smp"} {
		resp, err := clientA.Recover(ctx, RecoverRequest{Algo: algo, K: len(planted)})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		ref, err := recovererFor(algo, cfg.withDefaults().RecoverIters).Recover(m, m.Measurements(), len(planted))
		if err != nil {
			t.Fatalf("%s reference: %v", algo, err)
		}
		if len(resp.Entries) != len(planted) {
			t.Fatalf("%s: recovered %d entries, want %d", algo, len(resp.Entries), len(planted))
		}
		for _, e := range resp.Entries {
			if _, ok := planted[e.Item]; !ok {
				t.Fatalf("%s: spurious item %d", algo, e.Item)
			}
			if math.Abs(e.Estimate-ref[e.Item]) > 1e-9 {
				t.Fatalf("%s: item %d served %v, reference %v", algo, e.Item, e.Estimate, ref[e.Item])
			}
			if math.Abs(e.Estimate-planted[e.Item]) > 1e-6*planted[e.Item] {
				t.Fatalf("%s: item %d estimate %v deviates from planted %v", algo, e.Item, e.Estimate, planted[e.Item])
			}
		}
	}
}

// TestSetQueryAtLeastAsAccurateAsQuery: calibrated set-query estimates over
// the true support are never farther from the truth than the per-key
// /v1/query answers, and never below the truth (non-negative stream).
func TestSetQueryAtLeastAsAccurateAsQuery(t *testing.T) {
	// A deliberately narrow sketch so collisions actually happen and the
	// isolate estimator has bias to remove.
	cfg := Config{Width: 64, Depth: 4, K: 32, Seed: 3}
	_, client := testDaemon(t, cfg)
	ctx := context.Background()

	truth := map[uint64]float64{}
	var updates []engine.Update
	for item, count := range planted {
		truth[item] = count
		updates = append(updates, engine.Update{Item: item, Delta: count})
	}
	// Background tail traffic to pollute buckets.
	r := xrand.New(99)
	for i := 0; i < 3000; i++ {
		item := uint64(10000 + r.Intn(5000))
		updates = append(updates, engine.Update{Item: item, Delta: 1})
		truth[item]++
	}
	if err := client.Update(ctx, updates); err != nil {
		t.Fatal(err)
	}

	support := make([]uint64, 0, len(planted))
	for item := range planted {
		support = append(support, item)
	}
	resp, err := client.SetQuery(ctx, support, "")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Estimator != "isolate" {
		t.Fatalf("default estimator = %q, want isolate", resp.Estimator)
	}
	point, err := client.Query(ctx, support...)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range resp.Estimates {
		if e.Item != support[i] {
			t.Fatalf("estimate %d is for item %d, want %d (support order)", i, e.Item, support[i])
		}
		if e.Estimate < truth[e.Item]-1e-9 {
			t.Fatalf("item %d: set-query estimate %v below truth %v", e.Item, e.Estimate, truth[e.Item])
		}
		if e.Estimate > point[i]+1e-9 {
			t.Fatalf("item %d: set-query estimate %v above point query %v — not calibrated", e.Item, e.Estimate, point[i])
		}
	}
	// The min estimator must reproduce /v1/query exactly.
	minResp, err := client.SetQuery(ctx, support, "min")
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range minResp.Estimates {
		if e.Estimate != point[i] {
			t.Fatalf("item %d: min estimator %v != point query %v", e.Item, e.Estimate, point[i])
		}
	}
}

// TestSpectrumServesSparseFFT posts a synthesized 4-sparse signal and expects
// the exact planted frequencies back.
func TestSpectrumServesSparseFFT(t *testing.T) {
	_, client := testDaemon(t, Config{Width: 64, Depth: 2, K: 4, Seed: 11})
	const n = 1 << 10
	want := map[int]complex128{37: 3 + 1i, 200: complex(2.5, 0), 511: 1 - 2i, 900: complex(0, 4)}
	spec := make([]complex128, n)
	for f, v := range want {
		spec[f] = v
	}
	x := fourier.InverseFFT(spec)
	req := SpectrumRequest{Signal: make([]float64, n), SignalImag: make([]float64, n), K: len(want)}
	for i, v := range x {
		req.Signal[i], req.SignalImag[i] = real(v), imag(v)
	}
	resp, err := client.Spectrum(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Coefficients) != len(want) {
		t.Fatalf("recovered %d coefficients, want %d: %+v", len(resp.Coefficients), len(want), resp.Coefficients)
	}
	for _, c := range resp.Coefficients {
		v, ok := want[c.Freq]
		if !ok {
			t.Fatalf("spurious frequency %d", c.Freq)
		}
		if cmplx.Abs(complex(c.Re, c.Im)-v) > 1e-6 {
			t.Fatalf("frequency %d recovered %v%+vi, want %v", c.Freq, c.Re, c.Im, v)
		}
	}
}

// TestRecoverGenMatchesReads: the gen stamped on recovery responses is the
// same barrier-snapshot generation the point-query and top-k reads report.
func TestRecoverGenMatchesReads(t *testing.T) {
	_, client := testDaemon(t, Config{Width: 512, Depth: 4, K: 8, Seed: 1, RecoverUniverse: 1024})
	ctx := context.Background()
	ingestPlanted(t, client, map[uint64]float64{1: 10, 2: 20})

	data, err := client.do(ctx, http.MethodGet, "/v1/query?item=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var q QueryResponse
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.Gen == 0 {
		t.Fatal("query response missing gen")
	}
	rec, err := client.Recover(ctx, RecoverRequest{Algo: "sketch", K: 2})
	if err != nil {
		t.Fatal(err)
	}
	sq, err := client.SetQuery(ctx, []uint64{1, 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Gen != q.Gen || sq.Gen != q.Gen {
		t.Fatalf("gen mismatch across reads: query %d, recover %d, setquery %d", q.Gen, rec.Gen, sq.Gen)
	}
}

// TestRecoverRespectsAlgoGate: a daemon started with a restricted
// -recover-algos list refuses the others with a 400 naming the enabled set.
func TestRecoverRespectsAlgoGate(t *testing.T) {
	_, client := testDaemon(t, Config{Width: 512, Depth: 4, K: 8, Seed: 1, RecoverAlgos: []string{"sketch", "smp"}})
	ctx := context.Background()
	if _, err := client.Recover(ctx, RecoverRequest{Algo: "smp", K: 2}); err != nil {
		t.Fatalf("enabled algo rejected: %v", err)
	}
	_, err := client.Recover(ctx, RecoverRequest{Algo: "omp", K: 2})
	apiErr, ok := errAsAPI(err)
	if !ok || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("disabled algo: got %v, want 400", err)
	}
	if !strings.Contains(apiErr.Detail, "sketch, smp") {
		t.Fatalf("error detail %q does not name the enabled algorithms", apiErr.Detail)
	}
	if _, err := New(Config{RecoverAlgos: []string{"nope"}}); err == nil {
		t.Fatal("New accepted an unknown RecoverAlgos entry")
	}
}

func errAsAPI(err error) (*APIError, bool) {
	apiErr, ok := err.(*APIError)
	return apiErr, ok
}

// TestErrorEnvelopeOnEveryRoute is the unified-error acceptance check: a
// failing request on every /v1/* route answers the nested JSON envelope with
// a stable code and a useful message.
func TestErrorEnvelopeOnEveryRoute(t *testing.T) {
	srv, client := testDaemon(t, Config{Width: 256, Depth: 3, K: 8, Seed: 1, RecoverMaxK: 16})
	_ = srv

	// A wrong-family sketch for /v1/merge: a raw CountSketch encoding where
	// a tracker snapshot is required.
	wrongFamily, err := sketch.NewCountSketch(xrand.New(1), 256, 3).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		ct         string
		wantStatus int
		wantCode   string
		wantWord   string
	}{
		{"update bad json", "POST", "/v1/update", "{", contentTypeJSON, 400, "invalid_argument", "decoding"},
		{"update bad content type", "POST", "/v1/update", "x", "text/csv", 415, "unsupported_media_type", "Content-Type"},
		{"query missing item", "GET", "/v1/query", "", "", 400, "invalid_argument", "item"},
		{"query bad estimator", "GET", "/v1/query?item=1&estimator=magic", "", "", 400, "invalid_argument", "estimator"},
		{"topk bad k", "GET", "/v1/topk?k=-3", "", "", 400, "invalid_argument", "k"},
		{"recover bad algo", "GET", "/v1/recover?algo=magic", "", "", 400, "invalid_argument", "algorithm"},
		{"recover oversized k", "GET", "/v1/recover?k=100000", "", "", 400, "invalid_argument", "k"},
		{"recover bad universe", "GET", "/v1/recover?universe=99999999", "", "", 400, "invalid_argument", "universe"},
		{"setquery empty support", "POST", "/v1/setquery", `{"support":[]}`, contentTypeJSON, 400, "invalid_argument", "support"},
		{"setquery duplicate item", "POST", "/v1/setquery", `{"support":[7,8,7]}`, contentTypeJSON, 400, "invalid_argument", "more than once"},
		{"setquery malformed json", "POST", "/v1/setquery", `{"support":"x"}`, contentTypeJSON, 400, "invalid_argument", "decoding"},
		{"setquery bad estimator", "POST", "/v1/setquery", `{"support":[1],"estimator":"magic"}`, contentTypeJSON, 400, "invalid_argument", "estimator"},
		{"spectrum not power of two", "POST", "/v1/spectrum", `{"signal":[1,2,3],"k":1}`, contentTypeJSON, 400, "invalid_argument", "power of two"},
		{"spectrum bad k", "POST", "/v1/spectrum", `{"signal":[1,2,3,4],"k":9}`, contentTypeJSON, 400, "invalid_argument", "k"},
		{"spectrum bad algo", "POST", "/v1/spectrum", `{"signal":[1,2,3,4],"k":1,"algo":"magic"}`, contentTypeJSON, 400, "invalid_argument", "algorithm"},
		{"merge empty body", "POST", "/v1/merge", "", contentTypeSnapshot, 400, "invalid_argument", "empty"},
		{"merge wrong family", "POST", "/v1/merge", string(wrongFamily), contentTypeSnapshot, 400, "invalid_argument", ""},
		{"delta bad frame", "POST", "/v1/delta", "junk", contentTypeDelta, 400, "invalid_argument", "delta"},
		{"wrong method", "DELETE", "/v1/update", "", "", 405, "method_not_allowed", "POST"},
		{"unknown endpoint", "GET", "/v1/nope", "", "", 404, "not_found", "endpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, envelope := rawRequest(t, client, tc.method, tc.path, tc.ct, tc.body, "")
			if status != tc.wantStatus {
				t.Fatalf("status %d, want %d (body %s)", status, tc.wantStatus, envelope)
			}
			var resp errorResponse
			if err := json.Unmarshal([]byte(envelope), &resp); err != nil {
				t.Fatalf("body is not the JSON envelope: %v (%s)", err, envelope)
			}
			if resp.Error.Code != tc.wantCode {
				t.Fatalf("code %q, want %q", resp.Error.Code, tc.wantCode)
			}
			if resp.Error.Message == "" {
				t.Fatal("envelope has an empty message")
			}
			if tc.wantWord != "" && !strings.Contains(envelope, tc.wantWord) {
				t.Fatalf("envelope %q does not mention %q", envelope, tc.wantWord)
			}
		})
	}

	// Legacy escape hatch: Accept: text/plain gets the old plain-text body.
	status, body := rawRequest(t, client, "GET", "/v1/query", "", "", "text/plain")
	if status != http.StatusBadRequest {
		t.Fatalf("legacy request status %d, want 400", status)
	}
	if strings.Contains(body, "{") {
		t.Fatalf("Accept: text/plain still got JSON: %s", body)
	}
}

// rawRequest issues a hand-rolled request against the daemon behind client
// and returns the status and body.
func rawRequest(t *testing.T, client *Client, method, path, ct, body, accept string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(method, client.base+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := client.hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}
