package server

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Batch read wire formats.
//
// POST /v1/query accepts a whole column of point-query keys in one of two
// bodies, selected by Content-Type:
//
//   - application/json: a QueryBatchRequest object, {"keys":[7,8,...]}
//   - application/x-sketch-keys: the length-prefixed binary key column below,
//     the read-side twin of the "SKB1" ingest batch (8 bytes per key instead
//     of decimal JSON plus parsing).
//
// Binary key column layout (integers big-endian):
//
//	magic [4]byte "SKQ1"
//	count uint32
//	count x (key uint64)
//
// The answer is a QueryBatchResponse JSON object by default; clients that
// send Accept: application/x-sketch-estimates get the binary estimate column
// below instead, which the reusable client (BatchQuerier) decodes straight
// into its retained buffers:
//
//	magic [4]byte "SKE1"
//	gen   int64  write generation of the epoch that answered (two's complement)
//	count uint32
//	count x (estimate float64, IEEE-754 bits)
//
// Both formats are versioned by their magic: a layout change bumps the
// trailing digit and old decoders reject the new bytes outright.

// Content types of the batch read path.
const (
	contentTypeKeys      = "application/x-sketch-keys"
	contentTypeEstimates = "application/x-sketch-estimates"
)

// keyColumnMagic guards the binary key-column format.
var keyColumnMagic = [4]byte{'S', 'K', 'Q', '1'}

// keyColumnHeaderLen is the fixed prefix: magic plus the count word.
const keyColumnHeaderLen = 8

// keyRecordLen is the size of one key.
const keyRecordLen = 8

// estimateColumnMagic guards the binary estimate-column format.
var estimateColumnMagic = [4]byte{'S', 'K', 'E', '1'}

// estimateColumnHeaderLen is the fixed prefix: magic, generation, count.
const estimateColumnHeaderLen = 16

// estimateRecordLen is the size of one estimate.
const estimateRecordLen = 8

// QueryBatchRequest is the JSON body of POST /v1/query.
type QueryBatchRequest struct {
	Keys []uint64 `json:"keys"`
}

// QueryBatchResponse is the JSON body of POST /v1/query: estimates in key
// order, all answered from one pinned read epoch at generation Gen.
type QueryBatchResponse struct {
	Estimates []float64 `json:"estimates"`
	Gen       int64     `json:"gen"`
}

// AppendKeyColumns appends the binary encoding of a key column to buf and
// returns the extended slice.
func AppendKeyColumns(buf []byte, keys []uint64) []byte {
	buf = append(buf, keyColumnMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(keys)))
	for _, key := range keys {
		buf = binary.BigEndian.AppendUint64(buf, key)
	}
	return buf
}

// DecodeKeyColumns parses a binary key column, appending to the caller's
// (typically reused) buffer and returning the extended slice. The count word
// is validated against the actual body length before any allocation, so a
// corrupt header cannot demand unbounded memory.
func DecodeKeyColumns(data []byte, keys []uint64) ([]uint64, error) {
	if len(data) < keyColumnHeaderLen {
		return keys, fmt.Errorf("server: truncated key column (need %d header bytes, have %d)", keyColumnHeaderLen, len(data))
	}
	if [4]byte(data[:4]) != keyColumnMagic {
		return keys, fmt.Errorf("server: bad key column magic %q", data[:4])
	}
	n := binary.BigEndian.Uint32(data[4:8])
	payload := data[keyColumnHeaderLen:]
	if uint64(len(payload)) != uint64(n)*keyRecordLen {
		return keys, fmt.Errorf("server: key column payload is %d bytes, header claims %d keys (%d bytes)",
			len(payload), n, uint64(n)*keyRecordLen)
	}
	for i := 0; i < int(n); i++ {
		keys = append(keys, binary.BigEndian.Uint64(payload[i*keyRecordLen:i*keyRecordLen+keyRecordLen]))
	}
	return keys, nil
}

// AppendEstimateColumns appends the binary encoding of an estimate column
// answered at write generation gen to buf and returns the extended slice.
func AppendEstimateColumns(buf []byte, gen int64, ests []float64) []byte {
	buf = append(buf, estimateColumnMagic[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(gen))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(ests)))
	for _, est := range ests {
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(est))
	}
	return buf
}

// DecodeEstimateColumns parses a binary estimate column, appending to the
// caller's (typically reused) buffer, and returns the extended slice plus the
// write generation the estimates were answered at. Like the other decoders,
// the count word is checked against the body length before anything grows.
func DecodeEstimateColumns(data []byte, ests []float64) ([]float64, int64, error) {
	if len(data) < estimateColumnHeaderLen {
		return ests, 0, fmt.Errorf("server: truncated estimate column (need %d header bytes, have %d)", estimateColumnHeaderLen, len(data))
	}
	if [4]byte(data[:4]) != estimateColumnMagic {
		return ests, 0, fmt.Errorf("server: bad estimate column magic %q", data[:4])
	}
	gen := int64(binary.BigEndian.Uint64(data[4:12]))
	n := binary.BigEndian.Uint32(data[12:16])
	payload := data[estimateColumnHeaderLen:]
	if uint64(len(payload)) != uint64(n)*estimateRecordLen {
		return ests, 0, fmt.Errorf("server: estimate column payload is %d bytes, header claims %d estimates (%d bytes)",
			len(payload), n, uint64(n)*estimateRecordLen)
	}
	for i := 0; i < int(n); i++ {
		ests = append(ests, math.Float64frombits(binary.BigEndian.Uint64(payload[i*estimateRecordLen:i*estimateRecordLen+estimateRecordLen])))
	}
	return ests, gen, nil
}
