package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/sketch"
)

// Streaming ingest ------------------------------------------------------------
//
// A producer that keeps one connection open pays the HTTP request/response
// cycle zero times instead of once per batch: it frames SKB1 batch-columns
// payloads onto the connection and the server decodes each frame straight
// into a producer lane pinned to that connection for its whole lifetime.
// The same framing travels over two transports — a raw TCP listener
// (Server.ServeStream, `sketchd -stream-addr`) and chunked HTTP
// (POST /v1/stream, full-duplex, so nothing new is needed through proxies).
//
// Frame layout (integers big-endian):
//
//	magic   [4]byte "SKS1"
//	version uint8   streamFrameVersion
//	flags   uint8   low nibble: frame type; bit 0x10: ack requested
//	length  uint32  payload length (capped by Config.MaxFrameBytes)
//	payload length bytes
//	crc     uint32  CRC-32C (Castagnoli) over header and payload
//
// Frame types and their payloads:
//
//	data  (0): seq uint64, then an SKB1 batch (see AppendBatchColumns).
//	          seq numbers start at 1 and increase by exactly 1 per frame on a
//	          session. A zero-record batch is legal: it advances seq without
//	          touching a counter (clients use it to elicit a final ack).
//	hello (1): the session name (1..256 bytes). Must be the first frame on
//	          every connection; the server answers with an ack carrying the
//	          session's applied watermark, which is what makes reconnection
//	          exactly-once — the client resumes from watermark+1 and the
//	          server absorbs any replayed frame at or below it as a no-op.
//	ack   (2): seq uint64 (highest applied frame, cumulative), gen uint64
//	          (the server's write generation). Sent server→client on every
//	          ack-requested frame, every StreamAckEvery applied frames, and
//	          in answer to hello.
//	error (3): a human-readable message; the server closes the connection
//	          after sending one. Frames the session has already acked are
//	          safe regardless — only unacked frames need replaying.
//
// One engine producer lane is created per connection and closed when the
// connection ends, so concurrent streams never contend on a lane and the
// steady state per frame is: read into a reused buffer, decode into the
// connection's reused columns, hand the columns to the pinned producer.
// Nothing on that path allocates.

// streamMagic guards the streaming ingest frame format.
var streamMagic = [4]byte{'S', 'K', 'S', '1'}

// streamFrameVersion is bumped whenever the frame layout changes.
const streamFrameVersion = 1

// Frame types (the low nibble of the flags byte).
const (
	streamFrameData  = 0x0
	streamFrameHello = 0x1
	streamFrameAck   = 0x2
	streamFrameError = 0x3
)

// streamFlagAckReq asks the server to answer this frame with an ack.
const streamFlagAckReq = 0x10

// streamTypeMask extracts the frame type from the flags byte.
const streamTypeMask = 0x0f

// streamHeaderLen is the fixed prefix: magic, version, flags, length.
const streamHeaderLen = 10

// streamTrailerLen is the CRC-32C trailer.
const streamTrailerLen = 4

// streamHelloMaxLen caps the session name carried by a hello frame.
const streamHelloMaxLen = 256

// castagnoli is the CRC-32C table shared by every frame encode and decode.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrStreamFrameTooLarge is returned (wrapped, with the declared size) when a
// frame header declares a payload longer than the configured cap — the
// streaming twin of sketch.DecodeDeltaLimit's guard: a forged ~20-byte header
// must not be able to demand a multi-GiB allocation. The connection is closed
// cleanly after an error frame.
var ErrStreamFrameTooLarge = errors.New("server: stream frame payload exceeds the frame cap")

// StreamFrame is one decoded streaming-ingest frame.
type StreamFrame struct {
	// Type is one of the streamFrame* constants (data, hello, ack, error).
	Type byte
	// AckReq asks the server to acknowledge this frame immediately.
	AckReq bool
	// Payload is the frame body; for frames decoded by a frameReader it
	// aliases a reused buffer valid until the next read.
	Payload []byte
}

// AppendStreamFrame appends the binary encoding of a stream frame to buf and
// returns the extended slice. The encoding is canonical: DecodeStreamFrame of
// the result yields the frame back, and re-encoding any accepted frame
// reproduces the input bytes (the fuzz fixed point).
func AppendStreamFrame(buf []byte, f StreamFrame) []byte {
	start := len(buf)
	buf = append(buf, streamMagic[:]...)
	buf = append(buf, streamFrameVersion)
	flags := f.Type & streamTypeMask
	if f.AckReq {
		flags |= streamFlagAckReq
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(f.Payload)))
	buf = append(buf, f.Payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf[start:], castagnoli))
}

// appendDataFrame encodes a data frame — seq plus the SKB1 batch of the given
// columns — directly into buf, with no intermediate payload slice: this is
// the client's per-frame hot path and must not allocate once buf has grown to
// its steady-state size.
func appendDataFrame(buf []byte, seq uint64, ackReq bool, items []uint64, deltas []float64) []byte {
	start := len(buf)
	buf = append(buf, streamMagic[:]...)
	buf = append(buf, streamFrameVersion)
	flags := byte(streamFrameData)
	if ackReq {
		flags |= streamFlagAckReq
	}
	buf = append(buf, flags, 0, 0, 0, 0) // length backfilled below
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = AppendBatchColumns(buf, items, deltas)
	binary.BigEndian.PutUint32(buf[start+6:start+streamHeaderLen], uint32(len(buf)-start-streamHeaderLen))
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf[start:], castagnoli))
}

// appendAckFrame encodes an ack frame (applied seq, server write generation)
// into buf — the server's per-ack hot path, allocation-free once buf exists.
func appendAckFrame(buf []byte, seq, gen uint64) []byte {
	start := len(buf)
	buf = append(buf, streamMagic[:]...)
	buf = append(buf, streamFrameVersion, streamFrameAck, 0, 0, 0, 16)
	buf = binary.BigEndian.AppendUint64(buf, seq)
	buf = binary.BigEndian.AppendUint64(buf, gen)
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf[start:], castagnoli))
}

// parseStreamHeader validates the fixed frame prefix and returns the type,
// ack flag and declared payload length.
func parseStreamHeader(hdr []byte) (typ byte, ackReq bool, plen uint32, err error) {
	if [4]byte(hdr[:4]) != streamMagic {
		return 0, false, 0, fmt.Errorf("server: bad stream frame magic %q", hdr[:4])
	}
	if v := hdr[4]; v != streamFrameVersion {
		return 0, false, 0, fmt.Errorf("server: unsupported stream frame version %d (want %d)", v, streamFrameVersion)
	}
	flags := hdr[5]
	if flags&^byte(streamTypeMask|streamFlagAckReq) != 0 {
		return 0, false, 0, fmt.Errorf("server: unknown stream frame flags %#x", flags)
	}
	typ = flags & streamTypeMask
	if typ > streamFrameError {
		return 0, false, 0, fmt.Errorf("server: unknown stream frame type %d", typ)
	}
	return typ, flags&streamFlagAckReq != 0, binary.BigEndian.Uint32(hdr[6:streamHeaderLen]), nil
}

// DecodeStreamFrame parses one frame from the front of data, returning the
// frame and the number of bytes consumed. maxPayload caps the declared
// payload length (ErrStreamFrameTooLarge, wrapped, beyond it); zero means no
// cap. The returned payload aliases data.
func DecodeStreamFrame(data []byte, maxPayload int) (StreamFrame, int, error) {
	var f StreamFrame
	if len(data) < streamHeaderLen {
		return f, 0, fmt.Errorf("server: truncated stream frame (need %d header bytes, have %d)", streamHeaderLen, len(data))
	}
	typ, ackReq, plen, err := parseStreamHeader(data[:streamHeaderLen])
	if err != nil {
		return f, 0, err
	}
	if maxPayload > 0 && uint64(plen) > uint64(maxPayload) {
		return f, 0, fmt.Errorf("%w: header declares %d bytes, cap is %d", ErrStreamFrameTooLarge, plen, maxPayload)
	}
	total := streamHeaderLen + int(plen) + streamTrailerLen
	if len(data) < total {
		return f, 0, fmt.Errorf("server: truncated stream frame (need %d bytes, have %d)", total, len(data))
	}
	body := data[:streamHeaderLen+int(plen)]
	want := binary.BigEndian.Uint32(data[streamHeaderLen+int(plen) : total])
	if got := crc32.Checksum(body, castagnoli); got != want {
		return f, 0, fmt.Errorf("server: stream frame CRC mismatch (computed %#x, trailer %#x)", got, want)
	}
	f.Type, f.AckReq, f.Payload = typ, ackReq, body[streamHeaderLen:]
	return f, total, nil
}

// frameReader reads frames off a connection into reused buffers: the header
// array and the payload buffer are owned by the reader and recycled every
// call, so steady-state frame reception allocates nothing. The declared
// payload length is checked against max before any buffer grows.
type frameReader struct {
	r   io.Reader
	max int
	hdr [streamHeaderLen]byte
	buf []byte
}

func newFrameReader(r io.Reader, max int) *frameReader {
	return &frameReader{r: r, max: max}
}

// next reads one frame. The returned payload aliases the reader's buffer and
// is valid until the following next call. io.EOF before any header byte
// means a cleanly ended stream; inside a frame it comes back as
// io.ErrUnexpectedEOF.
func (fr *frameReader) next() (StreamFrame, error) {
	var f StreamFrame
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return f, err
	}
	typ, ackReq, plen, err := parseStreamHeader(fr.hdr[:])
	if err != nil {
		return f, err
	}
	if fr.max > 0 && uint64(plen) > uint64(fr.max) {
		return f, fmt.Errorf("%w: header declares %d bytes, cap is %d", ErrStreamFrameTooLarge, plen, fr.max)
	}
	need := int(plen) + streamTrailerLen
	if cap(fr.buf) < need {
		fr.buf = make([]byte, need)
	}
	fr.buf = fr.buf[:need]
	if _, err := io.ReadFull(fr.r, fr.buf); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return f, err
	}
	want := binary.BigEndian.Uint32(fr.buf[plen:need])
	got := crc32.Update(crc32.Update(0, castagnoli, fr.hdr[:]), castagnoli, fr.buf[:plen])
	if got != want {
		return f, fmt.Errorf("server: stream frame CRC mismatch (computed %#x, trailer %#x)", got, want)
	}
	f.Type, f.AckReq, f.Payload = typ, ackReq, fr.buf[:plen]
	return f, nil
}

// ackWriter is the write side of a stream connection: buffered writes plus an
// explicit flush (a *bufio.Writer over TCP, the chunked response writer over
// HTTP).
type ackWriter interface {
	io.Writer
	Flush() error
}

// httpAckWriter adapts a chunked HTTP response to ackWriter.
type httpAckWriter struct {
	w  http.ResponseWriter
	rc *http.ResponseController
}

func (h httpAckWriter) Write(p []byte) (int, error) { return h.w.Write(p) }
func (h httpAckWriter) Flush() error                { return h.rc.Flush() }

// streamSession is the exactly-once resume state of one named producer
// stream: the seq of the newest applied data frame (the watermark replayed
// frames are judged against) and whether a live connection currently owns it.
// Sessions live for the server's lifetime; attach/detach runs under
// Server.streamMu, and seq is only touched by the attached connection.
type streamSession struct {
	name     string
	seq      uint64
	attached bool
}

// streamConn is one live streaming connection: the one-shot abort hook Close
// uses to unblock its read, and the connection's reusable decode columns and
// ack buffer (touched only by the connection's own goroutine).
type streamConn struct {
	aborted atomic.Bool
	abort   func()

	items  []uint64
	deltas []float64
	ackBuf []byte
}

// registerStreamConn adds a live connection to the server's registry and
// takes a streamWG slot for it; it refuses (false) once Close has begun. The
// closed check and the Add share streamMu with Close's abort scan, so a
// connection is either registered before Close aborts (and Close waits for
// it) or never registered at all.
func (s *Server) registerStreamConn(c *streamConn) bool {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	if s.closed.Load() {
		return false
	}
	s.streamConns[c] = struct{}{}
	s.streamWG.Add(1)
	return true
}

func (s *Server) unregisterStreamConn(c *streamConn) {
	s.streamMu.Lock()
	delete(s.streamConns, c)
	s.streamMu.Unlock()
	s.streamWG.Done()
}

// attachStreamSession finds or creates the named session and marks it owned
// by the calling connection; a session already attached to a live connection
// is refused (two writers interleaving one seq sequence could not be
// deduplicated).
func (s *Server) attachStreamSession(name string) (*streamSession, error) {
	s.streamMu.Lock()
	defer s.streamMu.Unlock()
	sess := s.streamSessions[name]
	if sess == nil {
		sess = &streamSession{name: name}
		s.streamSessions[name] = sess
	}
	if sess.attached {
		return nil, fmt.Errorf("stream session %q is already attached to a live connection", name)
	}
	sess.attached = true
	return sess, nil
}

func (s *Server) detachStreamSession(sess *streamSession) {
	s.streamMu.Lock()
	sess.attached = false
	s.streamMu.Unlock()
}

// ServeStream accepts framed streaming-ingest connections on ln until the
// listener fails or the server closes. The listener is registered with the
// server, so Server.Close shuts it (and every accepted connection) down as
// part of the drain; callers typically run ServeStream on its own goroutine.
func (s *Server) ServeStream(ln net.Listener) error {
	s.streamMu.Lock()
	if s.closed.Load() {
		s.streamMu.Unlock()
		ln.Close()
		return ErrServerClosed
	}
	s.streamListeners[ln] = struct{}{}
	s.streamWG.Add(1) // the accept loop's own slot; conn Adds nest under it
	s.streamMu.Unlock()
	defer func() {
		s.streamMu.Lock()
		delete(s.streamListeners, ln)
		s.streamMu.Unlock()
		s.streamWG.Done()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		c := &streamConn{}
		nc := conn
		c.abort = func() { nc.SetDeadline(time.Now()) }
		if !s.registerStreamConn(c) {
			conn.Close()
			return nil
		}
		go func() {
			defer s.unregisterStreamConn(c)
			defer nc.Close()
			fr := newFrameReader(bufio.NewReaderSize(nc, 64<<10), int(s.cfg.MaxFrameBytes))
			s.serveFrames(c, fr, bufio.NewWriterSize(nc, 32<<10), nc.RemoteAddr().String())
		}()
	}
}

// handleStream is the chunked-HTTP fallback transport: the same frame
// protocol as ServeStream, carried in the request body with acks flushed into
// the response as they happen (full-duplex where the stack supports it; on a
// proxy that buffers the response, acks arrive when the request body ends,
// which still preserves exactly-once — only latency suffers).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if ct := r.Header.Get("Content-Type"); ct != "" && !strings.HasPrefix(ct, contentTypeStream) {
		writeErr(w, r, http.StatusUnsupportedMediaType, "unsupported Content-Type %q (want %s)", ct, contentTypeStream)
		return
	}
	rc := http.NewResponseController(w)
	c := &streamConn{}
	c.abort = func() {
		rc.SetReadDeadline(time.Now())
		rc.SetWriteDeadline(time.Now())
	}
	if !s.registerStreamConn(c) {
		writeErr(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	defer s.unregisterStreamConn(c)

	// Full duplex lets acks flow while the request body is still being
	// produced; stacks that don't support it degrade to half-duplex.
	_ = rc.EnableFullDuplex()
	w.Header().Set("Content-Type", contentTypeStream)
	w.WriteHeader(http.StatusOK)
	if err := rc.Flush(); err != nil {
		return
	}
	fr := newFrameReader(bufio.NewReaderSize(r.Body, 64<<10), int(s.cfg.MaxFrameBytes))
	s.serveFrames(c, fr, httpAckWriter{w: w, rc: rc}, r.RemoteAddr)
}

// sendAck writes and flushes an ack for the given applied seq, reporting the
// current write generation. Reuses the connection's ack buffer.
func (s *Server) sendAck(c *streamConn, aw ackWriter, seq uint64) bool {
	c.ackBuf = appendAckFrame(c.ackBuf[:0], seq, uint64(s.gen.Load()))
	if _, err := aw.Write(c.ackBuf); err != nil {
		return false
	}
	return aw.Flush() == nil
}

// sendErrorFrame best-effort ships an error frame; the connection is torn
// down right after, so failures here are ignored.
func sendErrorFrame(aw ackWriter, msg string) {
	frame := AppendStreamFrame(nil, StreamFrame{Type: streamFrameError, Payload: []byte(msg)})
	if _, err := aw.Write(frame); err == nil {
		aw.Flush()
	}
}

// serveFrames is the per-connection protocol loop shared by both transports.
// The connection pins one engine producer lane from hello to disconnect, so
// the steady state per data frame is: read into the reader's reused buffer,
// decode into the connection's reused columns, hand the columns to the
// pinned producer — no allocation, no lane contention, no per-batch HTTP
// machinery. Acks are sent only after the frame's columns are flushed to the
// shard queues, so an acked frame always reaches the final merge even if the
// server closes immediately afterwards.
func (s *Server) serveFrames(c *streamConn, fr *frameReader, aw ackWriter, remote string) {
	s.streamsActive.Add(1)
	defer s.streamsActive.Add(-1)

	var (
		sess     *streamSession
		prod     *engine.Producer[*sketch.HeavyHitterTracker]
		sinceAck int
	)
	defer func() {
		if prod != nil {
			prod.Close()
		}
		if sess != nil {
			s.detachStreamSession(sess)
		}
	}()

	for {
		frame, err := fr.next()
		if err != nil {
			switch {
			case c.aborted.Load():
				sendErrorFrame(aw, "server is shutting down")
			case errors.Is(err, io.EOF):
				// The producer closed its side cleanly: a normal end of stream.
			case errors.Is(err, io.ErrUnexpectedEOF):
				// Connection died mid-frame; the truncated frame was never
				// applied, so the producer replays it after reconnecting.
			default:
				s.cfg.Logf("server: stream %s: %v", remote, err)
				sendErrorFrame(aw, err.Error())
			}
			return
		}

		switch frame.Type {
		case streamFrameHello:
			if s.bootstrapping.Load() {
				// No sessions open until the bootstrap transfer lands; the
				// error frame is retryable, so StreamUpdater redials until
				// the node is serving.
				sendErrorFrame(aw, "bootstrap in progress: state transfer from peers is not complete yet")
				return
			}
			if sess != nil {
				sendErrorFrame(aw, "duplicate hello frame")
				return
			}
			if len(frame.Payload) == 0 || len(frame.Payload) > streamHelloMaxLen {
				sendErrorFrame(aw, fmt.Sprintf("hello session name must be 1..%d bytes, got %d", streamHelloMaxLen, len(frame.Payload)))
				return
			}
			se, aerr := s.attachStreamSession(string(frame.Payload))
			if aerr != nil {
				sendErrorFrame(aw, aerr.Error())
				return
			}
			sess = se
			prod = s.eng.Producer()
			// The hello-ack reports the session watermark: everything at or
			// below it is applied, everything above it must be (re)sent.
			if !s.sendAck(c, aw, sess.seq) {
				return
			}

		case streamFrameData:
			if sess == nil {
				sendErrorFrame(aw, "data frame before hello")
				return
			}
			if len(frame.Payload) < 8 {
				sendErrorFrame(aw, fmt.Sprintf("data frame payload is %d bytes, need at least the 8-byte seq", len(frame.Payload)))
				return
			}
			seq := binary.BigEndian.Uint64(frame.Payload[:8])
			switch {
			case seq <= sess.seq:
				// A replay of an applied frame (the producer reconnected
				// before seeing its ack): acknowledge, never re-apply.
				if frame.AckReq && !s.sendAck(c, aw, sess.seq) {
					return
				}
			case seq != sess.seq+1:
				sendErrorFrame(aw, fmt.Sprintf("stream gap: frame seq %d, session %q watermark %d", seq, sess.name, sess.seq))
				return
			default:
				c.items, c.deltas = c.items[:0], c.deltas[:0]
				var derr error
				c.items, c.deltas, derr = DecodeBatchColumns(frame.Payload[8:], c.items, c.deltas)
				if derr != nil {
					sendErrorFrame(aw, derr.Error())
					return
				}
				if c.aborted.Load() {
					// Shutdown began; leave the frame unapplied and unacked so
					// the producer replays it elsewhere.
					sendErrorFrame(aw, "server is shutting down")
					return
				}
				if n := len(c.items); n > 0 {
					prod.UpdateColumns(c.items, c.deltas)
					prod.Flush()
					s.gen.Add(1)
					s.localGen.Add(1) // streamed mass is local: ours to gossip
					s.updates.Add(int64(n))
					s.batches.Add(1)
				}
				sess.seq = seq
				s.streamFrames.Add(1)
				sinceAck++
				if frame.AckReq || sinceAck >= s.cfg.StreamAckEvery {
					if !s.sendAck(c, aw, seq) {
						return
					}
					sinceAck = 0
				}
			}

		case streamFrameError:
			s.cfg.Logf("server: stream %s sent an error frame: %s", remote, frame.Payload)
			return

		default:
			sendErrorFrame(aw, fmt.Sprintf("unexpected frame type %d from a stream producer", frame.Type))
			return
		}
	}
}

// drainStreams aborts every live streaming connection and listener and waits
// for their handlers to exit — part of Server.Close, before the engine shuts
// down, so every connection's pinned producer is closed (and every acked
// frame therefore merged) by the time the final snapshot is cut.
func (s *Server) drainStreams() {
	s.streamMu.Lock()
	for ln := range s.streamListeners {
		ln.Close()
	}
	for c := range s.streamConns {
		c.aborted.Store(true)
		c.abort()
	}
	s.streamMu.Unlock()
	s.streamWG.Wait()
}
