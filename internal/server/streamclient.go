package server

import (
	"bufio"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"
)

// StreamConfig shapes a StreamUpdater.
type StreamConfig struct {
	// Session names the exactly-once resume watermark this producer's frames
	// accumulate under on the server. Two live connections cannot share a
	// session, and a session's seq numbering is cumulative for the server's
	// lifetime — reuse a name only to resume that same logical producer.
	// Empty means a fresh random name (no resumption across process
	// restarts, full resumption across reconnects of this updater).
	Session string
	// Window is the maximum number of unacknowledged frames in flight before
	// Update blocks waiting for an ack; zero means 64.
	Window int
	// AckEvery is how often an ack is explicitly requested, in frames; zero
	// means Window/2, and values above Window are clamped to it so a full
	// window always has a requested ack outstanding.
	AckEvery int
	// BatchSize caps the updates carried by one data frame; zero means 4096.
	BatchSize int
	// MaxAttempts bounds consecutive reconnection attempts before an
	// operation fails; zero means 5.
	MaxAttempts int
	// RetryWait is the pause between reconnection attempts; zero means
	// 100ms.
	RetryWait time.Duration
	// DialTimeout bounds one connection attempt; zero means 5s.
	DialTimeout time.Duration
	// HTTPClient, when the target is an http(s):// base URL, issues the
	// chunked POST /v1/stream request; nil means a zero-value http.Client
	// (no timeout — the request intentionally lives as long as the stream).
	HTTPClient *http.Client
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Session == "" {
		var b [12]byte
		rand.Read(b[:])
		c.Session = "stream-" + hex.EncodeToString(b[:])
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.AckEvery <= 0 {
		c.AckEvery = c.Window / 2
	}
	if c.AckEvery < 1 {
		c.AckEvery = 1
	}
	if c.AckEvery > c.Window {
		c.AckEvery = c.Window
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 4096
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.RetryWait <= 0 {
		c.RetryWait = 100 * time.Millisecond
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	return c
}

// ErrStreamSessionLost means a reconnect found the server's session watermark
// behind frames this producer no longer holds (the server restarted and
// stream sessions do not survive restarts): the updater cannot prove how much
// of the unacked tail was lost, so it refuses to continue rather than
// silently drop or double-count.
var ErrStreamSessionLost = errors.New("server: stream session lost (server watermark regressed past the replayable window)")

// ErrStreamClosed is returned by operations on a closed StreamUpdater.
var ErrStreamClosed = errors.New("server: stream updater is closed")

// StreamRemoteError is an error frame the server sent before closing the
// connection (protocol violations, oversized frames, busy sessions).
type StreamRemoteError struct{ Msg string }

func (e *StreamRemoteError) Error() string {
	return fmt.Sprintf("server: stream error frame: %s", e.Msg)
}

// streamLink is one live transport under a StreamUpdater: the buffered frame
// writer, the frame reader carrying acks back, and the teardown hook.
type streamLink struct {
	bw      *bufio.Writer
	fr      *frameReader
	closeFn func()
}

// StreamUpdater is the persistent-connection ingest client: it frames update
// batches onto one held-open connection (raw TCP against a `sketchd
// -stream-addr` listener, or chunked HTTP against POST /v1/stream) and
// tracks the server's acks. Reconnection is automatic and exactly-once: every
// unacked frame is held verbatim, a reconnect learns the server's applied
// watermark from the hello ack, drops what the watermark covers and replays
// the rest — frames at or below the watermark are absorbed server-side as
// no-ops, so a retry after a lost ack never double-counts.
//
// The steady-state send path reuses everything (frame buffers cycle through
// the acked-frame free list, the ack reader owns its buffers), so streaming
// ingestion allocates nothing per frame. Not safe for concurrent use; give
// each goroutine its own updater (each costs the server one producer lane).
type StreamUpdater struct {
	cfg    StreamConfig
	target string
	isHTTP bool

	link *streamLink

	seq        uint64 // last frame seq assigned
	acked      uint64 // highest server-acked seq
	gen        int64  // server write generation reported by the last ack
	lastAckReq uint64 // seq of the newest frame sent with the ack-request bit

	pending []pendingFrame // unacked frames, seqs (acked, seq], FIFO
	spare   [][]byte       // recycled frame buffers

	batchItems  []uint64
	batchDeltas []float64

	err error // sticky fatal error; set by Close and unrecoverable failures
}

type pendingFrame struct {
	seq uint64
	buf []byte
}

// DialStream connects a StreamUpdater to target and performs the hello
// handshake. A target of "host:port" or "tcp://host:port" speaks the framed
// protocol over raw TCP (the `sketchd -stream-addr` listener); an
// "http(s)://..." base URL streams the same frames through chunked POST
// /v1/stream.
func DialStream(target string, cfg StreamConfig) (*StreamUpdater, error) {
	su := &StreamUpdater{cfg: cfg.withDefaults()}
	switch {
	case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"):
		su.isHTTP = true
		su.target = strings.TrimRight(target, "/")
	case strings.HasPrefix(target, "tcp://"):
		su.target = strings.TrimPrefix(target, "tcp://")
	default:
		su.target = target
	}
	if err := su.redial(); err != nil {
		return nil, err
	}
	return su, nil
}

// Session returns the session name frames accumulate under.
func (su *StreamUpdater) Session() string { return su.cfg.Session }

// Gen returns the server's write generation as of the newest ack — the gen a
// subsequent read must carry to be guaranteed to see every acked frame.
func (su *StreamUpdater) Gen() int64 { return su.gen }

// Update queues one (item, delta); a frame ships whenever BatchSize updates
// have accumulated (or on Flush/Close).
func (su *StreamUpdater) Update(item uint64, delta float64) error {
	if su.err != nil {
		return su.err
	}
	su.batchItems = append(su.batchItems, item)
	su.batchDeltas = append(su.batchDeltas, delta)
	if len(su.batchItems) >= su.cfg.BatchSize {
		return su.flushBatch()
	}
	return nil
}

// UpdateColumns streams parallel key/delta columns, chunked into frames of at
// most BatchSize updates. The columns are encoded into the updater's own
// buffers before the call returns; the caller may reuse them immediately.
func (su *StreamUpdater) UpdateColumns(items []uint64, deltas []float64) error {
	if su.err != nil {
		return su.err
	}
	if len(items) != len(deltas) {
		return fmt.Errorf("server: UpdateColumns length mismatch (%d items, %d deltas)", len(items), len(deltas))
	}
	// Anything batched by Update ships first so frame order matches call
	// order.
	if len(su.batchItems) > 0 {
		if err := su.flushBatch(); err != nil {
			return err
		}
	}
	for len(items) > 0 {
		n := min(len(items), su.cfg.BatchSize)
		if err := su.sendColumns(items[:n], deltas[:n]); err != nil {
			return err
		}
		items, deltas = items[n:], deltas[n:]
	}
	return nil
}

// Flush ships any batched updates and pushes buffered frames to the wire. It
// does not wait for acks; Sync does.
func (su *StreamUpdater) Flush() error {
	if su.err != nil {
		return su.err
	}
	if len(su.batchItems) > 0 {
		if err := su.flushBatch(); err != nil {
			return err
		}
	}
	return su.retry(func() error { return su.link.bw.Flush() })
}

// Sync flushes and then blocks until the server has acknowledged every frame
// sent so far — after Sync returns nil, all previous updates are applied and
// visible to reads at generation Gen (and, by the ack-after-apply contract,
// survive a server-side graceful shutdown).
func (su *StreamUpdater) Sync() error {
	if err := su.Flush(); err != nil {
		return err
	}
	for su.acked < su.seq {
		// The unacked tail may carry no ack-requested frame (an earlier ack
		// can cover lastAckReq while later frames were sent without the
		// bit): nudge with an empty ack-requested frame — a zero-record
		// frame advances the session seq without touching a counter.
		if su.lastAckReq <= su.acked {
			if err := su.sendFrame(nil, nil, true); err != nil {
				return err
			}
			if err := su.retry(func() error { return su.link.bw.Flush() }); err != nil {
				return err
			}
		}
		if err := su.readAck(); err != nil {
			return err
		}
	}
	return nil
}

// Close syncs and tears the connection down. The updater is unusable
// afterwards.
func (su *StreamUpdater) Close() error {
	if su.err != nil {
		if errors.Is(su.err, ErrStreamClosed) {
			return nil
		}
		err := su.err
		su.teardown()
		return err
	}
	err := su.Sync()
	su.teardown()
	su.err = ErrStreamClosed
	return err
}

func (su *StreamUpdater) teardown() {
	if su.link != nil {
		su.link.closeFn()
		su.link = nil
	}
}

// flushBatch frames the internally batched updates.
func (su *StreamUpdater) flushBatch() error {
	err := su.sendColumns(su.batchItems, su.batchDeltas)
	su.batchItems = su.batchItems[:0]
	su.batchDeltas = su.batchDeltas[:0]
	return err
}

// sendColumns frames one batch (at most BatchSize updates), blocking for acks
// when the in-flight window is full.
func (su *StreamUpdater) sendColumns(items []uint64, deltas []float64) error {
	for len(su.pending) >= su.cfg.Window {
		// The window always contains a frame with the ack bit (AckEvery <=
		// Window), so waiting here terminates.
		if err := su.retry(func() error { return su.link.bw.Flush() }); err != nil {
			return err
		}
		if err := su.readAck(); err != nil {
			return err
		}
	}
	return su.sendFrame(items, deltas, false)
}

// sendFrame encodes the next data frame into a recycled buffer, appends it to
// the pending window and writes it out (transport failures reconnect and
// replay). forceAck requests an ack regardless of cadence.
func (su *StreamUpdater) sendFrame(items []uint64, deltas []float64, forceAck bool) error {
	su.seq++
	ackReq := forceAck || su.seq-su.lastAckReq >= uint64(su.cfg.AckEvery)
	buf := su.takeBuf()
	buf = appendDataFrame(buf, su.seq, ackReq, items, deltas)
	if ackReq {
		su.lastAckReq = su.seq
	}
	su.pending = append(su.pending, pendingFrame{seq: su.seq, buf: buf})
	return su.retry(func() error {
		_, err := su.link.bw.Write(buf)
		if err == nil && ackReq {
			err = su.link.bw.Flush()
		}
		return err
	})
}

// readAck blocks until the acked watermark advances: normally by one ack
// frame off the wire, after a transport failure by the hello ack of the
// reconnect itself. Either way, on nil return at least the pending frames
// covered by the new watermark have been released.
func (su *StreamUpdater) readAck() error {
	if su.err != nil {
		return su.err
	}
	for {
		frame, err := su.link.fr.next()
		if err != nil {
			before := su.acked
			if rerr := su.redial(); rerr != nil {
				return rerr
			}
			if su.acked > before {
				return nil // the reconnect's hello ack advanced the watermark
			}
			// The replayed tail might carry no ack-requested frame (its one
			// ack bit may be what the hello ack just covered): nudge with an
			// empty ack-requested frame so this wait terminates.
			if su.lastAckReq <= su.acked && su.acked < su.seq {
				if err := su.sendFrame(nil, nil, true); err != nil {
					return err
				}
				if err := su.retry(func() error { return su.link.bw.Flush() }); err != nil {
					return err
				}
			}
			continue
		}
		switch frame.Type {
		case streamFrameAck:
			if len(frame.Payload) != 16 {
				return su.fatal(fmt.Errorf("server: malformed ack payload (%d bytes, want 16)", len(frame.Payload)))
			}
			su.handleAck(beUint64(frame.Payload[:8]), int64(beUint64(frame.Payload[8:16])))
			return nil
		case streamFrameError:
			return su.fatal(&StreamRemoteError{Msg: string(frame.Payload)})
		default:
			return su.fatal(fmt.Errorf("server: unexpected frame type %d from the server", frame.Type))
		}
	}
}

// handleAck advances the acked watermark and recycles covered frame buffers.
func (su *StreamUpdater) handleAck(seq uint64, gen int64) {
	su.gen = gen
	if seq <= su.acked {
		return
	}
	su.acked = seq
	n := 0
	for n < len(su.pending) && su.pending[n].seq <= seq {
		su.spare = append(su.spare, su.pending[n].buf)
		su.pending[n].buf = nil
		n++
	}
	// Shift in place so the pending window keeps its backing array.
	su.pending = append(su.pending[:0], su.pending[n:]...)
}

func (su *StreamUpdater) takeBuf() []byte {
	if n := len(su.spare); n > 0 {
		buf := su.spare[n-1]
		su.spare = su.spare[:n-1]
		return buf[:0]
	}
	return nil
}

// retry runs op, reconnecting (and replaying unacked frames) on transport
// failure; fatal errors — server error frames, a lost session — pass through
// and stick.
func (su *StreamUpdater) retry(op func() error) error {
	if su.err != nil {
		return su.err
	}
	err := op()
	if err == nil {
		return nil
	}
	var remote *StreamRemoteError
	if errors.As(err, &remote) {
		return su.fatal(err)
	}
	if rerr := su.redial(); rerr != nil {
		return rerr
	}
	if err := op(); err != nil {
		return su.fatal(fmt.Errorf("server: stream operation failed immediately after reconnect: %w", err))
	}
	return nil
}

func (su *StreamUpdater) fatal(err error) error {
	su.err = err
	su.teardown()
	return err
}

// redial (re)establishes the transport: dial, hello, learn the server's
// applied watermark from the hello ack, drop pending frames it covers and
// replay the rest verbatim.
func (su *StreamUpdater) redial() error {
	su.teardown()
	var lastErr error
	for attempt := 0; attempt < su.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(su.cfg.RetryWait)
		}
		err := su.connect()
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrStreamSessionLost) {
			return su.fatal(err)
		}
		// Handshake-time error frames (typically "session busy": the server
		// has not yet reaped the connection we just lost) are retried like
		// transport failures — the next attempt usually finds the session
		// free again.
		lastErr = err
	}
	return su.fatal(fmt.Errorf("server: stream reconnect to %s failed after %d attempts: %w", su.target, su.cfg.MaxAttempts, lastErr))
}

func (su *StreamUpdater) connect() error {
	link, err := su.dial()
	if err != nil {
		return err
	}
	hello := AppendStreamFrame(nil, StreamFrame{Type: streamFrameHello, Payload: []byte(su.cfg.Session)})
	if _, err := link.bw.Write(hello); err == nil {
		err = link.bw.Flush()
	}
	if err != nil {
		link.closeFn()
		return err
	}
	frame, err := link.fr.next()
	if err != nil {
		link.closeFn()
		return err
	}
	switch frame.Type {
	case streamFrameAck:
		if len(frame.Payload) != 16 {
			link.closeFn()
			return fmt.Errorf("server: malformed hello ack (%d payload bytes, want 16)", len(frame.Payload))
		}
	case streamFrameError:
		link.closeFn()
		return &StreamRemoteError{Msg: string(frame.Payload)}
	default:
		link.closeFn()
		return fmt.Errorf("server: unexpected frame type %d in answer to hello", frame.Type)
	}
	watermark, gen := beUint64(frame.Payload[:8]), int64(beUint64(frame.Payload[8:16]))

	oldest := su.acked + 1 // the oldest frame we can still replay
	switch {
	case watermark > su.seq:
		link.closeFn()
		return fmt.Errorf("server: session %q watermark %d is ahead of this producer (last sent frame %d): the name is in use by another producer's history",
			su.cfg.Session, watermark, su.seq)
	case watermark+1 < oldest:
		// The server forgot acked frames (it restarted; sessions don't
		// survive restarts) and we no longer hold them to replay.
		link.closeFn()
		return fmt.Errorf("%w: session %q watermark %d, oldest replayable frame %d", ErrStreamSessionLost, su.cfg.Session, watermark, oldest)
	}
	su.handleAck(watermark, gen)

	// Replay the unacked tail verbatim; the watermark makes any overlap a
	// server-side no-op.
	for _, pf := range su.pending {
		if _, err := link.bw.Write(pf.buf); err != nil {
			link.closeFn()
			return err
		}
	}
	if err := link.bw.Flush(); err != nil {
		link.closeFn()
		return err
	}
	su.link = link
	return nil
}

func (su *StreamUpdater) dial() (*streamLink, error) {
	if !su.isHTTP {
		conn, err := net.DialTimeout("tcp", su.target, su.cfg.DialTimeout)
		if err != nil {
			return nil, err
		}
		return &streamLink{
			bw:      bufio.NewWriterSize(conn, 64<<10),
			fr:      newFrameReader(bufio.NewReaderSize(conn, 4<<10), 1<<16),
			closeFn: func() { conn.Close() },
		}, nil
	}

	// HTTP fallback: the frames travel as the chunked request body of one
	// long-lived POST /v1/stream, acks come back in the response body
	// (full-duplex on a direct connection; buffered-but-correct through
	// proxies that don't support it).
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, su.target+"/v1/stream", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", contentTypeStream)
	resp, err := su.cfg.HTTPClient.Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		pw.Close()
		resp.Body.Close()
		return nil, &APIError{Status: resp.StatusCode, Message: strings.TrimSpace(string(body))}
	}
	return &streamLink{
		// The pipe writer blocks until the transport consumes each chunk, so
		// no extra flush semantics are needed beyond bufio's.
		bw: bufio.NewWriterSize(pw, 64<<10),
		fr: newFrameReader(bufio.NewReaderSize(resp.Body, 4<<10), 1<<16),
		closeFn: func() {
			pw.Close() // ends the request body; the handler sees a clean EOF
			resp.Body.Close()
		},
	}, nil
}

func beUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
