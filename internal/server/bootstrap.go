package server

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/sketch"
)

// Peer bootstrap ---------------------------------------------------------------
//
// A daemon that starts without a usable local snapshot can fetch one from a
// running peer instead of rejoining the mesh blank: GET /v1/bootstrap returns
// a barrier-consistent state transfer — the serving node's full snapshot, its
// per-sender gossip watermarks, and the per-sender received-mass trackers that
// make later watermark divergences healable without loss (see deltaFlagReplace
// in wire.go). Everything is cut under one barrier hold, so the watermarks
// never claim a delta the snapshot's counters don't contain.
//
// Bootstrap response layout (SKP1; integers big-endian, CRC-32C like SKS1):
//
//	magic    [4]byte "SKP1"
//	version  uint8   bootstrapVersion
//	flags    uint8   reserved (0)
//	idLen    uint16  length of the serving node's id (1..bootstrapMaxIDLen)
//	id       idLen bytes
//	localGen uint64  serving node's local write generation at the barrier cut
//	marksLen uint32  length of the watermark JSON
//	marks    marksLen bytes: JSON object sender -> watermark; includes the
//	         serving node itself mapped to localGen, so the requester's
//	         watermark for the server aligns with the snapshot exactly
//	snapLen  uint32
//	snap     snapLen bytes: the full snapshot's versioned sketch encoding
//	nsenders uint16  per-sender tracker sections, sorted by id
//	         nsenders x (idLen uint16, id, trLen uint32, tracker bytes);
//	         the serving node's own section carries its local sketch (its
//	         contribution to the snapshot), so the requester can seed the
//	         received-mass tracker for the server too
//	crc      uint32  CRC-32C over everything before it
//
// The requester absorbs the snapshot as foreign mass (gossip never re-ships
// it), installs the watermarks and trackers, and only then opens /v1/update,
// /v1/stream, /v1/delta and its replicator.

// bootstrapMagic guards the bootstrap response format.
var bootstrapMagic = [4]byte{'S', 'K', 'P', '1'}

// bootstrapVersion is bumped whenever the response layout changes.
const bootstrapVersion = 1

// bootstrapMaxIDLen caps every node-id section of a bootstrap response, like
// streamHelloMaxLen caps stream session names.
const bootstrapMaxIDLen = 256

// bootstrapMaxMarksLen caps the watermark JSON section: even a very large
// mesh's map of id -> uint64 fits comfortably in 1 MiB.
const bootstrapMaxMarksLen = 1 << 20

// bootstrapHeaderLen is the fixed prefix: magic, version, flags, idLen.
const bootstrapHeaderLen = 8

// SendersFileName is the file the per-sender received-mass trackers are
// persisted to beside the snapshot. It is bound to the exact snapshot it was
// cut with by a CRC of the snapshot bytes: a tracker that does not match the
// counters byte for byte cannot be trusted for replace-frame subtraction, so
// a mismatched or missing sidecar degrades to the reset-resync protocol
// instead of risking a double count.
const SendersFileName = "sketchd.senders"

// BootstrapPayload is one decoded /v1/bootstrap state transfer.
type BootstrapPayload struct {
	// NodeID is the serving node's id and LocalGen its local write generation
	// at the barrier cut; together they seed the requester's watermark for
	// the server.
	NodeID   string
	LocalGen uint64
	// Watermarks are the serving node's per-sender gossip watermarks
	// (including NodeID -> LocalGen).
	Watermarks map[string]uint64
	// Snapshot is the full barrier snapshot's versioned sketch encoding.
	Snapshot []byte
	// Senders maps sender id -> the encoding of the mass the serving node
	// holds from that sender (its own id maps to its local sketch). Only
	// senders whose tracker is sound for replace-frame subtraction are
	// included, so a requester may see watermarks without a matching tracker
	// when the server itself recovered without a consistent sidecar.
	Senders map[string][]byte
}

// AppendBootstrapResponse appends the canonical binary encoding of a
// bootstrap payload to buf and returns the extended slice. Sender sections
// are emitted in sorted id order and the watermark JSON uses encoding/json's
// sorted-key object form, so encoding the same payload twice yields the same
// bytes — the fixed point FuzzDecodeBootstrapResponse checks.
func AppendBootstrapResponse(buf []byte, p BootstrapPayload) ([]byte, error) {
	if len(p.NodeID) < 1 || len(p.NodeID) > bootstrapMaxIDLen {
		return nil, fmt.Errorf("server: bootstrap node id must be 1..%d bytes, got %d", bootstrapMaxIDLen, len(p.NodeID))
	}
	marks, err := json.Marshal(p.Watermarks)
	if err != nil {
		return nil, fmt.Errorf("server: encoding bootstrap watermarks: %w", err)
	}
	start := len(buf)
	buf = append(buf, bootstrapMagic[:]...)
	buf = append(buf, bootstrapVersion, 0)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.NodeID)))
	buf = append(buf, p.NodeID...)
	buf = binary.BigEndian.AppendUint64(buf, p.LocalGen)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(marks)))
	buf = append(buf, marks...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Snapshot)))
	buf = append(buf, p.Snapshot...)
	ids := make([]string, 0, len(p.Senders))
	for id := range p.Senders {
		if len(id) < 1 || len(id) > bootstrapMaxIDLen {
			return nil, fmt.Errorf("server: bootstrap sender id must be 1..%d bytes, got %d", bootstrapMaxIDLen, len(id))
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(ids)))
	for _, id := range ids {
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(id)))
		buf = append(buf, id...)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Senders[id])))
		buf = append(buf, p.Senders[id]...)
	}
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf[start:], castagnoli)), nil
}

// DecodeBootstrapResponse parses a bootstrap response, validating the CRC,
// the per-section length caps and the structural invariants before any large
// allocation: every declared length is checked against the bytes actually
// present, so a forged header cannot demand unbounded memory. maxSection
// caps the snapshot and each tracker section; <= 0 means no cap beyond the
// input's own length.
func DecodeBootstrapResponse(data []byte, maxSection int) (*BootstrapPayload, error) {
	if maxSection <= 0 {
		maxSection = len(data)
	}
	if len(data) < bootstrapHeaderLen+8+4+4+2+4 {
		return nil, fmt.Errorf("server: truncated bootstrap response (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != bootstrapMagic {
		return nil, fmt.Errorf("server: bad bootstrap magic %q", data[:4])
	}
	if v := data[4]; v != bootstrapVersion {
		return nil, fmt.Errorf("server: unsupported bootstrap version %d (want %d)", v, bootstrapVersion)
	}
	if f := data[5]; f != 0 {
		return nil, fmt.Errorf("server: unsupported bootstrap flags %#x", f)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := crc32.Checksum(body, castagnoli), binary.BigEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("server: bootstrap response CRC mismatch (computed %08x, trailer %08x)", got, want)
	}
	p := &BootstrapPayload{Watermarks: make(map[string]uint64), Senders: make(map[string][]byte)}
	rest := body[6:]
	take := func(n int, what string) ([]byte, error) {
		if n < 0 || len(rest) < n {
			return nil, fmt.Errorf("server: truncated bootstrap response (%s needs %d bytes, %d left)", what, n, len(rest))
		}
		out := rest[:n]
		rest = rest[n:]
		return out, nil
	}
	idLenB, err := take(2, "node id length")
	if err != nil {
		return nil, err
	}
	idLen := int(binary.BigEndian.Uint16(idLenB))
	if idLen < 1 || idLen > bootstrapMaxIDLen {
		return nil, fmt.Errorf("server: bootstrap node id length %d out of range 1..%d", idLen, bootstrapMaxIDLen)
	}
	id, err := take(idLen, "node id")
	if err != nil {
		return nil, err
	}
	p.NodeID = string(id)
	genB, err := take(8, "local generation")
	if err != nil {
		return nil, err
	}
	p.LocalGen = binary.BigEndian.Uint64(genB)
	marksLenB, err := take(4, "watermark length")
	if err != nil {
		return nil, err
	}
	marksLen := int(binary.BigEndian.Uint32(marksLenB))
	if marksLen > bootstrapMaxMarksLen {
		return nil, fmt.Errorf("server: bootstrap watermark section is %d bytes (cap %d)", marksLen, bootstrapMaxMarksLen)
	}
	marks, err := take(marksLen, "watermarks")
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(marks, &p.Watermarks); err != nil {
		return nil, fmt.Errorf("server: bootstrap watermark JSON: %w", err)
	}
	snapLenB, err := take(4, "snapshot length")
	if err != nil {
		return nil, err
	}
	snapLen := int(binary.BigEndian.Uint32(snapLenB))
	if snapLen > maxSection {
		return nil, fmt.Errorf("server: bootstrap snapshot section is %d bytes (cap %d)", snapLen, maxSection)
	}
	if p.Snapshot, err = take(snapLen, "snapshot"); err != nil {
		return nil, err
	}
	nSendersB, err := take(2, "sender count")
	if err != nil {
		return nil, err
	}
	nSenders := int(binary.BigEndian.Uint16(nSendersB))
	for i := 0; i < nSenders; i++ {
		sidLenB, err := take(2, "sender id length")
		if err != nil {
			return nil, err
		}
		sidLen := int(binary.BigEndian.Uint16(sidLenB))
		if sidLen < 1 || sidLen > bootstrapMaxIDLen {
			return nil, fmt.Errorf("server: bootstrap sender id length %d out of range 1..%d", sidLen, bootstrapMaxIDLen)
		}
		sid, err := take(sidLen, "sender id")
		if err != nil {
			return nil, err
		}
		if _, dup := p.Senders[string(sid)]; dup {
			return nil, fmt.Errorf("server: bootstrap response repeats sender %q", sid)
		}
		trLenB, err := take(4, "tracker length")
		if err != nil {
			return nil, err
		}
		trLen := int(binary.BigEndian.Uint32(trLenB))
		if trLen > maxSection {
			return nil, fmt.Errorf("server: bootstrap tracker for %q is %d bytes (cap %d)", sid, trLen, maxSection)
		}
		tr, err := take(trLen, "tracker")
		if err != nil {
			return nil, err
		}
		p.Senders[string(sid)] = tr
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("server: bootstrap response has %d trailing bytes", len(rest))
	}
	return p, nil
}

// handleBootstrap serves one barrier-consistent state transfer. Everything —
// the full snapshot, the local sketch that seeds the requester's tracker for
// this node, the watermark map and the per-sender trackers — is cut and
// copied under one snapMu hold, so the sections agree with each other
// exactly.
func (s *Server) handleBootstrap(w http.ResponseWriter, r *http.Request) {
	requester := r.URL.Query().Get("node")

	s.snapMu.Lock()
	if s.engClosed || s.closed.Load() {
		s.snapMu.Unlock()
		writeErr(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	gGlobal := s.gen.Load()
	gLocal := s.localGen.Load()
	snap, local, err := s.eng.DeltaSnapshot(s.foreign)
	if err != nil {
		s.snapMu.Unlock()
		writeSnapshotErr(w, r, err)
		return
	}
	s.snapCache, s.snapGen = snap, gGlobal
	payload := BootstrapPayload{
		NodeID:     s.cfg.NodeID,
		LocalGen:   uint64(gLocal),
		Watermarks: make(map[string]uint64, len(s.watermarks)+1),
		Senders:    make(map[string][]byte, len(s.senders)+1),
	}
	for sender, mark := range s.watermarks {
		payload.Watermarks[sender] = mark
	}
	payload.Watermarks[s.cfg.NodeID] = uint64(gLocal)
	for sender, tr := range s.senders {
		if payload.Senders[sender], err = tr.MarshalBinary(); err != nil {
			break
		}
	}
	if err == nil {
		payload.Senders[s.cfg.NodeID], err = local.MarshalBinary()
	}
	if err == nil {
		payload.Snapshot, err = snap.MarshalBinary()
	}
	s.snapMu.Unlock()

	var body []byte
	if err == nil {
		body, err = AppendBootstrapResponse(nil, payload)
	}
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, "assembling bootstrap response: %v", err)
		return
	}
	s.snapshots.Add(1)
	s.cfg.Logf("server: served %d-byte bootstrap transfer (gen %d, %d senders) to %q",
		len(body), gLocal, len(payload.Senders), requester)
	w.Header().Set("Content-Type", contentTypeBootstrap)
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// bootstrapLoop fetches a state transfer from the configured sources, trying
// each in order with BootstrapRetryWait between rounds, and opens the gated
// endpoints on success. After BootstrapAttempts failed rounds the daemon
// degrades to serving empty state (surfaced as "degraded" in /v1/stats)
// rather than staying down forever.
func (s *Server) bootstrapLoop() {
	defer s.wg.Done()
	for round := 0; round < s.cfg.BootstrapAttempts; round++ {
		if round > 0 {
			select {
			case <-s.stop:
				return
			case <-time.After(s.cfg.BootstrapRetryWait):
			}
		}
		for _, src := range s.cfg.BootstrapFrom {
			select {
			case <-s.stop:
				return
			default:
			}
			err := s.bootstrapFrom(src)
			if err == nil {
				s.snapMu.Lock()
				s.bootstrapSource = src
				s.snapMu.Unlock()
				s.bootstrapping.Store(false)
				if s.cfg.SnapshotDir != "" {
					if _, serr := s.SaveSnapshot(); serr != nil {
						s.cfg.Logf("server: persisting bootstrapped state: %v", serr)
					}
				}
				s.cfg.Logf("server: bootstrap from %s complete; serving", src)
				return
			}
			s.bootstrapFailures.Add(1)
			s.cfg.Logf("server: bootstrap from %s failed (round %d/%d): %v", src, round+1, s.cfg.BootstrapAttempts, err)
		}
	}
	s.snapMu.Lock()
	s.bootstrapDegraded = true
	s.snapMu.Unlock()
	s.bootstrapping.Store(false)
	s.cfg.Logf("server: bootstrap failed after %d rounds over %d sources: serving empty state (degraded)",
		s.cfg.BootstrapAttempts, len(s.cfg.BootstrapFrom))
}

// bootstrapFrom fetches, validates and absorbs one peer's state transfer.
func (s *Server) bootstrapFrom(src string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := NewClient(src, &http.Client{Timeout: 30 * time.Second})
	payload, err := client.Bootstrap(ctx, s.cfg.NodeID)
	if err != nil {
		return err
	}
	return s.installBootstrap(payload)
}

// installBootstrap absorbs a decoded state transfer: the snapshot becomes
// engine + foreign mass (gossip never re-ships it), the watermarks and
// per-sender trackers are installed verbatim (minus this node's own id — a
// node never receives deltas from itself). Decoding happens before the
// barrier lock; the engine's registered decoder rejects incompatible seeds
// and shapes, so a transfer from a differently-configured mesh fails here
// with no counter touched.
func (s *Server) installBootstrap(p *BootstrapPayload) error {
	snapSketch, err := s.eng.DecodeReplica(p.Snapshot)
	if err != nil {
		return fmt.Errorf("bootstrap snapshot: %w", err)
	}
	trackers := make(map[string]*sketch.HeavyHitterTracker, len(p.Senders))
	for id, enc := range p.Senders {
		if id == s.cfg.NodeID {
			continue
		}
		tr, err := s.eng.DecodeReplica(enc)
		if err != nil {
			return fmt.Errorf("bootstrap tracker for %q: %w", id, err)
		}
		trackers[id] = tr
	}

	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.engClosed || s.closed.Load() {
		return ErrServerClosed
	}
	if err := s.eng.Absorb(snapSketch); err != nil {
		return fmt.Errorf("absorbing bootstrap snapshot: %w", err)
	}
	if err := s.foreign.Merge(snapSketch); err != nil {
		return fmt.Errorf("tracking bootstrap snapshot as foreign: %w", err)
	}
	for id, tr := range trackers {
		s.senders[id] = tr
	}
	for id, mark := range p.Watermarks {
		if id == s.cfg.NodeID {
			continue
		}
		s.watermarks[id] = mark
		// Until a direct frame from this sender confirms the mark, it is
		// hearsay: a divergence on its link must heal via replace, not a
		// reset-to-0 that would re-ship mass the snapshot already carries.
		s.hearsay[id] = true
		if _, ok := s.senders[id]; !ok {
			// The source shipped a watermark without the matching tracker
			// (it recovered without a consistent sidecar itself): this
			// sender's mass inside the snapshot cannot be attributed, so a
			// replace frame from it would double-count — fall back to the
			// reset protocol for it.
			s.untracked = true
		}
	}
	s.gen.Add(1)
	s.cfg.Logf("server: absorbed bootstrap transfer from %q: %d snapshot bytes, %d watermarks, %d trackers",
		p.NodeID, len(p.Snapshot), len(p.Watermarks), len(trackers))
	return nil
}

// bootstrapGated reports whether path must answer 503 while a bootstrap is
// pending: everything under /v1/ except liveness and stats, so operators and
// the test harness can watch the transfer without being able to read or
// write state the node does not hold yet.
func bootstrapGated(path string) bool {
	switch path {
	case "/v1/healthz", "/v1/stats":
		return false
	}
	return true
}

// loadSenders restores the per-sender received-mass trackers persisted
// beside a recovered snapshot, but only when the sidecar's CRC matches the
// snapshot bytes actually recovered: a tracker cut with different counters
// would make replace-frame subtraction double-count. On any mismatch the
// daemon marks itself untracked — senders with persisted marks heal through
// the reset protocol until they re-align from scratch. Only called from the
// snapshot-recovery path in New.
func (s *Server) loadSenders(snapData []byte) {
	path := filepath.Join(s.cfg.SnapshotDir, SendersFileName)
	raw, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.cfg.Logf("server: reading sender sidecar %s: %v", path, err)
		}
		s.untracked = true
		return
	}
	var file sendersFile
	if err := json.Unmarshal(raw, &file); err != nil {
		s.cfg.Logf("server: ignoring corrupt sender sidecar %s: %v", path, err)
		s.untracked = true
		return
	}
	if got := crc32.Checksum(snapData, castagnoli); got != file.SnapCRC {
		s.cfg.Logf("server: sender sidecar %s was cut with a different snapshot (crc %08x, snapshot %08x): ignoring it",
			path, file.SnapCRC, got)
		s.untracked = true
		return
	}
	for id, enc := range file.Senders {
		tr, err := s.eng.DecodeReplica(enc)
		if err != nil {
			s.cfg.Logf("server: ignoring sender sidecar %s: tracker for %q: %v", path, id, err)
			s.senders = make(map[string]*sketch.HeavyHitterTracker)
			s.untracked = true
			return
		}
		s.senders[id] = tr
	}
	for _, id := range file.Hearsay {
		s.hearsay[id] = true
	}
	s.untracked = file.Untracked
	s.cfg.Logf("server: recovered %d sender trackers from %s", len(s.senders), path)
}

// sendersFile is the JSON schema of SendersFileName: the CRC-32C of the
// snapshot the trackers were cut with, the untracked flag (the daemon held
// unattributed foreign mass when it saved, so senders without a tracker here
// must keep using the reset protocol), the senders whose watermarks were
// still unconfirmed bootstrap hearsay, and the tracker encodings themselves.
type sendersFile struct {
	SnapCRC   uint32            `json:"snap_crc"`
	Untracked bool              `json:"untracked,omitempty"`
	Hearsay   []string          `json:"hearsay,omitempty"`
	Senders   map[string][]byte `json:"senders,omitempty"`
}
