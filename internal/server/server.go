package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/xrand"
)

// SnapshotFileName is the file a Server periodically ships its snapshot to
// inside Config.SnapshotDir, and the file New recovers from on startup.
const SnapshotFileName = "sketchd.snap"

// Config shapes a Server.
type Config struct {
	// Width and Depth size the backing Count-Min sketch; zero means 4096x4.
	Width, Depth int
	// K is the heavy-hitter candidate capacity; zero means 64.
	K int
	// Seed drives the hash functions. Daemons that intend to merge each
	// other's snapshots must share Seed, Width and Depth (the server rejects
	// incompatible snapshots at /v1/merge). Zero means 1.
	Seed uint64
	// Engine shapes the sharded ingestion underneath (workers, batch size).
	Engine engine.Config
	// Producers is the number of parallel ingestion lanes: engine producer
	// handles that /v1/update requests are spread across round-robin, so P
	// requests ingest concurrently instead of queueing on one lock. Zero
	// means GOMAXPROCS.
	Producers int
	// SnapshotDir, when non-empty, enables snapshot shipping: the server
	// recovers from SnapshotDir/sketchd.snap on startup (if present), writes
	// it on Close, and every SnapshotEvery in between. Counters recover
	// bit-identically because the encoding carries the hash seeds and exact
	// IEEE-754 counter bits.
	SnapshotDir string
	// SnapshotEvery is the period of the background snapshot writer; zero
	// disables periodic writes (startup recovery and the Close-time write
	// still happen when SnapshotDir is set).
	SnapshotEvery time.Duration
	// MaxBodyBytes caps request bodies; zero means 8 MiB.
	MaxBodyBytes int64
	// Logf, when non-nil, receives one line per notable event (recovery,
	// snapshot writes, merge rejections).
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = 4096
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.K <= 0 {
		c.K = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Producers <= 0 {
		c.Producers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// ingestLane is one parallel ingestion path: an engine producer handle, the
// mutex that keeps a single lane's handle single-writer, and the lane's
// reusable key/delta decode columns. Requests pick a lane round-robin, so P
// lanes admit P concurrent /v1/update bodies and the only contention left is
// 1/P lane-local. A request body is decoded straight into the lane's columns
// (binary batches in one bounds-checked scan, no per-item structs) and the
// columns are handed to the producer whole, so the steady-state update path
// allocates nothing per request beyond what net/http itself does.
type ingestLane struct {
	mu     sync.Mutex
	p      *engine.Producer[*sketch.HeavyHitterTracker]
	items  []uint64  // reusable decode column, guarded by mu
	deltas []float64 // reusable decode column, guarded by mu
}

// Server owns a sharded sketch engine and exposes it over HTTP:
//
//	POST /v1/update    ingest a batch of (item, delta) updates
//	GET  /v1/query     point-query estimates (?item=..., repeatable)
//	GET  /v1/topk      ranked candidates (?k=...), or ?phi=... for heavy hitters
//	GET  /v1/snapshot  the exact merged state, versioned binary encoding
//	POST /v1/merge     fold a peer's snapshot in (exact linear merge)
//	GET  /v1/stats     counters and sketch shape
//	GET  /v1/healthz   liveness
//
// Ingestion is concurrent end to end: each /v1/update handler routes its
// batch through one of Config.Producers engine producer handles (round-robin
// lanes, each with a lane-local lock), so updates never serialize behind a
// global mutex — the linearity of the sketches makes any interleaving merge
// exactly. Queries are answered from a consistent barrier snapshot cached
// until the write generation moves; snapshot, merge and stats share one
// narrow barrier lock that the update hot path never touches.
type Server struct {
	cfg   Config
	proto *sketch.HeavyHitterTracker
	mux   *http.ServeMux

	eng      *engine.Engine[*sketch.HeavyHitterTracker]
	lanes    []*ingestLane
	nextLane atomic.Uint64 // round-robin lane cursor

	// closed fences writes once Close has begun. Close sets it before
	// locking and retiring the lanes, so a write handler that wins a lane
	// lock afterwards observes it and answers 503 instead of touching a
	// retired handle.
	closed atomic.Bool

	// gen counts acknowledged writes (updates and merges); snapGen records
	// the write generation snapCache was taken at, so read endpoints reuse
	// one barrier snapshot until the state actually changes.
	gen atomic.Int64

	// snapMu is the narrow barrier lock: it serializes engine barrier
	// operations (Snapshot/MergeEncoded/Close) and guards the snapshot
	// cache. The /v1/update hot path never takes it.
	snapMu    sync.Mutex
	engClosed bool // the engine is gone: snapshots (and so reads) fail too
	snapGen   int64
	snapCache *sketch.HeavyHitterTracker

	updates, batches, merges, snapshots atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a Server, recovering state from SnapshotDir/sketchd.snap when
// configured and present, and starting the periodic snapshot writer when
// SnapshotEvery is set.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	proto := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	s := &Server{
		cfg:   cfg,
		proto: proto,
		eng:   engine.NewTracker(cfg.Engine, proto),
		stop:  make(chan struct{}),
	}

	if cfg.SnapshotDir != "" {
		path := filepath.Join(cfg.SnapshotDir, SnapshotFileName)
		data, err := os.ReadFile(path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Fresh start.
		case err != nil:
			s.eng.Close() // don't leak the worker goroutines
			return nil, fmt.Errorf("server: reading snapshot %s: %w", path, err)
		default:
			if err := s.eng.MergeEncoded(data); err != nil {
				s.eng.Close() // don't leak the worker goroutines
				return nil, fmt.Errorf("server: recovering from %s: %w", path, err)
			}
			cfg.Logf("server: recovered %d snapshot bytes from %s", len(data), path)
		}
	}

	// The ingestion lanes come after recovery so the error paths above can
	// still close the engine without waiting on open handles.
	s.lanes = make([]*ingestLane, cfg.Producers)
	for i := range s.lanes {
		s.lanes[i] = &ingestLane{p: s.eng.Producer()}
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/merge", s.handleMerge)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})

	if cfg.SnapshotDir != "" && cfg.SnapshotEvery > 0 {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	return s, nil
}

// Handler returns the HTTP handler serving the API above.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the snapshot writer, retires the ingestion lanes, ships a
// final snapshot when SnapshotDir is configured, and shuts the engine down.
// Writes are fenced off (503) before the final snapshot is taken, so every
// update the server has acknowledged is in the recovery file; reads keep
// working until the engine itself is gone.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return ErrServerClosed
	}
	close(s.stop)
	s.wg.Wait()

	// Retire the lanes. closed is already set, so a handler that acquires a
	// lane lock from here on answers 503 without touching the handle; a
	// handler that held the lock first finishes its flush before the handle
	// closes, so its acknowledged batch reaches the final snapshot.
	for _, lane := range s.lanes {
		lane.mu.Lock()
		lane.p.Close()
		lane.mu.Unlock()
	}

	var saveErr error
	if s.cfg.SnapshotDir != "" {
		_, saveErr = s.SaveSnapshot()
	}

	s.snapMu.Lock()
	s.engClosed = true
	_, err := s.eng.Close()
	s.snapMu.Unlock()
	if err != nil && saveErr == nil {
		saveErr = err
	}
	return saveErr
}

// ErrServerClosed is returned by Close after the first call.
var ErrServerClosed = errors.New("server: closed")

// snapshotLoop ships a snapshot to disk every SnapshotEvery until Close.
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SnapshotEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if path, err := s.SaveSnapshot(); err != nil {
				s.cfg.Logf("server: periodic snapshot failed: %v", err)
			} else {
				s.cfg.Logf("server: snapshot shipped to %s", path)
			}
		}
	}
}

// SaveSnapshot writes the current exact snapshot to
// SnapshotDir/sketchd.snap atomically (write to a temp file, then rename)
// and returns the path written.
func (s *Server) SaveSnapshot() (string, error) {
	if s.cfg.SnapshotDir == "" {
		return "", errors.New("server: no snapshot directory configured")
	}
	s.snapMu.Lock()
	data, err := s.encodedSnapshotLocked()
	s.snapMu.Unlock()
	if err != nil {
		return "", err
	}
	s.snapshots.Add(1)
	if err := os.MkdirAll(s.cfg.SnapshotDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(s.cfg.SnapshotDir, SnapshotFileName)
	tmp, err := os.CreateTemp(s.cfg.SnapshotDir, SnapshotFileName+".tmp*")
	if err != nil {
		return "", err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	return path, nil
}

// ingestColumns hands a lane's decoded columns to its producer and bumps the
// write generation. The caller holds lane.mu and has re-checked closed. This
// plus the decode is the whole /v1/update hot path: an atomic lane pick and
// one lane-local lock — never the barrier lock, never a global one.
func (s *Server) ingestColumns(lane *ingestLane) {
	lane.p.UpdateColumns(lane.items, lane.deltas)
	lane.p.Flush()
	s.gen.Add(1)
}

// snapshotLocked returns a consistent barrier snapshot of the engine,
// reusing the cached one when no write has happened since it was taken.
// Callers must hold s.snapMu.
//
// The generation is loaded before the barrier: a write that bumps gen after
// the load but before the barrier lands in the snapshot anyway (the barrier
// happens later), so the cache is only ever stamped with a generation it
// fully covers — a reader that saw an update acknowledged is never served a
// cache from before it.
func (s *Server) snapshotLocked() (*sketch.HeavyHitterTracker, error) {
	if s.engClosed {
		return nil, ErrServerClosed
	}
	g := s.gen.Load()
	if s.snapCache != nil && s.snapGen == g {
		return s.snapCache, nil
	}
	snap, err := s.eng.Snapshot()
	if err != nil {
		return nil, err
	}
	s.snapCache, s.snapGen = snap, g
	return snap, nil
}

// snapshot is snapshotLocked behind the barrier lock, for read handlers.
func (s *Server) snapshot() (*sketch.HeavyHitterTracker, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snapshotLocked()
}

// encodedSnapshotLocked marshals the current snapshot. Callers must hold
// s.snapMu.
func (s *Server) encodedSnapshotLocked() ([]byte, error) {
	snap, err := s.snapshotLocked()
	if err != nil {
		return nil, err
	}
	return snap.MarshalBinary()
}

// readBody drains a size-capped request body. Over-limit bodies answer 413;
// any other read failure (client disconnect, bad framing) answers 400.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		} else {
			writeErr(w, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return data, true
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	// JSON parses before the lane lock (the parse allocates its own request
	// struct, so overlapping parses on one lane cost nothing); the binary
	// format decodes under the lock, straight into the lane's reusable
	// columns — that decode is one bounds-checked scan and is part of this
	// lane's pipeline either way.
	ct := r.Header.Get("Content-Type")
	isBinary := strings.HasPrefix(ct, contentTypeBatch)
	var req UpdateRequest
	switch {
	case isBinary:
	case ct == "" || strings.HasPrefix(ct, contentTypeJSON):
		if err := json.Unmarshal(data, &req); err != nil {
			writeErr(w, http.StatusBadRequest, "decoding JSON updates: %v", err)
			return
		}
	default:
		writeErr(w, http.StatusUnsupportedMediaType, "unsupported Content-Type %q (want %s or %s)",
			ct, contentTypeJSON, contentTypeBatch)
		return
	}

	lane := s.lanes[s.nextLane.Add(1)%uint64(len(s.lanes))]
	lane.mu.Lock()
	defer lane.mu.Unlock()
	// Re-check under the lane lock: Close sets closed before it locks and
	// retires the lanes, so observing false here guarantees the handle is
	// live and this flush lands before the final snapshot.
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	lane.items, lane.deltas = lane.items[:0], lane.deltas[:0]
	if isBinary {
		var err error
		lane.items, lane.deltas, err = DecodeBatchColumns(data, lane.items, lane.deltas)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		for _, u := range req.Updates {
			lane.items = append(lane.items, u.Item)
			lane.deltas = append(lane.deltas, u.Delta)
		}
	}

	s.ingestColumns(lane)
	accepted := len(lane.items)
	s.updates.Add(int64(accepted))
	s.batches.Add(1)
	writeJSON(w, http.StatusOK, UpdateResponse{Accepted: accepted})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query()["item"]
	if len(raw) == 0 {
		writeErr(w, http.StatusBadRequest, "missing item parameter (repeatable): /v1/query?item=7&item=8")
		return
	}
	items := make([]uint64, len(raw))
	for i, v := range raw {
		item, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad item %q: %v", v, err)
			return
		}
		items[i] = item
	}

	snap, err := s.snapshot()
	if err != nil {
		writeSnapshotErr(w, err)
		return
	}
	resp := QueryResponse{Estimates: make([]Estimate, len(items))}
	for i, item := range items {
		resp.Estimates[i] = Estimate{Item: item, Estimate: snap.Estimate(item)}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	k := 0
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, http.StatusBadRequest, "bad k %q: want a positive integer", v)
			return
		}
		k = n
	}
	phi := -1.0
	if v := r.URL.Query().Get("phi"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			writeErr(w, http.StatusBadRequest, "bad phi %q: want a fraction in [0,1]", v)
			return
		}
		phi = f
	}

	snap, err := s.snapshot()
	if err != nil {
		writeSnapshotErr(w, err)
		return
	}
	// TopK and HeavyHitters both come back sorted by decreasing count.
	source := snap.TopK()
	if phi >= 0 {
		source = snap.HeavyHitters(phi)
	}
	ranked := make([]TopKItem, 0, len(source))
	for _, ic := range source {
		ranked = append(ranked, TopKItem{Item: ic.Item, Count: ic.Count})
	}
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	writeJSON(w, http.StatusOK, TopKResponse{Items: ranked})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.snapMu.Lock()
	data, err := s.encodedSnapshotLocked()
	s.snapMu.Unlock()
	if err != nil {
		writeSnapshotErr(w, err)
		return
	}
	s.snapshots.Add(1)
	w.Header().Set("Content-Type", contentTypeSnapshot)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if len(data) == 0 {
		writeErr(w, http.StatusBadRequest, "empty body: POST the bytes of a peer's /v1/snapshot")
		return
	}
	if s.closed.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}

	s.snapMu.Lock()
	var err error
	var mass float64
	// Re-check closed under the barrier lock (the analogue of ingest's
	// re-check under the lane lock): Close sets it before the final
	// SaveSnapshot, so a merge that squeezed past the check above cannot be
	// acknowledged after the recovery file was written and then lost.
	if s.engClosed || s.closed.Load() {
		err = ErrServerClosed
	} else if err = s.eng.MergeEncoded(data); err == nil {
		s.gen.Add(1)
		s.merges.Add(1)
		var snap *sketch.HeavyHitterTracker
		if snap, err = s.snapshotLocked(); err == nil {
			mass = snap.TotalMass()
		}
	}
	s.snapMu.Unlock()

	if err != nil {
		s.cfg.Logf("server: merge rejected: %v", err)
		switch {
		case errors.Is(err, engine.ErrClosed), errors.Is(err, ErrServerClosed):
			writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
		default:
			// Everything else means the posted bytes were malformed or came
			// from an incompatible sketch — the peer's fault, a 4xx.
			writeErr(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, MergeResponse{TotalMass: mass})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := Stats{
		Width:     s.cfg.Width,
		Depth:     s.cfg.Depth,
		K:         s.cfg.K,
		Workers:   s.eng.Workers(),
		Producers: len(s.lanes),
		Updates:   s.updates.Load(),
		Batches:   s.batches.Load(),
		Merges:    s.merges.Load(),
		Snapshots: s.snapshots.Load(),
	}
	snap, err := s.snapshot()
	if err != nil {
		writeSnapshotErr(w, err)
		return
	}
	stats.TotalMass = snap.TotalMass()
	writeJSON(w, http.StatusOK, stats)
}

// writeSnapshotErr maps engine snapshot failures to HTTP statuses.
func writeSnapshotErr(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrServerClosed) || errors.Is(err, engine.ErrClosed) {
		writeErr(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	writeErr(w, http.StatusInternalServerError, "%v", err)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", contentTypeJSON)
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}
