package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/xrand"
)

// SnapshotFileName is the file a Server periodically ships its snapshot to
// inside Config.SnapshotDir, and the file New recovers from on startup.
const SnapshotFileName = "sketchd.snap"

// WatermarkFileName is the file the per-peer gossip watermarks are persisted
// to beside the snapshot (same Config.SnapshotDir, same cadence). Reloading
// it on startup lets a restarted receiver resume deltas where it left off
// instead of forcing every sender through a 409 reset resync.
const WatermarkFileName = "sketchd.watermarks"

// Config shapes a Server.
type Config struct {
	// Width and Depth size the backing Count-Min sketch; zero means 4096x4.
	Width, Depth int
	// K is the heavy-hitter candidate capacity; zero means 64.
	K int
	// Seed drives the hash functions. Daemons that intend to merge each
	// other's snapshots must share Seed, Width and Depth (the server rejects
	// incompatible snapshots at /v1/merge). Zero means 1.
	Seed uint64
	// Engine shapes the sharded ingestion underneath: workers, batch size
	// and the sharding mode (Engine.Partition trades replica mode's
	// workers x sketch-size memory for one column-partitioned copy with
	// bit-identical reads; see internal/engine and docs/CLUSTER.md).
	Engine engine.Config
	// Producers is the number of parallel ingestion lanes: engine producer
	// handles that /v1/update requests are spread across round-robin, so P
	// requests ingest concurrently instead of queueing on one lock. Zero
	// means GOMAXPROCS.
	Producers int
	// SnapshotDir, when non-empty, enables snapshot shipping: the server
	// recovers from SnapshotDir/sketchd.snap on startup (if present), writes
	// it on Close, and every SnapshotEvery in between. Counters recover
	// bit-identically because the encoding carries the hash seeds and exact
	// IEEE-754 counter bits.
	SnapshotDir string
	// SnapshotEvery is the period of the background snapshot writer; zero
	// disables periodic writes (startup recovery and the Close-time write
	// still happen when SnapshotDir is set).
	SnapshotEvery time.Duration
	// MaxBodyBytes caps request bodies; zero means 8 MiB.
	MaxBodyBytes int64
	// MaxFrameBytes caps the declared payload length of one streaming-ingest
	// frame (raw TCP via ServeStream or chunked POST /v1/stream) — the
	// streaming analogue of MaxBodyBytes, checked before any buffer grows so
	// a forged header cannot demand an outsized allocation. Zero means
	// MaxBodyBytes.
	MaxFrameBytes int64
	// StreamAckEvery is how many applied data frames a streaming connection
	// may accumulate before the server volunteers an ack (producers can also
	// request one per frame); zero means 64.
	StreamAckEvery int
	// Peers are the base URLs of the other daemons in a gossip mesh (e.g.
	// "http://10.0.0.2:7600"; a bare host:port gets http:// prepended). When
	// set, a replicator goroutine ships this daemon's locally ingested
	// updates to every peer as snapshot *deltas* every GossipEvery —
	// linearity makes the difference of two snapshots a valid sketch — and
	// a per-sender generation watermark on the receiving side makes
	// redelivery idempotent. Every daemon in the mesh must share Seed,
	// Width and Depth, and should list every other daemon (deltas carry
	// only locally ingested mass and are deliberately not relayed, which is
	// what makes a full mesh converge without double-counting).
	Peers []string
	// GossipEvery is the delta-shipping period; zero with Peers set means
	// one second. Ignored without Peers.
	GossipEvery time.Duration
	// BootstrapFrom lists peer base URLs to fetch a /v1/bootstrap state
	// transfer from when this daemon starts without a usable local snapshot
	// (none at all, or one whose watermark sidecar is missing or corrupt).
	// Sources are tried in order with BootstrapRetryWait between rounds;
	// until one succeeds every endpoint except /v1/healthz and /v1/stats
	// answers 503 and the replicator stays parked, so the node never serves
	// or gossips state it does not hold. Empty disables peer bootstrap (the
	// pre-existing behaviour: rejoin blank and converge forward).
	BootstrapFrom []string
	// BootstrapAttempts is how many rounds over BootstrapFrom to try before
	// degrading to serving empty state; zero means 3.
	BootstrapAttempts int
	// BootstrapRetryWait is the pause between bootstrap rounds; zero means
	// two seconds.
	BootstrapRetryWait time.Duration
	// GossipBackoffMax caps the per-peer exponential retry backoff the
	// replicator applies to unreachable peers (the window starts at
	// GossipEvery and doubles per consecutive failure); zero means 30s.
	GossipBackoffMax time.Duration
	// NodeID names this daemon in the delta frames it sends — the key peers
	// keep their watermark under. It must be unique per daemon and stable
	// for the daemon's lifetime; empty means a host-pid-sequence identifier.
	NodeID string
	// RecoverAlgos lists the sparse-recovery algorithms /v1/recover may run
	// (subset of sketch, omp, iht, ista, smp); empty enables all of them.
	// The first entry is the default when a request names no ?algo=.
	RecoverAlgos []string
	// RecoverUniverse is the default signal dimension n that /v1/recover
	// inverts the measurement over (recovered items are coordinates in
	// [0, n)); zero means 65536. Requests may override with ?universe= up to
	// MaxRecoverUniverse.
	RecoverUniverse int
	// RecoverMaxK caps the ?k= a single /v1/recover request may ask for;
	// zero means 256.
	RecoverMaxK int
	// RecoverIters is the default iteration budget of the iterative
	// recoverers (omp, iht, ista, smp); zero means 50. Requests may override
	// with ?iters=.
	RecoverIters int
	// Logf, when non-nil, receives one line per notable event (recovery,
	// snapshot writes, merge rejections, gossip resyncs).
	Logf func(format string, args ...interface{})
}

// recoverAlgoNames is the full recoverer menu, in default-preference order:
// sketch decoding first (one pass, no iteration), then the iterative and
// greedy algorithms.
var recoverAlgoNames = []string{"sketch", "smp", "omp", "iht", "ista"}

// MaxRecoverUniverse caps the per-request ?universe= override of
// /v1/recover: recovery is Θ(universe · depth) per pass, and the cap keeps a
// single request from demanding an unbounded decode.
const MaxRecoverUniverse = 1 << 22

// MaxSetQuerySupport caps the candidate support size of one /v1/setquery
// request.
const MaxSetQuerySupport = 4096

// MaxSpectrumLen caps the sample count of one /v1/spectrum request.
const MaxSpectrumLen = 1 << 20

func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = 4096
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.K <= 0 {
		c.K = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Producers <= 0 {
		c.Producers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = c.MaxBodyBytes
	}
	if c.StreamAckEvery <= 0 {
		c.StreamAckEvery = 64
	}
	if len(c.RecoverAlgos) == 0 {
		c.RecoverAlgos = recoverAlgoNames
	}
	if c.RecoverUniverse <= 0 {
		c.RecoverUniverse = 1 << 16
	}
	if c.RecoverMaxK <= 0 {
		c.RecoverMaxK = 256
	}
	if c.RecoverIters <= 0 {
		c.RecoverIters = 50
	}
	peers := make([]string, 0, len(c.Peers))
	for _, p := range c.Peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		peers = append(peers, strings.TrimRight(p, "/"))
	}
	c.Peers = peers
	if len(c.Peers) > 0 && c.GossipEvery <= 0 {
		c.GossipEvery = time.Second
	}
	sources := make([]string, 0, len(c.BootstrapFrom))
	for _, src := range c.BootstrapFrom {
		src = strings.TrimSpace(src)
		if src == "" {
			continue
		}
		if !strings.Contains(src, "://") {
			src = "http://" + src
		}
		sources = append(sources, strings.TrimRight(src, "/"))
	}
	c.BootstrapFrom = sources
	if c.BootstrapAttempts <= 0 {
		c.BootstrapAttempts = 3
	}
	if c.BootstrapRetryWait <= 0 {
		c.BootstrapRetryWait = 2 * time.Second
	}
	if c.GossipBackoffMax <= 0 {
		c.GossipBackoffMax = 30 * time.Second
	}
	if c.NodeID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "sketchd"
		}
		// The sequence number keeps in-process fleets (tests, examples)
		// distinct even though they share a hostname and pid.
		c.NodeID = fmt.Sprintf("%s-%d-%d", host, os.Getpid(), nodeSeq.Add(1))
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// nodeSeq disambiguates default node ids within one process.
var nodeSeq atomic.Int64

// ingestLane is one parallel ingestion path: an engine producer handle, the
// mutex that keeps a single lane's handle single-writer, and the lane's
// reusable key/delta decode columns. Requests pick a lane round-robin, so P
// lanes admit P concurrent /v1/update bodies and the only contention left is
// 1/P lane-local. A request body is decoded straight into the lane's columns
// (binary batches in one bounds-checked scan, no per-item structs) and the
// columns are handed to the producer whole, so the steady-state update path
// allocates nothing per request beyond what net/http itself does.
type ingestLane struct {
	mu     sync.Mutex
	p      *engine.Producer[*sketch.HeavyHitterTracker]
	items  []uint64  // reusable decode column, guarded by mu
	deltas []float64 // reusable decode column, guarded by mu
}

// Server owns a sharded sketch engine and exposes it over HTTP:
//
//	POST /v1/update    ingest a batch of (item, delta) updates
//	GET  /v1/query     point-query estimates (?item=..., repeatable)
//	GET  /v1/topk      ranked candidates (?k=...), or ?phi=... for heavy hitters
//	GET  /v1/recover   sparse recovery over the live counters (?algo=&k=&universe=)
//	POST /v1/setquery  calibrated estimates over a caller-supplied support set
//	POST /v1/spectrum  sparse Fourier support of a posted signal (internal/sfft)
//	GET  /v1/snapshot  the exact merged state, versioned binary encoding
//	POST /v1/merge     fold a peer's snapshot in (exact linear merge)
//	POST /v1/delta     fold a peer's gossip delta frame in (watermark-idempotent)
//	GET  /v1/stats     counters, sketch shape, per-peer replication lag
//	GET  /v1/healthz   liveness
//
// All failures share one JSON error envelope {"error": {"code", "message",
// "detail"}} (legacy plain-text bodies behind Accept: text/plain), and every
// read response carries the write generation gen of the barrier snapshot
// that answered it.
//
// Ingestion is concurrent end to end: each /v1/update handler routes its
// batch through one of Config.Producers engine producer handles (round-robin
// lanes, each with a lane-local lock), so updates never serialize behind a
// global mutex — the linearity of the sketches makes any interleaving merge
// exactly. Queries are answered from a consistent barrier snapshot cached
// until the write generation moves; snapshot, merge and stats share one
// narrow barrier lock that the update hot path never touches.
type Server struct {
	cfg   Config
	proto *sketch.HeavyHitterTracker
	mux   *http.ServeMux

	eng      *engine.Engine[*sketch.HeavyHitterTracker]
	lanes    []*ingestLane
	nextLane atomic.Uint64 // round-robin lane cursor

	// The read-side twins of the ingest lanes: reusable key/estimate columns
	// for POST /v1/query batch bodies, picked round-robin.
	readLanes    []*readLane
	nextReadLane atomic.Uint64

	// closed fences writes once Close has begun. Close sets it before
	// locking and retiring the lanes, so a write handler that wins a lane
	// lock afterwards observes it and answers 503 instead of touching a
	// retired handle.
	closed atomic.Bool

	// gen counts acknowledged writes (updates, merges and applied deltas);
	// snapGen records the write generation snapCache was taken at, so read
	// endpoints reuse one barrier snapshot until the state actually changes.
	gen atomic.Int64
	// localGen counts acknowledged *locally ingested* batches only — the
	// generation currency of the gossip protocol. Deltas ship the window
	// (fromGen, toGen] in these units; foreign mass (merges, applied
	// deltas) bumps gen but not localGen, which is why it is never gossiped
	// onward.
	localGen atomic.Int64

	// snapMu is the narrow barrier lock: it serializes engine barrier
	// operations (Snapshot/Absorb/Close) and guards the snapshot cache, the
	// foreign tracker and the watermark map. The /v1/update hot path never
	// takes it.
	snapMu    sync.Mutex
	engClosed bool // the engine is gone: snapshots (and so reads) fail too
	snapGen   int64
	snapCache *sketch.HeavyHitterTracker
	// epoch is the lock-free read cache (see readpath.go): the latest
	// barrier snapshot stamped with the generation it covers, shared by every
	// reader until a write bumps gen. engRetired is the atomic shadow of
	// engClosed that fences the lock-free fast path after Close.
	epoch      atomic.Pointer[readEpoch]
	engRetired atomic.Bool
	// Read-path counters: epoch hits answered without the barrier lock,
	// misses that rebuilt the epoch, batch queries served and total keys they
	// carried (mean batch size = batchKeys / batchQueries).
	epochHits, epochMisses  atomic.Int64
	batchQueries, batchKeys atomic.Int64
	// foreign accumulates every sketch absorbed from outside the local
	// stream: recovered snapshots, /v1/merge bodies and applied /v1/delta
	// payloads. The replicator ships (engine snapshot - foreign), i.e. the
	// sketch of locally ingested updates only — peers receive each node's
	// own mass exactly once, never a relayed copy of their own.
	foreign *sketch.HeavyHitterTracker
	// watermarks maps a sender's NodeID to the toGen of the newest delta
	// frame applied from it; the receiver-side half of the idempotency
	// protocol (see DeltaFrame in wire.go).
	watermarks map[string]uint64
	// senders maps a sender's NodeID to the cumulative sketch of every delta
	// applied from it — the subtraction baseline that makes replace frames
	// (lossless resync after a watermark divergence) exact. An entry exists
	// iff the tracker provably covers all of that sender's mass in the
	// counters; untracked (below) blocks creating entries for senders whose
	// mass may already sit unattributed in a recovered snapshot. Guarded by
	// snapMu, like watermarks.
	senders map[string]*sketch.HeavyHitterTracker
	// untracked is set when this daemon recovered a snapshot without a
	// CRC-consistent sender sidecar: the counters then contain foreign mass
	// that cannot be attributed per sender, so replace frames are refused
	// (reset resync instead) for any sender without a post-recovery tracker.
	untracked bool
	// hearsay marks watermark entries installed from a bootstrap transfer
	// that no direct frame from the sender has confirmed yet. A reset-to-0
	// from such a sender is ambiguous — it restarted, or it simply never
	// acked us on this (virgin) link while our mark jumped via bootstrap —
	// and accepting it in the second case would double-count the sender's
	// mass already inside the bootstrap snapshot. So a reset-to-0 on a
	// hearsay mark is refused with the replace offer (exact either way the
	// numbering actually aligned), and the flag clears on the first directly
	// confirmed frame. Guarded by snapMu.
	hearsay map[string]bool
	// Bootstrap status for /v1/stats (guarded by snapMu except the atomics):
	// bootstrapping gates the API while a state transfer is pending.
	bootstrapping     atomic.Bool
	bootstrapFailures atomic.Int64
	bootstrapSource   string
	bootstrapDegraded bool
	wasBootstrapped   bool
	// maxDeltaInner caps the declared inner length of /v1/delta envelopes
	// (a small multiple of this daemon's own dense encoding size).
	maxDeltaInner int

	updates, batches, merges, snapshots            atomic.Int64
	deltasApplied, deltasDuplicate, deltasRejected atomic.Int64
	deltasReplaced                                 atomic.Int64

	// Streaming ingest registry (see stream.go): every live connection and
	// raw listener — aborted and awaited by Close so acked frames always
	// reach the final merge — plus the named sessions holding the
	// exactly-once resume watermarks. streamWG counts accept loops and
	// connection handlers.
	streamMu        sync.Mutex
	streamConns     map[*streamConn]struct{}
	streamListeners map[net.Listener]struct{}
	streamSessions  map[string]*streamSession
	streamWG        sync.WaitGroup
	streamsActive   atomic.Int64
	streamFrames    atomic.Int64

	// peerMu guards the replication fields of the peer states below (the
	// replicator goroutine mutates them, /v1/stats reads them).
	peerMu sync.Mutex
	peers  []*peerState

	stop chan struct{}
	wg   sync.WaitGroup
}

// peerState is the sender-side replication state for one gossip peer: the
// last local snapshot the peer acknowledged (the subtraction baseline for
// the next delta), and — when an ack never arrived — the encoded frame to
// retry verbatim. All fields except url and client are guarded by
// Server.peerMu.
type peerState struct {
	url    string
	client *Client

	baseline     *sketch.HeavyHitterTracker // local state as of the last ack
	baseGen      int64                      // localGen the baseline was cut at
	pending      []byte                     // un-acked frame, retried verbatim
	pendingLocal *sketch.HeavyHitterTracker
	pendingGen   int64
	framesAcked  int64
	bytesShipped int64
	lastErr      string
	// Capped exponential retry backoff: after failStreak consecutive
	// transport failures the replicator skips this peer until nextAttempt
	// (the window starts at GossipEvery and doubles per failure up to
	// Config.GossipBackoffMax), so an unreachable peer costs one connection
	// attempt per window instead of one per tick.
	failStreak  int
	nextAttempt time.Time
}

// methodNotAllowed answers a JSON 405 envelope naming the allowed methods.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeErr(w, r, http.StatusMethodNotAllowed, "method %s not allowed on %s (allow: %s)", r.Method, r.URL.Path, allow)
	}
}

// New builds a Server, recovering state from SnapshotDir/sketchd.snap when
// configured and present, and starting the periodic snapshot writer when
// SnapshotEvery is set.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	for _, algo := range cfg.RecoverAlgos {
		if recovererFor(algo, 1) == nil {
			return nil, fmt.Errorf("server: unknown recovery algorithm %q in RecoverAlgos (known: %s)", algo, strings.Join(recoverAlgoNames, ", "))
		}
	}
	proto := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	s := &Server{
		cfg:             cfg,
		proto:           proto,
		eng:             engine.NewTracker(cfg.Engine, proto),
		foreign:         proto.Clone(),
		watermarks:      make(map[string]uint64),
		senders:         make(map[string]*sketch.HeavyHitterTracker),
		hearsay:         make(map[string]bool),
		streamConns:     make(map[*streamConn]struct{}),
		streamListeners: make(map[net.Listener]struct{}),
		streamSessions:  make(map[string]*streamSession),
		stop:            make(chan struct{}),
	}
	// A compatible peer's dense delta encoding can never legitimately exceed
	// its own sketch's size (counters plus a full candidate set) — cap the
	// compressed envelope's declared inner length there, so a forged header
	// in a tiny /v1/delta body cannot demand an outsized allocation.
	if empty, err := proto.MarshalBinary(); err == nil {
		s.maxDeltaInner = 2 * (len(empty) + 8*cfg.K + 1024)
	}

	recovered := false
	if cfg.SnapshotDir != "" {
		path := filepath.Join(cfg.SnapshotDir, SnapshotFileName)
		data, err := os.ReadFile(path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// Fresh start (peer bootstrap below, when configured).
		case err != nil:
			s.eng.Close() // don't leak the worker goroutines
			return nil, fmt.Errorf("server: reading snapshot %s: %w", path, err)
		case len(cfg.BootstrapFrom) > 0 && !s.watermarkFileUsable():
			// The snapshot is stale: its watermark sidecar is missing or
			// corrupt, so rejoining from it would force every sender through
			// a lossy reset resync. With bootstrap sources configured, a
			// fresh barrier-consistent transfer from a live peer is strictly
			// better — it carries the cluster's view of this node's own
			// pre-crash mass too — so the local file is left untouched on
			// disk but not absorbed.
			cfg.Logf("server: snapshot %s has no usable watermark sidecar: bootstrapping from peers instead", path)
		default:
			// Recovered state counts as foreign for gossip purposes: the
			// peers that were alive before the crash already hold it (they
			// received it as deltas then), so re-shipping it would
			// double-count. A peer that never saw it can be bootstrapped
			// with /v1/snapshot -> /v1/merge (see docs/CLUSTER.md).
			src, err := s.eng.DecodeReplica(data)
			if err == nil {
				err = s.eng.Absorb(src)
			}
			if err == nil {
				err = s.foreign.Merge(src)
			}
			if err != nil {
				s.eng.Close() // don't leak the worker goroutines
				return nil, fmt.Errorf("server: recovering from %s: %w", path, err)
			}
			recovered = true
			cfg.Logf("server: recovered %d snapshot bytes from %s", len(data), path)
			// Gossip watermarks only make sense next to the counters they
			// were persisted with: a blank daemon reloading stale watermarks
			// would silently skip every delta below them, so the file is
			// consulted exclusively on the snapshot-recovery path. The
			// sender trackers are stricter still: they must match the
			// recovered counters bit for bit (CRC-checked in loadSenders) or
			// replace-frame subtraction would double-count.
			s.loadWatermarks()
			s.loadSenders(data)
		}
	}
	if len(cfg.BootstrapFrom) > 0 && !recovered {
		s.bootstrapping.Store(true)
		s.wasBootstrapped = true
	}

	for _, url := range cfg.Peers {
		s.peers = append(s.peers, &peerState{
			url:      url,
			client:   NewClient(url, &http.Client{Timeout: 10 * time.Second}),
			baseline: proto.Clone(),
		})
	}

	// The ingestion lanes come after recovery so the error paths above can
	// still close the engine without waiting on open handles.
	s.lanes = make([]*ingestLane, cfg.Producers)
	for i := range s.lanes {
		s.lanes[i] = &ingestLane{p: s.eng.Producer()}
	}
	s.readLanes = make([]*readLane, cfg.Producers)
	for i := range s.readLanes {
		s.readLanes[i] = &readLane{}
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/update", s.handleUpdate)
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("POST /v1/query", s.handleQueryBatch)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	s.mux.HandleFunc("GET /v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/merge", s.handleMerge)
	s.mux.HandleFunc("POST /v1/delta", s.handleDelta)
	s.mux.HandleFunc("POST /v1/stream", s.handleStream)
	s.mux.HandleFunc("GET /v1/bootstrap", s.handleBootstrap)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/recover", s.handleRecover)
	s.mux.HandleFunc("POST /v1/recover", s.handleRecover)
	s.mux.HandleFunc("POST /v1/setquery", s.handleSetQuery)
	s.mux.HandleFunc("POST /v1/spectrum", s.handleSpectrum)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	// Bare-path fallbacks: a request with the wrong method would otherwise
	// get the mux's plain-text 405 — route it through the JSON envelope
	// instead (the method-qualified patterns above are more specific and
	// keep winning for matching methods). The catch-all "/v1/" does the same
	// for unknown paths.
	for path, allow := range map[string]string{
		"/v1/update":    "POST",
		"/v1/query":     "GET, POST",
		"/v1/topk":      "GET",
		"/v1/snapshot":  "GET",
		"/v1/merge":     "POST",
		"/v1/delta":     "POST",
		"/v1/stream":    "POST",
		"/v1/bootstrap": "GET",
		"/v1/recover":   "GET, POST",
		"/v1/setquery":  "POST",
		"/v1/spectrum":  "POST",
		"/v1/stats":     "GET",
		"/v1/healthz":   "GET",
	} {
		s.mux.HandleFunc(path, methodNotAllowed(allow))
	}
	s.mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		writeErr(w, r, http.StatusNotFound, "no such endpoint %s (see docs/API.md)", r.URL.Path)
	})

	if cfg.SnapshotDir != "" && cfg.SnapshotEvery > 0 {
		s.wg.Add(1)
		go s.snapshotLoop()
	}
	if len(s.peers) > 0 {
		s.wg.Add(1)
		go s.gossipLoop()
	}
	if s.bootstrapping.Load() {
		s.wg.Add(1)
		go s.bootstrapLoop()
	}
	return s, nil
}

// Handler returns the HTTP handler serving the API above. While a peer
// bootstrap is pending, every endpoint except /v1/healthz and /v1/stats
// answers 503 — the node must not serve reads it cannot answer correctly or
// accept writes it would interleave with the incoming state transfer.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.bootstrapping.Load() && bootstrapGated(r.URL.Path) {
			writeErrDetail(w, r, http.StatusServiceUnavailable, "bootstrap_pending",
				"bootstrap in progress: state transfer from peers is not complete yet")
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// Close stops the snapshot writer and the gossip replicator, retires the
// ingestion lanes, makes a final delta push to every gossip peer, ships a
// final snapshot when SnapshotDir is configured, and shuts the engine down.
// Writes are fenced off (503) before the final flushes, so every update the
// server has acknowledged reaches both the peers and the recovery file;
// reads keep working until the engine itself is gone.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return ErrServerClosed
	}
	close(s.stop)
	s.wg.Wait()

	// Drain the streaming connections first: abort their reads, wait for
	// every handler to close its pinned producer. Acks are only ever sent
	// after a frame's columns are flushed to the shard queues, so everything
	// a producer saw acknowledged is in the engine by the time the final
	// snapshot below is cut.
	s.drainStreams()

	// Retire the lanes. closed is already set, so a handler that acquires a
	// lane lock from here on answers 503 without touching the handle; a
	// handler that held the lock first finishes its flush before the handle
	// closes, so its acknowledged batch reaches the final snapshot.
	for _, lane := range s.lanes {
		lane.mu.Lock()
		lane.p.Close()
		lane.mu.Unlock()
	}

	// Final gossip flush: one last delta push per peer, so a graceful
	// shutdown hands every acknowledged local update to the mesh. Peers
	// that are down simply miss it (logged); their watermark makes the
	// frame safe to lose.
	if len(s.peers) > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		s.gossipPush(ctx, true) // the last chance to flush: ignore backoff windows
		cancel()
	}

	var saveErr error
	if s.cfg.SnapshotDir != "" {
		_, saveErr = s.SaveSnapshot()
	}

	s.snapMu.Lock()
	s.engClosed = true
	s.engRetired.Store(true) // fences the lock-free epoch fast path too
	_, err := s.eng.Close()
	s.snapMu.Unlock()
	if err != nil && saveErr == nil {
		saveErr = err
	}
	return saveErr
}

// ErrServerClosed is returned by Close after the first call.
var ErrServerClosed = errors.New("server: closed")

// snapshotLoop ships a snapshot to disk every SnapshotEvery until Close.
func (s *Server) snapshotLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.SnapshotEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if path, err := s.SaveSnapshot(); err != nil {
				s.cfg.Logf("server: periodic snapshot failed: %v", err)
			} else {
				s.cfg.Logf("server: snapshot shipped to %s", path)
			}
		}
	}
}

// SaveSnapshot writes the current exact snapshot to
// SnapshotDir/sketchd.snap atomically (write to a temp file, then rename)
// and returns the path written.
func (s *Server) SaveSnapshot() (string, error) {
	if s.cfg.SnapshotDir == "" {
		return "", errors.New("server: no snapshot directory configured")
	}
	// The watermarks and sender trackers are copied under the same barrier
	// hold as the snapshot encode, so the persisted triple is consistent:
	// the watermark file never claims a delta the snapshot's counters don't
	// contain, and every tracker matches the counters bit for bit.
	s.snapMu.Lock()
	data, err := s.encodedSnapshotLocked()
	marks := make(map[string]uint64, len(s.watermarks))
	for sender, mark := range s.watermarks {
		marks[sender] = mark
	}
	side := sendersFile{Untracked: s.untracked}
	if err == nil && len(s.senders) > 0 {
		side.Senders = make(map[string][]byte, len(s.senders))
		for sender, tr := range s.senders {
			if side.Senders[sender], err = tr.MarshalBinary(); err != nil {
				break
			}
		}
	}
	for sender := range s.hearsay {
		side.Hearsay = append(side.Hearsay, sender)
	}
	sort.Strings(side.Hearsay)
	s.snapMu.Unlock()
	if err != nil {
		return "", err
	}
	s.snapshots.Add(1)
	if err := os.MkdirAll(s.cfg.SnapshotDir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(s.cfg.SnapshotDir, SnapshotFileName)
	if err := writeFileAtomic(s.cfg.SnapshotDir, SnapshotFileName, data); err != nil {
		return "", err
	}
	// The sidecars are written strictly after the snapshot: a crash between
	// the renames leaves watermarks *older* than the counters, which is safe
	// (the receiver asks for a tail it already absorbed and the sender's
	// retry is deduplicated, or at worst a 409 resync) — the other order
	// could silently skip deltas. The sender sidecar additionally embeds the
	// CRC of the exact snapshot bytes it was cut with, so a crash that pairs
	// it with a different snapshot generation is detected on reload and the
	// trackers discarded rather than trusted for replace subtraction.
	side.SnapCRC = crc32.Checksum(data, castagnoli)
	sb, err := json.Marshal(side)
	if err != nil {
		return "", err
	}
	if err := writeFileAtomic(s.cfg.SnapshotDir, SendersFileName, sb); err != nil {
		return "", err
	}
	wm, err := json.Marshal(marks)
	if err != nil {
		return "", err
	}
	if err := writeFileAtomic(s.cfg.SnapshotDir, WatermarkFileName, wm); err != nil {
		return "", err
	}
	return path, nil
}

// writeFileAtomic writes dir/name via a temp file and rename.
func writeFileAtomic(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// loadWatermarks restores the per-peer gossip watermarks persisted beside a
// recovered snapshot. Only called from the snapshot-recovery path in New; a
// missing or corrupt file degrades to the pre-persistence behaviour (the
// first frame from each sender 409s and the sender resyncs).
func (s *Server) loadWatermarks() {
	path := filepath.Join(s.cfg.SnapshotDir, WatermarkFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.cfg.Logf("server: reading watermark file %s: %v", path, err)
		}
		return
	}
	marks := make(map[string]uint64)
	if err := json.Unmarshal(data, &marks); err != nil {
		s.cfg.Logf("server: ignoring corrupt watermark file %s: %v", path, err)
		return
	}
	s.watermarks = marks
	s.cfg.Logf("server: recovered %d gossip watermarks from %s", len(marks), path)
}

// watermarkFileUsable reports whether the watermark sidecar beside the
// snapshot exists and parses. A snapshot without a usable watermark file is
// "stale" for bootstrap purposes: absorbing it would force every peer through
// a 409 resync, so when bootstrap sources are configured New prefers a fresh
// barrier-consistent transfer from a peer over the local file.
func (s *Server) watermarkFileUsable() bool {
	data, err := os.ReadFile(filepath.Join(s.cfg.SnapshotDir, WatermarkFileName))
	if err != nil {
		return false
	}
	marks := make(map[string]uint64)
	return json.Unmarshal(data, &marks) == nil
}

// ingestColumns hands a lane's decoded columns to its producer and bumps the
// write generation. The caller holds lane.mu and has re-checked closed. This
// plus the decode is the whole /v1/update hot path: an atomic lane pick and
// one lane-local lock — never the barrier lock, never a global one.
func (s *Server) ingestColumns(lane *ingestLane) {
	lane.p.UpdateColumns(lane.items, lane.deltas)
	lane.p.Flush()
	s.gen.Add(1)
	s.localGen.Add(1) // local ingestion: this batch is ours to gossip
}

// snapshotLocked returns a consistent barrier snapshot of the engine,
// reusing the cached one when no write has happened since it was taken.
// Callers must hold s.snapMu.
//
// The generation is loaded before the barrier: a write that bumps gen after
// the load but before the barrier lands in the snapshot anyway (the barrier
// happens later), so the cache is only ever stamped with a generation it
// fully covers — a reader that saw an update acknowledged is never served a
// cache from before it.
func (s *Server) snapshotLocked() (*sketch.HeavyHitterTracker, error) {
	if s.engClosed {
		return nil, ErrServerClosed
	}
	g := s.gen.Load()
	if s.snapCache != nil && s.snapGen == g {
		return s.snapCache, nil
	}
	snap, err := s.eng.Snapshot()
	if err != nil {
		return nil, err
	}
	s.snapCache, s.snapGen = snap, g
	return snap, nil
}

// snapshot is snapshotLocked behind the barrier lock, for read handlers.
func (s *Server) snapshot() (*sketch.HeavyHitterTracker, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.snapshotLocked()
}

// snapshotGen is snapshot plus the write generation the snapshot covers —
// the gen field every read response reports.
func (s *Server) snapshotGen() (*sketch.HeavyHitterTracker, int64, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	snap, err := s.snapshotLocked()
	if err != nil {
		return nil, 0, err
	}
	return snap, s.snapGen, nil
}

// encodedSnapshotLocked marshals the current snapshot. Callers must hold
// s.snapMu.
func (s *Server) encodedSnapshotLocked() ([]byte, error) {
	snap, err := s.snapshotLocked()
	if err != nil {
		return nil, err
	}
	return snap.MarshalBinary()
}

// readBody drains a size-capped request body. Over-limit bodies answer 413;
// any other read failure (client disconnect, bad framing) answers 400.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, r, http.StatusRequestEntityTooLarge, "reading body: %v", err)
		} else {
			writeErr(w, r, http.StatusBadRequest, "reading body: %v", err)
		}
		return nil, false
	}
	return data, true
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	// JSON parses before the lane lock (the parse allocates its own request
	// struct, so overlapping parses on one lane cost nothing); the binary
	// format decodes under the lock, straight into the lane's reusable
	// columns — that decode is one bounds-checked scan and is part of this
	// lane's pipeline either way.
	ct := r.Header.Get("Content-Type")
	isBinary := strings.HasPrefix(ct, contentTypeBatch)
	var req UpdateRequest
	switch {
	case isBinary:
	case ct == "" || strings.HasPrefix(ct, contentTypeJSON):
		if err := json.Unmarshal(data, &req); err != nil {
			writeErr(w, r, http.StatusBadRequest, "decoding JSON updates: %v", err)
			return
		}
	default:
		writeErr(w, r, http.StatusUnsupportedMediaType, "unsupported Content-Type %q (want %s or %s)",
			ct, contentTypeJSON, contentTypeBatch)
		return
	}

	lane := s.lanes[s.nextLane.Add(1)%uint64(len(s.lanes))]
	lane.mu.Lock()
	defer lane.mu.Unlock()
	// Re-check under the lane lock: Close sets closed before it locks and
	// retires the lanes, so observing false here guarantees the handle is
	// live and this flush lands before the final snapshot.
	if s.closed.Load() {
		writeErr(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	lane.items, lane.deltas = lane.items[:0], lane.deltas[:0]
	if isBinary {
		var err error
		lane.items, lane.deltas, err = DecodeBatchColumns(data, lane.items, lane.deltas)
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		for _, u := range req.Updates {
			lane.items = append(lane.items, u.Item)
			lane.deltas = append(lane.deltas, u.Delta)
		}
	}

	s.ingestColumns(lane)
	accepted := len(lane.items)
	s.updates.Add(int64(accepted))
	s.batches.Add(1)
	writeJSON(w, http.StatusOK, UpdateResponse{Accepted: accepted})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query()["item"]
	if len(raw) == 0 {
		writeErr(w, r, http.StatusBadRequest, "missing item parameter (repeatable): /v1/query?item=7&item=8")
		return
	}
	items := make([]uint64, len(raw))
	for i, v := range raw {
		item, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, "bad item %q: %v", v, err)
			return
		}
		items[i] = item
	}
	// ?estimator= is shared across the read endpoints; the point-query path
	// supports the sketch's native estimator only.
	if est := r.URL.Query().Get("estimator"); est != "" && est != "min" {
		writeErrDetail(w, r, http.StatusBadRequest, "supported estimators: min",
			"unknown estimator %q for /v1/query", est)
		return
	}

	ep, err := s.readEpochSnap()
	if err != nil {
		writeSnapshotErr(w, r, err)
		return
	}
	resp := QueryResponse{Estimates: make([]Estimate, len(items)), Gen: ep.gen}
	for i, item := range items {
		resp.Estimates[i] = Estimate{Item: item, Estimate: ep.snap.Estimate(item)}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	k := 0
	if v := r.URL.Query().Get("k"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeErr(w, r, http.StatusBadRequest, "bad k %q: want a positive integer", v)
			return
		}
		k = n
	}
	phi := -1.0
	if v := r.URL.Query().Get("phi"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			writeErr(w, r, http.StatusBadRequest, "bad phi %q: want a fraction in [0,1]", v)
			return
		}
		phi = f
	}

	ep, err := s.readEpochSnap()
	if err != nil {
		writeSnapshotErr(w, r, err)
		return
	}
	// The ranked candidate list is computed once per epoch and shared by
	// every ?k= request until a write invalidates it; ?phi= thresholds
	// against the un-rounded estimates, so it re-scores per request instead
	// of filtering the cached (rounded) ranking.
	var ranked []TopKItem
	if phi >= 0 {
		source := ep.snap.HeavyHitters(phi)
		ranked = make([]TopKItem, 0, len(source))
		for _, ic := range source {
			ranked = append(ranked, TopKItem{Item: ic.Item, Count: ic.Count})
		}
	} else {
		ranked = ep.rankedTopK()
	}
	if k > 0 && len(ranked) > k {
		ranked = ranked[:k]
	}
	writeJSON(w, http.StatusOK, TopKResponse{Items: ranked, Gen: ep.gen})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	s.snapMu.Lock()
	data, err := s.encodedSnapshotLocked()
	s.snapMu.Unlock()
	if err != nil {
		writeSnapshotErr(w, r, err)
		return
	}
	s.snapshots.Add(1)
	w.Header().Set("Content-Type", contentTypeSnapshot)
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if len(data) == 0 {
		writeErr(w, r, http.StatusBadRequest, "empty body: POST the bytes of a peer's /v1/snapshot")
		return
	}
	if s.closed.Load() {
		writeErr(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return
	}

	// Decode and validate outside the barrier lock; the engine's registered
	// decoder is the gatekeeper for malformed and incompatible payloads.
	src, err := s.eng.DecodeReplica(data)

	var mass float64
	if err == nil {
		s.snapMu.Lock()
		// Re-check closed under the barrier lock (the analogue of ingest's
		// re-check under the lane lock): Close sets it before the final
		// SaveSnapshot, so a merge that squeezed past the check above cannot
		// be acknowledged after the recovery file was written and then lost.
		if s.engClosed || s.closed.Load() {
			err = ErrServerClosed
		} else if err = s.eng.Absorb(src); err == nil {
			// Merged snapshots are foreign mass: the gossip replicator must
			// not ship them back out as if this daemon had ingested them.
			if err = s.foreign.Merge(src); err == nil {
				s.gen.Add(1)
				s.merges.Add(1)
				var snap *sketch.HeavyHitterTracker
				if snap, err = s.snapshotLocked(); err == nil {
					mass = snap.TotalMass()
				}
			}
		}
		s.snapMu.Unlock()
	}

	if err != nil {
		s.cfg.Logf("server: merge rejected: %v", err)
		switch {
		case errors.Is(err, engine.ErrClosed), errors.Is(err, ErrServerClosed):
			writeErr(w, r, http.StatusServiceUnavailable, "server is shutting down")
		default:
			// Everything else means the posted bytes were malformed or came
			// from an incompatible sketch — the peer's fault, a 4xx.
			writeErr(w, r, http.StatusBadRequest, "%v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, MergeResponse{TotalMass: mass})
}

// handleDelta folds a peer's replication frame in. The per-sender
// generation watermark makes the endpoint idempotent: a frame is applied
// exactly once no matter how often the sender retries it, and a frame from
// a diverged sender (one side restarted) is refused with 409 rather than
// risk double-counting — the sender then re-aligns with a reset frame.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	frame, err := DecodeDeltaFrame(data)
	if err != nil {
		s.deltasRejected.Add(1)
		writeErr(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	if s.closed.Load() {
		writeErr(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return
	}

	// Unwrap and decode the payload outside the barrier lock; the engine's
	// registered decoder rejects foreign seeds, mismatched dimensions and
	// malformed bytes before any counter is touched.
	var src *sketch.HeavyHitterTracker
	if !frame.Reset {
		inner, err := sketch.DecodeDeltaLimit(frame.Payload, s.maxDeltaInner)
		if err != nil {
			s.deltasRejected.Add(1)
			writeErr(w, r, http.StatusBadRequest, "delta payload: %v", err)
			return
		}
		if src, err = s.eng.DecodeReplica(inner); err != nil {
			s.deltasRejected.Add(1)
			writeErr(w, r, http.StatusBadRequest, "delta payload: %v", err)
			return
		}
	}

	s.snapMu.Lock()
	if s.engClosed || s.closed.Load() {
		s.snapMu.Unlock()
		writeErr(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	mark := s.watermarks[frame.Sender]
	switch {
	case frame.Reset:
		if frame.ToGen == 0 && s.hearsay[frame.Sender] && s.canReplace(frame.Sender) {
			// Our mark for this sender came from a bootstrap transfer and no
			// direct frame has confirmed it. The sender asking for a
			// reset-to-0 may simply never have acked us on this virgin link
			// while our mark jumped past its history — accepting would make
			// it re-ship mass our bootstrap snapshot already holds. Refuse
			// with the replace offer: a replace frame is exact whether or
			// not the sender actually restarted.
			s.snapMu.Unlock()
			s.deltasRejected.Add(1)
			writeErrDetail(w, r, http.StatusConflict, conflictDetailReplace,
				"refusing reset-to-0 from %q: this node's watermark %d was installed by a bootstrap transfer; send a replace frame instead",
				frame.Sender, mark)
			return
		}
		// Re-alignment after a restart on either side: adopt the sender's
		// declared generation as the new watermark without touching a
		// counter. Lowering is deliberate — a restarted sender resets us to
		// 0 and then re-ships its (post-restart) local mass from scratch.
		s.watermarks[frame.Sender] = frame.ToGen
		mark = frame.ToGen
		delete(s.hearsay, frame.Sender)
		if frame.ToGen == 0 {
			// A reset to zero starts a fresh shipping epoch: everything the
			// sender ships from here on is post-restart mass it re-counts
			// from scratch, so an empty tracker covers the new epoch exactly
			// — even when older, unattributed mass from a previous epoch
			// sits in the counters (that mass is settled history a replace
			// must never subtract).
			s.senders[frame.Sender] = s.proto.Clone()
		} else {
			// A reset that keeps history (resyncPeer) drops a window that
			// never entered our counters, so an existing tracker stays
			// exact; lazily create one where that is provably sound.
			s.senderTracker(frame.Sender)
		}
		replaceOK := s.canReplace(frame.Sender)
		s.snapMu.Unlock()
		s.cfg.Logf("server: gossip watermark for %q reset to %d", frame.Sender, mark)
		writeJSON(w, http.StatusOK, DeltaResponse{Applied: false, Watermark: mark, CanReplace: replaceOK})

	case frame.ToGen <= mark && !(frame.Replace && s.hearsay[frame.Sender]):
		// A retry of a frame already applied (its ack was lost). Acknowledge
		// without applying — this is what makes redelivery safe. Replace
		// frames take the same exit: the watermark bump and tracker install
		// happened on the attempt whose ack was lost. The one exception is a
		// replace from a sender whose mark is hearsay — nothing on this link
		// was ever really acked, so "already applied" cannot be true and the
		// frame falls through to the replace branch below.
		replaceOK := s.canReplace(frame.Sender)
		s.snapMu.Unlock()
		s.deltasDuplicate.Add(1)
		writeJSON(w, http.StatusOK, DeltaResponse{Applied: false, Watermark: mark, CanReplace: replaceOK})

	case frame.Replace:
		// The payload is the sender's *entire* local sketch L. Applying
		// net = L − tracker[sender] in one barrier makes our counters hold
		// exactly L as that sender's contribution, no matter how far the
		// watermark and the actually-absorbed mass had diverged (e.g. our
		// marks were installed by a bootstrap transfer that outran what this
		// sender shipped us directly). Only sound when the tracker provably
		// covers everything the sender ever landed in our counters. One
		// carve-out below: a wiped-and-restarted sender behind a hearsay
		// mark gets its old mass kept as settled history instead.
		tr := s.senderTracker(frame.Sender)
		if tr == nil {
			s.snapMu.Unlock()
			s.deltasRejected.Add(1)
			writeErr(w, r, http.StatusConflict,
				"cannot apply replace frame from %q: received mass is untracked on this node (recovered without a consistent sender sidecar); use a reset resync",
				frame.Sender)
			return
		}
		apply := src
		if s.hearsay[frame.Sender] && frame.ToGen < mark {
			// The sender's generation counter sits *behind* the hearsay mark a
			// bootstrap transfer installed for it — counters only move
			// backwards by restarting, so the tracked mass is a previous
			// incarnation's settled history. Keep it (exactly like an accepted
			// reset-to-0 keeps pre-restart mass) and absorb the new
			// incarnation's entire state as a fresh epoch; the tracker swap
			// below anchors future replaces to the new incarnation only.
		} else {
			apply = src.Copy()
			if err := apply.Sub(tr); err != nil {
				s.snapMu.Unlock()
				s.cfg.Logf("server: replace frame from %q rejected: %v", frame.Sender, err)
				s.deltasRejected.Add(1)
				writeErr(w, r, http.StatusBadRequest, "%v", err)
				return
			}
		}
		err := s.eng.Absorb(apply)
		if err == nil {
			err = s.foreign.Merge(apply)
		}
		if err != nil {
			s.snapMu.Unlock()
			s.cfg.Logf("server: replace frame from %q rejected: %v", frame.Sender, err)
			s.deltasRejected.Add(1)
			if errors.Is(err, engine.ErrClosed) {
				writeErr(w, r, http.StatusServiceUnavailable, "server is shutting down")
			} else {
				writeErr(w, r, http.StatusBadRequest, "%v", err)
			}
			return
		}
		// The mark may move *down* here: a hearsay mark was installed by a
		// bootstrap transfer that outran this (possibly restarted, possibly
		// merely never-acked) sender's own generation counter. After the
		// replace the tracker holds the sender's exact local state at ToGen,
		// so anchoring the link at the sender's true generation is sound and
		// the hearsay is resolved into an earned mark.
		s.senders[frame.Sender] = src
		s.watermarks[frame.Sender] = frame.ToGen
		delete(s.hearsay, frame.Sender)
		s.gen.Add(1)
		s.snapMu.Unlock()
		s.deltasReplaced.Add(1)
		s.cfg.Logf("server: state from %q replaced at generation %d", frame.Sender, frame.ToGen)
		writeJSON(w, http.StatusOK, DeltaResponse{Applied: true, Watermark: frame.ToGen, CanReplace: true})

	case frame.FromGen != mark:
		// The frame's window does not start at our watermark: the sender and
		// we disagree about what has been shipped (somebody restarted or we
		// bootstrapped). Refuse — applying would double-count the overlap or
		// skip a gap. When the sender's received mass is tracked here, the
		// detail advertises the lossless replace resync.
		replaceOK := s.canReplace(frame.Sender)
		s.snapMu.Unlock()
		s.deltasRejected.Add(1)
		detail := ""
		if replaceOK {
			detail = conflictDetailReplace
		}
		writeErrDetail(w, r, http.StatusConflict, detail,
			"stale watermark for sender %q: frame covers generations (%d, %d], receiver watermark is %d",
			frame.Sender, frame.FromGen, frame.ToGen, mark)

	default:
		err := s.eng.Absorb(src)
		if err == nil {
			// Applied deltas are foreign mass — never gossiped onward.
			err = s.foreign.Merge(src)
		}
		if err != nil {
			s.snapMu.Unlock()
			s.cfg.Logf("server: delta from %q rejected: %v", frame.Sender, err)
			s.deltasRejected.Add(1)
			if errors.Is(err, engine.ErrClosed) {
				writeErr(w, r, http.StatusServiceUnavailable, "server is shutting down")
			} else {
				writeErr(w, r, http.StatusBadRequest, "%v", err)
			}
			return
		}
		replaceOK := false
		if tr := s.senderTracker(frame.Sender); tr != nil {
			if err := tr.Merge(src); err != nil {
				// Cannot happen for sketches the engine decoded, but if the
				// tracker ever falls out of sync the only safe posture is to
				// stop advertising replace for everyone.
				delete(s.senders, frame.Sender)
				s.untracked = true
				s.cfg.Logf("server: sender tracker for %q diverged (%v): replace resync disabled", frame.Sender, err)
			} else {
				replaceOK = true
			}
		}
		s.watermarks[frame.Sender] = frame.ToGen
		// A frame whose window starts exactly at our mark proves the
		// sender's numbering and ours agree — the mark is no longer hearsay.
		delete(s.hearsay, frame.Sender)
		s.gen.Add(1)
		s.snapMu.Unlock()
		s.deltasApplied.Add(1)
		writeJSON(w, http.StatusOK, DeltaResponse{Applied: true, Watermark: frame.ToGen, CanReplace: replaceOK})
	}
}

// conflictDetailReplace is the machine-readable detail attached to a 409
// watermark conflict when this receiver can apply a lossless replace frame
// from that sender instead of a destructive reset.
const conflictDetailReplace = "resync=replace"

// senderTracker returns the tracker of mass received from sender, lazily
// creating one when that is provably sound: with untracked false, every
// sender with mass in the counters already has an entry, so an absent entry
// means this sender has contributed nothing yet and an empty tracker is
// exact. Returns nil when no sound tracker exists. Caller holds s.snapMu.
func (s *Server) senderTracker(sender string) *sketch.HeavyHitterTracker {
	if tr, ok := s.senders[sender]; ok {
		return tr
	}
	if s.untracked {
		return nil
	}
	tr := s.proto.Clone()
	s.senders[sender] = tr
	return tr
}

// canReplace reports whether a replace frame from sender would be accepted.
// Caller holds s.snapMu.
func (s *Server) canReplace(sender string) bool {
	if _, ok := s.senders[sender]; ok {
		return true
	}
	return !s.untracked
}

// Gossip replication (sender side) -------------------------------------------

// gossipLoop ships deltas to every peer each GossipEvery until Close.
func (s *Server) gossipLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.GossipEvery)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.gossipTick(context.Background())
		}
	}
}

// gossipTick cuts one local-state snapshot and pushes every eligible peer's
// delta against it. Skipped entirely when every peer has acknowledged the
// current local generation and nothing is pending — an idle mesh costs no
// barriers. Peers sitting in a failure backoff window are skipped too, so an
// unreachable peer costs one connection attempt per window instead of one
// per tick.
func (s *Server) gossipTick(ctx context.Context) {
	s.gossipPush(ctx, false)
}

func (s *Server) gossipPush(ctx context.Context, ignoreBackoff bool) {
	if s.bootstrapping.Load() {
		// No deltas ship until the bootstrap transfer lands: local ingest is
		// gated off anyway, and a reset provoked mid-transfer would race the
		// watermark install.
		return
	}
	targets := s.gossipTargets(ignoreBackoff)
	if len(targets) == 0 {
		return
	}
	local, gen, err := s.localSnapshot()
	if err != nil {
		if !errors.Is(err, ErrServerClosed) && !errors.Is(err, engine.ErrClosed) {
			s.cfg.Logf("server: gossip snapshot failed: %v", err)
		}
		return
	}
	for _, p := range targets {
		s.pushPeer(ctx, p, local, gen)
	}
}

// gossipTargets returns the peers that lag the current local generation or
// hold an un-acked frame, minus (unless ignoreBackoff) those still inside
// their failure backoff window.
func (s *Server) gossipTargets(ignoreBackoff bool) []*peerState {
	g := s.localGen.Load()
	now := time.Now()
	var targets []*peerState
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	for _, p := range s.peers {
		if p.pending == nil && p.baseGen == g {
			continue
		}
		if !ignoreBackoff && p.failStreak > 0 && now.Before(p.nextAttempt) {
			continue
		}
		targets = append(targets, p)
	}
	return targets
}

// backoffFor returns the retry hold-off after streak consecutive transport
// failures to one peer: one gossip interval, doubled per further failure,
// capped at GossipBackoffMax.
func (s *Server) backoffFor(streak int) time.Duration {
	d := s.cfg.GossipEvery
	for i := 1; i < streak; i++ {
		d *= 2
		if d >= s.cfg.GossipBackoffMax {
			return s.cfg.GossipBackoffMax
		}
	}
	if d > s.cfg.GossipBackoffMax {
		d = s.cfg.GossipBackoffMax
	}
	return d
}

// localSnapshot cuts the sketch of *locally ingested* updates: the engine's
// exact barrier snapshot minus the foreign tracker (everything absorbed from
// peers, merges and recovery). It refreshes the read-path snapshot cache on
// the way, and returns the local write generation the cut covers.
func (s *Server) localSnapshot() (*sketch.HeavyHitterTracker, int64, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if s.engClosed {
		return nil, 0, ErrServerClosed
	}
	// Both generations load before the barrier, so the snapshot covers at
	// least everything they count (late-racing writes land in the snapshot
	// too — harmless, the retained baseline keeps them from shipping twice).
	gGlobal := s.gen.Load()
	gLocal := s.localGen.Load()
	snap, local, err := s.eng.DeltaSnapshot(s.foreign)
	if err != nil {
		return nil, 0, err
	}
	s.snapCache, s.snapGen = snap, gGlobal
	return local, gLocal, nil
}

// pushPeer ships one peer its delta: first any un-acked frame verbatim
// (the watermark makes redelivery idempotent), then the difference between
// the current local state and the peer's acknowledged baseline.
func (s *Server) pushPeer(ctx context.Context, p *peerState, local *sketch.HeavyHitterTracker, gen int64) {
	s.peerMu.Lock()
	pending, pendingLocal, pendingGen := p.pending, p.pendingLocal, p.pendingGen
	baseline, baseGen := p.baseline, p.baseGen
	everAcked := p.framesAcked > 0
	s.peerMu.Unlock()

	if pending != nil {
		resp, err := p.client.pushDeltaRaw(ctx, pending)
		switch {
		case err == nil && !resp.Applied && resp.Watermark > uint64(pendingGen):
			// The receiver's watermark outruns the frame's window. On a
			// never-acked link that means we restarted and it remembers the
			// previous incarnation. After a successful ack it means the
			// *receiver's* mark jumped past us (it bootstrapped and
			// installed marks from a peer ahead of this link) — resetting
			// to zero there would re-ship mass its counters already hold,
			// so resolve the divergence instead.
			if everAcked {
				s.resolveConflict(ctx, p, local, gen, resp.CanReplace)
				return
			}
			s.resyncRestartedSender(ctx, p, local, gen)
			return
		case err == nil:
			s.peerMu.Lock()
			p.baseline, p.baseGen = pendingLocal, pendingGen
			p.pending, p.pendingLocal = nil, nil
			p.framesAcked++
			p.bytesShipped += int64(len(pending))
			p.lastErr = ""
			p.failStreak, p.nextAttempt = 0, time.Time{}
			baseline, baseGen = pendingLocal, pendingGen
			s.peerMu.Unlock()
		case isWatermarkConflict(err) && !everAcked:
			s.resyncRestartedSender(ctx, p, local, gen)
			return
		case isWatermarkConflict(err):
			s.resolveConflict(ctx, p, local, gen, conflictAllowsReplace(err))
			return
		default:
			s.peerFailed(p, err)
			return
		}
	}

	if gen == baseGen {
		return // the peer already has every locally ingested update
	}

	// delta = local now - local as of the last ack: a valid sketch of
	// exactly the updates ingested here since then (linearity).
	delta := local.Copy()
	if err := delta.Sub(baseline); err != nil {
		s.cfg.Logf("server: computing delta for %s: %v", p.url, err)
		return
	}
	inner, err := delta.MarshalBinary()
	if err != nil {
		s.cfg.Logf("server: encoding delta for %s: %v", p.url, err)
		return
	}
	frame := AppendDeltaFrame(nil, DeltaFrame{
		Sender:  s.cfg.NodeID,
		FromGen: uint64(baseGen),
		ToGen:   uint64(gen),
		Payload: sketch.EncodeDelta(inner),
	})

	resp, err := p.client.pushDeltaRaw(ctx, frame)
	switch {
	case err == nil && !resp.Applied:
		// A fresh frame (not a retry) was acked without being applied: the
		// receiver's watermark already covers our window. On a never-acked
		// link that means it remembers a previous incarnation of this node
		// id — we restarted, and the no-op ack would otherwise advance the
		// baseline and post-restart mass would silently never replicate.
		// After a successful ack it means the receiver's own mark jumped
		// (it bootstrapped) — resolve the divergence without a destructive
		// reset-to-zero.
		if everAcked {
			s.resolveConflict(ctx, p, local, gen, resp.CanReplace)
			return
		}
		s.resyncRestartedSender(ctx, p, local, gen)
	case err == nil:
		s.peerMu.Lock()
		p.baseline, p.baseGen = local, gen
		p.framesAcked++
		p.bytesShipped += int64(len(frame))
		p.lastErr = ""
		p.failStreak, p.nextAttempt = 0, time.Time{}
		s.peerMu.Unlock()
	case isWatermarkConflict(err) && !everAcked:
		s.resyncRestartedSender(ctx, p, local, gen)
	case isWatermarkConflict(err):
		s.resolveConflict(ctx, p, local, gen, conflictAllowsReplace(err))
	default:
		// Transport failure or 5xx: the outcome is unknown, so keep the
		// frame and retry it verbatim next tick (after the backoff window).
		// If the peer did apply it, the retry is absorbed idempotently
		// (toGen <= watermark).
		s.peerMu.Lock()
		p.pending, p.pendingLocal, p.pendingGen = frame, local, gen
		s.peerMu.Unlock()
		s.peerFailed(p, err)
	}
}

// peerFailed records a transport failure on a peer link: the error is
// surfaced in /v1/stats and the next attempt is pushed out by an
// exponentially growing backoff window.
func (s *Server) peerFailed(p *peerState, err error) {
	s.peerMu.Lock()
	p.lastErr = err.Error()
	p.failStreak++
	p.nextAttempt = time.Now().Add(s.backoffFor(p.failStreak))
	s.peerMu.Unlock()
}

// resolveConflict re-aligns a peer whose watermark diverged from our
// generation sequence mid-session (typically: the peer wiped its disk and
// bootstrapped, installing watermarks for us that no longer match what we
// shipped it directly). When the peer tracks our received mass it accepts a
// lossless replace frame; otherwise fall back to the legacy reset, which
// drops un-acked local mass from gossip rather than risk double-counting.
func (s *Server) resolveConflict(ctx context.Context, p *peerState, local *sketch.HeavyHitterTracker, gen int64, canReplace bool) {
	if canReplace {
		s.resyncPeerReplace(ctx, p, local, gen)
		return
	}
	s.resyncPeer(ctx, p, local, gen)
}

// resyncPeerReplace heals a diverged peer exactly: ship our entire local
// sketch L in a replace frame; the receiver swaps its recorded contribution
// from this node for L in one barrier (absorbing L minus its tracker), so
// no local mass is lost and none is double-counted, regardless of how the
// two sides' windows diverged.
func (s *Server) resyncPeerReplace(ctx context.Context, p *peerState, local *sketch.HeavyHitterTracker, gen int64) {
	inner, err := local.MarshalBinary()
	if err != nil {
		s.cfg.Logf("server: encoding replace frame for %s: %v", p.url, err)
		return
	}
	frame := AppendDeltaFrame(nil, DeltaFrame{
		Sender:  s.cfg.NodeID,
		ToGen:   uint64(gen),
		Replace: true,
		Payload: sketch.EncodeDelta(inner),
	})
	resp, err := p.client.pushDeltaRaw(ctx, frame)
	switch {
	case err == nil && !resp.Applied && resp.Watermark != uint64(gen):
		// Duplicate-acked at some *other* watermark: the peer's mark for us
		// outruns our whole post-restart generation counter and its tracker
		// was not synchronized to `local`. Believing this ack would silently
		// stop replicating until our counter catches up, so treat it as a
		// failure and keep retrying — each round trip re-offers the conflict
		// until one side's generation state lets the replace land.
		s.peerFailed(p, fmt.Errorf("replace frame at generation %d duplicate-acked at watermark %d", gen, resp.Watermark))
	case err == nil:
		// Applied — or duplicate-acked exactly at gen because our previous
		// replace's ack was lost, which still means the peer holds everything
		// the cut covers. Either way `local` is now the peer's record of us.
		s.peerMu.Lock()
		p.pending, p.pendingLocal = nil, nil
		p.baseline, p.baseGen = local, gen
		p.framesAcked++
		p.bytesShipped += int64(len(frame))
		p.lastErr = ""
		p.failStreak, p.nextAttempt = 0, time.Time{}
		s.peerMu.Unlock()
		s.cfg.Logf("server: peer %s diverged: healed with a replace frame at generation %d", p.url, gen)
	case isWatermarkConflict(err):
		// The peer refused the replace (its trackers are unusable after a
		// sidecar-less recovery): fall back to the legacy reset.
		s.resyncPeer(ctx, p, local, gen)
	default:
		// Unknown outcome: don't retain the frame (the next tick recuts and
		// retries the conflict resolution from scratch), just back off.
		s.peerFailed(p, err)
	}
}

// resyncRestartedSender re-aligns a peer after *this* daemon restarted: the
// peer's watermark outruns our restarted generation counter (detected from
// a no-op ack whose watermark exceeds the frame we just sent, or a 409 on
// our very first frame). Reset the peer's watermark to zero and start over
// with an empty baseline: our local sketch contains only post-restart mass
// (recovered snapshots count as foreign), and the peer's copy of our
// pre-restart mass stays where its counters already are — so the full
// re-ship loses nothing and double-counts nothing.
//
// A peer may refuse the reset: its mark for us is bootstrap-installed
// hearsay, so from where it stands we may not have restarted at all — we
// might be a long-running daemon whose virgin link it outran by
// bootstrapping. It offers the replace resync instead, which is exact in
// both cases, so take it.
func (s *Server) resyncRestartedSender(ctx context.Context, p *peerState, local *sketch.HeavyHitterTracker, gen int64) {
	frame := AppendDeltaFrame(nil, DeltaFrame{
		Sender: s.cfg.NodeID,
		Reset:  true, // FromGen = ToGen = 0: restart the window from scratch
	})
	_, err := p.client.pushDeltaRaw(ctx, frame)
	if conflictAllowsReplace(err) {
		s.resyncPeerReplace(ctx, p, local, gen)
		return
	}
	s.peerMu.Lock()
	p.pending, p.pendingLocal = nil, nil
	p.baseline, p.baseGen = s.proto.Clone(), 0
	if err != nil {
		p.lastErr = err.Error() // the next frame will conflict and retry the resync
		p.failStreak++
		p.nextAttempt = time.Now().Add(s.backoffFor(p.failStreak))
	} else {
		p.lastErr = ""
		p.failStreak, p.nextAttempt = 0, time.Time{}
	}
	s.peerMu.Unlock()
	s.cfg.Logf("server: peer %s remembers a previous incarnation of %q: watermark reset to 0, re-shipping local state", p.url, s.cfg.NodeID)
}

// resyncPeer re-aligns a peer whose watermark no longer matches our
// generation sequence — one of the two daemons restarted. A reset frame
// moves the peer's watermark to the current local generation without
// shipping counters; locally ingested mass the peer never acknowledged is
// dropped from gossip (never double-counted), and the operator remedy is a
// one-shot /v1/snapshot -> /v1/merge (see docs/CLUSTER.md).
func (s *Server) resyncPeer(ctx context.Context, p *peerState, local *sketch.HeavyHitterTracker, gen int64) {
	frame := AppendDeltaFrame(nil, DeltaFrame{
		Sender:  s.cfg.NodeID,
		FromGen: uint64(gen),
		ToGen:   uint64(gen),
		Reset:   true,
	})
	_, err := p.client.pushDeltaRaw(ctx, frame)
	s.peerMu.Lock()
	p.pending, p.pendingLocal = nil, nil
	p.baseline, p.baseGen = local, gen
	if err != nil {
		p.lastErr = err.Error() // next tick's frame will conflict and resync again
		p.failStreak++
		p.nextAttempt = time.Now().Add(s.backoffFor(p.failStreak))
	} else {
		p.lastErr = ""
		p.failStreak, p.nextAttempt = 0, time.Time{}
	}
	s.peerMu.Unlock()
	s.cfg.Logf("server: gossip watermark conflict with %s: reset to local generation %d", p.url, gen)
}

// isWatermarkConflict reports whether err is the receiver refusing a frame
// because the generation windows diverged (HTTP 409).
func isWatermarkConflict(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict
}

// conflictAllowsReplace reports whether a 409 carries the receiver's offer
// to resolve the divergence with a lossless replace frame.
func conflictAllowsReplace(err error) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == http.StatusConflict &&
		apiErr.Detail == conflictDetailReplace
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := Stats{
		Width:           s.cfg.Width,
		Depth:           s.cfg.Depth,
		K:               s.cfg.K,
		Workers:         s.eng.Workers(),
		Producers:       len(s.lanes),
		Mode:            s.eng.Mode(),
		CounterWords:    s.eng.CounterWords(),
		Updates:         s.updates.Load(),
		Batches:         s.batches.Load(),
		Merges:          s.merges.Load(),
		Snapshots:       s.snapshots.Load(),
		DeltasApplied:   s.deltasApplied.Load(),
		DeltasDuplicate: s.deltasDuplicate.Load(),
		DeltasRejected:  s.deltasRejected.Load(),
		DeltasReplaced:  s.deltasReplaced.Load(),
		StreamsActive:   s.streamsActive.Load(),
		StreamFrames:    s.streamFrames.Load(),
		EpochHits:       s.epochHits.Load(),
		EpochMisses:     s.epochMisses.Load(),
		BatchQueries:    s.batchQueries.Load(),
	}
	if stats.BatchQueries > 0 {
		stats.MeanBatchKeys = float64(s.batchKeys.Load()) / float64(stats.BatchQueries)
	}
	s.streamMu.Lock()
	stats.StreamSessions = len(s.streamSessions)
	s.streamMu.Unlock()
	gen := s.localGen.Load()
	s.peerMu.Lock()
	for _, p := range s.peers {
		stat := PeerStat{
			URL:          p.url,
			AckedGen:     p.baseGen,
			LagGens:      gen - p.baseGen,
			FramesAcked:  p.framesAcked,
			BytesShipped: p.bytesShipped,
			Pending:      p.pending != nil,
			LastError:    p.lastErr,
		}
		if p.failStreak > 0 {
			stat.BackoffMs = s.backoffFor(p.failStreak).Milliseconds()
		}
		stats.Peers = append(stats.Peers, stat)
	}
	s.peerMu.Unlock()
	snap, snapGen, err := s.snapshotGen()
	if err != nil {
		writeSnapshotErr(w, r, err)
		return
	}
	stats.Gen = snapGen
	stats.TotalMass = snap.TotalMass()
	s.snapMu.Lock()
	if len(s.watermarks) > 0 {
		stats.Watermarks = make(map[string]uint64, len(s.watermarks))
		for sender, mark := range s.watermarks {
			stats.Watermarks[sender] = mark
		}
	}
	switch {
	case s.bootstrapping.Load():
		stats.Bootstrap = "pending"
	case s.bootstrapDegraded:
		stats.Bootstrap = "degraded"
	case s.wasBootstrapped:
		stats.Bootstrap = "done"
	}
	stats.BootstrapSource = s.bootstrapSource
	s.snapMu.Unlock()
	stats.BootstrapFailures = s.bootstrapFailures.Load()
	writeJSON(w, http.StatusOK, stats)
}

// writeSnapshotErr maps engine snapshot failures to HTTP statuses.
func writeSnapshotErr(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, ErrServerClosed) || errors.Is(err, engine.ErrClosed) {
		writeErr(w, r, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	writeErr(w, r, http.StatusInternalServerError, "%v", err)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", contentTypeJSON)
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr answers a failure with the unified JSON error envelope
// {"error": {"code", "message", "detail"}}; the code is derived from the
// HTTP status. Clients that ask for Accept: text/plain get the legacy
// plain-text body instead.
func writeErr(w http.ResponseWriter, r *http.Request, status int, format string, args ...interface{}) {
	writeErrDetail(w, r, status, "", format, args...)
}

// writeErrDetail is writeErr with an extra machine-readable detail string
// (remediation hints: enabled algorithms, accepted ranges).
func writeErrDetail(w http.ResponseWriter, r *http.Request, status int, detail, format string, args ...interface{}) {
	msg := fmt.Sprintf(format, args...)
	if r != nil && wantsPlainText(r) {
		http.Error(w, msg, status)
		return
	}
	writeJSON(w, status, errorResponse{Error: ErrorDetail{
		Code:    codeForStatus(status),
		Message: msg,
		Detail:  detail,
	}})
}

// wantsPlainText reports whether the client explicitly opted into the legacy
// plain-text error bodies with an Accept: text/plain header.
func wantsPlainText(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		if mediaType := strings.TrimSpace(strings.SplitN(part, ";", 2)[0]); mediaType == "text/plain" {
			return true
		}
	}
	return false
}

// codeForStatus maps an HTTP status to the stable error code of the envelope.
func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "invalid_argument"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusUnsupportedMediaType:
		return "unsupported_media_type"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		if status >= 500 {
			return "internal"
		}
		return "error"
	}
}
