// Package server is the network ingestion front-end over internal/engine:
// an HTTP daemon (cmd/sketchd) that owns a sharded heavy-hitter engine and
// exposes updates, point queries, top-k reports, and — the part that makes
// it distributed — snapshot export, merge, and continuous gossip
// delta-replication between peers.
//
// The design leans entirely on the survey's linearity law. A sketch is a
// linear map of the frequency vector, so for any split of a stream across
// daemons, sketch(x_1 + x_2) = sketch(x_1) + sketch(x_2) as long as every
// daemon was started with the same seed and dimensions. GET /v1/snapshot
// serializes a daemon's exact merged state with the versioned encoding of
// internal/sketch (hash seeds ride along); POST /v1/merge on a peer folds
// those bytes in with the exact linear merge. Nothing approximate happens at
// the transport layer: a fleet of daemons that ingests a partitioned stream
// and merges pairwise converges to byte-for-byte the sketch one process
// would have built from the whole stream.
//
// Reconciliation is no longer only pull-driven. Linearity also makes the
// *difference* of two snapshots a valid sketch — of exactly the updates
// between them — so daemons started with Config.Peers run a replicator
// goroutine that, every GossipEvery, ships each peer the delta between the
// daemon's current locally ingested state and the last state that peer
// acknowledged. Deltas are mostly zero counters and travel in the
// compressed KindDelta envelope (sketch.EncodeDelta); POST /v1/delta folds
// them in idempotently: the receiver keeps a per-sender generation
// watermark, so retried or reordered frames are acknowledged without being
// applied twice, and frames from a diverged sender are refused (409) and
// re-aligned with a reset frame rather than double-counted. Only locally
// ingested mass is gossiped — absorbed merges, applied deltas and recovered
// snapshots are tracked in a separate "foreign" sketch and subtracted from
// every shipment — so a full mesh converges to exactly the global sketch
// with no relaying and no double-counting. See docs/CLUSTER.md for the
// operator guide and DeltaFrame in wire.go for the protocol.
//
// Ingestion is concurrent end to end, and batch-first. Every /v1/update
// handler routes its batch through one of Config.Producers engine producer
// handles — round-robin lanes with lane-local locks — so parallel clients
// never serialize behind a global mutex, and the linearity law above
// guarantees the interleaving doesn't matter: the merged counters equal a
// single-threaded run exactly (asserted under the race detector by the
// concurrent-ingestion test). The binary update body decodes straight into
// the lane's reusable key/delta columns (DecodeBatchColumns — no per-item
// structs), which flow whole through the producer handle into the sketches'
// batched update path.
// Queries are answered from a barrier snapshot cached per write generation;
// snapshot, merge and stats share one narrow barrier lock that the update
// hot path never touches.
//
// Producers with a sustained feed can skip per-request HTTP entirely:
// POST /v1/stream (and its raw TCP twin, Server.ServeStream / sketchd
// -stream-addr) holds one connection open and carries the same SKB1 batches
// as length-prefixed, CRC-guarded frames, with acknowledgement frames
// streaming back on the same connection. Each connection pins one producer
// lane for its whole lifetime, so concurrent streams never contend and the
// per-frame steady state allocates nothing. Acks carry a cumulative
// applied-sequence watermark per named session, which makes reconnection
// exactly-once: StreamUpdater (the shipped client) replays unacked frames
// verbatim and the server absorbs duplicates as no-ops. See stream.go for
// the frame protocol and docs/API.md for the wire reference.
//
// The same snapshot bytes double as the crash-recovery format: with a
// snapshot directory configured, the server ships its state to disk
// periodically and on shutdown, and folds the file back in on startup, so a
// restarted daemon answers queries from bit-identical counters.
//
// Incompatible peers are rejected, not absorbed: /v1/merge verifies that the
// posted sketch shares the daemon's dimensions, hash seed and family, and
// answers 4xx (with the decoder's message) on any mismatch or malformed
// payload.
package server
