package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/sketch"
)

// Epoch-pinned read path ------------------------------------------------------
//
// Every read endpoint used to take the barrier lock per request just to learn
// that nothing had changed. The server now mirrors the engine's read cache
// one level up: an atomic pointer to the most recent barrier snapshot stamped
// with the write generation it covers. A reader whose loaded epoch matches
// the current generation answers lock-free — no snapMu, no barrier — and any
// acknowledged write (update, merge, applied delta) invalidates the epoch
// simply by bumping gen. Only the first reader after a write rebuilds; the
// rebuild reuses snapCache, so it costs a barrier only when the engine moved.
//
// The snapshot inside an epoch is shared by every concurrent reader and is
// immutable by contract: handlers query it only through the read-only
// estimators (Estimate, EstimateBatchWith, TopK, HeavyHitters), which never
// touch the tracker's counters.

// readEpoch is one published read generation: a shared immutable snapshot,
// the write generation it covers, and the lazily computed ranked candidate
// list (sorted once per epoch, shared by every ?k= request until a write
// invalidates the epoch).
type readEpoch struct {
	gen  int64
	snap *sketch.HeavyHitterTracker

	topkOnce sync.Once
	topk     []TopKItem
}

// rankedTopK returns the epoch's candidates re-scored against its counters
// and sorted by decreasing count, computing them on first use. Callers share
// the returned slice and must not mutate it (truncating views are fine).
func (ep *readEpoch) rankedTopK() []TopKItem {
	ep.topkOnce.Do(func() {
		source := ep.snap.TopK()
		ranked := make([]TopKItem, 0, len(source))
		for _, ic := range source {
			ranked = append(ranked, TopKItem{Item: ic.Item, Count: ic.Count})
		}
		ep.topk = ranked
	})
	return ep.topk
}

// readLane is the read-side twin of ingestLane: reusable key/estimate columns
// plus the estimation scratch and the binary response buffer, guarded by one
// lane-local lock. Batch queries pick a lane round-robin, so P lanes serve P
// concurrent batch bodies and the steady-state batch read allocates nothing
// beyond what net/http itself does.
type readLane struct {
	mu   sync.Mutex
	keys []uint64               // reusable decode column, guarded by mu
	ests []float64              // reusable estimate column, guarded by mu
	sc   sketch.EstimateScratch // per-lane kernel scratch, guarded by mu
	buf  []byte                 // reusable binary response buffer, guarded by mu
}

// readEpochSnap returns the current read epoch, rebuilding and publishing it
// when stale. The fast path is lock-free; the slow path funnels through
// snapMu and reuses the snapshot cache, so concurrent readers behind one
// invalidation pay a single barrier between them.
func (s *Server) readEpochSnap() (*readEpoch, error) {
	if s.engRetired.Load() {
		return nil, ErrServerClosed
	}
	if ep := s.epoch.Load(); ep != nil && ep.gen == s.gen.Load() {
		s.epochHits.Add(1)
		return ep, nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	// Another reader may have republished while we waited for the lock;
	// their epoch is as current as ours would be.
	if ep := s.epoch.Load(); ep != nil && ep.gen == s.gen.Load() {
		s.epochHits.Add(1)
		return ep, nil
	}
	s.epochMisses.Add(1)
	snap, err := s.snapshotLocked()
	if err != nil {
		return nil, err
	}
	// snapGen is the generation snapshotLocked stamped the cache with — the
	// gen it loaded before cutting the barrier, so the epoch never claims a
	// write it does not contain. Publishes are serialized by snapMu and gens
	// are monotonic, so a plain store suffices.
	ep := &readEpoch{gen: s.snapGen, snap: snap}
	s.epoch.Store(ep)
	return ep, nil
}

// wantsEstimateColumn reports whether the client asked for the binary
// estimate-column answer via Accept: application/x-sketch-estimates.
func wantsEstimateColumn(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		if strings.TrimSpace(strings.SplitN(part, ";", 2)[0]) == contentTypeEstimates {
			return true
		}
	}
	return false
}

// handleQueryBatch answers POST /v1/query: a whole column of point queries
// in one request, decoded into a reusable read lane and answered through the
// batched estimation kernels from the pinned read epoch — one epoch load for
// the entire column, estimates bit-identical to the per-key GET form.
func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	// JSON parses before the lane lock (the parse allocates its own request
	// struct anyway); the binary key column decodes under the lock, straight
	// into the lane's reusable column — one bounds-checked scan.
	ct := r.Header.Get("Content-Type")
	isBinary := strings.HasPrefix(ct, contentTypeKeys)
	var req QueryBatchRequest
	switch {
	case isBinary:
	case ct == "" || strings.HasPrefix(ct, contentTypeJSON):
		if err := json.Unmarshal(data, &req); err != nil {
			writeErr(w, r, http.StatusBadRequest, "decoding JSON key batch: %v", err)
			return
		}
	default:
		writeErr(w, r, http.StatusUnsupportedMediaType, "unsupported Content-Type %q (want %s or %s)",
			ct, contentTypeJSON, contentTypeKeys)
		return
	}

	lane := s.readLanes[s.nextReadLane.Add(1)%uint64(len(s.readLanes))]
	lane.mu.Lock()
	defer lane.mu.Unlock()
	lane.keys = lane.keys[:0]
	if isBinary {
		var err error
		lane.keys, err = DecodeKeyColumns(data, lane.keys)
		if err != nil {
			writeErr(w, r, http.StatusBadRequest, "%v", err)
			return
		}
	} else {
		lane.keys = append(lane.keys, req.Keys...)
	}
	if len(lane.keys) == 0 {
		writeErr(w, r, http.StatusBadRequest, `empty key batch: POST {"keys":[...]} or an SKQ1 key column`)
		return
	}

	ep, err := s.readEpochSnap()
	if err != nil {
		writeSnapshotErr(w, r, err)
		return
	}
	if cap(lane.ests) < len(lane.keys) {
		lane.ests = make([]float64, len(lane.keys))
	}
	lane.ests = lane.ests[:len(lane.keys)]
	ep.snap.EstimateBatchWith(lane.keys, lane.ests, &lane.sc)
	s.batchQueries.Add(1)
	s.batchKeys.Add(int64(len(lane.keys)))

	if wantsEstimateColumn(r) {
		lane.buf = AppendEstimateColumns(lane.buf[:0], ep.gen, lane.ests)
		w.Header().Set("Content-Type", contentTypeEstimates)
		w.Header().Set("Content-Length", strconv.Itoa(len(lane.buf)))
		w.WriteHeader(http.StatusOK)
		w.Write(lane.buf)
		return
	}
	writeJSON(w, http.StatusOK, QueryBatchResponse{Estimates: lane.ests, Gen: ep.gen})
}
