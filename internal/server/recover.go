// Sparse recovery endpoints: the read side of the paper's thesis. The same
// hashing matrix that answers point queries is a compressed-sensing
// measurement (GET/POST /v1/recover inverts it with internal/cs), a set-query
// sketch in the sense of Price (POST /v1/setquery calibrates estimates over a
// caller-supplied support), and — one abstraction over — the bucketing
// primitive of the sparse Fourier transform (POST /v1/spectrum runs
// internal/sfft over a posted signal). All three answer from the same barrier
// snapshots as /v1/query and /v1/topk, with the snapshot's counters viewed
// zero-copy as the measurement vector via engine.Measurement.

package server

import (
	"encoding/json"
	"math"
	"math/cmplx"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cs"
	"repro/internal/engine"
	"repro/internal/sfft"
	"repro/internal/sketch"
	"repro/internal/xrand"
)

// recovererFor maps an algorithm name to its internal/cs implementation, or
// nil for unknown names. iters is the iteration budget of the iterative
// algorithms (sketch decoding is a single pass and ignores it).
func recovererFor(algo string, iters int) cs.Recoverer {
	switch algo {
	case "sketch":
		return cs.SketchDecode{}
	case "omp":
		return cs.OMP{MaxIter: iters}
	case "iht":
		return cs.IHT{Iters: iters}
	case "ista":
		return cs.ISTA{Iters: iters}
	case "smp":
		return cs.SMP{Iters: iters}
	default:
		return nil
	}
}

// algoEnabled reports whether the config allows the named recoverer.
func (s *Server) algoEnabled(algo string) bool {
	for _, a := range s.cfg.RecoverAlgos {
		if a == algo {
			return true
		}
	}
	return false
}

// queryInt parses an optional positive-integer query parameter into *dst,
// answering a 400 envelope and returning false on junk.
func queryInt(w http.ResponseWriter, r *http.Request, name string, dst *int) bool {
	v := r.URL.Query().Get(name)
	if v == "" {
		return true
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 1 {
		writeErr(w, r, http.StatusBadRequest, "bad %s %q: want a positive integer", name, v)
		return false
	}
	*dst = n
	return true
}

// errorBound returns the Count-Min per-coordinate additive error
// (e/width)·‖x‖₁: the (ε, δ) guarantee instantiated at ε = e/width, which
// holds per coordinate with probability at least 1 - exp(-depth).
func errorBound(width int, mass float64) float64 {
	return math.E / float64(width) * math.Abs(mass)
}

// confidence returns 1 - exp(-depth), the probability the error bound holds.
func confidence(depth int) float64 {
	return 1 - math.Exp(-float64(depth))
}

// handleRecover serves GET/POST /v1/recover: cut a barrier snapshot, view it
// as the linear measurement y = A·x of the ingested frequency vector, and
// invert it with the requested internal/cs recoverer into an approximate
// top-k vector. Parameters come from an optional JSON body (POST) overridden
// by query parameters.
func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request) {
	var req RecoverRequest
	if r.Method == http.MethodPost {
		data, ok := s.readBody(w, r)
		if !ok {
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "" && !strings.HasPrefix(ct, contentTypeJSON) {
			writeErr(w, r, http.StatusUnsupportedMediaType, "unsupported Content-Type %q (want %s)", ct, contentTypeJSON)
			return
		}
		if len(data) > 0 {
			if err := json.Unmarshal(data, &req); err != nil {
				writeErr(w, r, http.StatusBadRequest, "decoding recover request: %v", err)
				return
			}
		}
	}
	if v := r.URL.Query().Get("algo"); v != "" {
		req.Algo = v
	}
	if !queryInt(w, r, "k", &req.K) || !queryInt(w, r, "universe", &req.Universe) || !queryInt(w, r, "iters", &req.Iters) {
		return
	}

	if req.Algo == "" {
		req.Algo = s.cfg.RecoverAlgos[0]
	}
	if recovererFor(req.Algo, 1) == nil || !s.algoEnabled(req.Algo) {
		writeErrDetail(w, r, http.StatusBadRequest,
			"enabled algorithms: "+strings.Join(s.cfg.RecoverAlgos, ", "),
			"unknown or disabled recovery algorithm %q", req.Algo)
		return
	}
	if req.K == 0 {
		req.K = min(s.cfg.K, s.cfg.RecoverMaxK)
	}
	if req.K < 1 || req.K > s.cfg.RecoverMaxK {
		writeErrDetail(w, r, http.StatusBadRequest,
			"accepted range: 1 <= k <= "+strconv.Itoa(s.cfg.RecoverMaxK),
			"k %d out of range (this daemon caps recovery at k = %d)", req.K, s.cfg.RecoverMaxK)
		return
	}
	if req.Universe == 0 {
		req.Universe = s.cfg.RecoverUniverse
	}
	if req.Universe < 1 || req.Universe > MaxRecoverUniverse {
		writeErrDetail(w, r, http.StatusBadRequest,
			"accepted range: 1 <= universe <= "+strconv.Itoa(MaxRecoverUniverse),
			"universe %d out of range", req.Universe)
		return
	}
	if req.Iters == 0 {
		req.Iters = s.cfg.RecoverIters
	}

	snap, gen, err := s.snapshotGen()
	if err != nil {
		writeSnapshotErr(w, r, err)
		return
	}
	m, err := engine.NewTrackerMeasurement(snap, req.Universe)
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, "building measurement: %v", err)
		return
	}
	xhat, err := recovererFor(req.Algo, req.Iters).Recover(m, m.Measurements(), req.K)
	if err != nil {
		writeErr(w, r, http.StatusInternalServerError, "recovery failed: %v", err)
		return
	}

	entries := make([]RecoverEntry, 0, req.K)
	for j, v := range xhat {
		if v != 0 {
			entries = append(entries, RecoverEntry{Item: uint64(j), Estimate: v})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		ai, aj := math.Abs(entries[i].Estimate), math.Abs(entries[j].Estimate)
		if ai != aj {
			return ai > aj
		}
		return entries[i].Item < entries[j].Item
	})
	if len(entries) > req.K {
		entries = entries[:req.K]
	}
	writeJSON(w, http.StatusOK, RecoverResponse{
		Algo:       req.Algo,
		K:          req.K,
		Universe:   req.Universe,
		Entries:    entries,
		ErrorBound: errorBound(snap.Width(), snap.TotalMass()),
		Confidence: confidence(snap.Depth()),
		Gen:        gen,
	})
}

// handleSetQuery serves POST /v1/setquery — Price's set-query problem: given
// a candidate support S, return calibrated estimates over exactly S. The
// default isolate estimator answers each item from the hash rows where no
// other member of S shares its bucket, which strips intra-support collision
// bias: its answer is never above the plain per-item minimum (so never less
// accurate than /v1/query on non-negative streams) and falls back to it when
// every row collides.
func (s *Server) handleSetQuery(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" && !strings.HasPrefix(ct, contentTypeJSON) {
		writeErr(w, r, http.StatusUnsupportedMediaType, "unsupported Content-Type %q (want %s)", ct, contentTypeJSON)
		return
	}
	var req SetQueryRequest
	if err := json.Unmarshal(data, &req); err != nil {
		writeErr(w, r, http.StatusBadRequest, "decoding setquery request: %v", err)
		return
	}
	if v := r.URL.Query().Get("estimator"); v != "" {
		req.Estimator = v
	}
	if req.Estimator == "" {
		req.Estimator = "isolate"
	}
	if req.Estimator != "isolate" && req.Estimator != "min" {
		writeErrDetail(w, r, http.StatusBadRequest, "supported estimators: isolate, min",
			"unknown estimator %q for /v1/setquery", req.Estimator)
		return
	}
	if len(req.Support) == 0 {
		writeErr(w, r, http.StatusBadRequest, "empty support: POST {\"support\": [items...]}")
		return
	}
	if len(req.Support) > MaxSetQuerySupport {
		writeErrDetail(w, r, http.StatusBadRequest,
			"accepted range: 1 <= len(support) <= "+strconv.Itoa(MaxSetQuerySupport),
			"support has %d items (max %d)", len(req.Support), MaxSetQuerySupport)
		return
	}
	seen := make(map[uint64]bool, len(req.Support))
	for _, item := range req.Support {
		if seen[item] {
			writeErr(w, r, http.StatusBadRequest, "malformed support: item %d appears more than once", item)
			return
		}
		seen[item] = true
	}

	snap, gen, err := s.snapshotGen()
	if err != nil {
		writeSnapshotErr(w, r, err)
		return
	}
	resp := SetQueryResponse{
		Estimator:  req.Estimator,
		Estimates:  make([]SetQueryEstimate, len(req.Support)),
		ErrorBound: errorBound(snap.Width(), snap.TotalMass()),
		Confidence: confidence(snap.Depth()),
		Gen:        gen,
	}
	switch req.Estimator {
	case "min":
		for i, item := range req.Support {
			resp.Estimates[i] = SetQueryEstimate{Item: item, Estimate: snap.Estimate(item)}
		}
	case "isolate":
		resp.Estimates = isolateEstimates(snap.Backing(), req.Support)
	}
	writeJSON(w, http.StatusOK, resp)
}

// isolateEstimates computes the set-query calibration over support S: for
// each item, the minimum counter over the rows where no other member of S
// shares its bucket. Counters in those rows carry only the item's own mass
// plus tail noise from outside S, so the answer is at most the plain
// Count-Min estimate (and still an upper bound on the truth for non-negative
// streams). Items with no collision-free row fall back to the plain minimum.
func isolateEstimates(cm *sketch.CountMin, support []uint64) []SetQueryEstimate {
	width, depth := cm.Width(), cm.Depth()
	counters := cm.CounterData()
	// Per row, the bucket occupancy of the support set.
	occupancy := make([]map[int]int, depth)
	buckets := make([][]int, depth)
	for row := 0; row < depth; row++ {
		occupancy[row] = make(map[int]int, len(support))
		buckets[row] = make([]int, len(support))
		for i, item := range support {
			b := cm.RowBucket(row, item)
			buckets[row][i] = b
			occupancy[row][b]++
		}
	}
	out := make([]SetQueryEstimate, len(support))
	for i, item := range support {
		est := SetQueryEstimate{Item: item}
		isolatedMin, plainMin := math.Inf(1), math.Inf(1)
		for row := 0; row < depth; row++ {
			b := buckets[row][i]
			v := counters[row*width+b]
			if v < plainMin {
				plainMin = v
			}
			if occupancy[row][b] == 1 {
				est.IsolatedRows++
				if v < isolatedMin {
					isolatedMin = v
				}
			}
		}
		if est.IsolatedRows > 0 {
			est.Estimate = isolatedMin
		} else {
			est.Estimate = plainMin
		}
		out[i] = est
	}
	return out
}

// handleSpectrum serves POST /v1/spectrum: run the sparse Fourier transform
// of internal/sfft over a posted signal and return the dominant frequencies.
func (s *Server) handleSpectrum(w http.ResponseWriter, r *http.Request) {
	data, ok := s.readBody(w, r)
	if !ok {
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" && !strings.HasPrefix(ct, contentTypeJSON) {
		writeErr(w, r, http.StatusUnsupportedMediaType, "unsupported Content-Type %q (want %s)", ct, contentTypeJSON)
		return
	}
	var req SpectrumRequest
	if err := json.Unmarshal(data, &req); err != nil {
		writeErr(w, r, http.StatusBadRequest, "decoding spectrum request: %v", err)
		return
	}
	if v := r.URL.Query().Get("algo"); v != "" {
		req.Algo = v
	}
	if !queryInt(w, r, "k", &req.K) {
		return
	}
	if req.Algo == "" {
		req.Algo = "exact"
	}
	if req.Algo != "exact" && req.Algo != "robust" {
		writeErrDetail(w, r, http.StatusBadRequest, "supported algorithms: exact, robust",
			"unknown spectrum algorithm %q", req.Algo)
		return
	}
	n := len(req.Signal)
	switch {
	case n == 0:
		writeErr(w, r, http.StatusBadRequest, "empty signal: POST {\"signal\": [samples...], \"k\": ...}")
		return
	case n&(n-1) != 0:
		writeErr(w, r, http.StatusBadRequest, "signal length %d is not a power of two", n)
		return
	case n > MaxSpectrumLen:
		writeErrDetail(w, r, http.StatusBadRequest,
			"accepted range: len(signal) <= "+strconv.Itoa(MaxSpectrumLen),
			"signal has %d samples (max %d)", n, MaxSpectrumLen)
		return
	}
	if req.SignalImag != nil && len(req.SignalImag) != n {
		writeErr(w, r, http.StatusBadRequest, "signal_imag has %d samples, signal has %d", len(req.SignalImag), n)
		return
	}
	if req.K < 1 || req.K > n/2 {
		writeErrDetail(w, r, http.StatusBadRequest, "accepted range: 1 <= k <= len(signal)/2",
			"k %d out of range for a %d-sample signal", req.K, n)
		return
	}
	if req.Rounds < 0 || req.Rounds > 64 {
		writeErr(w, r, http.StatusBadRequest, "rounds %d out of range (max 64)", req.Rounds)
		return
	}
	if req.BucketFactor < 0 || req.BucketFactor > 64 {
		writeErr(w, r, http.StatusBadRequest, "bucket_factor %d out of range (max 64)", req.BucketFactor)
		return
	}

	x := make([]complex128, n)
	for i, re := range req.Signal {
		var im float64
		if req.SignalImag != nil {
			im = req.SignalImag[i]
		}
		x[i] = complex(re, im)
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.Seed
	}
	transform := sfft.Exact
	if req.Algo == "robust" {
		transform = sfft.Robust
	}
	coeffs, err := transform(x, req.K, sfft.Config{Rounds: req.Rounds, BucketFactor: req.BucketFactor}, xrand.New(seed))
	if err != nil {
		// The signal parsed fine but the transform could not isolate k
		// frequencies (too dense a spectrum, adversarial collisions): the
		// request is well-formed yet unprocessable.
		writeErrDetail(w, r, http.StatusUnprocessableEntity,
			"try algo=robust, a smaller k, or a longer window",
			"sparse transform failed: %v", err)
		return
	}
	sfft.SortCoefficients(coeffs)
	resp := SpectrumResponse{N: n, K: req.K, Algo: req.Algo, Gen: s.gen.Load()}
	resp.Coefficients = make([]SpectrumCoefficient, len(coeffs))
	for i, c := range coeffs {
		resp.Coefficients[i] = SpectrumCoefficient{
			Freq:      c.Freq,
			Re:        real(c.Value),
			Im:        imag(c.Value),
			Magnitude: cmplx.Abs(c.Value),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
