package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// testDaemon wires a Server into an httptest server and returns a client for
// it; cleanup tears both down.
func testDaemon(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, NewClient(hs.URL, hs.Client())
}

// toEngineUpdates converts a stream slice to engine updates.
func toEngineUpdates(updates []stream.Update) []engine.Update {
	out := make([]engine.Update, len(updates))
	for i, u := range updates {
		out[i] = engine.Update{Item: u.Item, Delta: float64(u.Delta)}
	}
	return out
}

// TestEndToEndExactnessOverTheWire is the acceptance invariant (the HTTP
// version of experiment E11): two daemons ingest disjoint halves of a
// stream, one merges the other's /v1/snapshot, and every queried counter
// equals the single-threaded reference sketch exactly — deviation 0.
func TestEndToEndExactnessOverTheWire(t *testing.T) {
	cfg := Config{Width: 1024, Depth: 4, K: 48, Seed: 11, Engine: engine.Config{Workers: 3, BatchSize: 101}}
	_, clientA := testDaemon(t, cfg)
	_, clientB := testDaemon(t, cfg)
	ctx := context.Background()

	reference := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	s := stream.Zipf(xrand.New(99), 1<<16, 60_000, 1.1)
	for _, u := range s.Updates {
		reference.Update(u.Item, float64(u.Delta))
	}
	half := len(s.Updates) / 2
	if err := clientA.Update(ctx, toEngineUpdates(s.Updates[:half])); err != nil {
		t.Fatal(err)
	}
	if err := clientB.Update(ctx, toEngineUpdates(s.Updates[half:])); err != nil {
		t.Fatal(err)
	}

	snap, err := clientB.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := clientA.Merge(ctx, snap); err != nil {
		t.Fatal(err)
	}

	// Every queried counter — hot items and never-seen ones — must match the
	// reference bit for bit.
	items := make([]uint64, 0, 1<<10)
	for item := uint64(0); item < 1<<16; item += 61 {
		items = append(items, item)
	}
	// Chunk queries to keep URLs reasonable.
	for start := 0; start < len(items); start += 256 {
		end := min(start+256, len(items))
		estimates, err := clientA.Query(ctx, items[start:end]...)
		if err != nil {
			t.Fatal(err)
		}
		for i, item := range items[start:end] {
			if want := reference.Estimate(item); estimates[i] != want {
				t.Fatalf("estimate(%d) over the wire = %v, reference = %v (deviation %v)",
					item, estimates[i], want, estimates[i]-want)
			}
		}
	}

	// The merged daemon's heavy hitters must carry exact reference counts.
	ranked, err := clientA.HeavyHitters(ctx, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("merged daemon reported no heavy hitters on a Zipf stream")
	}
	for _, ic := range ranked {
		if want := int64(reference.Estimate(ic.Item) + 0.5); ic.Count != want {
			t.Fatalf("heavy hitter %d count %d != reference %d", ic.Item, ic.Count, want)
		}
	}

	// Total mass after the merge covers the full stream.
	stats, err := clientA.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMass != reference.TotalMass() {
		t.Fatalf("merged total mass %v != reference %v", stats.TotalMass, reference.TotalMass())
	}
}

// TestConcurrentUpdateExactness: the lock-free ingestion path under -race.
// Eight goroutines POST disjoint slices of one stream to a single daemon —
// chunked so the producer lanes genuinely interleave — while other
// goroutines hammer the read endpoints mid-stream. Afterwards every sampled
// counter must equal the single-threaded reference sketch exactly: the
// HTTP-level statement of the E11/E12 deviation-0 invariant for concurrent
// producers.
func TestConcurrentUpdateExactness(t *testing.T) {
	cfg := Config{
		Width: 1024, Depth: 4, K: 48, Seed: 13,
		Engine:    engine.Config{Workers: 3, BatchSize: 101},
		Producers: 4,
	}
	_, client := testDaemon(t, cfg)
	ctx := context.Background()

	reference := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	s := stream.Zipf(xrand.New(77), 1<<14, 80_000, 1.1)
	for _, u := range s.Updates {
		reference.Update(u.Item, float64(u.Delta))
	}

	const writers = 8
	const chunk = 512
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for wid := 0; wid < writers; wid++ {
		wg.Add(1)
		go func(wid int) {
			defer wg.Done()
			// Writer wid owns every writers-th update: the slices are
			// disjoint and together cover the stream exactly once.
			var own []engine.Update
			for i := wid; i < len(s.Updates); i += writers {
				own = append(own, engine.Update{Item: s.Updates[i].Item, Delta: float64(s.Updates[i].Delta)})
			}
			for start := 0; start < len(own); start += chunk {
				end := min(start+chunk, len(own))
				if err := client.Update(ctx, own[start:end]); err != nil {
					errs <- fmt.Errorf("writer %d: %w", wid, err)
					return
				}
			}
		}(wid)
	}
	// Concurrent readers: mid-stream queries must stay consistent (and under
	// -race, prove the snapshot cache and barrier lock don't race the lanes).
	readStop := make(chan struct{})
	var readWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-readStop:
					return
				default:
				}
				if _, err := client.Query(ctx, 1, 2, 3); err != nil {
					errs <- fmt.Errorf("mid-stream query: %w", err)
					return
				}
				if _, err := client.Stats(ctx); err != nil {
					errs <- fmt.Errorf("mid-stream stats: %w", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(readStop)
	readWG.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// Counter-for-counter exactness: a dense sample of the universe plus
	// every reference top-k item must match the single-threaded sketch.
	items := make([]uint64, 0, 1<<10)
	for item := uint64(0); item < 1<<14; item += 17 {
		items = append(items, item)
	}
	for _, ic := range reference.TopK() {
		items = append(items, ic.Item)
	}
	for start := 0; start < len(items); start += 256 {
		end := min(start+256, len(items))
		estimates, err := client.Query(ctx, items[start:end]...)
		if err != nil {
			t.Fatal(err)
		}
		for i, item := range items[start:end] {
			if want := reference.Estimate(item); estimates[i] != want {
				t.Fatalf("estimate(%d) after concurrent ingestion = %v, reference = %v (deviation %v)",
					item, estimates[i], want, estimates[i]-want)
			}
		}
	}
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMass != reference.TotalMass() {
		t.Fatalf("total mass after concurrent ingestion %v != reference %v", stats.TotalMass, reference.TotalMass())
	}
	if stats.Updates != int64(len(s.Updates)) {
		t.Fatalf("stats count %d updates, want %d", stats.Updates, len(s.Updates))
	}
	if stats.Producers != cfg.Producers {
		t.Fatalf("stats report %d producers, want %d", stats.Producers, cfg.Producers)
	}
}

// TestUpdateJSON exercises the JSON ingestion path end to end.
func TestUpdateJSON(t *testing.T) {
	_, client := testDaemon(t, Config{Width: 256, Depth: 3, K: 8, Seed: 5})
	hs := client.base

	resp, err := http.Post(hs+"/v1/update", contentTypeJSON,
		strings.NewReader(`{"updates":[{"item":7,"delta":5},{"item":8,"delta":2},{"item":7,"delta":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON update: HTTP %d", resp.StatusCode)
	}
	estimates, err := client.Query(context.Background(), 7, 8, 9999)
	if err != nil {
		t.Fatal(err)
	}
	if estimates[0] < 6 || estimates[1] < 2 {
		t.Fatalf("estimates after JSON update: %v", estimates)
	}
}

// postMerge posts raw bytes at /v1/merge and returns status and body.
func postMerge(t *testing.T, client *Client, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(client.base+"/v1/merge", contentTypeSnapshot, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(respBody)
}

// TestMergeRejectsBadPayloads: the encoding error paths exercised over HTTP.
// Truncated bodies, wrong family bytes and mismatched dimensions must come
// back as 4xx with a useful message — never a panic, and never a poisoned
// daemon.
func TestMergeRejectsBadPayloads(t *testing.T) {
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 3}
	_, client := testDaemon(t, cfg)
	ctx := context.Background()

	// A healthy compatible snapshot to corrupt: the bare Count-Min encoding
	// is accepted by /v1/merge alongside full tracker snapshots.
	good, err := func() ([]byte, error) {
		cm := sketch.NewCountMin(xrand.New(cfg.Seed), cfg.Width, cfg.Depth)
		cm.Update(1, 1)
		return cm.MarshalBinary()
	}()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		body     []byte
		wantWord string // substring the error message must carry
	}{
		{"empty body", nil, "empty body"},
		{"garbage", []byte("hello sketchd"), "magic"},
		{"truncated header", good[:10], "truncated"},
		{"truncated payload", good[:len(good)-9], "header claims"},
		{"wrong family byte", corrupt(good, 6, 0xFF), "family"},
		{"wrong kind", encodeBloom(t), "cannot merge"},
		{"mismatched width/depth", mismatchedSnapshot(t, cfg.Seed), "dimension mismatch"},
		{"different hash seed", differentSeedSnapshot(t, cfg), "hash mismatch"},
	}
	for _, tc := range cases {
		status, body := postMerge(t, client, tc.body)
		if status < 400 || status > 499 {
			t.Errorf("%s: HTTP %d, want 4xx (body %q)", tc.name, status, body)
		}
		if !strings.Contains(body, tc.wantWord) {
			t.Errorf("%s: error %q does not mention %q", tc.name, body, tc.wantWord)
		}
	}

	// The daemon must still be fully alive: a valid merge and a query work.
	if err := client.Merge(ctx, good); err != nil {
		t.Fatalf("valid merge after rejected ones: %v", err)
	}
	estimates, err := client.Query(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	if estimates[0] != 1 {
		t.Fatalf("estimate(1) = %v after merging a single update", estimates[0])
	}
}

// TestUpdateRejectsBadPayloads: the binary batch decoder's error paths over
// HTTP.
func TestUpdateRejectsBadPayloads(t *testing.T) {
	_, client := testDaemon(t, Config{Width: 128, Depth: 3, K: 8})

	goodBatch := AppendBatch(nil, []engine.Update{{Item: 1, Delta: 2}})
	for name, body := range map[string][]byte{
		"truncated batch":  goodBatch[:len(goodBatch)-3],
		"bad batch magic":  corrupt(goodBatch, 0, 'X'),
		"lying count word": corrupt(goodBatch, 7, 9),
	} {
		resp, err := http.Post(client.base+"/v1/update", contentTypeBatch, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, resp.StatusCode)
		}
	}

	// Unparseable JSON and an unsupported content type.
	resp, err := http.Post(client.base+"/v1/update", contentTypeJSON, strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: HTTP %d, want 400", resp.StatusCode)
	}
	resp, err = http.Post(client.base+"/v1/update", "text/csv", strings.NewReader("1,2"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Errorf("csv: HTTP %d, want 415", resp.StatusCode)
	}
}

// TestSnapshotRecovery: the ROADMAP's snapshot-shipping item. A daemon
// ingests a stream, ships its snapshot to disk, dies; a new daemon pointed
// at the same directory recovers counters bit-identically — its /v1/snapshot
// bytes equal the old daemon's exactly.
func TestSnapshotRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Width: 512, Depth: 4, K: 32, Seed: 21, SnapshotDir: dir}
	srv, client := testDaemon(t, cfg)
	ctx := context.Background()

	s := stream.Zipf(xrand.New(31), 1<<14, 20_000, 1.1)
	if err := client.Update(ctx, toEngineUpdates(s.Updates)); err != nil {
		t.Fatal(err)
	}
	before, err := client.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh daemon on the same directory must recover the exact
	// state — same snapshot bytes, same estimates.
	_, client2 := testDaemon(t, cfg)
	after, err := client2.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("snapshot after recovery differs: %d vs %d bytes (counters not bit-identical)",
			len(before), len(after))
	}
	var reference sketch.HeavyHitterTracker
	if err := reference.UnmarshalBinary(before); err != nil {
		t.Fatal(err)
	}
	estimates, err := client2.Query(ctx, 1, 2, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, item := range []uint64{1, 2, 3, 4, 5} {
		if want := reference.Estimate(item); estimates[i] != want {
			t.Fatalf("estimate(%d) after recovery = %v, want %v", item, estimates[i], want)
		}
	}
}

// TestBatchRoundTrip: the binary batch codec in isolation.
func TestBatchRoundTrip(t *testing.T) {
	in := []engine.Update{{Item: 1, Delta: 2.5}, {Item: 1 << 60, Delta: -3}, {Item: 0, Delta: 0}}
	out, err := DecodeBatch(AppendBatch(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d updates, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("update %d: %v != %v", i, out[i], in[i])
		}
	}
	if _, err := DecodeBatch(nil); err == nil {
		t.Fatal("empty batch: expected error")
	}
}

// TestBatchColumnsRoundTrip: the columnar encoder/decoder pair must produce
// exactly the record encoder's wire bytes, round-trip losslessly, and append
// into reused buffers without clobbering prior contents.
func TestBatchColumnsRoundTrip(t *testing.T) {
	items := []uint64{1, 1 << 60, 0}
	deltas := []float64{2.5, -3, 0}
	records := []engine.Update{{Item: 1, Delta: 2.5}, {Item: 1 << 60, Delta: -3}, {Item: 0, Delta: 0}}

	colBytes := AppendBatchColumns(nil, items, deltas)
	recBytes := AppendBatch(nil, records)
	if !bytes.Equal(colBytes, recBytes) {
		t.Fatal("AppendBatchColumns wire bytes differ from AppendBatch")
	}

	// Decode appends after existing contents (the lanes reset to [:0], but
	// the contract is append).
	gotItems, gotDeltas, err := DecodeBatchColumns(colBytes, []uint64{7}, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	wantItems := append([]uint64{7}, items...)
	wantDeltas := append([]float64{8}, deltas...)
	if len(gotItems) != len(wantItems) || len(gotDeltas) != len(wantDeltas) {
		t.Fatalf("decoded %d/%d entries, want %d/%d", len(gotItems), len(gotDeltas), len(wantItems), len(wantDeltas))
	}
	for i := range wantItems {
		if gotItems[i] != wantItems[i] || gotDeltas[i] != wantDeltas[i] {
			t.Fatalf("entry %d: (%d, %v), want (%d, %v)", i, gotItems[i], gotDeltas[i], wantItems[i], wantDeltas[i])
		}
	}

	if _, _, err := DecodeBatchColumns(colBytes[:len(colBytes)-1], nil, nil); err == nil {
		t.Fatal("truncated columnar batch: expected error")
	}
	if _, _, err := DecodeBatchColumns([]byte("XXXXXXXX"), nil, nil); err == nil {
		t.Fatal("bad magic: expected error")
	}
}

// corrupt returns a copy of data with one byte overwritten.
func corrupt(data []byte, offset int, b byte) []byte {
	out := append([]byte{}, data...)
	out[offset] = b
	return out
}

// encodeBloom serializes a Bloom filter — a valid encoding of the wrong kind.
func encodeBloom(t *testing.T) []byte {
	t.Helper()
	data, err := sketch.NewBloomFilter(xrand.New(1), 256, 3).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// mismatchedSnapshot serializes a Count-Min with the right seed but the
// wrong dimensions.
func mismatchedSnapshot(t *testing.T, seed uint64) []byte {
	t.Helper()
	data, err := sketch.NewCountMin(xrand.New(seed), 64, 2).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// differentSeedSnapshot serializes a Count-Min with the right dimensions but
// hash functions drawn from a different seed.
func differentSeedSnapshot(t *testing.T, cfg Config) []byte {
	t.Helper()
	data, err := sketch.NewCountMin(xrand.New(cfg.Seed+1), cfg.Width, cfg.Depth).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestPartitionModeOverTheWire: a partition-mode daemon must be
// indistinguishable from a replica-mode one at the API — same estimates
// (bit for bit against the single-threaded reference), interoperable
// snapshots/merges — while /v1/stats shows the mode and the memory the
// choice buys: sketch-size resident counters instead of workers x that.
func TestPartitionModeOverTheWire(t *testing.T) {
	base := Config{Width: 512, Depth: 4, K: 32, Seed: 17}
	repCfg, partCfg := base, base
	repCfg.Engine = engine.Config{Workers: 4, BatchSize: 101}
	partCfg.Engine = engine.Config{Workers: 4, BatchSize: 101, Partition: true}
	_, repClient := testDaemon(t, repCfg)
	_, partClient := testDaemon(t, partCfg)
	ctx := context.Background()

	reference := sketch.NewHeavyHitterTracker(xrand.New(base.Seed), base.Width, base.Depth, base.K)
	s := stream.Zipf(xrand.New(171), 1<<14, 40_000, 1.1)
	for _, u := range s.Updates {
		reference.Update(u.Item, float64(u.Delta))
	}

	// Partitioned daemon ingests the first half, replica daemon the second;
	// the partitioned one folds in the replica's snapshot (a full tracker
	// absorbed into column slices over the wire).
	half := len(s.Updates) / 2
	if err := partClient.Update(ctx, toEngineUpdates(s.Updates[:half])); err != nil {
		t.Fatal(err)
	}
	if err := repClient.Update(ctx, toEngineUpdates(s.Updates[half:])); err != nil {
		t.Fatal(err)
	}
	snap, err := repClient.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := partClient.Merge(ctx, snap); err != nil {
		t.Fatal(err)
	}

	for item := uint64(0); item < 1<<14; item += 37 {
		estimates, err := partClient.Query(ctx, item)
		if err != nil {
			t.Fatal(err)
		}
		if want := reference.Estimate(item); estimates[0] != want {
			t.Fatalf("partitioned estimate(%d) = %v, reference = %v", item, estimates[0], want)
		}
	}

	repStats, err := repClient.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	partStats, err := partClient.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if repStats.Mode != "replica" || partStats.Mode != "partition" {
		t.Fatalf("modes = %q / %q, want replica / partition", repStats.Mode, partStats.Mode)
	}
	size := base.Width * base.Depth
	if partStats.CounterWords != size {
		t.Fatalf("partition counter_words = %d, want %d", partStats.CounterWords, size)
	}
	if repStats.CounterWords != 4*size {
		t.Fatalf("replica counter_words = %d, want %d", repStats.CounterWords, 4*size)
	}
	if partStats.TotalMass != reference.TotalMass() {
		t.Fatalf("partitioned total mass %v != reference %v", partStats.TotalMass, reference.TotalMass())
	}
}
