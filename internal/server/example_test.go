package server_test

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

// Example_replication shows gossip delta-replication end to end: node A is
// started with node B as a -peers entry, ingests a batch, and the
// replicator ships the snapshot *difference* — a valid sketch in its own
// right, because sketches are linear — to B's /v1/delta on a timer. B folds
// it in with the ordinary exact merge, so its answers equal A's exactly.
func Example_replication() {
	// B listens first (no peers of its own), so A can name its URL.
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	nodeB, err := server.New(server.Config{Width: 1024, Depth: 4, K: 16, Seed: 7, NodeID: "b"})
	if err != nil {
		panic(err)
	}
	go http.Serve(lnB, nodeB.Handler())

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	nodeA, err := server.New(server.Config{
		Width: 1024, Depth: 4, K: 16, Seed: 7, // the mesh must share these
		NodeID:      "a",
		Peers:       []string{"http://" + lnB.Addr().String()},
		GossipEvery: 5 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	go http.Serve(lnA, nodeA.Handler())

	ctx := context.Background()
	clientA := server.NewClient("http://"+lnA.Addr().String(), nil)
	clientB := server.NewClient("http://"+lnB.Addr().String(), nil)

	if err := clientA.Update(ctx, []engine.Update{{Item: 42, Delta: 1000}, {Item: 7, Delta: 3}}); err != nil {
		panic(err)
	}

	// Wait for a gossip tick to carry the delta over (bounded poll).
	deadline := time.Now().Add(10 * time.Second)
	var mass float64
	for time.Now().Before(deadline) {
		stats, err := clientB.Stats(ctx)
		if err != nil {
			panic(err)
		}
		if mass = stats.TotalMass; mass == 1003 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	estimates, err := clientB.Query(ctx, 42)
	if err != nil {
		panic(err)
	}
	fmt.Printf("replicated mass on B: %v\n", mass)
	fmt.Printf("B's estimate for item 42: %v\n", estimates[0])

	nodeA.Close()
	nodeB.Close()
	// Output:
	// replicated mass on B: 1003
	// B's estimate for item 42: 1000
}
