package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// gossipNode is one daemon of an in-test mesh, served on a real loopback
// listener (ports are bound before the servers are built, so every peer URL
// is known up front — the same order of operations cmd/sketchd uses).
type gossipNode struct {
	srv    *Server
	client *Client
	url    string
}

// startMesh binds n loopback listeners, builds n Servers whose Peers lists
// name every other node, and serves them. Cleanup closes everything.
func startMesh(t *testing.T, n int, cfg Config) []*gossipNode {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*gossipNode, n)
	for i := range nodes {
		nodeCfg := cfg
		nodeCfg.NodeID = fmt.Sprintf("node-%d", i)
		for j, u := range urls {
			if j != i {
				nodeCfg.Peers = append(nodeCfg.Peers, u)
			}
		}
		srv, err := New(nodeCfg)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(listeners[i])
		nodes[i] = &gossipNode{srv: srv, client: NewClient(urls[i], nil), url: urls[i]}
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
		})
	}
	return nodes
}

// waitForMass polls a node until its total mass reaches want (gossip has
// quiesced for this node) or the deadline passes.
func waitForMass(t *testing.T, node *gossipNode, want float64) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(30 * time.Second)
	for {
		stats, err := node.client.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if stats.TotalMass == want {
			return
		}
		if stats.TotalMass > want {
			t.Fatalf("node %s overshot: total mass %v, want %v — deltas double-counted", node.url, stats.TotalMass, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("node %s did not converge: total mass %v, want %v", node.url, stats.TotalMass, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGossipTrioConvergence is the acceptance invariant for delta
// replication: three daemons in a full mesh ingest disjoint thirds of one
// stream, gossip deltas on a timer, and after quiescence every peer answers
// every sampled query exactly like the single-threaded reference sketch —
// deviation 0, proven under -race by the ordinary test run.
func TestGossipTrioConvergence(t *testing.T) {
	cfg := Config{
		Width: 1024, Depth: 4, K: 48, Seed: 19,
		Engine:      engine.Config{Workers: 2, BatchSize: 101},
		Producers:   2,
		GossipEvery: 15 * time.Millisecond,
	}
	nodes := startMesh(t, 3, cfg)
	ctx := context.Background()

	reference := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
	s := stream.Zipf(xrand.New(131), 1<<15, 45_000, 1.1)
	for _, u := range s.Updates {
		reference.Update(u.Item, float64(u.Delta))
	}

	// Node i ingests every third update, in chunks so gossip interleaves
	// with ingestion (deltas ship mid-stream, not just once at the end).
	const chunk = 900
	thirds := make([][]engine.Update, 3)
	for i, u := range s.Updates {
		thirds[i%3] = append(thirds[i%3], engine.Update{Item: u.Item, Delta: float64(u.Delta)})
	}
	for round := 0; round*chunk < len(thirds[0]); round++ {
		for i, node := range nodes {
			own := thirds[i]
			start := round * chunk
			if start >= len(own) {
				continue
			}
			end := min(start+chunk, len(own))
			if err := node.client.Update(ctx, own[start:end]); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, node := range nodes {
		waitForMass(t, node, reference.TotalMass())
	}

	// Every peer, every sampled counter — including the reference's heavy
	// hitters — must equal the single-threaded sketch exactly.
	items := make([]uint64, 0, 1<<11)
	for item := uint64(0); item < 1<<15; item += 19 {
		items = append(items, item)
	}
	for _, ic := range reference.TopK() {
		items = append(items, ic.Item)
	}
	for _, node := range nodes {
		for start := 0; start < len(items); start += 256 {
			end := min(start+256, len(items))
			estimates, err := node.client.Query(ctx, items[start:end]...)
			if err != nil {
				t.Fatal(err)
			}
			for i, item := range items[start:end] {
				if want := reference.Estimate(item); estimates[i] != want {
					t.Fatalf("node %s: estimate(%d) = %v, reference = %v (deviation %v)",
						node.url, item, estimates[i], want, estimates[i]-want)
				}
			}
		}
		stats, err := node.client.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if stats.DeltasApplied == 0 {
			t.Fatalf("node %s converged without applying any deltas — gossip did not run", node.url)
		}
		if len(stats.Watermarks) != 2 {
			t.Fatalf("node %s tracks %d sender watermarks, want 2", node.url, len(stats.Watermarks))
		}
	}
}

// TestGossipDeltaSmallerThanSnapshot: once a mesh has converged, an
// incremental delta frame must be far smaller than the full dense snapshot —
// the bytes argument for delta shipping, measured over real HTTP.
func TestGossipDeltaSmallerThanSnapshot(t *testing.T) {
	cfg := Config{
		Width: 4096, Depth: 4, K: 32, Seed: 23,
		GossipEvery: 10 * time.Millisecond,
	}
	nodes := startMesh(t, 2, cfg)
	ctx := context.Background()

	// A broad first wave touches many counters; the tail touches few.
	wave := make([]engine.Update, 0, 20_000)
	for i := 0; i < 20_000; i++ {
		wave = append(wave, engine.Update{Item: uint64(i % 3800), Delta: 1})
	}
	if err := nodes[0].client.Update(ctx, wave); err != nil {
		t.Fatal(err)
	}
	waitForMass(t, nodes[1], 20_000)

	before, err := nodes[0].client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tail := []engine.Update{{Item: 1, Delta: 5}, {Item: 2, Delta: 7}}
	if err := nodes[0].client.Update(ctx, tail); err != nil {
		t.Fatal(err)
	}
	waitForMass(t, nodes[1], 20_012)
	after, err := nodes[0].client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}

	snapshot, err := nodes[0].client.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	deltaBytes := after.Peers[0].BytesShipped - before.Peers[0].BytesShipped
	if deltaBytes <= 0 {
		t.Fatal("no delta frames shipped for the tail updates")
	}
	if deltaBytes >= int64(len(snapshot))/4 {
		t.Fatalf("incremental delta shipped %d bytes; full snapshot is %d — expected > 4x saving", deltaBytes, len(snapshot))
	}
}

// TestGossipSenderRestartResync: a daemon that restarts (same -node-id,
// fresh generation counter) must not have its post-restart deltas swallowed
// as duplicates by a peer whose watermark remembers the previous
// incarnation. The sender detects the stale watermark, resets it to zero,
// and re-ships its post-restart local mass — nothing lost, and the
// pre-restart mass the peer already holds is not double-counted.
func TestGossipSenderRestartResync(t *testing.T) {
	ctx := context.Background()
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 29}

	// The durable peer B, no peers of its own.
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urlB := "http://" + lnB.Addr().String()
	nodeB, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hsB := &http.Server{Handler: nodeB.Handler()}
	go hsB.Serve(lnB)
	t.Cleanup(func() { hsB.Close(); nodeB.Close() })
	clientB := NewClient(urlB, nil)

	startA := func() (*Server, *Client, func()) {
		cfgA := cfg
		cfgA.NodeID = "node-a" // same identity across both incarnations
		cfgA.Peers = []string{urlB}
		cfgA.GossipEvery = 10 * time.Millisecond
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(cfgA)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		return srv, NewClient("http://"+ln.Addr().String(), nil), func() { hs.Close(); srv.Close() }
	}

	// First incarnation ships 100 mass on item 1, then dies.
	srvA1, clientA1, stopA1 := startA()
	if err := clientA1.Update(ctx, []engine.Update{{Item: 1, Delta: 100}}); err != nil {
		t.Fatal(err)
	}
	waitForMass(t, &gossipNode{client: clientB, url: urlB}, 100)
	_ = srvA1
	stopA1()

	// Second incarnation (fresh state, same node id) ingests new mass. Its
	// generation counter restarted, so without the resync its frames would
	// be acked as duplicates and the 50 would never reach B.
	_, clientA2, stopA2 := startA()
	defer stopA2()
	if err := clientA2.Update(ctx, []engine.Update{{Item: 2, Delta: 50}}); err != nil {
		t.Fatal(err)
	}
	waitForMass(t, &gossipNode{client: clientB, url: urlB}, 150)

	// B holds exactly one copy of each incarnation's mass.
	estimates, err := clientB.Query(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if estimates[0] != 100 || estimates[1] != 50 {
		t.Fatalf("B's estimates after sender restart: item1=%v item2=%v, want 100 and 50", estimates[0], estimates[1])
	}
}

// pushDeltaBytes posts raw bytes at /v1/delta and returns status and body.
func pushDeltaBytes(t *testing.T, client *Client, body []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(client.base+"/v1/delta", contentTypeDelta, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

// deltaPayloadFor marshals a sketch and wraps it in the KindDelta envelope,
// the shape /v1/delta expects inside a frame.
func deltaPayloadFor(t *testing.T, sk interface{ MarshalBinary() ([]byte, error) }) []byte {
	t.Helper()
	data, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return sketch.EncodeDelta(data)
}

// TestDeltaRejectsBadPayloads: every malformed or incompatible /v1/delta
// body must come back 4xx with a useful message and leave the counters
// untouched — truncated frames, foreign seeds, mismatched dimensions, junk
// envelopes and stale watermarks alike.
func TestDeltaRejectsBadPayloads(t *testing.T) {
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 3}
	_, client := testDaemon(t, cfg)
	ctx := context.Background()

	// Seed the daemon with known mass so "counters untouched" is checkable.
	if err := client.Update(ctx, []engine.Update{{Item: 9, Delta: 4}}); err != nil {
		t.Fatal(err)
	}

	goodDelta := func() []byte {
		cm := sketch.NewCountMin(xrand.New(cfg.Seed), cfg.Width, cfg.Depth)
		cm.Update(1, 1)
		return deltaPayloadFor(t, cm)
	}()
	frame := func(f DeltaFrame) []byte { return AppendDeltaFrame(nil, f) }
	okFrame := frame(DeltaFrame{Sender: "peer", FromGen: 0, ToGen: 5, Payload: goodDelta})

	cases := []struct {
		name       string
		body       []byte
		wantStatus int
		wantWord   string
	}{
		{"empty body", nil, http.StatusBadRequest, "truncated delta frame"},
		{"garbage", []byte("hello sketchd"), http.StatusBadRequest, "magic"},
		{"truncated frame", okFrame[:len(okFrame)-7], http.StatusBadRequest, "claims"},
		{"truncated header", okFrame[:6], http.StatusBadRequest, "truncated"},
		{"empty sender", frame(DeltaFrame{Sender: "", FromGen: 0, ToGen: 5, Payload: goodDelta}), http.StatusBadRequest, "sender"},
		{"backwards generations", frame(DeltaFrame{Sender: "peer", FromGen: 9, ToGen: 5, Payload: goodDelta}), http.StatusBadRequest, "backwards"},
		{"missing payload", frame(DeltaFrame{Sender: "peer", FromGen: 0, ToGen: 5}), http.StatusBadRequest, "no payload"},
		{"payload not an envelope", frame(DeltaFrame{Sender: "peer", FromGen: 0, ToGen: 5,
			Payload: []byte("not a delta envelope")}), http.StatusBadRequest, "magic"},
		{"foreign seed", frame(DeltaFrame{Sender: "peer", FromGen: 0, ToGen: 5,
			Payload: deltaPayloadFor(t, sketch.NewCountMin(xrand.New(cfg.Seed+1), cfg.Width, cfg.Depth))}),
			http.StatusBadRequest, "hash mismatch"},
		{"mismatched dims", frame(DeltaFrame{Sender: "peer", FromGen: 0, ToGen: 5,
			Payload: deltaPayloadFor(t, sketch.NewCountMin(xrand.New(cfg.Seed), 64, 2))}),
			http.StatusBadRequest, "dimension mismatch"},
		{"wrong inner kind", frame(DeltaFrame{Sender: "peer", FromGen: 0, ToGen: 5,
			Payload: deltaPayloadFor(t, sketch.NewBloomFilter(xrand.New(1), 256, 3))}),
			http.StatusBadRequest, "cannot merge"},
	}
	for _, tc := range cases {
		status, body := pushDeltaBytes(t, client, tc.body)
		if status != tc.wantStatus {
			t.Errorf("%s: HTTP %d, want %d (body %q)", tc.name, status, tc.wantStatus, body)
		}
		if !strings.Contains(body, tc.wantWord) {
			t.Errorf("%s: error %q does not mention %q", tc.name, body, tc.wantWord)
		}
	}

	// Counters untouched by all of the above.
	stats, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMass != 4 {
		t.Fatalf("total mass %v after rejected deltas, want 4 (counters were touched)", stats.TotalMass)
	}
	if stats.DeltasApplied != 0 {
		t.Fatalf("%d deltas recorded as applied", stats.DeltasApplied)
	}

	// The watermark protocol itself: apply, retry idempotently, reject a gap.
	resp, err := client.PushDelta(ctx, DeltaFrame{Sender: "peer", FromGen: 0, ToGen: 5, Payload: goodDelta})
	if err != nil || !resp.Applied || resp.Watermark != 5 {
		t.Fatalf("first frame: resp %+v, err %v; want applied at watermark 5", resp, err)
	}
	resp, err = client.PushDelta(ctx, DeltaFrame{Sender: "peer", FromGen: 0, ToGen: 5, Payload: goodDelta})
	if err != nil || resp.Applied || resp.Watermark != 5 {
		t.Fatalf("retried frame: resp %+v, err %v; want idempotent no-op at watermark 5", resp, err)
	}
	_, err = client.PushDelta(ctx, DeltaFrame{Sender: "peer", FromGen: 3, ToGen: 9, Payload: goodDelta})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusConflict {
		t.Fatalf("gapped frame: err %v, want HTTP 409", err)
	}
	if !strings.Contains(apiErr.Message, "watermark") {
		t.Fatalf("409 message %q does not mention the watermark", apiErr.Message)
	}

	// Exactly one application of the 1-mass delta plus the original 4.
	stats, err = client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMass != 5 {
		t.Fatalf("total mass %v, want 5 (the frame must apply exactly once)", stats.TotalMass)
	}
	if stats.DeltasApplied != 1 || stats.DeltasDuplicate != 1 || stats.DeltasRejected < int64(len(cases))+1 {
		t.Fatalf("delta counters off: %+v", stats)
	}
	if stats.Watermarks["peer"] != 5 {
		t.Fatalf("watermark for peer = %d, want 5", stats.Watermarks["peer"])
	}

	// A reset frame re-aligns the watermark without touching counters.
	resp, err = client.PushDelta(ctx, DeltaFrame{Sender: "peer", FromGen: 42, ToGen: 42, Reset: true})
	if err != nil || resp.Applied || resp.Watermark != 42 {
		t.Fatalf("reset frame: resp %+v, err %v; want watermark 42, nothing applied", resp, err)
	}
	stats, err = client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.TotalMass != 5 {
		t.Fatalf("total mass %v after reset frame, want 5", stats.TotalMass)
	}
}

// TestDeltaFrameRoundTrip: the frame codec in isolation.
func TestDeltaFrameRoundTrip(t *testing.T) {
	in := DeltaFrame{Sender: "node-a", FromGen: 7, ToGen: 19, Payload: []byte{1, 2, 3}}
	out, err := DecodeDeltaFrame(AppendDeltaFrame(nil, in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Sender != in.Sender || out.FromGen != in.FromGen || out.ToGen != in.ToGen ||
		out.Reset != in.Reset || !bytes.Equal(out.Payload, in.Payload) {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
	reset := DeltaFrame{Sender: "node-a", FromGen: 19, ToGen: 19, Reset: true}
	out, err = DecodeDeltaFrame(AppendDeltaFrame(nil, reset))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reset || out.ToGen != 19 || len(out.Payload) != 0 {
		t.Fatalf("reset round trip: %+v", out)
	}
}

// TestGossipWatermarkPersistence: a receiver persists its per-sender
// watermarks beside the snapshot and reloads them on restart, so a sender
// can continue its delta sequence where it left off — no 409, no reset
// resync, no double-counting when it retries the last pre-restart frame.
func TestGossipWatermarkPersistence(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 6, SnapshotDir: dir}
	ctx := context.Background()

	mkDelta := func(item uint64, mass float64) []byte {
		sk := sketch.NewHeavyHitterTracker(xrand.New(cfg.Seed), cfg.Width, cfg.Depth, cfg.K)
		sk.Update(item, mass)
		return deltaPayloadFor(t, sk)
	}

	srv1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1.Handler())
	client1 := NewClient(hs1.URL, hs1.Client())
	resp, err := client1.PushDelta(ctx, DeltaFrame{Sender: "origin", FromGen: 0, ToGen: 5, Payload: mkDelta(1, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Applied || resp.Watermark != 5 {
		t.Fatalf("first frame: %+v, want applied with watermark 5", resp)
	}
	hs1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, WatermarkFileName)); err != nil {
		t.Fatalf("watermark file not persisted: %v", err)
	}

	// Restart from the same directory: the watermark must come back with the
	// counters.
	srv2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	defer hs2.Close()
	defer srv2.Close()
	client2 := NewClient(hs2.URL, hs2.Client())

	stats, err := client2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Watermarks["origin"] != 5 {
		t.Fatalf("restarted watermark for origin = %d, want 5", stats.Watermarks["origin"])
	}

	// A retry of the pre-restart frame is absorbed idempotently...
	resp, err = client2.PushDelta(ctx, DeltaFrame{Sender: "origin", FromGen: 0, ToGen: 5, Payload: mkDelta(1, 100)})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Applied {
		t.Fatal("pre-restart frame was re-applied after restart (double-count)")
	}
	// ...and the next frame in sequence applies with no 409 resync.
	resp, err = client2.PushDelta(ctx, DeltaFrame{Sender: "origin", FromGen: 5, ToGen: 9, Payload: mkDelta(2, 50)})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Applied || resp.Watermark != 9 {
		t.Fatalf("post-restart frame: %+v, want applied with watermark 9", resp)
	}

	estimates, err := client2.Query(ctx, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if estimates[0] != 100 || estimates[1] != 50 {
		t.Fatalf("estimates after restart: item1=%v item2=%v, want 100 and 50", estimates[0], estimates[1])
	}
}

// TestWatermarksIgnoredWithoutSnapshot: stale watermarks next to a missing
// snapshot must not be loaded — a blank daemon that trusted them would
// silently skip every delta below the stale marks.
func TestWatermarksIgnoredWithoutSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Width: 512, Depth: 4, K: 16, Seed: 6, SnapshotDir: dir}
	if err := os.WriteFile(filepath.Join(dir, WatermarkFileName), []byte(`{"origin":5}`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, client := testDaemon(t, cfg)
	_ = srv
	stats, err := client.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Watermarks) != 0 {
		t.Fatalf("blank daemon loaded stale watermarks: %v", stats.Watermarks)
	}
}
