package sketch

import (
	"fmt"

	"repro/internal/stream"
)

// MisraGries is the deterministic frequent-items algorithm: it keeps at most
// k counters; when a new item arrives and all counters are occupied, every
// counter is decremented. Any item with true frequency above N/(k+1) is
// guaranteed to be present at the end, and each reported count underestimates
// the true count by at most N/(k+1).
//
// It serves as the deterministic, insertion-only baseline the randomized
// sketches are compared against in experiment E1/E2.
type MisraGries struct {
	k        int
	counters map[uint64]int64
	total    int64
}

// NewMisraGries creates a Misra-Gries summary with k counters.
func NewMisraGries(k int) *MisraGries {
	if k < 1 {
		panic("sketch: NewMisraGries requires k >= 1")
	}
	return &MisraGries{k: k, counters: make(map[uint64]int64, k+1)}
}

// Update processes one occurrence of item. Only +1 updates are supported
// (the algorithm is defined for insertion-only streams); count must be >= 1
// and is applied as `count` repetitions collapsed into counter arithmetic.
func (mg *MisraGries) Update(item uint64, count int64) {
	if count < 1 {
		panic("sketch: MisraGries.Update requires count >= 1")
	}
	mg.total += count
	if c, ok := mg.counters[item]; ok {
		mg.counters[item] = c + count
		return
	}
	if len(mg.counters) < mg.k {
		mg.counters[item] = count
		return
	}
	// Decrement all counters by the largest amount that keeps them >= 0 and
	// consumes the incoming count, i.e. min(count, min counter value).
	dec := count
	for _, c := range mg.counters {
		if c < dec {
			dec = c
		}
	}
	if dec > 0 {
		for it, c := range mg.counters {
			if c-dec == 0 {
				delete(mg.counters, it)
			} else {
				mg.counters[it] = c - dec
			}
		}
	}
	remaining := count - dec
	if remaining > 0 {
		// After decrementing, there is room (at least one counter was removed)
		// unless dec was limited by count itself (remaining == 0).
		if len(mg.counters) < mg.k {
			mg.counters[item] = remaining
		}
	}
}

// Estimate returns the (under)estimate of the item's count; 0 if untracked.
func (mg *MisraGries) Estimate(item uint64) int64 { return mg.counters[item] }

// Size returns the number of counters currently held.
func (mg *MisraGries) Size() int { return len(mg.counters) }

// Capacity returns k, the maximum number of counters.
func (mg *MisraGries) Capacity() int { return mg.k }

// Candidates returns all currently tracked items with their counter values,
// sorted by decreasing counter.
func (mg *MisraGries) Candidates() []stream.ItemCount {
	out := make([]stream.ItemCount, 0, len(mg.counters))
	for item, c := range mg.counters {
		out = append(out, stream.ItemCount{Item: item, Count: c})
	}
	stream.SortItemCounts(out)
	return out
}

// HeavyHitters returns tracked items whose counter is at least
// phi*total - total/(k+1), the standard certified threshold.
func (mg *MisraGries) HeavyHitters(phi float64) []stream.ItemCount {
	threshold := phi*float64(mg.total) - float64(mg.total)/float64(mg.k+1)
	var out []stream.ItemCount
	for item, c := range mg.counters {
		if float64(c) >= threshold {
			out = append(out, stream.ItemCount{Item: item, Count: c})
		}
	}
	stream.SortItemCounts(out)
	return out
}

// SpaceSaving is the Metwally-Agrawal-El Abbadi frequent-items algorithm: it
// keeps exactly k counters; a new item replaces the current minimum counter
// and inherits its value (plus one). Reported counts overestimate the truth
// by at most the value of the minimum counter.
type SpaceSaving struct {
	k        int
	counters map[uint64]int64
	errors   map[uint64]int64
	total    int64
}

// NewSpaceSaving creates a SpaceSaving summary with k counters.
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		panic("sketch: NewSpaceSaving requires k >= 1")
	}
	return &SpaceSaving{
		k:        k,
		counters: make(map[uint64]int64, k),
		errors:   make(map[uint64]int64, k),
	}
}

// Update processes `count` occurrences of item (count >= 1).
func (ss *SpaceSaving) Update(item uint64, count int64) {
	if count < 1 {
		panic("sketch: SpaceSaving.Update requires count >= 1")
	}
	ss.total += count
	if c, ok := ss.counters[item]; ok {
		ss.counters[item] = c + count
		return
	}
	if len(ss.counters) < ss.k {
		ss.counters[item] = count
		ss.errors[item] = 0
		return
	}
	// Evict the minimum counter.
	var minItem uint64
	minVal := int64(-1)
	for it, c := range ss.counters {
		if minVal < 0 || c < minVal || (c == minVal && it < minItem) {
			minItem, minVal = it, c
		}
	}
	delete(ss.counters, minItem)
	delete(ss.errors, minItem)
	ss.counters[item] = minVal + count
	ss.errors[item] = minVal
}

// Estimate returns the (over)estimate of the item's count; 0 if untracked.
func (ss *SpaceSaving) Estimate(item uint64) int64 { return ss.counters[item] }

// GuaranteedCount returns a certified lower bound: estimate minus the
// eviction error recorded for the item.
func (ss *SpaceSaving) GuaranteedCount(item uint64) int64 {
	return ss.counters[item] - ss.errors[item]
}

// Size returns the number of counters currently held.
func (ss *SpaceSaving) Size() int { return len(ss.counters) }

// Candidates returns all tracked items sorted by decreasing estimate.
func (ss *SpaceSaving) Candidates() []stream.ItemCount {
	out := make([]stream.ItemCount, 0, len(ss.counters))
	for item, c := range ss.counters {
		out = append(out, stream.ItemCount{Item: item, Count: c})
	}
	stream.SortItemCounts(out)
	return out
}

// HeavyHitters returns the tracked items whose estimate reaches phi*total.
func (ss *SpaceSaving) HeavyHitters(phi float64) []stream.ItemCount {
	threshold := phi * float64(ss.total)
	var out []stream.ItemCount
	for item, c := range ss.counters {
		if float64(c) >= threshold {
			out = append(out, stream.ItemCount{Item: item, Count: c})
		}
	}
	stream.SortItemCounts(out)
	return out
}

// String describes the summary briefly (for logs and demos).
func (ss *SpaceSaving) String() string {
	return fmt.Sprintf("SpaceSaving(k=%d, tracked=%d, total=%d)", ss.k, len(ss.counters), ss.total)
}
