package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stream"
	"repro/internal/xrand"
)

func TestCountMinNeverUnderestimates(t *testing.T) {
	r := xrand.New(1)
	cm := NewCountMin(r, 256, 4)
	s := stream.Zipf(r, 10000, 50000, 1.1)
	exact := stream.NewExactCounter()
	for _, u := range s.Updates {
		cm.Update(u.Item, float64(u.Delta))
		exact.Update(u.Item, u.Delta)
	}
	for _, ic := range exact.TopK(200) {
		if est := cm.Estimate(ic.Item); est < float64(ic.Count)-1e-9 {
			t.Fatalf("CountMin underestimated item %d: %v < %d", ic.Item, est, ic.Count)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	// With width w, the expected overestimate per row is N/w; the min over
	// depth rows should keep most items within about 3*e*N/w.
	r := xrand.New(2)
	const width, depth = 512, 5
	cm := NewCountMin(r, width, depth)
	s := stream.Zipf(r, 100000, 100000, 1.05)
	exact := stream.NewExactCounter()
	for _, u := range s.Updates {
		cm.Update(u.Item, float64(u.Delta))
		exact.Update(u.Item, u.Delta)
	}
	n := float64(exact.Total())
	bound := 3 * math.E * n / width
	bad := 0
	checked := 0
	for _, ic := range exact.TopK(500) {
		checked++
		if cm.Estimate(ic.Item)-float64(ic.Count) > bound {
			bad++
		}
	}
	if bad > checked/20 {
		t.Errorf("CountMin exceeded error bound for %d/%d items", bad, checked)
	}
}

func TestCountMinExactWhenNoCollisions(t *testing.T) {
	// With far more counters than distinct items, estimates should usually
	// be exact; at the very least they equal the exact count for every item
	// when each item lands in a private bucket in at least one row.
	r := xrand.New(3)
	cm := NewCountMin(r, 4096, 6)
	exact := map[uint64]float64{}
	for i := uint64(0); i < 20; i++ {
		delta := float64(i + 1)
		cm.Update(i, delta)
		exact[i] += delta
	}
	for item, want := range exact {
		if got := cm.Estimate(item); math.Abs(got-want) > 1e-9 {
			t.Errorf("item %d: estimate %v, want %v", item, got, want)
		}
	}
}

func TestCountMinWithErrorSizing(t *testing.T) {
	cm := NewCountMinWithError(xrand.New(1), 0.01, 0.05)
	if float64(cm.Width()) < math.E/0.01-1 {
		t.Errorf("width %d too small for eps=0.01", cm.Width())
	}
	if cm.Depth() < 3 {
		t.Errorf("depth %d too small for delta=0.05", cm.Depth())
	}
	if cm.Size() != cm.Width()*cm.Depth() {
		t.Errorf("Size() inconsistent")
	}
}

func TestCountMinPanics(t *testing.T) {
	r := xrand.New(1)
	cases := []func(){
		func() { NewCountMin(r, 0, 1) },
		func() { NewCountMin(r, 1, 0) },
		func() { NewCountMinWithError(r, 0, 0.1) },
		func() { NewCountMinWithError(r, 0.1, 1.5) },
		func() { NewCountMin(r, 8, 2, WithConservativeUpdate()).Update(1, -1) },
		func() { NewCountMin(r, 8, 2).RowBucket(5, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCountMinTurnstileDeletions(t *testing.T) {
	r := xrand.New(5)
	cm := NewCountMin(r, 512, 5)
	s, residual := stream.Turnstile(r, 5000, 100, 20)
	for _, u := range s.Updates {
		cm.Update(u.Item, float64(u.Delta))
	}
	// For the turnstile model CM estimates the residual count (still an
	// overestimate in expectation for non-negative residual vectors).
	for item, want := range residual {
		if est := cm.Estimate(item); est < float64(want)-1e-9 {
			t.Errorf("turnstile CM underestimated item %d: %v < %d", item, est, want)
		}
	}
}

func TestConservativeUpdateNotWorse(t *testing.T) {
	r := xrand.New(7)
	seedHashes := xrand.New(99)
	plain := NewCountMin(seedHashes, 128, 4)
	seedHashes = xrand.New(99)
	cons := NewCountMin(seedHashes, 128, 4, WithConservativeUpdate())
	s := stream.Zipf(r, 5000, 30000, 1.0)
	exact := stream.NewExactCounter()
	for _, u := range s.Updates {
		plain.Update(u.Item, float64(u.Delta))
		cons.Update(u.Item, float64(u.Delta))
		exact.Update(u.Item, u.Delta)
	}
	var plainErr, consErr float64
	for _, ic := range exact.TopK(300) {
		plainErr += plain.Estimate(ic.Item) - float64(ic.Count)
		consErr += cons.Estimate(ic.Item) - float64(ic.Count)
		// Conservative update must still never underestimate.
		if cons.Estimate(ic.Item) < float64(ic.Count)-1e-9 {
			t.Fatalf("conservative CM underestimated item %d", ic.Item)
		}
	}
	if consErr > plainErr+1e-9 {
		t.Errorf("conservative update error %.1f worse than plain %.1f", consErr, plainErr)
	}
}

func TestCountMinMergeEqualsSingleSketch(t *testing.T) {
	r := xrand.New(9)
	base := NewCountMin(r, 256, 4)
	part1 := base.Clone()
	part2 := base.Clone()
	s := stream.Zipf(r, 2000, 20000, 1.1)
	for i, u := range s.Updates {
		base.Update(u.Item, float64(u.Delta))
		if i%2 == 0 {
			part1.Update(u.Item, float64(u.Delta))
		} else {
			part2.Update(u.Item, float64(u.Delta))
		}
	}
	if err := part1.Merge(part2); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	for item := uint64(0); item < 2000; item += 37 {
		if math.Abs(part1.Estimate(item)-base.Estimate(item)) > 1e-9 {
			t.Fatalf("merged estimate differs from single-sketch estimate for item %d", item)
		}
	}
	if math.Abs(part1.TotalMass()-base.TotalMass()) > 1e-9 {
		t.Errorf("merged total mass %v != %v", part1.TotalMass(), base.TotalMass())
	}
}

func TestCountMinMergeErrors(t *testing.T) {
	r := xrand.New(1)
	a := NewCountMin(r, 16, 2)
	b := NewCountMin(r, 32, 2)
	if err := a.Merge(b); err == nil {
		t.Error("merging different dimensions should fail")
	}
	c := NewCountMin(r, 16, 2, WithConservativeUpdate())
	if err := c.Merge(c.Clone()); err == nil {
		t.Error("merging conservative sketches should fail")
	}
	if _, err := a.InnerProduct(b); err == nil {
		t.Error("inner product with different dimensions should fail")
	}
}

func TestCountMinInnerProduct(t *testing.T) {
	r := xrand.New(11)
	a := NewCountMin(r, 1024, 5)
	b := a.Clone()
	// Two small known vectors.
	xa := map[uint64]float64{1: 10, 2: 5, 3: 1}
	xb := map[uint64]float64{1: 2, 3: 4, 9: 7}
	for item, v := range xa {
		a.Update(item, v)
	}
	for item, v := range xb {
		b.Update(item, v)
	}
	got, err := a.InnerProduct(b)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0*2 + 1.0*4 // items 1 and 3 overlap
	// Inner product via CM overestimates; with this much slack it should be close.
	if got < want-1e-9 || got > want+5 {
		t.Errorf("InnerProduct = %v, want about %v", got, want)
	}
}

// Property: Count-Min is linear — updating with delta1 then delta2 equals a
// single update of delta1+delta2, for every counter.
func TestCountMinLinearityProperty(t *testing.T) {
	r := xrand.New(13)
	base := NewCountMin(r, 64, 3)
	f := func(item uint64, d1, d2 int16) bool {
		a := base.Clone()
		a.Update(item, float64(d1))
		a.Update(item, float64(d2))
		b := base.Clone()
		b.Update(item, float64(d1)+float64(d2))
		ca, cb := a.Counters(), b.Counters()
		for row := range ca {
			for j := range ca[row] {
				if math.Abs(ca[row][j]-cb[row][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCountMinFamilyOption(t *testing.T) {
	r := xrand.New(15)
	cm := NewCountMin(r, 64, 3, WithCountMinHashFamily(0))
	cm.Update(7, 3)
	if cm.Estimate(7) < 3 {
		t.Error("estimate after update too small")
	}
}

func BenchmarkCountMinUpdate(b *testing.B) {
	cm := NewCountMin(xrand.New(1), 2048, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Update(uint64(i), 1)
	}
}

func BenchmarkCountMinEstimate(b *testing.B) {
	cm := NewCountMin(xrand.New(1), 2048, 4)
	for i := 0; i < 100000; i++ {
		cm.Update(uint64(i%1000), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Estimate(uint64(i % 1000))
	}
}
