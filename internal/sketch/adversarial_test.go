package sketch

import (
	"testing"

	"repro/internal/stream"
	"repro/internal/xrand"
)

// Failure-injection tests: structured and adversarial inputs that defeat
// naive hashing or naive counters must not break the guarantees.

func TestCountMinOnAdversarialStream(t *testing.T) {
	r := xrand.New(1)
	s, heavy := stream.Adversarial(r, 100000, 200000)
	cm := NewCountMin(xrand.New(2), 2048, 5)
	exact := stream.NewExactCounter()
	for _, u := range s.Updates {
		cm.Update(u.Item, float64(u.Delta))
		exact.Update(u.Item, u.Delta)
	}
	// One-sided error must survive consecutive-integer keys.
	for item := uint64(0); item < 2000; item += 13 {
		if cm.Estimate(item) < float64(exact.Count(item))-1e-9 {
			t.Fatalf("underestimate on adversarial stream for item %d", item)
		}
	}
	// The planted heavy item must dominate every sampled light item.
	heavyEst := cm.Estimate(heavy)
	for item := uint64(0); item < 100; item++ {
		if item == heavy {
			continue
		}
		if cm.Estimate(item) > heavyEst {
			t.Fatalf("light item %d estimated above the heavy item", item)
		}
	}
}

func TestTrackerOnAdversarialStream(t *testing.T) {
	r := xrand.New(3)
	s, heavy := stream.Adversarial(r, 100000, 100000)
	tr := NewHeavyHitterTracker(xrand.New(4), 2048, 4, 10)
	for _, u := range s.Updates {
		tr.Update(u.Item, float64(u.Delta))
	}
	top := tr.TopK()
	if len(top) == 0 || top[0].Item != heavy {
		t.Fatalf("tracker top item %v, want %d", top, heavy)
	}
}

func TestMisraGriesDuplicateHeavyStream(t *testing.T) {
	// A stream that is one item repeated many times with sparse background
	// noise: the single counter assigned to the heavy item must never be
	// evicted.
	mg := NewMisraGries(4)
	for i := 0; i < 10000; i++ {
		mg.Update(7, 1)
		if i%10 == 0 {
			mg.Update(uint64(1000+i), 1)
		}
	}
	if est := mg.Estimate(7); est < 8000 {
		t.Fatalf("Misra-Gries lost the dominant item: estimate %d", est)
	}
}

func TestSpectralBloomAdversarialKeys(t *testing.T) {
	// Consecutive keys with identical low bits stress weak hash mixing.
	r := xrand.New(5)
	sb := NewSpectralBloom(r, 1<<14, 4)
	exact := map[uint64]float64{}
	for i := uint64(0); i < 5000; i++ {
		key := i << 32 // all the entropy in the high bits
		sb.Add(key, 1)
		exact[key]++
	}
	for key, want := range exact {
		if got := sb.Estimate(key); got < want {
			t.Fatalf("underestimate for high-bit key %d", key)
		}
	}
}

func TestIBLTAdversarialInterleaving(t *testing.T) {
	// Insertions and deletions interleaved in the worst order (delete before
	// the matching insert) must still cancel exactly.
	r := xrand.New(6)
	table := NewIBLT(r, 128, 4)
	for i := uint64(0); i < 1000; i++ {
		table.Delete(i)
	}
	for i := uint64(0); i < 1000; i++ {
		table.Insert(i)
	}
	for i := uint64(0); i < 30; i++ {
		table.Insert(5000 + i)
	}
	got, err := table.ListEntries()
	if err != nil {
		t.Fatalf("decode failed: %v", err)
	}
	if len(got) != 30 {
		t.Fatalf("expected 30 surviving keys, got %d", len(got))
	}
}
