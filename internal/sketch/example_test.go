package sketch_test

import (
	"fmt"

	"repro/internal/sketch"
	"repro/internal/xrand"
)

// ExampleCountMin shows the basic single-pass frequency estimation workflow.
func ExampleCountMin() {
	r := xrand.New(1)
	cm := sketch.NewCountMin(r, 1024, 4)

	// One pass over the stream: item 42 occurs 1000 times, others once.
	cm.Update(42, 1000)
	for i := uint64(0); i < 500; i++ {
		cm.Update(100+i, 1)
	}

	fmt.Printf("item 42 >= 1000: %v\n", cm.Estimate(42) >= 1000)
	fmt.Printf("absent item small: %v\n", cm.Estimate(9999) <= 5)
	// Output:
	// item 42 >= 1000: true
	// absent item small: true
}

// ExampleCountMin_MarshalBinary shows the serialization round trip that
// lets sketch shards live in different processes: the hash seeds ride along
// with the counters, so the reconstruction answers every query identically
// and merges exactly with its siblings.
func ExampleCountMin_MarshalBinary() {
	r := xrand.New(1)
	cm := sketch.NewCountMin(r, 1024, 4)
	cm.Update(42, 1000)
	cm.Update(7, 25)

	// Ship the sketch across a process boundary (a file, a socket, an HTTP
	// response) as versioned bytes...
	data, _ := cm.MarshalBinary()

	// ...and reconstruct it on the other side.
	var back sketch.CountMin
	if err := back.UnmarshalBinary(data); err != nil {
		panic(err)
	}
	fmt.Printf("estimates survive: %v\n", back.Estimate(42) == cm.Estimate(42))

	// The reconstruction even merges with clones of the original, because it
	// rebuilt the very same hash functions from the serialized seed.
	shard := cm.Clone()
	shard.Update(42, 500)
	if err := back.Merge(shard); err != nil {
		panic(err)
	}
	fmt.Printf("merged estimate >= 1500: %v\n", back.Estimate(42) >= 1500)
	// Output:
	// estimates survive: true
	// merged estimate >= 1500: true
}

// ExampleCountMin_Sub shows the delta math behind sketchd's gossip
// replication: sketches are linear, so the difference of two snapshots of
// one growing sketch is itself a valid sketch — of exactly the updates that
// arrived between them — and a peer that already holds the first snapshot
// only needs the (mostly-zero, cheaply compressible) difference to catch up.
func ExampleCountMin_Sub() {
	cm := sketch.NewCountMin(xrand.New(1), 1024, 4)
	cm.Update(42, 1000)

	// Snapshot the sketch, then keep ingesting.
	shipped := cm.Copy()
	cm.Update(42, 500)
	cm.Update(7, 3)

	// delta = current - shipped: the sketch of just the two new updates.
	delta := cm.Copy()
	if err := delta.Sub(shipped); err != nil {
		panic(err)
	}
	fmt.Printf("delta mass: %v\n", delta.TotalMass())
	fmt.Printf("delta sees only the tail: %v\n", delta.Estimate(42) == 500)

	// A peer holding the shipped snapshot folds the delta in with the
	// ordinary linear merge and lands exactly on the current state.
	if err := shipped.Merge(delta); err != nil {
		panic(err)
	}
	fmt.Printf("peer caught up: %v\n", shipped.Estimate(42) == cm.Estimate(42))
	// Output:
	// delta mass: 503
	// delta sees only the tail: true
	// peer caught up: true
}

// ExampleIBLT shows exact set reconciliation via an invertible sketch.
func ExampleIBLT() {
	r := xrand.New(2)
	table := sketch.NewIBLT(r, 64, 4)

	// Replica A inserts its keys, replica B deletes its own; what remains is
	// the symmetric difference.
	for _, k := range []uint64{1, 2, 3, 4, 5} {
		table.Insert(k)
	}
	for _, k := range []uint64{3, 4, 5, 6} {
		table.Delete(k)
	}

	diff, err := table.ListEntries()
	fmt.Println("decode error:", err)
	fmt.Println("only in A:", diff[1], diff[2])
	fmt.Println("only in B:", diff[6])
	// Output:
	// decode error: <nil>
	// only in A: 1 1
	// only in B: -1
}

// ExampleMisraGries shows the deterministic frequent-items baseline.
func ExampleMisraGries() {
	mg := sketch.NewMisraGries(2)
	for i := 0; i < 60; i++ {
		mg.Update(7, 1)
	}
	for i := 0; i < 30; i++ {
		mg.Update(8, 1)
	}
	for i := uint64(0); i < 10; i++ {
		mg.Update(100+i, 1)
	}
	top := mg.Candidates()
	fmt.Println("tracked items:", len(top))
	fmt.Println("most frequent:", top[0].Item)
	// Output:
	// tracked items: 2
	// most frequent: 7
}
