package sketch_test

import (
	"fmt"

	"repro/internal/sketch"
	"repro/internal/xrand"
)

// ExampleCountMin shows the basic single-pass frequency estimation workflow.
func ExampleCountMin() {
	r := xrand.New(1)
	cm := sketch.NewCountMin(r, 1024, 4)

	// One pass over the stream: item 42 occurs 1000 times, others once.
	cm.Update(42, 1000)
	for i := uint64(0); i < 500; i++ {
		cm.Update(100+i, 1)
	}

	fmt.Printf("item 42 >= 1000: %v\n", cm.Estimate(42) >= 1000)
	fmt.Printf("absent item small: %v\n", cm.Estimate(9999) <= 5)
	// Output:
	// item 42 >= 1000: true
	// absent item small: true
}

// ExampleIBLT shows exact set reconciliation via an invertible sketch.
func ExampleIBLT() {
	r := xrand.New(2)
	table := sketch.NewIBLT(r, 64, 4)

	// Replica A inserts its keys, replica B deletes its own; what remains is
	// the symmetric difference.
	for _, k := range []uint64{1, 2, 3, 4, 5} {
		table.Insert(k)
	}
	for _, k := range []uint64{3, 4, 5, 6} {
		table.Delete(k)
	}

	diff, err := table.ListEntries()
	fmt.Println("decode error:", err)
	fmt.Println("only in A:", diff[1], diff[2])
	fmt.Println("only in B:", diff[6])
	// Output:
	// decode error: <nil>
	// only in A: 1 1
	// only in B: -1
}

// ExampleMisraGries shows the deterministic frequent-items baseline.
func ExampleMisraGries() {
	mg := sketch.NewMisraGries(2)
	for i := 0; i < 60; i++ {
		mg.Update(7, 1)
	}
	for i := 0; i < 30; i++ {
		mg.Update(8, 1)
	}
	for i := uint64(0); i < 10; i++ {
		mg.Update(100+i, 1)
	}
	top := mg.Candidates()
	fmt.Println("tracked items:", len(top))
	fmt.Println("most frequent:", top[0].Item)
	// Output:
	// tracked items: 2
	// most frequent: 7
}
