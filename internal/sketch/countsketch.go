package sketch

import (
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/xrand"
)

// CountSketch is the sketch of Charikar, Chen and Farach-Colton [CCF02]:
// like Count-Min it keeps d rows of w counters, but each update is
// multiplied by a pairwise-independent ±1 sign, and the point-query
// estimator is the median over rows of sign-corrected counters.
//
// The signed increments make the estimator unbiased, and its error scales
// with the l2 norm of the residual frequency vector rather than the l1 norm,
// which is why the survey singles it out as the sketch behind compressed
// sensing with sparse matrices [CM06].
//
// Like CountMin, the counters are one flat contiguous array (row r at
// counts[r*width:(r+1)*width]) and UpdateBatch drives each row through the
// batched hash and sign kernels of internal/hashing, bit-identical to the
// per-item path.
type CountSketch struct {
	width  int
	depth  int
	counts []float64 // flat, row-major: row r at counts[r*width:(r+1)*width]
	hashes []hashing.Hasher
	signs  []hashing.SignHasher
	// seed and family fully determine the hash and sign functions (drawn in a
	// fixed order from xrand.New(seed)); see MarshalBinary.
	seed   uint64
	family hashing.Family

	// bucketScratch/signScratch are the reusable per-sketch columns for
	// UpdateBatch (zero allocations steady-state). Writes are single-goroutine
	// like the counters; reads never touch them.
	bucketScratch []uint64
	signScratch   []float64
	// oneKey/oneDelta back the per-item Update, which is a len-1 UpdateBatch.
	oneKey   [1]uint64
	oneDelta [1]float64
	// estScratch backs EstimateBatch (see estimate.go); sketch-owned, single
	// goroutine, zero allocations steady-state. Concurrent readers use
	// EstimateBatchWith with their own scratch.
	estScratch EstimateScratch
}

// CountSketchOption configures a CountSketch at construction time.
type CountSketchOption func(*countSketchConfig)

type countSketchConfig struct {
	family hashing.Family
}

// WithCountSketchHashFamily selects the hash family used for buckets/signs.
func WithCountSketchHashFamily(f hashing.Family) CountSketchOption {
	return func(c *countSketchConfig) { c.family = f }
}

// NewCountSketch creates a Count-Sketch with the given width and depth.
func NewCountSketch(r *xrand.Rand, width, depth int, opts ...CountSketchOption) *CountSketch {
	if width < 1 || depth < 1 {
		panic(fmt.Sprintf("sketch: NewCountSketch requires width, depth >= 1 (got %d, %d)", width, depth))
	}
	cfg := countSketchConfig{family: hashing.FamilyPoly2}
	for _, o := range opts {
		o(&cfg)
	}
	return newCountSketchFromSeed(r.Uint64(), width, depth, cfg.family)
}

// newCountSketchFromSeed builds the sketch deterministically from a hash
// seed; it is shared by NewCountSketch and UnmarshalBinary so that a
// deserialized sketch hashes and signs identically to the original.
func newCountSketchFromSeed(seed uint64, width, depth int, family hashing.Family) *CountSketch {
	hr := xrand.New(seed)
	cs := &CountSketch{
		width:  width,
		depth:  depth,
		counts: make([]float64, width*depth),
		hashes: make([]hashing.Hasher, depth),
		signs:  make([]hashing.SignHasher, depth),
		seed:   seed,
		family: family,
	}
	for i := 0; i < depth; i++ {
		cs.hashes[i] = hashing.NewHasher(family, hr, uint64(width))
		cs.signs[i] = hashing.NewSigner(family, hr)
	}
	return cs
}

// NewCountSketchWithError creates a Count-Sketch sized so that point-query
// error is at most eps*||x||_2 with probability at least 1-delta:
// width = ceil(3/eps^2), depth = ceil(ln(1/delta)) rounded to odd.
func NewCountSketchWithError(r *xrand.Rand, eps, delta float64, opts ...CountSketchOption) *CountSketch {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("sketch: NewCountSketchWithError requires eps, delta in (0,1)")
	}
	width := int(math.Ceil(3 / (eps * eps)))
	depth := int(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	if depth%2 == 0 {
		depth++ // odd depth gives a well-defined median
	}
	return NewCountSketch(r, width, depth, opts...)
}

// Width returns the number of counters per row.
func (cs *CountSketch) Width() int { return cs.width }

// Depth returns the number of rows.
func (cs *CountSketch) Depth() int { return cs.depth }

// Size returns the total number of counters.
func (cs *CountSketch) Size() int { return cs.width * cs.depth }

// row returns the counter slice of one row (a view into the flat array).
func (cs *CountSketch) row(r int) []float64 {
	return cs.counts[r*cs.width : (r+1)*cs.width]
}

func (cs *CountSketch) bucket(row int, item uint64) int {
	return int(cs.hashes[row].Hash(item) % uint64(cs.width))
}

// scratch returns the reusable bucket and sign columns, grown to n entries.
func (cs *CountSketch) scratch(n int) ([]uint64, []float64) {
	if cap(cs.bucketScratch) < n {
		cs.bucketScratch = make([]uint64, n)
		cs.signScratch = make([]float64, n)
	}
	return cs.bucketScratch[:n], cs.signScratch[:n]
}

// Update adds delta to the item's count. Deltas of any sign are supported
// (turnstile model). It is a len-1 UpdateBatch.
func (cs *CountSketch) Update(item uint64, delta float64) {
	cs.oneKey[0] = item
	cs.oneDelta[0] = delta
	cs.UpdateBatch(cs.oneKey[:], cs.oneDelta[:])
}

// UpdateBatch adds deltas[i] to items[i]'s count for every i, equivalent to
// (and bit-identical with) per-item Update calls: each row hashes and signs
// the whole key column through the batched kernels, then scatters the signed
// deltas into that row's contiguous counters. The scratch columns are reused
// across calls, so steady-state ingestion does not allocate. The slices must
// have equal length; the sketch does not retain them.
func (cs *CountSketch) UpdateBatch(items []uint64, deltas []float64) {
	if len(items) != len(deltas) {
		panic(fmt.Sprintf("sketch: CountSketch.UpdateBatch length mismatch (%d items, %d deltas)", len(items), len(deltas)))
	}
	if len(items) == 0 {
		return
	}
	buckets, signs := cs.scratch(len(items))
	w := uint64(cs.width)
	for r := 0; r < cs.depth; r++ {
		hashing.HashBatch(cs.hashes[r], items, buckets)
		hashing.SignBatch(cs.signs[r], items, signs)
		row := cs.row(r)
		for i, b := range buckets {
			row[b%w] += signs[i] * deltas[i]
		}
	}
}

// Estimate returns the estimated count of item: the median over rows of the
// sign-corrected counter values. The estimate is unbiased.
func (cs *CountSketch) Estimate(item uint64) float64 {
	ests := make([]float64, cs.depth)
	for r := 0; r < cs.depth; r++ {
		ests[r] = cs.signs[r].Sign(item) * cs.counts[r*cs.width+cs.bucket(r, item)]
	}
	return median(ests)
}

// EstimateRow returns the row-r estimate alone (used by recovery algorithms
// that need per-row values).
func (cs *CountSketch) EstimateRow(row int, item uint64) float64 {
	return cs.signs[row].Sign(item) * cs.counts[row*cs.width+cs.bucket(row, item)]
}

// F2 returns an estimate of the second frequency moment ||x||_2^2 of the
// sketched vector: the median over rows of the sum of squared counters
// (the AMS estimator specialized to the Count-Sketch layout). The estimate
// is unbiased per row and concentrates as the width grows.
func (cs *CountSketch) F2() float64 {
	rows := make([]float64, cs.depth)
	for r := 0; r < cs.depth; r++ {
		var s float64
		for _, v := range cs.row(r) {
			s += v * v
		}
		rows[r] = s
	}
	return median(rows)
}

// InnerProduct estimates <x, y> between the vectors summarized by cs and
// other, as the median over rows of the row-wise counter dot products. The
// sketches must share hash and sign functions (other created via Clone).
func (cs *CountSketch) InnerProduct(other *CountSketch) (float64, error) {
	if cs.width != other.width || cs.depth != other.depth {
		return 0, fmt.Errorf("sketch: inner product requires equal dimensions (%dx%d vs %dx%d)",
			cs.depth, cs.width, other.depth, other.width)
	}
	rows := make([]float64, cs.depth)
	for r := 0; r < cs.depth; r++ {
		a, b := cs.row(r), other.row(r)
		var s float64
		for j := range a {
			s += a[j] * b[j]
		}
		rows[r] = s
	}
	return median(rows), nil
}

// Merge adds the counters of other into cs. Both sketches must share hash
// functions (other created via Clone) and equal dimensions.
// CompatibleWith returns nil when other was built with the same dimensions,
// hash seed and family as cs — the precondition for an exact merge. Merge
// itself only checks dimensions and trusts in-process callers (clones of one
// prototype); transports accepting serialized sketches from possibly
// misconfigured peers should call CompatibleWith first.
func (cs *CountSketch) CompatibleWith(other *CountSketch) error {
	if cs.width != other.width || cs.depth != other.depth {
		return fmt.Errorf("sketch: dimension mismatch: %dx%d vs %dx%d (width x depth)",
			cs.width, cs.depth, other.width, other.depth)
	}
	if cs.seed != other.seed || cs.family != other.family {
		return fmt.Errorf("sketch: hash mismatch: sketches were not built from the same seed/family and cannot be merged")
	}
	return nil
}

func (cs *CountSketch) Merge(other *CountSketch) error {
	if cs.width != other.width || cs.depth != other.depth {
		return fmt.Errorf("sketch: cannot merge CountSketch of different dimensions")
	}
	for i, v := range other.counts {
		cs.counts[i] += v
	}
	return nil
}

// Sub subtracts the counters of other from cs — the inverse of Merge, with
// the same contract: shared hash and sign functions, dimensions checked.
// The difference of two snapshots of one growing sketch is itself a valid
// Count-Sketch of the updates between them (linearity).
func (cs *CountSketch) Sub(other *CountSketch) error {
	if cs.width != other.width || cs.depth != other.depth {
		return fmt.Errorf("sketch: cannot subtract CountSketch of different dimensions")
	}
	for i, v := range other.counts {
		cs.counts[i] -= v
	}
	return nil
}

// Scale multiplies every counter by c; Scale(-1) negates the sketch, so a
// negated clone merges as a subtraction.
func (cs *CountSketch) Scale(c float64) {
	for i := range cs.counts {
		cs.counts[i] *= c
	}
}

// Clone returns an empty sketch sharing cs's hash and sign functions. The
// clone gets its own counters and scratch, so clones ingest concurrently.
func (cs *CountSketch) Clone() *CountSketch {
	return &CountSketch{
		width:  cs.width,
		depth:  cs.depth,
		counts: make([]float64, len(cs.counts)),
		hashes: cs.hashes,
		signs:  cs.signs,
		seed:   cs.seed,
		family: cs.family,
	}
}

// Copy returns a deep copy of cs: same hash and sign functions, its own
// counters holding the current values.
func (cs *CountSketch) Copy() *CountSketch {
	out := cs.Clone()
	copy(out.counts, cs.counts)
	return out
}

// Counters returns the counter matrix as one row view per depth; the rows
// alias the live flat backing store and callers must not modify them.
func (cs *CountSketch) Counters() [][]float64 {
	rows := make([][]float64, cs.depth)
	for r := range rows {
		rows[r] = cs.row(r)
	}
	return rows
}

// CounterData returns the flat row-major counter array (the live backing
// store; callers must not modify it).
func (cs *CountSketch) CounterData() []float64 { return cs.counts }

// RowBucket exposes the bucket an item maps to in a row (for the matrix view).
func (cs *CountSketch) RowBucket(row int, item uint64) int {
	if row < 0 || row >= cs.depth {
		panic("sketch: RowBucket row out of range")
	}
	return cs.bucket(row, item)
}

// RowSign exposes the ±1 sign of an item in a row (for the matrix view).
func (cs *CountSketch) RowSign(row int, item uint64) float64 {
	if row < 0 || row >= cs.depth {
		panic("sketch: RowSign row out of range")
	}
	return cs.signs[row].Sign(item)
}

// Column partitioning (see columns.go) ---------------------------------------

// ColumnShape returns the sketch's column-partition geometry: depth rows of
// width columns.
func (cs *CountSketch) ColumnShape() ColumnShape {
	return ColumnShape{Rows: cs.depth, Width: cs.width}
}

// ScatterColumns hashes and signs a key/delta batch through the batch
// kernels and routes each row's signed increment to the shard owning its
// bucket's column. Only the shared hash/sign functions and the scatter's
// scratch are touched, so producers scatter through one prototype
// concurrently.
func (cs *CountSketch) ScatterColumns(items []uint64, deltas []float64, sc *ColumnScatter) {
	if len(items) != len(deltas) {
		panic(fmt.Sprintf("sketch: CountSketch.ScatterColumns length mismatch (%d items, %d deltas)", len(items), len(deltas)))
	}
	buckets := sc.bucketScratch(len(items))
	signs := sc.signScratch(len(items))
	w := uint64(cs.width)
	for r := 0; r < cs.depth; r++ {
		hashing.HashBatch(cs.hashes[r], items, buckets)
		hashing.SignBatch(cs.signs[r], items, signs)
		for i, b := range buckets {
			sc.route(r, b%w, signs[i]*deltas[i])
		}
	}
}

// AppendColumnSlice appends the row-major counters of the columns shard j of
// n owns and returns the extended slice.
func (cs *CountSketch) AppendColumnSlice(dst []float64, shard, shards int) []float64 {
	lo, hi := cs.ColumnShape().Range(shard, shards)
	return appendColumnSlice(dst, cs.counts, cs.width, cs.depth, lo, hi)
}

// ConcatColumns overwrites the counters from per-shard column slices. The
// mass argument is ignored: Count-Sketch keeps no mass accounting.
func (cs *CountSketch) ConcatColumns(slices [][]float64, _ float64) error {
	return concatColumnSlices(cs.counts, slices, cs.ColumnShape())
}

// ColumnMass returns 0: Count-Sketch keeps no mass accounting.
func (cs *CountSketch) ColumnMass() float64 { return 0 }

// median returns the median of values; for even counts it averages the two
// middle elements, which keeps the estimator unbiased. The input slice is
// sorted in place (it is always a scratch slice here).
func median(values []float64) float64 {
	n := len(values)
	if n == 0 {
		panic("sketch: median of empty slice")
	}
	insertionSort(values)
	if n%2 == 1 {
		return values[n/2]
	}
	return (values[n/2-1] + values[n/2]) / 2
}

// insertionSort sorts a small slice in place; sketch depths are tiny (< 30)
// so this is faster than sort.Float64s and allocation-free.
func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
