package sketch

import (
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/xrand"
)

// CountSketch is the sketch of Charikar, Chen and Farach-Colton [CCF02]:
// like Count-Min it keeps d rows of w counters, but each update is
// multiplied by a pairwise-independent ±1 sign, and the point-query
// estimator is the median over rows of sign-corrected counters.
//
// The signed increments make the estimator unbiased, and its error scales
// with the l2 norm of the residual frequency vector rather than the l1 norm,
// which is why the survey singles it out as the sketch behind compressed
// sensing with sparse matrices [CM06].
type CountSketch struct {
	width  int
	depth  int
	counts [][]float64
	hashes []hashing.Hasher
	signs  []hashing.SignHasher
	// seed and family fully determine the hash and sign functions (drawn in a
	// fixed order from xrand.New(seed)); see MarshalBinary.
	seed   uint64
	family hashing.Family
}

// CountSketchOption configures a CountSketch at construction time.
type CountSketchOption func(*countSketchConfig)

type countSketchConfig struct {
	family hashing.Family
}

// WithCountSketchHashFamily selects the hash family used for buckets/signs.
func WithCountSketchHashFamily(f hashing.Family) CountSketchOption {
	return func(c *countSketchConfig) { c.family = f }
}

// NewCountSketch creates a Count-Sketch with the given width and depth.
func NewCountSketch(r *xrand.Rand, width, depth int, opts ...CountSketchOption) *CountSketch {
	if width < 1 || depth < 1 {
		panic(fmt.Sprintf("sketch: NewCountSketch requires width, depth >= 1 (got %d, %d)", width, depth))
	}
	cfg := countSketchConfig{family: hashing.FamilyPoly2}
	for _, o := range opts {
		o(&cfg)
	}
	return newCountSketchFromSeed(r.Uint64(), width, depth, cfg.family)
}

// newCountSketchFromSeed builds the sketch deterministically from a hash
// seed; it is shared by NewCountSketch and UnmarshalBinary so that a
// deserialized sketch hashes and signs identically to the original.
func newCountSketchFromSeed(seed uint64, width, depth int, family hashing.Family) *CountSketch {
	hr := xrand.New(seed)
	cs := &CountSketch{
		width:  width,
		depth:  depth,
		counts: make([][]float64, depth),
		hashes: make([]hashing.Hasher, depth),
		signs:  make([]hashing.SignHasher, depth),
		seed:   seed,
		family: family,
	}
	for i := 0; i < depth; i++ {
		cs.counts[i] = make([]float64, width)
		cs.hashes[i] = hashing.NewHasher(family, hr, uint64(width))
		cs.signs[i] = hashing.NewSigner(family, hr)
	}
	return cs
}

// NewCountSketchWithError creates a Count-Sketch sized so that point-query
// error is at most eps*||x||_2 with probability at least 1-delta:
// width = ceil(3/eps^2), depth = ceil(ln(1/delta)) rounded to odd.
func NewCountSketchWithError(r *xrand.Rand, eps, delta float64, opts ...CountSketchOption) *CountSketch {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("sketch: NewCountSketchWithError requires eps, delta in (0,1)")
	}
	width := int(math.Ceil(3 / (eps * eps)))
	depth := int(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	if depth%2 == 0 {
		depth++ // odd depth gives a well-defined median
	}
	return NewCountSketch(r, width, depth, opts...)
}

// Width returns the number of counters per row.
func (cs *CountSketch) Width() int { return cs.width }

// Depth returns the number of rows.
func (cs *CountSketch) Depth() int { return cs.depth }

// Size returns the total number of counters.
func (cs *CountSketch) Size() int { return cs.width * cs.depth }

func (cs *CountSketch) bucket(row int, item uint64) int {
	return int(cs.hashes[row].Hash(item) % uint64(cs.width))
}

// Update adds delta to the item's count. Deltas of any sign are supported
// (turnstile model).
func (cs *CountSketch) Update(item uint64, delta float64) {
	for row := 0; row < cs.depth; row++ {
		cs.counts[row][cs.bucket(row, item)] += cs.signs[row].Sign(item) * delta
	}
}

// Estimate returns the estimated count of item: the median over rows of the
// sign-corrected counter values. The estimate is unbiased.
func (cs *CountSketch) Estimate(item uint64) float64 {
	ests := make([]float64, cs.depth)
	for row := 0; row < cs.depth; row++ {
		ests[row] = cs.signs[row].Sign(item) * cs.counts[row][cs.bucket(row, item)]
	}
	return median(ests)
}

// EstimateRow returns the row-r estimate alone (used by recovery algorithms
// that need per-row values).
func (cs *CountSketch) EstimateRow(row int, item uint64) float64 {
	return cs.signs[row].Sign(item) * cs.counts[row][cs.bucket(row, item)]
}

// F2 returns an estimate of the second frequency moment ||x||_2^2 of the
// sketched vector: the median over rows of the sum of squared counters
// (the AMS estimator specialized to the Count-Sketch layout). The estimate
// is unbiased per row and concentrates as the width grows.
func (cs *CountSketch) F2() float64 {
	rows := make([]float64, cs.depth)
	for row := 0; row < cs.depth; row++ {
		var s float64
		for _, v := range cs.counts[row] {
			s += v * v
		}
		rows[row] = s
	}
	return median(rows)
}

// InnerProduct estimates <x, y> between the vectors summarized by cs and
// other, as the median over rows of the row-wise counter dot products. The
// sketches must share hash and sign functions (other created via Clone).
func (cs *CountSketch) InnerProduct(other *CountSketch) (float64, error) {
	if cs.width != other.width || cs.depth != other.depth {
		return 0, fmt.Errorf("sketch: inner product requires equal dimensions (%dx%d vs %dx%d)",
			cs.depth, cs.width, other.depth, other.width)
	}
	rows := make([]float64, cs.depth)
	for row := 0; row < cs.depth; row++ {
		var s float64
		for j := 0; j < cs.width; j++ {
			s += cs.counts[row][j] * other.counts[row][j]
		}
		rows[row] = s
	}
	return median(rows), nil
}

// Merge adds the counters of other into cs. Both sketches must share hash
// functions (other created via Clone) and equal dimensions.
// CompatibleWith returns nil when other was built with the same dimensions,
// hash seed and family as cs — the precondition for an exact merge. Merge
// itself only checks dimensions and trusts in-process callers (clones of one
// prototype); transports accepting serialized sketches from possibly
// misconfigured peers should call CompatibleWith first.
func (cs *CountSketch) CompatibleWith(other *CountSketch) error {
	if cs.width != other.width || cs.depth != other.depth {
		return fmt.Errorf("sketch: dimension mismatch: %dx%d vs %dx%d (width x depth)",
			cs.width, cs.depth, other.width, other.depth)
	}
	if cs.seed != other.seed || cs.family != other.family {
		return fmt.Errorf("sketch: hash mismatch: sketches were not built from the same seed/family and cannot be merged")
	}
	return nil
}

func (cs *CountSketch) Merge(other *CountSketch) error {
	if cs.width != other.width || cs.depth != other.depth {
		return fmt.Errorf("sketch: cannot merge CountSketch of different dimensions")
	}
	for row := 0; row < cs.depth; row++ {
		for j := 0; j < cs.width; j++ {
			cs.counts[row][j] += other.counts[row][j]
		}
	}
	return nil
}

// Clone returns an empty sketch sharing cs's hash and sign functions.
func (cs *CountSketch) Clone() *CountSketch {
	out := &CountSketch{
		width:  cs.width,
		depth:  cs.depth,
		counts: make([][]float64, cs.depth),
		hashes: cs.hashes,
		signs:  cs.signs,
		seed:   cs.seed,
		family: cs.family,
	}
	for i := range out.counts {
		out.counts[i] = make([]float64, cs.width)
	}
	return out
}

// Counters returns the raw counter matrix; callers must not modify it.
func (cs *CountSketch) Counters() [][]float64 { return cs.counts }

// RowBucket exposes the bucket an item maps to in a row (for the matrix view).
func (cs *CountSketch) RowBucket(row int, item uint64) int {
	if row < 0 || row >= cs.depth {
		panic("sketch: RowBucket row out of range")
	}
	return cs.bucket(row, item)
}

// RowSign exposes the ±1 sign of an item in a row (for the matrix view).
func (cs *CountSketch) RowSign(row int, item uint64) float64 {
	if row < 0 || row >= cs.depth {
		panic("sketch: RowSign row out of range")
	}
	return cs.signs[row].Sign(item)
}

// median returns the median of values; for even counts it averages the two
// middle elements, which keeps the estimator unbiased. The input slice is
// sorted in place (it is always a scratch slice here).
func median(values []float64) float64 {
	n := len(values)
	if n == 0 {
		panic("sketch: median of empty slice")
	}
	insertionSort(values)
	if n%2 == 1 {
		return values[n/2]
	}
	return (values[n/2-1] + values[n/2]) / 2
}

// insertionSort sorts a small slice in place; sketch depths are tiny (< 30)
// so this is faster than sort.Float64s and allocation-free.
func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
