package sketch

import (
	"errors"
	"fmt"

	"repro/internal/hashing"
	"repro/internal/xrand"
)

// IBLT is an invertible Bloom lookup table [GM11]: each cell keeps the net
// count of the (key, delta) updates hashed into it together with two
// field-valued accumulators — sum(delta * key) and sum(delta * checksum(key))
// modulo the prime 2^61-1. All three fields are linear in the updates, so the
// table supports insertions and deletions in any order and any grouping of
// deltas. As long as the number of stored keys with non-zero net count is a
// constant factor below the number of cells, the whole table can be decoded
// by repeatedly peeling "pure" cells (cells whose contents are consistent
// with a single key).
//
// In the survey's framing the IBLT is a sketch that supports not just point
// queries but full recovery of a sparse frequency vector, which is exactly
// the compressed-sensing use of hashing.
//
// Keys must be smaller than 2^61-1 (they are interpreted as field elements).
type IBLT struct {
	cells  []ibltCell
	hashes []hashing.Hasher
	check  hashing.Hasher
	k      int
	// seed fully determines the checksum and cell hash functions (drawn in a
	// fixed order from xrand.New(seed)); see MarshalBinary.
	seed uint64

	// Reusable scratch (zero allocations steady-state). cellScratch holds the
	// k deduplicated cell indices of the key being applied; hashScratch and
	// checkScratch are the batch hash columns of UpdateBatch (hashScratch is
	// hash-major: hash j's column at [j*n, (j+1)*n)). Writes are
	// single-goroutine; the scratch is never aliased across keys.
	cellScratch  []int
	hashScratch  []uint64
	checkScratch []uint64
}

type ibltCell struct {
	count   int64
	keySum  uint64 // sum of delta*key mod 2^61-1
	hashSum uint64 // sum of delta*checksum(key) mod 2^61-1
}

// ErrDecodeFailed is returned by ListEntries when peeling gets stuck before
// the table is empty (the load factor was too high for full recovery).
var ErrDecodeFailed = errors.New("sketch: IBLT decode failed; load too high")

// NewIBLT creates a table with m cells and k hash functions. Standard
// parameterization is k in {3,4} and m at least about 1.3–1.5 times the
// expected number of distinct keys.
func NewIBLT(r *xrand.Rand, m int, k int) *IBLT {
	if m < 1 || k < 1 {
		panic("sketch: NewIBLT requires m >= 1 and k >= 1")
	}
	return newIBLTFromSeed(r.Uint64(), m, k)
}

// newIBLTFromSeed builds the table deterministically from a hash seed;
// shared by NewIBLT and UnmarshalBinary. The checksum hash is drawn first,
// then the k cell hashes, so the order is part of the wire contract.
func newIBLTFromSeed(seed uint64, m, k int) *IBLT {
	hr := xrand.New(seed)
	t := &IBLT{
		cells:  make([]ibltCell, m),
		hashes: make([]hashing.Hasher, k),
		check:  hashing.NewPolyHash(hr, 3, hashing.MersennePrime61),
		k:      k,
		seed:   seed,
	}
	for i := range t.hashes {
		t.hashes[i] = hashing.NewPolyHash(hr, 2, uint64(m))
	}
	return t
}

// cellsFor returns the distinct cell indices for a key in the table's
// reusable scratch (valid until the next cellsFor call). It is for the
// write paths — Update, UpdateBatch, and the peeling loop of ListEntries,
// which are single-goroutine like every sketch write; read-only queries use
// appendCells with their own slice so concurrent reads stay safe.
func (t *IBLT) cellsFor(key uint64) []int {
	out := t.appendCells(t.cellScratch[:0], key)
	t.cellScratch = out[:0]
	return out
}

// appendCells appends the k distinct cell indices for a key to out.
// Distinctness is enforced by linear probing on collisions so that a key
// always touches exactly k cells (otherwise a key could contribute twice to
// one cell and break the per-cell accounting).
func (t *IBLT) appendCells(out []int, key uint64) []int {
	for _, h := range t.hashes {
		out = t.dedupCells(out, int(h.Hash(key)))
	}
	return out
}

// dedupCells appends cell index c to out, linear-probing past any index
// already present.
func (t *IBLT) dedupCells(out []int, c int) []int {
	m := len(t.cells)
probe:
	for {
		for _, prev := range out {
			if prev == c {
				c = (c + 1) % m
				continue probe
			}
		}
		break
	}
	return append(out, c)
}

// deltaResidue maps a signed delta to its residue modulo 2^61-1.
func deltaResidue(delta int64) uint64 {
	if delta >= 0 {
		return hashing.Mod61(uint64(delta))
	}
	return hashing.SubMod61(0, hashing.Mod61(uint64(-delta)))
}

// Update adds delta to the key's count (negative deltas encode deletions).
func (t *IBLT) Update(key uint64, delta int64) {
	if key >= hashing.MersennePrime61 {
		panic(fmt.Sprintf("sketch: IBLT key %d exceeds maximum %d", key, uint64(hashing.MersennePrime61)-1))
	}
	if delta == 0 {
		return
	}
	d := deltaResidue(delta)
	check := t.check.Hash(key)
	keyTerm := hashing.MulMod61(d, key)
	checkTerm := hashing.MulMod61(d, check)
	for _, c := range t.cellsFor(key) {
		cell := &t.cells[c]
		cell.count += delta
		cell.keySum = hashing.AddMod61(cell.keySum, keyTerm)
		cell.hashSum = hashing.AddMod61(cell.hashSum, checkTerm)
	}
}

// UpdateBatch applies deltas[i] to keys[i] for every i, producing exactly
// the table that key-by-key Update calls would: the checksum hash and the k
// cell hashes each map the whole key column through their batched kernels,
// then each key's cells are deduplicated (the same linear probe as the
// per-item path, seeded by the same hash values) and its field terms applied.
// Every cell field is modular or integer arithmetic, which is exactly
// associative, so the result is identical regardless of the kernel-friendly
// evaluation order. The scratch columns are reused across calls (zero
// allocations steady-state). The slices must have equal length.
func (t *IBLT) UpdateBatch(keys []uint64, deltas []int64) {
	if len(keys) != len(deltas) {
		panic(fmt.Sprintf("sketch: IBLT.UpdateBatch length mismatch (%d keys, %d deltas)", len(keys), len(deltas)))
	}
	n := len(keys)
	if n == 0 {
		return
	}
	for _, key := range keys {
		if key >= hashing.MersennePrime61 {
			panic(fmt.Sprintf("sketch: IBLT key %d exceeds maximum %d", key, uint64(hashing.MersennePrime61)-1))
		}
	}
	if cap(t.checkScratch) < n {
		t.checkScratch = make([]uint64, n)
	}
	if cap(t.hashScratch) < t.k*n {
		t.hashScratch = make([]uint64, t.k*n)
	}
	checks := t.checkScratch[:n]
	hashing.HashBatch(t.check, keys, checks)
	cols := t.hashScratch[:t.k*n]
	for j, h := range t.hashes {
		hashing.HashBatch(h, keys, cols[j*n:(j+1)*n])
	}
	for i, key := range keys {
		if deltas[i] == 0 {
			continue
		}
		d := deltaResidue(deltas[i])
		keyTerm := hashing.MulMod61(d, key)
		checkTerm := hashing.MulMod61(d, checks[i])
		cells := t.cellScratch[:0]
		for j := 0; j < t.k; j++ {
			cells = t.dedupCells(cells, int(cols[j*n+i]))
		}
		t.cellScratch = cells[:0]
		for _, c := range cells {
			cell := &t.cells[c]
			cell.count += deltas[i]
			cell.keySum = hashing.AddMod61(cell.keySum, keyTerm)
			cell.hashSum = hashing.AddMod61(cell.hashSum, checkTerm)
		}
	}
}

// Insert adds one occurrence of key.
func (t *IBLT) Insert(key uint64) { t.Update(key, 1) }

// Delete removes one occurrence of key.
func (t *IBLT) Delete(key uint64) { t.Update(key, -1) }

// Size returns the number of cells.
func (t *IBLT) Size() int { return len(t.cells) }

// isEmpty reports whether the cell holds no net content.
func (c ibltCell) isEmpty() bool {
	return c.count == 0 && c.keySum == 0 && c.hashSum == 0
}

// decodeCell attempts to interpret cell i as holding a single key with a
// non-zero net count. It returns the key and count with ok=true on success.
func (t *IBLT) decodeCell(i int) (key uint64, count int64, ok bool) {
	cell := t.cells[i]
	if cell.count == 0 {
		return 0, 0, false
	}
	cm := deltaResidue(cell.count)
	if cm == 0 {
		return 0, 0, false
	}
	inv := hashing.InvMod61(cm)
	key = hashing.MulMod61(cell.keySum, inv)
	// Verify the checksum: hashSum must equal count * checksum(key).
	if hashing.MulMod61(cm, t.check.Hash(key)) != cell.hashSum {
		return 0, 0, false
	}
	return key, cell.count, true
}

// ListEntries attempts to recover every (key, net count) pair stored in the
// table by peeling. On success the table is left empty. On failure it
// returns ErrDecodeFailed together with the entries recovered so far (the
// table is left partially peeled).
func (t *IBLT) ListEntries() (map[uint64]int64, error) {
	out := make(map[uint64]int64)
	queue := make([]int, 0, len(t.cells))
	for i := range t.cells {
		queue = append(queue, i)
	}
	for len(queue) > 0 {
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		key, count, ok := t.decodeCell(i)
		if !ok {
			continue
		}
		out[key] += count
		// Remove the pair from the table; this may create new pure cells.
		t.Update(key, -count)
		queue = append(queue, t.cellsFor(key)...)
	}
	for i := range t.cells {
		if !t.cells[i].isEmpty() {
			return out, ErrDecodeFailed
		}
	}
	// Drop zero-net-count keys (possible only if a false-positive decode was
	// later cancelled; harmless to filter).
	for k, v := range out {
		if v == 0 {
			delete(out, k)
		}
	}
	return out, nil
}

// Get attempts a point query for a single key without decoding the whole
// table: if any of the key's cells is empty the key's net count is 0; if any
// of its cells decodes to the key itself, that cell's count is returned.
// ok=false means the query could not be answered (not that the key is
// absent).
func (t *IBLT) Get(key uint64) (count int64, ok bool) {
	// A private cell slice, not the shared scratch: Get is a read and may
	// run concurrently with other reads on the same table.
	for _, c := range t.appendCells(make([]int, 0, t.k), key) {
		if t.cells[c].isEmpty() {
			return 0, true
		}
		if k, cnt, pure := t.decodeCell(c); pure && k == key {
			return cnt, true
		}
	}
	return 0, false
}
