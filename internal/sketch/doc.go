// Package sketch implements the hashing-based streaming summaries that the
// survey's Section 1 builds its narrative on, together with the classical
// deterministic and membership summaries they are compared against.
//
// Randomized linear sketches (the survey's focus):
//
//   - CountMin: d rows of w counters, pairwise-independent bucket hashes,
//     +delta updates, min estimator; supports the conservative-update
//     variant for insertion-only streams. [CM04]
//   - CountSketch: like Count-Min but with ±1 signed increments and a median
//     estimator, which makes the estimate unbiased. [CCF02]
//   - IBLT: invertible Bloom lookup table, which can list the entire
//     (small) sketched multiset exactly. [GM11]
//   - Dyadic: a hierarchy of Count-Min sketches over dyadic ranges that
//     answers range queries, quantiles, and finds heavy hitters without
//     enumerating the universe.
//
// Deterministic comparison baselines:
//
//   - MisraGries and SpaceSaving: counter-based frequent-item algorithms.
//   - BloomFilter and SpectralBloom: membership and multiplicity filters.
//
// All randomized sketches are linear: Update(item, d1) followed by
// Update(item, d2) is identical to Update(item, d1+d2), and two sketches
// built with the same hash functions can be merged by adding their counter
// arrays. The core package exposes this linearity as an explicit matrix.
// Linearity cuts both ways: the flat-counter families (CountMin,
// CountSketch, Dyadic, HeavyHitterTracker) also expose Sub and Scale, so
// the difference of two snapshots of one growing sketch — itself a valid
// sketch of exactly the updates between them — can be computed, shipped in
// the compressed KindDelta envelope (EncodeDelta/DecodeDelta: snapshot
// differences are mostly zero counters), and folded into a peer with the
// ordinary Merge. The non-linear summaries opt out: Bloom filters OR bits
// rather than add counters, and conservative-update Count-Min refuses
// Sub/Scale just as it refuses Merge.
//
// The update path is batch-first: counters live in one flat row-major array
// (row stride = width) and every family exposes UpdateBatch (AddBatch for
// the Bloom filter), which applies a whole column of keys and deltas per
// hash row through the batched kernels of internal/hashing, reusing a
// per-sketch scratch column so steady-state ingestion does not allocate.
// Batched ingestion is bit-identical to per-item ingestion — for any one
// counter the same deltas arrive in the same stream order — and per-item
// Update survives as a len-1 batch.
package sketch
