package sketch

import (
	"math"

	"repro/internal/hashing"
	"repro/internal/xrand"
)

// BloomFilter is the classic membership filter of [FCAB98, BM04]: k hash
// functions into a bit array of m bits. It never reports false negatives;
// the false-positive rate after inserting n items is about
// (1 - e^{-kn/m})^k.
type BloomFilter struct {
	bits   []uint64
	m      uint64
	hashes []hashing.Hasher
	count  int
	// seed fully determines the hash functions; see MarshalBinary.
	seed uint64
	// bucketScratch is the reusable bit-position column for AddBatch (zero
	// allocations steady-state). Writes are single-goroutine; Contains never
	// touches it.
	bucketScratch []uint64
}

// NewBloomFilter creates a filter with m bits and k hash functions.
func NewBloomFilter(r *xrand.Rand, m uint64, k int) *BloomFilter {
	if m < 1 || k < 1 {
		panic("sketch: NewBloomFilter requires m >= 1 and k >= 1")
	}
	return newBloomFilterFromSeed(r.Uint64(), m, k)
}

// newBloomFilterFromSeed builds the filter deterministically from a hash
// seed; shared by NewBloomFilter and UnmarshalBinary.
func newBloomFilterFromSeed(seed uint64, m uint64, k int) *BloomFilter {
	hr := xrand.New(seed)
	bf := &BloomFilter{
		bits:   make([]uint64, (m+63)/64),
		m:      m,
		hashes: make([]hashing.Hasher, k),
		seed:   seed,
	}
	for i := range bf.hashes {
		bf.hashes[i] = hashing.NewPolyHash(hr, 2, m)
	}
	return bf
}

// NewBloomFilterForItems sizes the filter for n expected items and target
// false-positive rate p: m = -n ln p / (ln 2)^2, k = (m/n) ln 2.
func NewBloomFilterForItems(r *xrand.Rand, n int, p float64) *BloomFilter {
	if n < 1 || p <= 0 || p >= 1 {
		panic("sketch: NewBloomFilterForItems requires n >= 1 and p in (0,1)")
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 1 {
		m = 1
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return NewBloomFilter(r, m, k)
}

// Add inserts an item.
func (bf *BloomFilter) Add(item uint64) {
	for _, h := range bf.hashes {
		b := h.Hash(item)
		bf.bits[b/64] |= 1 << (b % 64)
	}
	bf.count++
}

// AddBatch inserts every item, producing exactly the filter that item-by-item
// Add calls would: each hash function maps the whole key column through its
// batched kernel, then sets the bits. Bit-setting is idempotent and
// order-independent, so reordering the (item, hash) pairs changes nothing.
// The scratch column is reused across calls (zero allocations steady-state).
func (bf *BloomFilter) AddBatch(items []uint64) {
	if len(items) == 0 {
		return
	}
	if cap(bf.bucketScratch) < len(items) {
		bf.bucketScratch = make([]uint64, len(items))
	}
	buckets := bf.bucketScratch[:len(items)]
	for _, h := range bf.hashes {
		hashing.HashBatch(h, items, buckets)
		for _, b := range buckets {
			bf.bits[b/64] |= 1 << (b % 64)
		}
	}
	bf.count += len(items)
}

// Contains reports whether the item may have been inserted. False positives
// are possible; false negatives are not.
func (bf *BloomFilter) Contains(item uint64) bool {
	for _, h := range bf.hashes {
		b := h.Hash(item)
		if bf.bits[b/64]&(1<<(b%64)) == 0 {
			return false
		}
	}
	return true
}

// Bits returns the number of bits in the filter.
func (bf *BloomFilter) Bits() uint64 { return bf.m }

// HashCount returns the number of hash functions.
func (bf *BloomFilter) HashCount() int { return len(bf.hashes) }

// Count returns the number of Add calls.
func (bf *BloomFilter) Count() int { return bf.count }

// EstimatedFalsePositiveRate returns the analytic false-positive rate for the
// current load.
func (bf *BloomFilter) EstimatedFalsePositiveRate() float64 {
	k := float64(len(bf.hashes))
	n := float64(bf.count)
	m := float64(bf.m)
	return math.Pow(1-math.Exp(-k*n/m), k)
}

// SpectralBloom is the spectral Bloom filter of Cohen and Matias [CM03a]: the
// bit array is replaced with counters and a query returns the minimum
// counter, giving multiplicity estimates rather than plain membership. It is
// the structural midpoint between a Bloom filter and a Count-Min sketch
// (Count-Min with a single shared counter array).
type SpectralBloom struct {
	counters []float64
	m        uint64
	hashes   []hashing.Hasher
	total    float64
}

// NewSpectralBloom creates a spectral Bloom filter with m counters and k
// hash functions.
func NewSpectralBloom(r *xrand.Rand, m uint64, k int) *SpectralBloom {
	if m < 1 || k < 1 {
		panic("sketch: NewSpectralBloom requires m >= 1 and k >= 1")
	}
	sb := &SpectralBloom{
		counters: make([]float64, m),
		m:        m,
		hashes:   make([]hashing.Hasher, k),
	}
	for i := range sb.hashes {
		sb.hashes[i] = hashing.NewPolyHash(r, 2, m)
	}
	return sb
}

// Add increases the item's multiplicity by delta (delta must be >= 0; the
// minimum-selection estimate is only valid for non-negative streams).
func (sb *SpectralBloom) Add(item uint64, delta float64) {
	if delta < 0 {
		panic("sketch: SpectralBloom.Add requires delta >= 0")
	}
	for _, h := range sb.hashes {
		sb.counters[h.Hash(item)] += delta
	}
	sb.total += delta
}

// Estimate returns the estimated multiplicity of the item (minimum counter
// over its hash positions); it never underestimates.
func (sb *SpectralBloom) Estimate(item uint64) float64 {
	est := math.Inf(1)
	for _, h := range sb.hashes {
		if v := sb.counters[h.Hash(item)]; v < est {
			est = v
		}
	}
	return est
}

// Size returns the number of counters.
func (sb *SpectralBloom) Size() uint64 { return sb.m }

// Total returns the total mass added.
func (sb *SpectralBloom) Total() float64 { return sb.total }
