package sketch

import (
	"container/heap"
	"fmt"
)

// Column partitioning --------------------------------------------------------
//
// A hashing sketch is a matrix of independent per-bucket counters, so beyond
// replication there is a second way to spread it across workers: split the
// *columns*. Shard j of n owns columns [j*W/n, (j+1)*W/n) of every row — with
// the flat row-major layout a shard's columns are contiguous per row — and an
// update's row-r write goes to whichever shard owns bucket h_r(item). The
// shards together hold exactly one copy of the logical sketch (memory ~1x
// instead of n x), and reassembly is pure concatenation: copy each shard's
// column slice back into place and the result is counter-for-counter the
// sketch a single-threaded run would have produced.
//
// The types below are the sketch-side half of that contract, consumed by
// internal/engine's partition mode: ColumnShape names the geometry and the
// bucket->shard map, ColumnScatter turns a key/delta batch into per-shard
// scatter columns (hashing through the same batch kernels UpdateBatch uses),
// and each family implements ColumnSketch to route, slice and reassemble its
// own counters.

// ColumnShape is the column-partition geometry of a sketch family: Rows rows
// of Width columns each. For the flat families Rows is the depth; for the
// dyadic hierarchy it is (logU+1)*depth, with every level's rows stacked in
// level-major order. The partition axis is always the Width.
type ColumnShape struct {
	Rows  int
	Width int
}

// Size returns the total number of counters.
func (s ColumnShape) Size() int { return s.Rows * s.Width }

// Range returns the half-open global column range [lo, hi) owned by shard j
// of n. The ranges tile [0, Width) contiguously and differ in size by at most
// one column; with n > Width the surplus shards own empty ranges.
func (s ColumnShape) Range(j, n int) (lo, hi int) {
	return j * s.Width / n, (j + 1) * s.Width / n
}

// ShardOf returns the shard (of n) owning a global column index — the exact
// inverse of Range: Range(ShardOf(b, n), n) always brackets b.
func (s ColumnShape) ShardOf(bucket, n int) int {
	return ((bucket+1)*n - 1) / s.Width
}

// ColumnScatter routes one key/delta batch to column shards: Idx[j]/Delta[j]
// accumulate the shard-local flat counter indices and deltas shard j must
// add, Mass accumulates the batch's total delta mass (attributed to shard 0,
// so the shard masses sum to the stream's), and CandKeys[j]/CandIdx[j] carry
// the candidate lane of heavy-hitter trackers: each key routed to the shard
// owning its row-0 bucket, paired with that bucket's shard-local index so
// the shard can score the key from its own counters.
//
// A scatter belongs to one producer: the hash scratch inside it is what lets
// many producers route batches through one shared read-only prototype
// concurrently. The output slices are exported so the consumer can hand them
// off to shard queues wholesale and install recycled buffers in their place.
type ColumnScatter struct {
	shape ColumnShape
	lo    []int // per-shard column range starts
	width []int // per-shard slice widths (hi - lo)

	Idx      [][]uint32
	Delta    [][]float64
	Mass     float64
	CandKeys [][]uint64
	CandIdx  [][]uint32

	// Reusable hash scratch for the family's ScatterColumns (grown to the
	// largest batch seen, zero allocations steady-state).
	buckets []uint64
	signs   []float64
	keys    []uint64
}

// NewColumnScatter builds a scatter for the given geometry and shard count.
// It panics when a shard-local index could overflow the uint32 scatter
// encoding — Rows * max slice width must stay below 2^32, which every
// realistic sketch satisfies by orders of magnitude.
func NewColumnScatter(shape ColumnShape, shards int) *ColumnScatter {
	if shards < 1 {
		panic(fmt.Sprintf("sketch: NewColumnScatter requires shards >= 1 (got %d)", shards))
	}
	sc := &ColumnScatter{
		shape:    shape,
		lo:       make([]int, shards),
		width:    make([]int, shards),
		Idx:      make([][]uint32, shards),
		Delta:    make([][]float64, shards),
		CandKeys: make([][]uint64, shards),
		CandIdx:  make([][]uint32, shards),
	}
	for j := 0; j < shards; j++ {
		lo, hi := shape.Range(j, shards)
		sc.lo[j], sc.width[j] = lo, hi-lo
		if sc.width[j] > 0 && uint64(shape.Rows)*uint64(sc.width[j]) > 1<<32 {
			panic(fmt.Sprintf("sketch: column shard too large for scatter indices (%d rows x %d columns)",
				shape.Rows, sc.width[j]))
		}
	}
	return sc
}

// Shards returns the shard count the scatter routes to.
func (sc *ColumnScatter) Shards() int { return len(sc.lo) }

// Shape returns the geometry the scatter was built for.
func (sc *ColumnScatter) Shape() ColumnShape { return sc.shape }

// Reset truncates every output column and zeroes the mass, keeping the
// backing arrays for reuse.
func (sc *ColumnScatter) Reset() {
	for j := range sc.Idx {
		sc.Idx[j] = sc.Idx[j][:0]
		sc.Delta[j] = sc.Delta[j][:0]
		sc.CandKeys[j] = sc.CandKeys[j][:0]
		sc.CandIdx[j] = sc.CandIdx[j][:0]
	}
	sc.Mass = 0
}

// route appends one counter increment: row-major position (row, bucket) of
// the logical sketch, translated to the owning shard's local flat index.
func (sc *ColumnScatter) route(row int, bucket uint64, delta float64) {
	j := ((int(bucket)+1)*len(sc.lo) - 1) / sc.shape.Width
	local := uint32(row*sc.width[j] + int(bucket) - sc.lo[j])
	sc.Idx[j] = append(sc.Idx[j], local)
	sc.Delta[j] = append(sc.Delta[j], delta)
}

// routeCandidate appends one candidate-lane entry for the shard owning the
// key's row-0 bucket.
func (sc *ColumnScatter) routeCandidate(key uint64, bucket uint64) {
	j := ((int(bucket)+1)*len(sc.lo) - 1) / sc.shape.Width
	sc.CandKeys[j] = append(sc.CandKeys[j], key)
	sc.CandIdx[j] = append(sc.CandIdx[j], uint32(int(bucket)-sc.lo[j]))
}

// bucketScratch returns the reusable bucket column, grown to n entries.
func (sc *ColumnScatter) bucketScratch(n int) []uint64 {
	if cap(sc.buckets) < n {
		sc.buckets = make([]uint64, n)
	}
	return sc.buckets[:n]
}

// signScratch returns the reusable sign column, grown to n entries.
func (sc *ColumnScatter) signScratch(n int) []float64 {
	if cap(sc.signs) < n {
		sc.signs = make([]float64, n)
	}
	return sc.signs[:n]
}

// keyScratch returns the reusable shifted-key column, grown to n entries.
func (sc *ColumnScatter) keyScratch(n int) []uint64 {
	if cap(sc.keys) < n {
		sc.keys = make([]uint64, n)
	}
	return sc.keys[:n]
}

// ColumnSketch is the contract a family satisfies to ride the engine's
// key-partitioned mode: name its geometry, route update batches to column
// shards, slice an existing sketch's counters for one shard (how absorbed
// replicas are folded into partitioned state), and reassemble a full sketch
// from per-shard slices. ConcatColumns overwrites the receiver's counters —
// it is called on a fresh clone — and sets its mass accounting from the
// summed shard masses; families without mass ignore the argument.
//
// CountMin (non-conservative), CountSketch, Dyadic and HeavyHitterTracker
// implement it; their methods live beside each type.
type ColumnSketch interface {
	ColumnShape() ColumnShape
	ScatterColumns(items []uint64, deltas []float64, sc *ColumnScatter)
	AppendColumnSlice(dst []float64, shard, shards int) []float64
	ConcatColumns(slices [][]float64, mass float64) error
	ColumnMass() float64
}

// appendColumnSlice copies columns [lo, hi) of every row of a flat row-major
// counter array — the shared kernel behind the families' AppendColumnSlice.
func appendColumnSlice(dst, counts []float64, width, rows, lo, hi int) []float64 {
	for r := 0; r < rows; r++ {
		dst = append(dst, counts[r*width+lo:r*width+hi]...)
	}
	return dst
}

// concatColumnSlices overwrites a flat row-major counter array from per-shard
// column slices — the inverse of appendColumnSlice, shared by the families'
// ConcatColumns. Each slices[j] must hold rows*(hi_j-lo_j) values.
func concatColumnSlices(counts []float64, slices [][]float64, shape ColumnShape) error {
	for j, s := range slices {
		lo, hi := shape.Range(j, len(slices))
		if len(s) != shape.Rows*(hi-lo) {
			return fmt.Errorf("sketch: column slice %d holds %d counters, want %d (%d rows x %d columns)",
				j, len(s), shape.Rows*(hi-lo), shape.Rows, hi-lo)
		}
		w := hi - lo
		for r := 0; r < shape.Rows; r++ {
			copy(counts[r*shape.Width+lo:r*shape.Width+hi], s[r*w:(r+1)*w])
		}
	}
	return nil
}

// CandidateSet is a bounded top-score set of stream keys: Offer keeps the
// capacity highest-scoring distinct keys, updating the score of keys already
// present. It is the per-shard candidate store of the engine's partitioned
// heavy-hitter tracking — scores there are row-0 counters, the same
// "estimate never underestimates" upper bound the tracker's own heap uses —
// and reuses the tracker's heap machinery.
type CandidateSet struct {
	cap   int
	heap  *candidateHeap
	items map[uint64]*candidate
}

// NewCandidateSet builds an empty set keeping the given number of keys.
func NewCandidateSet(capacity int) *CandidateSet {
	if capacity < 1 {
		panic("sketch: NewCandidateSet requires capacity >= 1")
	}
	return &CandidateSet{
		cap:   capacity,
		heap:  &candidateHeap{},
		items: make(map[uint64]*candidate),
	}
}

// Offer records the key with the given score, evicting the current minimum
// when the set is full and the newcomer scores higher.
func (c *CandidateSet) Offer(key uint64, score float64) {
	if cand, ok := c.items[key]; ok {
		cand.count = score
		heap.Fix(c.heap, cand.index)
		return
	}
	if c.heap.Len() >= c.cap {
		min := (*c.heap)[0]
		if score <= min.count {
			return
		}
		heap.Pop(c.heap)
		delete(c.items, min.item)
	}
	cand := &candidate{item: key, count: score}
	heap.Push(c.heap, cand)
	c.items[key] = cand
}

// Len returns the number of keys currently held.
func (c *CandidateSet) Len() int { return c.heap.Len() }

// AppendItems appends the held keys to dst (in heap order) and returns it.
func (c *CandidateSet) AppendItems(dst []uint64) []uint64 {
	for _, cand := range *c.heap {
		dst = append(dst, cand.item)
	}
	return dst
}
