package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/hashing"
)

// Binary serialization for the linear sketches. The format exists so that
// shards of a distributed ingestion pipeline can live in different processes
// and merge over the wire: because the hash functions are reconstructed from
// the serialized seed through the same deterministic code path used at
// construction time, Unmarshal(Marshal(s)) is bit-identical in behavior to s
// — same buckets, same signs, same estimates — which is exactly the property
// Merge needs.
//
// Wire layout (all integers big-endian):
//
//	magic   [4]byte  "SKC1"
//	version uint8    encodingVersion
//	kind    uint8    sketch kind (CountMin, CountSketch, Bloom, IBLT)
//	payload          kind-specific header (dimensions, hash seed, family)
//	                 followed by the raw counters
//
// Floats are encoded as IEEE-754 bits so counters round-trip exactly.

// encodingMagic guards against feeding arbitrary bytes to Unmarshal.
var encodingMagic = [4]byte{'S', 'K', 'C', '1'}

// encodingVersion is bumped whenever the payload layout changes; decoders
// reject versions they do not understand rather than guessing.
const encodingVersion = 1

// Sketch kinds on the wire.
const (
	kindCountMin    = 1
	kindCountSketch = 2
	kindBloom       = 3
	kindIBLT        = 4
	kindTracker     = 5
	kindDyadic      = 6
	kindDelta       = 7
)

// Kind is the exported view of the wire-format kind byte, so transport
// layers (internal/server) can dispatch on the payload type without decoding
// it.
type Kind uint8

// Exported sketch kinds, matching the wire constants.
const (
	KindCountMin    Kind = kindCountMin
	KindCountSketch Kind = kindCountSketch
	KindBloom       Kind = kindBloom
	KindIBLT        Kind = kindIBLT
	KindTracker     Kind = kindTracker
	KindDyadic      Kind = kindDyadic
	// KindDelta is not a sketch of its own but an envelope: a zero-run-length
	// compressed encoding of another sketch's encoding, used when the wrapped
	// sketch is the *difference* of two snapshots and therefore mostly zero
	// counters. See EncodeDelta / DecodeDelta.
	KindDelta Kind = kindDelta
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case KindCountMin:
		return "CountMin"
	case KindCountSketch:
		return "CountSketch"
	case KindBloom:
		return "BloomFilter"
	case KindIBLT:
		return "IBLT"
	case KindTracker:
		return "HeavyHitterTracker"
	case KindDyadic:
		return "Dyadic"
	case KindDelta:
		return "Delta"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// PeekKind validates the fixed header of an encoded sketch (magic and
// version) and returns its kind without decoding the payload. Transports use
// it to route a snapshot to the right decoder and to reject junk early.
func PeekKind(data []byte) (Kind, error) {
	if len(data) < 6 {
		return 0, fmt.Errorf("sketch: truncated encoding (need 6 header bytes, have %d)", len(data))
	}
	if [4]byte(data[:4]) != encodingMagic {
		return 0, fmt.Errorf("sketch: bad magic %q", data[:4])
	}
	if v := data[4]; v != encodingVersion {
		return 0, fmt.Errorf("sketch: unsupported encoding version %d (want %d)", v, encodingVersion)
	}
	k := Kind(data[5])
	switch k {
	case KindCountMin, KindCountSketch, KindBloom, KindIBLT, KindTracker, KindDyadic, KindDelta:
		return k, nil
	default:
		return 0, fmt.Errorf("sketch: unknown sketch kind %d", uint8(k))
	}
}

// writer appends big-endian primitives to a pre-sized buffer.
type writer struct{ buf []byte }

func (w *writer) u8(v uint8)    { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32)  { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64)  { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) header(kind uint8) {
	w.buf = append(w.buf, encodingMagic[:]...)
	w.u8(encodingVersion)
	w.u8(kind)
}

// reader consumes big-endian primitives, remembering the first error so call
// sites can stay linear and check once at the end.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(format string, args ...interface{}) {
	if r.err == nil {
		r.err = fmt.Errorf("sketch: "+format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.fail("truncated encoding (need %d bytes, have %d)", n, len(r.buf))
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

// expectHeader validates magic, version and kind, and returns false (with the
// error recorded) on any mismatch.
func (r *reader) expectHeader(kind uint8, name string) bool {
	b := r.take(4)
	if b == nil {
		return false
	}
	if [4]byte(b) != encodingMagic {
		r.fail("%s: bad magic %q", name, b)
		return false
	}
	if v := r.u8(); r.err == nil && v != encodingVersion {
		r.fail("%s: unsupported encoding version %d (want %d)", name, v, encodingVersion)
		return false
	}
	if k := r.u8(); r.err == nil && k != kind {
		r.fail("%s: wrong sketch kind %d (want %d)", name, k, kind)
		return false
	}
	return r.err == nil
}

// done verifies the buffer was consumed exactly.
func (r *reader) done(name string) error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("sketch: %s: %d trailing bytes after decode", name, len(r.buf))
	}
	return nil
}

// checkDims bounds width/depth-style dimensions read off the wire.
func (r *reader) checkDims(name string, dims ...uint32) {
	const maxDim = 1 << 30
	for _, d := range dims {
		if d < 1 || d > maxDim {
			r.fail("%s: dimension %d out of range [1, %d]", name, d, maxDim)
			return
		}
	}
}

// checkPayload verifies that exactly `words` 8-byte values remain in the
// buffer. It runs before any allocation sized from the header, so a corrupt
// header claiming huge dimensions fails here instead of demanding gigabytes.
func (r *reader) checkPayload(name string, words uint64) {
	if r.err != nil {
		return
	}
	if uint64(len(r.buf)) != 8*words {
		r.fail("%s: payload is %d bytes, header claims %d", name, len(r.buf), 8*words)
	}
}

// checkFamily verifies a family byte read off the wire names a known hash
// family (hashing.NewHasher panics on unknown families, so decoders must
// reject bad bytes with an error first).
func (r *reader) checkFamily(name string, f hashing.Family) {
	switch f {
	case hashing.FamilyPoly2, hashing.FamilyPoly4, hashing.FamilyMultiplyShift, hashing.FamilyTabulation:
	default:
		r.fail("%s: unknown hash family %d", name, int(f))
	}
}

// CountMin ------------------------------------------------------------------

// MarshalBinary encodes the sketch: a versioned header carrying the family,
// conservative flag, width, depth and hash seed, followed by the total mass
// and the d x w counter matrix.
func (cm *CountMin) MarshalBinary() ([]byte, error) {
	w := writer{buf: make([]byte, 0, 6+1+1+4+4+8+8+8*cm.width*cm.depth)}
	w.header(kindCountMin)
	w.u8(uint8(cm.family))
	if cm.conservative {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(uint32(cm.width))
	w.u32(uint32(cm.depth))
	w.u64(cm.seed)
	w.f64(cm.totalMass)
	// The flat counter array is row-major, so this emits exactly the same
	// row-by-row byte stream as the pre-flat [][]float64 layout did.
	for _, v := range cm.counts {
		w.f64(v)
	}
	return w.buf, nil
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary, reconstructing
// the hash functions from the serialized seed so the result behaves
// bit-identically to the original.
func (cm *CountMin) UnmarshalBinary(data []byte) error {
	r := reader{buf: data}
	if !r.expectHeader(kindCountMin, "CountMin") {
		return r.err
	}
	family := hashing.Family(r.u8())
	conservative := r.u8() == 1
	width := r.u32()
	depth := r.u32()
	seed := r.u64()
	totalMass := r.f64()
	r.checkDims("CountMin", width, depth)
	r.checkFamily("CountMin", family)
	r.checkPayload("CountMin", uint64(width)*uint64(depth))
	if r.err != nil {
		return r.err
	}
	out := newCountMinFromSeed(seed, int(width), int(depth), family, conservative)
	out.totalMass = totalMass
	for i := range out.counts {
		out.counts[i] = r.f64()
	}
	if err := r.done("CountMin"); err != nil {
		return err
	}
	*cm = *out
	return nil
}

// CountSketch ---------------------------------------------------------------

// MarshalBinary encodes the sketch: a versioned header carrying the family,
// width, depth and hash seed, followed by the d x w counter matrix.
func (cs *CountSketch) MarshalBinary() ([]byte, error) {
	w := writer{buf: make([]byte, 0, 6+1+4+4+8+8*cs.width*cs.depth)}
	w.header(kindCountSketch)
	w.u8(uint8(cs.family))
	w.u32(uint32(cs.width))
	w.u32(uint32(cs.depth))
	w.u64(cs.seed)
	// Row-major flat array: byte stream identical to the pre-flat layout.
	for _, v := range cs.counts {
		w.f64(v)
	}
	return w.buf, nil
}

// UnmarshalBinary decodes a sketch produced by MarshalBinary.
func (cs *CountSketch) UnmarshalBinary(data []byte) error {
	r := reader{buf: data}
	if !r.expectHeader(kindCountSketch, "CountSketch") {
		return r.err
	}
	family := hashing.Family(r.u8())
	width := r.u32()
	depth := r.u32()
	seed := r.u64()
	r.checkDims("CountSketch", width, depth)
	r.checkFamily("CountSketch", family)
	r.checkPayload("CountSketch", uint64(width)*uint64(depth))
	if r.err != nil {
		return r.err
	}
	out := newCountSketchFromSeed(seed, int(width), int(depth), family)
	for i := range out.counts {
		out.counts[i] = r.f64()
	}
	if err := r.done("CountSketch"); err != nil {
		return err
	}
	*cs = *out
	return nil
}

// BloomFilter ---------------------------------------------------------------

// MarshalBinary encodes the filter: a versioned header carrying the bit
// count, hash count, hash seed and insertion count, followed by the bit
// array words.
func (bf *BloomFilter) MarshalBinary() ([]byte, error) {
	w := writer{buf: make([]byte, 0, 6+8+4+8+8+8*len(bf.bits))}
	w.header(kindBloom)
	w.u64(bf.m)
	w.u32(uint32(len(bf.hashes)))
	w.u64(bf.seed)
	w.u64(uint64(bf.count))
	for _, word := range bf.bits {
		w.u64(word)
	}
	return w.buf, nil
}

// UnmarshalBinary decodes a filter produced by MarshalBinary.
func (bf *BloomFilter) UnmarshalBinary(data []byte) error {
	r := reader{buf: data}
	if !r.expectHeader(kindBloom, "BloomFilter") {
		return r.err
	}
	m := r.u64()
	k := r.u32()
	seed := r.u64()
	count := r.u64()
	r.checkDims("BloomFilter", k)
	if r.err == nil && (m < 1 || m > 1<<36) {
		r.fail("BloomFilter: bit count %d out of range", m)
	}
	r.checkPayload("BloomFilter", (m+63)/64)
	if r.err != nil {
		return r.err
	}
	out := newBloomFilterFromSeed(seed, m, int(k))
	out.count = int(count)
	for i := range out.bits {
		out.bits[i] = r.u64()
	}
	if err := r.done("BloomFilter"); err != nil {
		return err
	}
	*bf = *out
	return nil
}

// HeavyHitterTracker ---------------------------------------------------------

// MarshalBinary encodes the tracker: a versioned header, the candidate
// capacity k, the embedded (length-prefixed) Count-Min encoding, and the
// candidate item identifiers in ascending order. Candidate scores are not
// shipped — the decoder re-derives them from the counters, exactly as
// report-time re-scoring does — so the encoding of a tracker is a pure
// function of (k, counters, candidate set) and survives a marshal/unmarshal
// round trip byte-identically.
func (t *HeavyHitterTracker) MarshalBinary() ([]byte, error) {
	cmBytes, err := t.cm.MarshalBinary()
	if err != nil {
		return nil, err
	}
	items := make([]uint64, 0, t.candidates.Len())
	for _, c := range *t.candidates {
		items = append(items, c.item)
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	w := writer{buf: make([]byte, 0, 6+4+4+len(cmBytes)+4+8*len(items))}
	w.header(kindTracker)
	w.u32(uint32(t.k))
	w.u32(uint32(len(cmBytes)))
	w.buf = append(w.buf, cmBytes...)
	w.u32(uint32(len(items)))
	for _, item := range items {
		w.u64(item)
	}
	return w.buf, nil
}

// UnmarshalBinary decodes a tracker produced by MarshalBinary: the embedded
// Count-Min is reconstructed (hash seeds and all), and the candidate heap is
// rebuilt by scoring each shipped item against the decoded counters.
func (t *HeavyHitterTracker) UnmarshalBinary(data []byte) error {
	r := reader{buf: data}
	if !r.expectHeader(kindTracker, "HeavyHitterTracker") {
		return r.err
	}
	k := r.u32()
	r.checkDims("HeavyHitterTracker", k)
	cmLen := r.u32()
	cmBytes := r.take(int(cmLen))
	if r.err != nil {
		return r.err
	}
	cm := &CountMin{}
	if err := cm.UnmarshalBinary(cmBytes); err != nil {
		return fmt.Errorf("sketch: HeavyHitterTracker: embedded sketch: %w", err)
	}
	n := r.u32()
	if r.err == nil && uint64(n) > uint64(k) {
		r.fail("HeavyHitterTracker: %d candidates exceed capacity %d", n, k)
	}
	if r.err == nil && uint64(len(r.buf)) != 8*uint64(n) {
		r.fail("HeavyHitterTracker: candidate payload is %d bytes, header claims %d", len(r.buf), 8*uint64(n))
	}
	if r.err != nil {
		return r.err
	}
	items := make([]uint64, n)
	for i := range items {
		items[i] = r.u64()
	}
	if err := r.done("HeavyHitterTracker"); err != nil {
		return err
	}
	out := newHeavyHitterTracker(cm, int(k))
	for _, item := range items {
		out.offer(item, cm.Estimate(item))
	}
	*t = *out
	return nil
}

// Dyadic ---------------------------------------------------------------------

// MarshalBinary encodes the hierarchy: a versioned header, the universe
// exponent logU, and each level's (length-prefixed) Count-Min encoding from
// level 0 upward. Every level carries its own hash seed, so the decoded
// hierarchy answers range sums, quantiles and heavy-hitter descents
// bit-identically to the original.
func (d *Dyadic) MarshalBinary() ([]byte, error) {
	levels := make([][]byte, len(d.levels))
	total := 0
	for l, cm := range d.levels {
		data, err := cm.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("sketch: Dyadic level %d: %w", l, err)
		}
		levels[l] = data
		total += 4 + len(data)
	}
	w := writer{buf: make([]byte, 0, 6+4+total)}
	w.header(kindDyadic)
	w.u32(uint32(d.logU))
	for _, data := range levels {
		w.u32(uint32(len(data)))
		w.buf = append(w.buf, data...)
	}
	return w.buf, nil
}

// UnmarshalBinary decodes a hierarchy produced by MarshalBinary,
// reconstructing every level's hash functions from its serialized seed.
func (d *Dyadic) UnmarshalBinary(data []byte) error {
	r := reader{buf: data}
	if !r.expectHeader(kindDyadic, "Dyadic") {
		return r.err
	}
	logU := r.u32()
	if r.err == nil && (logU < 1 || logU > 63) {
		r.fail("Dyadic: universe exponent %d out of range [1, 63]", logU)
	}
	if r.err != nil {
		return r.err
	}
	out := &Dyadic{
		logU:     int(logU),
		levels:   make([]*CountMin, logU+1),
		universe: 1 << logU,
	}
	for l := range out.levels {
		cmLen := r.u32()
		cmBytes := r.take(int(cmLen))
		if r.err != nil {
			return r.err
		}
		cm := &CountMin{}
		if err := cm.UnmarshalBinary(cmBytes); err != nil {
			return fmt.Errorf("sketch: Dyadic level %d: %w", l, err)
		}
		out.levels[l] = cm
	}
	if err := r.done("Dyadic"); err != nil {
		return err
	}
	*d = *out
	return nil
}

// IBLT ----------------------------------------------------------------------

// MarshalBinary encodes the table: a versioned header carrying the cell
// count, hash count and hash seed, followed by the (count, keySum, hashSum)
// triple of every cell.
func (t *IBLT) MarshalBinary() ([]byte, error) {
	w := writer{buf: make([]byte, 0, 6+4+4+8+24*len(t.cells))}
	w.header(kindIBLT)
	w.u32(uint32(len(t.cells)))
	w.u32(uint32(t.k))
	w.u64(t.seed)
	for _, c := range t.cells {
		w.u64(uint64(c.count))
		w.u64(c.keySum)
		w.u64(c.hashSum)
	}
	return w.buf, nil
}

// Delta envelope -------------------------------------------------------------
//
// The dense encodings above ship every counter, zero or not — the right call
// for full snapshots, and the wrong one for snapshot *differences*, which by
// linearity are valid sketches whose counters are almost all zero (only the
// buckets touched since the previous snapshot are nonzero). EncodeDelta
// wraps any encoded sketch in a KindDelta envelope whose payload is a
// byte-level zero-run-length compression of the inner encoding:
//
//	magic   [4]byte  "SKC1"
//	version uint8    encodingVersion
//	kind    uint8    kindDelta
//	rawLen  uint32   length of the inner encoding in bytes
//	tokens           repeated (zeroRun uvarint, litLen uvarint, lit bytes)
//
// Each token says "rawLen bytes continue with zeroRun zeros, then litLen
// literal bytes". Zero counters are eight zero bytes, so a sparse delta
// compresses by roughly the fraction of untouched counters; a dense sketch
// round-trips with only a few bytes of overhead. The scheme is agnostic to
// the inner kind — Count-Min, tracker, dyadic and every future family get
// sparse deltas for free, and the inner bytes come back verbatim, so the
// decoded sketch is bit-identical.

// EncodeDelta wraps an encoded sketch (the output of any MarshalBinary) in
// the compressed KindDelta envelope. Use it when the sketch is a snapshot
// difference: mostly-zero counters compress to a small fraction of the dense
// size.
func EncodeDelta(inner []byte) []byte {
	w := writer{buf: make([]byte, 0, 6+4+binary.MaxVarintLen64+len(inner)/4)}
	w.header(kindDelta)
	w.u32(uint32(len(inner)))
	var varint [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) {
		w.buf = append(w.buf, varint[:binary.PutUvarint(varint[:], v)]...)
	}
	for i := 0; i < len(inner); {
		zeros := i
		for zeros < len(inner) && inner[zeros] == 0 {
			zeros++
		}
		lit := zeros
		// A literal run ends at the next stretch of >= 4 zeros (shorter zero
		// gaps cost less as literals than as a fresh token pair).
		for lit < len(inner) {
			if inner[lit] == 0 {
				end := lit
				for end < len(inner) && inner[end] == 0 {
					end++
				}
				if end-lit >= 4 || end == len(inner) {
					break
				}
				lit = end
				continue
			}
			lit++
		}
		putUvarint(uint64(zeros - i))
		putUvarint(uint64(lit - zeros))
		w.buf = append(w.buf, inner[zeros:lit]...)
		i = lit
	}
	return w.buf
}

// maxDeltaInner is the default DecodeDelta bound on the declared inner
// length: generous for any realistic sketch (16M counters) while keeping a
// forged header from demanding an arbitrary allocation.
const maxDeltaInner = 128 << 20

// DecodeDelta unwraps a KindDelta envelope and returns the inner sketch
// encoding verbatim, ready for PeekKind dispatch and UnmarshalBinary. It
// rejects truncated, oversized and self-inconsistent envelopes; the inner
// length is capped at a generous package default (see DecodeDeltaLimit for
// callers that know how big their sketches can legitimately be — the
// envelope compresses, so a tiny body can declare a large inner length,
// and the cap is what stands between a forged header and the allocator).
func DecodeDelta(data []byte) ([]byte, error) {
	return DecodeDeltaLimit(data, maxDeltaInner)
}

// DecodeDeltaLimit is DecodeDelta with a caller-chosen ceiling on the
// declared inner length. Transports should pass a small multiple of their
// own sketch's dense encoding size, so a forged header cannot demand more
// memory than a legitimate peer ever would.
func DecodeDeltaLimit(data []byte, maxInner int) ([]byte, error) {
	r := reader{buf: data}
	if !r.expectHeader(kindDelta, "Delta") {
		return nil, r.err
	}
	rawLen := r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if maxInner < 0 || maxInner > maxDeltaInner {
		maxInner = maxDeltaInner
	}
	if rawLen > uint32(maxInner) {
		return nil, fmt.Errorf("sketch: Delta: inner length %d exceeds limit %d", rawLen, maxInner)
	}
	inner := make([]byte, 0, rawLen)
	buf := r.buf
	for len(buf) > 0 {
		zeros, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("sketch: Delta: malformed zero-run length")
		}
		buf = buf[n:]
		lit, n := binary.Uvarint(buf)
		if n <= 0 {
			return nil, fmt.Errorf("sketch: Delta: malformed literal length")
		}
		buf = buf[n:]
		remaining := uint64(rawLen) - uint64(len(inner))
		if zeros > remaining || lit > remaining-zeros {
			return nil, fmt.Errorf("sketch: Delta: token overruns declared inner length %d", rawLen)
		}
		if uint64(len(buf)) < lit {
			return nil, fmt.Errorf("sketch: Delta: truncated literal run (need %d bytes, have %d)", lit, len(buf))
		}
		inner = append(inner, make([]byte, zeros)...)
		inner = append(inner, buf[:lit]...)
		buf = buf[lit:]
	}
	if uint32(len(inner)) != rawLen {
		return nil, fmt.Errorf("sketch: Delta: payload decompresses to %d bytes, header claims %d", len(inner), rawLen)
	}
	return inner, nil
}

// UnmarshalBinary decodes a table produced by MarshalBinary.
func (t *IBLT) UnmarshalBinary(data []byte) error {
	r := reader{buf: data}
	if !r.expectHeader(kindIBLT, "IBLT") {
		return r.err
	}
	m := r.u32()
	k := r.u32()
	seed := r.u64()
	r.checkDims("IBLT", m, k)
	r.checkPayload("IBLT", 3*uint64(m))
	if r.err != nil {
		return r.err
	}
	out := newIBLTFromSeed(seed, int(m), int(k))
	for i := range out.cells {
		out.cells[i] = ibltCell{
			count:   int64(r.u64()),
			keySum:  r.u64(),
			hashSum: r.u64(),
		}
	}
	if err := r.done("IBLT"); err != nil {
		return err
	}
	*t = *out
	return nil
}
