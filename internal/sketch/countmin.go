package sketch

import (
	"fmt"
	"math"

	"repro/internal/hashing"
	"repro/internal/xrand"
)

// CountMin is the Count-Min sketch of Cormode and Muthukrishnan [CM04]: a
// d x w array of counters, one pairwise-independent hash function per row.
// An update (item, delta) adds delta to one counter per row; a point query
// returns the minimum counter over the rows, which for non-negative streams
// overestimates the true count by at most eps*||x||_1 with probability at
// least 1-delta when w = ceil(e/eps) and d = ceil(ln(1/delta)).
//
// The counters live in one flat contiguous array (row r occupies
// counts[r*width : (r+1)*width]), so the batched update path walks memory
// row-by-row with no pointer chasing, and UpdateBatch drives each row through
// the devirtualized hash kernels of internal/hashing. The batch path is
// bit-identical to per-item updates: for any one counter, the same deltas
// arrive in the same stream order either way.
type CountMin struct {
	width  int
	depth  int
	counts []float64 // flat, row-major: row r at counts[r*width:(r+1)*width]
	hashes []hashing.Hasher
	// conservative enables conservative update (only raise the counters that
	// are below the new lower bound); only valid for non-negative deltas.
	conservative bool
	totalMass    float64
	// seed and family fully determine the hash functions: the rows are drawn
	// from xrand.New(seed) in order. MarshalBinary ships only (seed, family)
	// and UnmarshalBinary rebuilds hashers that are bit-identical in behavior.
	seed   uint64
	family hashing.Family

	// bucketScratch is the reusable per-sketch bucket column for UpdateBatch
	// (grown once to the largest batch seen, zero allocations steady-state).
	// It makes writes single-goroutine, like the counters themselves; reads
	// (Estimate) never touch it, so snapshots stay safe to query concurrently.
	bucketScratch []uint64
	// oneKey/oneDelta back the per-item Update, which is a len-1 UpdateBatch.
	oneKey   [1]uint64
	oneDelta [1]float64
	// estScratch backs EstimateBatch (see estimate.go) the way bucketScratch
	// backs UpdateBatch: sketch-owned, grown once, zero allocations
	// steady-state, single goroutine at a time. Concurrent readers use
	// EstimateBatchWith with their own scratch instead.
	estScratch EstimateScratch
}

// CountMinOption configures a CountMin sketch at construction time.
type CountMinOption func(*countMinConfig)

type countMinConfig struct {
	family       hashing.Family
	conservative bool
}

// WithConservativeUpdate enables the conservative-update heuristic
// (Estan-Varghese), which reduces overestimation for insertion-only streams.
func WithConservativeUpdate() CountMinOption {
	return func(c *countMinConfig) { c.conservative = true }
}

// WithCountMinHashFamily selects the hash family used for the rows.
func WithCountMinHashFamily(f hashing.Family) CountMinOption {
	return func(c *countMinConfig) { c.family = f }
}

// NewCountMin creates a Count-Min sketch with the given width (counters per
// row) and depth (number of rows).
func NewCountMin(r *xrand.Rand, width, depth int, opts ...CountMinOption) *CountMin {
	if width < 1 || depth < 1 {
		panic(fmt.Sprintf("sketch: NewCountMin requires width, depth >= 1 (got %d, %d)", width, depth))
	}
	cfg := countMinConfig{family: hashing.FamilyPoly2}
	for _, o := range opts {
		o(&cfg)
	}
	return newCountMinFromSeed(r.Uint64(), width, depth, cfg.family, cfg.conservative)
}

// newCountMinFromSeed builds the sketch deterministically from a hash seed.
// It is the single construction path, shared by NewCountMin and
// UnmarshalBinary, so a deserialized sketch hashes identically to the
// original.
func newCountMinFromSeed(seed uint64, width, depth int, family hashing.Family, conservative bool) *CountMin {
	hr := xrand.New(seed)
	cm := &CountMin{
		width:        width,
		depth:        depth,
		counts:       make([]float64, width*depth),
		hashes:       make([]hashing.Hasher, depth),
		conservative: conservative,
		seed:         seed,
		family:       family,
	}
	for i := 0; i < depth; i++ {
		cm.hashes[i] = hashing.NewHasher(family, hr, uint64(width))
	}
	return cm
}

// NewCountMinWithError creates a Count-Min sketch sized for additive error
// eps*||x||_1 with failure probability delta: width = ceil(e/eps),
// depth = ceil(ln(1/delta)).
func NewCountMinWithError(r *xrand.Rand, eps, delta float64, opts ...CountMinOption) *CountMin {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		panic("sketch: NewCountMinWithError requires eps, delta in (0,1)")
	}
	width := int(math.Ceil(math.E / eps))
	depth := int(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	return NewCountMin(r, width, depth, opts...)
}

// Width returns the number of counters per row.
func (cm *CountMin) Width() int { return cm.width }

// Depth returns the number of rows.
func (cm *CountMin) Depth() int { return cm.depth }

// Size returns the total number of counters (the sketch's space in words).
func (cm *CountMin) Size() int { return cm.width * cm.depth }

// row returns the counter slice of one row (a view into the flat array).
func (cm *CountMin) row(r int) []float64 {
	return cm.counts[r*cm.width : (r+1)*cm.width]
}

// bucket returns the bucket index of item in row. Hash ranges may be rounded
// up to a power of two (multiply-shift), so reduce modulo width.
func (cm *CountMin) bucket(row int, item uint64) int {
	return int(cm.hashes[row].Hash(item) % uint64(cm.width))
}

// buckets returns the reusable bucket column, grown to hold n entries.
func (cm *CountMin) buckets(n int) []uint64 {
	if cap(cm.bucketScratch) < n {
		cm.bucketScratch = make([]uint64, n)
	}
	return cm.bucketScratch[:n]
}

// Update adds delta to the item's count. Negative deltas are allowed only
// when conservative update is disabled. It is a len-1 UpdateBatch.
func (cm *CountMin) Update(item uint64, delta float64) {
	cm.oneKey[0] = item
	cm.oneDelta[0] = delta
	cm.UpdateBatch(cm.oneKey[:], cm.oneDelta[:])
}

// UpdateBatch adds deltas[i] to items[i]'s count for every i, equivalent to
// (and bit-identical with) calling Update item by item but driven through the
// batched hash kernels: each row hashes the whole key column in one
// devirtualized loop, then scatters the deltas into that row's contiguous
// counters. The scratch column is reused across calls, so steady-state
// ingestion does not allocate. The slices must have equal length; the sketch
// does not retain them.
func (cm *CountMin) UpdateBatch(items []uint64, deltas []float64) {
	if len(items) != len(deltas) {
		panic(fmt.Sprintf("sketch: CountMin.UpdateBatch length mismatch (%d items, %d deltas)", len(items), len(deltas)))
	}
	if len(items) == 0 {
		return
	}
	if cm.conservative {
		// Conservative update is not linear: each item's target depends on its
		// current estimate, so the batch degenerates to the per-item loop.
		for i, item := range items {
			cm.updateConservative(item, deltas[i])
		}
		return
	}
	buckets := cm.buckets(len(items))
	w := uint64(cm.width)
	for r := 0; r < cm.depth; r++ {
		hashing.HashBatch(cm.hashes[r], items, buckets)
		row := cm.row(r)
		for i, b := range buckets {
			row[b%w] += deltas[i]
		}
	}
	for _, d := range deltas {
		cm.totalMass += d
	}
}

// updateConservative applies one conservative update: the new lower bound for
// the item's count is estimate + delta; raise only the counters below it.
func (cm *CountMin) updateConservative(item uint64, delta float64) {
	if delta < 0 {
		panic("sketch: conservative-update CountMin cannot process negative deltas")
	}
	est := cm.Estimate(item)
	target := est + delta
	for r := 0; r < cm.depth; r++ {
		row := cm.row(r)
		if b := cm.bucket(r, item); row[b] < target {
			row[b] = target
		}
	}
	cm.totalMass += delta
}

// Estimate returns the estimated count of item (the row minimum). For
// non-negative streams this never underestimates.
func (cm *CountMin) Estimate(item uint64) float64 {
	est := math.Inf(1)
	for r := 0; r < cm.depth; r++ {
		if v := cm.counts[r*cm.width+cm.bucket(r, item)]; v < est {
			est = v
		}
	}
	return est
}

// TotalMass returns the sum of all deltas processed.
func (cm *CountMin) TotalMass() float64 { return cm.totalMass }

// Conservative reports whether the sketch uses conservative update.
// Conservative-update sketches are not linear and cannot be merged.
func (cm *CountMin) Conservative() bool { return cm.conservative }

// InnerProduct estimates the inner product <x, y> of the frequency vectors
// summarized by cm and other. Both sketches must have been created with the
// same dimensions and the same hash functions (use Clone for that); the
// estimate is the minimum over rows of the row-wise counter dot products.
func (cm *CountMin) InnerProduct(other *CountMin) (float64, error) {
	if cm.width != other.width || cm.depth != other.depth {
		return 0, fmt.Errorf("sketch: inner product requires equal dimensions (%dx%d vs %dx%d)",
			cm.depth, cm.width, other.depth, other.width)
	}
	est := math.Inf(1)
	for r := 0; r < cm.depth; r++ {
		a, b := cm.row(r), other.row(r)
		var s float64
		for j := range a {
			s += a[j] * b[j]
		}
		if s < est {
			est = s
		}
	}
	return est, nil
}

// CompatibleWith returns nil when other was built with the same dimensions,
// hash seed and family as cm, i.e. when the two sketches are views of the
// same linear map and therefore merge exactly. Merge itself only checks
// dimensions (in-process callers derive clones from one prototype, so the
// seeds cannot differ); transports that accept serialized sketches from
// possibly misconfigured peers should call CompatibleWith first.
func (cm *CountMin) CompatibleWith(other *CountMin) error {
	if cm.width != other.width || cm.depth != other.depth {
		return fmt.Errorf("sketch: dimension mismatch: %dx%d vs %dx%d (width x depth)",
			cm.width, cm.depth, other.width, other.depth)
	}
	if cm.seed != other.seed || cm.family != other.family {
		return fmt.Errorf("sketch: hash mismatch: sketches were not built from the same seed/family and cannot be merged")
	}
	return nil
}

// Merge adds the counters of other into cm. The sketches must share hash
// functions (i.e. other must have been created by cm.Clone()); merging
// sketches with different hash functions silently produces garbage, so the
// dimensions are checked and the caller is trusted for the rest, as in
// production Count-Min implementations.
func (cm *CountMin) Merge(other *CountMin) error {
	if cm.width != other.width || cm.depth != other.depth {
		return fmt.Errorf("sketch: cannot merge CountMin of different dimensions")
	}
	if cm.conservative || other.conservative {
		return fmt.Errorf("sketch: conservative-update CountMin sketches are not mergeable")
	}
	for i, v := range other.counts {
		cm.counts[i] += v
	}
	cm.totalMass += other.totalMass
	return nil
}

// Sub subtracts the counters of other from cm — the inverse of Merge. Like
// Merge, the sketches must share hash functions (other created by cm.Clone()
// or deserialized from one); only the dimensions are checked.
//
// Linearity is what makes the result meaningful: if cm summarizes stream x
// and other summarizes a prefix (or any sub-stream) y of it, cm after Sub is
// exactly the sketch of x - y. In particular the difference of two snapshots
// of one growing sketch is itself a valid sketch of the updates between
// them, which is how sketchd peers ship deltas instead of full state. When
// every delta is integer-valued (or more generally whenever the counter
// sums are exact in float64), Sub(b) followed by Merge(b) restores cm bit
// for bit.
func (cm *CountMin) Sub(other *CountMin) error {
	if cm.width != other.width || cm.depth != other.depth {
		return fmt.Errorf("sketch: cannot subtract CountMin of different dimensions")
	}
	if cm.conservative || other.conservative {
		return fmt.Errorf("sketch: conservative-update CountMin sketches are not linear and cannot be subtracted")
	}
	for i, v := range other.counts {
		cm.counts[i] -= v
	}
	cm.totalMass -= other.totalMass
	return nil
}

// Scale multiplies every counter (and the total mass) by c. Scale(-1)
// negates the sketch, so Merge(negated clone) is the same subtraction Sub
// performs in one pass. Conservative-update sketches are not linear and
// cannot be scaled.
func (cm *CountMin) Scale(c float64) {
	if cm.conservative {
		panic("sketch: conservative-update CountMin sketches are not linear and cannot be scaled")
	}
	for i := range cm.counts {
		cm.counts[i] *= c
	}
	cm.totalMass *= c
}

// Clone returns an empty sketch sharing cm's hash functions, suitable for
// sketching a second stream and then merging or taking inner products. The
// clone gets its own counters and scratch, so clones ingest concurrently.
func (cm *CountMin) Clone() *CountMin {
	return &CountMin{
		width:        cm.width,
		depth:        cm.depth,
		counts:       make([]float64, len(cm.counts)),
		hashes:       cm.hashes,
		conservative: cm.conservative,
		seed:         cm.seed,
		family:       cm.family,
	}
}

// Copy returns a deep copy of cm: same hash functions, its own counters
// holding the current values. It is the snapshot idiom the delta math uses
// (retain a Copy, keep ingesting, Sub the copy later).
func (cm *CountMin) Copy() *CountMin {
	out := cm.Clone()
	copy(out.counts, cm.counts)
	out.totalMass = cm.totalMass
	return out
}

// Counters returns the counter matrix as one row view per depth. The rows
// alias the live flat backing store; callers must not modify them. Exposed
// for the core package's matrix view and for tests.
func (cm *CountMin) Counters() [][]float64 {
	rows := make([][]float64, cm.depth)
	for r := range rows {
		rows[r] = cm.row(r)
	}
	return rows
}

// CounterData returns the flat row-major counter array (row r at
// [r*width, (r+1)*width)). It is the live backing store; callers must not
// modify it.
func (cm *CountMin) CounterData() []float64 { return cm.counts }

// RowBucket exposes the bucket an item maps to in a given row; used by the
// core package to materialize the sketch as an explicit sparse matrix.
func (cm *CountMin) RowBucket(row int, item uint64) int {
	if row < 0 || row >= cm.depth {
		panic("sketch: RowBucket row out of range")
	}
	return cm.bucket(row, item)
}

// Column partitioning (see columns.go) ---------------------------------------

// ColumnShape returns the sketch's column-partition geometry: depth rows of
// width columns.
func (cm *CountMin) ColumnShape() ColumnShape {
	return ColumnShape{Rows: cm.depth, Width: cm.width}
}

// ScatterColumns hashes a key/delta batch through the same batch kernels
// UpdateBatch uses and routes each row's counter increment to the shard
// owning its bucket's column, plus the batch's delta mass. It reads only the
// shared hash functions and the scatter's own scratch, so any number of
// producers may scatter through one prototype concurrently. Conservative
// update is not linear and cannot be partitioned (panics, mirroring Merge's
// refusal).
func (cm *CountMin) ScatterColumns(items []uint64, deltas []float64, sc *ColumnScatter) {
	if len(items) != len(deltas) {
		panic(fmt.Sprintf("sketch: CountMin.ScatterColumns length mismatch (%d items, %d deltas)", len(items), len(deltas)))
	}
	if cm.conservative {
		panic("sketch: conservative-update CountMin is not linear and cannot be column-partitioned")
	}
	buckets := sc.bucketScratch(len(items))
	w := uint64(cm.width)
	for r := 0; r < cm.depth; r++ {
		hashing.HashBatch(cm.hashes[r], items, buckets)
		for i, b := range buckets {
			sc.route(r, b%w, deltas[i])
		}
	}
	for _, d := range deltas {
		sc.Mass += d
	}
}

// AppendColumnSlice appends the row-major counters of the columns shard j of
// n owns — the exact slice a partitioned engine's shard j holds for this
// sketch — and returns the extended slice.
func (cm *CountMin) AppendColumnSlice(dst []float64, shard, shards int) []float64 {
	lo, hi := cm.ColumnShape().Range(shard, shards)
	return appendColumnSlice(dst, cm.counts, cm.width, cm.depth, lo, hi)
}

// ConcatColumns overwrites the counters from per-shard column slices (the
// inverse of AppendColumnSlice over all shards) and sets the total mass to
// the summed shard masses. With exactly summable deltas the result is
// bit-identical to the sketch a single-threaded run would have produced.
func (cm *CountMin) ConcatColumns(slices [][]float64, mass float64) error {
	if err := concatColumnSlices(cm.counts, slices, cm.ColumnShape()); err != nil {
		return err
	}
	cm.totalMass = mass
	return nil
}

// ColumnMass returns the mass a partitioned engine must account for when
// absorbing this sketch into column shards.
func (cm *CountMin) ColumnMass() float64 { return cm.totalMass }
