package sketch

import (
	"math"
	"testing"

	"repro/internal/hashing"
	"repro/internal/xrand"
)

// The tests in this file pin the read-side batch contract the way
// batch_test.go pins the write side: EstimateBatch is bit-identical to
// per-item Estimate for every family and every hash family, over both the
// sketch-owned and the caller-owned scratch paths, and the steady-state path
// does not allocate.

// queryKeys draws a key column that mixes keys the sketch has seen with
// fresh ones (collisions and empty buckets both exercised), spanning dense
// and full 64-bit ranges like randomColumns does.
func queryKeys(r *xrand.Rand, ingested []uint64, n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		switch i % 3 {
		case 0:
			keys[i] = ingested[int(r.Uint64n(uint64(len(ingested))))]
		case 1:
			keys[i] = r.Uint64n(1 << 16)
		default:
			keys[i] = r.Uint64()
		}
	}
	return keys
}

// requireBatchMatchesScalar checks both entry points against the scalar
// estimator, bit for bit (NaN-safe via Float64bits).
func requireBatchMatchesScalar(t *testing.T, be BatchEstimator, keys []uint64) {
	t.Helper()
	dst := make([]float64, len(keys))
	at := 0
	for _, c := range chunks(len(keys)) {
		be.EstimateBatch(keys[at:at+c], dst[at:at+c])
		at += c
	}
	for i, key := range keys {
		if want := be.Estimate(key); math.Float64bits(dst[i]) != math.Float64bits(want) {
			t.Fatalf("EstimateBatch[%d] (key %d): got %v, scalar %v", i, key, dst[i], want)
		}
	}
	var sc EstimateScratch
	with := make([]float64, len(keys))
	at = 0
	for _, c := range chunks(len(keys)) {
		be.EstimateBatchWith(keys[at:at+c], with[at:at+c], &sc)
		at += c
	}
	for i := range keys {
		if math.Float64bits(with[i]) != math.Float64bits(dst[i]) {
			t.Fatalf("EstimateBatchWith[%d]: got %v, EstimateBatch %v", i, with[i], dst[i])
		}
	}
}

// TestCountMinEstimateBatchMatchesScalar: per hash family, random dims,
// batch == scalar bit for bit on a mixed seen/unseen key column.
func TestCountMinEstimateBatchMatchesScalar(t *testing.T) {
	families := []hashing.Family{hashing.FamilyPoly2, hashing.FamilyPoly4, hashing.FamilyMultiplyShift, hashing.FamilyTabulation}
	r := xrand.New(31)
	for _, f := range families {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				width := 1 + int(r.Uint64n(300))
				depth := 1 + int(r.Uint64n(6))
				cm := NewCountMin(xrand.New(r.Uint64()), width, depth, WithCountMinHashFamily(f))
				items, deltas := randomColumns(r, 1000)
				cm.UpdateBatch(items, deltas)
				requireBatchMatchesScalar(t, cm, queryKeys(r, items, 500))
			}
		})
	}
}

// TestCountSketchEstimateBatchMatchesScalar covers the signed median path,
// including even depths (median averages the two middle row values).
func TestCountSketchEstimateBatchMatchesScalar(t *testing.T) {
	families := []hashing.Family{hashing.FamilyPoly2, hashing.FamilyPoly4, hashing.FamilyMultiplyShift, hashing.FamilyTabulation}
	r := xrand.New(32)
	for _, f := range families {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				width := 1 + int(r.Uint64n(300))
				depth := 1 + int(r.Uint64n(6))
				cs := NewCountSketch(xrand.New(r.Uint64()), width, depth, WithCountSketchHashFamily(f))
				items, deltas := randomColumns(r, 1000)
				cs.UpdateBatch(items, deltas)
				requireBatchMatchesScalar(t, cs, queryKeys(r, items, 500))
			}
		})
	}
}

// TestDyadicEstimateBatchMatchesScalar: the hierarchy reads its level-0
// Count-Min either way.
func TestDyadicEstimateBatchMatchesScalar(t *testing.T) {
	r := xrand.New(33)
	d := NewDyadic(xrand.New(9), 16, 128, 3)
	items := make([]uint64, 1000)
	deltas := make([]float64, 1000)
	for i := range items {
		items[i] = r.Uint64n(1 << 16)
		deltas[i] = float64(r.Uint64n(100)) / 3
	}
	d.UpdateBatch(items, deltas)
	requireBatchMatchesScalar(t, d, queryKeys(r, items, 500))
}

// TestTrackerEstimateBatchMatchesScalar: the tracker answers from its
// backing Count-Min either way.
func TestTrackerEstimateBatchMatchesScalar(t *testing.T) {
	r := xrand.New(34)
	tr := NewHeavyHitterTracker(xrand.New(10), 256, 4, 16)
	items, deltas := randomColumns(r, 1000)
	for i := range deltas {
		deltas[i] = math.Abs(deltas[i])
	}
	tr.UpdateBatch(items, deltas)
	requireBatchMatchesScalar(t, tr, queryKeys(r, items, 500))
}

// TestEstimateBatchLengthMismatchPanics pins the contract violation to a
// panic for every batched family, mirroring the UpdateBatch contract.
func TestEstimateBatchLengthMismatchPanics(t *testing.T) {
	r := xrand.New(35)
	cases := map[string]func(){
		"countmin":    func() { NewCountMin(r, 8, 2).EstimateBatch(make([]uint64, 3), make([]float64, 2)) },
		"countsketch": func() { NewCountSketch(r, 8, 2).EstimateBatch(make([]uint64, 3), make([]float64, 2)) },
		"dyadic":      func() { NewDyadic(r, 4, 8, 2).EstimateBatch(make([]uint64, 3), make([]float64, 2)) },
		"tracker":     func() { NewHeavyHitterTracker(r, 8, 2, 4).EstimateBatch(make([]uint64, 3), make([]float64, 2)) },
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: length mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestEstimateBatchZeroAlloc asserts the steady-state allocation contract of
// both scratch modes directly (the E18 benchmark reports it; this fails the
// build if it regresses).
func TestEstimateBatchZeroAlloc(t *testing.T) {
	items, deltas := benchColumns(2048)
	dst := make([]float64, len(items))
	cm := NewCountMin(xrand.New(1), 1024, 4)
	cs := NewCountSketch(xrand.New(1), 1024, 4)
	cm.UpdateBatch(items, deltas)
	cs.UpdateBatch(items, deltas)
	var sc EstimateScratch
	cm.EstimateBatch(items, dst)
	cs.EstimateBatch(items, dst)
	cm.EstimateBatchWith(items, dst, &sc)
	cs.EstimateBatchWith(items, dst, &sc)
	for name, fn := range map[string]func(){
		"countmin":         func() { cm.EstimateBatch(items, dst) },
		"countsketch":      func() { cs.EstimateBatch(items, dst) },
		"countmin-with":    func() { cm.EstimateBatchWith(items, dst, &sc) },
		"countsketch-with": func() { cs.EstimateBatchWith(items, dst, &sc) },
	} {
		if avg := testing.AllocsPerRun(20, fn); avg != 0 {
			t.Errorf("%s: EstimateBatch allocates %v objects steady-state, want 0", name, avg)
		}
	}
}

func benchmarkSketchEstimateBatch(b *testing.B, estimate func(keys []uint64, dst []float64)) {
	const batchLen = 4096
	keys, _ := benchColumns(batchLen)
	dst := make([]float64, batchLen)
	estimate(keys, dst) // warm the scratch so steady state is measured
	b.SetBytes(batchLen * 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		estimate(keys, dst)
	}
}

func BenchmarkCountMinEstimateBatch(b *testing.B) {
	for _, f := range []hashing.Family{hashing.FamilyMultiplyShift, hashing.FamilyPoly2, hashing.FamilyTabulation} {
		b.Run(f.String(), func(b *testing.B) {
			cm := NewCountMin(xrand.New(1), 4096, 4, WithCountMinHashFamily(f))
			items, deltas := benchColumns(4096)
			cm.UpdateBatch(items, deltas)
			benchmarkSketchEstimateBatch(b, cm.EstimateBatch)
		})
	}
}

func BenchmarkCountMinEstimateScalar(b *testing.B) {
	for _, f := range []hashing.Family{hashing.FamilyMultiplyShift, hashing.FamilyPoly2, hashing.FamilyTabulation} {
		b.Run(f.String(), func(b *testing.B) {
			cm := NewCountMin(xrand.New(1), 4096, 4, WithCountMinHashFamily(f))
			items, deltas := benchColumns(4096)
			cm.UpdateBatch(items, deltas)
			benchmarkSketchEstimateBatch(b, func(keys []uint64, dst []float64) {
				for i, key := range keys {
					dst[i] = cm.Estimate(key)
				}
			})
		})
	}
}

func BenchmarkCountSketchEstimateBatch(b *testing.B) {
	cs := NewCountSketch(xrand.New(1), 4096, 4)
	items, deltas := benchColumns(4096)
	cs.UpdateBatch(items, deltas)
	benchmarkSketchEstimateBatch(b, cs.EstimateBatch)
}

func BenchmarkCountSketchEstimateScalar(b *testing.B) {
	cs := NewCountSketch(xrand.New(1), 4096, 4)
	items, deltas := benchColumns(4096)
	cs.UpdateBatch(items, deltas)
	benchmarkSketchEstimateBatch(b, func(keys []uint64, dst []float64) {
		for i, key := range keys {
			dst[i] = cs.Estimate(key)
		}
	})
}
