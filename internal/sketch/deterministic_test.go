package sketch

import (
	"testing"

	"repro/internal/stream"
	"repro/internal/xrand"
)

func TestMisraGriesGuarantee(t *testing.T) {
	// Every item with frequency > N/(k+1) must be tracked, and estimates
	// must underestimate by at most N/(k+1).
	r := xrand.New(1)
	const k = 20
	mg := NewMisraGries(k)
	s := stream.Zipf(r, 10000, 50000, 1.2)
	exact := stream.NewExactCounter()
	for _, u := range s.Updates {
		mg.Update(u.Item, u.Delta)
		exact.Update(u.Item, u.Delta)
	}
	n := exact.Total()
	slack := n / int64(k+1)
	for _, ic := range exact.TopK(exact.DistinctItems()) {
		if ic.Count > slack {
			est := mg.Estimate(ic.Item)
			if est == 0 {
				t.Errorf("item %d with count %d (> N/(k+1)=%d) not tracked", ic.Item, ic.Count, slack)
			}
			if est > ic.Count {
				t.Errorf("MisraGries overestimated item %d: %d > %d", ic.Item, est, ic.Count)
			}
			if ic.Count-est > slack {
				t.Errorf("MisraGries underestimate too large for %d: %d vs %d", ic.Item, est, ic.Count)
			}
		}
	}
	if mg.Size() > mg.Capacity() {
		t.Errorf("MisraGries holds %d counters, capacity %d", mg.Size(), mg.Capacity())
	}
}

func TestMisraGriesWeightedUpdates(t *testing.T) {
	mg := NewMisraGries(2)
	mg.Update(1, 10)
	mg.Update(2, 5)
	mg.Update(3, 4) // forces decrement by min(4, min(10,5)) = 4
	if got := mg.Estimate(1); got != 6 {
		t.Errorf("Estimate(1) = %d, want 6", got)
	}
	if got := mg.Estimate(2); got != 1 {
		t.Errorf("Estimate(2) = %d, want 1", got)
	}
	if got := mg.Estimate(3); got != 0 {
		t.Errorf("Estimate(3) = %d, want 0 (fully absorbed)", got)
	}
}

func TestMisraGriesCandidatesSorted(t *testing.T) {
	mg := NewMisraGries(5)
	mg.Update(1, 10)
	mg.Update(2, 20)
	mg.Update(3, 5)
	c := mg.Candidates()
	if len(c) != 3 || c[0].Item != 2 || c[2].Item != 3 {
		t.Fatalf("Candidates = %v", c)
	}
	hh := mg.HeavyHitters(0.5)
	if len(hh) != 1 || hh[0].Item != 2 {
		t.Fatalf("HeavyHitters(0.5) = %v", hh)
	}
}

func TestMisraGriesPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMisraGries(0) },
		func() { NewMisraGries(2).Update(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSpaceSavingNeverUnderestimatesTracked(t *testing.T) {
	r := xrand.New(3)
	const k = 50
	ss := NewSpaceSaving(k)
	s := stream.Zipf(r, 5000, 40000, 1.2)
	exact := stream.NewExactCounter()
	for _, u := range s.Updates {
		ss.Update(u.Item, u.Delta)
		exact.Update(u.Item, u.Delta)
	}
	if ss.Size() > k {
		t.Fatalf("SpaceSaving holds %d > k=%d counters", ss.Size(), k)
	}
	// For tracked items: estimate >= true count >= guaranteed count.
	for _, ic := range ss.Candidates() {
		truth := exact.Count(ic.Item)
		if ic.Count < truth {
			t.Errorf("SpaceSaving underestimated tracked item %d: %d < %d", ic.Item, ic.Count, truth)
		}
		if g := ss.GuaranteedCount(ic.Item); g > truth {
			t.Errorf("guaranteed count %d exceeds truth %d for item %d", g, truth, ic.Item)
		}
	}
	// The true top-5 items must all be tracked (SpaceSaving guarantee for
	// sufficiently skewed streams with k much larger than 5).
	tracked := map[uint64]bool{}
	for _, ic := range ss.Candidates() {
		tracked[ic.Item] = true
	}
	for _, ic := range exact.TopK(5) {
		if !tracked[ic.Item] {
			t.Errorf("true top item %d (count %d) not tracked", ic.Item, ic.Count)
		}
	}
}

func TestSpaceSavingHeavyHitters(t *testing.T) {
	ss := NewSpaceSaving(3)
	ss.Update(1, 60)
	ss.Update(2, 30)
	ss.Update(3, 10)
	hh := ss.HeavyHitters(0.5)
	if len(hh) != 1 || hh[0].Item != 1 {
		t.Fatalf("HeavyHitters = %v", hh)
	}
	if ss.String() == "" {
		t.Error("String() empty")
	}
}

func TestSpaceSavingEviction(t *testing.T) {
	ss := NewSpaceSaving(2)
	ss.Update(1, 5)
	ss.Update(2, 3)
	ss.Update(3, 1) // evicts item 2 (min=3), item 3 gets 3+1=4 with error 3
	if ss.Estimate(3) != 4 {
		t.Errorf("Estimate(3) = %d, want 4", ss.Estimate(3))
	}
	if ss.GuaranteedCount(3) != 1 {
		t.Errorf("GuaranteedCount(3) = %d, want 1", ss.GuaranteedCount(3))
	}
	if ss.Estimate(2) != 0 {
		t.Errorf("evicted item still tracked: %d", ss.Estimate(2))
	}
}

func TestSpaceSavingPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSpaceSaving(0) },
		func() { NewSpaceSaving(2).Update(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
