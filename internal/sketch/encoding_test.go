package sketch

import (
	"bytes"
	"testing"

	"repro/internal/hashing"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// feedStream applies a Zipf stream to an updater with float64 deltas.
func feedStream(s *stream.Stream, update func(item uint64, delta float64)) {
	for _, u := range s.Updates {
		update(u.Item, float64(u.Delta))
	}
}

// TestCountMinRoundTrip: Unmarshal(Marshal(s)) must reproduce every estimate
// exactly, and — because the hash seeds ride along — must keep behaving
// identically on updates applied *after* the round trip.
func TestCountMinRoundTrip(t *testing.T) {
	for _, family := range []hashing.Family{hashing.FamilyPoly2, hashing.FamilyPoly4, hashing.FamilyMultiplyShift, hashing.FamilyTabulation} {
		cm := NewCountMin(xrand.New(7), 512, 4, WithCountMinHashFamily(family))
		s := stream.Zipf(xrand.New(8), 1<<14, 20_000, 1.1)
		feedStream(s, cm.Update)

		data, err := cm.MarshalBinary()
		if err != nil {
			t.Fatalf("family %v: marshal: %v", family, err)
		}
		var back CountMin
		if err := back.UnmarshalBinary(data); err != nil {
			t.Fatalf("family %v: unmarshal: %v", family, err)
		}
		if back.TotalMass() != cm.TotalMass() {
			t.Fatalf("family %v: total mass %v != %v", family, back.TotalMass(), cm.TotalMass())
		}
		// Estimates must agree exactly, including on items never seen.
		for item := uint64(0); item < 1<<14; item += 37 {
			if a, b := cm.Estimate(item), back.Estimate(item); a != b {
				t.Fatalf("family %v: estimate(%d) %v != %v after round trip", family, item, a, b)
			}
		}
		// Bit-identical behavior going forward: new updates must land in the
		// same buckets.
		for i := uint64(0); i < 5_000; i++ {
			cm.Update(i*2654435761, 1)
			back.Update(i*2654435761, 1)
		}
		for item := uint64(0); item < 1<<14; item += 91 {
			if a, b := cm.Estimate(item), back.Estimate(item); a != b {
				t.Fatalf("family %v: post-round-trip updates diverged at item %d: %v != %v", family, item, a, b)
			}
		}
	}
}

// TestCountMinConservativeRoundTrip: the conservative flag must survive.
func TestCountMinConservativeRoundTrip(t *testing.T) {
	cm := NewCountMin(xrand.New(3), 128, 4, WithConservativeUpdate())
	for i := uint64(0); i < 1000; i++ {
		cm.Update(i%50, 1)
	}
	data, err := cm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back CountMin
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !back.conservative {
		t.Fatal("conservative flag lost in round trip")
	}
	cm.Update(7, 3)
	back.Update(7, 3)
	if a, b := cm.Estimate(7), back.Estimate(7); a != b {
		t.Fatalf("conservative estimates diverged: %v != %v", a, b)
	}
}

// TestCountSketchRoundTrip: same laws for Count-Sketch, whose estimator also
// depends on the sign functions being reconstructed exactly.
func TestCountSketchRoundTrip(t *testing.T) {
	cs := NewCountSketch(xrand.New(11), 512, 5)
	s := stream.Zipf(xrand.New(12), 1<<14, 20_000, 1.1)
	feedStream(s, cs.Update)

	data, err := cs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back CountSketch
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	for item := uint64(0); item < 1<<14; item += 37 {
		if a, b := cs.Estimate(item), back.Estimate(item); a != b {
			t.Fatalf("estimate(%d) %v != %v after round trip", item, a, b)
		}
	}
	// Turnstile updates after the round trip must keep both in lockstep.
	for i := uint64(0); i < 5_000; i++ {
		delta := float64(1)
		if i%3 == 0 {
			delta = -2
		}
		cs.Update(i*40503, delta)
		back.Update(i*40503, delta)
	}
	for item := uint64(0); item < 1<<14; item += 91 {
		if a, b := cs.Estimate(item), back.Estimate(item); a != b {
			t.Fatalf("post-round-trip updates diverged at item %d: %v != %v", item, a, b)
		}
	}
}

// TestBloomRoundTrip: membership answers must be identical before and after,
// and inserts after the round trip must set the same bits.
func TestBloomRoundTrip(t *testing.T) {
	bf := NewBloomFilter(xrand.New(5), 4096, 5)
	for i := uint64(0); i < 300; i++ {
		bf.Add(i * 7919)
	}
	data, err := bf.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back BloomFilter
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Count() != bf.Count() {
		t.Fatalf("count %d != %d", back.Count(), bf.Count())
	}
	for i := uint64(0); i < 2000; i++ {
		if a, b := bf.Contains(i), back.Contains(i); a != b {
			t.Fatalf("contains(%d) %v != %v after round trip", i, a, b)
		}
	}
	for i := uint64(5000); i < 5100; i++ {
		bf.Add(i)
		back.Add(i)
	}
	if !bytes.Equal(u64sToBytes(bf.bits), u64sToBytes(back.bits)) {
		t.Fatal("bit arrays diverged after post-round-trip inserts")
	}
}

func u64sToBytes(words []uint64) []byte {
	out := make([]byte, 0, 8*len(words))
	for _, w := range words {
		for shift := 0; shift < 64; shift += 8 {
			out = append(out, byte(w>>shift))
		}
	}
	return out
}

// TestIBLTRoundTrip: a deserialized table must decode to the same entry set,
// and deletions applied after the round trip must cancel correctly (the
// acid test that the checksum hash was reconstructed exactly).
func TestIBLTRoundTrip(t *testing.T) {
	tb := NewIBLT(xrand.New(9), 256, 4)
	for i := uint64(0); i < 100; i++ {
		tb.Update(i*104729+5, int64(i%7)+1)
	}
	data, err := tb.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back IBLT
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	// Deleting every entry through the deserialized table must leave it empty.
	for i := uint64(0); i < 100; i++ {
		back.Update(i*104729+5, -(int64(i%7) + 1))
	}
	decoded, err := back.ListEntries()
	if err != nil {
		t.Fatalf("decode after cancelling all entries: %v", err)
	}
	if len(decoded) != 0 {
		t.Fatalf("expected empty table after cancelling, got %d entries", len(decoded))
	}
	// And a fresh copy must decode to the original entries.
	var again IBLT
	if err := again.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	entries, err := again.ListEntries()
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(entries) != 100 {
		t.Fatalf("expected 100 entries, got %d", len(entries))
	}
	for i := uint64(0); i < 100; i++ {
		if entries[i*104729+5] != int64(i%7)+1 {
			t.Fatalf("entry %d decoded to %d", i, entries[i*104729+5])
		}
	}
}

// TestMergeOverTheWire: the distributed-shard scenario end to end — two
// clones sketch disjoint halves of a stream, one is shipped as bytes, and
// the merge of the reconstruction equals the single-sketch result exactly.
func TestMergeOverTheWire(t *testing.T) {
	proto := NewCountMin(xrand.New(21), 1024, 5)
	single := proto.Clone()
	shardA := proto.Clone()
	shardB := proto.Clone()

	s := stream.Zipf(xrand.New(22), 1<<14, 40_000, 1.1)
	for i, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
		if i%2 == 0 {
			shardA.Update(u.Item, float64(u.Delta))
		} else {
			shardB.Update(u.Item, float64(u.Delta))
		}
	}

	data, err := shardB.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var wire CountMin
	if err := wire.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if err := shardA.Merge(&wire); err != nil {
		t.Fatal(err)
	}
	for item := uint64(0); item < 1<<14; item += 13 {
		if a, b := single.Estimate(item), shardA.Estimate(item); a != b {
			t.Fatalf("estimate(%d): single %v != merged-over-wire %v", item, a, b)
		}
	}
}

// TestDyadicRoundTrip: the hierarchy encoding must reproduce every point,
// range and quantile answer exactly, keep behaving identically on later
// updates (hash seeds ride along level by level), and merge over the wire as
// exactly as an in-process merge.
func TestDyadicRoundTrip(t *testing.T) {
	d := NewDyadic(xrand.New(51), 12, 256, 4)
	s := stream.Zipf(xrand.New(52), 1<<12, 25_000, 1.1)
	feedStream(s, d.Update)

	data, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if kind, err := PeekKind(data); err != nil || kind != KindDyadic {
		t.Fatalf("PeekKind = %v, %v; want KindDyadic", kind, err)
	}
	var back Dyadic
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.LogUniverse() != d.LogUniverse() || back.Universe() != d.Universe() {
		t.Fatalf("shape lost: logU %d/%d", back.LogUniverse(), d.LogUniverse())
	}
	for item := uint64(0); item < 1<<12; item += 19 {
		if a, b := d.Estimate(item), back.Estimate(item); a != b {
			t.Fatalf("estimate(%d) %v != %v after round trip", item, a, b)
		}
	}
	for _, rg := range [][2]uint64{{0, (1 << 12) - 1}, {33, 900}} {
		if a, b := d.RangeSum(rg[0], rg[1]), back.RangeSum(rg[0], rg[1]); a != b {
			t.Fatalf("RangeSum(%d,%d) %v != %v after round trip", rg[0], rg[1], a, b)
		}
	}
	if a, b := d.Quantile(0.5), back.Quantile(0.5); a != b {
		t.Fatalf("median %v != %v after round trip", a, b)
	}
	// Bit-identical behavior going forward.
	for i := uint64(0); i < 3_000; i++ {
		item := (i * 2654435761) % (1 << 12)
		d.Update(item, 1)
		back.Update(item, 1)
	}
	for item := uint64(0); item < 1<<12; item += 41 {
		if a, b := d.Estimate(item), back.Estimate(item); a != b {
			t.Fatalf("post-round-trip updates diverged at item %d: %v != %v", item, a, b)
		}
	}
	// The distributed-shard scenario: a deserialized hierarchy merges exactly.
	single := NewDyadic(xrand.New(53), 10, 128, 3)
	shardA := single.Clone()
	shardB := single.Clone()
	s2 := stream.Zipf(xrand.New(54), 1<<10, 10_000, 1.1)
	for i, u := range s2.Updates {
		single.Update(u.Item, float64(u.Delta))
		if i%2 == 0 {
			shardA.Update(u.Item, float64(u.Delta))
		} else {
			shardB.Update(u.Item, float64(u.Delta))
		}
	}
	wireBytes, err := shardB.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var wire Dyadic
	if err := wire.UnmarshalBinary(wireBytes); err != nil {
		t.Fatal(err)
	}
	if err := shardA.Merge(&wire); err != nil {
		t.Fatal(err)
	}
	for item := uint64(0); item < 1<<10; item += 7 {
		if a, b := single.Estimate(item), shardA.Estimate(item); a != b {
			t.Fatalf("estimate(%d): single %v != merged-over-wire %v", item, a, b)
		}
	}
}

// TestDyadicUnmarshalRejectsGarbage: corrupt hierarchy encodings must error.
func TestDyadicUnmarshalRejectsGarbage(t *testing.T) {
	d := NewDyadic(xrand.New(55), 6, 32, 2)
	for i := uint64(0); i < 200; i++ {
		d.Update(i%64, 1)
	}
	good, err := d.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var target Dyadic
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": good[:8],
		"truncated level":  good[:30],
		"trailing":         append(append([]byte{}, good...), 1),
		"logU zero":        corruptAt(good, 9, 0), // logU u32 big-endian low byte
	}
	for name, data := range cases {
		if err := target.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}
	// Corrupting an embedded level's family byte must surface its error.
	// Layout: dyadic header (6) + logU (4) + level-0 length (4) = 14, then the
	// embedded CountMin header (6) puts the family byte at offset 20.
	badFamily := corruptAt(good, 20, 0xFF)
	if err := target.UnmarshalBinary(badFamily); err == nil {
		t.Error("embedded bad family: expected error, got nil")
	}
}

// corruptAt returns a copy of data with one byte overwritten.
func corruptAt(data []byte, offset int, b byte) []byte {
	out := append([]byte{}, data...)
	out[offset] = b
	return out
}

// TestTrackerRoundTrip: the tracker encoding must reproduce estimates and
// the candidate set exactly, and re-marshalling the reconstruction must give
// byte-identical output (candidates are serialized in sorted order, so the
// encoding is a pure function of the tracker's logical state — the property
// the sketchd restart-recovery check relies on).
func TestTrackerRoundTrip(t *testing.T) {
	tr := NewHeavyHitterTracker(xrand.New(17), 1024, 4, 32)
	s := stream.Zipf(xrand.New(18), 1<<14, 30_000, 1.1)
	feedStream(s, tr.Update)

	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back HeavyHitterTracker
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.K() != tr.K() || back.TotalMass() != tr.TotalMass() {
		t.Fatalf("shape lost: k %d/%d mass %v/%v", back.K(), tr.K(), back.TotalMass(), tr.TotalMass())
	}
	for item := uint64(0); item < 1<<14; item += 37 {
		if a, b := tr.Estimate(item), back.Estimate(item); a != b {
			t.Fatalf("estimate(%d) %v != %v after round trip", item, a, b)
		}
	}
	want := tr.TopK()
	got := back.TopK()
	if len(want) != len(got) {
		t.Fatalf("top-k size %d != %d after round trip", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("top-k[%d] %v != %v after round trip", i, got[i], want[i])
		}
	}
	again, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("re-marshalling a round-tripped tracker changed the bytes")
	}
	// Updates after the round trip must keep both in lockstep.
	for i := uint64(0); i < 2_000; i++ {
		tr.Update(i*2654435761, 1)
		back.Update(i*2654435761, 1)
	}
	for item := uint64(0); item < 1<<14; item += 91 {
		if a, b := tr.Estimate(item), back.Estimate(item); a != b {
			t.Fatalf("post-round-trip updates diverged at item %d: %v != %v", item, a, b)
		}
	}
}

// TestTrackerUnmarshalRejectsGarbage: corrupt tracker encodings must error.
func TestTrackerUnmarshalRejectsGarbage(t *testing.T) {
	tr := NewHeavyHitterTracker(xrand.New(19), 64, 3, 8)
	for i := uint64(0); i < 100; i++ {
		tr.Update(i%10, 1)
	}
	good, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var target HeavyHitterTracker
	cases := map[string][]byte{
		"empty":            {},
		"truncated header": good[:9],
		"truncated embed":  good[:20],
		"trailing":         append(append([]byte{}, good...), 1),
	}
	for name, data := range cases {
		if err := target.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}
	// Corrupting the embedded Count-Min's family byte must surface its error.
	// Layout: tracker header (6) + k (4) + cmLen (4) = 14, then the embedded
	// CountMin header (6) puts the family byte at offset 20.
	badFamily := append([]byte{}, good...)
	badFamily[20] = 0xFF
	if err := target.UnmarshalBinary(badFamily); err == nil {
		t.Error("embedded bad family: expected error, got nil")
	}
}

// TestPeekKind: the transport-facing header probe.
func TestPeekKind(t *testing.T) {
	cm := NewCountMin(xrand.New(1), 8, 2)
	tr := NewHeavyHitterTracker(xrand.New(2), 8, 2, 4)
	bf := NewBloomFilter(xrand.New(3), 64, 3)

	for _, tc := range []struct {
		marshal func() ([]byte, error)
		want    Kind
	}{
		{cm.MarshalBinary, KindCountMin},
		{tr.MarshalBinary, KindTracker},
		{bf.MarshalBinary, KindBloom},
	} {
		data, err := tc.marshal()
		if err != nil {
			t.Fatal(err)
		}
		kind, err := PeekKind(data)
		if err != nil {
			t.Fatal(err)
		}
		if kind != tc.want {
			t.Errorf("PeekKind = %v, want %v", kind, tc.want)
		}
	}
	for name, data := range map[string][]byte{
		"short":        {1, 2, 3},
		"bad magic":    []byte("NOPE\x01\x01"),
		"bad version":  {'S', 'K', 'C', '1', 99, 1},
		"unknown kind": {'S', 'K', 'C', '1', encodingVersion, 200},
	} {
		if _, err := PeekKind(data); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}
}

// TestUnmarshalRejectsGarbage: corrupt inputs must error, not panic or
// allocate unbounded memory.
func TestUnmarshalRejectsGarbage(t *testing.T) {
	cm := NewCountMin(xrand.New(1), 8, 2)
	good, err := cm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	var target CountMin
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), good[4:]...),
		"truncated": good[:len(good)-5],
		"trailing":  append(append([]byte{}, good...), 0xFF),
	}
	for name, data := range cases {
		if err := target.UnmarshalBinary(data); err == nil {
			t.Errorf("%s: expected error, got nil", name)
		}
	}

	// Wrong kind: a CountSketch encoding fed to a CountMin decoder.
	cs := NewCountSketch(xrand.New(2), 8, 3)
	wrongKind, err := cs.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := target.UnmarshalBinary(wrongKind); err == nil {
		t.Error("wrong kind: expected error, got nil")
	}

	// Version from the future.
	future := append([]byte{}, good...)
	future[4] = encodingVersion + 1
	if err := target.UnmarshalBinary(future); err == nil {
		t.Error("future version: expected error, got nil")
	}

	// Unknown hash family byte must error, not panic in hashing.NewHasher.
	badFamily := append([]byte{}, good...)
	badFamily[6] = 0xFF
	if err := target.UnmarshalBinary(badFamily); err == nil {
		t.Error("unknown family: expected error, got nil")
	}

	// A tiny buffer claiming huge dimensions must be rejected before any
	// allocation (the payload length check runs first).
	huge := append([]byte{}, good[:8]...) // magic, version, kind, family, flag
	w := writer{buf: huge}
	w.u32(1 << 30) // width
	w.u32(1 << 30) // depth
	w.u64(0)       // seed
	w.u64(0)       // totalMass
	if err := target.UnmarshalBinary(w.buf); err == nil {
		t.Error("petabyte-scale header on a 32-byte buffer: expected error, got nil")
	}
}
