package sketch

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stream"
	"repro/internal/xrand"
)

func TestCountSketchRecoversExactWithoutCollisions(t *testing.T) {
	r := xrand.New(1)
	cs := NewCountSketch(r, 4096, 5)
	exact := map[uint64]float64{}
	for i := uint64(0); i < 30; i++ {
		v := float64(i) - 10 // include negatives (turnstile)
		cs.Update(i, v)
		exact[i] += v
	}
	for item, want := range exact {
		if got := cs.Estimate(item); math.Abs(got-want) > 1e-9 {
			t.Errorf("item %d: estimate %v, want %v", item, got, want)
		}
	}
}

func TestCountSketchUnbiased(t *testing.T) {
	// Average the estimate of a fixed item over many independent sketches;
	// it should converge to the true count even with heavy collisions.
	trueCount := 100.0
	const trials = 300
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		r := xrand.New(uint64(trial) + 1)
		cs := NewCountSketch(r, 16, 1) // tiny sketch: lots of collisions
		cs.Update(42, trueCount)
		for i := uint64(0); i < 200; i++ {
			cs.Update(1000+i, 5)
		}
		sum += cs.Estimate(42)
	}
	avg := sum / trials
	if math.Abs(avg-trueCount) > 15 {
		t.Errorf("CountSketch estimate mean %v, want about %v (unbiasedness violated)", avg, trueCount)
	}
}

func TestCountSketchL2ErrorBound(t *testing.T) {
	r := xrand.New(3)
	const width, depth = 512, 5
	cs := NewCountSketch(r, width, depth)
	s := stream.Zipf(r, 50000, 80000, 1.1)
	exact := stream.NewExactCounter()
	for _, u := range s.Updates {
		cs.Update(u.Item, float64(u.Delta))
		exact.Update(u.Item, u.Delta)
	}
	// ||x||_2
	var l2 float64
	for _, ic := range exact.TopK(exact.DistinctItems()) {
		l2 += float64(ic.Count) * float64(ic.Count)
	}
	l2 = math.Sqrt(l2)
	bound := 4 * l2 / math.Sqrt(width)
	bad, checked := 0, 0
	for _, ic := range exact.TopK(500) {
		checked++
		if math.Abs(cs.Estimate(ic.Item)-float64(ic.Count)) > bound {
			bad++
		}
	}
	if bad > checked/10 {
		t.Errorf("CountSketch exceeded l2 error bound for %d/%d items", bad, checked)
	}
}

func TestCountSketchWithErrorSizing(t *testing.T) {
	cs := NewCountSketchWithError(xrand.New(1), 0.1, 0.05)
	if cs.Width() < 300 {
		t.Errorf("width %d too small for eps=0.1", cs.Width())
	}
	if cs.Depth()%2 == 0 {
		t.Errorf("depth %d should be odd", cs.Depth())
	}
}

func TestCountSketchPanics(t *testing.T) {
	r := xrand.New(1)
	cases := []func(){
		func() { NewCountSketch(r, 0, 1) },
		func() { NewCountSketch(r, 1, 0) },
		func() { NewCountSketchWithError(r, 0, 0.1) },
		func() { NewCountSketch(r, 8, 2).RowBucket(2, 1) },
		func() { NewCountSketch(r, 8, 2).RowSign(-1, 1) },
		func() { median(nil) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCountSketchMergeEqualsSingle(t *testing.T) {
	r := xrand.New(5)
	base := NewCountSketch(r, 256, 5)
	p1, p2 := base.Clone(), base.Clone()
	s := stream.Zipf(r, 3000, 20000, 1.1)
	for i, u := range s.Updates {
		base.Update(u.Item, float64(u.Delta))
		if i%2 == 0 {
			p1.Update(u.Item, float64(u.Delta))
		} else {
			p2.Update(u.Item, float64(u.Delta))
		}
	}
	if err := p1.Merge(p2); err != nil {
		t.Fatal(err)
	}
	for item := uint64(0); item < 3000; item += 53 {
		if math.Abs(p1.Estimate(item)-base.Estimate(item)) > 1e-9 {
			t.Fatalf("merged estimate differs for item %d", item)
		}
	}
	if err := p1.Merge(NewCountSketch(r, 128, 5)); err == nil {
		t.Error("merging different dimensions should fail")
	}
}

func TestCountSketchRowAccessors(t *testing.T) {
	r := xrand.New(7)
	cs := NewCountSketch(r, 64, 3)
	for row := 0; row < 3; row++ {
		b := cs.RowBucket(row, 99)
		if b < 0 || b >= 64 {
			t.Fatalf("RowBucket out of range: %d", b)
		}
		sgn := cs.RowSign(row, 99)
		if sgn != 1 && sgn != -1 {
			t.Fatalf("RowSign = %v", sgn)
		}
	}
	cs.Update(99, 2)
	if got := cs.EstimateRow(0, 99); math.Abs(got-2) > 1e-9 {
		t.Errorf("EstimateRow = %v, want 2 (no collisions expected with one item)", got)
	}
}

func TestMedianFunction(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1}, 2.5},
		{[]float64{1, 2, 3, 4}, 2.5},
	}
	for _, c := range cases {
		in := append([]float64(nil), c.in...)
		if got := median(in); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

// Property: Count-Sketch is linear in its updates.
func TestCountSketchLinearityProperty(t *testing.T) {
	r := xrand.New(11)
	base := NewCountSketch(r, 64, 3)
	f := func(item uint64, d1, d2 int16) bool {
		a := base.Clone()
		a.Update(item, float64(d1))
		a.Update(item, float64(d2))
		b := base.Clone()
		b.Update(item, float64(d1)+float64(d2))
		ca, cb := a.Counters(), b.Counters()
		for row := range ca {
			for j := range ca[row] {
				if math.Abs(ca[row][j]-cb[row][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: an item that was never updated and does not collide with mass in
// every row has estimate whose magnitude is bounded by the largest counter.
func TestCountSketchAbsentItemBounded(t *testing.T) {
	r := xrand.New(13)
	cs := NewCountSketch(r, 128, 5)
	for i := uint64(0); i < 1000; i++ {
		cs.Update(i, 1)
	}
	maxCounter := 0.0
	for _, row := range cs.Counters() {
		for _, v := range row {
			if math.Abs(v) > maxCounter {
				maxCounter = math.Abs(v)
			}
		}
	}
	for item := uint64(10000); item < 10100; item++ {
		if est := math.Abs(cs.Estimate(item)); est > maxCounter+1e-9 {
			t.Fatalf("absent item estimate %v exceeds max counter %v", est, maxCounter)
		}
	}
}

func BenchmarkCountSketchUpdate(b *testing.B) {
	cs := NewCountSketch(xrand.New(1), 2048, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Update(uint64(i), 1)
	}
}

func BenchmarkCountSketchEstimate(b *testing.B) {
	cs := NewCountSketch(xrand.New(1), 2048, 5)
	for i := 0; i < 100000; i++ {
		cs.Update(uint64(i%1000), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs.Estimate(uint64(i % 1000))
	}
}
