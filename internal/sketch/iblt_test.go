package sketch

import (
	"testing"

	"repro/internal/xrand"
)

func TestIBLTListEntriesRecoversAll(t *testing.T) {
	r := xrand.New(1)
	table := NewIBLT(r, 200, 4)
	want := map[uint64]int64{}
	for i := 0; i < 100; i++ {
		key := uint64(i*31 + 7)
		count := int64(1 + i%5)
		table.Update(key, count)
		want[key] += count
	}
	got, err := table.ListEntries()
	if err != nil {
		t.Fatalf("ListEntries: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered %d keys, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d: got %d, want %d", k, got[k], v)
		}
	}
}

func TestIBLTInsertDeleteCancels(t *testing.T) {
	r := xrand.New(2)
	table := NewIBLT(r, 64, 3)
	table.Insert(42)
	table.Insert(42)
	table.Delete(42)
	table.Delete(42)
	table.Insert(7)
	got, err := table.ListEntries()
	if err != nil {
		t.Fatalf("ListEntries: %v", err)
	}
	if len(got) != 1 || got[7] != 1 {
		t.Fatalf("ListEntries = %v, want only {7:1}", got)
	}
}

func TestIBLTSetDifferenceStyle(t *testing.T) {
	// The classic IBLT application: sketch set A with +1, set B with -1; the
	// decode returns exactly the symmetric difference with signed counts.
	r := xrand.New(3)
	table := NewIBLT(r, 128, 4)
	for i := uint64(0); i < 500; i++ {
		table.Update(i, 1) // set A = {0..499}
	}
	for i := uint64(10); i < 510; i++ {
		table.Update(i, -1) // set B = {10..509}
	}
	got, err := table.ListEntries()
	if err != nil {
		t.Fatalf("ListEntries: %v", err)
	}
	if len(got) != 20 {
		t.Fatalf("symmetric difference size %d, want 20", len(got))
	}
	for i := uint64(0); i < 10; i++ {
		if got[i] != 1 {
			t.Errorf("A-only key %d has count %d, want +1", i, got[i])
		}
		if got[500+i] != -1 {
			t.Errorf("B-only key %d has count %d, want -1", 500+i, got[500+i])
		}
	}
}

func TestIBLTOverloadFails(t *testing.T) {
	r := xrand.New(4)
	table := NewIBLT(r, 50, 3)
	for i := uint64(0); i < 500; i++ {
		table.Insert(i)
	}
	if _, err := table.ListEntries(); err == nil {
		t.Fatal("expected decode failure for overloaded table")
	}
}

func TestIBLTGet(t *testing.T) {
	r := xrand.New(5)
	table := NewIBLT(r, 256, 3)
	table.Update(99, 7)
	if c, ok := table.Get(99); !ok || c != 7 {
		t.Errorf("Get(99) = %d,%v want 7,true", c, ok)
	}
	// An absent key that maps to at least one empty cell is reported as 0.
	if c, ok := table.Get(123456); ok && c != 0 {
		t.Errorf("Get(absent) = %d,%v", c, ok)
	}
	if table.Size() != 256 {
		t.Errorf("Size = %d", table.Size())
	}
}

func TestIBLTZeroDeltaIgnored(t *testing.T) {
	r := xrand.New(6)
	table := NewIBLT(r, 32, 3)
	table.Update(5, 0)
	got, err := table.ListEntries()
	if err != nil || len(got) != 0 {
		t.Fatalf("table with only zero-delta updates should decode empty, got %v err %v", got, err)
	}
}

func TestIBLTPanics(t *testing.T) {
	r := xrand.New(1)
	for _, f := range []func(){
		func() { NewIBLT(r, 0, 3) },
		func() { NewIBLT(r, 8, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestIBLTDecodeThresholdSweep(t *testing.T) {
	// Decode succeeds reliably below about 70% load with k=4 and fails well
	// above 100% load; check the two regimes.
	successesLow, successesHigh := 0, 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		r := xrand.New(uint64(trial) + 100)
		low := NewIBLT(r, 100, 4)
		for i := uint64(0); i < 50; i++ { // 50% load
			low.Insert(i + uint64(trial)*1000)
		}
		if _, err := low.ListEntries(); err == nil {
			successesLow++
		}
		high := NewIBLT(r, 100, 4)
		for i := uint64(0); i < 200; i++ { // 200% load
			high.Insert(i + uint64(trial)*1000)
		}
		if _, err := high.ListEntries(); err == nil {
			successesHigh++
		}
	}
	if successesLow < trials-2 {
		t.Errorf("low-load decode succeeded only %d/%d times", successesLow, trials)
	}
	if successesHigh > 0 {
		t.Errorf("high-load decode unexpectedly succeeded %d times", successesHigh)
	}
}

func BenchmarkIBLTInsert(b *testing.B) {
	table := NewIBLT(xrand.New(1), 1<<16, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table.Insert(uint64(i))
	}
}
