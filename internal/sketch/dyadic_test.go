package sketch

import (
	"math"
	"testing"

	"repro/internal/stream"
	"repro/internal/xrand"
)

func TestDyadicPointAndRange(t *testing.T) {
	r := xrand.New(1)
	d := NewDyadic(r, 10, 512, 4) // universe 1024
	exact := make([]float64, 1024)
	z := xrand.NewZipf(r, 1024, 1.1)
	for i := 0; i < 20000; i++ {
		item := uint64(z.Next())
		d.Update(item, 1)
		exact[item]++
	}
	// Point queries never underestimate.
	for item := uint64(0); item < 1024; item += 17 {
		if est := d.Estimate(item); est < exact[item]-1e-9 {
			t.Fatalf("point estimate underestimates item %d", item)
		}
	}
	// Range queries never underestimate and are reasonably tight.
	ranges := [][2]uint64{{0, 1023}, {0, 0}, {100, 300}, {512, 767}, {5, 6}}
	for _, rg := range ranges {
		var truth float64
		for i := rg[0]; i <= rg[1]; i++ {
			truth += exact[i]
		}
		est := d.RangeSum(rg[0], rg[1])
		if est < truth-1e-9 {
			t.Errorf("RangeSum(%d,%d) = %v underestimates %v", rg[0], rg[1], est, truth)
		}
		if est > truth+0.3*float64(20000)+1 {
			t.Errorf("RangeSum(%d,%d) = %v wildly overestimates %v", rg[0], rg[1], est, truth)
		}
	}
	if d.TotalMass() != 20000 {
		t.Errorf("TotalMass = %v", d.TotalMass())
	}
	if d.Universe() != 1024 || d.LogUniverse() != 10 {
		t.Errorf("Universe/LogUniverse wrong")
	}
	if d.SizeCounters() != 11*512*4 {
		t.Errorf("SizeCounters = %d", d.SizeCounters())
	}
}

func TestDyadicFullRangeEqualsTotal(t *testing.T) {
	r := xrand.New(2)
	d := NewDyadic(r, 8, 128, 3)
	for i := 0; i < 5000; i++ {
		d.Update(uint64(i%256), 1)
	}
	got := d.RangeSum(0, 255)
	if math.Abs(got-5000) > 1e-6 {
		t.Errorf("full-range sum %v, want 5000", got)
	}
}

func TestDyadicHeavyHitters(t *testing.T) {
	r := xrand.New(3)
	d := NewDyadicForUniverse(r, 1<<16, 1024, 5)
	s, planted := stream.PlantedHeavyHitters(r, 1<<16, 50000, 8, 0.6)
	for _, u := range s.Updates {
		d.Update(u.Item, float64(u.Delta))
	}
	hh := d.HeavyHitters(0.05)
	found := map[uint64]bool{}
	for _, ic := range hh {
		found[ic.Item] = true
	}
	for _, p := range planted {
		if !found[p] {
			t.Errorf("planted heavy hitter %d not found (result %v)", p, hh)
		}
	}
	// False positives should be limited: every reported item's estimate is
	// at least the threshold by construction, so just sanity-check size.
	if len(hh) > 100 {
		t.Errorf("unreasonably many heavy hitters reported: %d", len(hh))
	}
}

func TestDyadicQuantile(t *testing.T) {
	r := xrand.New(4)
	d := NewDyadic(r, 12, 2048, 5) // universe 4096
	// Uniform counts on [0, 4095]: each item appears once.
	for i := uint64(0); i < 4096; i++ {
		d.Update(i, 1)
	}
	for _, phi := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		q := d.Quantile(phi)
		want := phi * 4096
		if math.Abs(float64(q)-want) > 300 {
			t.Errorf("Quantile(%.2f) = %d, want about %.0f", phi, q, want)
		}
	}
	// Clamping.
	if q := d.Quantile(-1); q > 100 {
		t.Errorf("Quantile(-1) = %d, want near 0", q)
	}
	if q := d.Quantile(2); q < 4000 {
		t.Errorf("Quantile(2) = %d, want near 4095", q)
	}
}

// TestDyadicCloneMergeIsExact: the clone/merge law applied level-wise — two
// clones sketch disjoint halves and the merge answers every point, range and
// quantile query exactly as the sketch that saw the whole stream.
func TestDyadicCloneMergeIsExact(t *testing.T) {
	proto := NewDyadic(xrand.New(31), 12, 256, 4)
	single := proto.Clone()
	shardA := proto.Clone()
	shardB := proto.Clone()

	s := stream.Zipf(xrand.New(32), 1<<12, 30_000, 1.1)
	for i, u := range s.Updates {
		single.Update(u.Item, float64(u.Delta))
		if i%2 == 0 {
			shardA.Update(u.Item, float64(u.Delta))
		} else {
			shardB.Update(u.Item, float64(u.Delta))
		}
	}
	if err := shardA.CompatibleWith(shardB); err != nil {
		t.Fatalf("clones of one prototype must be compatible: %v", err)
	}
	if err := shardA.Merge(shardB); err != nil {
		t.Fatal(err)
	}
	for item := uint64(0); item < 1<<12; item += 13 {
		if a, b := single.Estimate(item), shardA.Estimate(item); a != b {
			t.Fatalf("estimate(%d): single %v != merged %v", item, a, b)
		}
	}
	for _, rg := range [][2]uint64{{0, (1 << 12) - 1}, {100, 300}, {7, 7}} {
		if a, b := single.RangeSum(rg[0], rg[1]), shardA.RangeSum(rg[0], rg[1]); a != b {
			t.Fatalf("RangeSum(%d,%d): single %v != merged %v", rg[0], rg[1], a, b)
		}
	}
	for _, phi := range []float64{0.1, 0.5, 0.9} {
		if a, b := single.Quantile(phi), shardA.Quantile(phi); a != b {
			t.Fatalf("Quantile(%v): single %v != merged %v", phi, a, b)
		}
	}
	if single.TotalMass() != shardA.TotalMass() {
		t.Fatalf("total mass %v != %v", shardA.TotalMass(), single.TotalMass())
	}
}

// TestDyadicMergeRejectsMismatch: merges across different universes or level
// dimensions must fail up front without touching any counter.
func TestDyadicMergeRejectsMismatch(t *testing.T) {
	d := NewDyadic(xrand.New(41), 8, 128, 3)
	d.Update(5, 2)
	before := d.Estimate(5)

	if err := d.Merge(NewDyadic(xrand.New(41), 9, 128, 3)); err == nil {
		t.Error("universe mismatch: expected error")
	}
	if err := d.Merge(NewDyadic(xrand.New(41), 8, 64, 3)); err == nil {
		t.Error("level dimension mismatch: expected error")
	}
	if err := d.CompatibleWith(NewDyadic(xrand.New(42), 8, 128, 3)); err == nil {
		t.Error("foreign hash seed: expected CompatibleWith error")
	}
	if d.Estimate(5) != before {
		t.Error("rejected merge modified the counters")
	}
}

func TestDyadicPanics(t *testing.T) {
	r := xrand.New(1)
	for _, f := range []func(){
		func() { NewDyadic(r, 0, 8, 2) },
		func() { NewDyadic(r, 64, 8, 2) },
		func() { NewDyadic(r, 4, 8, 2).Update(16, 1) },
		func() { NewDyadic(r, 4, 8, 2).RangeSum(5, 3) },
		func() { NewDyadic(r, 4, 8, 2).RangeSum(0, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct {
		in   uint64
		want int
	}{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11}}
	for _, c := range cases {
		if got := log2Ceil(c.in); got != c.want {
			t.Errorf("log2Ceil(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestHeavyHitterTracker(t *testing.T) {
	r := xrand.New(5)
	tracker := NewHeavyHitterTracker(r, 1024, 4, 20)
	s, planted := stream.PlantedHeavyHitters(r, 1<<20, 40000, 5, 0.5)
	exact := stream.NewExactCounter()
	for _, u := range s.Updates {
		tracker.Update(u.Item, float64(u.Delta))
		exact.Update(u.Item, u.Delta)
	}
	top := tracker.TopK()
	if len(top) > 20 {
		t.Fatalf("TopK returned %d items, tracker capacity 20", len(top))
	}
	inTop := map[uint64]bool{}
	for _, ic := range top {
		inTop[ic.Item] = true
	}
	for _, p := range planted {
		if !inTop[p] {
			t.Errorf("planted item %d missing from tracker top-k", p)
		}
	}
	hh := tracker.HeavyHitters(0.05)
	if len(hh) < len(planted) {
		t.Errorf("HeavyHitters found %d, want at least %d", len(hh), len(planted))
	}
	for _, ic := range hh {
		if tracker.Estimate(ic.Item) < float64(exact.Count(ic.Item))-1e-9 {
			t.Errorf("tracker estimate underestimates item %d", ic.Item)
		}
	}
	if tracker.SpaceCounters() != 1024*4 {
		t.Errorf("SpaceCounters = %d", tracker.SpaceCounters())
	}
}

func TestHeavyHitterTrackerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHeavyHitterTracker(xrand.New(1), 8, 2, 0)
}

func BenchmarkDyadicUpdate(b *testing.B) {
	d := NewDyadic(xrand.New(1), 20, 1024, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Update(uint64(i)&((1<<20)-1), 1)
	}
}

func BenchmarkHeavyHitterTrackerUpdate(b *testing.B) {
	tr := NewHeavyHitterTracker(xrand.New(1), 1024, 4, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Update(uint64(i%10000), 1)
	}
}
