package sketch

import (
	"bytes"
	"testing"

	"repro/internal/xrand"
)

// snapshotCM retains a deep copy of cm's current state — the snapshot the
// delta math subtracts later.
func snapshotCM(t *testing.T, cm *CountMin) *CountMin {
	t.Helper()
	return cm.Copy()
}

// TestCountMinSubIsSnapshotDelta: the difference of two snapshots of one
// growing sketch equals — counter for counter — the sketch of exactly the
// updates between them, and adding the delta back restores the later
// snapshot bit for bit (integer-valued deltas, so float addition is exact).
func TestCountMinSubIsSnapshotDelta(t *testing.T) {
	cm := NewCountMin(xrand.New(3), 512, 4)
	tail := cm.Clone() // will see only the post-snapshot updates

	for i := uint64(0); i < 5_000; i++ {
		cm.Update(i%997, float64(1+i%7))
	}
	base := snapshotCM(t, cm)

	for i := uint64(0); i < 3_000; i++ {
		cm.Update(i%613, float64(1+i%5))
		tail.Update(i%613, float64(1+i%5))
	}

	delta := snapshotCM(t, cm)
	if err := delta.Sub(base); err != nil {
		t.Fatal(err)
	}
	// The delta must equal the tail-only sketch exactly.
	d, tl := delta.CounterData(), tail.CounterData()
	for i := range d {
		if d[i] != tl[i] {
			t.Fatalf("delta counter %d = %v, tail-only sketch has %v", i, d[i], tl[i])
		}
	}
	if delta.TotalMass() != tail.TotalMass() {
		t.Fatalf("delta mass %v != tail mass %v", delta.TotalMass(), tail.TotalMass())
	}

	// base + delta must restore the later snapshot exactly.
	if err := base.Merge(delta); err != nil {
		t.Fatal(err)
	}
	b, c := base.CounterData(), cm.CounterData()
	for i := range b {
		if b[i] != c[i] {
			t.Fatalf("restored counter %d = %v, want %v", i, b[i], c[i])
		}
	}
}

// TestScaleMinusOneMergesAsSub: Merge with a Scale(-1) negated clone is the
// same subtraction Sub performs.
func TestScaleMinusOneMergesAsSub(t *testing.T) {
	cm := NewCountMin(xrand.New(5), 256, 3)
	other := cm.Clone()
	for i := uint64(0); i < 2_000; i++ {
		cm.Update(i%311, 2)
		other.Update(i%157, 3)
	}

	viaSub := snapshotCM(t, cm)
	if err := viaSub.Sub(other); err != nil {
		t.Fatal(err)
	}

	negated := snapshotCM(t, other)
	negated.Scale(-1)
	viaMerge := snapshotCM(t, cm)
	if err := viaMerge.Merge(negated); err != nil {
		t.Fatal(err)
	}

	a, b := viaSub.CounterData(), viaMerge.CounterData()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("counter %d: Sub gives %v, Merge(Scale(-1)) gives %v", i, a[i], b[i])
		}
	}
	if viaSub.TotalMass() != viaMerge.TotalMass() {
		t.Fatalf("mass: Sub gives %v, Merge(Scale(-1)) gives %v", viaSub.TotalMass(), viaMerge.TotalMass())
	}
}

// TestSubRejectsIncompatible: dimension mismatches and conservative-update
// sketches must be refused, like Merge.
func TestSubRejectsIncompatible(t *testing.T) {
	cm := NewCountMin(xrand.New(7), 256, 3)
	if err := cm.Sub(NewCountMin(xrand.New(7), 128, 3)); err == nil {
		t.Fatal("Sub across dimensions: expected error")
	}
	cons := NewCountMin(xrand.New(7), 256, 3, WithConservativeUpdate())
	if err := cons.Sub(NewCountMin(xrand.New(7), 256, 3)); err == nil {
		t.Fatal("Sub on a conservative sketch: expected error")
	}
	cs := NewCountSketch(xrand.New(7), 256, 3)
	if err := cs.Sub(NewCountSketch(xrand.New(7), 128, 3)); err == nil {
		t.Fatal("CountSketch.Sub across dimensions: expected error")
	}
	d := NewDyadic(xrand.New(7), 8, 64, 2)
	if err := d.Sub(NewDyadic(xrand.New(7), 9, 64, 2)); err == nil {
		t.Fatal("Dyadic.Sub across universes: expected error")
	}
}

// TestCountSketchAndDyadicAndTrackerSub: the other linear families obey the
// same snapshot-delta law.
func TestCountSketchAndDyadicAndTrackerSub(t *testing.T) {
	cs := NewCountSketch(xrand.New(11), 256, 3)
	csTail := cs.Clone()
	for i := uint64(0); i < 2_000; i++ {
		cs.Update(i%401, 1)
	}
	csBase := cs.Clone()
	if err := csBase.Merge(cs); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 1_000; i++ {
		cs.Update(i%89, -2)
		csTail.Update(i%89, -2)
	}
	csDelta := cs.Clone()
	if err := csDelta.Merge(cs); err != nil {
		t.Fatal(err)
	}
	if err := csDelta.Sub(csBase); err != nil {
		t.Fatal(err)
	}
	a, b := csDelta.CounterData(), csTail.CounterData()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("CountSketch delta counter %d = %v, want %v", i, a[i], b[i])
		}
	}

	dy := NewDyadic(xrand.New(13), 10, 128, 2)
	dyTail := dy.Clone()
	for i := uint64(0); i < 1_500; i++ {
		dy.Update(i%1024, 1)
	}
	dyBase := dy.Clone()
	if err := dyBase.Merge(dy); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 700; i++ {
		dy.Update((i*3)%1024, 2)
		dyTail.Update((i*3)%1024, 2)
	}
	dyDelta := dy.Clone()
	if err := dyDelta.Merge(dy); err != nil {
		t.Fatal(err)
	}
	if err := dyDelta.Sub(dyBase); err != nil {
		t.Fatal(err)
	}
	for lo := uint64(0); lo < 1024; lo += 128 {
		if got, want := dyDelta.RangeSum(lo, lo+127), dyTail.RangeSum(lo, lo+127); got != want {
			t.Fatalf("Dyadic delta RangeSum[%d,%d] = %v, tail-only = %v", lo, lo+127, got, want)
		}
	}

	tr := NewHeavyHitterTracker(xrand.New(17), 256, 3, 16)
	trTail := tr.Clone()
	for i := uint64(0); i < 2_000; i++ {
		tr.Update(i%301, 1)
	}
	trBase := tr.Clone()
	if err := trBase.Merge(tr); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 900; i++ {
		tr.Update(i%77, 3)
		trTail.Update(i%77, 3)
	}
	trDelta := tr.Clone()
	if err := trDelta.Merge(tr); err != nil {
		t.Fatal(err)
	}
	if err := trDelta.Sub(trBase); err != nil {
		t.Fatal(err)
	}
	if trDelta.TotalMass() != trTail.TotalMass() {
		t.Fatalf("tracker delta mass %v != tail mass %v", trDelta.TotalMass(), trTail.TotalMass())
	}
	for item := uint64(0); item < 310; item++ {
		if got, want := trDelta.Estimate(item), trTail.Estimate(item); got != want {
			t.Fatalf("tracker delta estimate(%d) = %v, tail-only = %v", item, got, want)
		}
	}
}

// TestDeltaEnvelopeRoundTrip: EncodeDelta/DecodeDelta must return the inner
// encoding verbatim for every family, and a sparse snapshot difference must
// compress well below the dense size.
func TestDeltaEnvelopeRoundTrip(t *testing.T) {
	cm := NewCountMin(xrand.New(19), 4096, 4)
	for i := uint64(0); i < 200_000; i++ {
		cm.Update(i%3800, 1)
	}
	base := snapshotCM(t, cm)
	// A sparse tail: only a handful of items move after the snapshot.
	for i := uint64(0); i < 500; i++ {
		cm.Update(i%12, 1)
	}
	delta := snapshotCM(t, cm)
	if err := delta.Sub(base); err != nil {
		t.Fatal(err)
	}

	dense, err := delta.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	packed := EncodeDelta(dense)
	if kind, err := PeekKind(packed); err != nil || kind != KindDelta {
		t.Fatalf("PeekKind(envelope) = %v, %v; want KindDelta", kind, err)
	}
	back, err := DecodeDelta(packed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, dense) {
		t.Fatal("DecodeDelta did not return the inner encoding verbatim")
	}
	if len(packed) >= len(dense)/4 {
		t.Fatalf("sparse delta envelope is %d bytes, dense encoding %d: expected > 4x compression", len(packed), len(dense))
	}

	// A dense sketch (every counter touched) must still round-trip.
	denseAll, err := base.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back2, err := DecodeDelta(EncodeDelta(denseAll))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back2, denseAll) {
		t.Fatal("dense encoding did not survive the envelope")
	}

	// Empty inner bytes round-trip too (a degenerate but legal envelope).
	if out, err := DecodeDelta(EncodeDelta(nil)); err != nil || len(out) != 0 {
		t.Fatalf("empty envelope round trip: %v, %v", out, err)
	}
}

// TestDecodeDeltaRejectsGarbage: truncation, lying lengths and junk tokens
// must come back as errors, never panics or huge allocations.
func TestDecodeDeltaRejectsGarbage(t *testing.T) {
	cm := NewCountMin(xrand.New(23), 64, 2)
	cm.Update(1, 1)
	inner, err := cm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	good := EncodeDelta(inner)

	cases := map[string][]byte{
		"empty":              nil,
		"bad magic":          []byte("XXXXXXXXXX"),
		"truncated header":   good[:5],
		"wrong kind":         inner, // a valid encoding, but not a delta envelope
		"truncated tokens":   good[:len(good)-3],
		"huge zero run":      append(append([]byte{}, good[:10]...), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x00),
		"lying inner length": func() []byte { b := append([]byte{}, good...); b[6] = 0xFF; return b }(),
	}
	for name, data := range cases {
		if _, err := DecodeDelta(data); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	// DecodeDeltaLimit: a caller-supplied ceiling rejects envelopes whose
	// header declares more than the caller's sketches could legitimately
	// need, before any allocation of that size.
	if _, err := DecodeDeltaLimit(good, len(inner)-1); err == nil {
		t.Error("inner length above the caller limit: expected error")
	}
	if out, err := DecodeDeltaLimit(good, len(inner)); err != nil || len(out) != len(inner) {
		t.Errorf("inner length at the caller limit: %v, %d bytes", err, len(out))
	}
}
