package sketch

import (
	"testing"

	"repro/internal/xrand"
)

func TestBloomFilterNoFalseNegatives(t *testing.T) {
	r := xrand.New(1)
	bf := NewBloomFilterForItems(r, 1000, 0.01)
	for i := uint64(0); i < 1000; i++ {
		bf.Add(i * 7919)
	}
	for i := uint64(0); i < 1000; i++ {
		if !bf.Contains(i * 7919) {
			t.Fatalf("false negative for inserted item %d", i*7919)
		}
	}
	if bf.Count() != 1000 {
		t.Errorf("Count = %d", bf.Count())
	}
}

func TestBloomFilterFalsePositiveRate(t *testing.T) {
	r := xrand.New(2)
	bf := NewBloomFilterForItems(r, 2000, 0.02)
	for i := uint64(0); i < 2000; i++ {
		bf.Add(i)
	}
	fp := 0
	const probes = 20000
	for i := uint64(1 << 40); i < (1<<40)+probes; i++ {
		if bf.Contains(i) {
			fp++
		}
	}
	rate := float64(fp) / probes
	if rate > 0.08 {
		t.Errorf("false positive rate %.4f far above target 0.02", rate)
	}
	if est := bf.EstimatedFalsePositiveRate(); est > 0.05 {
		t.Errorf("analytic false positive rate %.4f unexpectedly high", est)
	}
}

func TestBloomFilterSizing(t *testing.T) {
	r := xrand.New(3)
	bf := NewBloomFilterForItems(r, 1000, 0.01)
	// Theory: m about 9.6 bits/item, k about 7 for p=1%.
	if bf.Bits() < 8000 || bf.Bits() > 12000 {
		t.Errorf("Bits() = %d, want about 9600", bf.Bits())
	}
	if bf.HashCount() < 5 || bf.HashCount() > 9 {
		t.Errorf("HashCount() = %d, want about 7", bf.HashCount())
	}
}

func TestBloomFilterPanics(t *testing.T) {
	r := xrand.New(1)
	for _, f := range []func(){
		func() { NewBloomFilter(r, 0, 1) },
		func() { NewBloomFilter(r, 10, 0) },
		func() { NewBloomFilterForItems(r, 0, 0.1) },
		func() { NewBloomFilterForItems(r, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSpectralBloomNeverUnderestimates(t *testing.T) {
	r := xrand.New(5)
	sb := NewSpectralBloom(r, 4096, 4)
	exact := map[uint64]float64{}
	z := xrand.NewZipf(r, 500, 1.2)
	for i := 0; i < 20000; i++ {
		item := uint64(z.Next())
		sb.Add(item, 1)
		exact[item]++
	}
	if sb.Total() != 20000 {
		t.Errorf("Total = %v", sb.Total())
	}
	for item, want := range exact {
		if got := sb.Estimate(item); got < want-1e-9 {
			t.Fatalf("spectral bloom underestimated item %d: %v < %v", item, got, want)
		}
	}
}

func TestSpectralBloomAccurateWhenSparse(t *testing.T) {
	r := xrand.New(7)
	sb := NewSpectralBloom(r, 8192, 4)
	for i := uint64(0); i < 10; i++ {
		sb.Add(i, float64(i+1))
	}
	for i := uint64(0); i < 10; i++ {
		if got, want := sb.Estimate(i), float64(i+1); got != want {
			t.Errorf("Estimate(%d) = %v, want %v", i, got, want)
		}
	}
	if sb.Size() != 8192 {
		t.Errorf("Size = %d", sb.Size())
	}
}

func TestSpectralBloomPanics(t *testing.T) {
	r := xrand.New(1)
	for _, f := range []func(){
		func() { NewSpectralBloom(r, 0, 1) },
		func() { NewSpectralBloom(r, 8, 0) },
		func() { NewSpectralBloom(r, 8, 2).Add(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
