package sketch

import (
	"fmt"
	"math"

	"repro/internal/hashing"
)

// Batched point queries. UpdateBatch made the write path a sparse
// matrix-vector product driven through the devirtualized hash kernels of
// internal/hashing; EstimateBatch is the same move applied to reads. A point
// query touches one counter per row, so a batch of point queries is, per row,
// one batched hash pass over the key column followed by a gather from that
// row's contiguous counters — instead of interface-dispatched per-key hashing
// with a strided walk down the rows.
//
// The batched estimates are defined to be bit-identical to the scalar ones:
// Count-Min takes the same min-of-rows with the same `<` comparison,
// Count-Sketch feeds the same sign-corrected row values through the same
// median (in-place insertion sort over a fixed-depth slice view — no sort
// allocation), and Dyadic reads its level-0 Count-Min. Property tests pin
// this per family.
//
// Two entry points with different ownership:
//
//   - EstimateBatch uses a scratch column owned by the sketch, like
//     UpdateBatch's — zero allocations steady-state, single goroutine at a
//     time.
//   - EstimateBatchWith takes caller-owned scratch and reads only the
//     counters and the shared hash functions, so any number of goroutines may
//     query one immutable snapshot concurrently, each with its own
//     EstimateScratch. This is what the engine's epoch-pinned read cache
//     uses: many readers, one shared snapshot, a scratch pool.

// EstimateScratch holds the reusable columns a batched estimate needs: one
// bucket column, one sign column (Count-Sketch only) and one key-major
// n x depth estimate matrix (Count-Sketch's per-key median input). It grows
// to the largest (batch, depth) seen and is then allocation-free. The zero
// value is ready to use. A scratch must not be shared by concurrent readers;
// give each reader its own (they are small) or pool them.
type EstimateScratch struct {
	buckets []uint64
	signs   []float64
	ests    []float64
}

// bucketColumn returns the scratch's bucket column, grown to n entries.
func (sc *EstimateScratch) bucketColumn(n int) []uint64 {
	if cap(sc.buckets) < n {
		sc.buckets = make([]uint64, n)
	}
	return sc.buckets[:n]
}

// signColumn returns the scratch's sign column, grown to n entries.
func (sc *EstimateScratch) signColumn(n int) []float64 {
	if cap(sc.signs) < n {
		sc.signs = make([]float64, n)
	}
	return sc.signs[:n]
}

// estMatrix returns the scratch's key-major estimate matrix, grown to n
// entries (callers pass keys*depth).
func (sc *EstimateScratch) estMatrix(n int) []float64 {
	if cap(sc.ests) < n {
		sc.ests = make([]float64, n)
	}
	return sc.ests[:n]
}

// BatchEstimator is the read-side counterpart of the engine's LinearSketch
// contract: a sketch that answers a whole column of point queries per call,
// bit-identical to its scalar Estimate. EstimateBatch uses sketch-owned
// scratch (single goroutine); EstimateBatchWith uses caller-owned scratch and
// is safe for concurrent readers of an immutable snapshot.
type BatchEstimator interface {
	Estimate(item uint64) float64
	EstimateBatch(items []uint64, dst []float64)
	EstimateBatchWith(items []uint64, dst []float64, sc *EstimateScratch)
}

// CountMin --------------------------------------------------------------------

// EstimateBatch writes the estimated count of items[i] to dst[i] for every i,
// equivalent to (and bit-identical with) calling Estimate item by item: each
// row hashes the whole key column through the batched kernels, then folds
// that row's counters into the running minima. The sketch-owned scratch is
// reused across calls, so steady-state querying does not allocate; like
// UpdateBatch it makes the call single-goroutine. The slices must have equal
// length; the sketch does not retain them.
func (cm *CountMin) EstimateBatch(items []uint64, dst []float64) {
	cm.EstimateBatchWith(items, dst, &cm.estScratch)
}

// EstimateBatchWith is EstimateBatch over caller-owned scratch. It reads only
// the counters and the shared hash functions, so concurrent readers may query
// one immutable sketch as long as each brings its own scratch.
func (cm *CountMin) EstimateBatchWith(items []uint64, dst []float64, sc *EstimateScratch) {
	if len(items) != len(dst) {
		panic(fmt.Sprintf("sketch: CountMin.EstimateBatch length mismatch (%d items, %d dst)", len(items), len(dst)))
	}
	if len(items) == 0 {
		return
	}
	buckets := sc.bucketColumn(len(items))
	for i := range dst {
		dst[i] = math.Inf(1)
	}
	w := uint64(cm.width)
	for r := 0; r < cm.depth; r++ {
		hashing.HashBatch(cm.hashes[r], items, buckets)
		row := cm.row(r)
		for i, b := range buckets {
			if v := row[b%w]; v < dst[i] {
				dst[i] = v
			}
		}
	}
}

// CountSketch -----------------------------------------------------------------

// EstimateBatch writes the estimated count of items[i] to dst[i] for every i,
// equivalent to (and bit-identical with) per-item Estimate calls: each row
// hashes and signs the whole key column through the batched kernels and
// gathers its sign-corrected counters into a key-major estimate matrix, then
// each key's fixed-depth slice goes through the same in-place median the
// scalar path uses — no sort allocation. Sketch-owned scratch, reused across
// calls: zero allocations steady-state, single goroutine at a time.
func (cs *CountSketch) EstimateBatch(items []uint64, dst []float64) {
	cs.EstimateBatchWith(items, dst, &cs.estScratch)
}

// EstimateBatchWith is EstimateBatch over caller-owned scratch (safe for
// concurrent readers of an immutable sketch, one scratch per reader).
func (cs *CountSketch) EstimateBatchWith(items []uint64, dst []float64, sc *EstimateScratch) {
	if len(items) != len(dst) {
		panic(fmt.Sprintf("sketch: CountSketch.EstimateBatch length mismatch (%d items, %d dst)", len(items), len(dst)))
	}
	if len(items) == 0 {
		return
	}
	depth := cs.depth
	buckets := sc.bucketColumn(len(items))
	signs := sc.signColumn(len(items))
	ests := sc.estMatrix(len(items) * depth)
	w := uint64(cs.width)
	for r := 0; r < depth; r++ {
		hashing.HashBatch(cs.hashes[r], items, buckets)
		hashing.SignBatch(cs.signs[r], items, signs)
		row := cs.row(r)
		for i, b := range buckets {
			ests[i*depth+r] = signs[i] * row[b%w]
		}
	}
	for i := range items {
		dst[i] = median(ests[i*depth : (i+1)*depth])
	}
}

// Dyadic ----------------------------------------------------------------------

// EstimateBatch writes the estimated count of items[i] to dst[i], reading the
// level-0 Count-Min exactly as the scalar Estimate does (level 0 sketches the
// identity prefixes, i.e. the items themselves). Single goroutine; the
// scratch belongs to the level-0 sketch.
func (d *Dyadic) EstimateBatch(items []uint64, dst []float64) {
	d.levels[0].EstimateBatch(items, dst)
}

// EstimateBatchWith is EstimateBatch over caller-owned scratch (safe for
// concurrent readers of an immutable hierarchy, one scratch per reader).
func (d *Dyadic) EstimateBatchWith(items []uint64, dst []float64, sc *EstimateScratch) {
	d.levels[0].EstimateBatchWith(items, dst, sc)
}

// HeavyHitterTracker ----------------------------------------------------------

// EstimateBatch writes the estimated count of items[i] to dst[i], reading the
// backing Count-Min exactly as the scalar Estimate does. Single goroutine;
// the scratch belongs to the backing sketch.
func (t *HeavyHitterTracker) EstimateBatch(items []uint64, dst []float64) {
	t.cm.EstimateBatch(items, dst)
}

// EstimateBatchWith is EstimateBatch over caller-owned scratch (safe for
// concurrent readers of an immutable tracker, one scratch per reader).
func (t *HeavyHitterTracker) EstimateBatchWith(items []uint64, dst []float64, sc *EstimateScratch) {
	t.cm.EstimateBatchWith(items, dst, sc)
}

var (
	_ BatchEstimator = (*CountMin)(nil)
	_ BatchEstimator = (*CountSketch)(nil)
	_ BatchEstimator = (*Dyadic)(nil)
	_ BatchEstimator = (*HeavyHitterTracker)(nil)
)
