package sketch

import (
	"bytes"
	"encoding"
	"os"
	"path/filepath"
	"testing"
)

// Fuzzing the decode surface --------------------------------------------------
//
// Every byte reaching UnmarshalBinary or DecodeDelta in production came off
// the network (a peer's snapshot, a gossip delta) or off disk, so the
// decoders must hold two properties against arbitrary input:
//
//  1. never panic and never allocate unbounded memory — malformed input is
//     answered with an error;
//  2. canonical round trip — any accepted input decodes to a sketch whose
//     re-encoding is a fixed point: encode(decode(enc)) == enc. (The
//     original bytes may differ from the first re-encoding only in
//     non-canonical freedom the format allows, e.g. a conservative-flag
//     byte of 2 or duplicate candidate items; one decode normalizes that.)
//
// The corpus is seeded with the golden fixtures, so the fuzzer starts from
// every family's real wire format and mutates inward.

// codec is the marshal/unmarshal pair every sketch family implements.
type codec interface {
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// families lists a fresh zero value of every decodable sketch type.
func families() map[string]func() codec {
	return map[string]func() codec{
		"CountMin":    func() codec { return &CountMin{} },
		"CountSketch": func() codec { return &CountSketch{} },
		"Bloom":       func() codec { return &BloomFilter{} },
		"IBLT":        func() codec { return &IBLT{} },
		"Tracker":     func() codec { return &HeavyHitterTracker{} },
		"Dyadic":      func() codec { return &Dyadic{} },
	}
}

func seedGoldenCorpus(f *testing.F) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*.golden"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("no golden fixtures found: %v", err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("reading %s: %v", p, err)
		}
		f.Add(data)
	}
}

// FuzzUnmarshalBinary throws arbitrary bytes at every family's decoder.
// PeekKind must classify or reject without panicking; each decoder must
// either error or produce a sketch whose re-encoding is a stable fixed
// point.
func FuzzUnmarshalBinary(f *testing.F) {
	seedGoldenCorpus(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = PeekKind(data) // must not panic on anything
		for name, fresh := range families() {
			s := fresh()
			if err := s.UnmarshalBinary(data); err != nil {
				continue // rejected: fine, as long as it didn't panic
			}
			enc1, err := s.MarshalBinary()
			if err != nil {
				t.Fatalf("%s: decoded successfully but re-encode failed: %v", name, err)
			}
			s2 := fresh()
			if err := s2.UnmarshalBinary(enc1); err != nil {
				t.Fatalf("%s: re-encoding of accepted input does not decode: %v", name, err)
			}
			enc2, err := s2.MarshalBinary()
			if err != nil {
				t.Fatalf("%s: second re-encode failed: %v", name, err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("%s: round trip is not a fixed point (%d vs %d bytes)", name, len(enc1), len(enc2))
			}
		}
	})
}

// FuzzDecodeDelta attacks the zero-RLE delta envelope: arbitrary bytes must
// decode-or-error without panicking (with a tight inner-length cap so a
// forged header cannot demand gigabytes), and any recovered inner encoding
// must survive EncodeDelta/DecodeDelta verbatim.
func FuzzDecodeDelta(f *testing.F) {
	seedGoldenCorpus(f)
	// Also seed well-formed envelopes so the fuzzer sees the real format,
	// not just raw sketch bytes it must mutate into one.
	paths, _ := filepath.Glob(filepath.Join("testdata", "*.golden"))
	for _, p := range paths {
		if data, err := os.ReadFile(p); err == nil {
			f.Add(EncodeDelta(data))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		inner, err := DecodeDeltaLimit(data, 1<<20)
		if err != nil {
			return
		}
		re, err := DecodeDeltaLimit(EncodeDelta(inner), 1<<20)
		if err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
		if !bytes.Equal(inner, re) {
			t.Fatalf("delta envelope round trip altered the inner bytes (%d vs %d)", len(inner), len(re))
		}
	})
}
