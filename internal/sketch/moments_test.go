package sketch

import (
	"math"
	"testing"

	"repro/internal/stream"
	"repro/internal/xrand"
)

func TestCountSketchF2Accuracy(t *testing.T) {
	r := xrand.New(1)
	cs := NewCountSketch(r, 4096, 7)
	s := stream.Zipf(r, 100000, 200000, 1.1)
	exact := stream.NewExactCounter()
	for _, u := range s.Updates {
		cs.Update(u.Item, float64(u.Delta))
		exact.Update(u.Item, u.Delta)
	}
	var trueF2 float64
	for _, ic := range exact.TopK(exact.DistinctItems()) {
		trueF2 += float64(ic.Count) * float64(ic.Count)
	}
	got := cs.F2()
	if math.Abs(got-trueF2)/trueF2 > 0.05 {
		t.Fatalf("F2 estimate %.0f, true %.0f (relative error %.3f)", got, trueF2, math.Abs(got-trueF2)/trueF2)
	}
}

func TestCountSketchF2ExactForSingleItem(t *testing.T) {
	r := xrand.New(2)
	cs := NewCountSketch(r, 64, 3)
	cs.Update(7, 5)
	if got := cs.F2(); math.Abs(got-25) > 1e-9 {
		t.Fatalf("F2 of a single item with count 5 = %v, want 25", got)
	}
}

func TestCountSketchInnerProduct(t *testing.T) {
	r := xrand.New(3)
	a := NewCountSketch(r, 4096, 7)
	b := a.Clone()
	// Two overlapping frequency vectors.
	xa := map[uint64]float64{1: 100, 2: 50, 3: 10, 4: -20}
	xb := map[uint64]float64{1: 3, 3: 7, 4: 2, 9: 1000}
	var want float64
	for item, v := range xa {
		a.Update(item, v)
		if w, ok := xb[item]; ok {
			want += v * w
		}
	}
	for item, v := range xb {
		b.Update(item, v)
	}
	got, err := a.InnerProduct(b)
	if err != nil {
		t.Fatal(err)
	}
	// want = 300 + 70 - 40 = 330; allow noise from the 1000-weight item.
	if math.Abs(got-want) > 60 {
		t.Fatalf("InnerProduct = %v, want about %v", got, want)
	}
	if _, err := a.InnerProduct(NewCountSketch(r, 128, 3)); err == nil {
		t.Error("inner product across different dimensions should fail")
	}
}

func TestCountSketchInnerProductUnbiased(t *testing.T) {
	// Average the inner-product estimate over independent sketches.
	xa := map[uint64]float64{1: 10, 2: 4}
	xb := map[uint64]float64{1: 2, 2: -1, 5: 7}
	want := 10.0*2 + 4.0*(-1)
	const trials = 200
	var sum float64
	for trial := 0; trial < trials; trial++ {
		r := xrand.New(uint64(trial) + 10)
		a := NewCountSketch(r, 32, 1)
		b := a.Clone()
		for item, v := range xa {
			a.Update(item, v)
		}
		for item, v := range xb {
			b.Update(item, v)
		}
		got, err := a.InnerProduct(b)
		if err != nil {
			t.Fatal(err)
		}
		sum += got
	}
	if avg := sum / trials; math.Abs(avg-want) > 8 {
		t.Fatalf("inner product mean %v, want about %v", avg, want)
	}
}
