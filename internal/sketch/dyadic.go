package sketch

import (
	"container/heap"
	"fmt"
	"math/bits"

	"repro/internal/hashing"
	"repro/internal/stream"
	"repro/internal/xrand"
)

// Dyadic maintains one Count-Min sketch per dyadic level of the universe
// [0, 2^logU). Level l summarizes the counts of dyadic intervals of length
// 2^l. This is the structure of [CM03b, CM04] that answers range-sum
// queries, finds heavy hitters without enumerating the universe, and
// computes approximate quantiles — the "identify the elements mapped to
// heavy buckets" step of the survey made efficient.
type Dyadic struct {
	logU     int
	levels   []*CountMin // levels[l] sketches prefixes of length 2^l
	universe uint64
	// keyScratch is the reusable shifted-prefix column for UpdateBatch (zero
	// allocations steady-state). Writes are single-goroutine; queries never
	// touch it.
	keyScratch []uint64
}

// NewDyadic creates a dyadic Count-Min hierarchy over the universe
// [0, 2^logU), with each level's sketch having the given width and depth.
func NewDyadic(r *xrand.Rand, logU, width, depth int) *Dyadic {
	if logU < 1 || logU > 63 {
		panic(fmt.Sprintf("sketch: NewDyadic requires 1 <= logU <= 63, got %d", logU))
	}
	d := &Dyadic{
		logU:     logU,
		levels:   make([]*CountMin, logU+1),
		universe: 1 << uint(logU),
	}
	for l := 0; l <= logU; l++ {
		d.levels[l] = NewCountMin(r, width, depth)
	}
	return d
}

// NewDyadicForUniverse creates a dyadic hierarchy large enough to cover the
// universe [0, universe), rounding the number of levels up to the next power
// of two.
func NewDyadicForUniverse(r *xrand.Rand, universe uint64, width, depth int) *Dyadic {
	logU := log2Ceil(universe)
	if logU < 1 {
		logU = 1
	}
	return NewDyadic(r, logU, width, depth)
}

// Universe returns the size of the item universe (2^logU).
func (d *Dyadic) Universe() uint64 { return d.universe }

// Update adds delta to item's count at every level of the hierarchy.
func (d *Dyadic) Update(item uint64, delta float64) {
	if item >= d.universe {
		panic(fmt.Sprintf("sketch: Dyadic item %d outside universe %d", item, d.universe))
	}
	for l := 0; l <= d.logU; l++ {
		d.levels[l].Update(item>>uint(l), delta)
	}
}

// UpdateBatch adds deltas[i] to items[i]'s count at every level, equivalent
// to (and bit-identical with) per-item Update calls: each level receives the
// whole prefix column through its Count-Min's batched path. Levels own
// disjoint counters, so running level-by-level instead of item-by-item
// reorders nothing within any one counter. The shifted-prefix column is
// reused across calls (zero allocations steady-state beyond the levels' own
// scratch). The slices must have equal length.
func (d *Dyadic) UpdateBatch(items []uint64, deltas []float64) {
	if len(items) != len(deltas) {
		panic(fmt.Sprintf("sketch: Dyadic.UpdateBatch length mismatch (%d items, %d deltas)", len(items), len(deltas)))
	}
	if len(items) == 0 {
		return
	}
	for _, item := range items {
		if item >= d.universe {
			panic(fmt.Sprintf("sketch: Dyadic item %d outside universe %d", item, d.universe))
		}
	}
	if cap(d.keyScratch) < len(items) {
		d.keyScratch = make([]uint64, len(items))
	}
	prefixes := d.keyScratch[:len(items)]
	copy(prefixes, items)
	d.levels[0].UpdateBatch(prefixes, deltas)
	for l := 1; l <= d.logU; l++ {
		for i := range prefixes {
			prefixes[i] >>= 1
		}
		d.levels[l].UpdateBatch(prefixes, deltas)
	}
}

// Estimate returns the estimated count of a single item.
func (d *Dyadic) Estimate(item uint64) float64 {
	return d.levels[0].Estimate(item)
}

// prefixEstimate returns the estimated count of the dyadic interval
// [p*2^l, (p+1)*2^l).
func (d *Dyadic) prefixEstimate(level int, prefix uint64) float64 {
	return d.levels[level].Estimate(prefix)
}

// RangeSum estimates the total count of items in [lo, hi] by decomposing the
// range into at most 2*logU dyadic intervals and summing their estimates.
func (d *Dyadic) RangeSum(lo, hi uint64) float64 {
	if lo > hi || hi >= d.universe {
		panic(fmt.Sprintf("sketch: RangeSum invalid range [%d,%d] in universe %d", lo, hi, d.universe))
	}
	var sum float64
	// Decompose [lo, hi] greedily into maximal dyadic intervals.
	for lo <= hi {
		// Largest level such that lo is aligned and the interval fits.
		l := 0
		for l < d.logU {
			size := uint64(1) << uint(l+1)
			if lo%size != 0 || lo+size-1 > hi {
				break
			}
			l++
		}
		sum += d.prefixEstimate(l, lo>>uint(l))
		step := uint64(1) << uint(l)
		if lo+step < lo { // overflow guard
			break
		}
		lo += step
	}
	return sum
}

// HeavyHitters returns every item whose estimated count is at least
// phi * total mass. It descends the dyadic tree, expanding only prefixes
// whose estimated mass reaches the threshold, so the work is proportional to
// the number of heavy prefixes rather than the universe size. The returned
// counts are the Count-Min estimates (never underestimates for insertion-only
// streams), sorted by decreasing count.
func (d *Dyadic) HeavyHitters(phi float64) []stream.ItemCount {
	total := d.levels[0].TotalMass()
	threshold := phi * total
	if threshold <= 0 {
		threshold = 1e-12 // expand everything non-empty but avoid zero-mass explosion
	}
	var out []stream.ItemCount
	// Depth-first descent from the root level.
	type node struct {
		level  int
		prefix uint64
	}
	stack := []node{{level: d.logU, prefix: 0}}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		est := d.prefixEstimate(n.level, n.prefix)
		if est < threshold {
			continue
		}
		if n.level == 0 {
			out = append(out, stream.ItemCount{Item: n.prefix, Count: int64(est + 0.5)})
			continue
		}
		stack = append(stack,
			node{level: n.level - 1, prefix: n.prefix * 2},
			node{level: n.level - 1, prefix: n.prefix*2 + 1},
		)
	}
	stream.SortItemCounts(out)
	return out
}

// Quantile returns an item q such that the estimated rank of q (number of
// stream elements with value <= q) is approximately phi * total. It binary
// searches the dyadic structure using prefix sums.
func (d *Dyadic) Quantile(phi float64) uint64 {
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := phi * d.levels[0].TotalMass()
	// Walk down from the root choosing left/right child by accumulated mass.
	var prefix uint64
	var acc float64
	for l := d.logU - 1; l >= 0; l-- {
		left := prefix * 2
		leftMass := d.prefixEstimate(l, left)
		if acc+leftMass >= target {
			prefix = left
		} else {
			acc += leftMass
			prefix = left + 1
		}
	}
	return prefix
}

// TotalMass returns the total mass of the stream seen so far.
func (d *Dyadic) TotalMass() float64 { return d.levels[0].TotalMass() }

// SizeCounters returns the total number of counters across all levels.
func (d *Dyadic) SizeCounters() int {
	s := 0
	for _, cm := range d.levels {
		s += cm.Size()
	}
	return s
}

// LogUniverse returns the number of dyadic levels minus one.
func (d *Dyadic) LogUniverse() int { return d.logU }

// Clone returns an empty hierarchy whose level sketches share d's hash
// functions, suitable for sketching a disjoint part of the stream and merging
// back — the same clone/merge law as the flat sketches, applied level-wise.
func (d *Dyadic) Clone() *Dyadic {
	out := &Dyadic{
		logU:     d.logU,
		levels:   make([]*CountMin, len(d.levels)),
		universe: d.universe,
	}
	for l, cm := range d.levels {
		out.levels[l] = cm.Clone()
	}
	return out
}

// CompatibleWith returns nil when other was built with the same universe and
// every level shares d's dimensions, hash seed and family — the precondition
// for an exact merge. Like the flat sketches' CompatibleWith, this is the
// check transports run on serialized hierarchies from possibly misconfigured
// peers; Merge itself trusts in-process callers beyond the dimension check.
func (d *Dyadic) CompatibleWith(other *Dyadic) error {
	if d.logU != other.logU {
		return fmt.Errorf("sketch: dyadic universe mismatch: 2^%d vs 2^%d", d.logU, other.logU)
	}
	for l := range d.levels {
		if err := d.levels[l].CompatibleWith(other.levels[l]); err != nil {
			return fmt.Errorf("sketch: dyadic level %d: %w", l, err)
		}
	}
	return nil
}

// Merge adds other's counters into d, level by level. Each level is a linear
// Count-Min, so the merged hierarchy answers every range sum, quantile and
// heavy-hitter query exactly as if d had processed both streams itself. The
// universes and per-level dimensions are validated up front so a mismatch
// cannot leave d partially merged.
func (d *Dyadic) Merge(other *Dyadic) error {
	if d.logU != other.logU {
		return fmt.Errorf("sketch: cannot merge dyadic hierarchies over different universes (2^%d vs 2^%d)", d.logU, other.logU)
	}
	for l := range d.levels {
		if d.levels[l].Width() != other.levels[l].Width() || d.levels[l].Depth() != other.levels[l].Depth() {
			return fmt.Errorf("sketch: cannot merge dyadic level %d of different dimensions", l)
		}
	}
	for l := range d.levels {
		if err := d.levels[l].Merge(other.levels[l]); err != nil {
			return fmt.Errorf("sketch: merging dyadic level %d: %w", l, err)
		}
	}
	return nil
}

// Copy returns a deep copy of the hierarchy (each level a Copy of d's).
func (d *Dyadic) Copy() *Dyadic {
	out := &Dyadic{
		logU:     d.logU,
		levels:   make([]*CountMin, len(d.levels)),
		universe: d.universe,
	}
	for l, cm := range d.levels {
		out.levels[l] = cm.Copy()
	}
	return out
}

// Sub subtracts other's counters from d, level by level — the inverse of
// Merge, validated the same way up front so a mismatch cannot leave d
// partially subtracted. The difference of two snapshots of one growing
// hierarchy is itself a valid hierarchy of the updates between them.
func (d *Dyadic) Sub(other *Dyadic) error {
	if d.logU != other.logU {
		return fmt.Errorf("sketch: cannot subtract dyadic hierarchies over different universes (2^%d vs 2^%d)", d.logU, other.logU)
	}
	for l := range d.levels {
		if d.levels[l].Width() != other.levels[l].Width() || d.levels[l].Depth() != other.levels[l].Depth() {
			return fmt.Errorf("sketch: cannot subtract dyadic level %d of different dimensions", l)
		}
	}
	for l := range d.levels {
		if err := d.levels[l].Sub(other.levels[l]); err != nil {
			return fmt.Errorf("sketch: subtracting dyadic level %d: %w", l, err)
		}
	}
	return nil
}

// Scale multiplies every level's counters by c (Scale(-1) negates the
// hierarchy, so a negated clone merges as a subtraction).
func (d *Dyadic) Scale(c float64) {
	for _, cm := range d.levels {
		cm.Scale(c)
	}
}

// Column partitioning (see columns.go) ---------------------------------------

// ColumnShape returns the hierarchy's column-partition geometry: every
// level's rows stacked level-major — (logU+1)*depth rows of width columns
// (NewDyadic gives every level the same dimensions).
func (d *Dyadic) ColumnShape() ColumnShape {
	return ColumnShape{Rows: len(d.levels) * d.levels[0].depth, Width: d.levels[0].width}
}

// ScatterColumns routes a key/delta batch level by level: level l hashes the
// keys' length-2^l prefixes exactly as UpdateBatch does, and each row's
// increment goes to the shard owning its bucket's column. Items outside the
// universe panic, mirroring UpdateBatch.
func (d *Dyadic) ScatterColumns(items []uint64, deltas []float64, sc *ColumnScatter) {
	if len(items) != len(deltas) {
		panic(fmt.Sprintf("sketch: Dyadic.ScatterColumns length mismatch (%d items, %d deltas)", len(items), len(deltas)))
	}
	for _, item := range items {
		if item >= d.universe {
			panic(fmt.Sprintf("sketch: Dyadic item %d outside universe %d", item, d.universe))
		}
	}
	depth := d.levels[0].depth
	w := uint64(d.levels[0].width)
	prefixes := sc.keyScratch(len(items))
	copy(prefixes, items)
	buckets := sc.bucketScratch(len(items))
	for l := 0; l <= d.logU; l++ {
		if l > 0 {
			for i := range prefixes {
				prefixes[i] >>= 1
			}
		}
		cm := d.levels[l]
		for r := 0; r < depth; r++ {
			hashing.HashBatch(cm.hashes[r], prefixes, buckets)
			for i, b := range buckets {
				sc.route(l*depth+r, b%w, deltas[i])
			}
		}
	}
	for _, dl := range deltas {
		sc.Mass += dl
	}
}

// AppendColumnSlice appends the counters of the columns shard j of n owns,
// level-major (each level's rows in order), and returns the extended slice.
func (d *Dyadic) AppendColumnSlice(dst []float64, shard, shards int) []float64 {
	lo, hi := d.ColumnShape().Range(shard, shards)
	for _, cm := range d.levels {
		dst = appendColumnSlice(dst, cm.counts, cm.width, cm.depth, lo, hi)
	}
	return dst
}

// ConcatColumns overwrites every level's counters from per-shard column
// slices (level-major rows, the inverse of AppendColumnSlice) and sets each
// level's total mass to the summed shard masses — every level sees every
// delta once, so the per-level masses are all the stream's total.
func (d *Dyadic) ConcatColumns(slices [][]float64, mass float64) error {
	shape := d.ColumnShape()
	depth := d.levels[0].depth
	for j, s := range slices {
		lo, hi := shape.Range(j, len(slices))
		w := hi - lo
		if len(s) != shape.Rows*w {
			return fmt.Errorf("sketch: dyadic column slice %d holds %d counters, want %d (%d rows x %d columns)",
				j, len(s), shape.Rows*w, shape.Rows, w)
		}
		for rr := 0; rr < shape.Rows; rr++ {
			cm := d.levels[rr/depth]
			r := rr % depth
			copy(cm.counts[r*cm.width+lo:r*cm.width+hi], s[rr*w:(rr+1)*w])
		}
	}
	for _, cm := range d.levels {
		cm.totalMass = mass
	}
	return nil
}

// ColumnMass returns the mass a partitioned engine must account for when
// absorbing this hierarchy (every level carries the same total).
func (d *Dyadic) ColumnMass() float64 { return d.levels[0].totalMass }

// HeavyHitterTracker combines a Count-Min sketch with a candidate heap so
// that heavy hitters can be reported after a single pass without a second
// pass over the stream and without knowing the universe. This is the
// practical structure used by the "heavy bucket" narrative of the survey:
// the sketch supplies estimated counts, the heap remembers which items
// currently look heavy.
type HeavyHitterTracker struct {
	cm         *CountMin
	k          int
	candidates *candidateHeap
	inHeap     map[uint64]*candidate
}

type candidate struct {
	item  uint64
	count float64
	index int
}

type candidateHeap []*candidate

func (h candidateHeap) Len() int           { return len(h) }
func (h candidateHeap) Less(i, j int) bool { return h[i].count < h[j].count }
func (h candidateHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *candidateHeap) Push(x interface{}) {
	c := x.(*candidate)
	c.index = len(*h)
	*h = append(*h, c)
}
func (h *candidateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// NewHeavyHitterTracker creates a tracker that keeps the k items with the
// largest estimated counts, backed by a Count-Min of the given dimensions.
func NewHeavyHitterTracker(r *xrand.Rand, width, depth, k int) *HeavyHitterTracker {
	if k < 1 {
		panic("sketch: NewHeavyHitterTracker requires k >= 1")
	}
	return newHeavyHitterTracker(NewCountMin(r, width, depth), k)
}

// newHeavyHitterTracker wraps an existing Count-Min in an empty tracker; the
// shared construction path of NewHeavyHitterTracker and UnmarshalBinary.
func newHeavyHitterTracker(cm *CountMin, k int) *HeavyHitterTracker {
	h := &HeavyHitterTracker{
		cm:         cm,
		k:          k,
		candidates: &candidateHeap{},
		inHeap:     make(map[uint64]*candidate),
	}
	heap.Init(h.candidates)
	return h
}

// Update processes one update and refreshes the candidate heap.
func (t *HeavyHitterTracker) Update(item uint64, delta float64) {
	t.cm.Update(item, delta)
	est := t.cm.Estimate(item)
	if c, ok := t.inHeap[item]; ok {
		c.count = est
		heap.Fix(t.candidates, c.index)
		return
	}
	t.offer(item, est)
}

// UpdateBatch processes the updates in order. The heap decision for item i
// must see the sketch state after updates 0..i only — batching the counter
// writes ahead of the estimates would let later updates leak into earlier
// candidates' scores — so the tracker necessarily stays per-item; the method
// exists so the tracker satisfies the engine's batched LinearSketch contract
// with semantics identical to the scalar path. The slices must have equal
// length.
func (t *HeavyHitterTracker) UpdateBatch(items []uint64, deltas []float64) {
	if len(items) != len(deltas) {
		panic(fmt.Sprintf("sketch: HeavyHitterTracker.UpdateBatch length mismatch (%d items, %d deltas)", len(items), len(deltas)))
	}
	for i, item := range items {
		t.Update(item, deltas[i])
	}
}

// offer inserts a new candidate with the given estimate, evicting the current
// minimum if the heap is full and the newcomer scores higher.
func (t *HeavyHitterTracker) offer(item uint64, est float64) {
	if t.candidates.Len() < t.k {
		c := &candidate{item: item, count: est}
		heap.Push(t.candidates, c)
		t.inHeap[item] = c
		return
	}
	if min := (*t.candidates)[0]; est > min.count {
		heap.Pop(t.candidates)
		delete(t.inHeap, min.item)
		c := &candidate{item: item, count: est}
		heap.Push(t.candidates, c)
		t.inHeap[item] = c
	}
}

// Estimate returns the sketch estimate for an item.
func (t *HeavyHitterTracker) Estimate(item uint64) float64 { return t.cm.Estimate(item) }

// K returns the candidate capacity (the number of items tracked for TopK).
func (t *HeavyHitterTracker) K() int { return t.k }

// Width returns the backing Count-Min's counters per row.
func (t *HeavyHitterTracker) Width() int { return t.cm.Width() }

// Depth returns the backing Count-Min's number of rows.
func (t *HeavyHitterTracker) Depth() int { return t.cm.Depth() }

// TotalMass returns the sum of all deltas processed by the backing sketch.
func (t *HeavyHitterTracker) TotalMass() float64 { return t.cm.TotalMass() }

// Backing exposes the tracker's Count-Min sketch. The returned sketch shares
// state with the tracker: callers may read counters (e.g. to run sparse
// recovery over a snapshot) but must not update through it, or the candidate
// heap will go stale.
func (t *HeavyHitterTracker) Backing() *CountMin { return t.cm }

// CompatibleWith returns nil when other was built from the same dimensions,
// hash seed and family as t — the precondition for an exact merge. Merge
// itself, like CountMin.Merge, only checks dimensions and trusts in-process
// callers; transports receiving sketches from possibly misconfigured peers
// should check compatibility first.
func (t *HeavyHitterTracker) CompatibleWith(other *HeavyHitterTracker) error {
	return t.cm.CompatibleWith(other.cm)
}

// AbsorbCountMin folds a bare Count-Min — typically a peer's serialized
// counters, without candidate metadata — into the tracker's backing sketch.
// Existing candidates re-score against the merged counters at report time,
// so estimates afterwards equal those of a tracker that saw both streams;
// items tracked only by the peer are not learned (ship the full tracker
// encoding to keep them). Unlike Merge, the hash seeds are verified, since
// the bytes usually crossed a process boundary.
func (t *HeavyHitterTracker) AbsorbCountMin(cm *CountMin) error {
	if err := t.cm.CompatibleWith(cm); err != nil {
		return err
	}
	return t.cm.Merge(cm)
}

// Clone returns an empty tracker whose backing Count-Min shares t's hash
// functions, suitable for sketching a disjoint part of the stream and
// merging back (the sharded-ingestion pattern of internal/engine).
func (t *HeavyHitterTracker) Clone() *HeavyHitterTracker {
	out := &HeavyHitterTracker{
		cm:         t.cm.Clone(),
		k:          t.k,
		candidates: &candidateHeap{},
		inHeap:     make(map[uint64]*candidate),
	}
	heap.Init(out.candidates)
	return out
}

// Merge folds other into t. The Count-Min counters add exactly (linearity),
// so estimates after the merge equal those of a single tracker fed both
// streams. The candidate sets are unioned and re-scored against the merged
// counters, keeping the k largest: a candidate heavy anywhere stays a
// candidate, which is the standard distributed top-k reduction.
func (t *HeavyHitterTracker) Merge(other *HeavyHitterTracker) error {
	if err := t.cm.Merge(other.cm); err != nil {
		return err
	}
	union := make(map[uint64]struct{}, len(t.inHeap)+len(other.inHeap))
	for item := range t.inHeap {
		union[item] = struct{}{}
	}
	for item := range other.inHeap {
		union[item] = struct{}{}
	}
	t.candidates = &candidateHeap{}
	t.inHeap = make(map[uint64]*candidate, t.k)
	heap.Init(t.candidates)
	for item := range union {
		t.offer(item, t.cm.Estimate(item))
	}
	return nil
}

// Copy returns a deep copy of the tracker: the backing Count-Min's current
// counters plus the current candidate set (re-scored lazily at report
// time, like every other tracker read).
func (t *HeavyHitterTracker) Copy() *HeavyHitterTracker {
	out := newHeavyHitterTracker(t.cm.Copy(), t.k)
	for _, c := range *t.candidates {
		out.offer(c.item, c.count)
	}
	return out
}

// Sub subtracts other's backing counters from t — the inverse of Merge at
// the counter level. The candidate set is left as t's own: candidates are
// re-scored against the counters at report time, so after a subtraction the
// reported counts reflect the difference stream. This is what lets a
// sketchd replicator compute "everything since the last shipped snapshot"
// as one tracker-shaped delta: the counters are exactly the delta stream's,
// and the candidate items ride along so the receiving peer can learn them.
func (t *HeavyHitterTracker) Sub(other *HeavyHitterTracker) error {
	return t.cm.Sub(other.cm)
}

// Scale multiplies the backing counters by c (candidates re-score against
// the scaled counters at report time).
func (t *HeavyHitterTracker) Scale(c float64) { t.cm.Scale(c) }

// TopK returns the current candidate set sorted by decreasing estimate.
// Candidates are re-scored against the sketch at report time, so the counts
// reflect the full stream seen so far (the stored heap scores can be stale:
// they date from each item's last update) and agree with what a merge of
// sharded trackers would report for the same candidate.
func (t *HeavyHitterTracker) TopK() []stream.ItemCount {
	out := make([]stream.ItemCount, 0, t.candidates.Len())
	for _, c := range *t.candidates {
		out = append(out, stream.ItemCount{Item: c.item, Count: int64(t.cm.Estimate(c.item) + 0.5)})
	}
	stream.SortItemCounts(out)
	return out
}

// HeavyHitters returns candidates whose estimate reaches phi * total mass,
// re-scored against the sketch at report time (see TopK).
func (t *HeavyHitterTracker) HeavyHitters(phi float64) []stream.ItemCount {
	threshold := phi * t.cm.TotalMass()
	var out []stream.ItemCount
	for _, c := range *t.candidates {
		if est := t.cm.Estimate(c.item); est >= threshold {
			out = append(out, stream.ItemCount{Item: c.item, Count: int64(est + 0.5)})
		}
	}
	stream.SortItemCounts(out)
	return out
}

// SpaceCounters returns the number of counters used by the backing sketch.
func (t *HeavyHitterTracker) SpaceCounters() int { return t.cm.Size() }

// Column partitioning (see columns.go) ---------------------------------------

// ColumnShape returns the backing Count-Min's column-partition geometry.
func (t *HeavyHitterTracker) ColumnShape() ColumnShape { return t.cm.ColumnShape() }

// ScatterColumns routes a key/delta batch exactly as the backing Count-Min
// does, and additionally routes every key down the candidate lane to the
// shard owning its row-0 bucket, paired with that bucket's shard-local index.
// The owning shard scores the key from its own row-0 counter — the same
// never-underestimating upper bound the tracker's heap scores with — so
// partitioned candidate tracking needs no cross-shard reads. Candidate
// *selection* is a heuristic in every mode (replica merges already union and
// re-score per-shard heaps); only the counters are bit-identical across
// modes.
func (t *HeavyHitterTracker) ScatterColumns(items []uint64, deltas []float64, sc *ColumnScatter) {
	if len(items) != len(deltas) {
		panic(fmt.Sprintf("sketch: HeavyHitterTracker.ScatterColumns length mismatch (%d items, %d deltas)", len(items), len(deltas)))
	}
	cm := t.cm
	buckets := sc.bucketScratch(len(items))
	w := uint64(cm.width)
	for r := 0; r < cm.depth; r++ {
		hashing.HashBatch(cm.hashes[r], items, buckets)
		for i, b := range buckets {
			b %= w
			sc.route(r, b, deltas[i])
			if r == 0 {
				sc.routeCandidate(items[i], b)
			}
		}
	}
	for _, dl := range deltas {
		sc.Mass += dl
	}
}

// AppendColumnSlice appends the backing Count-Min's slice for one shard.
func (t *HeavyHitterTracker) AppendColumnSlice(dst []float64, shard, shards int) []float64 {
	return t.cm.AppendColumnSlice(dst, shard, shards)
}

// ConcatColumns reassembles the backing Count-Min from per-shard column
// slices. Candidates are delivered separately via AbsorbCandidates once the
// counters are in place, so they score against the full sketch.
func (t *HeavyHitterTracker) ConcatColumns(slices [][]float64, mass float64) error {
	return t.cm.ConcatColumns(slices, mass)
}

// ColumnMass returns the backing sketch's total mass.
func (t *HeavyHitterTracker) ColumnMass() float64 { return t.cm.TotalMass() }

// CandidateItems returns the tracked candidate keys (unordered).
func (t *HeavyHitterTracker) CandidateItems() []uint64 {
	out := make([]uint64, 0, t.candidates.Len())
	for _, c := range *t.candidates {
		out = append(out, c.item)
	}
	return out
}

// CandidateCap returns the candidate capacity k.
func (t *HeavyHitterTracker) CandidateCap() int { return t.k }

// AbsorbCandidates offers every key to the candidate heap scored by the
// current sketch estimate — the union-and-re-score reduction Merge applies,
// exposed for callers that carry candidate keys outside a tracker (the
// engine's partitioned snapshot assembly).
func (t *HeavyHitterTracker) AbsorbCandidates(items []uint64) {
	for _, item := range items {
		est := t.cm.Estimate(item)
		if c, ok := t.inHeap[item]; ok {
			c.count = est
			heap.Fix(t.candidates, c.index)
			continue
		}
		t.offer(item, est)
	}
}

// log2Ceil returns ceil(log2(x)) for x >= 1.
func log2Ceil(x uint64) int {
	if x <= 1 {
		return 0
	}
	return 64 - bits.LeadingZeros64(x-1)
}
