// Package stream defines the data-stream model the sketches operate on and
// provides workload generators and exact reference counters.
//
// The survey's opening example is a large multiset S ⊆ {1..n} observed one
// element at a time in a single pass. We model this as a sequence of Update
// records (item, delta). Insertion-only streams use delta=+1; the turnstile
// model allows arbitrary positive and negative deltas, which is what makes
// the "sketch = linear map" view powerful (deletions are just negative
// updates to the frequency vector x).
//
// The paper's motivating workloads (iceberg queries in databases, per-flow
// traffic accounting in networks) use proprietary traces; the generators
// here synthesize streams with the same structural property that matters —
// heavy-tailed frequency distributions with a small number of "elephant"
// items — so the sketching code paths are exercised identically.
package stream

import (
	"math"
	"sort"

	"repro/internal/xrand"
)

// Update is a single stream record: item identifier plus a signed count
// delta. In the insertion-only (cash-register) model Delta is always +1.
type Update struct {
	Item  uint64
	Delta int64
}

// Stream is a finite sequence of updates over a universe of size N.
type Stream struct {
	Universe uint64
	Updates  []Update
}

// Len returns the number of updates in the stream.
func (s *Stream) Len() int { return len(s.Updates) }

// TotalCount returns the sum of all deltas (the l1 mass for insertion-only
// streams).
func (s *Stream) TotalCount() int64 {
	var total int64
	for _, u := range s.Updates {
		total += u.Delta
	}
	return total
}

// FrequencyVector materializes the stream's frequency vector x of length
// Universe, where x[i] is the net count of item i. Only valid when Universe
// fits in memory; used by tests and small experiments.
func (s *Stream) FrequencyVector() []float64 {
	x := make([]float64, s.Universe)
	for _, u := range s.Updates {
		x[u.Item] += float64(u.Delta)
	}
	return x
}

// ExactCounter maintains exact frequencies with a hash map; it is the ground
// truth the sketches are compared against (and the thing whose memory
// footprint the sketches avoid).
type ExactCounter struct {
	counts map[uint64]int64
	total  int64
}

// NewExactCounter returns an empty exact counter.
func NewExactCounter() *ExactCounter {
	return &ExactCounter{counts: make(map[uint64]int64)}
}

// Update applies a single (item, delta) record.
func (c *ExactCounter) Update(item uint64, delta int64) {
	c.counts[item] += delta
	c.total += delta
	if c.counts[item] == 0 {
		delete(c.counts, item)
	}
}

// Count returns the exact count of item.
func (c *ExactCounter) Count(item uint64) int64 { return c.counts[item] }

// Total returns the total mass of the stream seen so far.
func (c *ExactCounter) Total() int64 { return c.total }

// DistinctItems returns the number of items with non-zero count.
func (c *ExactCounter) DistinctItems() int { return len(c.counts) }

// ItemCount is an (item, count) pair used in heavy-hitter reports.
type ItemCount struct {
	Item  uint64
	Count int64
}

// HeavyHitters returns all items whose count is at least phi * total mass,
// sorted by decreasing count (ties by increasing item id). This is the exact
// answer that sketch-based heavy-hitter algorithms approximate.
func (c *ExactCounter) HeavyHitters(phi float64) []ItemCount {
	threshold := phi * float64(c.total)
	var out []ItemCount
	for item, count := range c.counts {
		if float64(count) >= threshold {
			out = append(out, ItemCount{Item: item, Count: count})
		}
	}
	SortItemCounts(out)
	return out
}

// TopK returns the k most frequent items, sorted by decreasing count.
func (c *ExactCounter) TopK(k int) []ItemCount {
	all := make([]ItemCount, 0, len(c.counts))
	for item, count := range c.counts {
		all = append(all, ItemCount{Item: item, Count: count})
	}
	SortItemCounts(all)
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// SortItemCounts sorts in place by decreasing count, breaking ties by
// increasing item id so results are deterministic.
func SortItemCounts(items []ItemCount) {
	sort.Slice(items, func(a, b int) bool {
		if items[a].Count != items[b].Count {
			return items[a].Count > items[b].Count
		}
		return items[a].Item < items[b].Item
	})
}

// Generators -----------------------------------------------------------------

// Zipf generates an insertion-only stream of length records over a universe
// of size universe, with item frequencies following a Zipf(alpha)
// distribution. Item ranks are mapped to identifiers via a random permutation
// so that heavy items are not simply the smallest identifiers.
func Zipf(r *xrand.Rand, universe uint64, length int, alpha float64) *Stream {
	z := xrand.NewZipf(r, int(universe), alpha)
	perm := r.Perm(int(universe))
	updates := make([]Update, length)
	for i := range updates {
		updates[i] = Update{Item: uint64(perm[z.Next()]), Delta: 1}
	}
	return &Stream{Universe: universe, Updates: updates}
}

// Uniform generates an insertion-only stream with items drawn uniformly from
// the universe: the hardest case for heavy-hitter detection (there are none).
func Uniform(r *xrand.Rand, universe uint64, length int) *Stream {
	updates := make([]Update, length)
	for i := range updates {
		updates[i] = Update{Item: r.Uint64n(universe), Delta: 1}
	}
	return &Stream{Universe: universe, Updates: updates}
}

// PlantedHeavyHitters generates a stream where k designated items each
// receive heavyFraction/k of the mass and the rest is uniform background
// noise. It returns the stream and the planted items sorted by identifier.
// This gives experiments an unambiguous ground-truth heavy-hitter set.
func PlantedHeavyHitters(r *xrand.Rand, universe uint64, length, k int, heavyFraction float64) (*Stream, []uint64) {
	if heavyFraction < 0 || heavyFraction > 1 {
		panic("stream: heavyFraction must be in [0,1]")
	}
	heavyItems := make([]uint64, k)
	chosen := r.Sample(int(universe), k)
	for i, v := range chosen {
		heavyItems[i] = uint64(v)
	}
	heavyUpdates := int(float64(length) * heavyFraction)
	updates := make([]Update, 0, length)
	for i := 0; i < heavyUpdates; i++ {
		updates = append(updates, Update{Item: heavyItems[i%k], Delta: 1})
	}
	for len(updates) < length {
		updates = append(updates, Update{Item: r.Uint64n(universe), Delta: 1})
	}
	r.Shuffle(len(updates), func(i, j int) { updates[i], updates[j] = updates[j], updates[i] })
	sort.Slice(heavyItems, func(a, b int) bool { return heavyItems[a] < heavyItems[b] })
	return &Stream{Universe: universe, Updates: updates}, heavyItems
}

// Flows generates a synthetic packet-trace-like stream: numFlows flows whose
// sizes follow a Pareto-style heavy-tailed distribution (a few elephant
// flows, many mice), with packets interleaved in random order. This stands in
// for the proprietary network traces used by the traffic-measurement papers
// the survey cites ([EV02, FCAB98]).
func Flows(r *xrand.Rand, universe uint64, numFlows int, meanSize float64, tailIndex float64) *Stream {
	if tailIndex <= 1 {
		panic("stream: tailIndex must exceed 1 for a finite mean")
	}
	var updates []Update
	scale := meanSize * (tailIndex - 1) / tailIndex // Pareto x_min for the requested mean
	for f := 0; f < numFlows; f++ {
		flowID := r.Uint64n(universe)
		u := r.Float64Open()
		size := int(scale / math.Pow(u, 1/tailIndex))
		if size < 1 {
			size = 1
		}
		for p := 0; p < size; p++ {
			updates = append(updates, Update{Item: flowID, Delta: 1})
		}
	}
	r.Shuffle(len(updates), func(i, j int) { updates[i], updates[j] = updates[j], updates[i] })
	return &Stream{Universe: universe, Updates: updates}
}

// Turnstile generates a stream with both insertions and deletions: each of
// the `items` chosen items receives a burst of insertions followed later by a
// partial deletion, leaving a known residual frequency vector. It returns the
// stream and the exact residual counts.
func Turnstile(r *xrand.Rand, universe uint64, items int, maxCount int) (*Stream, map[uint64]int64) {
	residual := make(map[uint64]int64)
	var updates []Update
	chosen := r.Sample(int(universe), items)
	for _, c := range chosen {
		item := uint64(c)
		inserted := int64(1 + r.Intn(maxCount))
		deleted := int64(r.Intn(int(inserted) + 1))
		for i := int64(0); i < inserted; i++ {
			updates = append(updates, Update{Item: item, Delta: 1})
		}
		for i := int64(0); i < deleted; i++ {
			updates = append(updates, Update{Item: item, Delta: -1})
		}
		if inserted-deleted != 0 {
			residual[item] = inserted - deleted
		}
	}
	r.Shuffle(len(updates), func(i, j int) { updates[i], updates[j] = updates[j], updates[i] })
	return &Stream{Universe: universe, Updates: updates}, residual
}

// Adversarial generates an insertion-only stream designed to stress sketches:
// a single item receives half the mass, and the remaining mass is spread over
// items that are consecutive integers (which defeats weak hash functions that
// are not random enough on structured keys).
func Adversarial(r *xrand.Rand, universe uint64, length int) (*Stream, uint64) {
	heavy := r.Uint64n(universe)
	updates := make([]Update, 0, length)
	for i := 0; i < length/2; i++ {
		updates = append(updates, Update{Item: heavy, Delta: 1})
	}
	next := uint64(0)
	for len(updates) < length {
		if next == heavy {
			next++
		}
		updates = append(updates, Update{Item: next % universe, Delta: 1})
		next++
	}
	r.Shuffle(len(updates), func(i, j int) { updates[i], updates[j] = updates[j], updates[i] })
	return &Stream{Universe: universe, Updates: updates}, heavy
}
