package stream

import (
	"testing"

	"repro/internal/xrand"
)

func TestExactCounterBasics(t *testing.T) {
	c := NewExactCounter()
	c.Update(5, 3)
	c.Update(7, 1)
	c.Update(5, 2)
	if c.Count(5) != 5 {
		t.Errorf("Count(5) = %d, want 5", c.Count(5))
	}
	if c.Count(99) != 0 {
		t.Errorf("Count(99) = %d, want 0", c.Count(99))
	}
	if c.Total() != 6 {
		t.Errorf("Total = %d, want 6", c.Total())
	}
	if c.DistinctItems() != 2 {
		t.Errorf("DistinctItems = %d, want 2", c.DistinctItems())
	}
	c.Update(7, -1)
	if c.DistinctItems() != 1 {
		t.Errorf("after deletion DistinctItems = %d, want 1", c.DistinctItems())
	}
}

func TestExactCounterHeavyHitters(t *testing.T) {
	c := NewExactCounter()
	c.Update(1, 50)
	c.Update(2, 30)
	c.Update(3, 15)
	c.Update(4, 5)
	hh := c.HeavyHitters(0.2) // threshold 20
	if len(hh) != 2 || hh[0].Item != 1 || hh[1].Item != 2 {
		t.Fatalf("HeavyHitters(0.2) = %v", hh)
	}
	top := c.TopK(3)
	if len(top) != 3 || top[0].Item != 1 || top[2].Item != 3 {
		t.Fatalf("TopK(3) = %v", top)
	}
	if got := c.TopK(100); len(got) != 4 {
		t.Fatalf("TopK(100) returned %d items", len(got))
	}
}

func TestSortItemCountsDeterministicTies(t *testing.T) {
	items := []ItemCount{{Item: 9, Count: 5}, {Item: 3, Count: 5}, {Item: 1, Count: 7}}
	SortItemCounts(items)
	if items[0].Item != 1 || items[1].Item != 3 || items[2].Item != 9 {
		t.Fatalf("SortItemCounts = %v", items)
	}
}

func TestZipfStream(t *testing.T) {
	r := xrand.New(1)
	s := Zipf(r, 1000, 5000, 1.2)
	if s.Len() != 5000 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.TotalCount() != 5000 {
		t.Fatalf("TotalCount = %d", s.TotalCount())
	}
	c := NewExactCounter()
	for _, u := range s.Updates {
		if u.Item >= 1000 {
			t.Fatalf("item %d out of universe", u.Item)
		}
		c.Update(u.Item, u.Delta)
	}
	top := c.TopK(1)
	// The most frequent item in a Zipf(1.2) stream of 5000 must be substantial.
	if top[0].Count < 100 {
		t.Errorf("Zipf stream top item only has count %d; distribution not skewed", top[0].Count)
	}
}

func TestUniformStream(t *testing.T) {
	r := xrand.New(2)
	s := Uniform(r, 100, 1000)
	if s.Len() != 1000 || s.TotalCount() != 1000 {
		t.Fatalf("bad uniform stream: len=%d total=%d", s.Len(), s.TotalCount())
	}
	for _, u := range s.Updates {
		if u.Item >= 100 || u.Delta != 1 {
			t.Fatalf("bad update %v", u)
		}
	}
}

func TestPlantedHeavyHitters(t *testing.T) {
	r := xrand.New(3)
	s, heavy := PlantedHeavyHitters(r, 10000, 20000, 5, 0.5)
	if len(heavy) != 5 {
		t.Fatalf("expected 5 heavy items, got %d", len(heavy))
	}
	c := NewExactCounter()
	for _, u := range s.Updates {
		c.Update(u.Item, u.Delta)
	}
	// Each planted item gets about 10% of the mass; all must exceed 5%.
	for _, h := range heavy {
		if float64(c.Count(h)) < 0.05*float64(c.Total()) {
			t.Errorf("planted heavy item %d has only count %d of total %d", h, c.Count(h), c.Total())
		}
	}
	// Heavy items must be sorted.
	for i := 1; i < len(heavy); i++ {
		if heavy[i-1] >= heavy[i] {
			t.Errorf("heavy items not sorted: %v", heavy)
		}
	}
}

func TestPlantedHeavyHittersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad heavyFraction did not panic")
		}
	}()
	PlantedHeavyHitters(xrand.New(1), 100, 100, 2, 1.5)
}

func TestFlowsHeavyTail(t *testing.T) {
	r := xrand.New(5)
	s := Flows(r, 1<<20, 2000, 10, 1.5)
	if s.Len() == 0 {
		t.Fatal("empty flow stream")
	}
	c := NewExactCounter()
	for _, u := range s.Updates {
		c.Update(u.Item, u.Delta)
	}
	top := c.TopK(10)
	// Heavy-tailed flow sizes: the largest flow should be much bigger than the mean.
	mean := float64(c.Total()) / float64(c.DistinctItems())
	if float64(top[0].Count) < 3*mean {
		t.Errorf("largest flow %d not heavy relative to mean %.1f", top[0].Count, mean)
	}
}

func TestFlowsPanicsOnBadTail(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("tailIndex <= 1 did not panic")
		}
	}()
	Flows(xrand.New(1), 100, 10, 5, 1.0)
}

func TestTurnstileResidualsMatch(t *testing.T) {
	r := xrand.New(7)
	s, residual := Turnstile(r, 5000, 200, 50)
	c := NewExactCounter()
	for _, u := range s.Updates {
		c.Update(u.Item, u.Delta)
	}
	if c.DistinctItems() != len(residual) {
		t.Fatalf("distinct items %d != residual map size %d", c.DistinctItems(), len(residual))
	}
	for item, want := range residual {
		if got := c.Count(item); got != want {
			t.Errorf("item %d residual %d, want %d", item, got, want)
		}
	}
}

func TestAdversarialStream(t *testing.T) {
	r := xrand.New(9)
	s, heavy := Adversarial(r, 1000, 2000)
	c := NewExactCounter()
	for _, u := range s.Updates {
		c.Update(u.Item, u.Delta)
	}
	if float64(c.Count(heavy)) < 0.4*float64(c.Total()) {
		t.Errorf("adversarial heavy item has count %d of %d", c.Count(heavy), c.Total())
	}
}

func TestFrequencyVector(t *testing.T) {
	s := &Stream{Universe: 5, Updates: []Update{{1, 2}, {3, -1}, {1, 1}}}
	x := s.FrequencyVector()
	if x[1] != 3 || x[3] != -1 || x[0] != 0 {
		t.Fatalf("FrequencyVector = %v", x)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Zipf(xrand.New(42), 500, 1000, 1.1)
	b := Zipf(xrand.New(42), 500, 1000, 1.1)
	for i := range a.Updates {
		if a.Updates[i] != b.Updates[i] {
			t.Fatal("Zipf generator not deterministic for equal seeds")
		}
	}
}
