package hashing

// Exported modular arithmetic over GF(p) with p = 2^61-1. The polynomial
// hash family uses these internally; the IBLT and the sparse Fourier
// transform's index arithmetic use them to build linear, invertible cell
// contents (sums of key*count modulo p can be divided by the count again,
// unlike XOR-based folding).

// Mod61 reduces x modulo 2^61-1.
func Mod61(x uint64) uint64 { return mod61(x) }

// AddMod61 returns (a + b) mod 2^61-1 for a, b < 2^61-1.
func AddMod61(a, b uint64) uint64 { return mod61(a + b) }

// SubMod61 returns (a - b) mod 2^61-1 for a, b < 2^61-1.
func SubMod61(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return a + MersennePrime61 - b
}

// MulMod61 returns (a * b) mod 2^61-1 for a, b < 2^61-1.
func MulMod61(a, b uint64) uint64 { return mulmod61(a, b) }

// PowMod61 returns a^e mod 2^61-1 by square-and-multiply.
func PowMod61(a, e uint64) uint64 {
	a = mod61(a)
	result := uint64(1)
	for e > 0 {
		if e&1 == 1 {
			result = mulmod61(result, a)
		}
		a = mulmod61(a, a)
		e >>= 1
	}
	return result
}

// InvMod61 returns the multiplicative inverse of a modulo the prime 2^61-1
// (via Fermat's little theorem: a^(p-2)). It panics if a ≡ 0.
func InvMod61(a uint64) uint64 {
	a = mod61(a)
	if a == 0 {
		panic("hashing: InvMod61 of zero")
	}
	return PowMod61(a, MersennePrime61-2)
}
