// Package hashing implements the hash families that drive every sketch in
// this repository: 2-universal multiply-shift hashing, k-wise independent
// polynomial hashing over a Mersenne prime field, sign (±1) hash families,
// and tabulation hashing.
//
// The survey's central observation is that hashing items into buckets is a
// sparse linear map; the quality of that map (collision probabilities,
// estimator variance) is governed by the independence of the hash family.
// Count-Min needs pairwise independence, Count-Sketch needs pairwise
// independent buckets plus pairwise independent signs, and the sparse Fourier
// transform's permutation needs a random invertible affine map, all of which
// are provided here.
//
// Every family also implements the batched contracts of batch.go
// (BatchHasher.HashBatch, BatchSignHasher.SignBatch): devirtualized loop
// kernels that map a whole column of keys per call, bit-identically to the
// scalar methods. The sketches' UpdateBatch hot paths are built on them.
package hashing

import (
	"fmt"
	"math/bits"

	"repro/internal/xrand"
)

// MersennePrime61 is 2^61 - 1, the modulus used by the polynomial hash
// family. Working modulo a Mersenne prime lets us reduce without division.
const MersennePrime61 = (1 << 61) - 1

// Hasher maps 64-bit keys to buckets in [0, Range()).
type Hasher interface {
	// Hash returns the bucket for key, in [0, Range()).
	Hash(key uint64) uint64
	// Range returns the number of buckets.
	Range() uint64
}

// SignHasher maps 64-bit keys to ±1.
type SignHasher interface {
	// Sign returns +1 or -1 for the key.
	Sign(key uint64) float64
}

// mulmod61 computes (a*b) mod (2^61-1) for a, b < 2^61 using a 128-bit
// intermediate product. Because 2^61 ≡ 1 (mod p), the 122-bit product
// q*2^61 + r reduces to q + r.
func mulmod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a, b < 2^61 so hi < 2^58 and q = hi<<3 | lo>>61 fits in a uint64.
	q := hi<<3 | lo>>61
	r := lo & MersennePrime61
	return mod61(q + r)
}

// mod61 reduces x modulo 2^61-1. The input may be any uint64.
func mod61(x uint64) uint64 {
	x = (x & MersennePrime61) + (x >> 61)
	if x >= MersennePrime61 {
		x -= MersennePrime61
	}
	return x
}

// PolyHash is a k-wise independent hash family over the field GF(2^61-1),
// evaluated with Horner's rule: h(x) = (a_{k-1} x^{k-1} + ... + a_0) mod p,
// then mapped to [0, m). With k coefficients the family is k-wise
// independent.
type PolyHash struct {
	coeffs []uint64 // coefficients in [0, p), leading coefficient non-zero
	m      uint64
}

// NewPolyHash creates a k-wise independent hash function with range m.
// k must be >= 1 and m >= 1.
func NewPolyHash(r *xrand.Rand, k int, m uint64) *PolyHash {
	if k < 1 {
		panic("hashing: NewPolyHash requires k >= 1")
	}
	if m < 1 {
		panic("hashing: NewPolyHash requires m >= 1")
	}
	coeffs := make([]uint64, k)
	for i := range coeffs {
		coeffs[i] = r.Uint64n(MersennePrime61)
	}
	// Ensure the leading coefficient is non-zero so the polynomial has the
	// intended degree (k-wise independence requires a degree-(k-1) polynomial).
	if k > 1 && coeffs[k-1] == 0 {
		coeffs[k-1] = 1
	}
	return &PolyHash{coeffs: coeffs, m: m}
}

// Hash returns the bucket for key.
func (p *PolyHash) Hash(key uint64) uint64 {
	return p.raw(key) % p.m
}

// raw evaluates the polynomial at key modulo 2^61-1, before range reduction.
func (p *PolyHash) raw(key uint64) uint64 {
	x := mod61(key)
	acc := uint64(0)
	for i := len(p.coeffs) - 1; i >= 0; i-- {
		acc = mod61(mulmod61(acc, x) + p.coeffs[i])
	}
	return acc
}

// Range returns the number of buckets.
func (p *PolyHash) Range() uint64 { return p.m }

// Degree returns the independence parameter k of the family.
func (p *PolyHash) Degree() int { return len(p.coeffs) }

// PolySign is a k-wise independent ±1 hash family derived from PolyHash by
// taking the low bit of the polynomial evaluation.
type PolySign struct {
	p *PolyHash
}

// NewPolySign creates a k-wise independent sign family.
func NewPolySign(r *xrand.Rand, k int) *PolySign {
	return &PolySign{p: NewPolyHash(r, k, MersennePrime61)}
}

// Sign returns +1 or -1 for the key.
func (s *PolySign) Sign(key uint64) float64 {
	if s.p.raw(key)&1 == 0 {
		return 1
	}
	return -1
}

// MultiplyShift is the classic 2-universal multiply-shift hash for
// power-of-two ranges: h(x) = (a*x + b) >> (64 - log2(m)). It is the fastest
// family in the package and what a production stream processor would use for
// Count-Min rows.
type MultiplyShift struct {
	a, b uint64
	bits uint
	m    uint64
}

// NewMultiplyShift creates a multiply-shift hash with range m rounded up to
// the next power of two. The effective range is reported by Range().
func NewMultiplyShift(r *xrand.Rand, m uint64) *MultiplyShift {
	if m < 1 {
		panic("hashing: NewMultiplyShift requires m >= 1")
	}
	bits := uint(1)
	for (uint64(1) << bits) < m {
		bits++
	}
	a := r.Uint64() | 1 // multiplier must be odd
	b := r.Uint64()
	return &MultiplyShift{a: a, b: b, bits: bits, m: 1 << bits}
}

// Hash returns the bucket for key.
func (h *MultiplyShift) Hash(key uint64) uint64 {
	return (h.a*key + h.b) >> (64 - h.bits)
}

// Range returns the (power-of-two) number of buckets.
func (h *MultiplyShift) Range() uint64 { return h.m }

// Tabulation implements simple tabulation hashing: the key is split into
// 8-bit characters, each indexed into an independent random table, and the
// results are XORed. Simple tabulation is 3-independent and behaves like a
// fully random function for most sketching applications.
type Tabulation struct {
	tables [8][256]uint64
	m      uint64
}

// NewTabulation creates a tabulation hash with range m.
func NewTabulation(r *xrand.Rand, m uint64) *Tabulation {
	if m < 1 {
		panic("hashing: NewTabulation requires m >= 1")
	}
	t := &Tabulation{m: m}
	for i := range t.tables {
		for j := range t.tables[i] {
			t.tables[i][j] = r.Uint64()
		}
	}
	return t
}

// Hash returns the bucket for key.
func (t *Tabulation) Hash(key uint64) uint64 {
	var h uint64
	for i := 0; i < 8; i++ {
		h ^= t.tables[i][byte(key>>(8*uint(i)))]
	}
	return h % t.m
}

// Range returns the number of buckets.
func (t *Tabulation) Range() uint64 { return t.m }

// TabulationSign is a ±1 family built from tabulation hashing.
type TabulationSign struct {
	t *Tabulation
}

// NewTabulationSign creates a tabulation-based sign family.
func NewTabulationSign(r *xrand.Rand) *TabulationSign {
	return &TabulationSign{t: NewTabulation(r, 1<<62)}
}

// Sign returns +1 or -1 for the key.
func (s *TabulationSign) Sign(key uint64) float64 {
	if s.t.Hash(key)&1 == 0 {
		return 1
	}
	return -1
}

// Family identifies a hash family construction; it is used by experiment
// configuration to ablate the choice of family.
type Family int

const (
	// FamilyPoly2 is the pairwise independent polynomial family.
	FamilyPoly2 Family = iota
	// FamilyPoly4 is the 4-wise independent polynomial family.
	FamilyPoly4
	// FamilyMultiplyShift is the 2-universal multiply-shift family.
	FamilyMultiplyShift
	// FamilyTabulation is simple tabulation hashing.
	FamilyTabulation
)

// String returns the family name.
func (f Family) String() string {
	switch f {
	case FamilyPoly2:
		return "poly2"
	case FamilyPoly4:
		return "poly4"
	case FamilyMultiplyShift:
		return "multiply-shift"
	case FamilyTabulation:
		return "tabulation"
	default:
		return fmt.Sprintf("family(%d)", int(f))
	}
}

// NewHasher constructs a bucket hasher of the given family with range m.
func NewHasher(f Family, r *xrand.Rand, m uint64) Hasher {
	switch f {
	case FamilyPoly2:
		return NewPolyHash(r, 2, m)
	case FamilyPoly4:
		return NewPolyHash(r, 4, m)
	case FamilyMultiplyShift:
		return NewMultiplyShift(r, m)
	case FamilyTabulation:
		return NewTabulation(r, m)
	default:
		panic("hashing: unknown family " + f.String())
	}
}

// NewSigner constructs a ±1 hasher of the given family.
func NewSigner(f Family, r *xrand.Rand) SignHasher {
	switch f {
	case FamilyPoly2:
		return NewPolySign(r, 2)
	case FamilyPoly4:
		return NewPolySign(r, 4)
	case FamilyMultiplyShift:
		// Multiply-shift signs: use a fresh pairwise polynomial; multiply-shift
		// itself does not give unbiased signs on its low bits.
		return NewPolySign(r, 2)
	case FamilyTabulation:
		return NewTabulationSign(r)
	default:
		panic("hashing: unknown family " + f.String())
	}
}
