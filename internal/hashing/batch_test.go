package hashing

import (
	"testing"

	"repro/internal/xrand"
)

// randomKeys draws n keys spanning small values (dense universes) and the
// full 64-bit range (token hashes).
func randomKeys(r *xrand.Rand, n int) []uint64 {
	keys := make([]uint64, n)
	for i := range keys {
		if i%2 == 0 {
			keys[i] = r.Uint64n(1 << 20)
		} else {
			keys[i] = r.Uint64()
		}
	}
	return keys
}

// TestHashBatchMatchesScalar asserts the batched kernels are bit-identical
// to the scalar Hash path for every family, every range shape, and both the
// concrete-type and interface-dispatch entry points.
func TestHashBatchMatchesScalar(t *testing.T) {
	r := xrand.New(11)
	keys := randomKeys(r, 513)
	hashers := map[string]Hasher{
		"poly1":            NewPolyHash(xrand.New(1), 1, 977),
		"poly2":            NewPolyHash(xrand.New(2), 2, 1024),
		"poly4":            NewPolyHash(xrand.New(3), 4, 37),
		"poly7":            NewPolyHash(xrand.New(4), 7, 999983),
		"multiply-shift":   NewMultiplyShift(xrand.New(5), 4096),
		"multiply-shift-1": NewMultiplyShift(xrand.New(6), 1),
		"tabulation":       NewTabulation(xrand.New(7), 12345),
	}
	for name, h := range hashers {
		dst := make([]uint64, len(keys))
		HashBatch(h, keys, dst)
		for i, k := range keys {
			if want := h.Hash(k); dst[i] != want {
				t.Fatalf("%s: HashBatch[%d] = %d, scalar Hash = %d", name, i, dst[i], want)
			}
		}
		// The concrete kernels must agree with the dispatch helper too.
		if b, ok := h.(BatchHasher); ok {
			dst2 := make([]uint64, len(keys))
			b.HashBatch(keys, dst2)
			for i := range dst {
				if dst[i] != dst2[i] {
					t.Fatalf("%s: dispatch and concrete kernels disagree at %d", name, i)
				}
			}
		} else {
			t.Fatalf("%s: does not implement BatchHasher", name)
		}
	}
}

// TestSignBatchMatchesScalar asserts the batched sign kernels are
// bit-identical to the scalar Sign path for every sign family.
func TestSignBatchMatchesScalar(t *testing.T) {
	r := xrand.New(13)
	keys := randomKeys(r, 513)
	signers := map[string]SignHasher{
		"poly2-sign":      NewPolySign(xrand.New(1), 2),
		"poly4-sign":      NewPolySign(xrand.New(2), 4),
		"tabulation-sign": NewTabulationSign(xrand.New(3)),
	}
	for name, s := range signers {
		dst := make([]float64, len(keys))
		SignBatch(s, keys, dst)
		for i, k := range keys {
			if want := s.Sign(k); dst[i] != want {
				t.Fatalf("%s: SignBatch[%d] = %v, scalar Sign = %v", name, i, dst[i], want)
			}
		}
		if _, ok := s.(BatchSignHasher); !ok {
			t.Fatalf("%s: does not implement BatchSignHasher", name)
		}
	}
}

// TestHashBatchFallback exercises the scalar fallback for a Hasher that does
// not implement the batch contract.
func TestHashBatchFallback(t *testing.T) {
	h := constHasher{v: 3, m: 8}
	keys := []uint64{1, 2, 3}
	dst := make([]uint64, 3)
	HashBatch(h, keys, dst)
	for i := range dst {
		if dst[i] != 3 {
			t.Fatalf("fallback HashBatch[%d] = %d, want 3", i, dst[i])
		}
	}
	var sdst [3]float64
	SignBatch(constSigner{}, keys, sdst[:])
	for i := range sdst {
		if sdst[i] != -1 {
			t.Fatalf("fallback SignBatch[%d] = %v, want -1", i, sdst[i])
		}
	}
}

type constHasher struct{ v, m uint64 }

func (c constHasher) Hash(uint64) uint64 { return c.v }
func (c constHasher) Range() uint64      { return c.m }

type constSigner struct{}

func (constSigner) Sign(uint64) float64 { return -1 }

// Benchmarks ----------------------------------------------------------------

const benchBatchLen = 4096

func benchHashBatch(b *testing.B, h Hasher) {
	keys := randomKeys(xrand.New(1), benchBatchLen)
	dst := make([]uint64, benchBatchLen)
	b.SetBytes(8 * benchBatchLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashBatch(h, keys, dst)
	}
}

func benchHashScalar(b *testing.B, h Hasher) {
	keys := randomKeys(xrand.New(1), benchBatchLen)
	dst := make([]uint64, benchBatchLen)
	b.SetBytes(8 * benchBatchLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, k := range keys {
			dst[j] = h.Hash(k)
		}
	}
}

func BenchmarkMultiplyShiftBatch(b *testing.B) {
	benchHashBatch(b, NewMultiplyShift(xrand.New(1), 4096))
}

func BenchmarkMultiplyShiftScalar(b *testing.B) {
	benchHashScalar(b, NewMultiplyShift(xrand.New(1), 4096))
}

func BenchmarkPoly2Batch(b *testing.B) {
	benchHashBatch(b, NewPolyHash(xrand.New(1), 2, 4096))
}

func BenchmarkPoly2Scalar(b *testing.B) {
	benchHashScalar(b, NewPolyHash(xrand.New(1), 2, 4096))
}

func BenchmarkTabulationBatch(b *testing.B) {
	benchHashBatch(b, NewTabulation(xrand.New(1), 4096))
}

func BenchmarkTabulationScalar(b *testing.B) {
	benchHashScalar(b, NewTabulation(xrand.New(1), 4096))
}

func BenchmarkPolySignBatch(b *testing.B) {
	s := NewPolySign(xrand.New(1), 2)
	keys := randomKeys(xrand.New(1), benchBatchLen)
	dst := make([]float64, benchBatchLen)
	b.SetBytes(8 * benchBatchLen)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SignBatch(s, keys, dst)
	}
}
