package hashing

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestMod61(t *testing.T) {
	cases := []struct{ in, want uint64 }{
		{0, 0},
		{1, 1},
		{MersennePrime61 - 1, MersennePrime61 - 1},
		{MersennePrime61, 0},
		{MersennePrime61 + 1, 1},
		{2 * MersennePrime61, 0},
		{math.MaxUint64, math.MaxUint64 % MersennePrime61},
	}
	for _, c := range cases {
		if got := mod61(c.in); got != c.want {
			t.Errorf("mod61(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestMulMod61MatchesBigIntStyle(t *testing.T) {
	// Verify against a slow, obviously correct implementation using
	// repeated addition decomposition for a set of structured and random cases.
	slow := func(a, b uint64) uint64 {
		// Compute a*b mod p via binary decomposition of b.
		a %= MersennePrime61
		b %= MersennePrime61
		var res uint64
		for b > 0 {
			if b&1 == 1 {
				res = mod61(res + a)
			}
			a = mod61(a << 1)
			b >>= 1
		}
		return res
	}
	r := xrand.New(5)
	for i := 0; i < 2000; i++ {
		a := r.Uint64n(MersennePrime61)
		b := r.Uint64n(MersennePrime61)
		if got, want := mulmod61(a, b), slow(a, b); got != want {
			t.Fatalf("mulmod61(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
	// Edge cases.
	edges := []uint64{0, 1, 2, MersennePrime61 - 1, MersennePrime61 - 2, 1 << 60}
	for _, a := range edges {
		for _, b := range edges {
			if got, want := mulmod61(a, b), slow(a, b); got != want {
				t.Fatalf("mulmod61(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestPolyHashRange(t *testing.T) {
	r := xrand.New(1)
	for _, m := range []uint64{1, 2, 7, 64, 1000} {
		h := NewPolyHash(r, 2, m)
		if h.Range() != m {
			t.Fatalf("Range() = %d, want %d", h.Range(), m)
		}
		for i := uint64(0); i < 1000; i++ {
			if v := h.Hash(i); v >= m {
				t.Fatalf("Hash(%d) = %d out of range %d", i, v, m)
			}
		}
	}
}

func TestPolyHashDeterministic(t *testing.T) {
	h := NewPolyHash(xrand.New(7), 3, 128)
	for i := uint64(0); i < 100; i++ {
		if h.Hash(i) != h.Hash(i) {
			t.Fatalf("hash of %d not deterministic", i)
		}
	}
}

func TestPolyHashDegree(t *testing.T) {
	h := NewPolyHash(xrand.New(1), 4, 16)
	if h.Degree() != 4 {
		t.Fatalf("Degree() = %d, want 4", h.Degree())
	}
}

func TestPolyHashPanics(t *testing.T) {
	for _, tc := range []struct {
		k int
		m uint64
	}{{0, 10}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPolyHash(k=%d,m=%d) did not panic", tc.k, tc.m)
				}
			}()
			NewPolyHash(xrand.New(1), tc.k, tc.m)
		}()
	}
}

// TestPairwiseCollisionRate verifies the defining property of a 2-universal
// family: Pr[h(x)=h(y)] is close to 1/m for distinct x, y, averaged over
// random draws of the function.
func TestPairwiseCollisionRate(t *testing.T) {
	r := xrand.New(11)
	const m = 64
	const trials = 20000
	pairs := [][2]uint64{{1, 2}, {0, math.MaxUint64}, {12345, 54321}, {7, 1 << 40}}
	for _, pair := range pairs {
		collisions := 0
		for i := 0; i < trials; i++ {
			h := NewPolyHash(r, 2, m)
			if h.Hash(pair[0]) == h.Hash(pair[1]) {
				collisions++
			}
		}
		rate := float64(collisions) / trials
		if math.Abs(rate-1.0/m) > 3.0/m {
			t.Errorf("collision rate for %v = %.4f, want about %.4f", pair, rate, 1.0/m)
		}
	}
}

func TestSignBalance(t *testing.T) {
	makeSigners := map[string]func() SignHasher{
		"poly2":      func() SignHasher { return NewPolySign(xrand.New(3), 2) },
		"poly4":      func() SignHasher { return NewPolySign(xrand.New(3), 4) },
		"tabulation": func() SignHasher { return NewTabulationSign(xrand.New(3)) },
	}
	for name, mk := range makeSigners {
		s := mk()
		pos := 0
		const n = 20000
		for i := 0; i < n; i++ {
			v := s.Sign(uint64(i) * 2654435761)
			if v != 1 && v != -1 {
				t.Fatalf("%s: Sign returned %v", name, v)
			}
			if v == 1 {
				pos++
			}
		}
		if pos < n/2-n/10 || pos > n/2+n/10 {
			t.Errorf("%s: sign imbalance, +1 fraction %.3f", name, float64(pos)/n)
		}
	}
}

func TestSignPairwiseUncorrelated(t *testing.T) {
	// E[s(x)s(y)] should be about 0 for x != y over random draws of the family.
	r := xrand.New(13)
	const trials = 20000
	sum := 0.0
	for i := 0; i < trials; i++ {
		s := NewPolySign(r, 2)
		sum += s.Sign(42) * s.Sign(1337)
	}
	if avg := sum / trials; math.Abs(avg) > 0.05 {
		t.Errorf("pairwise sign correlation %.4f, want about 0", avg)
	}
}

func TestMultiplyShiftRangePowerOfTwo(t *testing.T) {
	r := xrand.New(17)
	for _, m := range []uint64{1, 2, 3, 5, 64, 100, 1000} {
		h := NewMultiplyShift(r, m)
		got := h.Range()
		if got < m || got&(got-1) != 0 {
			t.Fatalf("Range() = %d for requested %d: want power of two >= m", got, m)
		}
		for i := uint64(0); i < 1000; i++ {
			if v := h.Hash(i); v >= got {
				t.Fatalf("Hash(%d) = %d out of range %d", i, v, got)
			}
		}
	}
}

func TestMultiplyShiftSpreads(t *testing.T) {
	r := xrand.New(19)
	h := NewMultiplyShift(r, 256)
	counts := make([]int, h.Range())
	const n = 100000
	for i := 0; i < n; i++ {
		counts[h.Hash(uint64(i))]++
	}
	expected := float64(n) / float64(len(counts))
	for b, c := range counts {
		if float64(c) > 4*expected {
			t.Errorf("bucket %d grossly overloaded: %d (expected about %.0f)", b, c, expected)
		}
	}
}

func TestTabulationRange(t *testing.T) {
	r := xrand.New(23)
	h := NewTabulation(r, 100)
	if h.Range() != 100 {
		t.Fatalf("Range() = %d, want 100", h.Range())
	}
	for i := uint64(0); i < 10000; i++ {
		if v := h.Hash(i * 0x9e3779b9); v >= 100 {
			t.Fatalf("Hash out of range: %d", v)
		}
	}
}

func TestTabulationUniform(t *testing.T) {
	r := xrand.New(29)
	const m = 32
	h := NewTabulation(r, m)
	counts := make([]int, m)
	const n = 64000
	for i := 0; i < n; i++ {
		counts[h.Hash(uint64(i))]++
	}
	expected := float64(n) / m
	for b, c := range counts {
		if math.Abs(float64(c)-expected) > 8*math.Sqrt(expected) {
			t.Errorf("tabulation bucket %d count %d far from expected %.0f", b, c, expected)
		}
	}
}

func TestFamilyString(t *testing.T) {
	cases := map[Family]string{
		FamilyPoly2:         "poly2",
		FamilyPoly4:         "poly4",
		FamilyMultiplyShift: "multiply-shift",
		FamilyTabulation:    "tabulation",
		Family(99):          "family(99)",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("Family(%d).String() = %q, want %q", int(f), got, want)
		}
	}
}

func TestNewHasherAllFamilies(t *testing.T) {
	r := xrand.New(31)
	for _, f := range []Family{FamilyPoly2, FamilyPoly4, FamilyMultiplyShift, FamilyTabulation} {
		h := NewHasher(f, r, 128)
		if h.Range() < 128 {
			t.Errorf("%s: Range() = %d < requested 128", f, h.Range())
		}
		for i := uint64(0); i < 500; i++ {
			if v := h.Hash(i); v >= h.Range() {
				t.Errorf("%s: Hash out of range", f)
				break
			}
		}
		s := NewSigner(f, r)
		if v := s.Sign(1); v != 1 && v != -1 {
			t.Errorf("%s: Sign(1) = %v", f, v)
		}
	}
}

func TestNewHasherUnknownFamilyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHasher with unknown family did not panic")
		}
	}()
	NewHasher(Family(42), xrand.New(1), 8)
}

// Property: hash values are always within range, for all families.
func TestHashWithinRangeProperty(t *testing.T) {
	r := xrand.New(37)
	hashers := []Hasher{
		NewPolyHash(r, 2, 97),
		NewPolyHash(r, 4, 1024),
		NewMultiplyShift(r, 512),
		NewTabulation(r, 77),
	}
	f := func(key uint64) bool {
		for _, h := range hashers {
			if h.Hash(key) >= h.Range() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPolyHash2(b *testing.B) {
	h := NewPolyHash(xrand.New(1), 2, 1<<16)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkPolyHash4(b *testing.B) {
	h := NewPolyHash(xrand.New(1), 4, 1<<16)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkMultiplyShift(b *testing.B) {
	h := NewMultiplyShift(xrand.New(1), 1<<16)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint64(i))
	}
	_ = sink
}

func BenchmarkTabulation(b *testing.B) {
	h := NewTabulation(xrand.New(1), 1<<16)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = h.Hash(uint64(i))
	}
	_ = sink
}
