package hashing

import (
	"testing"

	"repro/internal/xrand"
)

func TestModArithBasics(t *testing.T) {
	if Mod61(MersennePrime61) != 0 {
		t.Error("Mod61(p) != 0")
	}
	if AddMod61(MersennePrime61-1, 1) != 0 {
		t.Error("AddMod61 wrap failed")
	}
	if SubMod61(0, 1) != MersennePrime61-1 {
		t.Error("SubMod61 wrap failed")
	}
	if SubMod61(5, 3) != 2 {
		t.Error("SubMod61(5,3) != 2")
	}
	if MulMod61(3, 5) != 15 {
		t.Error("MulMod61(3,5) != 15")
	}
	if PowMod61(2, 10) != 1024 {
		t.Error("PowMod61(2,10) != 1024")
	}
	if PowMod61(7, 0) != 1 {
		t.Error("PowMod61(x,0) != 1")
	}
}

func TestInvMod61(t *testing.T) {
	r := xrand.New(1)
	for i := 0; i < 500; i++ {
		a := r.Uint64n(MersennePrime61-1) + 1
		inv := InvMod61(a)
		if MulMod61(a, inv) != 1 {
			t.Fatalf("InvMod61(%d) = %d is not an inverse", a, inv)
		}
	}
}

func TestInvMod61PanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InvMod61(0) did not panic")
		}
	}()
	InvMod61(0)
}

func TestAddSubRoundTrip(t *testing.T) {
	r := xrand.New(2)
	for i := 0; i < 1000; i++ {
		a := r.Uint64n(MersennePrime61)
		b := r.Uint64n(MersennePrime61)
		if SubMod61(AddMod61(a, b), b) != a {
			t.Fatalf("add/sub round trip failed for %d, %d", a, b)
		}
	}
}
