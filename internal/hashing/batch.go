package hashing

// Batch kernels. Every hash family in the package also implements a batched
// contract that maps a whole column of keys in one call:
//
//	HashBatch(keys, dst)  writes Hash(keys[i]) to dst[i]
//	SignBatch(keys, dst)  writes Sign(keys[i]) to dst[i]
//
// The point is mechanical sympathy, not new math: a sketch update is a sparse
// matrix-vector product, and the matrix rows are defined by these hash
// functions. Applying one row to a column of keys in a tight concrete loop —
// instead of one interface-dispatched Hash call per item — lets the compiler
// devirtualize the kernel, hoist the per-family constants out of the loop and
// elide bounds checks, which is what makes the sketches' UpdateBatch fast.
// The batched results are defined to be bit-identical to the scalar ones.
//
// The kernels are pure functions of (hasher, keys): they carry no internal
// scratch, so a hasher shared between cloned sketch replicas (the engine's
// sharding pattern) can be used from many goroutines at once.

// BatchHasher is a Hasher that can also map a whole column of keys per call.
// HashBatch must write exactly Hash(keys[i]) to dst[i] for every i; dst must
// be at least as long as keys.
type BatchHasher interface {
	Hasher
	// HashBatch writes the bucket of keys[i] to dst[i].
	HashBatch(keys []uint64, dst []uint64)
}

// BatchSignHasher is a SignHasher that can also sign a whole column of keys
// per call. SignBatch must write exactly Sign(keys[i]) to dst[i]; dst must be
// at least as long as keys.
type BatchSignHasher interface {
	SignHasher
	// SignBatch writes the ±1 sign of keys[i] to dst[i].
	SignBatch(keys []uint64, dst []float64)
}

// HashBatch maps every key through h into dst, using the devirtualized batch
// kernel when h provides one and a scalar fallback loop otherwise. Callers
// (the sketches) can therefore hold plain Hasher values and still get the
// fast path for every family in this package.
func HashBatch(h Hasher, keys []uint64, dst []uint64) {
	if b, ok := h.(BatchHasher); ok {
		b.HashBatch(keys, dst)
		return
	}
	for i, k := range keys {
		dst[i] = h.Hash(k)
	}
}

// SignBatch signs every key through s into dst, using the batch kernel when
// available (see HashBatch).
func SignBatch(s SignHasher, keys []uint64, dst []float64) {
	if b, ok := s.(BatchSignHasher); ok {
		b.SignBatch(keys, dst)
		return
	}
	for i, k := range keys {
		dst[i] = s.Sign(k)
	}
}

// MultiplyShift -------------------------------------------------------------

// HashBatch writes (a*keys[i] + b) >> (64-bits) to dst[i]. The constants are
// hoisted once and the loop body is two integer ops and a shift — the fastest
// kernel in the package, and the one a production Count-Min row would use.
func (h *MultiplyShift) HashBatch(keys []uint64, dst []uint64) {
	a, b, shift := h.a, h.b, 64-h.bits
	dst = dst[:len(keys)]
	for i, k := range keys {
		dst[i] = (a*k + b) >> shift
	}
}

// PolyHash ------------------------------------------------------------------

// HashBatch evaluates the polynomial at every key and range-reduces, matching
// Hash bit for bit. The pairwise (degree-2) case — what Count-Min and
// Count-Sketch rows use by default — gets a specialized two-coefficient loop.
func (p *PolyHash) HashBatch(keys []uint64, dst []uint64) {
	p.rawBatch(keys, dst)
	m := p.m
	for i := range keys {
		dst[i] %= m
	}
}

// rawBatch is the batched twin of raw: dst[i] = raw(keys[i]).
func (p *PolyHash) rawBatch(keys []uint64, dst []uint64) {
	dst = dst[:len(keys)]
	switch len(p.coeffs) {
	case 1:
		c0 := p.coeffs[0]
		for i := range keys {
			dst[i] = c0
		}
	case 2:
		a0, a1 := p.coeffs[0], p.coeffs[1]
		for i, k := range keys {
			x := mod61(k)
			dst[i] = mod61(mulmod61(a1, x) + a0)
		}
	default:
		coeffs := p.coeffs
		for i, k := range keys {
			x := mod61(k)
			acc := uint64(0)
			for j := len(coeffs) - 1; j >= 0; j-- {
				acc = mod61(mulmod61(acc, x) + coeffs[j])
			}
			dst[i] = acc
		}
	}
}

// PolySign ------------------------------------------------------------------

// SignBatch writes the ±1 sign of every key, matching Sign bit for bit. The
// sign is the low bit of the polynomial evaluation; 1-2*bit maps {0,1} to
// {+1,-1} exactly in float64.
func (s *PolySign) SignBatch(keys []uint64, dst []float64) {
	p := s.p
	dst = dst[:len(keys)]
	if len(p.coeffs) == 2 {
		a0, a1 := p.coeffs[0], p.coeffs[1]
		for i, k := range keys {
			x := mod61(k)
			r := mod61(mulmod61(a1, x) + a0)
			dst[i] = 1 - 2*float64(r&1)
		}
		return
	}
	for i, k := range keys {
		dst[i] = 1 - 2*float64(p.raw(k)&1)
	}
}

// Tabulation ----------------------------------------------------------------

// HashBatch XORs the eight per-character table lookups for every key, with
// the table pointers hoisted out of the loop, matching Hash bit for bit.
func (t *Tabulation) HashBatch(keys []uint64, dst []uint64) {
	t0, t1, t2, t3 := &t.tables[0], &t.tables[1], &t.tables[2], &t.tables[3]
	t4, t5, t6, t7 := &t.tables[4], &t.tables[5], &t.tables[6], &t.tables[7]
	m := t.m
	dst = dst[:len(keys)]
	for i, k := range keys {
		h := t0[byte(k)] ^ t1[byte(k>>8)] ^ t2[byte(k>>16)] ^ t3[byte(k>>24)] ^
			t4[byte(k>>32)] ^ t5[byte(k>>40)] ^ t6[byte(k>>48)] ^ t7[byte(k>>56)]
		dst[i] = h % m
	}
}

// TabulationSign ------------------------------------------------------------

// SignBatch writes the ±1 sign of every key, matching Sign bit for bit.
func (s *TabulationSign) SignBatch(keys []uint64, dst []float64) {
	t := s.t
	t0, t1, t2, t3 := &t.tables[0], &t.tables[1], &t.tables[2], &t.tables[3]
	t4, t5, t6, t7 := &t.tables[4], &t.tables[5], &t.tables[6], &t.tables[7]
	m := t.m
	dst = dst[:len(keys)]
	for i, k := range keys {
		h := t0[byte(k)] ^ t1[byte(k>>8)] ^ t2[byte(k>>16)] ^ t3[byte(k>>24)] ^
			t4[byte(k>>32)] ^ t5[byte(k>>40)] ^ t6[byte(k>>48)] ^ t7[byte(k>>56)]
		dst[i] = 1 - 2*float64((h%m)&1)
	}
}
