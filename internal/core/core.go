// Package core encodes the unifying observation of the survey: hashing a
// multiset into an array of counters is a linear map c = A·x, where x is the
// frequency (characteristic) vector of the multiset and A is a sparse matrix
// with one non-zero per column per hash repetition.
//
// The package defines
//
//   - LinearSketch, the interface every hashing-based summary in the
//     repository satisfies (update by (index, delta), read the counter
//     vector, apply to an explicit vector);
//   - HashMatrix, an explicit m×n sparse measurement matrix built from a
//     bucket hash and an optional sign hash, which is simultaneously a
//     mat.Operator (for the compressed-sensing and dimensionality-reduction
//     code) and a streaming sketch;
//   - adapters that materialize the Count-Min and Count-Sketch structures of
//     package sketch as explicit matrices, so the equivalence
//     "sketch(stream) == A · frequencyVector(stream)" is not just a slogan
//     but a testable identity.
package core

import (
	"fmt"

	"repro/internal/hashing"
	"repro/internal/mat"
	"repro/internal/sketch"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// LinearSketch is a summary c = A·x maintained under streaming updates to x.
// Implementations must be linear: the final state depends only on the net
// frequency vector, not on how updates were ordered or grouped.
type LinearSketch interface {
	// UpdateEntry adds delta to coordinate index of the underlying vector x.
	UpdateEntry(index uint64, delta float64)
	// Measurements returns (a copy of) the current measurement vector c.
	Measurements() []float64
	// MeasurementCount returns the number of measurements m = len(c).
	MeasurementCount() int
	// InputDim returns the ambient dimension n of the vectors being sketched,
	// or 0 if the sketch does not fix one (pure streaming summaries).
	InputDim() int
}

// HashMatrix is an explicit m×n hashing matrix: column j has exactly
// rows-per-column non-zeros, one per "row block", each ±1 (or +1 when
// unsigned). It implements both mat.Operator and LinearSketch, and it is the
// object that makes the survey's equivalence concrete: a Count-Min sketch is
// Apply with unsigned entries, a Count-Sketch is Apply with signed entries,
// and compressed sensing recovers x back from the product.
type HashMatrix struct {
	n       int
	rowsPer int // number of hash repetitions (blocks)
	width   int // buckets per block; m = rowsPer*width
	signed  bool
	hashes  []hashing.Hasher
	signs   []hashing.SignHasher

	// measurements holds the streaming state when used as a LinearSketch.
	measurements []float64
}

// HashMatrixOption configures a HashMatrix.
type HashMatrixOption func(*hashMatrixConfig)

type hashMatrixConfig struct {
	family hashing.Family
	signed bool
}

// WithSigns makes the matrix entries ±1 (Count-Sketch style) instead of +1
// (Count-Min style).
func WithSigns() HashMatrixOption {
	return func(c *hashMatrixConfig) { c.signed = true }
}

// WithHashFamily selects the hash family for buckets and signs.
func WithHashFamily(f hashing.Family) HashMatrixOption {
	return func(c *hashMatrixConfig) { c.family = f }
}

// NewHashMatrix creates an (rowsPer*width) × n hashing matrix.
func NewHashMatrix(r *xrand.Rand, n, width, rowsPer int, opts ...HashMatrixOption) *HashMatrix {
	if n < 1 || width < 1 || rowsPer < 1 {
		panic(fmt.Sprintf("core: NewHashMatrix requires n, width, rowsPer >= 1 (got %d, %d, %d)", n, width, rowsPer))
	}
	cfg := hashMatrixConfig{family: hashing.FamilyPoly2}
	for _, o := range opts {
		o(&cfg)
	}
	h := &HashMatrix{
		n:            n,
		rowsPer:      rowsPer,
		width:        width,
		signed:       cfg.signed,
		hashes:       make([]hashing.Hasher, rowsPer),
		signs:        make([]hashing.SignHasher, rowsPer),
		measurements: make([]float64, rowsPer*width),
	}
	for i := 0; i < rowsPer; i++ {
		h.hashes[i] = hashing.NewHasher(cfg.family, r, uint64(width))
		h.signs[i] = hashing.NewSigner(cfg.family, r)
	}
	return h
}

// Dims returns (m, n).
func (h *HashMatrix) Dims() (int, int) { return h.rowsPer * h.width, h.n }

// Signed reports whether the matrix has ±1 entries.
func (h *HashMatrix) Signed() bool { return h.signed }

// RowsPerColumn returns the number of non-zeros per column.
func (h *HashMatrix) RowsPerColumn() int { return h.rowsPer }

// Width returns the number of buckets per hash repetition.
func (h *HashMatrix) Width() int { return h.width }

// Entry returns the (row, value) of column j's single non-zero in hash
// repetition block. It exposes the hashing structure to decoders (package cs)
// that need to read individual buckets of an arbitrary measurement vector.
func (h *HashMatrix) Entry(block int, j uint64) (int, float64) {
	if block < 0 || block >= h.rowsPer {
		panic(fmt.Sprintf("core: Entry block %d out of range %d", block, h.rowsPer))
	}
	if j >= uint64(h.n) {
		panic(fmt.Sprintf("core: Entry column %d out of range %d", j, h.n))
	}
	return h.entry(block, j)
}

// entry returns (row, value) of column j's non-zero in block b.
func (h *HashMatrix) entry(block int, j uint64) (int, float64) {
	row := block*h.width + int(h.hashes[block].Hash(j)%uint64(h.width))
	val := 1.0
	if h.signed {
		val = h.signs[block].Sign(j)
	}
	return row, val
}

// MulVec returns A*x.
func (h *HashMatrix) MulVec(x []float64) []float64 {
	if len(x) != h.n {
		panic(fmt.Sprintf("core: MulVec dimension mismatch: n=%d, len(x)=%d", h.n, len(x)))
	}
	out := make([]float64, h.rowsPer*h.width)
	for j, xj := range x {
		if xj == 0 {
			continue
		}
		for b := 0; b < h.rowsPer; b++ {
			row, val := h.entry(b, uint64(j))
			out[row] += val * xj
		}
	}
	return out
}

// TMulVec returns A^T*y.
func (h *HashMatrix) TMulVec(y []float64) []float64 {
	m, _ := h.Dims()
	if len(y) != m {
		panic(fmt.Sprintf("core: TMulVec dimension mismatch: m=%d, len(y)=%d", m, len(y)))
	}
	out := make([]float64, h.n)
	for j := 0; j < h.n; j++ {
		var s float64
		for b := 0; b < h.rowsPer; b++ {
			row, val := h.entry(b, uint64(j))
			s += val * y[row]
		}
		out[j] = s
	}
	return out
}

// UpdateEntry adds delta to coordinate index of the sketched vector.
func (h *HashMatrix) UpdateEntry(index uint64, delta float64) {
	if index >= uint64(h.n) {
		panic(fmt.Sprintf("core: UpdateEntry index %d out of range %d", index, h.n))
	}
	for b := 0; b < h.rowsPer; b++ {
		row, val := h.entry(b, index)
		h.measurements[row] += val * delta
	}
}

// Measurements returns a copy of the streaming measurement vector.
func (h *HashMatrix) Measurements() []float64 { return vec.Clone(h.measurements) }

// MeasurementCount returns m.
func (h *HashMatrix) MeasurementCount() int { return h.rowsPer * h.width }

// InputDim returns n.
func (h *HashMatrix) InputDim() int { return h.n }

// Reset clears the streaming measurement state.
func (h *HashMatrix) Reset() {
	for i := range h.measurements {
		h.measurements[i] = 0
	}
}

// ToCSR materializes the matrix explicitly (tests, small problems, and the
// experiments that compare explicit sparse matrices to dense ones).
func (h *HashMatrix) ToCSR() *mat.CSR {
	m, n := h.Dims()
	coo := mat.NewCOO(m, n)
	for j := 0; j < n; j++ {
		for b := 0; b < h.rowsPer; b++ {
			row, val := h.entry(b, uint64(j))
			coo.Add(row, j, val)
		}
	}
	return coo.ToCSR()
}

// Estimate returns the hashing estimate of x[index] from the streaming
// measurements: min over blocks for unsigned matrices (Count-Min estimator),
// median of sign-corrected buckets for signed matrices (Count-Sketch
// estimator).
func (h *HashMatrix) Estimate(index uint64) float64 {
	if index >= uint64(h.n) {
		panic(fmt.Sprintf("core: Estimate index %d out of range %d", index, h.n))
	}
	ests := make([]float64, h.rowsPer)
	for b := 0; b < h.rowsPer; b++ {
		row, val := h.entry(b, index)
		ests[b] = val * h.measurements[row]
	}
	if h.signed {
		return vec.Median(ests)
	}
	min := ests[0]
	for _, v := range ests[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Adapters --------------------------------------------------------------------

// CountMinSketchAdapter presents a sketch.CountMin over a fixed universe
// [0, n) as a LinearSketch whose matrix can be materialized explicitly.
type CountMinSketchAdapter struct {
	CM *sketch.CountMin
	N  int
}

// NewCountMinAdapter wraps an existing Count-Min sketch.
func NewCountMinAdapter(cm *sketch.CountMin, n int) *CountMinSketchAdapter {
	if n < 1 {
		panic("core: NewCountMinAdapter requires n >= 1")
	}
	return &CountMinSketchAdapter{CM: cm, N: n}
}

// UpdateEntry adds delta to coordinate index.
func (a *CountMinSketchAdapter) UpdateEntry(index uint64, delta float64) {
	a.CM.Update(index, delta)
}

// Measurements flattens the sketch's counter matrix row-major into a vector.
func (a *CountMinSketchAdapter) Measurements() []float64 {
	counters := a.CM.Counters()
	out := make([]float64, 0, a.CM.Size())
	for _, row := range counters {
		out = append(out, row...)
	}
	return out
}

// MeasurementCount returns the number of counters.
func (a *CountMinSketchAdapter) MeasurementCount() int { return a.CM.Size() }

// InputDim returns the declared universe size.
func (a *CountMinSketchAdapter) InputDim() int { return a.N }

// Matrix materializes the sketch's measurement matrix A so that
// Measurements() == A * x for the frequency vector x over [0, N).
func (a *CountMinSketchAdapter) Matrix() *mat.CSR {
	coo := mat.NewCOO(a.CM.Size(), a.N)
	for j := 0; j < a.N; j++ {
		for row := 0; row < a.CM.Depth(); row++ {
			bucket := a.CM.RowBucket(row, uint64(j))
			coo.Add(row*a.CM.Width()+bucket, j, 1)
		}
	}
	return coo.ToCSR()
}

// CountSketchAdapter presents a sketch.CountSketch over a fixed universe
// [0, n) as a LinearSketch with an explicit ±1 matrix.
type CountSketchAdapter struct {
	CS *sketch.CountSketch
	N  int
}

// NewCountSketchAdapter wraps an existing Count-Sketch.
func NewCountSketchAdapter(cs *sketch.CountSketch, n int) *CountSketchAdapter {
	if n < 1 {
		panic("core: NewCountSketchAdapter requires n >= 1")
	}
	return &CountSketchAdapter{CS: cs, N: n}
}

// UpdateEntry adds delta to coordinate index.
func (a *CountSketchAdapter) UpdateEntry(index uint64, delta float64) {
	a.CS.Update(index, delta)
}

// Measurements flattens the counter matrix row-major.
func (a *CountSketchAdapter) Measurements() []float64 {
	counters := a.CS.Counters()
	out := make([]float64, 0, a.CS.Size())
	for _, row := range counters {
		out = append(out, row...)
	}
	return out
}

// MeasurementCount returns the number of counters.
func (a *CountSketchAdapter) MeasurementCount() int { return a.CS.Size() }

// InputDim returns the declared universe size.
func (a *CountSketchAdapter) InputDim() int { return a.N }

// Matrix materializes the ±1 measurement matrix.
func (a *CountSketchAdapter) Matrix() *mat.CSR {
	coo := mat.NewCOO(a.CS.Size(), a.N)
	for j := 0; j < a.N; j++ {
		for row := 0; row < a.CS.Depth(); row++ {
			bucket := a.CS.RowBucket(row, uint64(j))
			sign := a.CS.RowSign(row, uint64(j))
			coo.Add(row*a.CS.Width()+bucket, j, sign)
		}
	}
	return coo.ToCSR()
}

// SketchVector runs a whole frequency vector through any LinearSketch (a
// convenience for tests and experiments that start from an explicit x rather
// than a stream).
func SketchVector(s LinearSketch, x []float64) {
	for i, v := range x {
		if v != 0 {
			s.UpdateEntry(uint64(i), v)
		}
	}
}
