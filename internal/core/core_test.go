package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// interface conformance checks
var (
	_ LinearSketch = (*HashMatrix)(nil)
	_ LinearSketch = (*CountMinSketchAdapter)(nil)
	_ LinearSketch = (*CountSketchAdapter)(nil)
	_ mat.Operator = (*HashMatrix)(nil)
)

func randVec(r *xrand.Rand, n int, sparsity int) []float64 {
	x := make([]float64, n)
	for _, i := range r.Sample(n, sparsity) {
		x[i] = r.NormFloat64() * 10
	}
	return x
}

func TestHashMatrixStreamEqualsMatrixProduct(t *testing.T) {
	// The survey's central identity: sketching a stream item-by-item gives
	// exactly A*x for the stream's frequency vector.
	for _, signed := range []bool{false, true} {
		r := xrand.New(1)
		opts := []HashMatrixOption{}
		if signed {
			opts = append(opts, WithSigns())
		}
		h := NewHashMatrix(r, 500, 64, 4, opts...)
		s := stream.Zipf(xrand.New(2), 500, 5000, 1.1)
		for _, u := range s.Updates {
			h.UpdateEntry(u.Item, float64(u.Delta))
		}
		x := s.FrequencyVector()
		want := h.MulVec(x)
		got := h.Measurements()
		if vec.Norm2(vec.Sub(got, want)) > 1e-9 {
			t.Fatalf("signed=%v: streaming measurements differ from A*x", signed)
		}
	}
}

func TestHashMatrixMatchesExplicitCSR(t *testing.T) {
	r := xrand.New(3)
	h := NewHashMatrix(r, 200, 32, 3, WithSigns())
	csr := h.ToCSR()
	x := randVec(xrand.New(4), 200, 20)
	a := h.MulVec(x)
	b := csr.MulVec(x)
	if vec.Norm2(vec.Sub(a, b)) > 1e-9 {
		t.Fatal("implicit and explicit MulVec differ")
	}
	y := make([]float64, h.MeasurementCount())
	for i := range y {
		y[i] = xrand.New(5).NormFloat64()
	}
	at := h.TMulVec(y)
	bt := csr.TMulVec(y)
	if vec.Norm2(vec.Sub(at, bt)) > 1e-9 {
		t.Fatal("implicit and explicit TMulVec differ")
	}
}

func TestHashMatrixSparsity(t *testing.T) {
	r := xrand.New(5)
	h := NewHashMatrix(r, 100, 16, 3)
	csr := h.ToCSR()
	if csr.NNZ() != 100*3 {
		t.Fatalf("NNZ = %d, want %d (exactly rowsPer non-zeros per column)", csr.NNZ(), 300)
	}
	m, n := h.Dims()
	if m != 48 || n != 100 {
		t.Fatalf("Dims = %d,%d", m, n)
	}
	if h.RowsPerColumn() != 3 || h.Width() != 16 {
		t.Fatal("accessor mismatch")
	}
}

func TestHashMatrixEstimators(t *testing.T) {
	// Unsigned estimate (min) never underestimates a non-negative vector;
	// signed estimate (median) is within a small error of the truth for a
	// heavy coordinate.
	r := xrand.New(7)
	x := make([]float64, 2000)
	x[42] = 1000
	for i := 0; i < 300; i++ {
		x[100+i] = 1
	}

	unsigned := NewHashMatrix(r, 2000, 256, 4)
	SketchVector(unsigned, x)
	if est := unsigned.Estimate(42); est < 1000 {
		t.Errorf("unsigned estimate %v underestimates 1000", est)
	}

	signed := NewHashMatrix(r, 2000, 256, 5, WithSigns())
	SketchVector(signed, x)
	if est := signed.Estimate(42); math.Abs(est-1000) > 50 {
		t.Errorf("signed estimate %v too far from 1000", est)
	}
}

func TestHashMatrixReset(t *testing.T) {
	r := xrand.New(9)
	h := NewHashMatrix(r, 10, 8, 2)
	h.UpdateEntry(3, 5)
	h.Reset()
	if vec.Norm2(h.Measurements()) != 0 {
		t.Fatal("Reset did not clear measurements")
	}
}

func TestHashMatrixPanics(t *testing.T) {
	r := xrand.New(1)
	h := NewHashMatrix(r, 10, 8, 2)
	cases := []func(){
		func() { NewHashMatrix(r, 0, 8, 2) },
		func() { NewHashMatrix(r, 10, 0, 2) },
		func() { NewHashMatrix(r, 10, 8, 0) },
		func() { h.MulVec(make([]float64, 3)) },
		func() { h.TMulVec(make([]float64, 3)) },
		func() { h.UpdateEntry(99, 1) },
		func() { h.Estimate(99) },
		func() { NewCountMinAdapter(nil, 0) },
		func() { NewCountSketchAdapter(nil, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestCountMinAdapterIdentity(t *testing.T) {
	// sketch(stream) == A * frequencyVector(stream) for the real CountMin.
	r := xrand.New(11)
	cm := sketch.NewCountMin(r, 64, 4)
	adapter := NewCountMinAdapter(cm, 300)
	s := stream.Zipf(xrand.New(12), 300, 4000, 1.1)
	for _, u := range s.Updates {
		adapter.UpdateEntry(u.Item, float64(u.Delta))
	}
	want := adapter.Matrix().MulVec(s.FrequencyVector())
	got := adapter.Measurements()
	if len(got) != adapter.MeasurementCount() || adapter.MeasurementCount() != 64*4 {
		t.Fatalf("measurement count mismatch")
	}
	if adapter.InputDim() != 300 {
		t.Fatalf("InputDim = %d", adapter.InputDim())
	}
	if vec.Norm2(vec.Sub(got, want)) > 1e-9 {
		t.Fatal("CountMin adapter: sketch state != A*x")
	}
}

func TestCountSketchAdapterIdentity(t *testing.T) {
	r := xrand.New(13)
	cs := sketch.NewCountSketch(r, 64, 5)
	adapter := NewCountSketchAdapter(cs, 300)
	s := stream.Zipf(xrand.New(14), 300, 4000, 1.1)
	for _, u := range s.Updates {
		adapter.UpdateEntry(u.Item, float64(u.Delta))
	}
	want := adapter.Matrix().MulVec(s.FrequencyVector())
	got := adapter.Measurements()
	if vec.Norm2(vec.Sub(got, want)) > 1e-9 {
		t.Fatal("CountSketch adapter: sketch state != A*x")
	}
	if adapter.MeasurementCount() != 64*5 || adapter.InputDim() != 300 {
		t.Fatal("dimension accessors wrong")
	}
}

// Property: linearity of the streaming sketch — sketching x and y separately
// and adding measurement vectors equals sketching x+y.
func TestLinearSketchAdditivityProperty(t *testing.T) {
	r := xrand.New(17)
	h := NewHashMatrix(r, 100, 32, 3, WithSigns())
	f := func(seed uint64) bool {
		rr := xrand.New(seed)
		x := randVec(rr, 100, 10)
		y := randVec(rr, 100, 10)

		h.Reset()
		SketchVector(h, x)
		mx := h.Measurements()
		h.Reset()
		SketchVector(h, y)
		my := h.Measurements()
		h.Reset()
		SketchVector(h, vec.Add(x, y))
		mxy := h.Measurements()

		return vec.Norm2(vec.Sub(mxy, vec.Add(mx, my))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: update order does not matter (the defining property of a linear
// sketch over a turnstile stream).
func TestUpdateOrderInvarianceProperty(t *testing.T) {
	r := xrand.New(19)
	h := NewHashMatrix(r, 50, 16, 3)
	f := func(seed uint64) bool {
		rr := xrand.New(seed)
		n := 30
		updates := make([]stream.Update, n)
		for i := range updates {
			updates[i] = stream.Update{Item: rr.Uint64n(50), Delta: int64(rr.Intn(21) - 10)}
		}
		h.Reset()
		for _, u := range updates {
			h.UpdateEntry(u.Item, float64(u.Delta))
		}
		a := h.Measurements()
		h.Reset()
		perm := rr.Perm(n)
		for _, p := range perm {
			h.UpdateEntry(updates[p].Item, float64(updates[p].Delta))
		}
		b := h.Measurements()
		return vec.Norm2(vec.Sub(a, b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHashMatrixUpdateEntry(b *testing.B) {
	h := NewHashMatrix(xrand.New(1), 1<<20, 4096, 4, WithSigns())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.UpdateEntry(uint64(i)&((1<<20)-1), 1)
	}
}

func BenchmarkHashMatrixMulVec(b *testing.B) {
	r := xrand.New(1)
	h := NewHashMatrix(r, 1<<14, 1024, 4, WithSigns())
	x := randVec(r, 1<<14, 1<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.MulVec(x)
	}
}
