package mat

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestDenseAtSet(t *testing.T) {
	a := NewDense(2, 3)
	a.Set(1, 2, 5)
	if a.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v, want 5", a.At(1, 2))
	}
	if r, c := a.Dims(); r != 2 || c != 3 {
		t.Fatalf("Dims = %d,%d", r, c)
	}
}

func TestDenseMulVec(t *testing.T) {
	a := NewDense(2, 3)
	// A = [1 2 3; 4 5 6]
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	got := a.MulVec([]float64{1, 1, 1})
	if !reflect.DeepEqual(got, []float64{6, 15}) {
		t.Fatalf("MulVec = %v", got)
	}
	gotT := a.TMulVec([]float64{1, 1})
	if !reflect.DeepEqual(gotT, []float64{5, 7, 9}) {
		t.Fatalf("TMulVec = %v", gotT)
	}
}

func TestDenseMulVecPanics(t *testing.T) {
	a := NewDense(2, 3)
	for _, f := range []func(){
		func() { a.MulVec([]float64{1, 2}) },
		func() { a.TMulVec([]float64{1, 2, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("dimension mismatch did not panic")
				}
			}()
			f()
		}()
	}
}

func TestDenseColTransposeClone(t *testing.T) {
	a := NewDense(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	if got := a.Col(1); !reflect.DeepEqual(got, []float64{2, 4}) {
		t.Errorf("Col(1) = %v", got)
	}
	at := a.Transpose()
	if at.At(0, 1) != 3 || at.At(1, 0) != 2 {
		t.Errorf("Transpose wrong: %v", at.Data)
	}
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Error("Clone did not deep copy")
	}
}

func TestDenseMulMat(t *testing.T) {
	a := NewDense(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewDense(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	got := a.MulMat(b)
	want := []float64{58, 64, 139, 154}
	if !reflect.DeepEqual(got.Data, want) {
		t.Fatalf("MulMat = %v, want %v", got.Data, want)
	}
}

func TestMulMatPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MulMat mismatch did not panic")
		}
	}()
	NewDense(2, 3).MulMat(NewDense(2, 2))
}

func TestCOOToCSRAndMulVec(t *testing.T) {
	coo := NewCOO(3, 4)
	coo.Add(0, 1, 2)
	coo.Add(2, 3, -1)
	coo.Add(0, 1, 3) // duplicate: should sum during MulVec
	coo.Add(1, 0, 5)
	csr := coo.ToCSR()
	if csr.NNZ() != 4 {
		t.Fatalf("NNZ = %d, want 4", csr.NNZ())
	}
	x := []float64{1, 1, 1, 1}
	got := csr.MulVec(x)
	want := []float64{5, 5, -1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("CSR MulVec = %v, want %v", got, want)
	}
	gotT := csr.TMulVec([]float64{1, 1, 1})
	wantT := []float64{5, 5, 0, -1}
	if !reflect.DeepEqual(gotT, wantT) {
		t.Fatalf("CSR TMulVec = %v, want %v", gotT, wantT)
	}
}

func TestCOOAddPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("COO.Add out of range did not panic")
		}
	}()
	NewCOO(2, 2).Add(2, 0, 1)
}

func TestCSRDenseAgreesWithCSR(t *testing.T) {
	r := xrand.New(3)
	csr := NewSparseSign(r, 8, 20, 3)
	dense := csr.Dense()
	x := make([]float64, 20)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	got := csr.MulVec(x)
	want := dense.MulVec(x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CSR and Dense disagree at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestCSRMulVecPanics(t *testing.T) {
	csr := NewSparseBinary(xrand.New(1), 4, 6, 2)
	for _, f := range []func(){
		func() { csr.MulVec(make([]float64, 5)) },
		func() { csr.TMulVec(make([]float64, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("CSR dimension mismatch did not panic")
				}
			}()
			f()
		}()
	}
}

func TestNewGaussianShapeAndScale(t *testing.T) {
	r := xrand.New(5)
	m, n := 64, 200
	a := NewGaussian(r, m, n)
	if rr, cc := a.Dims(); rr != m || cc != n {
		t.Fatalf("Dims = %d,%d", rr, cc)
	}
	// Column norms should concentrate around 1 (each column is N(0,1/m)^m).
	var sum float64
	for j := 0; j < n; j++ {
		sum += vec.Norm2(a.Col(j))
	}
	if avg := sum / float64(n); math.Abs(avg-1) > 0.1 {
		t.Errorf("average column norm %.3f, want about 1", avg)
	}
}

func TestNewBernoulliEntries(t *testing.T) {
	r := xrand.New(7)
	m := 16
	a := NewBernoulli(r, m, 10)
	want := 1 / math.Sqrt(float64(m))
	for _, v := range a.Data {
		if math.Abs(math.Abs(v)-want) > 1e-12 {
			t.Fatalf("Bernoulli entry %v, want ±%v", v, want)
		}
	}
}

func TestNewSparseBinaryColumnDegree(t *testing.T) {
	r := xrand.New(9)
	m, n, d := 32, 100, 4
	a := NewSparseBinary(r, m, n, d)
	if a.NNZ() != n*d {
		t.Fatalf("NNZ = %d, want %d", a.NNZ(), n*d)
	}
	// Each column must have exactly d entries, all equal to 1, in distinct rows.
	colCount := make([]int, n)
	dense := a.Dense()
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			v := dense.At(i, j)
			if v != 0 && v != 1 {
				t.Fatalf("sparse binary entry %v not in {0,1}", v)
			}
			if v == 1 {
				colCount[j]++
			}
		}
	}
	for j, c := range colCount {
		if c != d {
			t.Fatalf("column %d has %d ones, want %d", j, c, d)
		}
	}
}

func TestNewSparseSignColumnNorm(t *testing.T) {
	r := xrand.New(11)
	m, n, d := 32, 50, 4
	a := NewSparseSign(r, m, n, d)
	dense := a.Dense()
	for j := 0; j < n; j++ {
		norm := vec.Norm2(dense.Col(j))
		if math.Abs(norm-1) > 1e-9 {
			t.Fatalf("column %d norm %v, want 1", j, norm)
		}
	}
}

func TestSparseConstructorsPanic(t *testing.T) {
	r := xrand.New(1)
	for _, f := range []func(){
		func() { NewSparseBinary(r, 4, 10, 0) },
		func() { NewSparseBinary(r, 4, 10, 5) },
		func() { NewSparseSign(r, 4, 10, 0) },
		func() { NewSparseSign(r, 4, 10, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad d did not panic")
				}
			}()
			f()
		}()
	}
}

// Property: for any operator A in the package, <Ax, y> == <x, A^T y>
// (the defining adjoint identity), up to floating point error.
func TestAdjointIdentityProperty(t *testing.T) {
	r := xrand.New(13)
	ops := []Operator{
		NewGaussian(r, 10, 25),
		NewBernoulli(r, 10, 25),
		NewSparseBinary(r, 10, 25, 3),
		NewSparseSign(r, 10, 25, 3),
	}
	f := func(seed uint64) bool {
		rr := xrand.New(seed)
		for _, op := range ops {
			m, n := op.Dims()
			x := make([]float64, n)
			y := make([]float64, m)
			for i := range x {
				x[i] = rr.NormFloat64()
			}
			for i := range y {
				y[i] = rr.NormFloat64()
			}
			lhs := vec.Dot(op.MulVec(x), y)
			rhs := vec.Dot(x, op.TMulVec(y))
			if math.Abs(lhs-rhs) > 1e-8*(1+math.Abs(lhs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: operators are linear: A(x+y) = Ax + Ay.
func TestOperatorLinearityProperty(t *testing.T) {
	r := xrand.New(17)
	ops := []Operator{
		NewGaussian(r, 12, 30),
		NewSparseSign(r, 12, 30, 2),
	}
	f := func(seed uint64) bool {
		rr := xrand.New(seed)
		for _, op := range ops {
			_, n := op.Dims()
			x := make([]float64, n)
			y := make([]float64, n)
			for i := range x {
				x[i] = rr.NormFloat64()
				y[i] = rr.NormFloat64()
			}
			lhs := op.MulVec(vec.Add(x, y))
			rhs := vec.Add(op.MulVec(x), op.MulVec(y))
			if vec.Norm2(vec.Sub(lhs, rhs)) > 1e-9*(1+vec.Norm2(lhs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDenseMulVec(b *testing.B) {
	r := xrand.New(1)
	a := NewGaussian(r, 256, 4096)
	x := make([]float64, 4096)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x)
	}
}

func BenchmarkSparseSignMulVec(b *testing.B) {
	r := xrand.New(1)
	a := NewSparseSign(r, 256, 4096, 4)
	x := make([]float64, 4096)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x)
	}
}
