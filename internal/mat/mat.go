// Package mat provides the dense and sparse matrix types used as measurement
// operators throughout the repository.
//
// The survey contrasts two kinds of measurement matrices:
//
//   - dense random matrices (i.i.d. Gaussian or Bernoulli entries), which
//     achieve the optimal O(k log(n/k)) measurement bound but cost O(nm) per
//     matrix-vector product, and
//   - sparse hashing-based matrices (a constant number of non-zeros per
//     column), which support O(nnz) products and streaming updates.
//
// Both are provided here behind a common Operator interface so that the
// compressed-sensing and dimensionality-reduction packages can be written
// against either.
package mat

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Operator is a linear map R^n -> R^m that supports forward and adjoint
// (transpose) application. All measurement matrices implement it.
type Operator interface {
	// Dims returns (m, n): the output and input dimensions.
	Dims() (rows, cols int)
	// MulVec returns A*x (length m). x must have length n.
	MulVec(x []float64) []float64
	// TMulVec returns A^T*y (length n). y must have length m.
	TMulVec(y []float64) []float64
}

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] = A[i][j]
}

// NewDense allocates a zero Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns A[i][j].
func (a *Dense) At(i, j int) float64 { return a.Data[i*a.Cols+j] }

// Set assigns A[i][j] = v.
func (a *Dense) Set(i, j int, v float64) { a.Data[i*a.Cols+j] = v }

// Dims returns the matrix dimensions.
func (a *Dense) Dims() (int, int) { return a.Rows, a.Cols }

// MulVec returns A*x.
func (a *Dense) MulVec(x []float64) []float64 {
	if len(x) != a.Cols {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch: %d cols vs %d vector", a.Cols, len(x)))
	}
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// TMulVec returns A^T*y.
func (a *Dense) TMulVec(y []float64) []float64 {
	if len(y) != a.Rows {
		panic(fmt.Sprintf("mat: TMulVec dimension mismatch: %d rows vs %d vector", a.Rows, len(y)))
	}
	out := make([]float64, a.Cols)
	for i := 0; i < a.Rows; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		row := a.Data[i*a.Cols : (i+1)*a.Cols]
		for j, v := range row {
			out[j] += v * yi
		}
	}
	return out
}

// Col returns a copy of column j.
func (a *Dense) Col(j int) []float64 {
	out := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		out[i] = a.At(i, j)
	}
	return out
}

// MulMat returns A*B as a new dense matrix.
func (a *Dense) MulMat(b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: MulMat dimension mismatch: %dx%d times %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewDense(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += aik * b.At(k, j)
			}
		}
	}
	return out
}

// Transpose returns A^T as a new dense matrix.
func (a *Dense) Transpose() *Dense {
	out := NewDense(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			out.Set(j, i, a.At(i, j))
		}
	}
	return out
}

// Clone returns a deep copy of the matrix.
func (a *Dense) Clone() *Dense {
	out := NewDense(a.Rows, a.Cols)
	copy(out.Data, a.Data)
	return out
}

// CSR is a compressed sparse row matrix.
type CSR struct {
	RowsN, ColsN int
	RowPtr       []int     // len RowsN+1
	ColIdx       []int     // len nnz
	Values       []float64 // len nnz
}

// Dims returns the matrix dimensions.
func (a *CSR) Dims() (int, int) { return a.RowsN, a.ColsN }

// NNZ returns the number of stored non-zeros.
func (a *CSR) NNZ() int { return len(a.Values) }

// MulVec returns A*x.
func (a *CSR) MulVec(x []float64) []float64 {
	if len(x) != a.ColsN {
		panic(fmt.Sprintf("mat: CSR MulVec dimension mismatch: %d cols vs %d vector", a.ColsN, len(x)))
	}
	out := make([]float64, a.RowsN)
	for i := 0; i < a.RowsN; i++ {
		var s float64
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			s += a.Values[p] * x[a.ColIdx[p]]
		}
		out[i] = s
	}
	return out
}

// TMulVec returns A^T*y.
func (a *CSR) TMulVec(y []float64) []float64 {
	if len(y) != a.RowsN {
		panic(fmt.Sprintf("mat: CSR TMulVec dimension mismatch: %d rows vs %d vector", a.RowsN, len(y)))
	}
	out := make([]float64, a.ColsN)
	for i := 0; i < a.RowsN; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			out[a.ColIdx[p]] += a.Values[p] * yi
		}
	}
	return out
}

// Dense expands the CSR matrix to a dense matrix (for tests and small cases).
func (a *CSR) Dense() *Dense {
	out := NewDense(a.RowsN, a.ColsN)
	for i := 0; i < a.RowsN; i++ {
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			out.Set(i, a.ColIdx[p], out.At(i, a.ColIdx[p])+a.Values[p])
		}
	}
	return out
}

// COO is a coordinate-format triplet list used to build CSR matrices.
type COO struct {
	Rows, Cols int
	I, J       []int
	V          []float64
}

// NewCOO returns an empty triplet accumulator with the given dimensions.
func NewCOO(rows, cols int) *COO {
	return &COO{Rows: rows, Cols: cols}
}

// Add appends the triplet (i, j, v).
func (c *COO) Add(i, j int, v float64) {
	if i < 0 || i >= c.Rows || j < 0 || j >= c.Cols {
		panic(fmt.Sprintf("mat: COO index (%d,%d) out of range %dx%d", i, j, c.Rows, c.Cols))
	}
	c.I = append(c.I, i)
	c.J = append(c.J, j)
	c.V = append(c.V, v)
}

// ToCSR converts the triplets to CSR form. Duplicate entries are kept as
// separate stored values (they sum implicitly during MulVec).
func (c *COO) ToCSR() *CSR {
	nnz := len(c.V)
	rowCount := make([]int, c.Rows+1)
	for _, i := range c.I {
		rowCount[i+1]++
	}
	for i := 0; i < c.Rows; i++ {
		rowCount[i+1] += rowCount[i]
	}
	colIdx := make([]int, nnz)
	values := make([]float64, nnz)
	next := make([]int, c.Rows)
	copy(next, rowCount[:c.Rows])
	for t := 0; t < nnz; t++ {
		i := c.I[t]
		p := next[i]
		colIdx[p] = c.J[t]
		values[p] = c.V[t]
		next[i]++
	}
	return &CSR{RowsN: c.Rows, ColsN: c.Cols, RowPtr: rowCount, ColIdx: colIdx, Values: values}
}

// Random measurement matrices ------------------------------------------------

// NewGaussian returns an m x n matrix with i.i.d. N(0, 1/m) entries: the
// classic dense compressed-sensing / Johnson-Lindenstrauss matrix.
func NewGaussian(r *xrand.Rand, m, n int) *Dense {
	a := NewDense(m, n)
	scale := 1.0 / math.Sqrt(float64(m))
	for i := range a.Data {
		a.Data[i] = r.NormFloat64() * scale
	}
	return a
}

// NewBernoulli returns an m x n matrix with i.i.d. ±1/sqrt(m) entries.
func NewBernoulli(r *xrand.Rand, m, n int) *Dense {
	a := NewDense(m, n)
	scale := 1.0 / math.Sqrt(float64(m))
	for i := range a.Data {
		a.Data[i] = r.Rademacher() * scale
	}
	return a
}

// NewSparseBinary returns an m x n sparse matrix with exactly d ones per
// column, placed in d distinct rows chosen uniformly at random. This is the
// adjacency matrix of a random bipartite d-regular graph — the expander-style
// matrix of [BGI+08, BIR08] and the multi-row Count-Min matrix.
func NewSparseBinary(r *xrand.Rand, m, n, d int) *CSR {
	if d < 1 || d > m {
		panic(fmt.Sprintf("mat: NewSparseBinary requires 1 <= d <= m, got d=%d m=%d", d, m))
	}
	coo := NewCOO(m, n)
	for j := 0; j < n; j++ {
		for _, i := range r.Sample(m, d) {
			coo.Add(i, j, 1)
		}
	}
	return coo.ToCSR()
}

// NewSparseSign returns an m x n sparse matrix with exactly d non-zeros per
// column, each ±1/sqrt(d), in distinct random rows. With d=1 this is exactly
// the Count-Sketch / sparse JL matrix of [DKS10, KN12]; larger d is the
// OSNAP-style embedding.
func NewSparseSign(r *xrand.Rand, m, n, d int) *CSR {
	if d < 1 || d > m {
		panic(fmt.Sprintf("mat: NewSparseSign requires 1 <= d <= m, got d=%d m=%d", d, m))
	}
	coo := NewCOO(m, n)
	scale := 1.0 / math.Sqrt(float64(d))
	for j := 0; j < n; j++ {
		for _, i := range r.Sample(m, d) {
			coo.Add(i, j, r.Rademacher()*scale)
		}
	}
	return coo.ToCSR()
}
