// Package vec provides the dense, sparse and complex vector operations used
// by the sketching, compressed-sensing, dimensionality-reduction and sparse
// Fourier transform packages.
//
// Everything is plain float64 / complex128 slices; the package adds the
// handful of numerical routines (norms, top-k selection, sparse
// representations, error metrics) the rest of the repository needs, with no
// external dependencies.
package vec

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"
)

// Entry is a single (index, value) pair of a sparse vector.
type Entry struct {
	Index int
	Value float64
}

// Sparse is a sparse real vector: a list of entries plus the ambient
// dimension. Entries are kept sorted by index with no duplicates once
// Normalize has been called.
type Sparse struct {
	Dim     int
	Entries []Entry
}

// NewSparse returns an empty sparse vector of dimension dim.
func NewSparse(dim int) *Sparse {
	return &Sparse{Dim: dim}
}

// Set appends or overwrites the value at index i. Appending out-of-order is
// allowed; call Normalize before relying on ordering.
func (s *Sparse) Set(i int, v float64) {
	if i < 0 || i >= s.Dim {
		panic(fmt.Sprintf("vec: sparse index %d out of range [0,%d)", i, s.Dim))
	}
	for j := range s.Entries {
		if s.Entries[j].Index == i {
			s.Entries[j].Value = v
			return
		}
	}
	s.Entries = append(s.Entries, Entry{Index: i, Value: v})
}

// Normalize sorts entries by index, merges duplicates by summation and drops
// explicit zeros.
func (s *Sparse) Normalize() {
	sort.Slice(s.Entries, func(a, b int) bool { return s.Entries[a].Index < s.Entries[b].Index })
	out := s.Entries[:0]
	for _, e := range s.Entries {
		if len(out) > 0 && out[len(out)-1].Index == e.Index {
			out[len(out)-1].Value += e.Value
			continue
		}
		out = append(out, e)
	}
	filtered := out[:0]
	for _, e := range out {
		if e.Value != 0 {
			filtered = append(filtered, e)
		}
	}
	s.Entries = filtered
}

// NNZ returns the number of stored (possibly zero) entries.
func (s *Sparse) NNZ() int { return len(s.Entries) }

// Dense expands the sparse vector to a dense slice of length Dim.
func (s *Sparse) Dense() []float64 {
	out := make([]float64, s.Dim)
	for _, e := range s.Entries {
		out[e.Index] += e.Value
	}
	return out
}

// FromDense builds a sparse vector from a dense slice, keeping non-zeros.
func FromDense(x []float64) *Sparse {
	s := NewSparse(len(x))
	for i, v := range x {
		if v != 0 {
			s.Entries = append(s.Entries, Entry{Index: i, Value: v})
		}
	}
	return s
}

// Clone returns a deep copy of the sparse vector.
func (s *Sparse) Clone() *Sparse {
	out := &Sparse{Dim: s.Dim, Entries: make([]Entry, len(s.Entries))}
	copy(out.Entries, s.Entries)
	return out
}

// Zeros returns a dense zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Clone returns a copy of the dense vector x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Add returns x + y. Panics if lengths differ.
func Add(x, y []float64) []float64 {
	checkLen(x, y)
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// Sub returns x - y. Panics if lengths differ.
func Sub(x, y []float64) []float64 {
	checkLen(x, y)
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// AddInPlace sets x = x + y.
func AddInPlace(x, y []float64) {
	checkLen(x, y)
	for i := range x {
		x[i] += y[i]
	}
}

// SubInPlace sets x = x - y.
func SubInPlace(x, y []float64) {
	checkLen(x, y)
	for i := range x {
		x[i] -= y[i]
	}
}

// Scale returns a*x.
func Scale(a float64, x []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = a * x[i]
	}
	return out
}

// ScaleInPlace sets x = a*x.
func ScaleInPlace(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// AXPY sets y = y + a*x.
func AXPY(a float64, x, y []float64) {
	checkLen(x, y)
	for i := range x {
		y[i] += a * x[i]
	}
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	checkLen(x, y)
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the l1 norm of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the l-infinity norm of x.
func NormInf(x []float64) float64 {
	var s float64
	for _, v := range x {
		if a := math.Abs(v); a > s {
			s = a
		}
	}
	return s
}

// NNZ returns the number of non-zero entries of a dense vector.
func NNZ(x []float64) int {
	n := 0
	for _, v := range x {
		if v != 0 {
			n++
		}
	}
	return n
}

// checkLen panics if the two vectors have different lengths.
func checkLen(x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: length mismatch %d vs %d", len(x), len(y)))
	}
}

// TopK returns the indices of the k largest-magnitude entries of x, in
// decreasing order of magnitude. Ties are broken by lower index first.
// If k exceeds len(x) all indices are returned.
func TopK(x []float64, k int) []int {
	if k > len(x) {
		k = len(x)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		ma, mb := math.Abs(x[ia]), math.Abs(x[ib])
		if ma != mb {
			return ma > mb
		}
		return ia < ib
	})
	return idx[:k]
}

// HardThreshold returns a copy of x with all but the k largest-magnitude
// entries set to zero (the best k-sparse approximation of x in any lp norm).
func HardThreshold(x []float64, k int) []float64 {
	out := make([]float64, len(x))
	for _, i := range TopK(x, k) {
		out[i] = x[i]
	}
	return out
}

// HeadTailSplit returns the l2 norm of the best k-sparse approximation error
// of x, i.e. the norm of the "tail" x minus its top-k entries. This is the
// benchmark error that compressed-sensing guarantees are stated against.
func HeadTailSplit(x []float64, k int) (headNorm, tailNorm float64) {
	head := HardThreshold(x, k)
	tail := Sub(x, head)
	return Norm2(head), Norm2(tail)
}

// RelativeError returns ||x-y||_2 / ||x||_2, or ||x-y||_2 if x is zero.
func RelativeError(x, y []float64) float64 {
	diff := Norm2(Sub(x, y))
	n := Norm2(x)
	if n == 0 {
		return diff
	}
	return diff / n
}

// Support returns the sorted indices of the non-zero entries of x.
func Support(x []float64) []int {
	var out []int
	for i, v := range x {
		if v != 0 {
			out = append(out, i)
		}
	}
	return out
}

// SupportEqual reports whether two vectors have identical supports.
func SupportEqual(x, y []float64) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if (x[i] != 0) != (y[i] != 0) {
			return false
		}
	}
	return true
}

// Complex helpers -----------------------------------------------------------

// CZeros returns a complex zero vector of length n.
func CZeros(n int) []complex128 { return make([]complex128, n) }

// CClone returns a copy of the complex vector x.
func CClone(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	copy(out, x)
	return out
}

// CNorm2 returns the Euclidean norm of a complex vector.
func CNorm2(x []complex128) float64 {
	var s float64
	for _, v := range x {
		s += real(v)*real(v) + imag(v)*imag(v)
	}
	return math.Sqrt(s)
}

// CSub returns x - y for complex vectors.
func CSub(x, y []complex128) []complex128 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vec: length mismatch %d vs %d", len(x), len(y)))
	}
	out := make([]complex128, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// CRelativeError returns ||x-y||_2 / ||x||_2 for complex vectors.
func CRelativeError(x, y []complex128) float64 {
	diff := CNorm2(CSub(x, y))
	n := CNorm2(x)
	if n == 0 {
		return diff
	}
	return diff / n
}

// CTopK returns the indices of the k largest-magnitude complex entries,
// in decreasing order of magnitude.
func CTopK(x []complex128, k int) []int {
	if k > len(x) {
		k = len(x)
	}
	if k <= 0 {
		return nil
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		ma, mb := cmplx.Abs(x[ia]), cmplx.Abs(x[ib])
		if ma != mb {
			return ma > mb
		}
		return ia < ib
	})
	return idx[:k]
}

// CHardThreshold returns a copy of x keeping only the k largest-magnitude
// entries.
func CHardThreshold(x []complex128, k int) []complex128 {
	out := make([]complex128, len(x))
	for _, i := range CTopK(x, k) {
		out[i] = x[i]
	}
	return out
}

// Median returns the median of the values (the slice is not modified). For
// an even count it returns the lower-middle element, which is the convention
// used by the Count-Sketch estimator. Panics on an empty slice.
func Median(values []float64) float64 {
	if len(values) == 0 {
		panic("vec: Median of empty slice")
	}
	tmp := Clone(values)
	sort.Float64s(tmp)
	return tmp[(len(tmp)-1)/2]
}
